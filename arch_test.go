package cpsmon_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestMonitorPassivity enforces the bolt-on isolation argument at the
// package-dependency level: the monitor side of the repository (the
// specification language, the engine, and the rule sets) must never
// import the system under test (the feature, the plant, the bench, the
// scenarios or the injectors). Its entire view of the system is the
// frame log and the signal database — exactly what a passive listener
// on the physical bus records.
func TestMonitorPassivity(t *testing.T) {
	monitorPkgs := []string{"internal/speclang", "internal/core", "internal/rules", "internal/trace", "internal/can", "internal/sigdb"}
	forbidden := []string{
		"cpsmon/internal/fsracc",
		"cpsmon/internal/vehicle",
		"cpsmon/internal/hil",
		"cpsmon/internal/scenario",
		"cpsmon/internal/inject",
		"cpsmon/internal/campaign",
	}
	for _, pkg := range monitorPkgs {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatalf("read %s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(pkg, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
				}
				for _, bad := range forbidden {
					if ipath == bad {
						t.Errorf("%s imports %s: the monitor must stay passive (bolt-on isolation)", path, ipath)
					}
				}
			}
		}
	}
}

// cpsmonImports lists every cpsmon-internal import path appearing in
// the non-test sources of pkg.
func cpsmonImports(t *testing.T, pkg string) map[string][]string {
	t.Helper()
	found := make(map[string][]string) // import path -> importing files
	entries, err := os.ReadDir(pkg)
	if err != nil {
		t.Fatalf("read %s: %v", pkg, err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(pkg, name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
			}
			if strings.HasPrefix(ipath, "cpsmon/") {
				found[ipath] = append(found[ipath], path)
			}
		}
	}
	return found
}

// TestWireProtocolStaysDependencyLight pins the wire codec's dependency
// surface: it may know about CAN frames (the payload it carries) and the
// metrics registry it reports into, and nothing else of the repository.
// A vehicle-side encoder must be able to link the codec without
// dragging in the monitor engine.
func TestWireProtocolStaysDependencyLight(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/can": true,
		"cpsmon/internal/obs": true,
	}
	for ipath, files := range cpsmonImports(t, "internal/wire") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: the wire codec may depend only on internal/can and internal/obs", files, ipath)
		}
	}
}

// TestObservabilityStaysStandardLibraryOnly keeps the metrics registry
// a leaf package: every layer from the wire codec up to the fleet
// server reports into it, so it may import nothing of cpsmon — exactly
// like faultnet and sigdb, that is what keeps it linkable everywhere
// without cycles.
func TestObservabilityStaysStandardLibraryOnly(t *testing.T) {
	for ipath, files := range cpsmonImports(t, "internal/obs") {
		t.Errorf("%v import %s: obs must stay standard-library-only", files, ipath)
	}
}

// TestMonitorEngineStaysOffTheNetwork keeps instrumentation from
// pulling transport concerns into the engine: internal/core updates
// obs counters, but serving them (/metrics, pprof) is the daemon's
// job. An engine that can't open sockets is an engine that stays
// embeddable in the HIL bench and a vehicle-side process alike.
func TestMonitorEngineStaysOffTheNetwork(t *testing.T) {
	forbidden := map[string]bool{"net": true, "net/http": true}
	entries, err := os.ReadDir("internal/core")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join("internal/core", name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if forbidden[ipath] {
				t.Errorf("%s imports %s: the monitor engine must stay off the network", path, ipath)
			}
		}
	}
}

// TestFleetDependencySurface bounds the fleet server's reach: transport
// (wire), the monitor engine and its inputs. Like the monitor itself it
// must never see the system under test.
func TestFleetDependencySurface(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/wire":     true,
		"cpsmon/internal/core":     true,
		"cpsmon/internal/can":      true,
		"cpsmon/internal/sigdb":    true,
		"cpsmon/internal/speclang": true,
		"cpsmon/internal/obs":      true,
		"cpsmon/internal/flight":   true,
	}
	for ipath, files := range cpsmonImports(t, "internal/fleet") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: fleet may depend only on wire, core, can, sigdb, speclang, obs, flight", files, ipath)
		}
	}
}

// TestFlightStaysStandardLibraryOnly keeps the flight recorder a leaf
// package like obs: the fleet server, the daemon and client-side code
// all feed spans into it, so it may import nothing of cpsmon — that is
// what lets it link everywhere (including obs's admin tests) without
// cycles.
func TestFlightStaysStandardLibraryOnly(t *testing.T) {
	for ipath, files := range cpsmonImports(t, "internal/flight") {
		t.Errorf("%v import %s: flight must stay standard-library-only", files, ipath)
	}
}

// TestArchiveStaysALeafOverWire pins the archive store's dependency
// surface: the wire codec whose records it persists, the CAN frames
// those records carry, and the metrics registry — the same three-leaf
// diet as the wire codec itself. In particular it must never import
// the fleet server (the archive is the hook's implementation, not a
// client of it) nor open sockets: an archive directory must be
// readable by offline tooling that links nothing of the transport.
func TestArchiveStaysALeafOverWire(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/wire": true,
		"cpsmon/internal/can":  true,
		"cpsmon/internal/obs":  true,
	}
	for ipath, files := range cpsmonImports(t, "internal/archive") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: archive may depend only on wire, can, obs", files, ipath)
		}
	}
	forbidden := map[string]bool{"net": true, "net/http": true}
	entries, err := os.ReadDir("internal/archive")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join("internal/archive", name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if forbidden[ipath] {
				t.Errorf("%s imports %s: the archive must stay off the network", path, ipath)
			}
		}
	}
}

// TestDurableDependencySurface bounds the crash-safety layer: the
// session ledger and recovery engine sit between the fleet server and
// the archive, so they may see those two, the wire records they
// persist, and the metrics registry — never the monitor engine (the
// rebuild replays frames through fleet's Restorer, which owns the
// monitor) and never the system under test.
func TestDurableDependencySurface(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/fleet":   true,
		"cpsmon/internal/archive": true,
		"cpsmon/internal/wire":    true,
		"cpsmon/internal/obs":     true,
	}
	for ipath, files := range cpsmonImports(t, "internal/durable") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: durable may depend only on fleet, archive, wire, obs", files, ipath)
		}
	}
}

// TestSpecRegistryDependencySurface keeps the spec registry a leaf
// over the metrics registry: it stores rule text and drives rollouts
// through the Fleet interface, so it may import only internal/obs —
// the daemon adapts the fleet server to it, never the other way
// around. That is what lets offline tooling (monitorctl) read a
// registry directory without linking the fleet server.
func TestSpecRegistryDependencySurface(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/obs": true,
	}
	for ipath, files := range cpsmonImports(t, "internal/specreg") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: specreg may depend only on obs", files, ipath)
		}
	}
}

// TestRecheckDependencySurface bounds the recheck engine: it reads
// archives and replays them through the monitor engine, so it may see
// the archive store, the engine and its inputs, plus the metrics
// registry its throughput counters report into — never the fleet
// server or the system under test. Rechecking history must stay an
// offline operation, so like the engine and the archive it is also
// pinned off the network.
func TestRecheckDependencySurface(t *testing.T) {
	allowed := map[string]bool{
		"cpsmon/internal/archive":  true,
		"cpsmon/internal/core":     true,
		"cpsmon/internal/sigdb":    true,
		"cpsmon/internal/speclang": true,
		"cpsmon/internal/wire":     true,
		"cpsmon/internal/can":      true,
		"cpsmon/internal/obs":      true,
	}
	for ipath, files := range cpsmonImports(t, "internal/recheck") {
		if !allowed[ipath] {
			t.Errorf("%v import %s: recheck may depend only on archive, core, sigdb, speclang, wire, can, obs", files, ipath)
		}
	}
	forbidden := map[string]bool{"net": true, "net/http": true}
	entries, err := os.ReadDir("internal/recheck")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join("internal/recheck", name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if forbidden[ipath] {
				t.Errorf("%s imports %s: recheck must stay off the network", path, ipath)
			}
		}
	}
}

// TestSpeclangStaysStandardLibraryOnly keeps the specification language
// a leaf package: it is shared by the online checker, the offline
// evaluator and the recheck engine, and its scratch arena sits on every
// hot path — it may import nothing of cpsmon.
func TestSpeclangStaysStandardLibraryOnly(t *testing.T) {
	for ipath, files := range cpsmonImports(t, "internal/speclang") {
		t.Errorf("%v import %s: speclang must stay standard-library-only", files, ipath)
	}
}

// TestFaultnetStaysStandardLibraryOnly keeps the fault-injecting conn
// wrapper a leaf: it wraps any net.Conn for any test in the repository,
// so it may import nothing of cpsmon — standard library only. That is
// what lets wire, fleet, or a future transport use it without cycles.
func TestFaultnetStaysStandardLibraryOnly(t *testing.T) {
	for ipath, files := range cpsmonImports(t, "internal/faultnet") {
		t.Errorf("%v import %s: faultnet must stay standard-library-only", files, ipath)
	}
}

// TestSignalDatabaseStaysStandardLibraryOnly keeps the signal database
// a leaf package: it is the shared vocabulary between the system under
// test, the monitor, and the fleet ingest path, so it may import
// nothing of cpsmon. That is also what keeps its compiled decode plans
// embeddable in a vehicle-side encoder.
func TestSignalDatabaseStaysStandardLibraryOnly(t *testing.T) {
	for ipath, files := range cpsmonImports(t, "internal/sigdb") {
		t.Errorf("%v import %s: sigdb must stay standard-library-only", files, ipath)
	}
}

// TestSignalDatabaseExportedTypeSurface pins sigdb's exported types:
// the database itself, its schema vocabulary, and the compiled
// DecodePlan — the one hot-path decode surface. Growing this set is a
// deliberate API decision, not a side effect; update the list here when
// it is.
func TestSignalDatabaseExportedTypeSurface(t *testing.T) {
	want := map[string]bool{
		"DB":         true,
		"DecodePlan": true,
		"FrameDef":   true,
		"Kind":       true,
		"Signal":     true,
	}
	got := make(map[string]bool)
	entries, err := os.ReadDir("internal/sigdb")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join("internal/sigdb", name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.IsExported() {
					got[ts.Name.Name] = true
				}
			}
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("sigdb exports unexpected type %s: extend the pinned surface deliberately", name)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("sigdb no longer exports type %s", name)
		}
	}
}

// TestSystemUnderTestDoesNotImportMonitor checks the other direction of
// the isolation boundary: the simulated system (plant, feature, bench)
// has no knowledge of the monitor, mirroring a deployment where the
// testing box is removed without invalidating the system.
func TestSystemUnderTestDoesNotImportMonitor(t *testing.T) {
	systemPkgs := []string{"internal/fsracc", "internal/vehicle", "internal/hil", "internal/scenario"}
	forbidden := []string{
		"cpsmon/internal/core",
		"cpsmon/internal/speclang",
		"cpsmon/internal/rules",
	}
	for _, pkg := range systemPkgs {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatalf("read %s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(pkg, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				for _, bad := range forbidden {
					if ipath == bad {
						t.Errorf("%s imports %s: the system under test must not depend on the monitor", path, ipath)
					}
				}
			}
		}
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation experiments and the monitor engine's
// throughput. One benchmark per artifact:
//
//	BenchmarkTableI               — Table I (fault-injection results)
//	BenchmarkFig1SignalCodec      — Figure 1 (the I/O signal contract, as codec throughput)
//	BenchmarkRealVehicleAnalysis  — Section IV.A (real-vehicle log analysis)
//	BenchmarkAblation*            — Sections V.A, V.C.1, V.C.2, V.C.3
//	BenchmarkMonitor*             — engine micro-benchmarks
package cpsmon_test

import (
	"sync"
	"testing"
	"time"

	"cpsmon/internal/campaign"
	"cpsmon/internal/can"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"

	"cpsmon/internal/core"
)

// BenchmarkTableI regenerates the paper's Table I: the full robustness
// campaign (32 tests, three fault classes, the paper's 20-second holds)
// plus monitoring of every captured trace. One iteration is one
// complete table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := campaign.RunTableI(campaign.DefaultTableIConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		if got := table.RulesViolatedAnywhere(); got != 6 {
			b.Fatalf("rules violated = %d, want 6 (paper: all except Rule #0)", got)
		}
	}
}

// BenchmarkFig1SignalCodec measures decode throughput of the Figure 1
// signal set over its broadcast frames — the monitor's entire wire→
// physical path, through the compiled decode plan into a reused value
// vector. Steady state is allocation-free.
func BenchmarkFig1SignalCodec(b *testing.B) {
	db := sigdb.Vehicle()
	values := map[string]float64{
		sigdb.SigVelocity:     24.5,
		sigdb.SigThrotPos:     31.2,
		sigdb.SigTargetRange:  38.7,
		sigdb.SigTargetRelVel: -1.4,
	}
	plan, err := db.CompilePlan(db.SignalNames())
	if err != nil {
		b.Fatal(err)
	}
	type wireFrame struct {
		id   uint32
		data [8]byte
	}
	var frames []wireFrame
	for _, id := range []uint32{sigdb.FrameVehicleDyn, sigdb.FrameRadar} {
		data, err := db.Pack(id, values)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, wireFrame{id: id, data: data})
	}
	dst := make([]float64, plan.Width())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			if _, err := plan.UnpackInto(f.id, f.data, dst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRealVehicleAnalysis reproduces the Section IV.A pipeline:
// one 10-minute prototype-vehicle drive cycle generated, captured, and
// checked with both the strict and relaxed rule sets.
func BenchmarkRealVehicleAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := campaign.RunVehicleLogs(2024, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"Rule0", "Rule1", "Rule5", "Rule6"} {
			if r, ok := a.Rule(name); !ok || r.StrictVerdict != core.Satisfied {
				b.Fatalf("%s not satisfied on the drive cycle", name)
			}
		}
	}
}

// BenchmarkAblationMultiRate regenerates the Section V.C.1 experiment.
func BenchmarkAblationMultiRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunMultiRateAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if r.AwareVerdict != core.Violated || r.NaiveVerdict != core.Satisfied {
			b.Fatalf("multirate trap not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationWarmup regenerates the Section V.C.2 experiment.
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunWarmupAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if r.WithoutWarmup == 0 || r.WithWarmup != 0 {
			b.Fatalf("warmup ablation not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationTypeCheck regenerates the Section V.C.3 experiment.
func BenchmarkAblationTypeCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunTypeCheckAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if !r.HILRejected || r.VehicleViolations == 0 {
			b.Fatalf("typecheck ablation not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationLatency regenerates the online decision-latency
// characterization (the runtime-monitoring question the paper defers).
func BenchmarkAblationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunLatencyAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Stats) == 0 {
			b.Fatal("no latency stats")
		}
	}
}

// BenchmarkAblationIntent regenerates the Section V.A threshold sweep.
func BenchmarkAblationIntent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunIntentAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// benchFixture holds the 10-minute follow capture shared by the engine
// micro-benchmarks. Generating it costs seconds, so it is built once
// per process rather than once per benchmark.
var benchFixture struct {
	once sync.Once
	log  *can.Log
	tr   *trace.Trace
	err  error
}

func benchCapture() (*can.Log, *trace.Trace, error) {
	f := &benchFixture
	f.once.Do(func() {
		bench, err := hil.New(scenario.Follow(12, 10*time.Minute))
		if err != nil {
			f.err = err
			return
		}
		if err := bench.Run(10*time.Minute, nil); err != nil {
			f.err = err
			return
		}
		f.log = bench.Log()
		f.tr, f.err = trace.FromCANLog(f.log, sigdb.Vehicle())
	})
	return f.log, f.tr, f.err
}

// benchTrace returns the shared 10-minute follow trace.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	_, tr, err := benchCapture()
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// benchLog returns the shared 10-minute follow frame log.
func benchLog(b *testing.B) *can.Log {
	b.Helper()
	log, _, err := benchCapture()
	if err != nil {
		b.Fatal(err)
	}
	return log
}

// BenchmarkMonitorCheckTrace measures the offline oracle over ten
// minutes of bus traffic: all seven rules, triage included. The paper's
// real-time question — can this keep up with the bus? — reads directly
// off this number (10 minutes of traffic per iteration).
func BenchmarkMonitorCheckTrace(b *testing.B) {
	tr := benchTrace(b)
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.CheckTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckGridParallel measures the offline grid evaluation with
// the rules fanned over a worker pool (Config.EvalParallelism): the
// same ten minutes of traffic as BenchmarkMonitorCheckTrace, evaluated
// at parallelism 1, 4 and GOMAXPROCS. The report is identical at every
// width (pinned by the core differential tests); this records what the
// width buys in wall clock on this machine.
func BenchmarkCheckGridParallel(b *testing.B) {
	tr := benchTrace(b)
	grid, err := trace.Align(tr, sigdb.FastPeriod)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := rules.Strict()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"par=1", 1},
		{"par=4", 4},
		{"par=max", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			mon, err := core.New(core.Config{
				Rules:           rs,
				Triage:          rules.DefaultTriage(),
				EvalParallelism: bc.par,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := mon.CheckGrid(grid)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Rules) != 7 {
					b.Fatalf("evaluated %d rules, want 7", len(rep.Rules))
				}
			}
		})
	}
}

// BenchmarkMonitorOnline measures the streaming monitor over the same
// ten minutes of traffic, frame by frame — the runtime-deployment path.
func BenchmarkMonitorOnline(b *testing.B) {
	log := benchLog(b)
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		om, err := mon.Online(sigdb.Vehicle())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range log.Frames() {
			if _, err := om.PushFrame(f); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := om.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorAlign isolates the grid-alignment stage.
func BenchmarkMonitorAlign(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Align(tr, sigdb.FastPeriod); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecCompile measures parsing and compiling the full strict
// rule set.
func BenchmarkSpecCompile(b *testing.B) {
	signals := sigdb.Vehicle().SignalNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := speclang.Parse(rules.StrictSource)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := speclang.Compile(f, signals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHILStep measures the co-simulation step rate (plant + bus +
// feature + actuation per tick).
func BenchmarkHILStep(b *testing.B) {
	bench, err := hil.New(scenario.Follow(12, time.Duration(b.N+1)*sigdb.FastPeriod))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation experiments and the monitor engine's
// throughput. One benchmark per artifact:
//
//	BenchmarkTableI               — Table I (fault-injection results)
//	BenchmarkFig1SignalCodec      — Figure 1 (the I/O signal contract, as codec throughput)
//	BenchmarkRealVehicleAnalysis  — Section IV.A (real-vehicle log analysis)
//	BenchmarkAblation*            — Sections V.A, V.C.1, V.C.2, V.C.3
//	BenchmarkMonitor*             — engine micro-benchmarks
package cpsmon_test

import (
	"testing"
	"time"

	"cpsmon/internal/campaign"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"

	"cpsmon/internal/core"
)

// BenchmarkTableI regenerates the paper's Table I: the full robustness
// campaign (32 tests, three fault classes, the paper's 20-second holds)
// plus monitoring of every captured trace. One iteration is one
// complete table.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := campaign.RunTableI(campaign.DefaultTableIConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		if got := table.RulesViolatedAnywhere(); got != 6 {
			b.Fatalf("rules violated = %d, want 6 (paper: all except Rule #0)", got)
		}
	}
}

// BenchmarkFig1SignalCodec measures pack/unpack throughput of the
// Figure 1 signal set over its broadcast frames — the monitor's entire
// decode path.
func BenchmarkFig1SignalCodec(b *testing.B) {
	db := sigdb.Vehicle()
	values := map[string]float64{
		sigdb.SigVelocity:     24.5,
		sigdb.SigThrotPos:     31.2,
		sigdb.SigTargetRange:  38.7,
		sigdb.SigTargetRelVel: -1.4,
	}
	frames := []uint32{sigdb.FrameVehicleDyn, sigdb.FrameRadar}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range frames {
			data, err := db.Pack(id, values)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Unpack(id, data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRealVehicleAnalysis reproduces the Section IV.A pipeline:
// one 10-minute prototype-vehicle drive cycle generated, captured, and
// checked with both the strict and relaxed rule sets.
func BenchmarkRealVehicleAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := campaign.RunVehicleLogs(2024, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"Rule0", "Rule1", "Rule5", "Rule6"} {
			if r, ok := a.Rule(name); !ok || r.StrictVerdict != core.Satisfied {
				b.Fatalf("%s not satisfied on the drive cycle", name)
			}
		}
	}
}

// BenchmarkAblationMultiRate regenerates the Section V.C.1 experiment.
func BenchmarkAblationMultiRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunMultiRateAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if r.AwareVerdict != core.Violated || r.NaiveVerdict != core.Satisfied {
			b.Fatalf("multirate trap not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationWarmup regenerates the Section V.C.2 experiment.
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunWarmupAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if r.WithoutWarmup == 0 || r.WithWarmup != 0 {
			b.Fatalf("warmup ablation not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationTypeCheck regenerates the Section V.C.3 experiment.
func BenchmarkAblationTypeCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunTypeCheckAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if !r.HILRejected || r.VehicleViolations == 0 {
			b.Fatalf("typecheck ablation not reproduced: %+v", r)
		}
	}
}

// BenchmarkAblationLatency regenerates the online decision-latency
// characterization (the runtime-monitoring question the paper defers).
func BenchmarkAblationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunLatencyAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Stats) == 0 {
			b.Fatal("no latency stats")
		}
	}
}

// BenchmarkAblationIntent regenerates the Section V.A threshold sweep.
func BenchmarkAblationIntent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := campaign.RunIntentAblation(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// benchTrace builds a 10-minute follow trace once for the engine
// micro-benchmarks.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	bench, err := hil.New(scenario.Follow(12, 10*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.Run(10*time.Minute, nil); err != nil {
		b.Fatal(err)
	}
	tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkMonitorCheckTrace measures the offline oracle over ten
// minutes of bus traffic: all seven rules, triage included. The paper's
// real-time question — can this keep up with the bus? — reads directly
// off this number (10 minutes of traffic per iteration).
func BenchmarkMonitorCheckTrace(b *testing.B) {
	tr := benchTrace(b)
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.CheckTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorOnline measures the streaming monitor over the same
// ten minutes of traffic, frame by frame — the runtime-deployment path.
func BenchmarkMonitorOnline(b *testing.B) {
	bench, err := hil.New(scenario.Follow(12, 10*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.Run(10*time.Minute, nil); err != nil {
		b.Fatal(err)
	}
	log := bench.Log()
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		om, err := mon.Online(sigdb.Vehicle())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range log.Frames() {
			if _, err := om.PushFrame(f); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := om.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorAlign isolates the grid-alignment stage.
func BenchmarkMonitorAlign(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Align(tr, sigdb.FastPeriod); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecCompile measures parsing and compiling the full strict
// rule set.
func BenchmarkSpecCompile(b *testing.B) {
	signals := sigdb.Vehicle().SignalNames()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := speclang.Parse(rules.StrictSource)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := speclang.Compile(f, signals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHILStep measures the co-simulation step rate (plant + bus +
// feature + actuation per tick).
func BenchmarkHILStep(b *testing.B) {
	bench, err := hil.New(scenario.Follow(12, time.Duration(b.N+1)*sigdb.FastPeriod))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

# Developer entry points. Everything here is plain `go` tooling; the
# targets just record the invocations the project expects to stay green.

GO ?= go

.PHONY: all help test race short bench fuzz fuzz-smoke chaos crash vet

all: test

help:
	@echo "Targets:"
	@echo "  test        build everything and run the full suite (default)"
	@echo "  race        race-clean gate: vet + chaos sweep + short suite under -race (archive/recheck run unshortened)"
	@echo "  short       the suite minus campaign-scale tests"
	@echo "  bench       all benchmarks with -benchmem; records BENCH_PR10.json via cmd/benchjson"
	@echo "  chaos       seeded transport-chaos suite under -race + wire fuzz smoke"
	@echo "  crash       subprocess SIGKILL matrix: 16 seeded kills of a real monitord under -race"
	@echo "  fuzz        brief fuzz passes (wire decoder, spec parser, archive segments)"
	@echo "  fuzz-smoke  10s each of the segment, wire, ledger and spec-parser fuzzers"
	@echo "  vet         go vet everything"

test:
	$(GO) build ./...
	$(GO) test ./...

# The fleet server, HIL benches and campaigns are concurrent; the suite
# must stay race-clean. `-short` skips the campaign-scale tests so the
# race run stays quick enough to use before every push. The chaos sweep
# rides along (transport resilience bugs are concurrency bugs), and vet
# runs first so cheap static findings surface before the slow sweep.
# The archive store and recheck engine are listed explicitly: their
# torn-tail recovery and pump-drain tests are exactly the concurrent
# durability paths the race gate exists for, and -count=1 keeps cached
# passes from masking them. core and speclang join the list with PR 8's
# parallel grid evaluation and sharded recheck: the differential tests
# (parallel output == sequential at 1/2/4/8 workers) are only meaningful
# under the race detector. specreg joins with PR 10: the rollout
# controller races its poll loop against operator promote/rollback by
# design.
race: vet chaos crash
	$(GO) test -race -short ./...
	$(GO) test -race -count=1 ./internal/archive ./internal/recheck ./internal/durable ./internal/core ./internal/speclang ./internal/specreg

# The seeded transport-chaos suite (fault-injected connections, resume,
# drain) under the race detector, plus a short wire-decoder fuzz smoke —
# the robustness gate for the fleet path.
chaos:
	$(GO) test -race -run 'TestChaos|TestDrain|TestQuarantine|TestErrorBudget' -count=1 ./internal/fleet
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/wire

# The crash-safety acceptance gate: SIGKILL a real monitord subprocess
# at 16 seeded uplink offsets (plus a chaos disconnect each), restart on
# the same state dir, and require byte-identical verdicts with zero
# duplicates — all under the race detector.
crash:
	$(GO) test -race -run 'TestCrashRecovery' -count=1 ./cmd/monitord

short:
	$(GO) test -short ./...

# Runs every benchmark and snapshots the numbers to BENCH_PR10.json so
# performance work leaves a committed, diffable record; the label says
# which PR produced the snapshot even once copied elsewhere. The PR10
# snapshot is the proof spec rollout kept the pinned costs with shadow
# mode off — Fig1 codec 0 allocs/op, MonitorOnline 400 allocs/op,
# BenchmarkFleetIngest within 3% of BENCH_PR9.json — and documents the
# deliberate ~2x ns/frame of BenchmarkFleetIngestShadow while a canary
# is being dual-evaluated.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson -label PR10 > BENCH_PR10.json

# Brief fuzz passes over the parser/formatter, the wire codec and the
# archive segment reader.
fuzz: fuzz-smoke
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/speclang

# The deserializers that face bytes an attacker (or a crash) wrote:
# the archive segment store recovering arbitrary tail damage, the wire
# decoder, the session ledger fold — and, since `spec push` started
# accepting operator uploads into a running daemon, the spec parser and
# compiler (every refusal must be a positioned error, never a panic).
# 10 seconds each — the smoke level CI can afford on every run.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzSegment -fuzztime=10s ./internal/archive
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzLedgerFold -fuzztime=10s ./internal/durable
	$(GO) test -run=^$$ -fuzz=FuzzSpecParser -fuzztime=10s ./internal/speclang

vet:
	$(GO) vet ./...

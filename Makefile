# Developer entry points. Everything here is plain `go` tooling; the
# targets just record the invocations the project expects to stay green.

GO ?= go

.PHONY: all test race short bench fuzz vet

all: test

test:
	$(GO) build ./...
	$(GO) test ./...

# The fleet server, HIL benches and campaigns are concurrent; the suite
# must stay race-clean. `-short` skips the campaign-scale tests so the
# race run stays quick enough to use before every push.
race:
	$(GO) test -race -short ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Brief fuzz passes over the parser/formatter and the wire codec.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/speclang

vet:
	$(GO) vet ./...

package vehicle

import (
	"math"
	"math/rand"
	"time"
)

// RadarConfig parameterizes the forward radar model.
type RadarConfig struct {
	// MaxRange is the detection range in m.
	MaxRange float64
	// AcquireDelay is the time a candidate target must stay in range
	// before it is reported (track confirmation).
	AcquireDelay time.Duration
	// RangeNoise is the standard deviation of additive range noise in m.
	// Zero on the HIL bench; non-zero on the real vehicle.
	RangeNoise float64
	// RelVelNoise is the standard deviation of additive relative-velocity
	// noise in m/s.
	RelVelNoise float64
	// DropoutProb is the per-step probability of a momentary track
	// dropout (real-vehicle sensor imperfection).
	DropoutProb float64
}

// DefaultRadarConfig returns a noiseless HIL-grade radar.
func DefaultRadarConfig() RadarConfig {
	return RadarConfig{
		MaxRange:     150,
		AcquireDelay: 200 * time.Millisecond,
	}
}

// Observation is what the radar broadcasts each step. When no target is
// tracked, Range and RelVel are zero — the discrete activation jump the
// paper discusses in Section V.C.2 is therefore inherent to the
// interface, not an artifact of this model.
type Observation struct {
	// Ahead reports whether a target is tracked.
	Ahead bool
	// Range is the distance to the target in m (0 when none).
	Range float64
	// RelVel is the target velocity minus ego velocity in m/s (0 when
	// no target; negative means closing).
	RelVel float64
}

// Radar tracks at most one lead target with confirmation delay, optional
// noise, and optional dropouts.
type Radar struct {
	cfg        RadarConfig
	rng        *rand.Rand
	inRangeFor time.Duration
}

// NewRadar creates a radar. rng may be nil when the configuration is
// deterministic (no noise, no dropouts).
func NewRadar(cfg RadarConfig, rng *rand.Rand) *Radar {
	return &Radar{cfg: cfg, rng: rng}
}

// Observe produces one radar measurement for the given true geometry.
// present reports whether a physical lead vehicle exists at all (e.g.
// it may have changed lanes away). dt is the step size.
func (r *Radar) Observe(dt time.Duration, egoPos, egoVel float64, leadPresent bool, leadPos, leadVel float64) Observation {
	dist := leadPos - egoPos
	visible := leadPresent && dist > 0 && dist <= r.cfg.MaxRange
	if !visible {
		r.inRangeFor = 0
		return Observation{}
	}
	r.inRangeFor += dt
	if r.inRangeFor < r.cfg.AcquireDelay {
		return Observation{}
	}
	if r.cfg.DropoutProb > 0 && r.rng != nil && r.rng.Float64() < r.cfg.DropoutProb {
		// A dropout loses the measurement for one step but keeps the
		// track confirmed.
		return Observation{}
	}
	obs := Observation{
		Ahead:  true,
		Range:  dist,
		RelVel: leadVel - egoVel,
	}
	if r.rng != nil {
		if r.cfg.RangeNoise > 0 {
			obs.Range += r.rng.NormFloat64() * r.cfg.RangeNoise
			if obs.Range < 0.1 {
				obs.Range = 0.1
			}
		}
		if r.cfg.RelVelNoise > 0 {
			obs.RelVel += r.rng.NormFloat64() * r.cfg.RelVelNoise
		}
	}
	return obs
}

// Reset clears the track confirmation state.
func (r *Radar) Reset() { r.inRangeFor = 0 }

// ClosingHeadwayTime returns the actual headway time in seconds for a
// given range and ego speed: range divided by ego speed. It returns +Inf
// when the ego vehicle is (near) stationary.
func ClosingHeadwayTime(rng, egoVel float64) float64 {
	if egoVel < 0.1 {
		return math.Inf(1)
	}
	return rng / egoVel
}

// Package vehicle provides the longitudinal plant the HIL bench
// simulates: an ego vehicle driven by engine torque and brake
// deceleration, scripted lead vehicles, a forward radar model, and road
// grade profiles.
//
// It stands in for the commercial vehicle/environment simulator (CARSIM)
// used in the paper. The monitored safety rules are purely longitudinal —
// speed, range, relative velocity, torque and deceleration — so a
// longitudinal point-mass plant exercises every signal path the monitor
// observes.
package vehicle

import (
	"math"
	"time"
)

// Gravity is the standard gravitational acceleration in m/s².
const Gravity = 9.81

// EgoConfig holds the physical parameters of the ego vehicle.
type EgoConfig struct {
	// Mass is the vehicle mass in kg.
	Mass float64
	// DragArea is the product Cd·A in m².
	DragArea float64
	// AirDensity is the ambient air density in kg/m³.
	AirDensity float64
	// RollCoeff is the rolling-resistance coefficient.
	RollCoeff float64
	// WheelRadius is the driven wheel radius in m.
	WheelRadius float64
	// DriveRatio is the effective overall drive ratio from engine to
	// wheel (a single-speed abstraction of the transmission).
	DriveRatio float64
	// MaxEngineTorque is the engine torque ceiling in N·m.
	MaxEngineTorque float64
	// MaxBrakeDecel is the service-brake deceleration ceiling in m/s².
	MaxBrakeDecel float64
}

// DefaultEgoConfig returns parameters representative of a mid-size
// passenger sedan.
func DefaultEgoConfig() EgoConfig {
	return EgoConfig{
		Mass:            1600,
		DragArea:        0.70,
		AirDensity:      1.20,
		RollCoeff:       0.012,
		WheelRadius:     0.33,
		DriveRatio:      6.0,
		MaxEngineTorque: 320,
		MaxBrakeDecel:   9.0,
	}
}

// Ego is the longitudinal state of the ego vehicle.
type Ego struct {
	cfg EgoConfig
	pos float64
	vel float64
}

// NewEgo creates an ego vehicle at position zero with the given initial
// speed in m/s.
func NewEgo(cfg EgoConfig, initialSpeed float64) *Ego {
	return &Ego{cfg: cfg, vel: math.Max(0, initialSpeed)}
}

// Position returns the travelled distance in m.
func (e *Ego) Position() float64 { return e.pos }

// Speed returns the forward speed in m/s.
func (e *Ego) Speed() float64 { return e.vel }

// Config returns the vehicle parameters.
func (e *Ego) Config() EgoConfig { return e.cfg }

// Step advances the vehicle by dt seconds under the given engine torque
// request (N·m), brake deceleration request (m/s², non-negative) and
// road grade (radians, positive uphill).
//
// Requests are saturated to the physical plant limits, and non-finite
// requests are treated as zero: the engine and brake controllers on the
// real vehicle network sanitize their own actuation commands even though
// the feature under test does not sanitize its inputs.
func (e *Ego) Step(dt float64, engineTorque, brakeDecel, grade float64) {
	if dt <= 0 {
		return
	}
	if !isFinite(engineTorque) {
		engineTorque = 0
	}
	if !isFinite(brakeDecel) {
		brakeDecel = 0
	}
	engineTorque = clamp(engineTorque, 0, e.cfg.MaxEngineTorque)
	brakeDecel = clamp(brakeDecel, 0, e.cfg.MaxBrakeDecel)

	drive := engineTorque * e.cfg.DriveRatio / e.cfg.WheelRadius
	drag := 0.5 * e.cfg.AirDensity * e.cfg.DragArea * e.vel * e.vel
	roll := 0.0
	if e.vel > 0.01 {
		roll = e.cfg.RollCoeff * e.cfg.Mass * Gravity
	}
	gravityForce := e.cfg.Mass * Gravity * math.Sin(grade)

	accel := (drive-drag-roll-gravityForce)/e.cfg.Mass - brakeDecel
	e.vel += accel * dt
	if e.vel < 0 {
		e.vel = 0
	}
	e.pos += e.vel * dt
}

// TorqueForAccel returns the engine torque that would produce the given
// acceleration on a flat road at the current speed. The FSRACC feature
// uses the same inverse model (a plausible design for a feature tuned on
// the same plant).
func (e *Ego) TorqueForAccel(accel float64) float64 {
	drag := 0.5 * e.cfg.AirDensity * e.cfg.DragArea * e.vel * e.vel
	roll := e.cfg.RollCoeff * e.cfg.Mass * Gravity
	force := e.cfg.Mass*accel + drag + roll
	return force * e.cfg.WheelRadius / e.cfg.DriveRatio
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// SpeedKnot is one point of a piecewise-linear speed profile.
type SpeedKnot struct {
	// T is the profile time.
	T time.Duration
	// Speed is the target speed at T in m/s.
	Speed float64
}

// SpeedProfile is a piecewise-linear speed-versus-time command. Before
// the first knot the first speed holds; after the last, the last.
type SpeedProfile []SpeedKnot

// At returns the profile speed at time t.
func (p SpeedProfile) At(t time.Duration) float64 {
	if len(p) == 0 {
		return 0
	}
	if t <= p[0].T {
		return p[0].Speed
	}
	for i := 1; i < len(p); i++ {
		if t <= p[i].T {
			span := p[i].T - p[i-1].T
			if span <= 0 {
				return p[i].Speed
			}
			frac := float64(t-p[i-1].T) / float64(span)
			return p[i-1].Speed + frac*(p[i].Speed-p[i-1].Speed)
		}
	}
	return p[len(p)-1].Speed
}

// Lead is a scripted lead vehicle following a speed profile with a
// bounded acceleration.
type Lead struct {
	pos        float64
	vel        float64
	profile    SpeedProfile
	accelLimit float64
}

// NewLead creates a lead vehicle at the given initial position and
// speed, tracking profile with at most accelLimit m/s² of acceleration
// or deceleration.
func NewLead(initialPos, initialSpeed float64, profile SpeedProfile, accelLimit float64) *Lead {
	if accelLimit <= 0 {
		accelLimit = 3.0
	}
	return &Lead{pos: initialPos, vel: math.Max(0, initialSpeed), profile: profile, accelLimit: accelLimit}
}

// Position returns the lead vehicle position in m.
func (l *Lead) Position() float64 { return l.pos }

// Speed returns the lead vehicle speed in m/s.
func (l *Lead) Speed() float64 { return l.vel }

// Step advances the lead vehicle by dt seconds at profile time t.
func (l *Lead) Step(dt float64, t time.Duration) {
	target := l.profile.At(t)
	diff := target - l.vel
	maxStep := l.accelLimit * dt
	if diff > maxStep {
		diff = maxStep
	} else if diff < -maxStep {
		diff = -maxStep
	}
	l.vel += diff
	if l.vel < 0 {
		l.vel = 0
	}
	l.pos += l.vel * dt
}

// GradeProfile maps travelled distance (m) to road grade (radians).
type GradeProfile func(pos float64) float64

// FlatRoad is a zero-grade profile.
func FlatRoad(float64) float64 { return 0 }

// Hill returns a grade profile with a single hill: grade radians between
// start and start+length metres, flat elsewhere.
func Hill(start, length, grade float64) GradeProfile {
	return func(pos float64) float64 {
		if pos >= start && pos < start+length {
			return grade
		}
		return 0
	}
}

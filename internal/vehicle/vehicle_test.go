package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEgoAcceleratesUnderTorque(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 20)
	v0 := e.Speed()
	for i := 0; i < 100; i++ {
		e.Step(0.01, 200, 0, 0)
	}
	if e.Speed() <= v0 {
		t.Errorf("speed %v did not increase from %v under 200 N*m", e.Speed(), v0)
	}
	if e.Position() <= 0 {
		t.Errorf("position %v did not advance", e.Position())
	}
}

func TestEgoDeceleratesUnderBraking(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 30)
	for i := 0; i < 100; i++ {
		e.Step(0.01, 0, 3, 0)
	}
	if e.Speed() >= 30 {
		t.Errorf("speed %v did not decrease under braking", e.Speed())
	}
}

func TestEgoSpeedNeverNegative(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 1)
	for i := 0; i < 500; i++ {
		e.Step(0.01, 0, 9, 0)
	}
	if e.Speed() != 0 {
		t.Errorf("speed = %v, want 0 after hard sustained braking", e.Speed())
	}
}

func TestEgoCoastdownFromDrag(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 35)
	for i := 0; i < 100; i++ {
		e.Step(0.01, 0, 0, 0)
	}
	if e.Speed() >= 35 {
		t.Errorf("speed %v did not decay while coasting", e.Speed())
	}
	if e.Speed() < 30 {
		t.Errorf("speed %v decayed implausibly fast while coasting", e.Speed())
	}
}

func TestEgoHillSlowsVehicle(t *testing.T) {
	flat := NewEgo(DefaultEgoConfig(), 25)
	hill := NewEgo(DefaultEgoConfig(), 25)
	for i := 0; i < 200; i++ {
		flat.Step(0.01, 100, 0, 0)
		hill.Step(0.01, 100, 0, 0.05)
	}
	if hill.Speed() >= flat.Speed() {
		t.Errorf("uphill speed %v >= flat speed %v", hill.Speed(), flat.Speed())
	}
}

func TestEgoSanitizesNonFiniteRequests(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 20)
	e.Step(0.01, math.NaN(), math.Inf(1), 0)
	if math.IsNaN(e.Speed()) || math.IsInf(e.Speed(), 0) {
		t.Fatalf("speed corrupted to %v by non-finite requests", e.Speed())
	}
}

func TestEgoSaturatesTorque(t *testing.T) {
	cfg := DefaultEgoConfig()
	bounded := NewEgo(cfg, 20)
	extreme := NewEgo(cfg, 20)
	for i := 0; i < 100; i++ {
		bounded.Step(0.01, cfg.MaxEngineTorque, 0, 0)
		extreme.Step(0.01, 1e12, 0, 0)
	}
	if bounded.Speed() != extreme.Speed() {
		t.Errorf("torque saturation broken: %v vs %v", bounded.Speed(), extreme.Speed())
	}
}

func TestEgoIgnoresNonPositiveDt(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 20)
	e.Step(0, 100, 0, 0)
	e.Step(-1, 100, 0, 0)
	if e.Speed() != 20 || e.Position() != 0 {
		t.Errorf("state changed on non-positive dt: v=%v pos=%v", e.Speed(), e.Position())
	}
}

func TestTorqueForAccelInverseConsistency(t *testing.T) {
	e := NewEgo(DefaultEgoConfig(), 25)
	for _, want := range []float64{0.5, 1.0, 2.0} {
		torque := e.TorqueForAccel(want)
		// Apply the torque for a single small step and measure accel.
		probe := NewEgo(DefaultEgoConfig(), 25)
		probe.Step(0.001, torque, 0, 0)
		got := (probe.Speed() - 25) / 0.001
		if math.Abs(got-want) > 0.05 {
			t.Errorf("TorqueForAccel(%v): measured accel %v", want, got)
		}
	}
}

func TestSpeedProfileAt(t *testing.T) {
	p := SpeedProfile{
		{T: 0, Speed: 10},
		{T: 10 * time.Second, Speed: 20},
		{T: 10 * time.Second, Speed: 30}, // step change
		{T: 20 * time.Second, Speed: 30},
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{-time.Second, 10},
		{0, 10},
		{5 * time.Second, 15},
		{10 * time.Second, 20},
		{15 * time.Second, 30},
		{30 * time.Second, 30},
	}
	for _, tt := range tests {
		if got := p.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSpeedProfileEmpty(t *testing.T) {
	var p SpeedProfile
	if got := p.At(time.Second); got != 0 {
		t.Errorf("empty profile At = %v, want 0", got)
	}
}

func TestLeadTracksProfileWithAccelLimit(t *testing.T) {
	l := NewLead(50, 10, SpeedProfile{{T: 0, Speed: 30}}, 2)
	l.Step(0.1, 0)
	if got, want := l.Speed(), 10.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("speed after one step = %v, want %v (accel limited)", got, want)
	}
	for i := 0; i < 200; i++ {
		l.Step(0.1, time.Duration(i)*100*time.Millisecond)
	}
	if math.Abs(l.Speed()-30) > 1e-6 {
		t.Errorf("lead did not converge to profile: %v", l.Speed())
	}
	if l.Position() <= 50 {
		t.Errorf("lead did not advance: %v", l.Position())
	}
}

func TestLeadDefaultsAccelLimit(t *testing.T) {
	l := NewLead(0, 0, SpeedProfile{{T: 0, Speed: 10}}, 0)
	l.Step(1, 0)
	if l.Speed() != 3 {
		t.Errorf("default accel limit not applied: %v", l.Speed())
	}
}

func TestLeadSpeedNeverNegative(t *testing.T) {
	l := NewLead(0, 1, SpeedProfile{{T: 0, Speed: -5}}, 10)
	for i := 0; i < 10; i++ {
		l.Step(0.1, 0)
	}
	if l.Speed() != 0 {
		t.Errorf("lead speed = %v, want 0", l.Speed())
	}
}

func TestGradeProfiles(t *testing.T) {
	if FlatRoad(123) != 0 {
		t.Error("FlatRoad not flat")
	}
	h := Hill(100, 50, 0.04)
	tests := []struct {
		pos  float64
		want float64
	}{
		{0, 0}, {99, 0}, {100, 0.04}, {149, 0.04}, {150, 0}, {1000, 0},
	}
	for _, tt := range tests {
		if got := h(tt.pos); got != tt.want {
			t.Errorf("Hill(%v) = %v, want %v", tt.pos, got, tt.want)
		}
	}
}

func TestRadarAcquireDelayAndJump(t *testing.T) {
	r := NewRadar(DefaultRadarConfig(), nil)
	dt := 10 * time.Millisecond
	// Target at 60 m closing: first observations suppressed by the
	// confirmation delay, then the range appears as a discrete jump.
	var obs Observation
	steps := 0
	for !obs.Ahead && steps < 100 {
		obs = r.Observe(dt, 0, 25, true, 60, 20)
		steps++
	}
	if !obs.Ahead {
		t.Fatal("target never acquired")
	}
	if steps < 2 {
		t.Errorf("acquired after %d steps, want confirmation delay of at least 2", steps)
	}
	if obs.Range != 60 {
		t.Errorf("range = %v, want 60 (discrete jump from 0)", obs.Range)
	}
	if obs.RelVel != -5 {
		t.Errorf("relvel = %v, want -5", obs.RelVel)
	}
}

func TestRadarLosesPassedTarget(t *testing.T) {
	r := NewRadar(DefaultRadarConfig(), nil)
	dt := 10 * time.Millisecond
	for i := 0; i < 50; i++ {
		r.Observe(dt, 0, 25, true, 30, 20)
	}
	// The simulated world does not check collisions; once the ego
	// position passes the lead, the radar simply loses the target.
	obs := r.Observe(dt, 100, 25, true, 30, 20)
	if obs.Ahead || obs.Range != 0 || obs.RelVel != 0 {
		t.Errorf("passed target still observed: %+v", obs)
	}
}

func TestRadarMaxRange(t *testing.T) {
	r := NewRadar(DefaultRadarConfig(), nil)
	dt := 10 * time.Millisecond
	for i := 0; i < 100; i++ {
		if obs := r.Observe(dt, 0, 25, true, 200, 20); obs.Ahead {
			t.Fatal("target beyond max range acquired")
		}
	}
}

func TestRadarAbsentLead(t *testing.T) {
	r := NewRadar(DefaultRadarConfig(), nil)
	for i := 0; i < 100; i++ {
		if obs := r.Observe(10*time.Millisecond, 0, 25, false, 50, 20); obs.Ahead {
			t.Fatal("absent lead acquired")
		}
	}
}

func TestRadarDropout(t *testing.T) {
	cfg := DefaultRadarConfig()
	cfg.DropoutProb = 0.5
	r := NewRadar(cfg, rand.New(rand.NewSource(11)))
	dt := 10 * time.Millisecond
	ahead, dropped := 0, 0
	for i := 0; i < 500; i++ {
		obs := r.Observe(dt, 0, 25, true, 60, 25)
		if i < 30 {
			continue // acquisition window
		}
		if obs.Ahead {
			ahead++
		} else {
			dropped++
		}
	}
	if ahead == 0 || dropped == 0 {
		t.Errorf("dropouts not mixed: ahead=%d dropped=%d", ahead, dropped)
	}
}

func TestRadarNoise(t *testing.T) {
	cfg := DefaultRadarConfig()
	cfg.RangeNoise = 0.5
	cfg.RelVelNoise = 0.2
	r := NewRadar(cfg, rand.New(rand.NewSource(5)))
	dt := 10 * time.Millisecond
	var minR, maxR = math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		obs := r.Observe(dt, 0, 25, true, 60, 25)
		if !obs.Ahead {
			continue
		}
		minR = math.Min(minR, obs.Range)
		maxR = math.Max(maxR, obs.Range)
	}
	if maxR-minR < 0.1 {
		t.Errorf("range noise absent: spread %v", maxR-minR)
	}
	if minR < 55 || maxR > 65 {
		t.Errorf("range noise implausible: [%v, %v]", minR, maxR)
	}
}

func TestRadarReset(t *testing.T) {
	r := NewRadar(DefaultRadarConfig(), nil)
	dt := 100 * time.Millisecond
	for i := 0; i < 10; i++ {
		r.Observe(dt, 0, 25, true, 60, 20)
	}
	r.Reset()
	if obs := r.Observe(dt, 0, 25, true, 60, 20); obs.Ahead {
		t.Error("radar acquired immediately after Reset")
	}
}

func TestClosingHeadwayTime(t *testing.T) {
	if got := ClosingHeadwayTime(30, 30); got != 1 {
		t.Errorf("headway(30,30) = %v, want 1", got)
	}
	if got := ClosingHeadwayTime(30, 0); !math.IsInf(got, 1) {
		t.Errorf("headway at standstill = %v, want +Inf", got)
	}
}

// TestEgoEnergyQuick property-tests that with zero torque and zero
// braking on flat ground the ego vehicle never speeds up.
func TestEgoEnergyQuick(t *testing.T) {
	f := func(v0 uint8, steps uint8) bool {
		e := NewEgo(DefaultEgoConfig(), float64(v0%50))
		prev := e.Speed()
		for i := 0; i < int(steps); i++ {
			e.Step(0.01, 0, 0, 0)
			if e.Speed() > prev+1e-12 {
				return false
			}
			prev = e.Speed()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLeadConvergesQuick property-tests that a lead vehicle always
// converges to a constant profile speed.
func TestLeadConvergesQuick(t *testing.T) {
	f := func(v0, target uint8) bool {
		tgt := float64(target % 40)
		l := NewLead(0, float64(v0%40), SpeedProfile{{T: 0, Speed: tgt}}, 2)
		for i := 0; i < 5000; i++ {
			l.Step(0.01, time.Duration(i)*10*time.Millisecond)
		}
		return math.Abs(l.Speed()-tgt) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Package inject implements the three robustness-testing fault classes
// from the paper: random value injection, Ballista-style exceptional
// value injection, and random bit flips, plus the per-signal value
// generators they share.
package inject

import (
	"fmt"
	"math"
	"math/rand"

	"cpsmon/internal/sigdb"
)

// Method enumerates the robustness-testing classes.
type Method int

const (
	// Random injects values drawn from wide numeric ranges.
	Random Method = iota + 1
	// Ballista injects exceptional values from a fixed dictionary.
	Ballista
	// BitFlip injects the current value with random bits flipped.
	BitFlip
)

// String returns the method label used in Table I.
func (m Method) String() string {
	switch m {
	case Random:
		return "Random"
	case Ballista:
		return "Ballista"
	case BitFlip:
		return "Bitflips"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// BallistaFloats is the paper's exceptional float dictionary, verbatim:
// NaN, ±∞, ±0.0, ±1.0, multiples of π and e, roots, logarithms, values
// at the 2³² boundary, and the smallest denormals.
func BallistaFloats() []float64 {
	return []float64{
		math.NaN(),
		math.Inf(1),
		math.Inf(-1),
		0.0,
		math.Copysign(0, -1),
		1.0,
		-1.0,
		math.Pi,
		math.Pi / 2,
		math.Pi / 4,
		2 * math.Pi,
		math.E,
		math.E / 2,
		math.E / 4,
		math.Sqrt2,
		math.Sqrt2 / 2,
		math.Ln2,
		math.Ln2 / 2,
		4294967296.000001,
		4294967295.9999995,
		4.9406564584124654e-324,
		-4.9406564584124654e-324,
	}
}

// RandomFloatRange is the random-injection range for float signals,
// "chosen such that it would go beyond the possible non-faulty values
// of the target messages while keeping the range small enough that at
// least some values chosen would land in the value's normal range".
const (
	RandomFloatMin = -2000
	RandomFloatMax = 2000
)

// nominalFrac is the fraction of random float draws taken from the
// signal's normal operating range rather than the full ±2000 span.
// With a uniform draw over ±2000 essentially no values would land in a
// ~0..40 m/s signal's normal range, contradicting the paper's stated
// intent, so a quarter of the draws are confined to the nominal band.
const nominalFrac = 0.25

// nominalRanges maps signals to their normal operating bands.
var nominalRanges = map[string][2]float64{
	sigdb.SigVelocity:     {0, 40},
	sigdb.SigAccelPedPos:  {0, 100},
	sigdb.SigBrakePedPres: {0, 50},
	sigdb.SigACCSetSpeed:  {0, 40},
	sigdb.SigThrotPos:     {0, 100},
	sigdb.SigTargetRange:  {0, 120},
	sigdb.SigTargetRelVel: {-15, 15},
}

// RandomValue draws one random injection value for the signal. Floats
// draw from the wide range (with an occasional nominal-band draw);
// booleans draw 0/1; enumerations draw a random value — valid ordinals
// when typeChecked (the HIL constrains them), raw field values
// otherwise (a real vehicle does not).
func RandomValue(rng *rand.Rand, sig *sigdb.Signal, typeChecked bool) float64 {
	switch sig.Kind {
	case sigdb.Float:
		if rng.Float64() < nominalFrac {
			if band, ok := nominalRanges[sig.Name]; ok {
				return band[0] + rng.Float64()*(band[1]-band[0])
			}
		}
		return RandomFloatMin + rng.Float64()*(RandomFloatMax-RandomFloatMin)
	case sigdb.Bool:
		return float64(rng.Intn(2))
	case sigdb.Enum:
		if typeChecked {
			return float64(rng.Intn(int(sig.EnumMax) + 1))
		}
		max := (uint64(1) << uint(sig.BitLen)) - 1
		return float64(rng.Uint64() % (max + 1))
	default:
		return 0
	}
}

// BallistaValue draws one exceptional injection value. Floats draw from
// the Ballista dictionary; for non-float data types the paper used
// "random valid value injection ... due to the strong value checking
// enforced on the HIL testbed", which RandomValue provides.
func BallistaValue(rng *rand.Rand, sig *sigdb.Signal, typeChecked bool) float64 {
	if sig.Kind == sigdb.Float {
		dict := BallistaFloats()
		return dict[rng.Intn(len(dict))]
	}
	return RandomValue(rng, sig, typeChecked)
}

// FlipBits returns value with n distinct random bits of its on-the-wire
// encoding flipped. Flipping happens in the signal's raw bit field, so
// float targets can turn into NaNs or denormals naturally, a boolean
// flip toggles it, and an enum flip may leave the declared range.
func FlipBits(rng *rand.Rand, sig *sigdb.Signal, value float64, n int) float64 {
	if n <= 0 || n > sig.BitLen {
		n = sig.BitLen
	}
	raw := sig.Encode(value)
	perm := rng.Perm(sig.BitLen)
	for _, bit := range perm[:n] {
		raw ^= uint64(1) << uint(bit)
	}
	return sig.Decode(raw)
}

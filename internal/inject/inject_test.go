package inject

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cpsmon/internal/sigdb"
)

func sigOf(t *testing.T, name string) *sigdb.Signal {
	t.Helper()
	s, ok := sigdb.Vehicle().Signal(name)
	if !ok {
		t.Fatalf("missing signal %q", name)
	}
	return s
}

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{Random, "Random"}, {Ballista, "Ballista"}, {BitFlip, "Bitflips"},
		{Method(9), "Method(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestBallistaFloatsMatchPaperDictionary(t *testing.T) {
	dict := BallistaFloats()
	if len(dict) != 22 {
		t.Fatalf("dictionary has %d entries, want 22", len(dict))
	}
	if !math.IsNaN(dict[0]) {
		t.Error("first entry not NaN")
	}
	if !math.IsInf(dict[1], 1) || !math.IsInf(dict[2], -1) {
		t.Error("infinities missing")
	}
	if dict[3] != 0 || !math.Signbit(dict[4]) {
		t.Error("signed zeros wrong")
	}
	// The 2^32 boundary values and the denormals are verbatim from the
	// paper.
	if dict[18] != 4294967296.000001 || dict[19] != 4294967295.9999995 {
		t.Error("2^32 boundary values wrong")
	}
	if dict[20] != 4.9406564584124654e-324 || dict[21] != -4.9406564584124654e-324 {
		t.Error("denormals wrong")
	}
}

func TestRandomValueFloatRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sig := sigOf(t, sigdb.SigVelocity)
	nominal := 0
	for i := 0; i < 2000; i++ {
		v := RandomValue(rng, sig, true)
		if v < RandomFloatMin || v > RandomFloatMax {
			t.Fatalf("draw %v outside ±2000", v)
		}
		if v >= 0 && v <= 40 {
			nominal++
		}
	}
	// About a quarter of the draws land in the nominal band (plus the
	// sliver of wide draws that land there by chance).
	if nominal < 300 || nominal > 800 {
		t.Errorf("nominal-band draws = %d of 2000, want roughly a quarter", nominal)
	}
}

func TestRandomValueBool(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sig := sigOf(t, sigdb.SigVehicleAhead)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := RandomValue(rng, sig, true)
		if v != 0 && v != 1 {
			t.Fatalf("bool draw %v", v)
		}
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("bool draws not mixed")
	}
}

func TestRandomValueEnumTypeChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sig := sigOf(t, sigdb.SigSelHeadway)
	for i := 0; i < 200; i++ {
		v := RandomValue(rng, sig, true)
		if v < 0 || v > float64(sig.EnumMax) || v != math.Trunc(v) {
			t.Fatalf("type-checked enum draw %v outside 0..%d", v, sig.EnumMax)
		}
	}
}

func TestRandomValueEnumUnchecked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sig := sigOf(t, sigdb.SigSelHeadway)
	outOfRange := false
	for i := 0; i < 500; i++ {
		v := RandomValue(rng, sig, false)
		if v < 0 || v > 255 {
			t.Fatalf("unchecked enum draw %v outside field range", v)
		}
		if v > float64(sig.EnumMax) {
			outOfRange = true
		}
	}
	if !outOfRange {
		t.Error("unchecked enum draws never left the declared range")
	}
}

func TestBallistaValueFloatsFromDictionary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sig := sigOf(t, sigdb.SigTargetRange)
	dict := BallistaFloats()
	inDict := func(v float64) bool {
		for _, d := range dict {
			if v == d || (math.IsNaN(v) && math.IsNaN(d)) {
				return true
			}
		}
		return false
	}
	for i := 0; i < 100; i++ {
		if v := BallistaValue(rng, sig, true); !inDict(v) {
			t.Fatalf("Ballista float draw %v not in dictionary", v)
		}
	}
}

func TestBallistaValueNonFloatUsesRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sig := sigOf(t, sigdb.SigSelHeadway)
	for i := 0; i < 100; i++ {
		v := BallistaValue(rng, sig, true)
		if v < 0 || v > float64(sig.EnumMax) {
			t.Fatalf("Ballista enum draw %v invalid", v)
		}
	}
}

func TestFlipBitsBoolToggles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sig := sigOf(t, sigdb.SigVehicleAhead)
	if got := FlipBits(rng, sig, 0, 1); got != 1 {
		t.Errorf("flip of false = %v, want 1", got)
	}
	if got := FlipBits(rng, sig, 1, 1); got != 0 {
		t.Errorf("flip of true = %v, want 0", got)
	}
}

func TestFlipBitsFloatChangesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sig := sigOf(t, sigdb.SigVelocity)
	changed := 0
	for i := 0; i < 100; i++ {
		got := FlipBits(rng, sig, 24.0, 1)
		if got != 24.0 {
			changed++
		}
	}
	// A single-bit flip of a non-zero float32 always changes the bits;
	// only sign/NaN oddities could alias, so essentially all change.
	if changed < 95 {
		t.Errorf("only %d of 100 single-bit flips changed the value", changed)
	}
}

func TestFlipBitsCountClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sig := sigOf(t, sigdb.SigVehicleAhead)
	// n greater than the field width clamps to flipping every bit.
	if got := FlipBits(rng, sig, 1, 99); got != 0 {
		t.Errorf("clamped flip = %v, want 0", got)
	}
}

// TestFlipBitsInvolutionQuick property-tests that flipping is performed
// in the encoded domain: flipping all bits twice with the same seed
// returns the original wire value.
func TestFlipBitsInvolutionQuick(t *testing.T) {
	sig := sigOf(t, sigdb.SigTargetRange)
	f := func(seed int64, v float32) bool {
		val := float64(v)
		a := FlipBits(rand.New(rand.NewSource(seed)), sig, val, sig.BitLen)
		b := FlipBits(rand.New(rand.NewSource(seed)), sig, a, sig.BitLen)
		want := sig.Decode(sig.Encode(val))
		return b == want || (math.IsNaN(b) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFlipBitsProducesExtremeFloats confirms that exponent-bit flips on
// float targets naturally produce values wildly outside the plausible
// physical range, the out-of-range fault class that drove most of the
// paper's violations.
func TestFlipBitsProducesExtremeFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sig := sigOf(t, sigdb.SigVelocity)
	extreme := false
	for i := 0; i < 2000; i++ {
		got := FlipBits(rng, sig, 24.0, 4)
		if math.Abs(got) > 1e6 {
			extreme = true
			break
		}
	}
	if !extreme {
		t.Error("no extreme values from 2000 4-bit flips of 24.0")
	}
}

package fleet

import (
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/flight"
	"cpsmon/internal/wire"
)

// Archiver receives the server's traffic for durable storage:
// exactly the frame runs each session's monitor applied (post
// stale-filter, so a replay reproduces the verdict), every emitted
// event, and every verdict. archive.Writer implements it. Calls are
// serialized by the server's archive pump — an Archiver needs no
// locking of its own for the server's sake.
type Archiver interface {
	ArchiveFrames(session uint64, vehicle string, frames []can.Frame) error
	ArchiveEvent(session uint64, vehicle string, e wire.Event) error
	ArchiveVerdict(session uint64, vehicle string, v wire.Verdict) error
}

// archFlusher is the optional flush an Archiver may offer; the drain
// barrier calls it before a final verdict is acked, so a drained
// server never leaves its tail records in a library buffer.
type archFlusher interface {
	Flush() error
}

// epochArchiver is the optional spec-provenance extension: an Archiver
// implementing it receives an epoch marker at each spec promote, so
// offline rechecks can tell which spec generation produced the
// surrounding records. archive.Writer implements it.
type epochArchiver interface {
	ArchiveSpecEpoch(epoch uint64, hash string) error
}

// archKind discriminates pump queue items.
type archKind uint8

const (
	archFrames archKind = iota + 1
	archEvent
	archVerdict
	archBarrier
	archEpoch
)

// archItem is one unit of archive work. Frames items reference the
// batch slices decoded from the wire (each batch gets fresh backing
// from wire.Read, so the pump may hold them after the session moves
// on). A barrier carries only its done channel.
type archItem struct {
	kind    archKind
	session uint64
	vehicle string
	frames  []can.Frame
	event   wire.Event
	verdict wire.Verdict
	done    chan struct{}
	// epoch and hash carry an archEpoch marker's payload.
	epoch uint64
	hash  string
}

// archivePump decouples session workers from archive I/O: workers
// enqueue, one goroutine drains into the Archiver. By default frames
// and events are enqueued without blocking — a full queue sheds the
// item and counts it dropped, keeping archive stalls out of the
// ingest path — while under ArchiveBackpressure every enqueue blocks.
// Verdicts and barriers always block, because correctness (a complete
// verdict record, a flushed tail) outranks latency at session end.
type archivePump struct {
	srv     *Server
	sink    Archiver
	ch      chan archItem
	stopped chan struct{}
}

func newArchivePump(s *Server, sink Archiver, depth int) *archivePump {
	p := &archivePump{
		srv:     s,
		sink:    sink,
		ch:      make(chan archItem, depth),
		stopped: make(chan struct{}),
	}
	go p.run()
	return p
}

// run drains the queue until the channel closes, then flushes the sink
// one last time. With a flight recorder attached, every Nth item (the
// recorder's sampling period) and every barrier — the flush/fsync path
// whose stalls matter most — is recorded as an archive-stage span.
func (p *archivePump) run() {
	defer close(p.stopped)
	flt := p.srv.cfg.Flight
	every := uint64(flt.SampleEvery()) // 0 without a recorder
	var n uint64
	for it := range p.ch {
		var t0 time.Time
		sampled := false
		if every > 0 {
			if it.kind == archBarrier {
				sampled = true
			} else if n++; n%every == 0 {
				sampled = true
			}
			if sampled {
				t0 = time.Now()
			}
		}
		var err error
		switch it.kind {
		case archFrames:
			err = p.sink.ArchiveFrames(it.session, it.vehicle, it.frames)
		case archEvent:
			err = p.sink.ArchiveEvent(it.session, it.vehicle, it.event)
		case archVerdict:
			err = p.sink.ArchiveVerdict(it.session, it.vehicle, it.verdict)
		case archBarrier:
			if f, ok := p.sink.(archFlusher); ok {
				err = f.Flush()
			}
			close(it.done)
		case archEpoch:
			if ea, ok := p.sink.(epochArchiver); ok {
				err = ea.ArchiveSpecEpoch(it.epoch, it.hash)
			}
		}
		if sampled {
			// Interning an already-known vehicle is a map lookup under a
			// mutex — fine off the ingest path, on a sampled item only.
			flt.Record(it.session, flt.Intern(it.vehicle), flight.StageArchive, 0, 0, t0, time.Since(t0))
		}
		if err != nil {
			p.srv.stats.archiveErrors.Add(1)
		}
	}
	if f, ok := p.sink.(archFlusher); ok {
		if f.Flush() != nil {
			p.srv.stats.archiveErrors.Add(1)
		}
	}
}

// stop closes the queue and waits for the drain. Only call after every
// producer goroutine has exited (Shutdown does, after wg.Wait).
func (p *archivePump) stop() {
	close(p.ch)
	<-p.stopped
}

// archiveFrames enqueues an applied frame run, shedding on a full
// queue — unless ArchiveBackpressure is set (always true with a
// Ledger), in which case the send blocks: the ledger watermark
// promises every acknowledged frame is in the archive, and recovery's
// skip accounting needs the archived stream to be an exact prefix of
// what the session produced.
func (s *Server) archiveFrames(session uint64, vehicle string, frames []can.Frame) {
	if s.arch == nil || len(frames) == 0 {
		return
	}
	it := archItem{kind: archFrames, session: session, vehicle: vehicle, frames: frames}
	if s.cfg.ArchiveBackpressure {
		s.arch.ch <- it
		s.stats.archiveRecords.Add(1)
		return
	}
	select {
	case s.arch.ch <- it:
		s.stats.archiveRecords.Add(1)
	default:
		s.stats.archiveDropped.Add(1)
	}
}

// archiveEvent enqueues an emitted event, shedding on a full queue
// (blocking under ArchiveBackpressure, as archiveFrames).
func (s *Server) archiveEvent(session uint64, vehicle string, e wire.Event) {
	if s.arch == nil {
		return
	}
	it := archItem{kind: archEvent, session: session, vehicle: vehicle, event: e}
	if s.cfg.ArchiveBackpressure {
		s.arch.ch <- it
		s.stats.archiveRecords.Add(1)
		return
	}
	select {
	case s.arch.ch <- it:
		s.stats.archiveRecords.Add(1)
	default:
		s.stats.archiveDropped.Add(1)
	}
}

// archiveVerdict enqueues a session verdict. The send blocks: a
// verdict happens once per session and must not be shed. The pump
// outlives every session worker, so the send always completes.
func (s *Server) archiveVerdict(session uint64, vehicle string, v wire.Verdict) {
	if s.arch == nil {
		return
	}
	s.arch.ch <- archItem{kind: archVerdict, session: session, vehicle: vehicle, verdict: v}
	s.stats.archiveRecords.Add(1)
}

// archiveEpoch enqueues a spec-epoch marker. Like a verdict the send
// blocks: a promote happens once per rollout and its provenance must
// not be shed. The marker lands in queue order — before any record a
// session produces after noticing the promote.
func (s *Server) archiveEpoch(epoch uint64, hash string) {
	if s.arch == nil {
		return
	}
	if _, ok := s.arch.sink.(epochArchiver); !ok {
		return
	}
	s.arch.ch <- archItem{kind: archEpoch, epoch: epoch, hash: hash}
	s.stats.archiveRecords.Add(1)
}

// archBarrier blocks until every archive item enqueued before it has
// reached the Archiver and the Archiver has flushed. Sessions call it
// before confirming a final verdict delivery during a drain, so the
// drain's last ack implies the session's records are out of the pump.
func (s *Server) archBarrier() {
	if s.arch == nil {
		return
	}
	done := make(chan struct{})
	s.arch.ch <- archItem{kind: archBarrier, done: done}
	<-done
}

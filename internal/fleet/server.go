// Package fleet is the networked ingest tier of the monitor: a TCP
// server that runs one streaming oracle session per connected vehicle.
//
// The paper ran its monitor offline over recorded bus captures, noting
// that "there is no fundamental reason the monitoring could not be done
// at runtime". core.OnlineMonitor realizes the runtime path for a
// single in-process trace; this package scales it out: fleets of
// vehicles uplink their CAN captures over the wire protocol
// (internal/wire) and each connection gets its own isolated monitor
// session, a bounded ingest queue with explicit backpressure or drop
// accounting, and incremental violation events pushed back as they
// become decidable. The server produces byte-for-byte the same
// violations as the offline CheckLog over the same frames.
//
// Session lifecycle (see DESIGN.md for the wire layouts):
//
//	accepted → awaiting-hello → streaming ⇄ parked → draining → closed
//
// A version-1 session lives and dies with its TCP connection, exactly
// as before. A version-2 session survives it: frames arrive as
// sequence-numbered, checksummed batches which the server acknowledges
// cumulatively; a lost connection parks the session — monitor state
// intact, keyed by a resume token — for a grace window, and a Resume
// handshake reattaches it, replaying unseen events and telling the
// client where to retransmit from. Malformed records are quarantined
// against a per-session error budget instead of killing the session,
// and load shedding or bus silence surfaces as explicit gap events.
//
// A session drains — evaluates everything queued, closes the monitor,
// and reports a Verdict — on three paths: the client's Finish record,
// the client's disconnect (v1), or server shutdown.
package fleet

import (
	"bufio"
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// SpecResolver maps a Hello record's spec selection to a compiled rule
// set. The empty name selects the deployment's default rule set.
type SpecResolver func(name string) (*speclang.RuleSet, error)

// Config assembles a fleet ingest server.
type Config struct {
	// DB is the signal database every session decodes frames with;
	// required. It must not be mutated while the server runs.
	DB *sigdb.DB
	// Resolve maps spec selections to rule sets; required. It is
	// called at most once per distinct spec name (results are cached).
	Resolve SpecResolver
	// Period is the evaluation grid step; zero selects the core
	// default (the network's fast frame period).
	Period time.Duration
	// DeltaMode selects multi-rate difference semantics.
	DeltaMode speclang.DeltaMode
	// Triage maps rule names to triage thresholds, as core.Config.
	Triage map[string]core.Triage
	// MaxSessions caps concurrently active sessions; connections over
	// the cap are refused with a wire Error. Zero means unlimited.
	MaxSessions int
	// QueueDepth is the per-session frame-queue capacity in batches.
	// Zero selects the default (64).
	QueueDepth int
	// DropWhenFull selects load-shedding: a batch arriving at a full
	// queue is dropped (and accounted) instead of blocking the
	// connection. Off by default: backpressure propagates to the
	// client through TCP, preserving completeness.
	DropWhenFull bool
	// ErrorBudget bounds malformed records quarantined per attachment
	// before the connection is cut (v2 resumes; v1 dies). Zero selects
	// the default (16).
	ErrorBudget int
	// ResumeGrace is how long a detached v2 session's monitor state is
	// retained awaiting a Resume before it is reaped. Zero selects the
	// default (30s).
	ResumeGrace time.Duration
	// IdleTimeout cuts a connection that produced no record for this
	// long; a v2 session then parks for resume, a v1 session dies.
	// Zero disables the timeout.
	IdleTimeout time.Duration
	// SilenceGap, when positive, makes v2 sessions emit a gap event
	// whenever consecutive frame timestamps are further apart than
	// this — the bus went quiet or the capture has a hole.
	SilenceGap time.Duration
	// Metrics, when not nil, is the registry the server publishes its
	// operational counters, per-spec monitor metrics and session
	// gauges on. Nil selects a private registry — Stats() keeps
	// working, the metrics are simply not exported anywhere. One
	// registry should back at most one server: the session gauges are
	// registered by name and a second server would silently read the
	// first's.
	Metrics *obs.Registry
	// OnEvent, when not nil, is invoked from session worker goroutines
	// exactly once per event the server produces (violation begins,
	// ends and gaps) — resume replays and verdict re-deliveries do not
	// repeat it. It must not block; the verdict journal is the
	// intended consumer.
	OnEvent func(session uint64, vehicle string, e wire.Event)
	// OnVerdict, when not nil, is invoked exactly once per session
	// verdict, when the verdict is built (delivery may still be
	// retried). Sessions reaped without a verdict never invoke it.
	OnVerdict func(session uint64, vehicle string, v wire.Verdict)
	// Archiver, when not nil, receives every applied frame run, every
	// emitted event and every verdict through a bounded queue drained
	// by a dedicated goroutine. Frames and events are shed (and
	// counted dropped) when the queue is full — unless
	// ArchiveBackpressure is set — while verdicts never are.
	// Shutdown drains the queue and flushes the Archiver before
	// returning; closing the Archiver itself stays the caller's job.
	Archiver Archiver
	// ArchiveQueue is the archive queue capacity in items. Zero
	// selects the default (256).
	ArchiveQueue int
	// ArchiveBackpressure makes the archive lossless without crash
	// safety: a session worker blocks on a full archive queue instead
	// of shedding, so the archive is a complete record of every
	// applied frame run and event at the cost of coupling ingest to
	// archive I/O. Implied (and forced) by Ledger.
	ArchiveBackpressure bool
	// Ledger, when not nil, makes the server crash-safe: every v2
	// session grant, acknowledged watermark and verdict is recorded
	// durably before the protocol message that promises it (see the
	// Ledger interface for the ordering contract), and NewRestorer can
	// rebuild ledgered sessions from the archive after a restart.
	// Requires Archiver; incompatible with DropWhenFull, whose
	// shed-batch gap events cannot be rebuilt from archived frames.
	// With a Ledger attached, frame runs and events are never shed at
	// the archive queue — the enqueue blocks instead.
	Ledger Ledger
	// Epoch identifies this server process's ledger generation. It is
	// carried on every SessionGrant; a Resume bearing an epoch larger
	// than the server's own is refused as stale in-flight state (the
	// client talked to a future ledger this process has lost).
	Epoch uint64
	// SessionBase offsets session IDs: the first session is granted
	// SessionBase+1. A restarted server passes the highest ID its
	// ledger ever recorded, so new and recovered sessions never collide
	// in the archive or the ledger.
	SessionBase uint64
	// WatermarkInterval is the ledger group-commit cadence: how often a
	// session's applied progress is made durable (archive barrier +
	// watermark) and acknowledged to the client. Batches apply and
	// their events stream immediately regardless; only the Ack waits
	// for the covering watermark. Zero selects the default (100ms);
	// only consulted when a Ledger is attached.
	WatermarkInterval time.Duration
	// SpecEpoch is the spec generation the server's default rule set
	// starts at. Default-spec sessions stamp the active epoch into
	// their verdicts; a live promote (PromoteShadow) advances it.
	// Sessions selecting a named spec carry epoch zero — the epoch
	// tracks the deployment's default spec lineage only.
	SpecEpoch uint64
	// Flight, when not nil, is the sampled latency flight recorder the
	// server traces batch stages into: queue wait, decode, rule
	// evaluation, event emission, archive writes and ledger syncs. It
	// also enables the per-vehicle end-to-end latency histograms on the
	// server registry. The sampling cost on an unsampled batch is one
	// atomic increment; see internal/flight.
	Flight *flight.Recorder
	// SLO, when not nil, tracks the detection-latency objective: every
	// batch's end-to-end latency is classified good or bad against the
	// SLO target, and the rolling-window burn rate is exported as
	// gauges (and, via monitord, in the /healthz degraded state).
	SLO *flight.SLO
}

const (
	defaultQueueDepth        = 64
	defaultArchiveQueue      = 256
	defaultErrorBudget       = 16
	defaultResumeGrace       = 30 * time.Second
	defaultWatermarkInterval = 100 * time.Millisecond
	// commitBatches is how much applied-but-unledgered progress a
	// drained session queue triggers a group commit at. It must stay
	// well below the client's default replay buffer (256 batches): a
	// client stalls only with a full buffer, which always exceeds this
	// threshold, so the stall is broken by the dry-queue commit rather
	// than the watermark timer.
	commitBatches     = 32
	handshakeTimeout  = 10 * time.Second
	claimTimeout      = 3 * time.Second
	verdictAckTimeout = 2 * time.Second
	numShards         = 16
)

// shard is one slice of the session table. Sessions register on the
// shard keyed by their ID so that registration, deregistration and the
// shutdown sweep never contend on a single lock.
type shard struct {
	mu       sync.Mutex
	sessions map[uint64]*session
}

// specEntry is a resolved spec: the shared immutable monitor, the rule
// order for verdict records, the monitor metrics every session of this
// spec aggregates into, and the flight refs for per-rule eval spans
// (interned once at spec compile, nil without a recorder).
type specEntry struct {
	mon    *core.Monitor
	rules  []string
	met    *core.Metrics
	frules []flight.Ref
}

// parked is one detached v2 session awaiting resume, with the grace
// timer that reaps it.
type parked struct {
	sess  *session
	timer *time.Timer
}

// Server is the fleet ingest daemon: one monitor session per connected
// vehicle.
type Server struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc

	ln     net.Listener
	lnMu   sync.Mutex
	closed atomic.Bool

	wg     sync.WaitGroup // one per connection goroutine
	nextID atomic.Uint64
	active atomic.Int64

	shards [numShards]shard

	// parkMu guards the v2 resume tables: attached sessions by token
	// (for force-detach on a racing resume) and parked sessions by
	// token (for claim and reap).
	parkMu   sync.Mutex
	attached map[uint64]*session
	parkedBy map[uint64]*parked

	// specMu guards the resolved-spec cache and the active epoch: a
	// promote replaces the default entry and advances the epoch in one
	// critical section, so a concurrent Hello can never pair the old
	// spec with the new epoch.
	specMu      sync.Mutex
	specs       map[string]*specEntry
	activeEpoch uint64

	// rollout publishes the current shadow/promote state; rolloutGen
	// tells session workers (one atomic load per batch) that it moved.
	// rolloutMu serializes the Begin/Abort/Promote transitions (readers
	// never take it). shadowSessions counts sessions currently
	// dual-evaluating.
	rolloutMu      sync.Mutex
	rollout        atomic.Pointer[rolloutState]
	rolloutGen     atomic.Uint64
	shadowSessions atomic.Int64

	reg   *obs.Registry
	stats counters

	// arch is the archive pump, nil when no Archiver is configured.
	arch *archivePump
}

// NewServer validates the configuration and builds a server. Call
// Listen (or Serve with your own listener) to start accepting.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("fleet: config requires DB")
	}
	if cfg.Resolve == nil {
		return nil, errors.New("fleet: config requires Resolve")
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("fleet: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.Ledger != nil {
		if cfg.Archiver == nil {
			return nil, errors.New("fleet: Ledger requires an Archiver (recovery rebuilds sessions from archived frames)")
		}
		if cfg.DropWhenFull {
			return nil, errors.New("fleet: Ledger is incompatible with DropWhenFull (shed batches cannot be rebuilt from the archive)")
		}
		cfg.ArchiveBackpressure = true
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.ResumeGrace == 0 {
		cfg.ResumeGrace = defaultResumeGrace
	}
	if cfg.WatermarkInterval <= 0 {
		cfg.WatermarkInterval = defaultWatermarkInterval
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		specs:    make(map[string]*specEntry),
		attached: make(map[uint64]*session),
		parkedBy: make(map[uint64]*parked),
		reg:      reg,
		stats:    newCounters(reg),
	}
	for i := range s.shards {
		s.shards[i].sessions = make(map[uint64]*session)
	}
	s.nextID.Store(cfg.SessionBase)
	s.activeEpoch = cfg.SpecEpoch
	reg.GaugeFunc("cpsmon_shadow_sessions", "Sessions currently shadow-evaluating a candidate spec.",
		func() float64 { return float64(s.shadowSessions.Load()) })
	reg.GaugeFunc("cpsmon_fleet_sessions_active", "Sessions currently accepted and not yet resolved.",
		func() float64 {
			opened, closed := s.stats.sessionsOpened.Value(), s.stats.sessionsClosed.Value()
			if opened <= closed {
				return 0
			}
			return float64(opened - closed)
		})
	reg.GaugeFunc("cpsmon_fleet_sessions_parked", "Detached v2 sessions awaiting resume.",
		func() float64 {
			s.parkMu.Lock()
			n := len(s.parkedBy)
			s.parkMu.Unlock()
			return float64(n)
		})
	if cfg.Archiver != nil {
		depth := cfg.ArchiveQueue
		if depth <= 0 {
			depth = defaultArchiveQueue
		}
		s.arch = newArchivePump(s, cfg.Archiver, depth)
		reg.GaugeFunc("cpsmon_fleet_archive_queue_depth", "Archive items waiting in the pump queue.",
			func() float64 { return float64(len(s.arch.ch)) })
	}
	registerFlightMetrics(reg, cfg.Flight, cfg.SLO)
	return s, nil
}

// Registry returns the server's metrics registry — the one passed via
// Config.Metrics, or the private one created in its absence.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Listen binds addr and starts serving in the background. Use Addr to
// learn the bound address (handy with a ":0" port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return nil
}

// Serve accepts sessions on ln until the listener closes or the server
// shuts down. It blocks; the returned error is nil on clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.acceptLoop(ln)
	return nil
}

// Addr returns the listening address, or nil before Listen/Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or fatal accept error.
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting new sessions and drains: attached sessions
// evaluate what is queued, close their monitors and deliver verdicts;
// parked sessions get the remainder of the drain window to resume (the
// listener stays open for Resume handshakes) and drain in turn. It
// waits for completion or ctx expiry, whichever is first; on expiry
// remaining connections are force-closed and parked sessions reaped.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return errors.New("fleet: Shutdown called twice")
	}
	s.cancel()
	// Unblock readers parked in wire.Read so they notice the cancelled
	// context and enter the drain path. Repeated below for sessions
	// that resume mid-drain. Only streaming readers are nudged: once a
	// session drains, its connection belongs to the verdict-ack wait,
	// which sets its own deadline.
	s.sweep(nudgeStreaming)

	var err error
	for s.active.Load() != 0 || s.awaitedParked() != 0 {
		if ctx.Err() != nil {
			s.sweep(func(sess *session) { sess.conn.Close() })
			err = fmt.Errorf("fleet: shutdown deadline exceeded, sessions force-closed: %w", ctx.Err())
			break
		}
		time.Sleep(2 * time.Millisecond)
		s.sweep(nudgeStreaming)
	}

	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.reapAll()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(100 * time.Millisecond):
		s.sweep(func(sess *session) { sess.conn.Close() })
		<-done
	}
	if s.arch != nil {
		// Every producer goroutine is down; drain the archive queue and
		// flush the Archiver so no tail record is left in flight.
		s.arch.stop()
	}
	return err
}

// awaitedParked counts parked sessions the drain must wait for: those
// still owed a verdict, and those whose verdict never reached the
// client (the resume fetches it). Their grace timers keep running, so
// the wait is bounded by the resume grace even if the client is gone.
func (s *Server) awaitedParked() int {
	s.parkMu.Lock()
	defer s.parkMu.Unlock()
	n := 0
	for _, p := range s.parkedBy {
		if !p.sess.finalized {
			// With a ledger the session is preserved across the restart
			// and this process will never finalize it — waiting would
			// only stall the drain.
			if s.cfg.Ledger == nil {
				n++
			}
			continue
		}
		if !p.sess.delivered {
			n++
		}
	}
	return n
}

// nudgeStreaming expires a streaming reader's blocking Read so it
// notices the cancelled context.
func nudgeStreaming(sess *session) {
	if sess.state.Load() == stateStreaming {
		sess.conn.SetReadDeadline(time.Now())
	}
}

// sweep applies fn to every attached session.
func (s *Server) sweep(fn func(*session)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			fn(sess)
		}
		sh.mu.Unlock()
	}
}

func (s *Server) register(sess *session) {
	sh := &s.shards[sess.id%numShards]
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
	if sess.proto >= 2 {
		s.parkMu.Lock()
		s.attached[sess.token] = sess
		s.parkMu.Unlock()
	}
}

// unregister detaches the session from the live tables and, when park
// is true, parks it for resume in the same critical section (so a
// racing claim never finds the token in neither table).
func (s *Server) unregister(sess *session, park bool) {
	sh := &s.shards[sess.id%numShards]
	sh.mu.Lock()
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
	if sess.proto < 2 {
		return
	}
	s.parkMu.Lock()
	delete(s.attached, sess.token)
	// During a drain only sessions owed a verdict delivery may park;
	// run() applies the same rule, this re-check closes the race with a
	// Shutdown that started in between.
	if park && (!s.closed.Load() || !sess.finalized || !sess.delivered) {
		p := &parked{sess: sess}
		p.timer = time.AfterFunc(s.cfg.ResumeGrace, func() { s.reap(sess.token) })
		s.parkedBy[sess.token] = p
		s.parkMu.Unlock()
		return
	}
	s.parkMu.Unlock()
	if park {
		// Shutdown raced the park: resolve the session here instead.
		s.discard(sess)
	}
}

// claim removes the parked session for token and returns it. If the
// token is still attached — the client saw a disconnect the server has
// not noticed yet — the stale attachment is force-closed and claim
// waits for it to park.
func (s *Server) claim(token uint64) *session {
	deadline := time.Now().Add(claimTimeout)
	for {
		s.parkMu.Lock()
		if p, ok := s.parkedBy[token]; ok {
			delete(s.parkedBy, token)
			p.timer.Stop()
			s.parkMu.Unlock()
			return p.sess
		}
		act := s.attached[token]
		s.parkMu.Unlock()
		if act == nil || time.Now().After(deadline) {
			return nil
		}
		act.conn.Close()
		time.Sleep(2 * time.Millisecond)
	}
}

// reap resolves a parked session whose grace window expired.
func (s *Server) reap(token uint64) {
	s.parkMu.Lock()
	p, ok := s.parkedBy[token]
	if ok {
		delete(s.parkedBy, token)
	}
	s.parkMu.Unlock()
	if ok {
		s.discard(p.sess)
	}
}

// reapAll discards every parked session (shutdown).
func (s *Server) reapAll() {
	s.parkMu.Lock()
	ps := make([]*parked, 0, len(s.parkedBy))
	for _, p := range s.parkedBy {
		ps = append(ps, p)
	}
	s.parkedBy = make(map[uint64]*parked)
	s.parkMu.Unlock()
	for _, p := range ps {
		p.timer.Stop()
		s.discard(p.sess)
	}
}

// discard resolves a detached session that will never resume *in this
// process*. A finalized session was already counted when its verdict
// was built; an unfinalized one is reaped — its monitor closed
// quietly. With a ledger attached, the closure is recorded so recovery
// skips the session — except during shutdown, when a session still
// owed its verdict delivery is deliberately left open in the ledger:
// its in-memory monitor dies with the process, but the next process
// rebuilds it from the archive and the client's resume still succeeds.
func (s *Server) discard(sess *session) {
	if sess.shadow != nil {
		// The worker is gone (only parked/reaped sessions are
		// discarded), so the shadow is ours to release.
		sess.dropShadow()
	}
	if s.cfg.Ledger != nil && s.closed.Load() && (!sess.finalized || !sess.delivered) {
		if !sess.finalized {
			sess.finalized = true
			sess.om.Close()
			s.stats.sessionsReaped.Add(1)
			s.stats.sessionsClosed.Add(1)
		}
		return
	}
	s.logClosed(sess)
	if sess.finalized {
		return
	}
	sess.finalized = true
	sess.om.Close()
	s.stats.sessionsReaped.Add(1)
	s.stats.sessionsClosed.Add(1)
}

// spec resolves and caches one spec selection.
func (s *Server) spec(name string) (*specEntry, error) {
	e, _, err := s.specFor(name)
	return e, err
}

// specFor resolves a spec selection together with the epoch stamp its
// sessions carry, in one specMu critical section — so a Hello racing a
// promote gets either (old spec, old epoch) or (new spec, new epoch),
// never a mixture. Named specs are outside the default lineage and
// stamp zero.
func (s *Server) specFor(name string) (*specEntry, uint64, error) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	epoch := uint64(0)
	if name == "" {
		epoch = s.activeEpoch
	}
	if e, ok := s.specs[name]; ok {
		return e, epoch, nil
	}
	rs, err := s.cfg.Resolve(name)
	if err != nil {
		return nil, 0, err
	}
	mon, err := core.New(core.Config{
		Rules:     rs,
		Period:    s.cfg.Period,
		DeltaMode: s.cfg.DeltaMode,
		Triage:    s.cfg.Triage,
	})
	if err != nil {
		return nil, 0, err
	}
	e := &specEntry{mon: mon}
	for _, r := range rs.Rules() {
		e.rules = append(e.rules, r.Name)
	}
	label := name
	if label == "" {
		label = "default"
	}
	e.met = core.NewMetrics(s.reg, label, e.rules)
	if flt := s.cfg.Flight; flt != nil {
		for _, r := range e.rules {
			e.frules = append(e.frules, flt.Intern(r))
		}
	}
	s.specs[name] = e
	return e, epoch, nil
}

// refuse answers a connection that never became a session.
func (s *Server) refuse(conn net.Conn, msg string) {
	s.stats.sessionsRefused.Add(1)
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	wire.Write(conn, wire.Error{Msg: msg})
	conn.Close()
}

// newToken draws a nonzero random resume token.
func newToken() uint64 {
	var b [8]byte
	for {
		if _, err := cryptorand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("fleet: token entropy: %v", err))
		}
		if t := binary.LittleEndian.Uint64(b[:]); t != 0 {
			return t
		}
	}
}

// handleConn performs the handshake — a Hello opening a fresh session
// or a Resume reattaching a parked one — and runs the attachment to
// completion.
func (s *Server) handleConn(conn net.Conn) {
	if n := s.active.Add(1); s.cfg.MaxSessions > 0 && n > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		s.refuse(conn, fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
		return
	}
	defer s.active.Add(-1)

	br := bufio.NewReaderSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	rec, err := wire.Read(br)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("handshake: %v", err))
		return
	}
	conn.SetReadDeadline(time.Time{})

	switch rec := rec.(type) {
	case wire.Hello:
		s.handleHello(conn, br, rec)
	case wire.Resume:
		s.handleResume(conn, br, rec)
	default:
		s.refuse(conn, fmt.Sprintf("handshake: expected hello or resume, got %T", rec))
	}
}

func (s *Server) handleHello(conn net.Conn, br *bufio.Reader, hello wire.Hello) {
	if hello.Version < wire.MinVersion || hello.Version > wire.Version {
		s.refuse(conn, fmt.Sprintf("protocol version %d unsupported (server speaks %d..%d)",
			hello.Version, wire.MinVersion, wire.Version))
		return
	}
	if s.closed.Load() {
		s.refuse(conn, "server draining")
		return
	}
	entry, epoch, err := s.specFor(hello.Spec)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("spec %q: %v", hello.Spec, err))
		return
	}
	om, err := entry.mon.Online(s.cfg.DB)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("session setup: %v", err))
		return
	}
	om.Instrument(entry.met)

	sess := &session{
		id:        s.nextID.Add(1),
		srv:       s,
		proto:     hello.Version,
		om:        om,
		entry:     entry,
		vehicle:   hello.Vehicle,
		specName:  hello.Spec,
		specEpoch: epoch,
		tally:     make(map[string]*ruleTally, len(entry.rules)),
	}
	sess.setupFlight()
	var ack wire.Record = wire.HelloAck{Session: sess.id}
	if sess.proto >= 2 {
		sess.token = newToken()
		if led := s.cfg.Ledger; led != nil {
			// The grant is durable before the client can hold it, so a
			// granted token always resolves to something after a crash.
			if err := led.SessionOpened(sess.id, sess.token, sess.proto, sess.vehicle, hello.Spec); err != nil {
				s.stats.ledgerErrors.Add(1)
				om.Close()
				s.refuse(conn, fmt.Sprintf("session ledger: %v", err))
				return
			}
		}
		ack = wire.SessionGrant{Session: sess.id, Token: sess.token, Epoch: s.cfg.Epoch}
	}
	s.stats.sessionsOpened.Add(1)
	if err := wire.Write(conn, ack); err != nil {
		conn.Close()
		s.discard(sess)
		return
	}
	s.attach(sess, conn, br)
}

func (s *Server) handleResume(conn net.Conn, br *bufio.Reader, res wire.Resume) {
	if res.Version < 2 || res.Version > wire.Version {
		s.refuse(conn, fmt.Sprintf("protocol version %d unsupported for resume (server speaks 2..%d)",
			res.Version, wire.Version))
		return
	}
	if res.Epoch > s.cfg.Epoch {
		// The client's grant came from a later ledger epoch than this
		// process carries: the server's durable state was lost or
		// rolled back, and silently resuming would serve stale state as
		// truth. Refuse so the client fails loudly instead.
		s.refuse(conn, fmt.Sprintf("stale server state: client holds epoch %d, server is at epoch %d",
			res.Epoch, s.cfg.Epoch))
		return
	}
	sess := s.claim(res.Token)
	if sess == nil {
		s.refuse(conn, "unknown or expired session token")
		return
	}
	s.stats.sessionsResumed.Add(1)
	if sess.finalized {
		s.deliverFinal(conn, br, sess, res.LastEventSeq)
		return
	}
	if err := wire.Write(conn, wire.SessionGrant{
		Session: sess.id, Token: sess.token, AckSeq: sess.lastApplied, Epoch: s.cfg.Epoch,
	}); err != nil {
		conn.Close()
		s.repark(sess)
		return
	}
	sess.resumeFrom = res.LastEventSeq
	s.attach(sess, conn, br)
}

// deliverFinal re-serves a finalized session's event tail and verdict
// to a client that missed them, then re-parks the session for another
// grace round in case this delivery is lost too.
func (s *Server) deliverFinal(conn net.Conn, br *bufio.Reader, sess *session, lastEventSeq uint64) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	wire.Write(bw, wire.SessionGrant{Session: sess.id, Token: sess.token, AckSeq: sess.lastApplied, Epoch: s.cfg.Epoch})
	from := lastEventSeq
	if from > uint64(len(sess.events)) {
		from = uint64(len(sess.events))
	}
	for i := from; i < uint64(len(sess.events)); i++ {
		wire.Write(bw, wire.SeqEvent{Seq: i + 1, Event: sess.events[i]})
	}
	// bufio's error is sticky, so a clean final flush means every write
	// above reached the transport.
	if wire.Write(bw, *sess.verdictRec) == nil && bw.Flush() == nil {
		sess.delivered = true
		s.logDelivered(sess)
	}
	if s.closed.Load() && sess.delivered {
		// During a drain, only the client's ack proves delivery — and
		// the ack must not outrun the session's archive records.
		s.archBarrier()
		sess.confirmDelivery(conn, br)
	}
	conn.Close()
	s.repark(sess)
}

// repark returns a claimed-but-unattached session to the parked table.
func (s *Server) repark(sess *session) {
	s.parkMu.Lock()
	if !s.closed.Load() || !sess.finalized || !sess.delivered {
		p := &parked{sess: sess}
		p.timer = time.AfterFunc(s.cfg.ResumeGrace, func() { s.reap(sess.token) })
		s.parkedBy[sess.token] = p
		s.parkMu.Unlock()
		return
	}
	s.parkMu.Unlock()
	s.discard(sess)
}

// attach binds a connection to the session and runs it; afterwards the
// session either parks for resume or resolves for good.
func (s *Server) attach(sess *session, conn net.Conn, br *bufio.Reader) {
	sess.conn = conn
	sess.br = br
	sess.bw = bufio.NewWriterSize(conn, 64<<10)
	sess.queue = make(chan item, s.cfg.QueueDepth)
	sess.workerDone = make(chan struct{})
	sess.quarantined = 0
	sess.lastEnq = sess.lastApplied // unapplied queue items died with the old attachment
	sess.endMu.Lock()
	sess.suspended = false
	sess.endMu.Unlock()

	s.register(sess)
	park := sess.run()
	s.unregister(sess, park)
	if !park {
		// The attachment resolved the session for good (terminal abort,
		// or a drain that saw the verdict delivered and acked).
		s.logClosed(sess)
		if !sess.finalized {
			s.stats.sessionsClosed.Add(1)
			sess.finalized = true // terminal: never counted again
		}
	}
}

// Package fleet is the networked ingest tier of the monitor: a TCP
// server that runs one streaming oracle session per connected vehicle.
//
// The paper ran its monitor offline over recorded bus captures, noting
// that "there is no fundamental reason the monitoring could not be done
// at runtime". core.OnlineMonitor realizes the runtime path for a
// single in-process trace; this package scales it out: fleets of
// vehicles uplink their CAN captures over the wire protocol
// (internal/wire) and each connection gets its own isolated monitor
// session, a bounded ingest queue with explicit backpressure or drop
// accounting, and incremental violation events pushed back as they
// become decidable. The server produces byte-for-byte the same
// violations as the offline CheckLog over the same frames.
//
// Session lifecycle (see DESIGN.md for the wire layouts):
//
//	accepted → awaiting-hello → streaming → draining → closed
//
// A session drains — evaluates everything queued, closes the monitor,
// and reports a Verdict — on three paths: the client's Finish record,
// the client's disconnect, or server shutdown.
package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// SpecResolver maps a Hello record's spec selection to a compiled rule
// set. The empty name selects the deployment's default rule set.
type SpecResolver func(name string) (*speclang.RuleSet, error)

// Config assembles a fleet ingest server.
type Config struct {
	// DB is the signal database every session decodes frames with;
	// required. It must not be mutated while the server runs.
	DB *sigdb.DB
	// Resolve maps spec selections to rule sets; required. It is
	// called at most once per distinct spec name (results are cached).
	Resolve SpecResolver
	// Period is the evaluation grid step; zero selects the core
	// default (the network's fast frame period).
	Period time.Duration
	// DeltaMode selects multi-rate difference semantics.
	DeltaMode speclang.DeltaMode
	// Triage maps rule names to triage thresholds, as core.Config.
	Triage map[string]core.Triage
	// MaxSessions caps concurrently active sessions; connections over
	// the cap are refused with a wire Error. Zero means unlimited.
	MaxSessions int
	// QueueDepth is the per-session frame-queue capacity in batches.
	// Zero selects the default (64).
	QueueDepth int
	// DropWhenFull selects load-shedding: a batch arriving at a full
	// queue is dropped (and accounted) instead of blocking the
	// connection. Off by default: backpressure propagates to the
	// client through TCP, preserving completeness.
	DropWhenFull bool
}

const (
	defaultQueueDepth = 64
	handshakeTimeout  = 10 * time.Second
	numShards         = 16
)

// shard is one slice of the session table. Sessions register on the
// shard keyed by their ID so that registration, deregistration and the
// shutdown sweep never contend on a single lock.
type shard struct {
	mu       sync.Mutex
	sessions map[uint64]*session
}

// specEntry is a resolved spec: the shared immutable monitor plus the
// rule order for verdict records.
type specEntry struct {
	mon   *core.Monitor
	rules []string
}

// Server is the fleet ingest daemon: one monitor session per connected
// vehicle.
type Server struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc

	ln     net.Listener
	lnMu   sync.Mutex
	closed atomic.Bool

	wg     sync.WaitGroup // one per connection goroutine
	nextID atomic.Uint64
	active atomic.Int64

	shards [numShards]shard

	specMu sync.Mutex
	specs  map[string]*specEntry

	stats counters
}

// NewServer validates the configuration and builds a server. Call
// Listen (or Serve with your own listener) to start accepting.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("fleet: config requires DB")
	}
	if cfg.Resolve == nil {
		return nil, errors.New("fleet: config requires Resolve")
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("fleet: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, ctx: ctx, cancel: cancel, specs: make(map[string]*specEntry)}
	for i := range s.shards {
		s.shards[i].sessions = make(map[uint64]*session)
	}
	return s, nil
}

// Listen binds addr and starts serving in the background. Use Addr to
// learn the bound address (handy with a ":0" port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return nil
}

// Serve accepts sessions on ln until the listener closes or the server
// shuts down. It blocks; the returned error is nil on clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.acceptLoop(ln)
	return nil
}

// Addr returns the listening address, or nil before Listen/Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or fatal accept error.
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting, drains every active session — queued
// frames are evaluated, monitors closed, verdicts delivered — and
// waits for completion or ctx expiry, whichever is first. On expiry
// the remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return errors.New("fleet: Shutdown called twice")
	}
	s.cancel()
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	// Unblock readers parked in wire.Read so they notice the
	// cancelled context and enter the drain path.
	s.sweep(func(sess *session) { sess.conn.SetReadDeadline(time.Now()) })

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.sweep(func(sess *session) { sess.conn.Close() })
		<-done
		return fmt.Errorf("fleet: shutdown deadline exceeded, sessions force-closed: %w", ctx.Err())
	}
}

// sweep applies fn to every registered session.
func (s *Server) sweep(fn func(*session)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			fn(sess)
		}
		sh.mu.Unlock()
	}
}

func (s *Server) register(sess *session) {
	sh := &s.shards[sess.id%numShards]
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
}

func (s *Server) unregister(sess *session) {
	sh := &s.shards[sess.id%numShards]
	sh.mu.Lock()
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
}

// spec resolves and caches one spec selection.
func (s *Server) spec(name string) (*specEntry, error) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	if e, ok := s.specs[name]; ok {
		return e, nil
	}
	rs, err := s.cfg.Resolve(name)
	if err != nil {
		return nil, err
	}
	mon, err := core.New(core.Config{
		Rules:     rs,
		Period:    s.cfg.Period,
		DeltaMode: s.cfg.DeltaMode,
		Triage:    s.cfg.Triage,
	})
	if err != nil {
		return nil, err
	}
	e := &specEntry{mon: mon}
	for _, r := range rs.Rules() {
		e.rules = append(e.rules, r.Name)
	}
	s.specs[name] = e
	return e, nil
}

// refuse answers a connection that never became a session.
func (s *Server) refuse(conn net.Conn, msg string) {
	s.stats.sessionsRefused.Add(1)
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	wire.Write(conn, wire.Error{Msg: msg})
	conn.Close()
}

// handleConn performs the handshake and, on success, runs the session
// to completion.
func (s *Server) handleConn(conn net.Conn) {
	if n := s.active.Add(1); s.cfg.MaxSessions > 0 && n > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		s.refuse(conn, fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
		return
	}
	defer s.active.Add(-1)

	br := bufio.NewReaderSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	rec, err := wire.Read(br)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("handshake: %v", err))
		return
	}
	hello, ok := rec.(wire.Hello)
	if !ok {
		s.refuse(conn, fmt.Sprintf("handshake: expected hello, got %T", rec))
		return
	}
	if hello.Version != wire.Version {
		s.refuse(conn, fmt.Sprintf("protocol version %d unsupported (server speaks %d)", hello.Version, wire.Version))
		return
	}
	entry, err := s.spec(hello.Spec)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("spec %q: %v", hello.Spec, err))
		return
	}
	om, err := entry.mon.Online(s.cfg.DB)
	if err != nil {
		s.refuse(conn, fmt.Sprintf("session setup: %v", err))
		return
	}
	conn.SetReadDeadline(time.Time{})

	sess := &session{
		id:         s.nextID.Add(1),
		srv:        s,
		conn:       conn,
		br:         br,
		bw:         bufio.NewWriterSize(conn, 64<<10),
		queue:      make(chan batch, s.cfg.QueueDepth),
		om:         om,
		entry:      entry,
		vehicle:    hello.Vehicle,
		tally:      make(map[string]*ruleTally, len(entry.rules)),
		workerDone: make(chan struct{}),
	}
	s.register(sess)
	s.stats.sessionsOpened.Add(1)
	defer func() {
		s.unregister(sess)
		s.stats.sessionsClosed.Add(1)
	}()

	if err := wire.Write(conn, wire.HelloAck{Session: sess.id}); err != nil {
		conn.Close()
		return
	}
	sess.run()
}

package fleet

import "cpsmon/internal/wire"

// Ledger is the server's durable session log: a record of every v2
// session grant, every acknowledged watermark and every verdict,
// written *ahead* of the protocol message that promises it, so a
// process crash can never leave a client holding a promise the next
// process cannot honor. internal/durable implements it over an
// fsync'd append log.
//
// The ordering contract, per call site:
//
//   - SessionOpened is durable before the SessionGrant reaches the
//     client, so a granted token always resolves after a restart.
//   - Watermark is appended after every frame (and event) it covers
//     has been handed to the Archiver and flushed, and before any Ack
//     or resume grant acknowledging that sequence is written — an
//     acknowledged batch is therefore always rebuildable from the
//     archive. Watermarks are group-committed on a timer
//     (Config.WatermarkInterval) rather than per batch; acks simply
//     wait for the next commit, and a park, finish or drain forces
//     one. Implementations may group the fsync; the write itself must
//     hit the OS before returning, which is what a SIGKILL threat
//     model requires.
//   - VerdictReached is durable before the VerdictSeq reaches the
//     client, so a delivered verdict survives the process and is
//     re-served byte-identically, never re-decided.
//   - VerdictDelivered and SessionClosed are advisory bookkeeping
//     (best-effort durability is fine): they let recovery skip
//     sessions that are already resolved.
//
// A server with a Ledger requires an Archiver and refuses
// DropWhenFull: shed-batch gap events cannot be reproduced from
// archived frames, so crash-safe mode must be lossless.
//
// Calls arrive from session worker and handshake goroutines
// concurrently; implementations must be safe for concurrent use.
type Ledger interface {
	// SessionOpened records a granted session before the grant is sent.
	SessionOpened(session, token uint64, proto uint16, vehicle, spec string) error
	// Watermark records the acknowledged batch sequence and the
	// cumulative applied/rejected frame counts at that point.
	Watermark(session, ackSeq, frames, rejected uint64) error
	// VerdictReached records the session's verdict and the event count
	// its VerdictSeq carries.
	VerdictReached(session, eventSeq uint64, v wire.Verdict) error
	// VerdictDelivered records that a verdict write reached the
	// transport at least once.
	VerdictDelivered(session uint64) error
	// SessionClosed records that the session resolved for good and
	// recovery should never restore it.
	SessionClosed(session uint64) error
}

// logClosed appends a SessionClosed record, counting failures.
func (s *Server) logClosed(sess *session) {
	if led := s.cfg.Ledger; led != nil && sess.proto >= 2 {
		if err := led.SessionClosed(sess.id); err != nil {
			s.stats.ledgerErrors.Add(1)
		}
	}
}

// logDelivered appends a VerdictDelivered record, counting failures.
func (s *Server) logDelivered(sess *session) {
	if led := s.cfg.Ledger; led != nil && sess.proto >= 2 {
		if err := led.VerdictDelivered(sess.id); err != nil {
			s.stats.ledgerErrors.Add(1)
		}
	}
}

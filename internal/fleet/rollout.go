package fleet

// Live spec rollout: the server can carry one candidate spec at a time
// through shadow evaluation to an atomic promote (or an abort), without
// restarting and without touching the shadow-off hot path.
//
// The mechanism is a generation counter plus an atomic pointer to an
// immutable rolloutState. Session workers keep a worker-local copy of
// the generation and compare it against the server's with a single
// atomic load at each batch boundary — the only rollout cost a
// shadow-off batch ever pays. When the generation moved, the worker
// reconciles against the published state: it starts a shadow, drops
// one, or adopts the candidate as its primary. Everything a worker
// mutates is worker-owned session state, so promotion needs no
// per-session locking and lands exactly at a batch boundary — never
// mid-batch.
//
// Begin/Abort/Promote serialize on rolloutMu, so a transition always
// sees the state it read: a promote cannot race an abort into
// installing a superseded candidate, and the multi-step promote
// (spec-cache swap, durable provenance, publish) is atomic with
// respect to the other transitions. Workers stay lock-free — they only
// load the published pointer.
//
// Shadow soundness: a candidate monitor is only comparable to the
// primary when both have seen the identical frame prefix (warmup
// windows, prev() references and state machines all depend on it).
// Sessions therefore only shadow from their first frame: a session
// that already applied frames before the rollout began keeps running
// the old spec alone, and — having no comparable shadow — keeps the
// old spec and epoch even through a promote. New sessions arriving
// after the promote resolve the candidate directly from the spec
// cache. The e2e consequence: every delivered verdict is entirely one
// spec's, stamped with that spec's epoch, never a splice.

import (
	"errors"
	"fmt"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/speclang"
)

// rolloutMode is the phase of the published rollout state.
type rolloutMode int32

const (
	rolloutShadowing rolloutMode = iota + 1
	rolloutPromoted
)

// rolloutState is one immutable rollout phase. Transitions publish a
// fresh value and bump the server generation; workers reconcile against
// whatever value is current when they notice.
type rolloutState struct {
	mode  rolloutMode
	hash  string
	entry *specEntry
	epoch uint64 // nonzero once promoted

	// base is the server-lifetime shadow counters snapshotted when this
	// round began; ShadowStats subtracts it so every round reports from
	// zero. Carried unchanged through promote — the stats counters
	// themselves are cumulative metrics and never reset.
	base shadowBaseline
}

// shadowBaseline is one snapshot of the cumulative shadow counters.
type shadowBaseline struct {
	batches, divergentBatches, divergences, errors uint64
}

func (s *Server) shadowBaselineNow() shadowBaseline {
	return shadowBaseline{
		batches:          s.stats.shadowBatches.Value(),
		divergentBatches: s.stats.shadowDivergentBatches.Value(),
		divergences:      s.stats.shadowDivergences.Value(),
		errors:           s.stats.shadowErrors.Value(),
	}
}

// epochLedger is the optional ledger extension recording spec-epoch
// transitions; durable.Ledger implements it. Recorded on promote so
// crash recovery knows which spec generation produced ledgered
// verdicts.
type epochLedger interface {
	SpecEpochChanged(epoch uint64, hash string) error
}

// ShadowStats is a point-in-time view of the current rollout, the
// controller's feedback signal for promote/rollback decisions.
type ShadowStats struct {
	// Hash identifies the candidate; Promoted and Epoch report a
	// completed promote.
	Hash     string
	Promoted bool
	Epoch    uint64
	// Sessions counts sessions currently dual-evaluating.
	Sessions int64
	// Batches counts this round's shadow-compared batches;
	// DivergentBatches those where the two specs disagreed; Divergences
	// the per-rule event count deltas summed over divergent batches;
	// Errors candidate evaluation failures (each costs that session its
	// shadow). All four start at zero for every round.
	Batches, DivergentBatches, Divergences, Errors uint64
}

// BeginShadow compiles source as the candidate spec and starts shadow
// mode: eligible sessions (default-spec, and not yet past their first
// frame) evaluate it alongside their primary from their next batch on.
// A rollout already in flight is replaced — its shadows are dropped at
// each worker's next boundary. The hash is the caller's identity for
// the candidate (the registry's content hash); Promote and Abort must
// present the same one.
func (s *Server) BeginShadow(hash, source string) error {
	if hash == "" {
		return errors.New("fleet: shadow requires a candidate hash")
	}
	entry, err := s.compileCandidate(source)
	if err != nil {
		return fmt.Errorf("fleet: candidate %s: %w", hash, err)
	}
	s.rolloutMu.Lock()
	defer s.rolloutMu.Unlock()
	s.rollout.Store(&rolloutState{
		mode:  rolloutShadowing,
		hash:  hash,
		entry: entry,
		base:  s.shadowBaselineNow(),
	})
	s.rolloutGen.Add(1)
	s.stats.shadowRounds.Add(1)
	return nil
}

// AbortShadow ends the rollout for hash without promoting: the
// published state is cleared and every shadowing session drops its
// candidate at the next batch boundary. No candidate state survives —
// zero candidate verdicts were ever deliverable, since shadow events
// never reach the emit path. A round that already promoted is past
// aborting — the candidate is the active spec with durable provenance
// written, so a late rollback must be refused, not half-applied.
func (s *Server) AbortShadow(hash string) error {
	s.rolloutMu.Lock()
	defer s.rolloutMu.Unlock()
	st := s.rollout.Load()
	if st == nil || st.hash != hash {
		return fmt.Errorf("fleet: no rollout for candidate %s", hash)
	}
	if st.mode == rolloutPromoted {
		return fmt.Errorf("fleet: candidate %s already promoted at epoch %d", hash, st.epoch)
	}
	s.rollout.Store(nil)
	s.rolloutGen.Add(1)
	return nil
}

// PromoteShadow makes the candidate the active spec at epoch:
//
//   - the default-spec cache entry is replaced, so sessions opened from
//     now on compile nothing and stamp the new epoch;
//   - the transition is recorded in the ledger (when it tracks epochs)
//     and as an archive epoch marker, before any session can deliver a
//     candidate-stamped verdict;
//   - shadowing sessions adopt their candidate monitor — warm, fed the
//     identical frame prefix — at their next batch boundary, retallied
//     as if the candidate had been primary all along.
//
// Sessions that predate the shadow round (no comparable candidate
// state) deliberately keep the old spec and epoch to the end of their
// stream.
func (s *Server) PromoteShadow(hash string, epoch uint64) error {
	if epoch == 0 {
		return errors.New("fleet: promote requires a nonzero epoch")
	}
	// rolloutMu is held across every check and mutation below, so no
	// Begin/Abort can supersede the round after the checks pass: once
	// this function commits the spec cache and the durable records, the
	// publish is guaranteed to follow.
	s.rolloutMu.Lock()
	defer s.rolloutMu.Unlock()
	st := s.rollout.Load()
	if st == nil || st.hash != hash {
		return fmt.Errorf("fleet: no rollout for candidate %s", hash)
	}
	if st.mode != rolloutShadowing {
		return fmt.Errorf("fleet: candidate %s is not shadowing", hash)
	}
	s.specMu.Lock()
	if epoch <= s.activeEpoch {
		cur := s.activeEpoch
		s.specMu.Unlock()
		return fmt.Errorf("fleet: promote epoch %d not beyond active epoch %d", epoch, cur)
	}
	s.specs[""] = st.entry
	s.activeEpoch = epoch
	s.specMu.Unlock()

	// Provenance before visibility: the durable records land before the
	// state that lets workers stamp the new epoch is published.
	if el, ok := s.cfg.Ledger.(epochLedger); ok {
		if err := el.SpecEpochChanged(epoch, hash); err != nil {
			s.stats.ledgerErrors.Add(1)
		}
	}
	s.archiveEpoch(epoch, hash)

	s.rollout.Store(&rolloutState{mode: rolloutPromoted, hash: hash, entry: st.entry, epoch: epoch, base: st.base})
	s.rolloutGen.Add(1)
	s.stats.shadowPromotes.Add(1)
	return nil
}

// ShadowStats reports the current rollout's live counters; ok is false
// when no rollout is published. The counters are per-round: the
// cumulative stats are read against the baseline BeginShadow
// snapshotted, so a fresh round reports from zero and the controller's
// thresholds never act on an earlier round's evidence.
func (s *Server) ShadowStats() (st ShadowStats, ok bool) {
	r := s.rollout.Load()
	if r == nil {
		return ShadowStats{}, false
	}
	return ShadowStats{
		Hash:             r.hash,
		Promoted:         r.mode == rolloutPromoted,
		Epoch:            r.epoch,
		Sessions:         s.shadowSessions.Load(),
		Batches:          s.stats.shadowBatches.Value() - r.base.batches,
		DivergentBatches: s.stats.shadowDivergentBatches.Value() - r.base.divergentBatches,
		Divergences:      s.stats.shadowDivergences.Value() - r.base.divergences,
		Errors:           s.stats.shadowErrors.Value() - r.base.errors,
	}, true
}

// ActiveEpoch returns the epoch new default-spec sessions are stamped
// with.
func (s *Server) ActiveEpoch() uint64 {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	return s.activeEpoch
}

// compileCandidate builds a specEntry from spec source, exactly as the
// cached resolve path does but outside the cache: a candidate only
// enters s.specs at promote. Its monitor metrics live under the stable
// "candidate" spec label, so re-pushing a candidate reuses the same
// series.
func (s *Server) compileCandidate(source string) (*specEntry, error) {
	f, err := speclang.Parse(source)
	if err != nil {
		return nil, err
	}
	rs, err := speclang.Compile(f, s.cfg.DB.SignalNames())
	if err != nil {
		return nil, err
	}
	mon, err := core.New(core.Config{
		Rules:     rs,
		Period:    s.cfg.Period,
		DeltaMode: s.cfg.DeltaMode,
		Triage:    s.cfg.Triage,
	})
	if err != nil {
		return nil, err
	}
	e := &specEntry{mon: mon}
	for _, r := range rs.Rules() {
		e.rules = append(e.rules, r.Name)
	}
	e.met = core.NewMetrics(s.reg, "candidate", e.rules)
	if flt := s.cfg.Flight; flt != nil {
		for _, r := range e.rules {
			e.frules = append(e.frules, flt.Intern(r))
		}
	}
	return e, nil
}

// syncRollout reconciles this session with the published rollout state.
// Called only when the worker's generation fell behind, always at a
// batch boundary, from the worker goroutine — every field it touches is
// worker-owned.
func (sess *session) syncRollout(gen uint64) {
	sess.rolloutGen = gen
	st := sess.srv.rollout.Load()
	if sess.shadow != nil && (st == nil || st.hash != sess.shadowHash) {
		// The round this shadow belonged to is gone (aborted or
		// replaced): discard the candidate, deliver nothing of it.
		sess.dropShadow()
	}
	if st == nil {
		return
	}
	switch st.mode {
	case rolloutShadowing:
		if sess.shadow != nil || sess.specName != "" {
			return
		}
		if sess.sawFrame || sess.ingested > 0 {
			// Mid-stream: a candidate started now would disagree on
			// warmup and history, so its divergences would be noise.
			return
		}
		sm, err := st.entry.mon.Shadow(sess.srv.cfg.DB)
		if err != nil {
			sess.srv.stats.shadowErrors.Add(1)
			return
		}
		sess.shadow = sm
		sess.shadowHash = st.hash
		sess.shadowEntry = st.entry
		sess.shadowTally = make(map[string]*ruleTally, len(st.entry.rules))
		if sess.divScratch == nil {
			sess.divScratch = make(map[string]int)
		}
		sess.srv.shadowSessions.Add(1)
	case rolloutPromoted:
		if sess.shadow != nil && sess.shadowHash == st.hash {
			sess.adoptShadow(st)
		}
	}
}

// adoptShadow swaps the candidate in as the session's primary. The
// shadow saw the identical frame prefix, so the adopted monitor is the
// exact state the candidate would hold had it been primary from the
// session's first frame; the accumulated shadow tally becomes the
// verdict tally for the same reason. The old monitor is closed silently
// — its end-of-stream events are the old spec's and must not be
// delivered.
func (sess *session) adoptShadow(st *rolloutState) {
	old := sess.om
	om := sess.shadow.Promote()
	om.Instrument(st.entry.met)
	sess.om = om
	sess.entry = st.entry
	sess.specEpoch = st.epoch
	sess.tally = sess.shadowTally

	sess.shadow = nil
	sess.shadowHash = ""
	sess.shadowEntry = nil
	sess.shadowTally = nil
	sess.primShadow = sess.primShadow[:0]
	sess.srv.shadowSessions.Add(-1)
	sess.srv.stats.shadowAdoptions.Add(1)

	old.Close()
	if sess.srv.cfg.Flight != nil {
		sess.om.EnableStageTiming(len(sess.entry.rules))
	}
}

// dropShadow discards the session's candidate without delivering
// anything of it.
func (sess *session) dropShadow() {
	sess.shadow.Close()
	sess.shadow = nil
	sess.shadowHash = ""
	sess.shadowEntry = nil
	sess.shadowTally = nil
	sess.primShadow = sess.primShadow[:0]
	sess.srv.shadowSessions.Add(-1)
}

// shadowFeed runs one applied frame run through the candidate and
// retains the primary's events for the batch-boundary comparison. A
// candidate evaluation failure is the candidate's problem, not the
// session's: the shadow is dropped and counted, the session streams on.
func (sess *session) shadowFeed(run []can.Frame, primaryEvs []core.OnlineEvent) {
	if err := sess.shadow.Push(run); err != nil {
		sess.srv.stats.shadowErrors.Add(1)
		sess.dropShadow()
		return
	}
	sess.primShadow = append(sess.primShadow, primaryEvs...)
}

// shadowCompare settles one batch of dual evaluation: fold the
// candidate's closed violations into the adoption tally, compare the
// two event streams, and account any divergence per rule and vehicle.
// Runs at most once per batch, only while shadowing.
func (sess *session) shadowCompare(seq uint64) {
	cand := sess.shadow.BatchEvents()
	for _, e := range cand {
		if e.Kind == speclang.ViolationEnd {
			tallyViolation(sess.shadowTally, e)
		}
	}
	stats := &sess.srv.stats
	stats.shadowBatches.Add(1)
	if div := core.ShadowDivergence(sess.divScratch, sess.primShadow, cand); div != nil {
		stats.shadowDivergentBatches.Add(1)
		var total uint64
		for rule, d := range div {
			if d < 0 {
				d = -d
			}
			total += uint64(d)
			sess.srv.shadowDivergenceCounter(rule, sess.vehicle).Add(uint64(d))
		}
		stats.shadowDivergences.Add(total)
		sess.recordShadowDivergence(seq, div)
	}
	sess.primShadow = sess.primShadow[:0]
	sess.shadow.EndBatch()
}

// shadowDivergenceCounter returns the per-rule, per-vehicle divergence
// counter. Divergent batches are rare by construction (a healthy
// candidate produces none), so the registry lookup per divergence is
// off any hot path; the registry interns by name+labels, so repeated
// lookups return the same cell.
func (s *Server) shadowDivergenceCounter(rule, vehicle string) *obs.Counter {
	if rule == "" {
		rule = "(timing)"
	}
	return s.reg.Counter("cpsmon_shadow_rule_divergences_total",
		"Shadow-mode event-count divergences between active and candidate spec, per rule and vehicle.",
		obs.Label{Name: "rule", Value: rule}, obs.Label{Name: "vehicle", Value: vehicle})
}

// recordShadowDivergence samples a divergent batch into the flight
// recorder as zero-duration eval spans under interned "shadow:<rule>"
// refs — they surface in /debug/flight and monitorctl -top as named
// rows without perturbing stage latency sums. Divergences are rare, so
// every one is recorded rather than sampled.
func (sess *session) recordShadowDivergence(seq uint64, div map[string]int) {
	flt := sess.srv.cfg.Flight
	if flt == nil {
		return
	}
	now := time.Now()
	for rule := range div {
		if rule == "" {
			rule = "(timing)"
		}
		flt.Record(sess.id, sess.fveh, flight.StageEval, flt.Intern("shadow:"+rule), seq, now, 0)
	}
}

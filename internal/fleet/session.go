package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// Session lifecycle states, advanced monotonically. The state is only
// read for introspection; the lifecycle itself is driven by the
// reader/worker handoff below.
const (
	stateStreaming int32 = iota + 1
	stateDraining
	stateClosed
)

// item is one queued unit of ingest work: a run of frames plus the
// moment it entered the queue, for latency accounting. A version-2
// item carries its batch sequence number; the finish marker carries
// the client's declared final sequence instead of frames.
type item struct {
	frames []can.Frame
	seq    uint64
	finish bool
	enq    time.Time
}

// gapInfo describes a run of shed frames: how many, over which capture
// interval. The worker folds these into gap events in sequence order.
type gapInfo struct {
	n        uint64
	from, to time.Duration
}

// ruleTally accumulates a session's closed violations per rule for the
// end-of-stream verdict.
type ruleTally struct {
	violations, real, transient, negligible uint32
}

// session is one monitored vehicle. For a version-1 peer its life is
// one TCP connection, exactly as before. For a version-2 peer the
// session outlives connections: each connection is an attachment (a
// reader goroutine decoding records into a bounded queue plus a worker
// goroutine feeding the monitor and writing acks/events back), and
// between attachments the session parks in the server's resume table,
// monitor state intact, until the grace window expires.
//
// The reader owns the connection's read half; the worker owns all
// writes after the handshake grant, so no write lock is needed.
type session struct {
	id      uint64
	srv     *Server
	proto   uint16
	token   uint64 // resume key, v2 only
	vehicle string

	om    *core.OnlineMonitor
	entry *specEntry

	// Spec identity for the verdict: the Hello's spec selection and
	// the epoch stamp resolved with it (advanced by a mid-stream
	// candidate adoption). Worker-owned after the handshake.
	specName  string
	specEpoch uint64

	// Rollout state (see rollout.go), all worker-owned: the worker's
	// view of the server rollout generation, the candidate being
	// dual-evaluated (nil shadow-off — the only word the hot path
	// checks), the candidate's running verdict tally for adoption at
	// promote, the primary's retained events for the current batch, and
	// the divergence scratch map.
	rolloutGen  uint64
	shadow      *core.ShadowMonitor
	shadowHash  string
	shadowEntry *specEntry
	shadowTally map[string]*ruleTally
	primShadow  []core.OnlineEvent
	divScratch  map[string]int

	// Attachment state, replaced on every resume. Written only by the
	// attaching goroutine before the reader/worker start.
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	queue      chan item
	workerDone chan struct{}

	// endMu guards the attachment outcome: abort is a terminal
	// protocol failure (the session dies with an Error record),
	// suspended means the connection was lost but the session should
	// park for resume. Both reader and worker may end an attachment.
	endMu     sync.Mutex
	abort     error
	suspended bool

	// v2 sequencing. lastEnq is reader-owned within an attachment;
	// lastApplied and events are worker-owned; resumeFrom is set by
	// the resume handshake before the worker starts. events retains
	// every emitted event so a resume can replay the unseen tail;
	// events[i] has sequence i+1.
	lastEnq     uint64
	lastApplied uint64
	resumeFrom  uint64
	// ledgeredSeq is the last batch sequence a ledger watermark covers
	// (worker-owned; seeded by restore). Acks and resume grants never
	// exceed it — the client prunes its replay buffer on both, so an
	// unledgered acknowledgement could strand frames a crash then
	// needs back.
	ledgeredSeq uint64
	events      []wire.Event
	finalized   bool
	// delivered records that the verdict write reached the transport;
	// a finalized-but-undelivered session stays resumable even through
	// a server drain, so the client can come back for its verdict.
	delivered  bool
	verdictRec *wire.VerdictSeq

	// shed records drop-mode load shedding by batch sequence, written
	// by the reader and folded into gap events by the worker.
	shedMu sync.Mutex
	shed   map[uint64]gapInfo

	// Worker-local accounting, reported in the verdict.
	tally    map[string]*ruleTally
	ingested uint64
	rejected uint64
	lastTime time.Duration
	sawFrame bool

	// evScratch is the wire-event buffer reused across apply calls;
	// events are copied out (retained or written) before the next batch.
	evScratch []wire.Event

	// Flight instrumentation (see flightglue.go): the interned vehicle
	// ref and the per-vehicle end-to-end latency histogram, both set by
	// setupFlight when the server carries a recorder, zero otherwise.
	fveh flight.Ref
	e2e  *obs.Histogram

	// quarantined counts malformed records skipped on the current
	// attachment (reader-owned, reset per attachment).
	quarantined int

	// dropped is written by the reader (load shedding) and read by
	// the worker (verdict), hence atomic.
	dropped atomic.Uint64

	// rebuilding marks a crash-recovery replay in progress: apply runs
	// normally, but archiving, exactly-once hooks and emission counters
	// are suppressed — the replay reproduces state, it must not
	// re-report anything. Set by NewRestorer, cleared by Finish, both
	// before the session is reachable by any other goroutine.
	rebuilding bool
	// The skip counters implement post-crash archive dedup: the
	// previous process archived this much output beyond the last
	// ledger watermark, and deterministic re-application regenerates it
	// byte-identically, so exactly this much of the session's next
	// output bypasses the archive and the exactly-once hooks.
	skipArchFrames  uint64
	skipArchEvents  uint64
	skipArchVerdict bool

	state atomic.Int32
}

// setSuspend marks the attachment lost-but-resumable.
func (sess *session) setSuspend() {
	sess.endMu.Lock()
	sess.suspended = true
	sess.endMu.Unlock()
}

// setAbort marks the session terminally failed; the first cause wins.
func (sess *session) setAbort(err error) {
	sess.endMu.Lock()
	if sess.abort == nil {
		sess.abort = err
	}
	sess.endMu.Unlock()
}

func (sess *session) outcome() (abort error, suspended bool) {
	sess.endMu.Lock()
	defer sess.endMu.Unlock()
	return sess.abort, sess.suspended
}

// run executes one attachment to completion: spawns the worker, reads
// until the stream ends, then joins the worker. It reports whether the
// session should park for resume rather than die.
func (sess *session) run() (park bool) {
	sess.state.Store(stateStreaming)
	if sess.srv.ctx.Err() != nil {
		// Shutdown raced the handshake: this session registered after
		// the deadline sweep, so apply the nudge it missed.
		sess.conn.SetReadDeadline(time.Now())
	}
	go sess.work()
	sess.read()
	close(sess.queue)
	<-sess.workerDone
	sess.conn.Close()

	abort, _ := sess.outcome()
	if sess.proto >= 2 && abort == nil {
		if !sess.srv.closed.Load() {
			// Park: a finalized session re-parks so a client that missed
			// the verdict can resume and re-fetch it; an unfinalized one
			// waits out the grace window for a resume.
			return true
		}
		if !sess.finalized || !sess.delivered {
			// Shutdown is draining but this session's verdict has not
			// reached its client (it may be mid-backoff): park so the
			// resume the drain is waiting for can finish the job. The
			// grace timer still bounds the wait if the client is gone.
			return true
		}
	}
	sess.state.Store(stateClosed)
	return false
}

// read decodes records until Finish, disconnect, protocol error or
// server shutdown. It never writes to the connection.
func (sess *session) read() {
	for {
		if d := sess.srv.cfg.IdleTimeout; d > 0 {
			sess.conn.SetReadDeadline(time.Now().Add(d))
		}
		rec, err := wire.Read(sess.br)
		if err != nil {
			var mal *wire.MalformedError
			if sess.srv.ctx.Err() == nil && errors.As(err, &mal) {
				// Framing held — the stream is still at a record
				// boundary — so skip the record and charge the budget.
				if sess.quarantine() {
					continue
				}
				return
			}
			sess.readFailed(err)
			return
		}
		switch rec := rec.(type) {
		case wire.FrameBatch:
			if sess.proto >= 2 {
				if !sess.unexpected(rec) {
					return
				}
				continue
			}
			if len(rec.Frames) > 0 {
				sess.enqueue(item{frames: rec.Frames, enq: time.Now()})
			}
		case wire.Finish:
			if sess.proto >= 2 {
				if !sess.unexpected(rec) {
					return
				}
				continue
			}
			sess.state.Store(stateDraining)
			return
		case wire.SeqBatch:
			if sess.proto < 2 {
				sess.setAbort(fmt.Errorf("version-2 %T record on a version-1 session", rec))
				return
			}
			if rec.Seq <= sess.lastEnq {
				// Replayed duplicate (the client could not see our ack);
				// already applied or queued, so discard.
				sess.srv.stats.dupBatchesDropped.Add(1)
				continue
			}
			if rec.Seq != sess.lastEnq+1 {
				// A batch went missing (quarantined or lost upstream).
				// Suspend: the resume handshake tells the client where
				// to replay from.
				sess.setSuspend()
				return
			}
			sess.lastEnq = rec.Seq
			sess.enqueue(item{frames: rec.Frames, seq: rec.Seq, enq: time.Now()})
		case wire.FinishSeq:
			sess.state.Store(stateDraining)
			// The finish marker must reach the worker even in drop
			// mode, so it bypasses the shedding enqueue path.
			select {
			case sess.queue <- item{finish: true, seq: rec.Seq}:
			case <-sess.srv.ctx.Done():
			}
			return
		default:
			if !sess.unexpected(rec) {
				return
			}
		}
	}
}

// readFailed classifies a wire.Read error and ends the attachment
// accordingly: malformed records are quarantined up to the error
// budget, transport failures suspend a v2 session for resume, and
// everything is terminal for a v1 session.
func (sess *session) readFailed(err error) {
	if sess.srv.ctx.Err() != nil {
		// Server shutdown: the deadline sweep unparked us. Drain what
		// is queued and verdict the session.
		sess.state.Store(stateDraining)
		return
	}
	if sess.proto >= 2 {
		// Disconnect, timeout, or a broken frame header: the byte
		// stream is unusable, but a resume restores framing.
		sess.setSuspend()
		return
	}
	if errors.Is(err, io.EOF) {
		// Disconnect without Finish: evaluate what arrived, but the
		// client is gone — no verdict owed.
		sess.setAbort(errors.New("client disconnected before finish"))
		return
	}
	sess.setAbort(err)
}

// quarantine accounts one skipped record against the attachment's
// error budget. It reports false when the budget is exhausted and the
// attachment must end.
func (sess *session) quarantine() bool {
	sess.quarantined++
	sess.srv.stats.recordsQuarantined.Add(1)
	budget := sess.srv.cfg.ErrorBudget
	if budget == 0 {
		budget = defaultErrorBudget
	}
	if sess.quarantined <= budget {
		return true
	}
	if sess.proto >= 2 {
		sess.setSuspend()
	} else {
		sess.setAbort(fmt.Errorf("%d malformed records exceed the session error budget", sess.quarantined))
	}
	return false
}

// unexpected handles a validly-decoded record that has no business
// mid-stream. On a v2 session it is quarantined — corruption can flip
// a type byte into another valid record — on v1 it is terminal. It
// reports whether reading should continue.
func (sess *session) unexpected(rec wire.Record) bool {
	if sess.proto >= 2 {
		return sess.quarantine()
	}
	sess.setAbort(fmt.Errorf("unexpected %T record mid-stream", rec))
	return false
}

// enqueue hands an item to the worker. A full queue either sheds the
// batch (drop mode) or blocks — explicit backpressure through TCP —
// until the worker catches up or the server shuts down. Both outcomes
// are accounted; a v2 shed additionally records a gap so the verdict
// stream admits the hole.
func (sess *session) enqueue(it item) {
	select {
	case sess.queue <- it:
		return
	default:
	}
	n := uint64(len(it.frames))
	if sess.srv.cfg.DropWhenFull {
		sess.shedItem(it, n)
		return
	}
	sess.srv.stats.batchesBlocked.Add(1)
	select {
	case sess.queue <- it:
	case <-sess.srv.ctx.Done():
		sess.shedItem(it, n)
	}
}

// shedItem accounts a dropped batch and, on v2, records the gap it
// leaves so the worker can fold it into the event stream.
func (sess *session) shedItem(it item, n uint64) {
	sess.dropped.Add(n)
	sess.srv.stats.framesDropped.Add(n)
	if sess.proto < 2 || it.seq == 0 || len(it.frames) == 0 {
		return
	}
	g := gapInfo{n: n, from: it.frames[0].Time, to: it.frames[len(it.frames)-1].Time}
	sess.shedMu.Lock()
	if sess.shed == nil {
		sess.shed = make(map[uint64]gapInfo)
	}
	sess.shed[it.seq] = g
	sess.shedMu.Unlock()
}

// work drains the queue into the monitor, emitting events as they
// become decidable, then settles the attachment: a verdict after
// Finish or shutdown drain, an error record after a protocol failure,
// or a silent park when the transport died and a resume is expected.
func (sess *session) work() {
	defer close(sess.workerDone)
	stats := &sess.srv.stats
	// draining reports a server shutdown: the client may already be
	// gone, so write failures must not abandon the session — keep
	// applying and let the verdict park for resume instead.
	draining := func() bool { return sess.srv.ctx.Err() != nil }

	if sess.proto >= 2 && !sess.replayEvents() && !draining() {
		sess.abandon()
		return
	}

	// With a ledger, durability is group-committed: batches apply and
	// their events stream immediately, but the archive barrier, the
	// watermark and the cumulative Ack happen per commit, not per
	// batch, so the per-batch hot path never waits on the pump or the
	// ledger. A commit fires when the queue runs dry with at least
	// commitBatches of progress pending — a client stalled on a full
	// replay buffer has far more than that outstanding, so its backlog
	// being applied is what releases it — and at WatermarkInterval as
	// a staleness bound otherwise. The client prunes its replay buffer
	// only on acks, so everything past the last watermark is still in
	// its hands if this process dies.
	ledgered := sess.proto >= 2 && sess.srv.cfg.Ledger != nil
	var commitC <-chan time.Time
	if ledgered {
		t := time.NewTicker(sess.srv.cfg.WatermarkInterval)
		defer t.Stop()
		commitC = t.C
	}
	// commitAck group-commits applied progress and sends the cumulative
	// Ack, reporting false when the worker must exit. A ledger failure
	// is terminal — an ack the ledger cannot back would strand the
	// client's pruned frames after a crash.
	commitAck := func() bool {
		if sess.lastApplied == sess.ledgeredSeq {
			return true
		}
		if !sess.syncLedger() {
			sess.fail(fmt.Errorf("session ledger: watermark for batch %d failed", sess.lastApplied))
			return false
		}
		if wire.Write(sess.bw, wire.Ack{Seq: sess.lastApplied}) != nil || sess.bw.Flush() != nil {
			if draining() {
				return true // dead client during drain; keep applying
			}
			sess.setSuspend()
			sess.abandon()
			return false
		}
		return true
	}

	doFinal := false
	for {
		var it item
		var open bool
		if commitC == nil {
			it, open = <-sess.queue
		} else {
			select {
			case it, open = <-sess.queue:
			default:
				if sess.lastApplied-sess.ledgeredSeq >= commitBatches {
					if !commitAck() {
						return
					}
				}
				select {
				case it, open = <-sess.queue:
				case <-commitC:
					if !commitAck() {
						return
					}
					continue
				}
			}
		}
		if !open {
			break
		}
		// Rollout reconciliation: one atomic load per batch; the
		// reconcile itself runs only when a BeginShadow / Promote /
		// Abort actually happened since this worker last looked, so
		// promotion lands exactly at a batch boundary.
		if g := sess.srv.rolloutGen.Load(); g != sess.rolloutGen {
			sess.syncRollout(g)
		}
		if it.finish {
			if !sess.foldShed(^uint64(0)) && !draining() {
				sess.abandon()
				return
			}
			if sess.proto >= 2 && it.seq != sess.lastApplied {
				// The client declared a final sequence we never saw:
				// the transport hid a loss. Force a resume instead of
				// issuing a short verdict.
				sess.setSuspend()
				sess.abandon()
				return
			}
			if ledgered && !sess.syncLedger() {
				// The verdict about to be built covers the whole
				// stream; recovery replays the archive only up to the
				// watermark, so the watermark must be current before
				// the verdict is ledgered. A ledger failure is
				// terminal — a verdict it cannot back would break the
				// rebuild.
				sess.fail(fmt.Errorf("session ledger: watermark for batch %d failed", sess.lastApplied))
				return
			}
			doFinal = true
			break
		}
		if sess.proto >= 2 && !sess.foldShed(it.seq) && !draining() {
			sess.abandon()
			return
		}
		// The sampling decision is one atomic increment; a sampled
		// batch additionally gets core's decode/eval stage attribution
		// and its spans recorded (see flightglue.go).
		sampled := sess.srv.cfg.Flight.Sample()
		var tApply time.Time
		if sampled {
			tApply = time.Now()
			sess.om.BeginStageTiming()
		}
		out, err := sess.apply(it.frames)
		if err != nil {
			sess.fail(fmt.Errorf("monitor: %w", err))
			return
		}
		if sess.shadow != nil {
			sess.shadowCompare(it.seq)
		}
		var tEmit time.Time
		if sampled {
			tEmit = time.Now()
		}
		if sess.proto >= 2 {
			// The batch is fully applied: advance before emitting so a
			// write failure (→ resume → replay) cannot re-apply it.
			sess.lastApplied = it.seq
		}
		ok := true
		for _, w := range out {
			if !sess.emitWire(w) {
				ok = false
				break
			}
		}
		stats.framesIngested.Add(uint64(len(it.frames)))
		e2e := time.Since(it.enq)
		stats.ingestLatency.Observe(e2e.Seconds())
		sess.observeE2E(e2e)
		if sampled {
			sess.recordFlight(it, tApply, tEmit, e2e)
		}
		if ok && sess.proto >= 2 && !ledgered {
			ok = wire.Write(sess.bw, wire.Ack{Seq: sess.lastApplied}) == nil
		}
		if !ok || sess.bw.Flush() != nil {
			if draining() {
				continue // dead client during drain; keep applying
			}
			if sess.proto >= 2 {
				sess.setSuspend()
				sess.abandon()
				return
			}
			sess.fail(errors.New("event write failed"))
			return
		}
	}
	stats.framesRejected.Add(sess.rejected)

	abort, suspended := sess.outcome()
	if abort != nil {
		// Reader-side failure: best-effort error record, no verdict.
		wire.Write(sess.bw, wire.Error{Msg: abort.Error()})
		sess.bw.Flush()
		return
	}
	if !doFinal && suspended && !draining() {
		// Park for resume. The grant a resume earns acknowledges
		// lastApplied, and an acknowledgement the ledger cannot back
		// would strand the client's pruned frames after a crash — so
		// the watermark must cover the park, or the session must die.
		if ledgered && !sess.syncLedger() {
			sess.setAbort(fmt.Errorf("session ledger: watermark for batch %d failed", sess.lastApplied))
		}
		return
	}
	if !doFinal && sess.proto >= 2 && sess.srv.cfg.Ledger != nil {
		// A shutdown drain reached a session whose client never said
		// Finish. Without a ledger this process is the session's only
		// life, so a partial verdict beats none — but with one the
		// session survives the restart, and a verdict covering half the
		// trace would be silently wrong. Park instead: the shutdown
		// preserves the session in the ledger and the next process
		// rebuilds it mid-stream. Bring the watermark current first, so
		// the restart resumes from here, not the last timer commit.
		if !sess.syncLedger() {
			sess.setAbort(fmt.Errorf("session ledger: watermark for batch %d failed", sess.lastApplied))
		}
		return
	}
	sess.finalize()
	if sess.proto >= 2 && sess.delivered && draining() {
		// The drain is about to count this session done for good, so a
		// successful write is not proof enough — wait for the client's
		// verdict ack (a dead peer fails the read instead and the
		// session parks for resume). The ack must not outrun the
		// session's archive records: barrier first.
		sess.srv.archBarrier()
		sess.confirmDelivery(sess.conn, sess.br)
	}
}

// syncLedger makes the session's applied progress durable: every
// archived record is flushed through the pump, then the watermark is
// appended to the ledger. After a true return, an Ack (or a resume
// grant) for lastApplied is safe to send — the batch is rebuildable
// from the archive. A false return counts the ledger error and leaves
// ledgeredSeq behind; callers must treat it as terminal, because any
// later acknowledgement would promise state the ledger cannot back.
// No-op when the session has no ledger or nothing new applied.
func (sess *session) syncLedger() bool {
	led := sess.srv.cfg.Ledger
	if led == nil || sess.proto < 2 || sess.lastApplied == sess.ledgeredSeq {
		return true
	}
	t0 := time.Now()
	sess.srv.archBarrier()
	if err := led.Watermark(sess.id, sess.lastApplied, sess.ingested, sess.rejected); err != nil {
		sess.srv.stats.ledgerErrors.Add(1)
		return false
	}
	sess.recordLedgerSpan(t0)
	sess.ledgeredSeq = sess.lastApplied
	return true
}

// apply feeds one batch of frames to the monitor, returning the wire
// events it produced (bus-silence gaps interleaved in stream order).
// The whole batch is applied before anything is emitted, so emission
// failures never leave a batch half-applied.
//
// Frames flow to the monitor in contiguous runs through PushFrames;
// a run ends where the session must act between frames — a stale frame
// to reject, or a silence gap whose event must interleave in stream
// order. The returned slice is the session's reusable scratch buffer,
// valid until the next apply or finalize.
func (sess *session) apply(frames []can.Frame) ([]wire.Event, error) {
	out := sess.evScratch[:0]
	silence := sess.srv.cfg.SilenceGap
	saw, last := sess.sawFrame, sess.lastTime

	start := 0
	flush := func(end int) error {
		run := frames[start:end]
		start = end
		if len(run) == 0 {
			return nil
		}
		evs, rejected, err := sess.om.PushFrames(run)
		if err != nil {
			return err
		}
		// The session's stale filter is at least as strict as the
		// monitor's (session time also advances over foreign-ID frames),
		// so runs reach the monitor in order; count defensively anyway.
		sess.rejected += uint64(rejected)
		sess.ingested += uint64(len(run) - rejected)
		// Archive exactly what the monitor applied, so replaying the
		// archive reproduces this session's verdict.
		sess.archiveRun(run)
		if sess.shadow != nil {
			// The candidate sees the identical post-filter run; the
			// primary's events are retained for the batch-boundary
			// comparison before convert reuses their scratch.
			sess.shadowFeed(run, evs)
		}
		out = sess.convert(out, evs)
		return nil
	}

	for i, f := range frames {
		// The monitor requires non-decreasing time; a stale frame is
		// rejected and the session continues, per the
		// OnlineMonitor.PushFrame contract.
		if saw && f.Time < last {
			if err := flush(i); err != nil {
				return nil, err
			}
			sess.rejected++
			start = i + 1
			continue
		}
		if silence > 0 && sess.proto >= 2 && saw && f.Time-last > silence {
			if err := flush(i); err != nil {
				return nil, err
			}
			out = append(out, wire.Event{
				Kind:  wire.EventGap,
				Time:  f.Time,
				Start: last,
				End:   f.Time,
				Msg:   "bus silence",
			})
			if !sess.rebuilding {
				sess.srv.stats.gapEvents.Add(1)
			}
		}
		saw = true
		last = f.Time
	}
	if err := flush(len(frames)); err != nil {
		return nil, err
	}
	sess.sawFrame, sess.lastTime = saw, last
	sess.evScratch = out
	return out, nil
}

// convert turns monitor events into wire events, updating the verdict
// tally. The tally advances at application time — exactly once per
// violation — never at (retryable) emission time.
func (sess *session) convert(out []wire.Event, evs []core.OnlineEvent) []wire.Event {
	for _, e := range evs {
		w := wire.Event{Rule: e.Rule, Time: e.Time}
		switch e.Kind {
		case speclang.ViolationBegin:
			w.Kind = wire.EventBegin
		case speclang.ViolationEnd:
			w.Kind = wire.EventEnd
			v := e.Violation
			w.StartStep = uint32(v.StartStep)
			w.EndStep = uint32(v.EndStep)
			w.Start = v.Start
			w.End = v.End
			w.Peak = v.Peak
			w.Msg = v.Msg
			w.Class = uint8(e.Class)

			tallyViolation(sess.tally, e)
			if !sess.rebuilding {
				sess.srv.stats.violationsEmitted.Add(1)
			}
		}
		out = append(out, w)
	}
	return out
}

// tallyViolation folds one closed violation into a verdict tally. Both
// the primary path (convert) and the shadow path use it, so an adopted
// candidate tally is classified exactly as a primary one would be.
func tallyViolation(m map[string]*ruleTally, e core.OnlineEvent) {
	t := m[e.Rule]
	if t == nil {
		t = &ruleTally{}
		m[e.Rule] = t
	}
	t.violations++
	switch e.Class {
	case core.ClassReal:
		t.real++
	case core.ClassTransient:
		t.transient++
	case core.ClassNegligible:
		t.negligible++
	}
}

// archiveRun archives one applied frame run. A crash-recovery rebuild
// never archives (it replays *from* the archive); afterwards, the
// post-crash skip window drops exactly the frames the previous process
// archived beyond its last watermark — the client retransmits them and
// deterministic re-application regenerates the same runs, so skipping
// that many keeps the archive duplicate-free.
func (sess *session) archiveRun(run []can.Frame) {
	if sess.rebuilding {
		return
	}
	if n := uint64(len(run)); sess.skipArchFrames > 0 {
		if n <= sess.skipArchFrames {
			sess.skipArchFrames -= n
			return
		}
		run = run[sess.skipArchFrames:]
		sess.skipArchFrames = 0
	}
	sess.srv.archiveFrames(sess.id, sess.vehicle, run)
}

// emitWire writes one event to the client. On a v2 session the event
// is first retained (and sequence-numbered) so a resume can replay it;
// a write failure therefore only suspends the attachment, never loses
// the event. It reports false when the write failed.
func (sess *session) emitWire(w wire.Event) bool {
	// emitWire runs exactly once per produced event — resume replays
	// and verdict re-deliveries bypass it — so it is the exactly-once
	// hook point for the event journal and the archive. Events inside
	// the post-crash skip window are the exception: the previous
	// process already journaled and archived them, this process merely
	// regenerates them for the client.
	if sess.skipArchEvents > 0 {
		sess.skipArchEvents--
	} else {
		if f := sess.srv.cfg.OnEvent; f != nil {
			f(sess.id, sess.vehicle, w)
		}
		sess.srv.archiveEvent(sess.id, sess.vehicle, w)
	}
	var err error
	if sess.proto >= 2 {
		sess.events = append(sess.events, w)
		err = wire.Write(sess.bw, wire.SeqEvent{Seq: uint64(len(sess.events)), Event: w})
	} else {
		err = wire.Write(sess.bw, w)
	}
	if err != nil {
		if sess.proto >= 2 {
			sess.setSuspend()
		}
		return false
	}
	sess.srv.stats.eventsEmitted.Add(1)
	return true
}

// replayEvents re-sends the event tail a resumed client reported not
// having seen, as the worker's first action on the new attachment.
func (sess *session) replayEvents() bool {
	from := sess.resumeFrom
	if from > uint64(len(sess.events)) {
		from = uint64(len(sess.events))
	}
	for i := from; i < uint64(len(sess.events)); i++ {
		if err := wire.Write(sess.bw, wire.SeqEvent{Seq: i + 1, Event: sess.events[i]}); err != nil {
			sess.setSuspend()
			return false
		}
	}
	if len(sess.events) > int(from) {
		if err := sess.bw.Flush(); err != nil {
			sess.setSuspend()
			return false
		}
	}
	return true
}

// foldShed advances lastApplied across contiguously shed batches below
// next (exclusive; ^0 folds everything pending), emitting one gap
// event per shed batch. It reports false when an emission failed.
func (sess *session) foldShed(next uint64) bool {
	for {
		sess.shedMu.Lock()
		g, ok := sess.shed[sess.lastApplied+1]
		if ok && sess.lastApplied+1 < next {
			delete(sess.shed, sess.lastApplied+1)
		} else {
			ok = false
		}
		sess.shedMu.Unlock()
		if !ok {
			return true
		}
		sess.lastApplied++
		w := wire.Event{
			Kind:  wire.EventGap,
			Time:  g.to,
			Start: g.from,
			End:   g.to,
			Msg:   fmt.Sprintf("shed %d frames under overload", g.n),
		}
		sess.srv.stats.gapEvents.Add(1)
		if !sess.emitWire(w) {
			return false
		}
	}
}

// finalize closes the monitor and issues the verdict. On v2 the
// verdict record is retained so a resume within the grace window can
// re-deliver it even if this write never reaches the client.
func (sess *session) finalize() {
	if sess.shadow != nil {
		// A session finishing mid-shadow resolves under its primary
		// alone; the candidate is discarded, its verdicts never
		// deliverable.
		sess.dropShadow()
	}
	evs, err := sess.om.Close()
	if err != nil {
		sess.fail(err)
		return
	}
	out := sess.convert(nil, evs)
	for _, w := range out {
		if !sess.emitWire(w) {
			break
		}
	}
	v := sess.verdict()
	if sess.skipArchVerdict {
		// The previous process archived (and journaled) this verdict
		// right before dying; re-finalization regenerates it
		// byte-identically, so only the client delivery remains.
		sess.skipArchVerdict = false
	} else {
		if f := sess.srv.cfg.OnVerdict; f != nil {
			f(sess.id, sess.vehicle, v)
		}
		sess.srv.archiveVerdict(sess.id, sess.vehicle, v)
	}
	if sess.proto >= 2 {
		sess.verdictRec = &wire.VerdictSeq{EventSeq: uint64(len(sess.events)), Verdict: v}
		if led := sess.srv.cfg.Ledger; led != nil {
			// The verdict is durable — archive flushed, ledger record
			// fsync'd — before the client can see it, so a crash can
			// never un-decide a verdict a client already holds.
			sess.srv.archBarrier()
			if err := led.VerdictReached(sess.id, sess.verdictRec.EventSeq, v); err != nil {
				sess.srv.stats.ledgerErrors.Add(1)
			}
		}
		sess.finalized = true
		sess.srv.stats.sessionsClosed.Add(1)
		if wire.Write(sess.bw, *sess.verdictRec) == nil && sess.bw.Flush() == nil {
			sess.delivered = true
			sess.srv.logDelivered(sess)
		}
		return
	}
	if err := wire.Write(sess.bw, v); err != nil {
		return
	}
	sess.bw.Flush()
}

// confirmDelivery downgrades delivered unless the client acks the
// verdict within the ack window. The stream may still carry in-flight
// uplink records (a mid-replay reconnect keeps sending until it sees
// the verdict); they are skipped.
func (sess *session) confirmDelivery(conn net.Conn, br *bufio.Reader) {
	end := time.Now().Add(verdictAckTimeout)
	conn.SetReadDeadline(end)
	for {
		rec, err := wire.Read(br)
		if err != nil {
			var mal *wire.MalformedError
			if errors.As(err, &mal) {
				continue
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && time.Now().Before(end) {
				// A stale shutdown nudge clobbered our deadline; restore
				// it and keep waiting for the ack.
				conn.SetReadDeadline(end)
				continue
			}
			sess.delivered = false
			return
		}
		if _, ok := rec.(wire.Ack); ok {
			return
		}
	}
}

// fail abandons the session terminally from the worker side: a
// best-effort error record goes out and the connection close unblocks
// the reader.
func (sess *session) fail(err error) {
	sess.setAbort(err)
	wire.Write(sess.bw, wire.Error{Msg: err.Error()})
	sess.bw.Flush()
	sess.abandon()
}

// abandon closes the connection and drains remaining queue items so
// the reader's enqueue never blocks against a worker that already gave
// up.
func (sess *session) abandon() {
	sess.conn.Close()
	for range sess.queue {
	}
}

// verdict assembles the end-of-stream record in rule-set order.
func (sess *session) verdict() wire.Verdict {
	v := wire.Verdict{
		FramesIngested: sess.ingested,
		FramesDropped:  sess.dropped.Load(),
		FramesRejected: sess.rejected,
		SpecEpoch:      sess.specEpoch,
	}
	for _, name := range sess.entry.rules {
		rv := wire.RuleVerdict{Rule: name}
		if t := sess.tally[name]; t != nil {
			rv.Violated = t.violations > 0
			rv.Violations = t.violations
			rv.Real = t.real
			rv.Transient = t.transient
			rv.Negligible = t.negligible
		}
		v.Rules = append(v.Rules, rv)
	}
	return v
}

package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// Session lifecycle states, advanced monotonically. The state is only
// read for introspection; the lifecycle itself is driven by the
// reader/worker handoff below.
const (
	stateStreaming int32 = iota + 1
	stateDraining
	stateClosed
)

// batch is one queued unit of ingest work: a run of frames plus the
// moment it entered the queue, for latency accounting.
type batch struct {
	frames []can.Frame
	enq    time.Time
}

// ruleTally accumulates a session's closed violations per rule for the
// end-of-stream verdict.
type ruleTally struct {
	violations, real, transient, negligible uint32
}

// session is one connected vehicle: a reader goroutine that decodes
// records off the socket into a bounded queue, and a worker goroutine
// that feeds the monitor and writes events back. The reader owns the
// connection's read half and its close; the worker owns all writes
// after the hello acknowledgement, so no write lock is needed.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	queue      chan batch
	workerDone chan struct{}

	om      *core.OnlineMonitor
	entry   *specEntry
	vehicle string

	state atomic.Int32

	// abort is set by the reader before closing the queue when the
	// session ends abnormally (protocol error, unclean disconnect);
	// nil abort after the queue closes means a clean Finish or a
	// shutdown drain, and the worker owes a verdict. The queue close
	// is the synchronization point, so the worker may read it after
	// its range loop ends.
	abort error

	// Worker-local accounting, reported in the verdict.
	tally    map[string]*ruleTally
	ingested uint64
	rejected uint64
	lastTime time.Duration
	sawFrame bool

	// dropped is written by the reader (load shedding) and read by
	// the worker (verdict), hence atomic.
	dropped atomic.Uint64
}

// run executes the session to completion: spawns the worker, reads
// until the stream ends, then joins the worker and closes the
// connection.
func (sess *session) run() {
	sess.state.Store(stateStreaming)
	if sess.srv.ctx.Err() != nil {
		// Shutdown raced the handshake: this session registered after
		// the deadline sweep, so apply the nudge it missed.
		sess.conn.SetReadDeadline(time.Now())
	}
	go sess.work()
	sess.read()
	close(sess.queue)
	<-sess.workerDone
	sess.state.Store(stateClosed)
	sess.conn.Close()
}

// read decodes records until Finish, disconnect, protocol error or
// server shutdown. It never writes to the connection.
func (sess *session) read() {
	for {
		rec, err := wire.Read(sess.br)
		if err != nil {
			if sess.srv.ctx.Err() != nil {
				// Server shutdown: the deadline sweep unparked us.
				// Drain what is queued and verdict the session.
				sess.state.Store(stateDraining)
				return
			}
			if errors.Is(err, io.EOF) {
				// Disconnect without Finish: evaluate what arrived,
				// but the client is gone — no verdict owed.
				sess.abort = errors.New("client disconnected before finish")
				return
			}
			sess.abort = err
			return
		}
		switch rec := rec.(type) {
		case wire.FrameBatch:
			if len(rec.Frames) > 0 {
				sess.enqueue(batch{frames: rec.Frames, enq: time.Now()})
			}
		case wire.Finish:
			sess.state.Store(stateDraining)
			return
		default:
			sess.abort = fmt.Errorf("unexpected %T record mid-stream", rec)
			return
		}
	}
}

// enqueue hands a batch to the worker. A full queue either sheds the
// batch (drop mode) or blocks — explicit backpressure through TCP —
// until the worker catches up or the server shuts down. Both outcomes
// are accounted.
func (sess *session) enqueue(b batch) {
	select {
	case sess.queue <- b:
		return
	default:
	}
	n := uint64(len(b.frames))
	if sess.srv.cfg.DropWhenFull {
		sess.dropped.Add(n)
		sess.srv.stats.framesDropped.Add(n)
		return
	}
	sess.srv.stats.batchesBlocked.Add(1)
	select {
	case sess.queue <- b:
	case <-sess.srv.ctx.Done():
		sess.dropped.Add(n)
		sess.srv.stats.framesDropped.Add(n)
	}
}

// work drains the queue into the monitor, emitting events as they
// become decidable, then settles the session: a verdict after Finish
// or shutdown drain, an error record after a protocol failure.
func (sess *session) work() {
	defer close(sess.workerDone)
	stats := &sess.srv.stats
	for b := range sess.queue {
		for _, f := range b.frames {
			// The monitor requires non-decreasing time; a stale frame
			// is rejected and the session continues, per the
			// OnlineMonitor.PushFrame contract.
			if sess.sawFrame && f.Time < sess.lastTime {
				sess.rejected++
				continue
			}
			evs, err := sess.om.PushFrame(f)
			if err != nil {
				sess.fail(fmt.Errorf("monitor: %w", err))
				return
			}
			sess.sawFrame = true
			sess.lastTime = f.Time
			sess.ingested++
			if len(evs) > 0 && !sess.emit(evs) {
				return
			}
		}
		stats.framesIngested.Add(uint64(len(b.frames)))
		stats.ingestBatches.Add(1)
		stats.ingestNanos.Add(uint64(time.Since(b.enq)))
		if err := sess.bw.Flush(); err != nil {
			sess.fail(err)
			return
		}
	}
	stats.framesRejected.Add(sess.rejected)

	if sess.abort != nil {
		// Reader-side failure: best-effort error record, no verdict.
		wire.Write(sess.bw, wire.Error{Msg: sess.abort.Error()})
		sess.bw.Flush()
		return
	}
	evs, err := sess.om.Close()
	if err != nil {
		sess.fail(err)
		return
	}
	if len(evs) > 0 && !sess.emit(evs) {
		return
	}
	if err := wire.Write(sess.bw, sess.verdict()); err != nil {
		return
	}
	sess.bw.Flush()
}

// fail abandons the session from the worker side: the queue is left to
// the reader, a best-effort error record goes out, and the connection
// close (by run) unblocks the reader.
func (sess *session) fail(err error) {
	wire.Write(sess.bw, wire.Error{Msg: err.Error()})
	sess.bw.Flush()
	sess.conn.Close()
	// Drain remaining batches so the reader's enqueue never blocks
	// against a worker that already gave up.
	for range sess.queue {
	}
}

// emit converts and writes monitor events, updating the verdict tally.
// It reports false when the connection write failed (session over).
func (sess *session) emit(evs []core.OnlineEvent) bool {
	stats := &sess.srv.stats
	for _, e := range evs {
		w := wire.Event{Rule: e.Rule, Time: e.Time}
		switch e.Kind {
		case speclang.ViolationBegin:
			w.Kind = wire.EventBegin
		case speclang.ViolationEnd:
			w.Kind = wire.EventEnd
			v := e.Violation
			w.StartStep = uint32(v.StartStep)
			w.EndStep = uint32(v.EndStep)
			w.Start = v.Start
			w.End = v.End
			w.Peak = v.Peak
			w.Msg = v.Msg
			w.Class = uint8(e.Class)

			t := sess.tally[e.Rule]
			if t == nil {
				t = &ruleTally{}
				sess.tally[e.Rule] = t
			}
			t.violations++
			switch e.Class {
			case core.ClassReal:
				t.real++
			case core.ClassTransient:
				t.transient++
			case core.ClassNegligible:
				t.negligible++
			}
			stats.violationsEmitted.Add(1)
		}
		if err := wire.Write(sess.bw, w); err != nil {
			return false
		}
		stats.eventsEmitted.Add(1)
	}
	return true
}

// verdict assembles the end-of-stream record in rule-set order.
func (sess *session) verdict() wire.Verdict {
	v := wire.Verdict{
		FramesIngested: sess.ingested,
		FramesDropped:  sess.dropped.Load(),
		FramesRejected: sess.rejected,
	}
	for _, name := range sess.entry.rules {
		rv := wire.RuleVerdict{Rule: name}
		if t := sess.tally[name]; t != nil {
			rv.Violated = t.violations > 0
			rv.Violations = t.violations
			rv.Real = t.real
			rv.Transient = t.transient
			rv.Negligible = t.negligible
		}
		v.Rules = append(v.Rules, rv)
	}
	return v
}

package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/faultnet"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// chaosPlan derives a per-dial fault schedule for one chaos session.
// Send offsets stay where Plan put them — the uplink is hundreds of
// kilobytes — but recv offsets are remapped into the first couple of
// kilobytes, because the downlink (grant, acks, events, verdict) is
// tiny and a fault past its end would never fire. The remap re-marches
// the offsets so recv spans stay disjoint, which Wrap requires.
func chaosPlan(seed int64) [][]faultnet.Fault {
	plans := faultnet.Plan(seed, 3, 48<<10)
	for _, sch := range plans {
		var cur int64
		for j := range sch {
			if sch[j].Dir != faultnet.Recv {
				continue
			}
			sch[j].Offset = cur + 1 + sch[j].Offset%1024
			cur = sch[j].Offset + int64(sch[j].Len)
		}
	}
	return plans
}

// chaosRun collects what one chaos session observed.
type chaosRun struct {
	mu      sync.Mutex
	events  []wire.Event
	verdict *wire.Verdict
	stats   ClientStats
	applied int
	dials   int
}

func runChaosSession(addr string, seed int64, log *can.Log) (*chaosRun, error) {
	d := &faultnet.Dialer{Schedules: chaosPlan(seed)}
	run := &chaosRun{}
	var c *Client
	var err error
	// The very first dial is faulted too, and DialOptions does not
	// retry on its own; loop like a fleet agent's supervisor would.
	for attempt := 0; ; attempt++ {
		c, err = DialOptions(addr, Options{
			Vehicle: fmt.Sprintf("chaos-%03d", seed),
			Spec:    "strict",
			OnEvent: func(e wire.Event) {
				run.mu.Lock()
				run.events = append(run.events, e)
				run.mu.Unlock()
			},
			Dial:         d.Dial,
			MaxRetries:   12,
			Backoff:      5 * time.Millisecond,
			MaxBackoff:   100 * time.Millisecond,
			ReplayBuffer: 64,
			Seed:         seed,
			// A corrupted length prefix can wedge either side mid-record;
			// the stall guard (with the server's IdleTimeout) turns that
			// into a reconnect instead of a hang.
			StallTimeout: time.Second,
		})
		if err == nil {
			break
		}
		if attempt >= 8 {
			return nil, fmt.Errorf("dial: %w", err)
		}
	}
	defer c.Close()
	v, err := c.Replay(log, 0)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	run.verdict = v
	run.stats = c.Stats()
	run.applied = d.Applied()
	run.dials = d.Dials()
	return run, nil
}

// TestChaosTransportMatchesOffline is the robustness acceptance test:
// for every seeded fault schedule — drops, duplicates, reorders,
// corruption, truncation, stalls and disconnects on both directions,
// with eventual delivery guaranteed by clean dials after the schedule
// runs out — a resumed session's violation events must be byte-for-byte
// identical to the offline CheckLog over the same trace, with every
// frame counted and every event delivered exactly once.
func TestChaosTransportMatchesOffline(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 8
	}
	const dur = 60 * time.Second
	// One shared violating trace: a sensor-blindness injection, the
	// fault kind known to close real violations under the strict spec.
	frac := func(num, den time.Duration) time.Duration {
		return dur * num / den / sigdb.FastPeriod * sigdb.FastPeriod
	}
	log := hilLog(t, 42, dur, []injection{{
		from: frac(1, 3), to: frac(2, 3),
		signals: map[string]float64{
			sigdb.SigVehicleAhead: 0,
			sigdb.SigTargetRange:  0,
			sigdb.SigTargetRelVel: 0,
		},
	}})
	offline, err := offlineMonitor(t).CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	offlineViolations := 0
	for _, rr := range offline.Rules {
		offlineViolations += len(rr.Result.Violations)
	}
	if offlineViolations == 0 {
		t.Fatal("ground-truth trace has no violations; the equivalence sweep would be vacuous")
	}

	srv, addr := startServer(t, func(c *Config) {
		// Chaos reconnects complete within milliseconds; the grace only
		// has to outlive a backoff storm, and a short window keeps the
		// teardown drain fast when corrupted handshakes orphan sessions.
		c.ResumeGrace = 2 * time.Second
		c.IdleTimeout = time.Second
	})

	runs := make([]*chaosRun, seeds)
	errs := make([]error, seeds)
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[i], errs[i] = runChaosSession(addr, int64(i+1), log)
		}(i)
	}
	wg.Wait()

	faultsApplied, reconnects := 0, uint64(0)
	for i, run := range runs {
		if errs[i] != nil {
			t.Fatalf("seed %d: %v", i+1, errs[i])
		}
		faultsApplied += run.applied
		reconnects += run.stats.Reconnects

		streamed := make(map[string][]wire.Event)
		begins := make(map[string]int)
		for _, e := range run.events {
			switch e.Kind {
			case wire.EventBegin:
				begins[e.Rule]++
			case wire.EventEnd:
				streamed[e.Rule] = append(streamed[e.Rule], e)
			default:
				t.Errorf("seed %d: unexpected event kind %d (%+v)", i+1, e.Kind, e)
			}
		}
		for ri, rr := range offline.Rules {
			name := rr.Name()
			want := rr.Result.Violations
			got := streamed[name]
			if len(got) != len(want) {
				t.Fatalf("seed %d rule %s: streamed %d violations, offline %d (duplicate or lost events)",
					i+1, name, len(got), len(want))
			}
			if begins[name] != len(want) {
				t.Errorf("seed %d rule %s: %d begin events for %d violations", i+1, name, begins[name], len(want))
			}
			for vi := range want {
				wantBytes := wire.Marshal(endEventFromOffline(rr, vi))
				if !bytes.Equal(wire.Marshal(got[vi]), wantBytes) {
					t.Errorf("seed %d rule %s violation %d: wire bytes differ from offline", i+1, name, vi)
				}
			}
			rv := run.verdict.Rules[ri]
			if rv.Rule != name || int(rv.Violations) != len(want) {
				t.Errorf("seed %d rule %s: verdict row %+v, offline %d violations", i+1, name, rv, len(want))
			}
		}
		if run.verdict.FramesIngested != uint64(log.Len()) {
			t.Errorf("seed %d: ingested %d frames, sent %d", i+1, run.verdict.FramesIngested, log.Len())
		}
		if run.verdict.FramesDropped != 0 || run.verdict.FramesRejected != 0 {
			t.Errorf("seed %d: dropped=%d rejected=%d, want 0/0",
				i+1, run.verdict.FramesDropped, run.verdict.FramesRejected)
		}
	}
	// The sweep must actually have exercised the fault space: every
	// seeded schedule fires at least its first-dial faults, and the
	// disconnect-class ops force real resumes.
	if faultsApplied == 0 {
		t.Error("no faults applied; the chaos sweep was vacuous")
	}
	if reconnects == 0 {
		t.Error("no session ever reconnected; the resume path went unexercised")
	}
	t.Logf("chaos sweep: %d seeds, %d faults applied, %d reconnects, server stats %+v",
		seeds, faultsApplied, reconnects, srv.Stats())
}

// rawGrant performs a version-2 Hello by hand and returns the grant, for
// tests that need byte-level control of the uplink.
func rawGrant(t *testing.T, conn net.Conn, vehicle string) wire.SessionGrant {
	t.Helper()
	if err := wire.Write(conn, wire.Hello{Version: wire.Version, Vehicle: vehicle}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	rec, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	g, ok := rec.(wire.SessionGrant)
	if !ok {
		t.Fatalf("grant: got %T, want wire.SessionGrant", rec)
	}
	return g
}

// corruptRecord marshals a record and flips one payload bit, so the
// framing survives but the checksum (or the decode) does not.
func corruptRecord(rec wire.Record) []byte {
	raw := wire.Marshal(rec)
	raw[len(raw)-6] ^= 0x40
	return raw
}

// awaitVerdict reads records until the session's verdict arrives,
// skipping acks and events.
func awaitVerdict(t *testing.T, conn net.Conn) wire.Verdict {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		rec, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("awaiting verdict: %v", err)
		}
		switch rec := rec.(type) {
		case wire.VerdictSeq:
			return rec.Verdict
		case wire.Ack, wire.SeqEvent:
		case wire.Error:
			t.Fatalf("awaiting verdict: server error: %s", rec.Msg)
		default:
			t.Fatalf("awaiting verdict: unexpected %T", rec)
		}
	}
}

// TestQuarantineMalformedRecord pins the error-budget path: a corrupted
// record on a v2 session is skipped and counted, and the stream keeps
// working — the same batch retransmitted cleanly still reaches the
// monitor exactly once.
func TestQuarantineMalformedRecord(t *testing.T) {
	srv, addr := startServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawGrant(t, conn, "veh-q")

	batch := wire.SeqBatch{Seq: 1, Frames: []can.Frame{{Time: 10 * time.Millisecond, ID: sigdb.FrameVehicleDyn}}}
	if _, err := conn.Write(corruptRecord(batch)); err != nil {
		t.Fatal(err)
	}
	// The corrupt copy was quarantined, not enqueued, so sequence 1 is
	// still unclaimed and the clean retransmission must be accepted.
	if err := wire.Write(conn, batch); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.FinishSeq{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	v := awaitVerdict(t, conn)
	if v.FramesIngested != 1 {
		t.Errorf("ingested %d frames, want 1", v.FramesIngested)
	}
	st := srv.Stats()
	if st.RecordsQuarantined != 1 {
		t.Errorf("RecordsQuarantined = %d, want 1", st.RecordsQuarantined)
	}
	if st.DupBatchesDropped != 0 {
		t.Errorf("DupBatchesDropped = %d, want 0", st.DupBatchesDropped)
	}
}

// TestQuarantineUnexpectedRecords pins the v2 counterpart of
// TestProtocolErrorMidStream: a validly-framed record that has no
// business mid-stream (corruption can flip a type byte into another
// legal record) is quarantined, not terminal.
func TestQuarantineUnexpectedRecords(t *testing.T) {
	srv, addr := startServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawGrant(t, conn, "veh-u")

	// A v1 Finish and a v1 FrameBatch are both unexpected on a v2
	// session.
	if err := wire.Write(conn, wire.Finish{}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.FrameBatch{Frames: []can.Frame{{Time: time.Millisecond, ID: sigdb.FrameVehicleDyn}}}); err != nil {
		t.Fatal(err)
	}
	batch := wire.SeqBatch{Seq: 1, Frames: []can.Frame{{Time: 10 * time.Millisecond, ID: sigdb.FrameVehicleDyn}}}
	if err := wire.Write(conn, batch); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.FinishSeq{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	v := awaitVerdict(t, conn)
	if v.FramesIngested != 1 {
		t.Errorf("ingested %d frames, want 1", v.FramesIngested)
	}
	if got := srv.Stats().RecordsQuarantined; got != 2 {
		t.Errorf("RecordsQuarantined = %d, want 2", got)
	}
}

// TestErrorBudgetSuspendsThenResumes drives a session past its error
// budget: the attachment is cut, but the session parks and a Resume
// with the grant token picks it back up to a clean verdict.
func TestErrorBudgetSuspendsThenResumes(t *testing.T) {
	srv, addr := startServer(t, func(c *Config) {
		c.ErrorBudget = 1
		c.ResumeGrace = 5 * time.Second
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	grant := rawGrant(t, conn, "veh-b")

	batch := wire.SeqBatch{Seq: 1, Frames: []can.Frame{{Time: 10 * time.Millisecond, ID: sigdb.FrameVehicleDyn}}}
	// Two malformed records: the first is quarantined under the budget
	// of one, the second exhausts it and the server cuts the attachment.
	if _, err := conn.Write(corruptRecord(batch)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(corruptRecord(batch)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		if _, err := wire.Read(conn); err != nil {
			break // attachment cut
		}
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Write(conn2, wire.Resume{Version: wire.Version, Token: grant.Token}); err != nil {
		t.Fatal(err)
	}
	rec, err := wire.Read(conn2)
	if err != nil {
		t.Fatalf("resume grant: %v", err)
	}
	g2, ok := rec.(wire.SessionGrant)
	if !ok {
		t.Fatalf("resume grant: got %T", rec)
	}
	if g2.Session != grant.Session {
		t.Errorf("resume returned session %d, want %d", g2.Session, grant.Session)
	}
	if g2.AckSeq != 0 {
		t.Errorf("resume AckSeq = %d, want 0 (nothing was applied)", g2.AckSeq)
	}
	if err := wire.Write(conn2, batch); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn2, wire.FinishSeq{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	v := awaitVerdict(t, conn2)
	if v.FramesIngested != 1 {
		t.Errorf("ingested %d frames, want 1", v.FramesIngested)
	}
	st := srv.Stats()
	if st.SessionsResumed != 1 {
		t.Errorf("SessionsResumed = %d, want 1", st.SessionsResumed)
	}
	if st.RecordsQuarantined != 2 {
		t.Errorf("RecordsQuarantined = %d, want 2", st.RecordsQuarantined)
	}
}

// TestDrainDuringResume pins the shutdown/resume interlock: the server
// begins draining while the client sits in reconnect backoff with a
// parked session. The drain must wait for the resume, verdict the
// session through the new attachment, and close it exactly once.
func TestDrainDuringResume(t *testing.T) {
	srv, addr := startServer(t, func(c *Config) { c.ResumeGrace = 30 * time.Second })
	log := hilLog(t, 7, 10*time.Second, nil)
	// Dial 0 dies a quarter of the way into the uplink; dial 1 dies
	// instantly, pushing the client into a real backoff sleep — the
	// window the drain must tolerate. Dial 2 is clean.
	d := &faultnet.Dialer{Schedules: [][]faultnet.Fault{
		{{Op: faultnet.Disconnect, Dir: faultnet.Send, Offset: 16 << 10}},
		{{Op: faultnet.Disconnect, Dir: faultnet.Send, Offset: 0}},
	}}
	c, err := DialOptions(addr, Options{
		Vehicle:    "veh-drain",
		Dial:       d.Dial,
		MaxRetries: 8,
		Backoff:    200 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type res struct {
		v   *wire.Verdict
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := c.Replay(log, 0)
		done <- res{v, err}
	}()

	// Wait for the doomed second dial: the client is now backing off
	// with its session parked server-side.
	deadline := time.Now().Add(10 * time.Second)
	for d.Dials() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("client never redialed (dials=%d)", d.Dials())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during backoff: %v (dials=%d active=%d awaited=%d stats=%+v)",
			err, d.Dials(), srv.active.Load(), srv.awaitedParked(), srv.Stats())
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("no verdict after drain-during-resume: %v", r.err)
	}
	if r.v.FramesIngested == 0 || r.v.FramesIngested > uint64(log.Len()) {
		t.Errorf("drained verdict ingested %d frames, want 1..%d", r.v.FramesIngested, log.Len())
	}
	st := srv.Stats()
	if st.SessionsResumed != 1 {
		t.Errorf("SessionsResumed = %d, want 1", st.SessionsResumed)
	}
	if st.SessionsClosed != 1 || st.SessionsReaped != 0 {
		t.Errorf("verdict not delivered exactly once: closed=%d reaped=%d, want 1/0",
			st.SessionsClosed, st.SessionsReaped)
	}
}

package fleet

import (
	"net"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/faultnet"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// nullArchiver satisfies Archiver for ledger tests that do not inspect
// archive contents.
type nullArchiver struct{}

func (nullArchiver) ArchiveFrames(uint64, string, []can.Frame) error { return nil }
func (nullArchiver) ArchiveEvent(uint64, string, wire.Event) error   { return nil }
func (nullArchiver) ArchiveVerdict(uint64, string, wire.Verdict) error {
	return nil
}

// memLedger is an in-memory Ledger capturing the server's calls, for
// asserting the write-before-ack ordering contract remotely: any
// protocol message the client holds must already be backed by a ledger
// record (the ledger write happens-before the wire write, which
// happens-before our read).
type memLedger struct {
	mu        sync.Mutex
	opened    map[uint64]struct{}
	token     uint64
	proto     uint16
	vehicle   string
	wmAck     map[uint64]uint64
	wmFrames  map[uint64]uint64
	verdicts  map[uint64]wire.Verdict
	delivered map[uint64]bool
	closed    map[uint64]bool
}

func newMemLedger() *memLedger {
	return &memLedger{
		opened:    make(map[uint64]struct{}),
		wmAck:     make(map[uint64]uint64),
		wmFrames:  make(map[uint64]uint64),
		verdicts:  make(map[uint64]wire.Verdict),
		delivered: make(map[uint64]bool),
		closed:    make(map[uint64]bool),
	}
}

func (l *memLedger) SessionOpened(session, token uint64, proto uint16, vehicle, spec string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opened[session] = struct{}{}
	l.token, l.proto, l.vehicle = token, proto, vehicle
	return nil
}

func (l *memLedger) Watermark(session, ackSeq, frames, rejected uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wmAck[session] = ackSeq
	l.wmFrames[session] = frames
	return nil
}

func (l *memLedger) VerdictReached(session, eventSeq uint64, v wire.Verdict) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.verdicts[session] = v
	return nil
}

func (l *memLedger) VerdictDelivered(session uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delivered[session] = true
	return nil
}

func (l *memLedger) SessionClosed(session uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed[session] = true
	return nil
}

// TestLedgerConfigValidation pins the constraints a crash-safe server
// build must satisfy.
func TestLedgerConfigValidation(t *testing.T) {
	base := Config{DB: sigdb.Vehicle(), Resolve: testResolver, Ledger: newMemLedger()}
	if _, err := NewServer(base); err == nil {
		t.Error("NewServer accepted a Ledger without an Archiver")
	}
	withArch := base
	withArch.Archiver = nullArchiver{}
	withArch.DropWhenFull = true
	if _, err := NewServer(withArch); err == nil {
		t.Error("NewServer accepted Ledger together with DropWhenFull")
	}
	withArch.DropWhenFull = false
	if _, err := NewServer(withArch); err != nil {
		t.Errorf("NewServer refused a valid ledgered config: %v", err)
	}
}

// TestLedgerWriteBeforeAck drives a raw v2 session against a server
// with a recording ledger and asserts the ordering contract at every
// protocol step: when the client holds a grant the session is ledgered;
// when it holds an Ack the watermark covers that ack; when it holds the
// verdict the verdict record exists.
func TestLedgerWriteBeforeAck(t *testing.T) {
	led := newMemLedger()
	srv, addr := startServer(t, func(cfg *Config) {
		cfg.Ledger = led
		cfg.Archiver = nullArchiver{}
		// Acks wait for the group commit; a short cadence keeps the
		// lock-step exchange below snappy.
		cfg.WatermarkInterval = 2 * time.Millisecond
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	grant := rawGrant(t, conn, "veh-ledger")

	led.mu.Lock()
	_, opened := led.opened[grant.Session]
	tok := led.token
	led.mu.Unlock()
	if !opened {
		t.Fatal("client holds a grant for a session the ledger never opened")
	}
	if tok != grant.Token {
		t.Fatalf("ledgered token %#x, granted %#x", tok, grant.Token)
	}

	for seq := uint64(1); seq <= 2; seq++ {
		base := time.Duration(seq) * 100 * time.Millisecond
		frames := []can.Frame{
			{Time: base + 10*time.Millisecond, ID: sigdb.FrameVehicleDyn},
			{Time: base + 20*time.Millisecond, ID: sigdb.FrameVehicleDyn},
		}
		if err := wire.Write(conn, wire.SeqBatch{Seq: seq, Frames: frames}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		rec, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("batch %d ack: %v", seq, err)
		}
		ack, ok := rec.(wire.Ack)
		if !ok {
			t.Fatalf("batch %d: got %T, want Ack", seq, rec)
		}
		led.mu.Lock()
		wmAck, wmFrames := led.wmAck[grant.Session], led.wmFrames[grant.Session]
		led.mu.Unlock()
		if wmAck < ack.Seq {
			t.Fatalf("client holds ack %d but the ledger watermark is %d — ack outran the ledger", ack.Seq, wmAck)
		}
		if want := seq * 2; wmFrames != want {
			t.Fatalf("watermark frames = %d after batch %d, want %d", wmFrames, seq, want)
		}
	}

	if err := wire.Write(conn, wire.FinishSeq{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	v := awaitVerdict(t, conn)
	led.mu.Lock()
	_, reached := led.verdicts[grant.Session]
	led.mu.Unlock()
	if !reached {
		t.Fatal("client holds the verdict but the ledger has no VerdictReached record")
	}
	if v.FramesIngested != 4 {
		t.Errorf("verdict ingested %d, want 4", v.FramesIngested)
	}
	// Delivery is recorded after the verdict write flushes; give the
	// worker a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		led.mu.Lock()
		del := led.delivered[grant.Session]
		led.mu.Unlock()
		if del {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("verdict delivery never recorded in the ledger")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := srv.Stats(); st.LedgerErrors != 0 {
		t.Errorf("LedgerErrors = %d", st.LedgerErrors)
	}
}

// TestBackoffResetAfterResume pins the reconnect-backoff satellite: a
// failed attempt inflates the persistent starting delay, and a
// successful resume handshake resets it to the configured base — a
// healthy transport earns the base interval back instead of paying the
// last outage's inflated delay forever.
func TestBackoffResetAfterResume(t *testing.T) {
	_, addr := startServer(t, func(c *Config) { c.ResumeGrace = 30 * time.Second })
	log := hilLog(t, 5, 10*time.Second, nil)

	// Dial 0 dies mid-uplink (forcing episode 1); dial 1 dies instantly
	// (a failed attempt, inflating the backoff); dial 2+ are clean.
	d := &faultnet.Dialer{Schedules: [][]faultnet.Fault{
		{{Op: faultnet.Disconnect, Dir: faultnet.Send, Offset: 16 << 10}},
		{{Op: faultnet.Disconnect, Dir: faultnet.Send, Offset: 0}},
	}}
	const base = 25 * time.Millisecond
	var (
		mu       sync.Mutex
		cl       *Client
		observed []time.Duration
	)
	dial := func(addr string) (net.Conn, error) {
		mu.Lock()
		if cl != nil {
			cl.mu.Lock()
			observed = append(observed, cl.backoff)
			cl.mu.Unlock()
		}
		mu.Unlock()
		return d.Dial(addr)
	}
	c, err := DialOptions(addr, Options{
		Vehicle:    "veh-backoff",
		Dial:       dial,
		MaxRetries: 8,
		Backoff:    base,
		MaxBackoff: 10 * time.Second,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mu.Lock()
	cl = c
	mu.Unlock()

	if _, err := c.Replay(log, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}

	mu.Lock()
	peak := time.Duration(0)
	for _, b := range observed {
		if b > peak {
			peak = b
		}
	}
	mu.Unlock()
	if peak <= base {
		t.Fatalf("backoff never inflated above the base (%v); the dial-1 failure went unobserved", base)
	}
	c.mu.Lock()
	final := c.backoff
	c.mu.Unlock()
	if final != base {
		t.Errorf("backoff after a successful resume = %v, want the base %v", final, base)
	}
	if d.Dials() < 3 {
		t.Fatalf("only %d dials; the redial path went unexercised", d.Dials())
	}
}

package fleet

import (
	"context"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/sigdb"
)

// TestShutdownFlushesArchiveTail pins the drain satellite: a server
// shut down mid-stream (no Finish from the client) flushes and drains
// its archive queue before the final verdict ack, so a catalog opened
// over the directory — with the Writer still open, no seal — already
// holds every frame run, every event and the session's verdict.
func TestShutdownFlushesArchiveTail(t *testing.T) {
	dir := t.TempDir()
	aw, err := archive.OpenWriter(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer aw.Close()

	srv, addr := startServer(t, func(cfg *Config) {
		cfg.Archiver = aw
	})
	log := hilLog(t, 11, 10*time.Second, nil)
	c, err := Dial(addr, "veh-drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(log.Frames()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().FramesIngested < uint64(log.Len()) {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested %d of %d frames", srv.Stats().FramesIngested, log.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	v, err := c.Wait()
	if err != nil {
		t.Fatalf("no verdict after drain: %v", err)
	}

	st := srv.Stats()
	if st.ArchiveDropped != 0 {
		t.Errorf("archive shed %d items during an unloaded run", st.ArchiveDropped)
	}
	if st.ArchiveErrors != 0 {
		t.Errorf("archiver reported %d errors", st.ArchiveErrors)
	}

	// No Writer.Close, no Flush: Shutdown's own drain must have pushed
	// the tail out.
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	var frames uint64
	var verdicts int
	it := cat.Iter(archive.Query{})
	for it.Next() {
		rec := it.Record()
		if rec.Vehicle != "veh-drain" {
			t.Fatalf("record for unexpected vehicle %q", rec.Vehicle)
		}
		switch rec.Kind {
		case archive.KindFrames:
			frames += uint64(len(rec.Frames))
		case archive.KindVerdict:
			verdicts++
			if len(rec.Verdict.Rules) != len(v.Rules) {
				t.Fatalf("archived verdict has %d rules, delivered %d", len(rec.Verdict.Rules), len(v.Rules))
			}
			for i := range v.Rules {
				if rec.Verdict.Rules[i] != v.Rules[i] {
					t.Fatalf("archived rule %d = %+v, delivered %+v", i, rec.Verdict.Rules[i], v.Rules[i])
				}
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if frames != uint64(log.Len()) {
		t.Fatalf("archive holds %d frames, want %d", frames, log.Len())
	}
	if verdicts != 1 {
		t.Fatalf("archive holds %d verdicts, want 1", verdicts)
	}
}

// TestArchiveCapturesFinishedSession checks the ordinary path: a
// Finish-terminated session's frames, events and verdict all reach the
// archive, and Stats counts the enqueued records.
func TestArchiveCapturesFinishedSession(t *testing.T) {
	dir := t.TempDir()
	aw, err := archive.OpenWriter(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv, _ := startServer(t, func(cfg *Config) {
		cfg.Archiver = aw
		// A full-speed replay outruns the default queue; this test
		// wants lossless capture, so shedding would fail the frame
		// count below.
		cfg.ArchiveQueue = 1 << 16
	})
	addr := srv.Addr().String()
	// The blinded-radar fault needs tens of seconds of vehicle
	// dynamics before a rule trips (same shape as fleetScenarios).
	log := hilLog(t, 3, 60*time.Second, []injection{{
		from: 20 * time.Second, to: 40 * time.Second,
		signals: map[string]float64{
			sigdb.SigVehicleAhead: 0,
			sigdb.SigTargetRange:  0,
			sigdb.SigTargetRelVel: 0,
		},
	}})
	c, err := Dial(addr, "veh-fin", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Replay(log, 0)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	var frames uint64
	var events, verdicts int
	it := cat.Iter(archive.Query{})
	for it.Next() {
		switch it.Record().Kind {
		case archive.KindFrames:
			frames += uint64(len(it.Record().Frames))
		case archive.KindEvent:
			events++
		case archive.KindVerdict:
			verdicts++
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if frames != v.FramesIngested {
		t.Fatalf("archive holds %d frames, verdict ingested %d", frames, v.FramesIngested)
	}
	var want uint32
	for _, rv := range v.Rules {
		want += rv.Violations
	}
	if want == 0 {
		t.Fatal("scenario produced no violations; the event assertion is vacuous")
	}
	if events == 0 {
		t.Fatal("no events archived")
	}
	if verdicts != 1 {
		t.Fatalf("archive holds %d verdicts, want 1", verdicts)
	}
	if st := srv.Stats(); st.ArchiveRecords == 0 || st.ArchiveDropped != 0 || st.ArchiveErrors != 0 {
		t.Fatalf("archive stats = %+v", st)
	}
}

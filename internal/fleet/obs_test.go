package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpsmon/internal/obs"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// scrape encodes the registry and parses every sample line back into a
// value keyed by "name{labels}", failing the test on any line that is
// not valid Prometheus text exposition.
func scrape(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

// sumFamily totals every series of one family, across label sets.
func sumFamily(samples map[string]float64, name string) float64 {
	total := 0.0
	for k, v := range samples {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// TestMetricsMatchStatsAndJournal is the observability e2e: concurrent
// sessions stream HIL captures through a server publishing on a shared
// registry, with the event/verdict hooks feeding a JSONL journal. The
// scraped /metrics text must parse, its counters must equal the
// Server.Stats() snapshot and the monitor-level ground truth, and the
// journal must hold exactly one line per produced event and verdict.
func TestMetricsMatchStatsAndJournal(t *testing.T) {
	sessions := 8
	const dur = 60 * time.Second
	if testing.Short() {
		sessions = 4
	}
	logs := fleetScenarios(t, sessions, dur)

	// Offline ground truth: the violation counters on /metrics must
	// equal what CheckLog finds in the same captures.
	mon := offlineMonitor(t)
	var offlineViolations, totalFrames int
	for _, log := range logs {
		rep, err := mon.CheckLog(log, sigdb.Vehicle())
		if err != nil {
			t.Fatalf("CheckLog: %v", err)
		}
		for _, rr := range rep.Rules {
			offlineViolations += len(rr.Result.Violations)
		}
		totalFrames += len(log.Frames())
	}

	reg := obs.NewRegistry()
	journal, err := obs.OpenJournal(filepath.Join(t.TempDir(), "verdicts.jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var hookEvents, hookVerdicts atomic.Uint64
	srv, addr := startServer(t, func(c *Config) {
		c.Metrics = reg
		c.OnEvent = func(session uint64, vehicle string, e wire.Event) {
			hookEvents.Add(1)
			if err := journal.Append(map[string]any{
				"kind": "event", "session": session, "vehicle": vehicle,
				"rule": e.Rule, "event": e.Kind.String(),
			}); err != nil {
				t.Errorf("journal event: %v", err)
			}
		}
		c.OnVerdict = func(session uint64, vehicle string, v wire.Verdict) {
			hookVerdicts.Add(1)
			if err := journal.Append(map[string]any{
				"kind": "verdict", "session": session, "vehicle": vehicle,
				"rules": len(v.Rules),
			}); err != nil {
				t.Errorf("journal verdict: %v", err)
			}
		}
	})

	var wg sync.WaitGroup
	var totalEvents atomic.Uint64
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialOptions(addr, Options{
				Vehicle: fmt.Sprintf("veh-%03d", i),
				Spec:    "strict",
				OnEvent: func(wire.Event) { totalEvents.Add(1) },
				Metrics: reg,
			})
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			defer c.Close()
			if _, err := c.Replay(logs[i], 0); err != nil {
				t.Errorf("session %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	samples := scrape(t, reg)

	// Every server counter must read identically through Stats() and
	// the exposition — they are the same registry cells.
	for _, c := range []struct {
		metric string
		stat   uint64
	}{
		{"cpsmon_fleet_sessions_opened_total", st.SessionsOpened},
		{"cpsmon_fleet_sessions_closed_total", st.SessionsClosed},
		{"cpsmon_fleet_sessions_refused_total", st.SessionsRefused},
		{"cpsmon_fleet_sessions_resumed_total", st.SessionsResumed},
		{"cpsmon_fleet_sessions_reaped_total", st.SessionsReaped},
		{"cpsmon_fleet_frames_ingested_total", st.FramesIngested},
		{"cpsmon_fleet_frames_dropped_total", st.FramesDropped},
		{"cpsmon_fleet_frames_rejected_total", st.FramesRejected},
		{"cpsmon_fleet_batches_blocked_total", st.BatchesBlocked},
		{"cpsmon_fleet_violations_emitted_total", st.ViolationsEmitted},
		{"cpsmon_fleet_events_emitted_total", st.EventsEmitted},
		{"cpsmon_fleet_gap_events_total", st.GapEvents},
		{"cpsmon_fleet_records_quarantined_total", st.RecordsQuarantined},
		{"cpsmon_fleet_dup_batches_dropped_total", st.DupBatchesDropped},
		{"cpsmon_fleet_ingest_batch_latency_seconds_count", st.IngestBatches},
	} {
		got, ok := samples[c.metric]
		if !ok {
			t.Errorf("metric %s missing from exposition", c.metric)
			continue
		}
		if got != float64(c.stat) {
			t.Errorf("%s = %v, Stats() says %d", c.metric, got, c.stat)
		}
	}
	if st.SessionsOpened != uint64(sessions) || st.EventsEmitted == 0 || st.ViolationsEmitted == 0 {
		t.Errorf("fixture too quiet for the assertions to bite: %+v", st)
	}
	if got := samples["cpsmon_fleet_sessions_active"]; got != 0 {
		t.Errorf("sessions_active gauge = %v after all sessions settled, want 0", got)
	}

	// Monitor-level metrics against ground truth: every HIL frame has a
	// database ID, so the per-spec decode counter must equal the
	// server's ingest counter — which in turn must be every frame the
	// scenarios produced — and per-rule violation counters must sum to
	// the violations emitted, which must be what the offline CheckLog
	// finds in the same captures.
	if st.FramesIngested != uint64(totalFrames) {
		t.Errorf("server ingested %d frames, captures hold %d", st.FramesIngested, totalFrames)
	}
	if got := sumFamily(samples, "cpsmon_monitor_frames_decoded_total"); got != float64(st.FramesIngested) {
		t.Errorf("monitor frames decoded = %v, want %d", got, st.FramesIngested)
	}
	if got := sumFamily(samples, "cpsmon_monitor_rule_violations_total"); got != float64(offlineViolations) {
		t.Errorf("per-rule violation counters sum to %v, offline CheckLog finds %d", got, offlineViolations)
	}
	if got := sumFamily(samples, "cpsmon_monitor_rule_violations_total"); got != float64(st.ViolationsEmitted) {
		t.Errorf("per-rule violation counters sum to %v, want %d", got, st.ViolationsEmitted)
	}
	if got := sumFamily(samples, "cpsmon_monitor_steps_total"); got == 0 {
		t.Error("monitor step counter never advanced")
	}

	// Client metrics surfaced on the same registry, per vehicle.
	if got := sumFamily(samples, "cpsmon_fleet_client_dial_attempts_total"); got != float64(sessions) {
		t.Errorf("client dial attempts = %v, want %d", got, sessions)
	}
	if got := sumFamily(samples, "cpsmon_fleet_client_replay_depth"); got != 0 {
		t.Errorf("replay depth = %v after settlement, want 0", got)
	}

	// Journal: one line per produced event plus one per verdict, and
	// the clients saw every produced event exactly once.
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if hookVerdicts.Load() != uint64(sessions) {
		t.Errorf("verdict hook fired %d times, want %d", hookVerdicts.Load(), sessions)
	}
	if hookEvents.Load() != st.EventsEmitted {
		t.Errorf("event hook fired %d times, server emitted %d", hookEvents.Load(), st.EventsEmitted)
	}
	if totalEvents.Load() != st.EventsEmitted {
		t.Errorf("clients received %d events, server emitted %d", totalEvents.Load(), st.EventsEmitted)
	}
	data, err := os.ReadFile(journal.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if want := int(hookEvents.Load() + hookVerdicts.Load()); lines != want {
		t.Errorf("journal holds %d lines, want %d (events + verdicts)", lines, want)
	}
}

// TestWireMetricsOnSharedRegistry checks the codec counters surface
// alongside the fleet counters when the codec is instrumented on the
// server's registry.
func TestWireMetricsOnSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	wire.Instrument(reg)
	defer wire.Instrument(nil)
	_, addr := startServer(t, func(c *Config) { c.Metrics = reg })
	log := hilLog(t, 7, 2*time.Second, nil)
	c, err := DialOptions(addr, Options{Vehicle: "veh-wire", Spec: "strict", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Replay(log, 0); err != nil {
		t.Fatal(err)
	}
	samples := scrape(t, reg)
	if got := samples[`cpsmon_wire_records_total{dir="rx",type="seq_batch"}`]; got == 0 {
		t.Error("no seq_batch records counted on rx")
	}
	if got := samples[`cpsmon_wire_records_total{dir="tx",type="seq_batch"}`]; got == 0 {
		t.Error("no seq_batch records counted on tx")
	}
	if got := sumFamily(samples, "cpsmon_wire_bytes_total"); got == 0 {
		t.Error("no wire bytes counted")
	}
}

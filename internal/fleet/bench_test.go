package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/flight"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
)

// benchLog synthesizes a bus capture directly (no plant simulation):
// steady following traffic with a mid-trace fault burst, so every
// session exercises both the clean path and violation emission.
func benchLog(b *testing.B, ticks int) *can.Log {
	b.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 1)
		_ = bus.Set(sigdb.SigTargetRange, 40)
		if tick >= ticks/3 && tick < ticks/2 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			b.Fatal(err)
		}
	}
	return bus.Log()
}

// benchIngest runs b.N rounds of `sessions` concurrent clients
// replaying log against addr, reporting frames/sec and ns/frame.
func benchIngest(b *testing.B, log *can.Log, sessions int, addr string) {
	benchIngestSpec(b, log, sessions, addr, "strict")
}

// benchIngestSpec is benchIngest with the hello spec under the
// caller's control. The shadow benchmark needs sessions on the
// default spec — named-spec sessions are rollout-exempt and would
// measure nothing.
func benchIngestSpec(b *testing.B, log *can.Log, sessions int, addr, spec string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c, err := Dial(addr, fmt.Sprintf("bench-%03d", s), spec, nil)
				if err != nil {
					b.Error(err)
					return
				}
				defer c.Close()
				if _, err := c.Replay(log, 0); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
	}
	b.StopTimer()
	frames := float64(b.N) * float64(sessions) * float64(log.Len())
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(frames/secs, "frames/sec")
	}
	if frames > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/frames, "ns/frame")
	}
}

// BenchmarkFleetIngest measures end-to-end ingest throughput over
// loopback TCP: N concurrent sessions replaying the same capture at
// full speed through one server. It reports frames/sec and ns/frame so
// the perf trajectory tracks ingest throughput across PRs.
func BenchmarkFleetIngest(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			_, addr := startServer(b, nil)
			benchIngest(b, log, sessions, addr)
		})
	}
}

// BenchmarkFleetIngestFlight is BenchmarkFleetIngest with the flight
// recorder and latency SLO attached at default sampling (1 in 64
// batches) — the configuration a production daemon runs. The
// acceptance bar is under 3% regression against the plain benchmark:
// the per-batch overhead is one atomic sampling decision, one
// histogram observation and one SLO bucket update.
func BenchmarkFleetIngestFlight(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			_, addr := startServer(b, func(cfg *Config) {
				cfg.Flight = flight.New(flight.Config{})
				cfg.SLO = flight.NewSLO(0, 0, 0)
			})
			benchIngest(b, log, sessions, addr)
		})
	}
}

// BenchmarkFleetIngestArchived is BenchmarkFleetIngest with the
// archive hook enabled: same loopback replay, every applied frame run
// and verdict also flowing through the pump into a segment store on
// disk. The acceptance bar is under 5% frames/sec regression against
// the unarchived benchmark. Note this mode sheds archive items under
// load (at 64 sessions the pump drops most frame runs), which is what
// keeps ingest flat — it is NOT the baseline for the ledgered
// benchmark; the Lossless variant below is.
func BenchmarkFleetIngestArchived(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			aw, err := archive.OpenWriter(b.TempDir(), archive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer aw.Close()
			_, addr := startServer(b, func(cfg *Config) {
				cfg.Archiver = aw
			})
			benchIngest(b, log, sessions, addr)
		})
	}
}

// BenchmarkFleetIngestArchivedLossless is the archived benchmark with
// ArchiveBackpressure set: no shedding, every applied frame run hits
// the segment store, ingest waits for archive I/O when the pump falls
// behind. This is the apples-to-apples baseline for the ledgered
// benchmark (internal/durable), which archives losslessly by
// construction — comparing it against the shedding mode would charge
// the ledger for archive writes the shedding mode silently skipped.
// BenchmarkFleetIngestShadow is BenchmarkFleetIngest with a candidate
// spec shadowing every session: each batch is evaluated twice (active
// and candidate) and the verdict tallies compared at batch boundaries.
// Roughly 2x ns/frame is the expected and documented cost — shadow
// mode is a bounded canary window, not a steady state. The number that
// must NOT move is the shadow-off BenchmarkFleetIngest above: the
// rollout hook on the hot path is one atomic generation load per
// batch.
func BenchmarkFleetIngestShadow(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			srv, addr := startServer(b, nil)
			if err := srv.BeginShadow("bench-candidate", rules.RelaxedSource); err != nil {
				b.Fatal(err)
			}
			benchIngestSpec(b, log, sessions, addr, "")
		})
	}
}

func BenchmarkFleetIngestArchivedLossless(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			aw, err := archive.OpenWriter(b.TempDir(), archive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer aw.Close()
			_, addr := startServer(b, func(cfg *Config) {
				cfg.Archiver = aw
				cfg.ArchiveBackpressure = true
			})
			benchIngest(b, log, sessions, addr)
		})
	}
}

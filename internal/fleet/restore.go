package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/wire"
)

// RestoredSession is one unfinished session's durable identity as a
// ledger recorded it, handed to NewRestorer by the recovery engine.
type RestoredSession struct {
	// ID and Token are the session's original grant; Proto its wire
	// protocol version (must be ≥ 2 — only resumable sessions are
	// ledgered); Vehicle and Spec its Hello selections.
	ID, Token uint64
	Proto     uint16
	Vehicle   string
	Spec      string
	// AckSeq is the last batch sequence the previous process
	// acknowledged; Frames and Rejected the cumulative applied and
	// rejected frame counts at that watermark. The rebuild replays
	// archived frames until exactly Frames of them have been applied.
	AckSeq, Frames, Rejected uint64
	// Verdict, when non-nil, marks a finalized session; EventSeq is the
	// event count its VerdictSeq carried, and Delivered whether a
	// verdict write ever reached the transport.
	Verdict   *wire.Verdict
	EventSeq  uint64
	Delivered bool
}

// RestoreSkips tells Finish how much of the session's upcoming output
// the previous process already archived past the last watermark.
// Post-crash, the client retransmits the unacknowledged batches and
// deterministic re-application regenerates byte-identical runs, events
// and verdict — so the session skips archiving (and re-journaling)
// exactly these counts, keeping the archive free of duplicates without
// any read-side dedup.
type RestoreSkips struct {
	// Frames is the archived frame count beyond the watermark; Events
	// the archived event count beyond the rebuilt event list; Verdict
	// whether a verdict record is already archived.
	Frames, Events uint64
	Verdict        bool
}

// Restorer rebuilds one ledgered session's in-memory monitor state by
// replaying its archived frames, then parks it so the client's resume
// finds it exactly where the crash left it. Use it strictly as
//
//	r, err := srv.NewRestorer(info)
//	r.PushFrames(...) // once per archived frames record, in order
//	r.Finish(skips)   // or r.Abort() on any error
//
// before the server starts accepting connections; a Restorer is not
// safe for concurrent use.
type Restorer struct {
	srv  *Server
	sess *session
	info RestoredSession
	done bool
}

// NewRestorer validates a ledgered session and prepares its monitor
// for the archive replay. The returned Restorer must be resolved with
// Finish or Abort before the server serves traffic.
func (s *Server) NewRestorer(info RestoredSession) (*Restorer, error) {
	if s.cfg.Ledger == nil {
		return nil, errors.New("fleet: restore requires a configured Ledger")
	}
	if info.Proto < 2 || info.Token == 0 {
		return nil, fmt.Errorf("fleet: session %d is not resumable (proto %d, token %#x)", info.ID, info.Proto, info.Token)
	}
	if s.closed.Load() {
		return nil, errors.New("fleet: server closed")
	}
	s.parkMu.Lock()
	_, dupParked := s.parkedBy[info.Token]
	_, dupAttached := s.attached[info.Token]
	s.parkMu.Unlock()
	if dupParked || dupAttached {
		return nil, fmt.Errorf("fleet: session %d token already present", info.ID)
	}
	// The rebuild resolves the spec by name against the *current*
	// deployment — the replay runs through whatever the default spec is
	// now — so an unfinalized session is stamped with the current
	// active epoch. A finalized one instead inherits the epoch its
	// ledgered verdict carries (see Finish), keeping the byte-equality
	// check honest.
	entry, epoch, err := s.specFor(info.Spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: session %d spec %q: %w", info.ID, info.Spec, err)
	}
	om, err := entry.mon.Online(s.cfg.DB)
	if err != nil {
		return nil, fmt.Errorf("fleet: session %d monitor: %w", info.ID, err)
	}
	sess := &session{
		id:        info.ID,
		srv:       s,
		proto:     info.Proto,
		token:     info.Token,
		vehicle:   info.Vehicle,
		om:        om,
		entry:     entry,
		specName:  info.Spec,
		specEpoch: epoch,
		tally:     make(map[string]*ruleTally, len(entry.rules)),
		// rebuilding suppresses archiving, hooks and emission counters:
		// the replay reproduces state, it must not re-report anything.
		rebuilding: true,
	}
	s.stats.sessionsOpened.Add(1)
	return &Restorer{srv: s, sess: sess, info: info}, nil
}

// Frames returns the cumulative frame count applied so far, for the
// caller to align archived records against the ledger watermark.
func (r *Restorer) Frames() uint64 { return r.sess.ingested }

// Events returns the event count regenerated so far.
func (r *Restorer) Events() uint64 { return uint64(len(r.sess.events)) }

// PushFrames replays one archived frames record through the session's
// monitor, regenerating the events (violations, silence gaps) the
// original run produced.
func (r *Restorer) PushFrames(frames []can.Frame) error {
	if r.done {
		return errors.New("fleet: restorer already resolved")
	}
	out, err := r.sess.apply(frames)
	if err != nil {
		return fmt.Errorf("fleet: session %d replay: %w", r.sess.id, err)
	}
	// Events are retained directly — the emit path is for live clients;
	// a resume after recovery replays this list with the same sequence
	// numbers the original emission used.
	r.sess.events = append(r.sess.events, out...)
	return nil
}

// Finish checks the rebuild against the ledger watermark, restores the
// session's sequencing state and parks it for resume. A finalized
// session additionally regenerates its close-of-stream events and
// verifies the rebuilt verdict is byte-identical to the ledgered one —
// a mismatch means archive and ledger disagree and the session cannot
// be served truthfully.
func (r *Restorer) Finish(skips RestoreSkips) error {
	if r.done {
		return errors.New("fleet: restorer already resolved")
	}
	sess, info, s := r.sess, r.info, r.srv
	if sess.ingested != info.Frames || sess.rejected != 0 {
		err := fmt.Errorf("fleet: session %d rebuild applied %d frames, rejected %d; ledger watermark says %d applied — archive and ledger disagree",
			info.ID, sess.ingested, sess.rejected, info.Frames)
		r.Abort()
		return err
	}
	sess.rejected = info.Rejected
	sess.lastApplied = info.AckSeq
	sess.lastEnq = info.AckSeq
	sess.ledgeredSeq = info.AckSeq
	sess.skipArchFrames = skips.Frames
	sess.skipArchEvents = skips.Events
	sess.skipArchVerdict = skips.Verdict

	if info.Verdict != nil {
		sess.specEpoch = info.Verdict.SpecEpoch
		evs, err := sess.om.Close()
		if err != nil {
			r.Abort()
			return fmt.Errorf("fleet: session %d close replay: %w", info.ID, err)
		}
		sess.events = append(sess.events, sess.convert(nil, evs)...)
		if uint64(len(sess.events)) != info.EventSeq {
			err := fmt.Errorf("fleet: session %d rebuilt %d events, ledger verdict covers %d",
				info.ID, len(sess.events), info.EventSeq)
			r.Abort()
			return err
		}
		if got := sess.verdict(); !bytes.Equal(wire.Marshal(got), wire.Marshal(*info.Verdict)) {
			r.Abort()
			return fmt.Errorf("fleet: session %d rebuilt verdict differs from the ledgered one", info.ID)
		}
		sess.verdictRec = &wire.VerdictSeq{EventSeq: info.EventSeq, Verdict: *info.Verdict}
		sess.finalized = true
		sess.delivered = info.Delivered
		s.stats.sessionsClosed.Add(1)
	}

	sess.rebuilding = false
	sess.om.Instrument(sess.entry.met)
	sess.setupFlight()
	// New sessions must never reuse a recovered ID: per-session archive
	// queries and ledger folds key on it. SessionBase normally covers
	// this; the CAS keeps the invariant even without it.
	for {
		cur := s.nextID.Load()
		if cur >= info.ID || s.nextID.CompareAndSwap(cur, info.ID) {
			break
		}
	}
	s.stats.sessionsRestored.Add(1)
	r.done = true

	s.parkMu.Lock()
	p := &parked{sess: sess}
	p.timer = time.AfterFunc(s.cfg.ResumeGrace, func() { s.reap(sess.token) })
	s.parkedBy[sess.token] = p
	s.parkMu.Unlock()
	return nil
}

// Abort discards a rebuild that cannot be completed, closing the
// monitor and balancing the session counters. The caller decides what
// to tell the ledger.
func (r *Restorer) Abort() {
	if r.done {
		return
	}
	r.done = true
	r.sess.om.Close()
	r.srv.stats.sessionsClosed.Add(1)
	r.srv.stats.restoreFailed.Add(1)
}

package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// testResolver maps spec selections for tests: the empty name and
// "strict" select the paper's strict rules, "relaxed" the relaxed set.
func testResolver(name string) (*speclang.RuleSet, error) {
	switch name {
	case "", "strict":
		return rules.Strict()
	case "relaxed":
		return rules.Relaxed()
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}

// startServer brings up a loopback fleet server and tears it down with
// the test.
func startServer(t testing.TB, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{
		DB:      sigdb.Vehicle(),
		Resolve: testResolver,
		Triage:  rules.DefaultTriage(),
		// Keep the teardown Shutdown fast when a test abandons a v2
		// session mid-stream; resume tests override this.
		ResumeGrace: 250 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		if !s.closed.Load() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}
	})
	return s, s.Addr().String()
}

// injection is one fault window applied while generating a HIL log.
type injection struct {
	from, to time.Duration
	signals  map[string]float64
}

// hilLog runs the follow scenario on the HIL bench with the given
// fault windows and returns the captured bus log — the same trace
// source the paper's campaigns feed the offline monitor.
func hilLog(t testing.TB, seed int64, dur time.Duration, faults []injection) *can.Log {
	t.Helper()
	cfg := scenario.Follow(seed, dur)
	// Inject as on a real vehicle network: no type checking, so any
	// corrupt value goes through (Section V.C.3).
	cfg.TypeChecking = false
	bench, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	onTick := func(now time.Duration, b *hil.Bench) error {
		for _, f := range faults {
			switch now {
			case f.from:
				for name, v := range f.signals {
					if err := b.SetInjection(name, v); err != nil {
						return err
					}
				}
			case f.to:
				for name := range f.signals {
					b.ClearInjection(name)
				}
			}
		}
		return nil
	}
	if err := bench.Run(dur, onTick); err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return bench.Log()
}

// fleetScenarios builds n distinct HIL scenario logs in parallel:
// different seeds, fault targets and windows, so concurrent sessions
// exercise the server with genuinely different traffic.
func fleetScenarios(t testing.TB, n int, dur time.Duration) []*can.Log {
	t.Helper()
	// Fault windows are fractions of the trace so a -short run's
	// shorter scenarios still exercise full inject-and-recover arcs.
	// Window edges land on the tick grid: the injection hook matches
	// tick times exactly.
	frac := func(num, den time.Duration) time.Duration {
		return dur * num / den / sigdb.FastPeriod * sigdb.FastPeriod
	}
	blind := []injection{{
		from: frac(1, 3), to: frac(2, 3),
		signals: map[string]float64{
			sigdb.SigVehicleAhead: 0,
			sigdb.SigTargetRange:  0,
			sigdb.SigTargetRelVel: 0,
		},
	}}
	corrupt := []injection{{
		from: frac(1, 4), to: frac(7, 12),
		signals: map[string]float64{sigdb.SigTargetRange: 4294967296.000001},
	}}
	runaway := []injection{{
		from: frac(5, 12), to: frac(3, 4),
		signals: map[string]float64{sigdb.SigACCSetSpeed: 1e9},
	}}
	clean := []injection(nil)
	kinds := [][]injection{blind, corrupt, runaway, clean}

	logs := make([]*can.Log, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i] = hilLog(t, int64(100+i), dur, kinds[i%len(kinds)])
		}(i)
	}
	wg.Wait()
	return logs
}

// offlineMonitor builds the monitor the server is configured with, for
// the ground-truth CheckLog runs.
func offlineMonitor(t testing.TB) *core.Monitor {
	t.Helper()
	rs, err := rules.Strict()
	if err != nil {
		t.Fatalf("rules.Strict: %v", err)
	}
	m, err := core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return m
}

// endEventFromOffline renders one offline violation as the wire event
// the server must have emitted for it.
func endEventFromOffline(rr core.RuleReport, i int) wire.Event {
	v := rr.Result.Violations[i]
	return wire.Event{
		Kind:      wire.EventEnd,
		Rule:      rr.Name(),
		Time:      v.End,
		StartStep: uint32(v.StartStep),
		EndStep:   uint32(v.EndStep),
		Start:     v.Start,
		End:       v.End,
		Peak:      v.Peak,
		Msg:       v.Msg,
		Class:     uint8(rr.Classes[i]),
	}
}

// TestFleetLoopbackMatchesOffline is the acceptance test: eight
// concurrent HIL scenario logs streamed through one server must yield,
// per session and per rule, violations byte-for-byte identical to the
// offline CheckLog over the same frames.
func TestFleetLoopbackMatchesOffline(t *testing.T) {
	// Scenario length stays at 60s even under -short: the blind and
	// corrupt faults need tens of seconds of vehicle dynamics before
	// their consequences violate a rule, and a violation-free run would
	// make the equivalence assertion vacuous. -short trims the session
	// count instead.
	sessions := 8
	const dur = 60 * time.Second
	if testing.Short() {
		sessions = 4
	}
	logs := fleetScenarios(t, sessions, dur)
	mon := offlineMonitor(t)
	srv, addr := startServer(t, nil)

	type result struct {
		events  []wire.Event
		verdict *wire.Verdict
		err     error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			c, err := Dial(addr, fmt.Sprintf("veh-%03d", i), "strict", func(e wire.Event) {
				r.events = append(r.events, e)
			})
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			r.verdict, r.err = c.Replay(logs[i], 0)
		}(i)
	}
	wg.Wait()

	totalFrames := uint64(0)
	totalViolations := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("session %d: %v", i, r.err)
		}
		offline, err := mon.CheckLog(logs[i], sigdb.Vehicle())
		if err != nil {
			t.Fatalf("CheckLog %d: %v", i, err)
		}
		totalFrames += uint64(logs[i].Len())

		// Group the streamed end events by rule.
		streamed := make(map[string][]wire.Event)
		begins := make(map[string]int)
		for _, e := range r.events {
			switch e.Kind {
			case wire.EventBegin:
				begins[e.Rule]++
			case wire.EventEnd:
				streamed[e.Rule] = append(streamed[e.Rule], e)
			}
		}

		if len(r.verdict.Rules) != len(offline.Rules) {
			t.Fatalf("session %d: verdict carries %d rules, offline %d", i, len(r.verdict.Rules), len(offline.Rules))
		}
		for ri, rr := range offline.Rules {
			name := rr.Name()
			want := rr.Result.Violations
			got := streamed[name]
			if len(got) != len(want) {
				t.Fatalf("session %d rule %s: streamed %d violations, offline %d", i, name, len(got), len(want))
			}
			if begins[name] != len(want) {
				t.Errorf("session %d rule %s: %d begin events for %d violations", i, name, begins[name], len(want))
			}
			for vi := range want {
				wantBytes := wire.Marshal(endEventFromOffline(rr, vi))
				gotBytes := wire.Marshal(got[vi])
				if !bytes.Equal(gotBytes, wantBytes) {
					t.Errorf("session %d rule %s violation %d: wire bytes differ\n got %x (%+v)\nwant %x",
						i, name, vi, gotBytes, got[vi], wantBytes)
				}
			}
			totalViolations += len(want)

			// Verdict row must mirror the offline verdict and triage.
			rv := r.verdict.Rules[ri]
			if rv.Rule != name {
				t.Fatalf("session %d: verdict rule %d is %q, offline %q", i, ri, rv.Rule, name)
			}
			if rv.Violated != (rr.Verdict == core.Violated) {
				t.Errorf("session %d rule %s: verdict violated=%v, offline %v", i, name, rv.Violated, rr.Verdict)
			}
			if int(rv.Violations) != len(want) ||
				int(rv.Real) != rr.Count(core.ClassReal) ||
				int(rv.Transient) != rr.Count(core.ClassTransient) ||
				int(rv.Negligible) != rr.Count(core.ClassNegligible) {
				t.Errorf("session %d rule %s: verdict counts %+v, offline real=%d transient=%d negligible=%d",
					i, name, rv, rr.Count(core.ClassReal), rr.Count(core.ClassTransient), rr.Count(core.ClassNegligible))
			}
		}
		if r.verdict.FramesIngested != uint64(logs[i].Len()) {
			t.Errorf("session %d: ingested %d frames, sent %d", i, r.verdict.FramesIngested, logs[i].Len())
		}
		if r.verdict.FramesDropped != 0 || r.verdict.FramesRejected != 0 {
			t.Errorf("session %d: dropped=%d rejected=%d, want 0/0", i, r.verdict.FramesDropped, r.verdict.FramesRejected)
		}
	}
	if totalViolations == 0 {
		t.Error("no scenario produced violations; the equivalence assertion is vacuous")
	}

	st := srv.Stats()
	if st.SessionsOpened != uint64(sessions) || st.SessionsClosed != uint64(sessions) || st.SessionsActive != 0 {
		t.Errorf("sessions: %+v, want %d opened and closed", st, sessions)
	}
	if st.FramesIngested != totalFrames {
		t.Errorf("server ingested %d frames, want %d", st.FramesIngested, totalFrames)
	}
	if st.FramesDropped != 0 {
		t.Errorf("server dropped %d frames, want 0", st.FramesDropped)
	}
	if int(st.ViolationsEmitted) != totalViolations {
		t.Errorf("server emitted %d violations, want %d", st.ViolationsEmitted, totalViolations)
	}
	if st.IngestBatches == 0 || st.AvgIngestLatency() <= 0 {
		t.Errorf("no ingest latency recorded: %+v", st)
	}
}

func TestSessionLimit(t *testing.T) {
	_, addr := startServer(t, func(c *Config) { c.MaxSessions = 1 })
	c1, err := Dial(addr, "veh-1", "", nil)
	if err != nil {
		t.Fatalf("first session: %v", err)
	}
	defer c1.Close()
	if c2, err := Dial(addr, "veh-2", "", nil); err == nil {
		c2.Close()
		t.Fatal("second session accepted over MaxSessions=1")
	}
	// Finishing the first session frees the slot.
	if _, err := c1.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr, "veh-3", "", nil)
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	_, addr := startServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, wire.Hello{Version: 99, Vehicle: "v"}); err != nil {
		t.Fatal(err)
	}
	rec, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read refusal: %v", err)
	}
	if _, ok := rec.(wire.Error); !ok {
		t.Fatalf("got %T, want wire.Error", rec)
	}
}

func TestUnknownSpecRefused(t *testing.T) {
	_, addr := startServer(t, nil)
	if c, err := Dial(addr, "veh-1", "no-such-spec", nil); err == nil {
		c.Close()
		t.Fatal("unknown spec accepted")
	}
}

func TestProtocolErrorMidStream(t *testing.T) {
	_, addr := startServer(t, nil)
	// Version 1 is the strict protocol: any unexpected record is
	// terminal (a v2 session would quarantine it instead, see
	// TestQuarantineUnexpectedRecords).
	c, err := DialOptions(addr, Options{Vehicle: "veh-1", Protocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A second Hello mid-stream is a protocol error.
	if err := wire.Write(c.bw, wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(); err == nil {
		t.Fatal("protocol error did not end the session with an error")
	}
}

func TestOutOfOrderFramesRejectedNotFatal(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr, "veh-1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frames := []can.Frame{
		{Time: 50 * time.Millisecond, ID: sigdb.FrameVehicleDyn},
		{Time: 10 * time.Millisecond, ID: sigdb.FrameVehicleDyn}, // stale: rejected
		{Time: 50 * time.Millisecond, ID: sigdb.FrameVehicleDyn}, // equal time: accepted
		{Time: 60 * time.Millisecond, ID: sigdb.FrameVehicleDyn},
	}
	if err := c.Send(frames); err != nil {
		t.Fatal(err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if v.FramesRejected != 1 {
		t.Errorf("rejected = %d, want 1", v.FramesRejected)
	}
	if v.FramesIngested != 3 {
		t.Errorf("ingested = %d, want 3", v.FramesIngested)
	}
}

func TestDropModeSheds(t *testing.T) {
	s, err := NewServer(Config{DB: sigdb.Vehicle(), Resolve: testResolver, DropWhenFull: true, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{srv: s, queue: make(chan item, 1)}
	b := item{frames: make([]can.Frame, 7), enq: time.Now()}
	sess.enqueue(b) // fills the queue
	sess.enqueue(b) // must shed, not block
	if got := sess.dropped.Load(); got != 7 {
		t.Errorf("session dropped = %d, want 7", got)
	}
	if got := s.Stats().FramesDropped; got != 7 {
		t.Errorf("server dropped = %d, want 7", got)
	}
}

func TestBackpressureBlocks(t *testing.T) {
	s, err := NewServer(Config{DB: sigdb.Vehicle(), Resolve: testResolver, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{srv: s, queue: make(chan item, 1)}
	b := item{frames: make([]can.Frame, 3), enq: time.Now()}
	sess.enqueue(b) // fills the queue

	done := make(chan struct{})
	go func() {
		sess.enqueue(b) // must block until the worker drains
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().BatchesBlocked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("enqueue never reported backpressure")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("enqueue returned while the queue was full")
	default:
	}
	<-sess.queue // the worker catches up
	<-done
	if got := s.Stats().FramesDropped; got != 0 {
		t.Errorf("backpressure mode dropped %d frames", got)
	}
}

func TestShutdownDrainsAndVerdicts(t *testing.T) {
	srv, addr := startServer(t, nil)
	log := hilLog(t, 7, 10*time.Second, nil)
	c, err := Dial(addr, "veh-1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(log.Frames()); err != nil {
		t.Fatal(err)
	}
	// Let the server take everything off the socket before the drain,
	// so the verdict covers the full stream deterministically.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().FramesIngested < uint64(log.Len()) {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested %d of %d frames", srv.Stats().FramesIngested, log.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	v, err := c.Wait()
	if err != nil {
		t.Fatalf("no verdict after drain: %v", err)
	}
	if v.FramesIngested != uint64(log.Len()) {
		t.Errorf("drained verdict ingested %d frames, want %d", v.FramesIngested, log.Len())
	}
	// The drained verdict equals the offline verdict over the same log.
	offline, err := offlineMonitor(t).CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range offline.Rules {
		if v.Rules[i].Violated != (rr.Verdict == core.Violated) {
			t.Errorf("rule %s: drained %v, offline %v", rr.Name(), v.Rules[i].Violated, rr.Verdict)
		}
	}
}

// TestReplaySurvivesMidStreamShutdown pins the client's recovery from
// a server drain while the vehicle is still uplinking: the write side
// breaks (the drained server closed the connection), but the partial
// verdict the server delivered first must win over the broken pipe.
func TestReplaySurvivesMidStreamShutdown(t *testing.T) {
	srv, addr := startServer(t, nil)
	log := hilLog(t, 7, 10*time.Second, nil)
	c, err := Dial(addr, "veh-1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	half := log.Frames()[:log.Len()/2]
	if err := c.Send(half); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().FramesIngested < uint64(len(half)) {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested %d of %d frames", srv.Stats().FramesIngested, len(half))
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Keep uplinking into the drained session until the socket breaks,
	// as a paced Replay would; Finish must still return the verdict.
	rest := log.Frames()[log.Len()/2:]
	for i := 0; i < 1000; i++ {
		if err := c.Send(rest); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("no verdict after mid-stream drain: %v", err)
	}
	if v.FramesIngested != uint64(len(half)) {
		t.Errorf("partial verdict ingested %d frames, want %d", v.FramesIngested, len(half))
	}
}

func TestShutdownTwice(t *testing.T) {
	s, _ := startServer(t, nil)
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("second Shutdown accepted")
	}
}

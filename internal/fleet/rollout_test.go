package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

const candHash = "cand-0123456789abcdef"

// offlineVerdictFor runs one log through an offline monitor and
// summarizes it the way the server tallies a verdict: per rule, the
// violated flag and violation count.
func offlineVerdictFor(t *testing.T, rs func() (*core.Monitor, error), log *can.Log) map[string]int {
	t.Helper()
	mon, err := rs()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mon.CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	out := make(map[string]int)
	for _, rr := range rep.Rules {
		out[rr.Name()] = len(rr.Result.Violations)
	}
	return out
}

func strictMonitor() (*core.Monitor, error) {
	rs, err := rules.Strict()
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
}

func relaxedMonitor() (*core.Monitor, error) {
	rs, err := rules.Relaxed()
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
}

// verdictCounts summarizes a wire verdict per rule for comparison with
// an offline run.
func verdictCounts(v *wire.Verdict) map[string]int {
	out := make(map[string]int)
	for _, rv := range v.Rules {
		out[rv.Rule] = int(rv.Violations)
	}
	return out
}

func equalCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestRolloutShadowPromoteMidStream is the rollout acceptance test: a
// fleet of sessions streams while a candidate spec is pushed into
// shadow and promoted mid-stream. Every delivered verdict must be
// entirely one spec's — sessions that finished before the promote
// match the old spec's offline CheckLog and carry the old epoch;
// sessions that shadowed through the promote match the new spec's
// CheckLog over their full stream and carry the new epoch, exactly
// once each; and a session that predates the shadow round keeps the
// old spec to the end even though it outlives the promote.
func TestRolloutShadowPromoteMidStream(t *testing.T) {
	sessions := 8
	const dur = 60 * time.Second
	if testing.Short() {
		sessions = 4
	}
	logs := fleetScenarios(t, sessions, dur)
	srv, addr := startServer(t, func(cfg *Config) { cfg.SpecEpoch = 1 })

	// One session is already past its first frame when the rollout
	// begins: it must keep the old spec and epoch to the end.
	preLog := logs[0]
	pre, err := Dial(addr, "veh-pre", "", nil)
	if err != nil {
		t.Fatalf("Dial pre: %v", err)
	}
	defer pre.Close()
	preFrames := preLog.Frames()
	if err := pre.Send(preFrames[:len(preFrames)/2]); err != nil {
		t.Fatalf("pre Send: %v", err)
	}
	// Send returns once the frames are on the wire, not once the server
	// has applied them — wait until the worker has, so the session is
	// demonstrably mid-stream (and shadow-ineligible) at BeginShadow.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().FramesIngested == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never ingested the pre-rollout frames")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := srv.BeginShadow(candHash, rules.RelaxedSource); err != nil {
		t.Fatalf("BeginShadow: %v", err)
	}

	// Group A finishes entirely before the promote: old spec, old epoch.
	// Group B opens now too (eligible from the first frame), streams its
	// first half, and rides through the promote.
	half := sessions / 2
	typeA := make([]*wire.Verdict, half)
	var wg sync.WaitGroup
	for i := 0; i < half; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("veh-a%02d", i), "", nil)
			if err != nil {
				t.Errorf("Dial a%d: %v", i, err)
				return
			}
			defer c.Close()
			v, err := c.Replay(logs[i], 0)
			if err != nil {
				t.Errorf("Replay a%d: %v", i, err)
				return
			}
			typeA[i] = v
		}(i)
	}

	typeB := make([]*Client, sessions-half)
	for i := range typeB {
		c, err := Dial(addr, fmt.Sprintf("veh-b%02d", i), "", nil)
		if err != nil {
			t.Fatalf("Dial b%d: %v", i, err)
		}
		defer c.Close()
		typeB[i] = c
		frames := logs[half+i].Frames()
		if err := c.Send(frames[:len(frames)/2]); err != nil {
			t.Fatalf("b%d first half: %v", i, err)
		}
	}
	wg.Wait()

	// Send is asynchronous: wait until every group-B worker has synced
	// into the round (installed its shadow) so the promote is genuinely
	// mid-stream for all of them. Group A has finished and dropped its
	// shadows by now, so the count settles at exactly group B.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, ok := srv.ShadowStats()
		if ok && st.Sessions == int64(len(typeB)) && st.Batches > 0 {
			if st.Hash != candHash {
				t.Fatalf("mid-stream ShadowStats = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow never settled on %d sessions: %+v, %v", len(typeB), st, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := srv.PromoteShadow(candHash, 2); err != nil {
		t.Fatalf("PromoteShadow: %v", err)
	}
	if got := srv.ActiveEpoch(); got != 2 {
		t.Fatalf("ActiveEpoch after promote = %d", got)
	}

	// Group B streams its second half and finishes under the new spec.
	for i, c := range typeB {
		frames := logs[half+i].Frames()
		if err := c.Send(frames[len(frames)/2:]); err != nil {
			t.Fatalf("b%d second half: %v", i, err)
		}
	}
	// The pre-rollout session finishes last: it outlived the promote
	// but never had a comparable shadow.
	if err := pre.Send(preFrames[len(preFrames)/2:]); err != nil {
		t.Fatalf("pre second half: %v", err)
	}

	for i, v := range typeA {
		if v == nil {
			t.Fatalf("session a%d delivered no verdict", i)
		}
		if v.SpecEpoch != 1 {
			t.Errorf("session a%d: epoch %d, want 1 (finished before promote)", i, v.SpecEpoch)
		}
		want := offlineVerdictFor(t, strictMonitor, logs[i])
		if got := verdictCounts(v); !equalCounts(got, want) {
			t.Errorf("session a%d: verdict %v, strict offline %v", i, got, want)
		}
	}
	for i, c := range typeB {
		v, err := c.Finish()
		if err != nil {
			t.Fatalf("b%d Finish: %v", i, err)
		}
		if v.SpecEpoch != 2 {
			t.Errorf("session b%d: epoch %d, want 2 (adopted the candidate)", i, v.SpecEpoch)
		}
		// The adopted verdict must be the candidate's as if it had been
		// primary from the session's first frame.
		want := offlineVerdictFor(t, relaxedMonitor, logs[half+i])
		if got := verdictCounts(v); !equalCounts(got, want) {
			t.Errorf("session b%d: verdict %v, relaxed offline %v", i, got, want)
		}
	}
	vPre, err := pre.Finish()
	if err != nil {
		t.Fatalf("pre Finish: %v", err)
	}
	if vPre.SpecEpoch != 1 {
		t.Errorf("pre-rollout session: epoch %d, want 1 (no comparable shadow, never spliced)", vPre.SpecEpoch)
	}
	if want := offlineVerdictFor(t, strictMonitor, preLog); !equalCounts(verdictCounts(vPre), want) {
		t.Errorf("pre-rollout session: verdict %v, strict offline %v", verdictCounts(vPre), want)
	}

	// Every shadowing session adopted exactly once.
	if got := srv.stats.shadowAdoptions.Value(); got != uint64(len(typeB)) {
		t.Errorf("shadow adoptions = %d, want %d", got, len(typeB))
	}
	if st, ok := srv.ShadowStats(); !ok || !st.Promoted || st.Epoch != 2 {
		t.Errorf("post-promote ShadowStats = %+v, %v", st, ok)
	}
}

// TestRolloutAbortDeliversNothingOfCandidate: a candidate shadowed
// against live traffic and aborted leaves no trace in the delivered
// verdict — the session finishes on the active spec and epoch with the
// offline ground truth of the old spec.
func TestRolloutAbortDeliversNothingOfCandidate(t *testing.T) {
	log := hilLog(t, 7, 30*time.Second, []injection{{
		from: 10 * time.Second, to: 20 * time.Second,
		signals: map[string]float64{sigdb.SigACCSetSpeed: 1e9},
	}})
	srv, addr := startServer(t, func(cfg *Config) { cfg.SpecEpoch = 1 })

	if err := srv.BeginShadow(candHash, rules.RelaxedSource); err != nil {
		t.Fatalf("BeginShadow: %v", err)
	}
	c, err := Dial(addr, "veh-abort", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	frames := log.Frames()
	if err := c.Send(frames[:len(frames)/2]); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := srv.AbortShadow(candHash); err != nil {
		t.Fatalf("AbortShadow: %v", err)
	}
	if err := c.Send(frames[len(frames)/2:]); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if v.SpecEpoch != 1 {
		t.Errorf("verdict epoch after abort = %d, want 1", v.SpecEpoch)
	}
	want := offlineVerdictFor(t, strictMonitor, log)
	if got := verdictCounts(v); !equalCounts(got, want) {
		t.Errorf("verdict after abort %v, strict offline %v", got, want)
	}
	if _, ok := srv.ShadowStats(); ok {
		t.Error("aborted rollout still published")
	}
	// A promote of the aborted candidate must be refused.
	if err := srv.PromoteShadow(candHash, 2); err == nil {
		t.Error("promote of an aborted candidate accepted")
	}
}

// TestRolloutShadowStatsPerRound: ShadowStats must report the current
// round's evidence only. The controller treats Errors>0 as instant
// rollback and Batches as the evidence floor, so counters carried over
// from an earlier round would auto-rollback (or prematurely qualify)
// every candidate after the first.
func TestRolloutShadowStatsPerRound(t *testing.T) {
	srv, _ := startServer(t, func(cfg *Config) { cfg.SpecEpoch = 1 })

	// Round one accumulates evidence — including errors — then aborts.
	if err := srv.BeginShadow(candHash, rules.RelaxedSource); err != nil {
		t.Fatalf("BeginShadow: %v", err)
	}
	srv.stats.shadowBatches.Add(40)
	srv.stats.shadowDivergentBatches.Add(7)
	srv.stats.shadowDivergences.Add(13)
	srv.stats.shadowErrors.Add(2)
	st, ok := srv.ShadowStats()
	if !ok || st.Batches != 40 || st.DivergentBatches != 7 || st.Divergences != 13 || st.Errors != 2 {
		t.Fatalf("round-one ShadowStats = %+v, %v", st, ok)
	}
	if err := srv.AbortShadow(candHash); err != nil {
		t.Fatalf("AbortShadow: %v", err)
	}

	// Round two starts from zero, not from round one's totals.
	if err := srv.BeginShadow("cand-round2", rules.RelaxedSource); err != nil {
		t.Fatalf("BeginShadow 2: %v", err)
	}
	st, ok = srv.ShadowStats()
	if !ok || st.Batches != 0 || st.DivergentBatches != 0 || st.Divergences != 0 || st.Errors != 0 {
		t.Fatalf("fresh round ShadowStats = %+v, want all zero", st)
	}
	srv.stats.shadowBatches.Add(5)
	if st, _ = srv.ShadowStats(); st.Batches != 5 {
		t.Fatalf("round-two batches = %d, want 5", st.Batches)
	}

	// Promote keeps the round's baseline, and a promoted round can no
	// longer be aborted — the candidate is the active spec with durable
	// provenance written.
	if err := srv.PromoteShadow("cand-round2", 2); err != nil {
		t.Fatalf("PromoteShadow: %v", err)
	}
	if st, _ = srv.ShadowStats(); st.Batches != 5 || !st.Promoted || st.Epoch != 2 {
		t.Fatalf("post-promote ShadowStats = %+v", st)
	}
	if err := srv.AbortShadow("cand-round2"); err == nil {
		t.Fatal("abort of a promoted round accepted")
	}
}

// TestRolloutShadowCountsDivergence: shadowing a genuinely different
// spec over traffic where the two disagree must surface in the
// divergence counters — the signal the controller's thresholds act on.
func TestRolloutShadowCountsDivergence(t *testing.T) {
	// The corrupt-range fault separates strict from relaxed (relaxed
	// tolerates what strict flags), so divergences are guaranteed.
	log := hilLog(t, 11, 60*time.Second, []injection{{
		from: 15 * time.Second, to: 35 * time.Second,
		signals: map[string]float64{sigdb.SigTargetRange: 4294967296.000001},
	}})
	srv, addr := startServer(t, func(cfg *Config) { cfg.SpecEpoch = 1 })
	if err := srv.BeginShadow(candHash, rules.RelaxedSource); err != nil {
		t.Fatalf("BeginShadow: %v", err)
	}
	c, err := Dial(addr, "veh-div", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Replay(log, 0); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	st, ok := srv.ShadowStats()
	if !ok {
		t.Fatal("no shadow stats")
	}
	offStrict := offlineVerdictFor(t, strictMonitor, log)
	offRelaxed := offlineVerdictFor(t, relaxedMonitor, log)
	differ := !equalCounts(offStrict, offRelaxed)
	if differ && st.Divergences == 0 {
		t.Errorf("specs disagree offline (%v vs %v) but shadow counted no divergences: %+v",
			offStrict, offRelaxed, st)
	}
	if !differ && st.DivergentBatches > 0 {
		t.Errorf("specs agree offline but shadow counted %d divergent batches", st.DivergentBatches)
	}
}

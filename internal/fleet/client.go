package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/wire"
)

// maxBatchFrames caps one frame batch record so it stays far under the
// wire protocol's record-size limit.
const maxBatchFrames = 4096

// replayWindow groups frames into batches spanning at most this much
// capture time during a paced replay.
const replayWindow = 100 * time.Millisecond

// Client defaults, overridable through Options.
const (
	defaultMaxRetries   = 5
	defaultBackoff      = 50 * time.Millisecond
	defaultMaxBackoff   = 2 * time.Second
	defaultReplayBuffer = 256
)

// Options configures a fleet client beyond the basic Dial arguments.
type Options struct {
	// Vehicle and Spec select the session identity and rule set, as
	// the Hello record.
	Vehicle, Spec string
	// OnEvent, when not nil, is invoked from the client's read
	// goroutine for every incremental event the server pushes
	// (violations and, on protocol 2, gap events); it must not block
	// for long or the event stream stalls. Across reconnects each
	// event is delivered exactly once, in order.
	OnEvent func(wire.Event)
	// Dial opens the transport; net.Dial("tcp", addr) when nil. Tests
	// substitute fault-injecting dialers here.
	Dial func(addr string) (net.Conn, error)
	// Protocol selects the wire protocol version: 0 means the newest
	// (resumable, sequence-numbered), 1 forces the legacy
	// single-connection protocol.
	Protocol uint16
	// MaxRetries bounds reconnect attempts per recovery episode; the
	// default is 5. Negative disables reconnection entirely.
	MaxRetries int
	// Backoff is the initial reconnect delay (default 50ms), doubled
	// per failed attempt with jitter, capped at MaxBackoff (default
	// 2s).
	Backoff, MaxBackoff time.Duration
	// ReplayBuffer bounds unacknowledged batches held for replay
	// (default 256). Send blocks when the buffer is full, turning the
	// server's ack pace into end-to-end backpressure.
	ReplayBuffer int
	// Seed fixes the backoff jitter for deterministic tests; 0 draws
	// from the wall clock.
	Seed int64
	// StallTimeout, when positive, bounds how long the read loop waits
	// for the next server record before treating the stream as wedged
	// and reconnecting. A corrupted length prefix can leave either
	// side blocked mid-record forever; this (with the server's
	// IdleTimeout) restores liveness. Off by default — an idle client
	// legitimately hears nothing between uplink bursts.
	StallTimeout time.Duration
	// Metrics, when not nil, is the registry the client publishes its
	// recovery counters and replay-depth gauge on, labelled by
	// Vehicle. Nil selects a private registry — Stats() keeps working,
	// nothing is exported. One registry should back at most one client
	// per vehicle name: the replay-depth gauge is registered by series
	// and a second same-vehicle client would silently read the first's.
	Metrics *obs.Registry
	// Flight, when not nil, records sampled delivery spans — the time a
	// batch spends between Send and the server's cumulative ack covering
	// it — into the given flight recorder.
	Flight *flight.Recorder
}

// ClientStats counts a client's transport recovery activity.
type ClientStats struct {
	// Reconnects counts successful reattachments after a transport
	// failure; DialAttempts counts every dial, successful or not.
	Reconnects, DialAttempts uint64
	// DupEventsDropped counts replayed events discarded by sequence
	// dedup — deliveries that would have been duplicates.
	DupEventsDropped uint64
	// RecordsQuarantined counts malformed records skipped on the
	// event stream; the losses they hide are recovered by resume.
	RecordsQuarantined uint64
	// GapEvents counts gap-kind events received from the server.
	GapEvents uint64
}

// clientCounters is the client's recovery accounting, obs-backed like
// the server's so Stats() and a scraped /metrics can never disagree.
type clientCounters struct {
	reconnects, dialAttempts, dupEvents, quarantined, gaps *obs.Counter
}

// newClientCounters registers the client metric families on reg,
// labelled by vehicle, and a replay-depth gauge sampling depth.
func newClientCounters(reg *obs.Registry, vehicle string, depth func() float64) clientCounters {
	v := obs.Label{Name: "vehicle", Value: vehicle}
	c := func(name, help string) *obs.Counter { return reg.Counter(name, help, v) }
	reg.GaugeFunc("cpsmon_fleet_client_replay_depth",
		"Unacknowledged batches held for replay.", depth, v)
	return clientCounters{
		reconnects:   c("cpsmon_fleet_client_reconnects_total", "Successful reattachments after a transport failure."),
		dialAttempts: c("cpsmon_fleet_client_dial_attempts_total", "Dials attempted, successful or not."),
		dupEvents:    c("cpsmon_fleet_client_dup_events_dropped_total", "Replayed events discarded by sequence dedup."),
		quarantined:  c("cpsmon_fleet_client_records_quarantined_total", "Malformed records skipped on the event stream."),
		gaps:         c("cpsmon_fleet_client_gap_events_total", "Gap-kind events received from the server."),
	}
}

// errClientClosed reports an operation on a closed client.
var errClientClosed = errors.New("fleet: client closed")

// Client is the vehicle side of a fleet session: it uplinks captured
// frames to a monitord and surfaces the incremental oracle events the
// server pushes back. On protocol 2 the client is chaos-hardened: it
// buffers unacknowledged batches, survives disconnects by resuming the
// server-side session with exponential backoff, and dedups both
// directions by sequence number, so every frame and every event counts
// exactly once end to end.
type Client struct {
	opts Options
	addr string

	// mu guards the connection/sequencing state below; cond signals
	// replay-buffer space and settlement. wmu serializes record writes
	// (never held together with mu).
	mu   sync.Mutex
	cond *sync.Cond
	wmu  sync.Mutex

	conn       net.Conn
	bw         *bufio.Writer
	readDone   chan struct{} // closed when the attachment's read loop exits
	gen        int           // attachment generation; bumped per successful (re)connect
	recovering bool
	closed     bool

	session      uint64
	token        uint64
	epoch        uint64          // server ledger epoch from the last grant
	nextSeq      uint64          // last batch sequence assigned
	acked        uint64          // highest cumulative ack from the server
	unacked      []wire.SeqBatch // [acked+1 .. nextSeq], pending replay
	lastEventSeq uint64
	finSent      bool
	finSeq       uint64

	// Flight-recorder state (nil/empty without Options.Flight).
	// sendTimes parallels unacked: the Send wall time of each pending
	// batch, so an ack can be turned into a delivery span.
	flt       *flight.Recorder
	fveh      flight.Ref
	sendTimes []time.Time

	// backoff is the next recovery episode's starting delay: inflated
	// by failed attempts, reset to Options.Backoff by a successful
	// resume handshake — a healthy transport earns the base interval
	// back.
	backoff time.Duration

	rng *rand.Rand // recovery-goroutine only (single-flight)

	// done closes when the session settles; verdict and readErr are
	// written before the close and may be read after it.
	done    chan struct{}
	settled sync.Once
	verdict *wire.Verdict
	readErr error

	stats clientCounters
}

// Dial connects to a fleet server with default options and performs
// the session handshake. onEvent, when not nil, is invoked from the
// client's read goroutine for every incremental event.
func Dial(addr, vehicle, spec string, onEvent func(wire.Event)) (*Client, error) {
	return DialOptions(addr, Options{Vehicle: vehicle, Spec: spec, OnEvent: onEvent})
}

// DialOptions connects with explicit options.
func DialOptions(addr string, o Options) (*Client, error) {
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if o.Protocol == 0 {
		o.Protocol = wire.Version
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = defaultBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = defaultMaxBackoff
	}
	if o.ReplayBuffer <= 0 {
		o.ReplayBuffer = defaultReplayBuffer
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Client{
		opts:    o,
		addr:    addr,
		backoff: o.Backoff,
		rng:     rand.New(rand.NewSource(seed)),
		done:    make(chan struct{}),
		flt:     o.Flight,
	}
	if c.flt != nil {
		c.fveh = c.flt.Intern(o.Vehicle)
	}
	c.cond = sync.NewCond(&c.mu)
	c.stats = newClientCounters(reg, o.Vehicle, func() float64 {
		c.mu.Lock()
		n := len(c.unacked)
		c.mu.Unlock()
		return float64(n)
	})
	conn, br, err := c.handshake()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.bw = bufio.NewWriterSize(conn, 64<<10)
	c.gen = 1
	c.readDone = make(chan struct{})
	go c.readLoop(conn, br, 1, c.readDone)
	return c, nil
}

// Session returns the server-assigned session identifier.
func (c *Client) Session() uint64 { return c.session }

// Stats snapshots the client's recovery counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Reconnects:         c.stats.reconnects.Value(),
		DialAttempts:       c.stats.dialAttempts.Value(),
		DupEventsDropped:   c.stats.dupEvents.Value(),
		RecordsQuarantined: c.stats.quarantined.Value(),
		GapEvents:          c.stats.gaps.Value(),
	}
}

// handshake dials and performs the Hello (first connection) or Resume
// (reconnection) exchange. On success the server's cumulative ack is
// already folded into the replay buffer.
func (c *Client) handshake() (net.Conn, *bufio.Reader, error) {
	c.stats.dialAttempts.Add(1)
	conn, err := c.opts.Dial(c.addr)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %w", err)
	}
	var open wire.Record
	c.mu.Lock()
	if c.opts.Protocol >= 2 && c.token != 0 {
		open = wire.Resume{Version: c.opts.Protocol, Token: c.token, LastEventSeq: c.lastEventSeq, Epoch: c.epoch}
	} else {
		open = wire.Hello{Version: c.opts.Protocol, Vehicle: c.opts.Vehicle, Spec: c.opts.Spec}
	}
	c.mu.Unlock()
	if err := wire.Write(conn, open); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("fleet: hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	rec, err := wire.Read(br)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("fleet: hello ack: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	switch rec := rec.(type) {
	case wire.HelloAck:
		if c.opts.Protocol >= 2 {
			conn.Close()
			return nil, nil, errors.New("fleet: hello ack: server answered v2 hello with v1 ack")
		}
		c.session = rec.Session
	case wire.SessionGrant:
		c.mu.Lock()
		c.session = rec.Session
		c.token = rec.Token
		c.epoch = rec.Epoch
		c.advanceAck(rec.AckSeq)
		c.mu.Unlock()
	case wire.Error:
		conn.Close()
		return nil, nil, rec.Err()
	default:
		conn.Close()
		return nil, nil, fmt.Errorf("fleet: hello ack: unexpected %T", rec)
	}
	return conn, br, nil
}

// terminal reports whether a connect/handshake error is a server
// refusal (an Error record) rather than a transport failure worth
// retrying.
func terminal(err error) bool { return errors.Is(err, wire.ErrRemote) }

// advanceAck folds a cumulative server ack into the replay buffer.
// Caller holds mu.
func (c *Client) advanceAck(seq uint64) {
	if seq <= c.acked {
		return
	}
	i := 0
	for i < len(c.unacked) && c.unacked[i].Seq <= seq {
		i++
	}
	if c.flt != nil && len(c.sendTimes) == len(c.unacked) {
		// Each newly acked batch is one sampling unit: the deliver span
		// covers Send to cumulative ack, round trips and replays included.
		now := time.Now()
		for j := 0; j < i; j++ {
			if c.flt.Sample() {
				c.flt.Record(c.session, c.fveh, flight.StageDeliver, 0,
					c.unacked[j].Seq, c.sendTimes[j], now.Sub(c.sendTimes[j]))
			}
		}
		c.sendTimes = append(c.sendTimes[:0], c.sendTimes[i:]...)
	}
	c.unacked = append(c.unacked[:0], c.unacked[i:]...)
	c.acked = seq
	c.cond.Broadcast()
}

// settle resolves the session exactly once.
func (c *Client) settle(v *wire.Verdict, err error) {
	c.settled.Do(func() {
		c.mu.Lock()
		c.verdict = v
		c.readErr = err
		c.mu.Unlock()
		close(c.done)
		c.cond.Broadcast()
	})
}

func (c *Client) isDone() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// readLoop receives server records for one attachment generation. It
// ends by settling the session (verdict, server error) or by kicking
// off a recovery after a transport failure.
func (c *Client) readLoop(conn net.Conn, br *bufio.Reader, gen int, rd chan struct{}) {
	defer close(rd)
	for {
		if c.opts.StallTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.opts.StallTimeout))
		}
		rec, err := wire.Read(br)
		if err != nil {
			var mal *wire.MalformedError
			if errors.As(err, &mal) {
				// The record boundary held: skip the corrupt record.
				// Any event it carried is recovered via the sequence
				// hole it leaves.
				c.stats.quarantined.Add(1)
				continue
			}
			if c.isDone() {
				return
			}
			if c.opts.Protocol < 2 {
				if errors.Is(err, io.EOF) {
					c.settle(nil, nil)
				} else {
					c.settle(nil, err)
				}
				return
			}
			go c.recover(gen)
			return
		}
		switch rec := rec.(type) {
		case wire.SeqEvent:
			c.mu.Lock()
			if rec.Seq <= c.lastEventSeq {
				c.mu.Unlock()
				c.stats.dupEvents.Add(1)
				continue
			}
			if rec.Seq != c.lastEventSeq+1 {
				// An event was lost (quarantined); resume to replay it.
				c.mu.Unlock()
				go c.recover(gen)
				return
			}
			c.lastEventSeq = rec.Seq
			c.mu.Unlock()
			if rec.Event.Kind == wire.EventGap {
				c.stats.gaps.Add(1)
			}
			if c.opts.OnEvent != nil {
				c.opts.OnEvent(rec.Event)
			}
		case wire.Ack:
			c.mu.Lock()
			c.advanceAck(rec.Seq)
			c.mu.Unlock()
		case wire.VerdictSeq:
			c.mu.Lock()
			complete := rec.EventSeq == c.lastEventSeq
			bw := c.bw
			c.mu.Unlock()
			if !complete {
				// Events are still missing; resume to fetch them, then
				// the server re-serves the verdict.
				go c.recover(gen)
				return
			}
			// Echo an ack so a draining server knows the verdict landed:
			// its own write succeeding proves nothing, since a dead TCP
			// peer still accepts one last segment. Best-effort — if this
			// write is lost the server parks us for the grace window,
			// which costs it patience, not correctness.
			c.wmu.Lock()
			if wire.Write(bw, wire.Ack{Seq: rec.EventSeq}) == nil {
				bw.Flush()
			}
			c.wmu.Unlock()
			v := rec.Verdict
			c.settle(&v, nil)
			return
		case wire.Event:
			if c.opts.OnEvent != nil {
				c.opts.OnEvent(rec)
			}
		case wire.Verdict:
			v := rec
			c.settle(&v, nil)
			return
		case wire.Error:
			c.settle(nil, rec.Err())
			return
		default:
			if c.opts.Protocol >= 2 {
				c.stats.quarantined.Add(1)
				continue
			}
			c.settle(nil, fmt.Errorf("fleet: unexpected %T from server", rec))
			return
		}
	}
}

// recover re-establishes the session after a transport failure:
// exponential backoff with jitter around redials, Resume handshake,
// then replay of every unacknowledged batch (the server dedups). It is
// single-flight per failure; stale generations return immediately.
func (c *Client) recover(gen int) {
	c.mu.Lock()
	if c.closed || c.recovering || gen != c.gen || c.isDone() {
		c.mu.Unlock()
		return
	}
	c.recovering = true
	conn := c.conn
	rd := c.readDone
	c.mu.Unlock()
	// Let the old read loop drain whatever the server managed to send
	// before the connection broke — a drained server delivers its
	// verdict right before closing, and closing our side first would
	// discard it. Then close and wait it out, so exactly one read loop
	// exists at a time.
	select {
	case <-rd:
	case <-time.After(100 * time.Millisecond):
	}
	conn.Close()
	<-rd
	if c.isDone() || c.clientClosed() {
		c.clearRecovering()
		return
	}

	// The starting delay persists across recovery episodes: repeated
	// failures keep inflating it, and only a successful handshake below
	// resets it to the base interval.
	c.mu.Lock()
	backoff := c.backoff
	c.mu.Unlock()
	var lastErr error = errors.New("no attempts made")
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if c.isDone() || c.clientClosed() {
			c.clearRecovering()
			return
		}
		if attempt > 0 {
			// Full jitter: sleep a uniformly random fraction of the
			// doubling backoff, so a fleet of clients desynchronizes.
			d := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
			time.Sleep(d)
			backoff *= 2
			if backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
			c.mu.Lock()
			c.backoff = backoff
			c.mu.Unlock()
		}
		newConn, br, err := c.handshake()
		if err != nil {
			if terminal(err) {
				c.clearRecovering()
				c.settle(nil, err)
				return
			}
			lastErr = err
			continue
		}
		// Install the new attachment. wmu is taken before recovering
		// clears so no Send can write to the new connection until the
		// replay below has restored sequence order.
		c.wmu.Lock()
		c.mu.Lock()
		// The resume handshake succeeded: the transport is healthy
		// again, so the next episode starts from the base interval
		// instead of this one's inflated delay.
		c.backoff = c.opts.Backoff
		c.gen++
		newGen := c.gen
		c.conn = newConn
		c.bw = bufio.NewWriterSize(newConn, 64<<10)
		newRd := make(chan struct{})
		c.readDone = newRd
		replay := append([]wire.SeqBatch(nil), c.unacked...)
		finSent, finSeq := c.finSent, c.finSeq
		c.recovering = false
		c.cond.Broadcast()
		c.mu.Unlock()
		c.stats.reconnects.Add(1)
		go c.readLoop(newConn, br, newGen, newRd)

		ok := true
		for _, b := range replay {
			if wire.Write(c.bw, b) != nil {
				ok = false
				break
			}
		}
		if ok && finSent {
			ok = wire.Write(c.bw, wire.FinishSeq{Seq: finSeq}) == nil
		}
		if ok {
			ok = c.bw.Flush() == nil
		}
		c.wmu.Unlock()
		if !ok {
			// The fresh connection died mid-replay; its read loop (or
			// the next Send) observes the failure and recovers again.
			go c.recover(newGen)
		}
		return
	}
	c.clearRecovering()
	c.settle(nil, fmt.Errorf("fleet: reconnect failed after %d attempts: %w", c.opts.MaxRetries+1, lastErr))
}

func (c *Client) clearRecovering() {
	c.mu.Lock()
	c.recovering = false
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *Client) clientClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Send uplinks a run of frames, splitting it into batch records as
// needed. Frames must be in non-decreasing time order across all Send
// calls; stale frames are rejected (and accounted) server-side.
//
// On protocol 2, Send succeeds once the batch is buffered for replay:
// transport failures are recovered in the background and the batch is
// retransmitted, deduplicated server-side. Send blocks while the
// replay buffer is full (backpressure) and only errors when the
// session has ended.
func (c *Client) Send(frames []can.Frame) error {
	if c.opts.Protocol < 2 {
		return c.sendLegacy(frames)
	}
	for len(frames) > 0 {
		n := len(frames)
		if n > maxBatchFrames {
			n = maxBatchFrames
		}
		c.mu.Lock()
		for len(c.unacked) >= c.opts.ReplayBuffer && !c.closed && !c.isDone() {
			c.cond.Wait()
		}
		if c.closed || c.isDone() {
			c.mu.Unlock()
			return c.endError()
		}
		c.nextSeq++
		b := wire.SeqBatch{Seq: c.nextSeq, Frames: frames[:n]}
		c.unacked = append(c.unacked, b)
		if c.flt != nil {
			c.sendTimes = append(c.sendTimes, time.Now())
		}
		gen, bw, recovering := c.gen, c.bw, c.recovering
		c.mu.Unlock()
		frames = frames[n:]
		if recovering {
			// The recovery's replay pass will transmit this batch.
			continue
		}
		c.wmu.Lock()
		err := wire.Write(bw, b)
		if err == nil {
			err = bw.Flush()
		}
		c.wmu.Unlock()
		if err != nil {
			go c.recover(gen)
		}
	}
	return nil
}

// endError reports why the session can take no more input.
func (c *Client) endError() error {
	if c.isDone() {
		if c.readErr != nil {
			return c.readErr
		}
		return errors.New("fleet: session already ended")
	}
	return errClientClosed
}

// sendLegacy is the protocol-1 Send: a write error is terminal.
func (c *Client) sendLegacy(frames []can.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for len(frames) > 0 {
		n := len(frames)
		if n > maxBatchFrames {
			n = maxBatchFrames
		}
		if err := wire.Write(c.bw, wire.FrameBatch{Frames: frames[:n]}); err != nil {
			return fmt.Errorf("fleet: send: %w", err)
		}
		frames = frames[n:]
	}
	return c.bw.Flush()
}

// Finish declares end-of-stream and waits for the server's verdict.
func (c *Client) Finish() (*wire.Verdict, error) {
	if c.opts.Protocol < 2 {
		c.wmu.Lock()
		err := wire.Write(c.bw, wire.Finish{})
		if err == nil {
			err = c.bw.Flush()
		}
		c.wmu.Unlock()
		if err != nil {
			return c.sessionOutcome(fmt.Errorf("fleet: finish: %w", err))
		}
		return c.Wait()
	}
	c.mu.Lock()
	c.finSent = true
	c.finSeq = c.nextSeq
	fin := wire.FinishSeq{Seq: c.finSeq}
	gen, bw, recovering := c.gen, c.bw, c.recovering
	c.mu.Unlock()
	if !recovering {
		c.wmu.Lock()
		err := wire.Write(bw, fin)
		if err == nil {
			err = bw.Flush()
		}
		c.wmu.Unlock()
		if err != nil {
			go c.recover(gen)
		}
	}
	return c.Wait()
}

// sessionOutcome resolves a mid-stream write failure. A write error
// usually means the server already ended the session on purpose — a
// graceful drain closes the connection right after delivering a
// partial Verdict, and a protocol refusal after an Error record — so
// whatever the read loop collected supersedes the local broken-pipe
// noise. Only if the session ended with neither does the write error
// itself surface.
func (c *Client) sessionOutcome(writeErr error) (*wire.Verdict, error) {
	select {
	case <-c.done:
	case <-time.After(handshakeTimeout):
		return nil, writeErr
	}
	if c.verdict != nil {
		return c.verdict, nil
	}
	if c.readErr != nil {
		return nil, c.readErr
	}
	return nil, writeErr
}

// Wait blocks until the session ends and returns the verdict, if one
// arrived. It is the right call after a drain-on-shutdown, where the
// server verdicts the session without a client Finish.
func (c *Client) Wait() (*wire.Verdict, error) {
	<-c.done
	if c.verdict != nil {
		return c.verdict, nil
	}
	if c.readErr != nil {
		return nil, c.readErr
	}
	return nil, errors.New("fleet: session closed without a verdict")
}

// Close tears the connection down and stops any reconnection. A
// session still streaming appears to the server as an unclean
// disconnect (which, on protocol 2, parks it for the resume grace
// window before it is reaped).
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.cond.Broadcast()
	c.mu.Unlock()
	err := conn.Close()
	c.settle(c.verdictSnapshot(), nil)
	<-c.done
	return err
}

// verdictSnapshot returns the settled verdict if one already arrived
// (settle keeps the first outcome, so this only matters when Close
// races an unsettled session).
func (c *Client) verdictSnapshot() *wire.Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verdict
}

// Replay uplinks a recorded bus log and returns the verdict. speed
// scales capture time to wall time: 1 replays in real time, 2 at
// double speed, and 0 (or negative) streams as fast as the connection
// and the server's backpressure allow. Frames are batched in capture
// windows so a paced replay delivers them with their original rhythm.
// If the server drains mid-replay (shutdown), Replay returns the
// partial verdict it delivered; compare Verdict.FramesIngested with
// the log length to detect the truncation.
func (c *Client) Replay(log *can.Log, speed float64) (*wire.Verdict, error) {
	frames := log.Frames()
	start := time.Now()
	for i := 0; i < len(frames); {
		j := i + 1
		window := frames[i].Time + replayWindow
		for j < len(frames) && frames[j].Time < window && j-i < maxBatchFrames {
			j++
		}
		if speed > 0 {
			due := start.Add(time.Duration(float64(frames[i].Time) / speed))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		if err := c.Send(frames[i:j]); err != nil {
			return c.sessionOutcome(err)
		}
		i = j
	}
	return c.Finish()
}

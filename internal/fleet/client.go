package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/wire"
)

// maxBatchFrames caps one FrameBatch record so it stays far under the
// wire protocol's record-size limit.
const maxBatchFrames = 4096

// replayWindow groups frames into batches spanning at most this much
// capture time during a paced replay.
const replayWindow = 100 * time.Millisecond

// Client is the vehicle side of a fleet session: it uplinks captured
// frames to a monitord and surfaces the incremental oracle events the
// server pushes back.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	session uint64
	onEvent func(wire.Event)

	// done closes when the read loop ends; verdict and readErr are
	// written before the close and may be read after it.
	done    chan struct{}
	verdict *wire.Verdict
	readErr error
}

// Dial connects to a fleet server and performs the session handshake.
// onEvent, when not nil, is invoked from the client's read goroutine
// for every incremental event the server pushes; it must not block for
// long or the event stream (and eventually the server's write path)
// stalls.
func Dial(addr, vehicle, spec string, onEvent func(wire.Event)) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		onEvent: onEvent,
		done:    make(chan struct{}),
	}
	if err := wire.Write(c.bw, wire.Hello{Version: wire.Version, Vehicle: vehicle, Spec: spec}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fleet: hello: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fleet: hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	rec, err := wire.Read(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("fleet: hello ack: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	switch rec := rec.(type) {
	case wire.HelloAck:
		c.session = rec.Session
	case wire.Error:
		conn.Close()
		return nil, rec.Err()
	default:
		conn.Close()
		return nil, fmt.Errorf("fleet: hello ack: unexpected %T", rec)
	}
	go c.readLoop(br)
	return c, nil
}

// Session returns the server-assigned session identifier.
func (c *Client) Session() uint64 { return c.session }

// readLoop receives events until the verdict (and the server's close)
// or an error ends the session.
func (c *Client) readLoop(br *bufio.Reader) {
	defer close(c.done)
	for {
		rec, err := wire.Read(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && c.verdict == nil {
				c.readErr = err
			}
			return
		}
		switch rec := rec.(type) {
		case wire.Event:
			if c.onEvent != nil {
				c.onEvent(rec)
			}
		case wire.Verdict:
			c.verdict = &rec
		case wire.Error:
			c.readErr = rec.Err()
			return
		default:
			c.readErr = fmt.Errorf("fleet: unexpected %T from server", rec)
			return
		}
	}
}

// Send uplinks a run of frames, splitting it into batch records as
// needed. Frames must be in non-decreasing time order across all Send
// calls; stale frames are rejected (and accounted) server-side.
func (c *Client) Send(frames []can.Frame) error {
	for len(frames) > 0 {
		n := len(frames)
		if n > maxBatchFrames {
			n = maxBatchFrames
		}
		if err := wire.Write(c.bw, wire.FrameBatch{Frames: frames[:n]}); err != nil {
			return fmt.Errorf("fleet: send: %w", err)
		}
		frames = frames[n:]
	}
	return c.bw.Flush()
}

// Finish declares end-of-stream and waits for the server's verdict.
func (c *Client) Finish() (*wire.Verdict, error) {
	if err := wire.Write(c.bw, wire.Finish{}); err != nil {
		return c.sessionOutcome(fmt.Errorf("fleet: finish: %w", err))
	}
	if err := c.bw.Flush(); err != nil {
		return c.sessionOutcome(fmt.Errorf("fleet: finish: %w", err))
	}
	return c.Wait()
}

// sessionOutcome resolves a mid-stream write failure. A write error
// usually means the server already ended the session on purpose — a
// graceful drain closes the connection right after delivering a
// partial Verdict, and a protocol refusal after an Error record — so
// whatever the read loop collected supersedes the local broken-pipe
// noise. Only if the session ended with neither does the write error
// itself surface.
func (c *Client) sessionOutcome(writeErr error) (*wire.Verdict, error) {
	select {
	case <-c.done:
	case <-time.After(handshakeTimeout):
		return nil, writeErr
	}
	if c.verdict != nil {
		return c.verdict, nil
	}
	if c.readErr != nil {
		return nil, c.readErr
	}
	return nil, writeErr
}

// Wait blocks until the session ends and returns the verdict, if one
// arrived. It is the right call after a drain-on-shutdown, where the
// server verdicts the session without a client Finish.
func (c *Client) Wait() (*wire.Verdict, error) {
	<-c.done
	if c.verdict != nil {
		return c.verdict, nil
	}
	if c.readErr != nil {
		return nil, c.readErr
	}
	return nil, errors.New("fleet: session closed without a verdict")
}

// Close tears the connection down. A session still streaming appears
// to the server as an unclean disconnect.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// Replay uplinks a recorded bus log and returns the verdict. speed
// scales capture time to wall time: 1 replays in real time, 2 at
// double speed, and 0 (or negative) streams as fast as the connection
// and the server's backpressure allow. Frames are batched in capture
// windows so a paced replay delivers them with their original rhythm.
// If the server drains mid-replay (shutdown), Replay returns the
// partial verdict it delivered; compare Verdict.FramesIngested with
// the log length to detect the truncation.
func (c *Client) Replay(log *can.Log, speed float64) (*wire.Verdict, error) {
	frames := log.Frames()
	start := time.Now()
	for i := 0; i < len(frames); {
		j := i + 1
		window := frames[i].Time + replayWindow
		for j < len(frames) && frames[j].Time < window && j-i < maxBatchFrames {
			j++
		}
		if speed > 0 {
			due := start.Add(time.Duration(float64(frames[i].Time) / speed))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		if err := c.Send(frames[i:j]); err != nil {
			return c.sessionOutcome(err)
		}
		i = j
	}
	return c.Finish()
}

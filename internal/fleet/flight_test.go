package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/wire"
)

// TestFlightRecorderEndToEnd is the tracing e2e: eight sessions stream
// HIL captures through a server with a flight recorder sampling every
// batch and a detection-latency SLO, with the clients feeding delivery
// spans into the same recorder. Afterwards the /debug/flight snapshot,
// the per-vehicle e2e latency histograms and the SLO gauges must all be
// consistent with the verdicts the sessions actually delivered.
func TestFlightRecorderEndToEnd(t *testing.T) {
	sessions := 8
	dur := 20 * time.Second
	if testing.Short() {
		dur = 5 * time.Second
	}
	logs := fleetScenarios(t, sessions, dur)

	reg := obs.NewRegistry()
	flt := flight.New(flight.Config{SampleEvery: 1, Exemplars: 4})
	// A generous 5s target: local loopback batches always make it, so
	// the SLO must read zero burn and stay out of the degraded state.
	slo := flight.NewSLO(5*time.Second, 0.99, time.Minute)
	srv, addr := startServer(t, func(c *Config) {
		c.Metrics = reg
		c.Flight = flt
		c.SLO = slo
	})

	admin := httptest.NewServer(obs.NewAdmin(obs.AdminConfig{
		Registry: reg,
		Health: func() obs.Health {
			h := obs.Health{State: "ok", SLOBurn: slo.Burn(), SLOTargetSeconds: slo.Target().Seconds()}
			if slo.Degraded() {
				h.State = "degraded"
			}
			return h
		},
		Flight: func() any { return flt.Snapshot() },
	}))
	defer admin.Close()

	var wg sync.WaitGroup
	verdicts := make([]*wire.Verdict, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialOptions(addr, Options{
				Vehicle: fmt.Sprintf("veh-%03d", i),
				Spec:    "strict",
				Metrics: reg,
				Flight:  flt,
			})
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			defer c.Close()
			v, err := c.Replay(logs[i], 0)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			verdicts[i] = v
		}(i)
	}
	wg.Wait()
	for i, v := range verdicts {
		if v == nil {
			t.Fatalf("session %d delivered no verdict", i)
		}
	}
	st := srv.Stats()

	// The /debug/flight snapshot: spans for every server stage plus the
	// client-side delivery stage, all attributed to dialed vehicles.
	resp, err := http.Get(admin.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var snap flight.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /debug/flight: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight status %d", resp.StatusCode)
	}
	if snap.SampleEvery != 1 {
		t.Errorf("snapshot sample_every = %d, want 1", snap.SampleEvery)
	}
	if snap.Recorded == 0 || len(snap.Spans) == 0 {
		t.Fatalf("no spans recorded: recorded=%d ring=%d", snap.Recorded, len(snap.Spans))
	}
	if snap.Sampled == 0 {
		t.Error("no batches counted as sampled")
	}
	vehicles := make(map[string]bool, sessions)
	for i := 0; i < sessions; i++ {
		vehicles[fmt.Sprintf("veh-%03d", i)] = true
	}
	stages := make(map[string]bool)
	for _, sp := range snap.Spans {
		stages[sp.Stage] = true
		if !vehicles[sp.Vehicle] {
			t.Fatalf("span for unknown vehicle %q", sp.Vehicle)
		}
		if sp.Dur < 0 || sp.Start <= 0 {
			t.Fatalf("nonsense span timing: %+v", sp)
		}
	}
	for _, want := range []string{"ingest", "decode", "eval", "emit", "deliver"} {
		if !stages[want] {
			t.Errorf("no %s-stage span in the ring (stages seen: %v)", want, stages)
		}
	}

	// Exemplars: the slowest traces must name real sessions, break their
	// end-to-end time down by stage, and be ordered slowest-first.
	if len(snap.Slowest) == 0 {
		t.Fatal("no exemplar traces retained")
	}
	for i, tr := range snap.Slowest {
		if !vehicles[tr.Vehicle] {
			t.Fatalf("exemplar for unknown vehicle %q", tr.Vehicle)
		}
		if tr.E2E <= 0 || tr.Seq == 0 {
			t.Fatalf("nonsense exemplar: %+v", tr)
		}
		var staged int64
		for _, n := range tr.Stages {
			staged += n
		}
		// The emit stage's clock is read a hair after the e2e clock, so
		// allow the breakdown a millisecond of measurement slack.
		if staged <= 0 || staged > tr.E2E+int64(time.Millisecond) {
			t.Errorf("exemplar stage breakdown %v does not fit inside e2e %d", tr.Stages, tr.E2E)
		}
		if i > 0 && tr.E2E > snap.Slowest[i-1].E2E {
			t.Errorf("exemplars out of order: [%d]=%d > [%d]=%d", i, tr.E2E, i-1, snap.Slowest[i-1].E2E)
		}
	}

	// Per-vehicle e2e histograms: one series per vehicle, and their
	// counts sum to exactly the batches the server applied.
	samples := scrape(t, reg)
	for i := 0; i < sessions; i++ {
		key := fmt.Sprintf(`cpsmon_fleet_e2e_latency_seconds_count{vehicle="veh-%03d"}`, i)
		if samples[key] == 0 {
			t.Errorf("no e2e latency samples for %s", key)
		}
	}
	if got := sumFamily(samples, "cpsmon_fleet_e2e_latency_seconds_count"); got != float64(st.IngestBatches) {
		t.Errorf("e2e histogram counts sum to %v, server applied %d batches", got, st.IngestBatches)
	}

	// SLO: every applied batch was observed, none breached the generous
	// target, so burn is exactly zero and health stays ok.
	good, bad := slo.Counts()
	if good+bad != st.IngestBatches {
		t.Errorf("SLO observed %d batches, server applied %d", good+bad, st.IngestBatches)
	}
	if bad != 0 {
		t.Errorf("%d batches breached a 5s loopback target", bad)
	}
	if got := samples["cpsmon_fleet_slo_burn_rate"]; got != 0 {
		t.Errorf("slo_burn_rate gauge = %v, want 0", got)
	}
	if got := samples["cpsmon_fleet_slo_target_seconds"]; got != 5 {
		t.Errorf("slo_target_seconds gauge = %v, want 5", got)
	}
	if got := samples["cpsmon_fleet_slo_objective"]; got != 0.99 {
		t.Errorf("slo_objective gauge = %v, want 0.99", got)
	}
	if got := samples["cpsmon_fleet_flight_spans_recorded"]; got != float64(snap.Recorded) {
		t.Errorf("spans_recorded gauge = %v, snapshot says %d", got, snap.Recorded)
	}

	// And the structured health body agrees.
	resp, err = http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.State != "ok" || h.SLOBurn != 0 {
		t.Errorf("healthz = %d %+v, want 200 state ok with zero burn", resp.StatusCode, h)
	}
}

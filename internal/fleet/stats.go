package fleet

import (
	"sync/atomic"
	"time"
)

// counters is the server's hot-path accounting. Every field is an
// atomic so sessions update them without sharing a lock; Stats() takes
// a coherent-enough snapshot for operational monitoring.
type counters struct {
	sessionsOpened  atomic.Uint64
	sessionsClosed  atomic.Uint64
	sessionsRefused atomic.Uint64
	sessionsResumed atomic.Uint64
	sessionsReaped  atomic.Uint64

	framesIngested atomic.Uint64
	framesDropped  atomic.Uint64
	framesRejected atomic.Uint64

	batchesBlocked atomic.Uint64

	violationsEmitted atomic.Uint64
	eventsEmitted     atomic.Uint64
	gapEvents         atomic.Uint64

	recordsQuarantined atomic.Uint64
	dupBatchesDropped  atomic.Uint64

	ingestBatches atomic.Uint64
	ingestNanos   atomic.Uint64
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// SessionsOpened and SessionsClosed count accepted sessions over
	// the server's lifetime; SessionsActive is their difference.
	SessionsOpened, SessionsClosed, SessionsActive uint64
	// SessionsRefused counts connections turned away at the session
	// cap or for a bad handshake.
	SessionsRefused uint64
	// SessionsResumed counts Resume handshakes that reattached (or
	// re-served the verdict of) a parked session. SessionsReaped
	// counts parked sessions whose resume grace expired before the
	// client returned; their monitors were closed without a verdict.
	SessionsResumed, SessionsReaped uint64

	// FramesIngested counts frames fed to a monitor. FramesDropped
	// counts frames shed because a session queue was full in drop
	// mode. FramesRejected counts frames refused by the monitor for
	// arriving out of time order.
	FramesIngested, FramesDropped, FramesRejected uint64

	// BatchesBlocked counts frame batches that found their session
	// queue full in backpressure mode and had to wait — each is a
	// moment the TCP stream stalled instead of shedding load.
	BatchesBlocked uint64

	// ViolationsEmitted counts closed violation intervals sent to
	// clients; EventsEmitted counts all event records (begin + end +
	// gap). GapEvents counts the gap subset: bus-silence stretches and
	// shed-batch holes made explicit in the event stream.
	ViolationsEmitted, EventsEmitted, GapEvents uint64

	// RecordsQuarantined counts malformed records skipped (rather than
	// killing their session) under the per-session error budget.
	// DupBatchesDropped counts sequence-numbered batches discarded as
	// already seen — replays after a resume, delivered exactly once.
	RecordsQuarantined, DupBatchesDropped uint64

	// IngestBatches and IngestNanos accumulate per-batch ingest
	// latency: the time from a batch entering its session queue to the
	// last of its frames being fully evaluated.
	IngestBatches, IngestNanos uint64
}

// AvgIngestLatency returns the mean queue-to-evaluated latency of a
// frame batch, or zero before any batch completed.
func (s Stats) AvgIngestLatency() time.Duration {
	if s.IngestBatches == 0 {
		return 0
	}
	return time.Duration(s.IngestNanos / s.IngestBatches)
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	opened := s.stats.sessionsOpened.Load()
	closed := s.stats.sessionsClosed.Load()
	st := Stats{
		SessionsOpened:     opened,
		SessionsClosed:     closed,
		SessionsRefused:    s.stats.sessionsRefused.Load(),
		SessionsResumed:    s.stats.sessionsResumed.Load(),
		SessionsReaped:     s.stats.sessionsReaped.Load(),
		FramesIngested:     s.stats.framesIngested.Load(),
		FramesDropped:      s.stats.framesDropped.Load(),
		FramesRejected:     s.stats.framesRejected.Load(),
		BatchesBlocked:     s.stats.batchesBlocked.Load(),
		ViolationsEmitted:  s.stats.violationsEmitted.Load(),
		EventsEmitted:      s.stats.eventsEmitted.Load(),
		GapEvents:          s.stats.gapEvents.Load(),
		RecordsQuarantined: s.stats.recordsQuarantined.Load(),
		DupBatchesDropped:  s.stats.dupBatchesDropped.Load(),
		IngestBatches:      s.stats.ingestBatches.Load(),
		IngestNanos:        s.stats.ingestNanos.Load(),
	}
	if opened > closed {
		st.SessionsActive = opened - closed
	}
	return st
}

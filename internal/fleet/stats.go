package fleet

import (
	"time"

	"cpsmon/internal/obs"
)

// counters is the server's hot-path accounting. Every cell lives on
// the server's obs registry, so Stats() snapshots and the Prometheus
// exposition read the very same atomics and can never disagree;
// sessions update them lock-free and allocation-free.
type counters struct {
	sessionsOpened  *obs.Counter
	sessionsClosed  *obs.Counter
	sessionsRefused *obs.Counter
	sessionsResumed *obs.Counter
	sessionsReaped  *obs.Counter

	framesIngested *obs.Counter
	framesDropped  *obs.Counter
	framesRejected *obs.Counter

	batchesBlocked *obs.Counter

	violationsEmitted *obs.Counter
	eventsEmitted     *obs.Counter
	gapEvents         *obs.Counter

	recordsQuarantined *obs.Counter
	dupBatchesDropped  *obs.Counter

	archiveRecords *obs.Counter
	archiveDropped *obs.Counter
	archiveErrors  *obs.Counter

	sessionsRestored *obs.Counter
	restoreFailed    *obs.Counter
	ledgerErrors     *obs.Counter

	shadowRounds           *obs.Counter
	shadowBatches          *obs.Counter
	shadowDivergentBatches *obs.Counter
	shadowDivergences      *obs.Counter
	shadowErrors           *obs.Counter
	shadowPromotes         *obs.Counter
	shadowAdoptions        *obs.Counter

	// ingestLatency observes seconds from a batch entering its session
	// queue to its last frame being fully evaluated; its count and sum
	// stand in for the old batch/nanosecond accumulators.
	ingestLatency *obs.Histogram
}

// newCounters registers the server metric families on reg.
func newCounters(reg *obs.Registry) counters {
	c := func(name, help string) *obs.Counter { return reg.Counter(name, help) }
	return counters{
		sessionsOpened:  c("cpsmon_fleet_sessions_opened_total", "Sessions accepted over the server's lifetime."),
		sessionsClosed:  c("cpsmon_fleet_sessions_closed_total", "Sessions resolved for good (verdict delivered or reaped)."),
		sessionsRefused: c("cpsmon_fleet_sessions_refused_total", "Connections turned away at the session cap or for a bad handshake."),
		sessionsResumed: c("cpsmon_fleet_sessions_resumed_total", "Resume handshakes that reattached a parked session."),
		sessionsReaped:  c("cpsmon_fleet_sessions_reaped_total", "Parked sessions whose resume grace expired unclaimed."),

		framesIngested: c("cpsmon_fleet_frames_ingested_total", "Frames fed to a monitor."),
		framesDropped:  c("cpsmon_fleet_frames_dropped_total", "Frames shed because a session queue was full in drop mode."),
		framesRejected: c("cpsmon_fleet_frames_rejected_total", "Frames refused for arriving out of time order."),

		batchesBlocked: c("cpsmon_fleet_batches_blocked_total", "Frame batches that waited on a full queue in backpressure mode."),

		violationsEmitted: c("cpsmon_fleet_violations_emitted_total", "Closed violation intervals sent to clients."),
		eventsEmitted:     c("cpsmon_fleet_events_emitted_total", "Event records sent to clients (begin, end and gap)."),
		gapEvents:         c("cpsmon_fleet_gap_events_total", "Gap events: bus-silence stretches and shed-batch holes."),

		recordsQuarantined: c("cpsmon_fleet_records_quarantined_total", "Malformed records skipped under the per-session error budget."),
		dupBatchesDropped:  c("cpsmon_fleet_dup_batches_dropped_total", "Sequence-numbered batches discarded as already seen."),

		archiveRecords: c("cpsmon_fleet_archive_records_total", "Frame runs, events and verdicts enqueued for archiving."),
		archiveDropped: c("cpsmon_fleet_archive_dropped_total", "Frame runs and events shed because the archive queue was full."),
		archiveErrors:  c("cpsmon_fleet_archive_errors_total", "Archiver calls that returned an error."),

		sessionsRestored: c("cpsmon_fleet_sessions_restored_total", "Sessions rebuilt from ledger and archive after a restart."),
		restoreFailed:    c("cpsmon_fleet_sessions_restore_failed_total", "Ledgered sessions whose archive rebuild failed."),
		ledgerErrors:     c("cpsmon_fleet_ledger_errors_total", "Ledger appends that returned an error."),

		shadowRounds:           c("cpsmon_shadow_rounds_total", "Candidate specs that entered shadow mode."),
		shadowBatches:          c("cpsmon_shadow_batches_total", "Frame batches evaluated by both active and candidate spec."),
		shadowDivergentBatches: c("cpsmon_shadow_divergent_batches_total", "Shadow-compared batches where the two specs disagreed."),
		shadowDivergences:      c("cpsmon_shadow_divergences_total", "Per-rule event-count deltas summed over divergent batches."),
		shadowErrors:           c("cpsmon_shadow_errors_total", "Candidate evaluation failures; each costs that session its shadow."),
		shadowPromotes:         c("cpsmon_shadow_promotes_total", "Candidate specs promoted to active."),
		shadowAdoptions:        c("cpsmon_shadow_adoptions_total", "Sessions that swapped to the candidate monitor at a promote."),

		ingestLatency: reg.Histogram("cpsmon_fleet_ingest_batch_latency_seconds",
			"Queue-to-evaluated latency of one frame batch.", obs.DefaultLatencyBuckets()),
	}
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// SessionsOpened and SessionsClosed count accepted sessions over
	// the server's lifetime; SessionsActive is their difference.
	SessionsOpened, SessionsClosed, SessionsActive uint64
	// SessionsRefused counts connections turned away at the session
	// cap or for a bad handshake.
	SessionsRefused uint64
	// SessionsResumed counts Resume handshakes that reattached (or
	// re-served the verdict of) a parked session. SessionsReaped
	// counts parked sessions whose resume grace expired before the
	// client returned; their monitors were closed without a verdict.
	SessionsResumed, SessionsReaped uint64

	// FramesIngested counts frames fed to a monitor. FramesDropped
	// counts frames shed because a session queue was full in drop
	// mode. FramesRejected counts frames refused by the monitor for
	// arriving out of time order.
	FramesIngested, FramesDropped, FramesRejected uint64

	// BatchesBlocked counts frame batches that found their session
	// queue full in backpressure mode and had to wait — each is a
	// moment the TCP stream stalled instead of shedding load.
	BatchesBlocked uint64

	// ViolationsEmitted counts closed violation intervals sent to
	// clients; EventsEmitted counts all event records (begin + end +
	// gap). GapEvents counts the gap subset: bus-silence stretches and
	// shed-batch holes made explicit in the event stream.
	ViolationsEmitted, EventsEmitted, GapEvents uint64

	// RecordsQuarantined counts malformed records skipped (rather than
	// killing their session) under the per-session error budget.
	// DupBatchesDropped counts sequence-numbered batches discarded as
	// already seen — replays after a resume, delivered exactly once.
	RecordsQuarantined, DupBatchesDropped uint64

	// ArchiveRecords counts items enqueued for the Archiver (frame
	// runs, events and verdicts). ArchiveDropped counts frame runs and
	// events shed at a full archive queue; verdicts are never shed.
	// ArchiveErrors counts Archiver calls that returned an error.
	ArchiveRecords, ArchiveDropped, ArchiveErrors uint64

	// SessionsRestored counts sessions rebuilt from the ledger and
	// archive after a restart; SessionsRestoreFailed counts ledgered
	// sessions whose rebuild could not be completed (archive and ledger
	// disagreed). LedgerErrors counts ledger appends that failed.
	SessionsRestored, SessionsRestoreFailed, LedgerErrors uint64

	// ShadowBatches counts batches dual-evaluated against a candidate
	// spec; ShadowDivergentBatches the subset where the specs disagreed;
	// ShadowDivergences the per-rule event-count deltas summed over
	// them. ShadowErrors counts candidate evaluation failures and
	// ShadowAdoptions sessions that swapped to the candidate at a
	// promote.
	ShadowBatches, ShadowDivergentBatches, ShadowDivergences uint64
	ShadowErrors, ShadowAdoptions                            uint64

	// IngestBatches and IngestNanos accumulate per-batch ingest
	// latency: the time from a batch entering its session queue to the
	// last of its frames being fully evaluated.
	IngestBatches, IngestNanos uint64
}

// AvgIngestLatency returns the mean queue-to-evaluated latency of a
// frame batch, or zero before any batch completed.
func (s Stats) AvgIngestLatency() time.Duration {
	if s.IngestBatches == 0 {
		return 0
	}
	return time.Duration(s.IngestNanos / s.IngestBatches)
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	opened := s.stats.sessionsOpened.Value()
	closed := s.stats.sessionsClosed.Value()
	st := Stats{
		SessionsOpened:         opened,
		SessionsClosed:         closed,
		SessionsRefused:        s.stats.sessionsRefused.Value(),
		SessionsResumed:        s.stats.sessionsResumed.Value(),
		SessionsReaped:         s.stats.sessionsReaped.Value(),
		FramesIngested:         s.stats.framesIngested.Value(),
		FramesDropped:          s.stats.framesDropped.Value(),
		FramesRejected:         s.stats.framesRejected.Value(),
		BatchesBlocked:         s.stats.batchesBlocked.Value(),
		ViolationsEmitted:      s.stats.violationsEmitted.Value(),
		EventsEmitted:          s.stats.eventsEmitted.Value(),
		GapEvents:              s.stats.gapEvents.Value(),
		RecordsQuarantined:     s.stats.recordsQuarantined.Value(),
		DupBatchesDropped:      s.stats.dupBatchesDropped.Value(),
		ArchiveRecords:         s.stats.archiveRecords.Value(),
		ArchiveDropped:         s.stats.archiveDropped.Value(),
		ArchiveErrors:          s.stats.archiveErrors.Value(),
		SessionsRestored:       s.stats.sessionsRestored.Value(),
		SessionsRestoreFailed:  s.stats.restoreFailed.Value(),
		LedgerErrors:           s.stats.ledgerErrors.Value(),
		ShadowBatches:          s.stats.shadowBatches.Value(),
		ShadowDivergentBatches: s.stats.shadowDivergentBatches.Value(),
		ShadowDivergences:      s.stats.shadowDivergences.Value(),
		ShadowErrors:           s.stats.shadowErrors.Value(),
		ShadowAdoptions:        s.stats.shadowAdoptions.Value(),
		IngestBatches:          s.stats.ingestLatency.Count(),
		IngestNanos:            uint64(s.stats.ingestLatency.Sum() * 1e9),
	}
	if opened > closed {
		st.SessionsActive = opened - closed
	}
	return st
}

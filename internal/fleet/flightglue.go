package fleet

// Flight-recorder integration: where the fleet server feeds the
// sampled latency tracer (internal/flight) and the detection-latency
// SLO. The wiring keeps the PR3/PR8 pinned hot-path costs intact:
//
//   - Every batch pays one atomic increment (the sampling decision),
//     one histogram observation (the per-vehicle e2e latency) and one
//     SLO bucket update — all lock-free and allocation-free.
//   - Only a sampled batch arms core's stage timing and records spans;
//     span recording itself is allocation-free ring writes.
//   - Strings are interned into flight refs once per session attach
//     and once per spec compile, never on the batch path.

import (
	"time"

	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
)

// setupFlight wires a session into the server's flight recorder: the
// vehicle identity is interned, the per-vehicle end-to-end latency
// histogram registered, and core's per-batch stage timing armed. Called
// once per session from handleHello and the crash-recovery restorer;
// a no-op without a recorder.
func (sess *session) setupFlight() {
	flt := sess.srv.cfg.Flight
	if flt == nil {
		return
	}
	sess.fveh = flt.Intern(sess.vehicle)
	sess.e2e = sess.srv.reg.Histogram("cpsmon_fleet_e2e_latency_seconds",
		"End-to-end frame-batch latency from queue entry to events emitted, per vehicle.",
		obs.DefaultLatencyBuckets(), obs.Label{Name: "vehicle", Value: sess.vehicle})
	sess.om.EnableStageTiming(len(sess.entry.rules))
}

// observeE2E feeds one batch's end-to-end latency to the per-vehicle
// histogram and the fleet SLO. Runs on every batch: both sinks are
// lock-free, allocation-free atomics.
func (sess *session) observeE2E(e2e time.Duration) {
	if sess.e2e != nil {
		sess.e2e.Observe(e2e.Seconds())
	}
	sess.srv.cfg.SLO.Observe(e2e)
}

// recordFlight publishes a sampled batch's spans and exemplar: queue
// wait (ingest), the decode/eval split core's stage timing attributed,
// per-rule eval spans, and the emit stage (event serialization through
// the write buffer). tApply is when the worker dequeued the batch and
// began applying; tEmit is when application finished and emission
// began.
func (sess *session) recordFlight(it item, tApply, tEmit time.Time, e2e time.Duration) {
	flt := sess.srv.cfg.Flight
	decode, eval, perRule := sess.om.EndStageTiming()
	now := time.Now()
	ingest := tApply.Sub(it.enq)
	emit := now.Sub(tEmit)

	flt.Record(sess.id, sess.fveh, flight.StageIngest, 0, it.seq, it.enq, ingest)
	flt.Record(sess.id, sess.fveh, flight.StageDecode, 0, it.seq, tApply, time.Duration(decode))
	flt.Record(sess.id, sess.fveh, flight.StageEval, 0, it.seq, tApply, time.Duration(eval))
	if frules := sess.entry.frules; frules != nil {
		for i, n := range perRule {
			if n > 0 && i < len(frules) {
				flt.Record(sess.id, sess.fveh, flight.StageEval, frules[i], it.seq, tApply, time.Duration(n))
			}
		}
	}
	flt.Record(sess.id, sess.fveh, flight.StageEmit, 0, it.seq, tEmit, emit)

	var stages [flight.NumStages]int64
	stages[flight.StageIngest] = int64(ingest)
	stages[flight.StageDecode] = decode
	stages[flight.StageEval] = eval
	stages[flight.StageEmit] = int64(emit)
	flt.Exemplar(sess.id, sess.fveh, it.seq, it.enq, e2e, stages)
}

// recordLedgerSpan publishes one durable watermark sync (archive
// barrier + fsync'd ledger append) as a ledger-stage span. Syncs are
// group-committed — a handful per second per session — so every one is
// recorded: fsync stalls are exactly what the flight recorder exists
// to surface.
func (sess *session) recordLedgerSpan(t0 time.Time) {
	if flt := sess.srv.cfg.Flight; flt != nil {
		flt.Record(sess.id, sess.fveh, flight.StageLedger, 0, sess.lastApplied, t0, time.Since(t0))
	}
}

// registerFlightMetrics exposes the recorder's own accounting and the
// SLO burn gauges on the server registry.
func registerFlightMetrics(reg *obs.Registry, flt *flight.Recorder, slo *flight.SLO) {
	if flt != nil {
		reg.GaugeFunc("cpsmon_fleet_flight_spans_recorded",
			"Spans published into the flight-recorder ring.",
			func() float64 { r, _, _ := flt.Stats(); return float64(r) })
		reg.GaugeFunc("cpsmon_fleet_flight_spans_dropped",
			"Spans lost to flight-ring slot-claim races.",
			func() float64 { _, d, _ := flt.Stats(); return float64(d) })
		reg.GaugeFunc("cpsmon_fleet_flight_batches_sampled",
			"Batches that won the flight-recorder sampling decision.",
			func() float64 { _, _, s := flt.Stats(); return float64(s) })
	}
	if slo != nil {
		reg.GaugeFunc("cpsmon_fleet_slo_burn_rate",
			"Detection-latency SLO burn rate over the rolling window (1.0 spends the error budget exactly as fast as the objective allows).",
			slo.Burn)
		reg.GaugeFunc("cpsmon_fleet_slo_target_seconds",
			"Detection-latency SLO target: batches at or under this end-to-end latency are good.",
			func() float64 { return slo.Target().Seconds() })
		reg.GaugeFunc("cpsmon_fleet_slo_objective",
			"Fraction of batches that must meet the SLO target.",
			slo.Objective)
	}
}

// Package sigdb defines CAN signal databases: the mapping from named,
// typed physical signals to bit fields inside periodic CAN frames.
//
// It plays the role of the proprietary signal database (DBC file) that the
// paper's monitor used to interpret broadcast traffic. A bolt-on passive
// monitor needs exactly two things from the target system: the frames on
// the bus and this database; everything else is derived.
package sigdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Kind enumerates the value types a signal can carry on the bus.
//
// The paper's injection interface distinguishes exactly these three:
// floats (including exceptional values such as NaN and infinities),
// booleans, and enumerations (non-negative integers).
type Kind int

const (
	// Float is an IEEE-754 single-precision value occupying 32 bits.
	Float Kind = iota + 1
	// Bool is a single-bit flag.
	Bool
	// Enum is an unsigned integer with a declared maximum ordinal.
	Enum
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Enum:
		return "enum"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Signal describes one named signal packed into a CAN frame.
type Signal struct {
	// Name is the unique signal name, e.g. "TargetRange".
	Name string
	// FrameID is the CAN identifier of the carrying frame.
	FrameID uint32
	// StartBit is the little-endian bit offset within the 64-bit payload.
	StartBit int
	// BitLen is the field width in bits (32 for Float, 1 for Bool).
	BitLen int
	// Kind is the value type.
	Kind Kind
	// EnumMax is the largest valid ordinal for Enum signals.
	EnumMax uint32
	// Unit is the physical unit, for documentation and reports.
	Unit string
	// Comment is a one-line description (the Figure 1 annotation).
	Comment string
}

// validValue reports whether v is acceptable for the signal's declared
// type under the HIL interface's strong type checking. Floats accept any
// value including NaN and infinities; booleans accept exactly 0 and 1;
// enumerations accept integers in [0, EnumMax].
func (s *Signal) validValue(v float64) bool {
	switch s.Kind {
	case Float:
		return true
	case Bool:
		return v == 0 || v == 1
	case Enum:
		if math.IsNaN(v) || v != math.Trunc(v) || v < 0 {
			return false
		}
		return v <= float64(s.EnumMax)
	default:
		return false
	}
}

// CheckValue returns an error when v is not representable as this
// signal's declared type. This is the "data-type bounds checking
// performed by the interface" that limited the paper's fault injection.
func (s *Signal) CheckValue(v float64) error {
	if s.validValue(v) {
		return nil
	}
	return fmt.Errorf("sigdb: value %v rejected by type check for %s signal %q", v, s.Kind, s.Name)
}

// Encode converts a physical value to the raw bit field transmitted on
// the bus. Float signals carry raw IEEE-754 single-precision bits, so
// exceptional values survive the trip. Encode does not type-check; it
// mirrors a real vehicle bus, which has no value checking at all.
func (s *Signal) Encode(v float64) uint64 {
	switch s.Kind {
	case Float:
		return uint64(math.Float32bits(float32(v)))
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Enum:
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		max := uint64(1)<<uint(s.BitLen) - 1
		if v >= float64(max) {
			return max
		}
		return uint64(v)
	default:
		return 0
	}
}

// Decode converts a raw bit field back to a physical value.
func (s *Signal) Decode(raw uint64) float64 {
	switch s.Kind {
	case Float:
		return float64(math.Float32frombits(uint32(raw)))
	case Bool:
		if raw&1 != 0 {
			return 1
		}
		return 0
	case Enum:
		return float64(raw)
	default:
		return math.NaN()
	}
}

// FrameDef describes one periodic broadcast frame and the signals it
// carries.
type FrameDef struct {
	// ID is the CAN identifier.
	ID uint32
	// Name is a human-readable frame name.
	Name string
	// Period is the nominal broadcast period. The paper's system had two
	// relevant periods, with some frames four times slower than others.
	Period time.Duration
	// Signals lists the carried signals in ascending StartBit order.
	Signals []*Signal
}

// DB is a signal database: a set of frame definitions plus a by-name
// signal index.
type DB struct {
	frames  map[uint32]*FrameDef
	signals map[string]*Signal
	order   []string

	// canon caches the canonical decode plan (every signal in
	// declaration order) backing the legacy Unpack path. AddFrame
	// invalidates it; reads are lock-free so concurrent decoders never
	// contend.
	canon atomic.Pointer[DecodePlan]
}

// New returns an empty database.
func New() *DB {
	return &DB{
		frames:  make(map[uint32]*FrameDef),
		signals: make(map[string]*Signal),
	}
}

// AddFrame registers a frame definition. It fails on duplicate frame IDs,
// duplicate signal names, malformed fields, or overlapping bit fields.
func (db *DB) AddFrame(f *FrameDef) error {
	if _, ok := db.frames[f.ID]; ok {
		return fmt.Errorf("sigdb: duplicate frame ID 0x%X", f.ID)
	}
	if f.Period <= 0 {
		return fmt.Errorf("sigdb: frame %q has non-positive period %v", f.Name, f.Period)
	}
	var used uint64
	for _, s := range f.Signals {
		if err := validateSignal(s); err != nil {
			return err
		}
		if s.FrameID != f.ID {
			return fmt.Errorf("sigdb: signal %q declares frame 0x%X but is listed under 0x%X", s.Name, s.FrameID, f.ID)
		}
		if _, ok := db.signals[s.Name]; ok {
			return fmt.Errorf("sigdb: duplicate signal name %q", s.Name)
		}
		mask := fieldMask(s.StartBit, s.BitLen)
		if used&mask != 0 {
			return fmt.Errorf("sigdb: signal %q overlaps another field in frame %q", s.Name, f.Name)
		}
		used |= mask
	}
	db.frames[f.ID] = f
	for _, s := range f.Signals {
		db.signals[s.Name] = s
		db.order = append(db.order, s.Name)
	}
	db.canon.Store(nil)
	return nil
}

func validateSignal(s *Signal) error {
	if s.Name == "" {
		return fmt.Errorf("sigdb: signal with empty name in frame 0x%X", s.FrameID)
	}
	if s.StartBit < 0 || s.BitLen <= 0 || s.StartBit+s.BitLen > 64 {
		return fmt.Errorf("sigdb: signal %q has invalid bit field [%d,+%d)", s.Name, s.StartBit, s.BitLen)
	}
	switch s.Kind {
	case Float:
		if s.BitLen != 32 {
			return fmt.Errorf("sigdb: float signal %q must be 32 bits, got %d", s.Name, s.BitLen)
		}
	case Bool:
		if s.BitLen != 1 {
			return fmt.Errorf("sigdb: bool signal %q must be 1 bit, got %d", s.Name, s.BitLen)
		}
	case Enum:
		if s.BitLen > 32 {
			return fmt.Errorf("sigdb: enum signal %q wider than 32 bits", s.Name)
		}
		if s.EnumMax == 0 {
			return fmt.Errorf("sigdb: enum signal %q must declare EnumMax", s.Name)
		}
		if max := uint64(1)<<uint(s.BitLen) - 1; uint64(s.EnumMax) > max {
			return fmt.Errorf("sigdb: enum signal %q EnumMax %d does not fit in %d bits", s.Name, s.EnumMax, s.BitLen)
		}
	default:
		return fmt.Errorf("sigdb: signal %q has unknown kind %d", s.Name, int(s.Kind))
	}
	return nil
}

func fieldMask(start, length int) uint64 {
	if length >= 64 {
		return ^uint64(0) << uint(start)
	}
	return ((uint64(1) << uint(length)) - 1) << uint(start)
}

// Frame returns the definition for the given CAN ID.
func (db *DB) Frame(id uint32) (*FrameDef, bool) {
	f, ok := db.frames[id]
	return f, ok
}

// Frames returns all frame definitions sorted by CAN ID.
func (db *DB) Frames() []*FrameDef {
	out := make([]*FrameDef, 0, len(db.frames))
	for _, f := range db.frames {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Signal returns the signal definition for the given name.
func (db *DB) Signal(name string) (*Signal, bool) {
	s, ok := db.signals[name]
	return s, ok
}

// SignalNames returns every signal name in declaration order.
func (db *DB) SignalNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Pack assembles the 8-byte payload of the given frame from a value map.
// Signals missing from values are encoded as zero. Unknown frame IDs are
// an error.
func (db *DB) Pack(id uint32, values map[string]float64) ([8]byte, error) {
	var data [8]byte
	f, ok := db.frames[id]
	if !ok {
		return data, fmt.Errorf("sigdb: pack: unknown frame ID 0x%X", id)
	}
	var word uint64
	for _, s := range f.Signals {
		raw := s.Encode(values[s.Name])
		word |= (raw & (fieldMask(0, s.BitLen))) << uint(s.StartBit)
	}
	for i := range data {
		data[i] = byte(word >> uint(8*i))
	}
	return data, nil
}

// canonicalPlan returns the cached all-signals decode plan, compiling
// it on first use. Two racing first uses both compile and one cache
// write wins; both plans are equivalent, so this stays lock-free.
func (db *DB) canonicalPlan() *DecodePlan {
	if p := db.canon.Load(); p != nil {
		return p
	}
	// The canonical ordering is db.order: unique, known names by
	// construction, so compilation cannot fail.
	p, _ := db.CompilePlan(db.order)
	db.canon.Store(p)
	return p
}

// Unpack decodes the 8-byte payload of the given frame into named
// physical values. It is a compatibility wrapper over the compiled
// decode plan; allocation-free callers should compile a DecodePlan and
// use UnpackInto instead.
func (db *DB) Unpack(id uint32, data [8]byte) (map[string]float64, error) {
	fp := db.canonicalPlan().lookup(id)
	if fp == nil {
		return nil, fmt.Errorf("sigdb: unpack: unknown frame ID 0x%X", id)
	}
	word := binary.LittleEndian.Uint64(data[:])
	out := make(map[string]float64, len(fp.entries))
	for k, e := range fp.entries {
		out[fp.names[k]] = decodeRaw(e.kind, (word>>e.shift)&e.mask)
	}
	return out, nil
}

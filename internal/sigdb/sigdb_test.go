package sigdb

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Float, "float"},
		{Bool, "bool"},
		{Enum, "enum"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestFloatEncodeDecodeRoundTrip(t *testing.T) {
	s := &Signal{Name: "f", Kind: Float, BitLen: 32}
	tests := []float64{0, 1, -1, 3.5, -2000, 2000, math.Pi, math.Inf(1), math.Inf(-1)}
	for _, v := range tests {
		got := s.Decode(s.Encode(v))
		want := float64(float32(v))
		if got != want {
			t.Errorf("float round trip of %v = %v, want %v", v, got, want)
		}
	}
}

func TestFloatEncodePreservesNaN(t *testing.T) {
	s := &Signal{Name: "f", Kind: Float, BitLen: 32}
	if got := s.Decode(s.Encode(math.NaN())); !math.IsNaN(got) {
		t.Errorf("NaN round trip = %v, want NaN", got)
	}
}

func TestFloatEncodePreservesSignedZero(t *testing.T) {
	s := &Signal{Name: "f", Kind: Float, BitLen: 32}
	got := s.Decode(s.Encode(math.Copysign(0, -1)))
	if got != 0 || !math.Signbit(got) {
		t.Errorf("-0.0 round trip = %v (signbit %v), want -0.0", got, math.Signbit(got))
	}
}

func TestBoolEncodeDecode(t *testing.T) {
	s := &Signal{Name: "b", Kind: Bool, BitLen: 1}
	tests := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1}, // any non-zero encodes as true
		{-0.5, 1},
	}
	for _, tt := range tests {
		if got := s.Decode(s.Encode(tt.in)); got != tt.want {
			t.Errorf("bool round trip of %v = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestEnumEncodeDecode(t *testing.T) {
	s := &Signal{Name: "e", Kind: Enum, BitLen: 8, EnumMax: 3}
	tests := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{3, 3},
		{255, 255},
		{256, 255}, // saturates at field width
		{-4, 0},    // negative clamps to zero
		{math.NaN(), 0},
	}
	for _, tt := range tests {
		if got := s.Decode(s.Encode(tt.in)); got != tt.want {
			t.Errorf("enum round trip of %v = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCheckValueFloatAcceptsExceptional(t *testing.T) {
	s := &Signal{Name: "f", Kind: Float, BitLen: 32}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -2000} {
		if err := s.CheckValue(v); err != nil {
			t.Errorf("CheckValue(%v) on float = %v, want nil", v, err)
		}
	}
}

func TestCheckValueBool(t *testing.T) {
	s := &Signal{Name: "b", Kind: Bool, BitLen: 1}
	if err := s.CheckValue(0); err != nil {
		t.Errorf("CheckValue(0) = %v, want nil", err)
	}
	if err := s.CheckValue(1); err != nil {
		t.Errorf("CheckValue(1) = %v, want nil", err)
	}
	for _, v := range []float64{2, -1, 0.5, math.NaN()} {
		if err := s.CheckValue(v); err == nil {
			t.Errorf("CheckValue(%v) on bool = nil, want error", v)
		}
	}
}

func TestCheckValueEnum(t *testing.T) {
	s := &Signal{Name: "e", Kind: Enum, BitLen: 8, EnumMax: 3}
	for _, v := range []float64{0, 1, 2, 3} {
		if err := s.CheckValue(v); err != nil {
			t.Errorf("CheckValue(%v) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{4, -1, 1.5, math.NaN(), math.Inf(1)} {
		if err := s.CheckValue(v); err == nil {
			t.Errorf("CheckValue(%v) on enum = nil, want error", v)
		}
	}
}

func TestAddFrameRejectsOverlap(t *testing.T) {
	db := New()
	err := db.AddFrame(&FrameDef{
		ID: 1, Name: "f", Period: time.Millisecond,
		Signals: []*Signal{
			{Name: "a", FrameID: 1, StartBit: 0, BitLen: 32, Kind: Float},
			{Name: "b", FrameID: 1, StartBit: 16, BitLen: 32, Kind: Float},
		},
	})
	if err == nil {
		t.Fatal("AddFrame with overlapping fields succeeded, want error")
	}
}

func TestAddFrameRejectsDuplicateID(t *testing.T) {
	db := New()
	mk := func() *FrameDef {
		return &FrameDef{ID: 1, Name: "f", Period: time.Millisecond,
			Signals: []*Signal{{Name: "a", FrameID: 1, StartBit: 0, BitLen: 32, Kind: Float}}}
	}
	if err := db.AddFrame(mk()); err != nil {
		t.Fatalf("first AddFrame: %v", err)
	}
	f := mk()
	f.Signals[0].Name = "b"
	if err := db.AddFrame(f); err == nil {
		t.Fatal("duplicate frame ID accepted, want error")
	}
}

func TestAddFrameRejectsDuplicateSignalName(t *testing.T) {
	db := New()
	if err := db.AddFrame(&FrameDef{ID: 1, Name: "f1", Period: time.Millisecond,
		Signals: []*Signal{{Name: "a", FrameID: 1, StartBit: 0, BitLen: 32, Kind: Float}}}); err != nil {
		t.Fatalf("first AddFrame: %v", err)
	}
	if err := db.AddFrame(&FrameDef{ID: 2, Name: "f2", Period: time.Millisecond,
		Signals: []*Signal{{Name: "a", FrameID: 2, StartBit: 0, BitLen: 32, Kind: Float}}}); err == nil {
		t.Fatal("duplicate signal name accepted, want error")
	}
}

func TestAddFrameRejectsBadPeriod(t *testing.T) {
	db := New()
	if err := db.AddFrame(&FrameDef{ID: 1, Name: "f", Period: 0}); err == nil {
		t.Fatal("zero period accepted, want error")
	}
}

func TestValidateSignalErrors(t *testing.T) {
	tests := []struct {
		name string
		sig  *Signal
	}{
		{"empty name", &Signal{Kind: Float, BitLen: 32}},
		{"negative start", &Signal{Name: "s", StartBit: -1, BitLen: 32, Kind: Float}},
		{"field past 64", &Signal{Name: "s", StartBit: 40, BitLen: 32, Kind: Float}},
		{"float not 32 bits", &Signal{Name: "s", BitLen: 16, Kind: Float}},
		{"bool not 1 bit", &Signal{Name: "s", BitLen: 2, Kind: Bool}},
		{"enum too wide", &Signal{Name: "s", BitLen: 33, Kind: Enum, EnumMax: 1}},
		{"enum without max", &Signal{Name: "s", BitLen: 8, Kind: Enum}},
		{"enum max too large", &Signal{Name: "s", BitLen: 2, Kind: Enum, EnumMax: 7}},
		{"unknown kind", &Signal{Name: "s", BitLen: 8, Kind: Kind(42)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := validateSignal(tt.sig); err == nil {
				t.Errorf("validateSignal accepted %+v, want error", tt.sig)
			}
		})
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	db := Vehicle()
	in := map[string]float64{
		SigTargetRange:  float64(float32(37.25)),
		SigTargetRelVel: float64(float32(-4.5)),
	}
	data, err := db.Pack(FrameRadar, in)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out, err := db.Unpack(FrameRadar, data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for name, want := range in {
		if got := out[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestPackUnknownFrame(t *testing.T) {
	db := Vehicle()
	if _, err := db.Pack(0xDEAD, nil); err == nil {
		t.Fatal("Pack of unknown frame succeeded, want error")
	}
	if _, err := db.Unpack(0xDEAD, [8]byte{}); err == nil {
		t.Fatal("Unpack of unknown frame succeeded, want error")
	}
}

func TestPackMissingSignalIsZero(t *testing.T) {
	db := Vehicle()
	data, err := db.Pack(FrameRadar, nil)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out, err := db.Unpack(FrameRadar, data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if out[SigTargetRange] != 0 || out[SigTargetRelVel] != 0 {
		t.Errorf("missing signals decoded as %v, want zeros", out)
	}
}

// TestPackUnpackQuick property-tests that any float32-representable
// values survive a pack/unpack trip through the radar frame.
func TestPackUnpackQuick(t *testing.T) {
	db := Vehicle()
	f := func(rng, relvel float32) bool {
		in := map[string]float64{
			SigTargetRange:  float64(rng),
			SigTargetRelVel: float64(relvel),
		}
		data, err := db.Pack(FrameRadar, in)
		if err != nil {
			return false
		}
		out, err := db.Unpack(FrameRadar, data)
		if err != nil {
			return false
		}
		eq := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		return eq(out[SigTargetRange], in[SigTargetRange]) &&
			eq(out[SigTargetRelVel], in[SigTargetRelVel])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStatusBitsIndependent property-tests that the four 1-bit status
// signals pack without interfering with one another.
func TestStatusBitsIndependent(t *testing.T) {
	db := Vehicle()
	f := func(enabled, brake, torque, service bool) bool {
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		in := map[string]float64{
			SigACCEnabled:      b2f(enabled),
			SigBrakeRequested:  b2f(brake),
			SigTorqueRequested: b2f(torque),
			SigServiceACC:      b2f(service),
		}
		data, err := db.Pack(FrameACCStatus, in)
		if err != nil {
			return false
		}
		out, err := db.Unpack(FrameACCStatus, data)
		if err != nil {
			return false
		}
		for name, want := range in {
			if out[name] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVehicleDatabaseShape(t *testing.T) {
	db := Vehicle()
	if got := len(db.Frames()); got != 7 {
		t.Errorf("Vehicle() has %d frames, want 7", got)
	}
	wantSignals := append(FSRACCInputs(), FSRACCOutputs()...)
	for _, name := range wantSignals {
		if _, ok := db.Signal(name); !ok {
			t.Errorf("Vehicle() missing signal %q", name)
		}
	}
	if got, want := len(db.SignalNames()), len(wantSignals); got != want {
		t.Errorf("Vehicle() has %d signals, want %d", got, want)
	}
}

func TestVehiclePeriods(t *testing.T) {
	db := Vehicle()
	slow, ok := db.Frame(FrameACCCommand)
	if !ok {
		t.Fatal("missing ACCCommand frame")
	}
	fast, ok := db.Frame(FrameRadar)
	if !ok {
		t.Fatal("missing Radar frame")
	}
	if slow.Period != 4*fast.Period {
		t.Errorf("slow period %v is not 4x fast period %v", slow.Period, fast.Period)
	}
}

func TestFigure1Inventory(t *testing.T) {
	// The paper's Figure 1 lists 9 inputs and 6 outputs with these types.
	db := Vehicle()
	wantKinds := map[string]Kind{
		SigVelocity:        Float,
		SigAccelPedPos:     Float,
		SigBrakePedPres:    Float,
		SigACCSetSpeed:     Float,
		SigThrotPos:        Float,
		SigVehicleAhead:    Bool,
		SigTargetRange:     Float,
		SigTargetRelVel:    Float,
		SigSelHeadway:      Enum,
		SigACCEnabled:      Bool,
		SigBrakeRequested:  Bool,
		SigTorqueRequested: Bool,
		SigRequestedTorque: Float,
		SigRequestedDecel:  Float,
		SigServiceACC:      Bool,
	}
	if len(FSRACCInputs()) != 9 {
		t.Errorf("FSRACCInputs has %d entries, want 9", len(FSRACCInputs()))
	}
	if len(FSRACCOutputs()) != 6 {
		t.Errorf("FSRACCOutputs has %d entries, want 6", len(FSRACCOutputs()))
	}
	for name, want := range wantKinds {
		s, ok := db.Signal(name)
		if !ok {
			t.Errorf("missing signal %q", name)
			continue
		}
		if s.Kind != want {
			t.Errorf("signal %q kind = %v, want %v", name, s.Kind, want)
		}
	}
}

package sigdb

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestPlanMatchesUnpack differentially checks the compiled decoder
// against the legacy map-based Unpack across every Vehicle frame with
// fuzzed payloads: same bits in, same physical values out.
func TestPlanMatchesUnpack(t *testing.T) {
	db := Vehicle()
	names := db.SignalNames()
	plan, err := db.CompilePlan(names)
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	rng := rand.New(rand.NewSource(1))
	dst := make([]float64, plan.Width())
	for _, f := range db.Frames() {
		for trial := 0; trial < 200; trial++ {
			var data [8]byte
			rng.Read(data[:])
			want, err := db.Unpack(f.ID, data)
			if err != nil {
				t.Fatalf("frame 0x%X: Unpack: %v", f.ID, err)
			}
			mask, err := plan.UnpackInto(f.ID, data, dst)
			if err != nil {
				t.Fatalf("frame 0x%X: UnpackInto: %v", f.ID, err)
			}
			if want := uint64(1)<<uint(len(f.Signals)) - 1; mask != want {
				t.Fatalf("frame 0x%X: mask = %b, want %b", f.ID, mask, want)
			}
			for name, wv := range want {
				gv := dst[idx[name]]
				if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
					t.Fatalf("frame 0x%X signal %s: plan decoded %v, Unpack decoded %v (payload %x)",
						f.ID, name, gv, wv, data)
				}
			}
		}
	}
}

// TestPlanDstAndKnows checks the destination-index view a streaming
// caller uses to flip freshness bits.
func TestPlanDstAndKnows(t *testing.T) {
	db := Vehicle()
	names := db.SignalNames()
	plan, err := db.CompilePlan(names)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Width(); got != len(names) {
		t.Fatalf("Width = %d, want %d", got, len(names))
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	for _, f := range db.Frames() {
		if !plan.Knows(f.ID) {
			t.Fatalf("Knows(0x%X) = false for a database frame", f.ID)
		}
		dst, ok := plan.Dst(f.ID)
		if !ok {
			t.Fatalf("Dst(0x%X) not ok for a database frame", f.ID)
		}
		if len(dst) != len(f.Signals) {
			t.Fatalf("frame 0x%X: %d destinations, want %d", f.ID, len(dst), len(f.Signals))
		}
		for k, s := range f.Signals {
			if dst[k] != idx[s.Name] {
				t.Fatalf("frame 0x%X entry %d: dst %d, want %d (%s)", f.ID, k, dst[k], idx[s.Name], s.Name)
			}
		}
	}
	if plan.Knows(0x7FF) {
		t.Fatal("Knows reports an undeclared frame ID")
	}
	if _, ok := plan.Dst(0x7FF); ok {
		t.Fatal("Dst reports an undeclared frame ID")
	}
}

// TestPlanUnknownFrame pins the sentinel: foreign traffic must be
// testable without allocating an error message per frame.
func TestPlanUnknownFrame(t *testing.T) {
	plan, err := Vehicle().CompilePlan(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.UnpackInto(0x7FF, [8]byte{}, nil)
	if !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("UnpackInto(unknown) = %v, want ErrUnknownFrame", err)
	}
}

// TestPlanShortDst checks that an undersized destination vector is
// rejected before anything is written.
func TestPlanShortDst(t *testing.T) {
	db := Vehicle()
	plan, err := db.CompilePlan(db.SignalNames())
	if err != nil {
		t.Fatal(err)
	}
	short := make([]float64, plan.Width()-1)
	if _, err := plan.UnpackInto(FrameVehicleDyn, [8]byte{}, short); err == nil {
		t.Fatal("UnpackInto accepted a destination shorter than the plan width")
	}
}

// TestPlanSubsetOrdering compiles a plan over a strict subset of the
// database: frames still decode, absent signals are skipped and never
// touch the destination vector.
func TestPlanSubsetOrdering(t *testing.T) {
	db := Vehicle()
	order := []string{SigThrotPos, SigVelocity} // deliberately not database order
	plan, err := db.CompilePlan(order)
	if err != nil {
		t.Fatal(err)
	}
	data, err := db.Pack(FrameVehicleDyn, map[string]float64{SigVelocity: 24.5, SigThrotPos: 31.2})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := -12345.0
	dst := []float64{sentinel, sentinel}
	mask, err := plan.UnpackInto(FrameVehicleDyn, data, dst)
	if err != nil {
		t.Fatal(err)
	}
	dsts, _ := plan.Dst(FrameVehicleDyn)
	if len(dsts) != 2 {
		t.Fatalf("subset plan extracts %d signals from VehicleDyn, want 2", len(dsts))
	}
	if mask != 0b11 {
		t.Fatalf("subset mask = %b, want 11", mask)
	}
	if got := dst[1]; math.Abs(got-24.5) > 1e-4 {
		t.Fatalf("Velocity decoded to %v at its ordering slot, want ~24.5", got)
	}
	if got := dst[0]; math.Abs(got-31.2) > 1e-4 {
		t.Fatalf("ThrotPos decoded to %v at its ordering slot, want ~31.2", got)
	}
	// A frame carrying none of the ordered signals still decodes (to
	// nothing) rather than erroring.
	if mask, err := plan.UnpackInto(FrameRadar, [8]byte{}, dst); err != nil || mask != 0 {
		t.Fatalf("radar frame under subset plan: mask %b err %v, want 0 nil", mask, err)
	}
}

// TestCompilePlanRejects pins the compile-time errors.
func TestCompilePlanRejects(t *testing.T) {
	db := Vehicle()
	if _, err := db.CompilePlan([]string{"NoSuchSignal"}); err == nil {
		t.Fatal("CompilePlan accepted an unknown signal name")
	}
	if _, err := db.CompilePlan([]string{SigVelocity, SigVelocity}); err == nil {
		t.Fatal("CompilePlan accepted a duplicate signal name")
	}
}

// TestUnpackIntoAllocFree pins the zero-allocation contract of the hot
// decode path.
func TestUnpackIntoAllocFree(t *testing.T) {
	db := Vehicle()
	plan, err := db.CompilePlan(db.SignalNames())
	if err != nil {
		t.Fatal(err)
	}
	data, err := db.Pack(FrameVehicleDyn, map[string]float64{SigVelocity: 24.5, SigThrotPos: 31.2})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, plan.Width())
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := plan.UnpackInto(FrameVehicleDyn, data, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("UnpackInto allocates %.1f times per frame, want 0", allocs)
	}
}

package sigdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrUnknownFrame is returned by DecodePlan.UnpackInto for a frame ID
// the plan was not compiled for. It is a sentinel so hot-path callers
// can test it without allocating.
var ErrUnknownFrame = errors.New("sigdb: unknown frame ID")

// planEntry is one compiled signal extraction: everything needed to
// turn the 64-bit payload word into a physical value and store it, with
// no name lookups and no allocation.
type planEntry struct {
	shift uint8  // start bit
	kind  Kind   // decode selector
	mask  uint64 // field mask at bit zero
	dst   int32  // destination index in the caller's value vector
}

// framePlan is the compiled decoder for one frame ID.
type framePlan struct {
	entries []planEntry
	// names mirrors entries for the map-building compatibility path.
	names []string
	// dst mirrors entries' destination indices; exposed (shared,
	// read-only) so callers can flip freshness bits without re-deriving
	// the signal ordering.
	dst []int
	// mask has bit k set for entries[k]: the frame's k-th declared
	// signal that is present in the compiled ordering. A CAN payload is
	// 64 bits, so a frame carries at most 64 signals and the mask never
	// overflows.
	mask uint64
}

// DecodePlan is a compiled frame decoder: per frame ID, the
// precomputed (start bit, width, kind, destination index) entries
// resolved once against a caller-supplied signal ordering. Decoding a
// frame through UnpackInto writes straight into a reusable value
// vector — zero allocations, zero string hashing — which is what lets
// the streaming monitor keep up with the bus (the runtime-monitoring
// question the paper defers in Section VI).
//
// A plan is immutable after compilation and safe for concurrent use.
type DecodePlan struct {
	width int
	// dense maps small frame IDs directly to a plan index (-1 when
	// absent); byID is the fallback for sparse ID spaces. Real vehicle
	// buses use 11-bit identifiers, so the dense path is the norm.
	dense []int32
	byID  map[uint32]int32
	plans []framePlan
}

// maxDenseID bounds the directly-indexed frame ID table: it covers the
// full 11-bit standard CAN ID space.
const maxDenseID = 1 << 11

// CompilePlan compiles a decode plan against the given signal
// ordering: signal order[i] decodes into destination index i. Names
// must be unique and present in the database; database signals absent
// from order are simply skipped by the plan (their frames still decode,
// minus those fields). An empty order yields a plan that recognizes
// every frame but extracts nothing.
func (db *DB) CompilePlan(order []string) (*DecodePlan, error) {
	index := make(map[string]int, len(order))
	for i, name := range order {
		if _, ok := db.signals[name]; !ok {
			return nil, fmt.Errorf("sigdb: plan: unknown signal %q", name)
		}
		if _, dup := index[name]; dup {
			return nil, fmt.Errorf("sigdb: plan: duplicate signal %q in ordering", name)
		}
		index[name] = i
	}
	p := &DecodePlan{width: len(order), byID: make(map[uint32]int32)}
	frames := db.Frames()
	var maxID uint32
	for _, f := range frames {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	if maxID < maxDenseID {
		p.dense = make([]int32, maxID+1)
		for i := range p.dense {
			p.dense[i] = -1
		}
	}
	for _, f := range frames {
		fp := framePlan{}
		for _, s := range f.Signals {
			di, ok := index[s.Name]
			if !ok {
				continue
			}
			fp.mask |= uint64(1) << uint(len(fp.entries))
			fp.entries = append(fp.entries, planEntry{
				shift: uint8(s.StartBit),
				kind:  s.Kind,
				mask:  fieldMask(0, s.BitLen),
				dst:   int32(di),
			})
			fp.names = append(fp.names, s.Name)
			fp.dst = append(fp.dst, di)
		}
		pi := int32(len(p.plans))
		p.plans = append(p.plans, fp)
		if p.dense != nil {
			p.dense[f.ID] = pi
		} else {
			p.byID[f.ID] = pi
		}
	}
	return p, nil
}

// lookup resolves a frame ID to its compiled plan, nil when unknown.
func (p *DecodePlan) lookup(id uint32) *framePlan {
	if p.dense != nil {
		if int64(id) < int64(len(p.dense)) {
			if i := p.dense[id]; i >= 0 {
				return &p.plans[i]
			}
		}
		return nil
	}
	if i, ok := p.byID[id]; ok {
		return &p.plans[i]
	}
	return nil
}

// Width returns the length of the compiled signal ordering — the
// minimum length of the destination vector passed to UnpackInto.
func (p *DecodePlan) Width() int { return p.width }

// Knows reports whether the plan was compiled for the given frame ID.
// Unknown IDs are foreign traffic a passive listener ignores.
func (p *DecodePlan) Knows(id uint32) bool { return p.lookup(id) != nil }

// Dst returns the destination indices the given frame decodes into, in
// the frame's declared signal order (restricted to signals present in
// the compiled ordering). The slice is shared with the plan and must
// not be modified. ok is false for unknown frame IDs.
func (p *DecodePlan) Dst(id uint32) (dst []int, ok bool) {
	fp := p.lookup(id)
	if fp == nil {
		return nil, false
	}
	return fp.dst, true
}

// decodeRaw converts one extracted bit field to a physical value; it is
// the shared decode kernel behind UnpackInto and the legacy Unpack.
func decodeRaw(kind Kind, raw uint64) float64 {
	switch kind {
	case Float:
		return float64(math.Float32frombits(uint32(raw)))
	case Bool:
		if raw&1 != 0 {
			return 1
		}
		return 0
	case Enum:
		return float64(raw)
	default:
		return math.NaN()
	}
}

// encodeRaw converts one physical value to its raw bit field — the
// inverse of decodeRaw, matching Signal.Encode exactly: float32
// precision for Float, 0/1 for Bool, and saturation to the field mask
// for Enum (the mask is (1<<BitLen)-1, Encode's saturation bound).
func encodeRaw(kind Kind, mask uint64, v float64) uint64 {
	switch kind {
	case Float:
		return uint64(math.Float32bits(float32(v)))
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Enum:
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v >= float64(mask) {
			return mask
		}
		return uint64(v)
	default:
		return 0
	}
}

// PackFrom assembles the 8-byte payload of the given frame from the
// plan's value vector — the allocation-free inverse of UnpackInto, and
// byte-for-byte equivalent to DB.Pack when the plan was compiled over
// every signal. Frame signals absent from the compiled ordering encode
// as zero, exactly as Pack encodes signals missing from its map. src
// must be at least Width() long.
func (p *DecodePlan) PackFrom(id uint32, src []float64) ([8]byte, error) {
	var data [8]byte
	fp := p.lookup(id)
	if fp == nil {
		return data, ErrUnknownFrame
	}
	if len(src) < p.width {
		return data, fmt.Errorf("sigdb: plan: source holds %d values, plan width is %d", len(src), p.width)
	}
	var word uint64
	for _, e := range fp.entries {
		word |= (encodeRaw(e.kind, e.mask, src[e.dst]) & e.mask) << e.shift
	}
	binary.LittleEndian.PutUint64(data[:], word)
	return data, nil
}

// UnpackInto decodes the 8-byte payload of the given frame directly
// into dst at the plan's precomputed destination indices. It performs
// no allocation and no string hashing. The returned mask has bit k set
// for the frame's k-th planned signal (aligned with Dst); entries
// outside the mask — frame signals absent from the compiled ordering —
// leave dst untouched. dst must be at least Width() long. Unknown
// frame IDs return ErrUnknownFrame with dst untouched.
func (p *DecodePlan) UnpackInto(id uint32, data [8]byte, dst []float64) (uint64, error) {
	fp := p.lookup(id)
	if fp == nil {
		return 0, ErrUnknownFrame
	}
	if len(dst) < p.width {
		return 0, fmt.Errorf("sigdb: plan: destination holds %d values, plan width is %d", len(dst), p.width)
	}
	word := binary.LittleEndian.Uint64(data[:])
	for _, e := range fp.entries {
		dst[e.dst] = decodeRaw(e.kind, (word>>e.shift)&e.mask)
	}
	return fp.mask, nil
}

package sigdb

import "time"

// CAN identifiers for the prototype vehicle network. The layout mirrors a
// typical production arrangement: chassis and radar data on fast frames,
// driver-command data on a slower frame, and the feature's outputs on
// fast frames of their own.
const (
	FrameVehicleDyn uint32 = 0x100 // vehicle dynamics (fast)
	FramePedals     uint32 = 0x101 // pedal positions (fast)
	FrameRadar      uint32 = 0x102 // radar target kinematics (fast)
	FrameRadarState uint32 = 0x103 // radar target status (fast)
	FrameACCCommand uint32 = 0x110 // driver ACC commands (slow, 4x period)
	FrameACCOutput  uint32 = 0x120 // FSRACC continuous outputs (fast)
	FrameACCStatus  uint32 = 0x121 // FSRACC discrete outputs (fast)
)

// Broadcast periods. The paper notes "two relevant message periods, with
// some messages being updated four times slower than most others"; we use
// 10 ms for the fast class and 40 ms for the slow class.
const (
	FastPeriod = 10 * time.Millisecond
	SlowPeriod = 40 * time.Millisecond
)

// Signal names for the FSRACC module I/O contract (paper Figure 1).
const (
	SigVelocity        = "Velocity"
	SigAccelPedPos     = "AccelPedPos"
	SigBrakePedPres    = "BrakePedPres"
	SigACCSetSpeed     = "ACCSetSpeed"
	SigThrotPos        = "ThrotPos"
	SigVehicleAhead    = "VehicleAhead"
	SigTargetRange     = "TargetRange"
	SigTargetRelVel    = "TargetRelVel"
	SigSelHeadway      = "SelHeadway"
	SigACCEnabled      = "ACCEnabled"
	SigBrakeRequested  = "BrakeRequested"
	SigTorqueRequested = "TorqueRequested"
	SigRequestedTorque = "RequestedTorque"
	SigRequestedDecel  = "RequestedDecel"
	SigServiceACC      = "ServiceACC"
)

// FSRACCInputs lists the nine FSRACC input signals in Figure 1 order.
// These are the robustness-testing injection targets.
func FSRACCInputs() []string {
	return []string{
		SigVelocity,
		SigAccelPedPos,
		SigBrakePedPres,
		SigACCSetSpeed,
		SigThrotPos,
		SigVehicleAhead,
		SigTargetRange,
		SigTargetRelVel,
		SigSelHeadway,
	}
}

// FSRACCOutputs lists the six FSRACC output signals in Figure 1 order.
func FSRACCOutputs() []string {
	return []string{
		SigACCEnabled,
		SigBrakeRequested,
		SigTorqueRequested,
		SigRequestedTorque,
		SigRequestedDecel,
		SigServiceACC,
	}
}

// VehicleSlowOutputs constructs a variant of the vehicle database in
// which the FSRACC continuous-output frame (RequestedTorque and
// RequestedDecel) broadcasts at the slow period, four times slower than
// the monitor's evaluation step. This is exactly the configuration the
// paper describes hitting in Section V.C.1: "if the held value is used
// in a monitor that updates four times between every RequestedTorque
// update, the torque would appear to be constant for three samples out
// of four". The multi-rate ablation compares naive and update-aware
// difference semantics on this database.
func VehicleSlowOutputs() *DB {
	db := Vehicle()
	f, ok := db.Frame(FrameACCOutput)
	if !ok {
		panic("sigdb: vehicle database missing ACCOutput frame")
	}
	f.Period = SlowPeriod
	return db
}

// Vehicle constructs the prototype vehicle's signal database: every
// FSRACC input and output from the paper's Figure 1, mapped onto periodic
// broadcast frames.
func Vehicle() *DB {
	db := New()
	frames := []*FrameDef{
		{
			ID: FrameVehicleDyn, Name: "VehicleDyn", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigVelocity, FrameID: FrameVehicleDyn, StartBit: 0, BitLen: 32, Kind: Float, Unit: "m/s", Comment: "forward speed of the vehicle"},
				{Name: SigThrotPos, FrameID: FrameVehicleDyn, StartBit: 32, BitLen: 32, Kind: Float, Unit: "%", Comment: "throttle opening"},
			},
		},
		{
			ID: FramePedals, Name: "Pedals", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigAccelPedPos, FrameID: FramePedals, StartBit: 0, BitLen: 32, Kind: Float, Unit: "%", Comment: "accelerator pedal position, 0 released to 100 depressed"},
				{Name: SigBrakePedPres, FrameID: FramePedals, StartBit: 32, BitLen: 32, Kind: Float, Unit: "bar", Comment: "brake pedal pressure"},
			},
		},
		{
			ID: FrameRadar, Name: "Radar", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigTargetRange, FrameID: FrameRadar, StartBit: 0, BitLen: 32, Kind: Float, Unit: "m", Comment: "distance to the vehicle ahead, 0 when none tracked"},
				{Name: SigTargetRelVel, FrameID: FrameRadar, StartBit: 32, BitLen: 32, Kind: Float, Unit: "m/s", Comment: "relative velocity to the vehicle ahead"},
			},
		},
		{
			ID: FrameRadarState, Name: "RadarState", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigVehicleAhead, FrameID: FrameRadarState, StartBit: 0, BitLen: 1, Kind: Bool, Comment: "a vehicle is detected ahead in the lane"},
			},
		},
		{
			ID: FrameACCCommand, Name: "ACCCommand", Period: SlowPeriod,
			Signals: []*Signal{
				{Name: SigACCSetSpeed, FrameID: FrameACCCommand, StartBit: 0, BitLen: 32, Kind: Float, Unit: "m/s", Comment: "commanded cruising speed"},
				{Name: SigSelHeadway, FrameID: FrameACCCommand, StartBit: 32, BitLen: 8, Kind: Enum, EnumMax: 3, Comment: "selected headway distance (1 near, 2 medium, 3 far)"},
			},
		},
		{
			ID: FrameACCOutput, Name: "ACCOutput", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigRequestedTorque, FrameID: FrameACCOutput, StartBit: 0, BitLen: 32, Kind: Float, Unit: "N*m", Comment: "additional engine torque requested when TorqueRequested"},
				{Name: SigRequestedDecel, FrameID: FrameACCOutput, StartBit: 32, BitLen: 32, Kind: Float, Unit: "m/s^2", Comment: "deceleration requested from the brake controller when BrakeRequested"},
			},
		},
		{
			ID: FrameACCStatus, Name: "ACCStatus", Period: FastPeriod,
			Signals: []*Signal{
				{Name: SigACCEnabled, FrameID: FrameACCStatus, StartBit: 0, BitLen: 1, Kind: Bool, Comment: "ACC believes it is in control of the vehicle"},
				{Name: SigBrakeRequested, FrameID: FrameACCStatus, StartBit: 1, BitLen: 1, Kind: Bool, Comment: "ACC is requesting a deceleration"},
				{Name: SigTorqueRequested, FrameID: FrameACCStatus, StartBit: 2, BitLen: 1, Kind: Bool, Comment: "ACC is requesting additional engine torque"},
				{Name: SigServiceACC, FrameID: FrameACCStatus, StartBit: 3, BitLen: 1, Kind: Bool, Comment: "ACC has detected an internal error"},
			},
		},
	}
	for _, f := range frames {
		if err := db.AddFrame(f); err != nil {
			// The vehicle database is a compile-time constant of this
			// repository; a failure here is a programming error.
			panic(err)
		}
	}
	return db
}

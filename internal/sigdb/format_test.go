package sigdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadFormatRoundTrip(t *testing.T) {
	orig := Vehicle()
	var buf bytes.Buffer
	if err := WriteFormat(&buf, orig); err != nil {
		t.Fatalf("WriteFormat: %v", err)
	}
	back, err := ReadFormat(&buf)
	if err != nil {
		t.Fatalf("ReadFormat: %v", err)
	}
	origFrames := orig.Frames()
	backFrames := back.Frames()
	if len(backFrames) != len(origFrames) {
		t.Fatalf("frames = %d, want %d", len(backFrames), len(origFrames))
	}
	for i, of := range origFrames {
		bf := backFrames[i]
		if bf.ID != of.ID || bf.Name != of.Name || bf.Period != of.Period {
			t.Errorf("frame %d = %+v, want %+v", i, bf, of)
		}
		if len(bf.Signals) != len(of.Signals) {
			t.Fatalf("frame %s has %d signals, want %d", bf.Name, len(bf.Signals), len(of.Signals))
		}
		for j, os := range of.Signals {
			bs := bf.Signals[j]
			if *bs != *os {
				t.Errorf("signal %s = %+v, want %+v", os.Name, *bs, *os)
			}
		}
	}
}

func TestReadFormatMinimal(t *testing.T) {
	src := `
# a custom two-node network
frame 0x42 Sensors period=20ms
    signal Pressure float bits=0:32 unit="bar" comment="tank pressure"
    signal ValveOpen bool bits=32:1
frame 0x43 Command period=40ms
    signal Mode enum bits=0:4 max=5
`
	db, err := ReadFormat(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadFormat: %v", err)
	}
	p, ok := db.Signal("Pressure")
	if !ok || p.Kind != Float || p.Unit != "bar" || p.Comment != "tank pressure" {
		t.Errorf("Pressure = %+v", p)
	}
	m, ok := db.Signal("Mode")
	if !ok || m.Kind != Enum || m.EnumMax != 5 || m.BitLen != 4 {
		t.Errorf("Mode = %+v", m)
	}
	f, ok := db.Frame(0x43)
	if !ok || f.Period.Milliseconds() != 40 {
		t.Errorf("frame 0x43 = %+v", f)
	}
	// The parsed database must be usable for pack/unpack.
	data, err := db.Pack(0x42, map[string]float64{"Pressure": 2.5, "ValveOpen": 1})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	vals, err := db.Unpack(0x42, data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if vals["Pressure"] != 2.5 || vals["ValveOpen"] != 1 {
		t.Errorf("unpacked %v", vals)
	}
}

func TestReadFormatErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"signal before frame", "signal X float bits=0:32"},
		{"garbage line", "banana 0x1"},
		{"bad id", "frame zz Name period=10ms"},
		{"missing period", "frame 0x1 Name"},
		{"bad period", "frame 0x1 Name period=ten"},
		{"unknown frame attr", "frame 0x1 Name period=10ms color=red"},
		{"bad kind", "frame 0x1 N period=10ms\nsignal X blob bits=0:8"},
		{"missing bits", "frame 0x1 N period=10ms\nsignal X bool max=1"},
		{"bad bits", "frame 0x1 N period=10ms\nsignal X bool bits=zero:1"},
		{"bits no colon", "frame 0x1 N period=10ms\nsignal X bool bits=5"},
		{"unknown signal attr", "frame 0x1 N period=10ms\nsignal X bool bits=0:1 shiny=yes"},
		{"enum without max", "frame 0x1 N period=10ms\nsignal X enum bits=0:8"},
		{"overlap", "frame 0x1 N period=10ms\nsignal A float bits=0:32\nsignal B float bits=16:32"},
		{"unterminated quote", `frame 0x1 N period=10ms
signal X bool bits=0:1 unit="bar`},
		{"float not 32", "frame 0x1 N period=10ms\nsignal X float bits=0:16"},
		{"bad attr form", "frame 0x1 N period=10ms\nsignal X bool bits=0:1 unit"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadFormat(strings.NewReader(tt.src)); err == nil {
				t.Errorf("ReadFormat accepted %q", tt.src)
			}
		})
	}
}

func TestReadFormatIgnoresCommentsAndBlank(t *testing.T) {
	src := "# header\n\nframe 0x1 N period=10ms\n  # indented comment\n  signal X bool bits=0:1\n"
	db, err := ReadFormat(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadFormat: %v", err)
	}
	if _, ok := db.Signal("X"); !ok {
		t.Error("missing signal X")
	}
}

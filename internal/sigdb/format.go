package sigdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements a textual database format, playing the role a
// DBC file plays for a production CAN tool: it lets the bolt-on monitor
// be pointed at any broadcast network by describing its frames and
// signals in a short text file, without recompiling anything.
//
//	# comment
//	frame 0x100 VehicleDyn period=10ms
//	    signal Velocity float bits=0:32 unit="m/s" comment="forward speed"
//	    signal ThrotPos float bits=32:32 unit="%"
//	frame 0x121 ACCStatus period=10ms
//	    signal ACCEnabled bool bits=0:1
//	frame 0x110 ACCCommand period=40ms
//	    signal SelHeadway enum bits=32:8 max=3
//
// Signal lines belong to the most recent frame line. bits=START:LEN is
// the little-endian bit field within the 8-byte payload; floats must be
// 32 bits wide and enums declare their maximum ordinal with max=N.

// WriteFormat serializes the database in the textual format.
func WriteFormat(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, f := range db.Frames() {
		fmt.Fprintf(bw, "frame 0x%X %s period=%s\n", f.ID, f.Name, formatPeriod(f.Period))
		for _, s := range f.Signals {
			fmt.Fprintf(bw, "    signal %s %s bits=%d:%d", s.Name, s.Kind, s.StartBit, s.BitLen)
			if s.Kind == Enum {
				fmt.Fprintf(bw, " max=%d", s.EnumMax)
			}
			if s.Unit != "" {
				fmt.Fprintf(bw, " unit=%s", strconv.Quote(s.Unit))
			}
			if s.Comment != "" {
				fmt.Fprintf(bw, " comment=%s", strconv.Quote(s.Comment))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

func formatPeriod(d time.Duration) string {
	if d%time.Millisecond == 0 {
		return strconv.FormatInt(int64(d/time.Millisecond), 10) + "ms"
	}
	return d.String()
}

// ReadFormat parses a textual database.
func ReadFormat(r io.Reader) (*DB, error) {
	db := New()
	sc := bufio.NewScanner(r)
	var cur *FrameDef
	line := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := db.AddFrame(cur); err != nil {
			return err
		}
		cur = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields, err := splitQuoted(text)
		if err != nil {
			return nil, fmt.Errorf("sigdb: line %d: %w", line, err)
		}
		switch fields[0] {
		case "frame":
			if err := flush(); err != nil {
				return nil, fmt.Errorf("sigdb: line %d: %w", line, err)
			}
			f, err := parseFrameLine(fields)
			if err != nil {
				return nil, fmt.Errorf("sigdb: line %d: %w", line, err)
			}
			cur = f
		case "signal":
			if cur == nil {
				return nil, fmt.Errorf("sigdb: line %d: signal before any frame", line)
			}
			s, err := parseSignalLine(fields, cur.ID)
			if err != nil {
				return nil, fmt.Errorf("sigdb: line %d: %w", line, err)
			}
			cur.Signals = append(cur.Signals, s)
		default:
			return nil, fmt.Errorf("sigdb: line %d: expected 'frame' or 'signal', got %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sigdb: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(db.Frames()) == 0 {
		return nil, fmt.Errorf("sigdb: empty database")
	}
	return db, nil
}

// splitQuoted splits on spaces, keeping key="quoted value" tokens whole.
func splitQuoted(s string) ([]string, error) {
	var out []string
	var sb strings.Builder
	inQuote := false
	escaped := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			sb.WriteByte(c)
			escaped = false
		case c == '\\' && inQuote:
			sb.WriteByte(c)
			escaped = true
		case c == '"':
			sb.WriteByte(c)
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			if sb.Len() > 0 {
				out = append(out, sb.String())
				sb.Reset()
			}
		default:
			sb.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	if sb.Len() > 0 {
		out = append(out, sb.String())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}

func parseFrameLine(fields []string) (*FrameDef, error) {
	if len(fields) < 4 {
		return nil, fmt.Errorf("frame line needs: frame <id> <name> period=<dur>")
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad frame ID %q: %v", fields[1], err)
	}
	f := &FrameDef{ID: uint32(id), Name: fields[2]}
	for _, kv := range fields[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad attribute %q", kv)
		}
		switch key {
		case "period":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad period %q: %v", val, err)
			}
			f.Period = d
		default:
			return nil, fmt.Errorf("unknown frame attribute %q", key)
		}
	}
	if f.Period == 0 {
		return nil, fmt.Errorf("frame %s missing period", f.Name)
	}
	return f, nil
}

func parseSignalLine(fields []string, frameID uint32) (*Signal, error) {
	if len(fields) < 4 {
		return nil, fmt.Errorf("signal line needs: signal <name> <kind> bits=<start>:<len> [max=N] [unit=\"..\"] [comment=\"..\"]")
	}
	s := &Signal{Name: fields[1], FrameID: frameID}
	switch fields[2] {
	case "float":
		s.Kind = Float
	case "bool":
		s.Kind = Bool
	case "enum":
		s.Kind = Enum
	default:
		return nil, fmt.Errorf("unknown signal kind %q", fields[2])
	}
	for _, kv := range fields[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad attribute %q", kv)
		}
		switch key {
		case "bits":
			startStr, lenStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("bad bits %q, want start:len", val)
			}
			start, err := strconv.Atoi(startStr)
			if err != nil {
				return nil, fmt.Errorf("bad bit start %q", startStr)
			}
			length, err := strconv.Atoi(lenStr)
			if err != nil {
				return nil, fmt.Errorf("bad bit length %q", lenStr)
			}
			s.StartBit, s.BitLen = start, length
		case "max":
			m, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad max %q", val)
			}
			s.EnumMax = uint32(m)
		case "unit":
			u, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("bad unit %q: %v", val, err)
			}
			s.Unit = u
		case "comment":
			c, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("bad comment %q: %v", val, err)
			}
			s.Comment = c
		default:
			return nil, fmt.Errorf("unknown signal attribute %q", key)
		}
	}
	if s.BitLen == 0 {
		return nil, fmt.Errorf("signal %s missing bits", s.Name)
	}
	return s, nil
}

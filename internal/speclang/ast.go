package speclang

import "time"

// Expr is a specification expression node.
type Expr interface {
	exprNode()
	// Pos returns the source position for error messages.
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// NumberLit is a numeric literal.
type NumberLit struct {
	pos
	Value float64
}

// BoolLit is a boolean literal (true/false).
type BoolLit struct {
	pos
	Value bool
}

// Ident references a signal, a let binding, or a constant.
type Ident struct {
	pos
	Name string
}

// Unary is !x or -x.
type Unary struct {
	pos
	Op tokenKind // tokNot or tokMinus
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	pos
	Op   tokenKind
	L, R Expr
}

// Call is a builtin function call such as delta(x) or cond(c, a, b).
type Call struct {
	pos
	Func string
	Args []Expr
}

// Temporal is a bounded temporal operator with the window expressed in
// time relative to the current step: always[lo:hi](x) and
// eventually[lo:hi](x) look forward over [t+lo, t+hi]; once[lo:hi](x)
// and historically[lo:hi](x) look backward over [t-hi, t-lo].
type Temporal struct {
	pos
	Op     string // "always", "eventually", "once" or "historically"
	Lo, Hi time.Duration
	X      Expr
}

// Past reports whether the operator looks backward in time.
func (t *Temporal) Past() bool {
	return t.Op == "once" || t.Op == "historically"
}

func (*NumberLit) exprNode() {}
func (*BoolLit) exprNode()   {}
func (*Ident) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}
func (*Temporal) exprNode()  {}

// Let is a named intermediate expression.
type Let struct {
	Name string
	X    Expr
	pos
}

// Warmup suppresses violations for Window after the trigger: the trace
// start when On is nil, otherwise every step where On rises to true.
// This is the uniform "warming up" mechanism the paper calls for in
// Section V.C.2.
type Warmup struct {
	Window time.Duration
	On     Expr // nil means "after trace start"
	pos
}

// Spec is a per-step assertion rule.
type Spec struct {
	Name        string
	Description string
	Lets        []Let
	Warmups     []Warmup
	// Severity, when non-nil, is evaluated at violating steps and its
	// absolute peak recorded per violation, for triage.
	Severity Expr
	// Asserts must all hold at every non-suppressed step.
	Asserts []Expr
	pos
}

// TransKind distinguishes transition triggers.
type TransKind int

const (
	// TransWhen fires when the guard expression is true.
	TransWhen TransKind = iota + 1
	// TransAfter fires when the dwell time in the state reaches the
	// deadline.
	TransAfter
)

// Transition is one state-machine transition.
type Transition struct {
	Kind TransKind
	// Guard is the condition for TransWhen.
	Guard Expr
	// Deadline is the dwell time for TransAfter.
	Deadline time.Duration
	// Violate reports a violation when the transition fires.
	Violate bool
	// Msg is the violation message.
	Msg string
	// Target is the destination state; empty means stay in the current
	// state (only meaningful for violating transitions).
	Target string
	pos
}

// State is one state of a monitor state machine.
type State struct {
	Name        string
	Initial     bool
	Transitions []Transition
	pos
}

// Monitor is a state-machine rule.
type Monitor struct {
	Name        string
	Description string
	Lets        []Let
	Warmups     []Warmup
	Severity    Expr
	States      []State
	pos
}

// Const is a named numeric constant.
type Const struct {
	Name  string
	Value float64
	pos
}

// File is a parsed specification file.
type File struct {
	Consts   []Const
	Specs    []Spec
	Monitors []Monitor
}

// RuleNames returns the names of all rules (specs and monitors) in
// declaration order.
func (f *File) RuleNames() []string {
	var names []string
	for _, s := range f.Specs {
		names = append(names, s.Name)
	}
	for _, m := range f.Monitors {
		names = append(names, m.Name)
	}
	return names
}

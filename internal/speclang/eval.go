package speclang

import (
	"fmt"
	"math"
	"time"
)

// Source provides the aligned, zero-order-hold view of a recorded trace
// that rules are evaluated over. trace.Grid satisfies it via a thin
// adapter in the monitor engine.
type Source interface {
	// NumSteps returns the number of evaluation steps.
	NumSteps() int
	// StepPeriod returns the step size.
	StepPeriod() time.Duration
	// Values returns the held value vector for a signal.
	Values(name string) ([]float64, bool)
	// Updated returns the per-step freshness vector for a signal.
	Updated(name string) ([]bool, bool)
}

// DeltaMode selects the semantics of prev/delta/rate/changed over
// multi-rate data.
type DeltaMode int

const (
	// DeltaUpdateAware computes differences between consecutive signal
	// *updates*, so a slow signal's trend is visible at every step.
	// This is the paper's fix for the Section V.C.1 sampling trap and
	// the default.
	DeltaUpdateAware DeltaMode = iota
	// DeltaNaive computes differences between consecutive grid steps.
	// Held values of slow signals then look constant for most steps:
	// increases are missed, exactly the failure mode the paper
	// describes. Kept for the ablation experiment.
	DeltaNaive
)

// EvalOptions tunes rule evaluation.
type EvalOptions struct {
	// DeltaMode selects multi-rate difference semantics.
	DeltaMode DeltaMode
	// Scratch, when non-nil, supplies reusable evaluation buffers so
	// repeated evaluations stop allocating one slab per expression
	// node. See the lifetime and concurrency contract on Scratch; the
	// evaluation result never references scratch memory.
	Scratch *Scratch
}

// Violation is one contiguous interval of rule violation.
type Violation struct {
	// StartStep and EndStep delimit the violating steps [start, end).
	StartStep, EndStep int
	// Start and End are the corresponding times.
	Start, End time.Duration
	// Peak is the maximum absolute severity over the interval, when the
	// rule declares a severity expression (0 otherwise).
	Peak float64
	// Msg describes the violated clause.
	Msg string
}

// Steps returns the number of violating steps in the interval.
func (v Violation) Steps() int { return v.EndStep - v.StartStep }

// Duration returns the violation duration.
func (v Violation) Duration() time.Duration { return v.End - v.Start }

// RuleResult is the verdict of one rule over one trace.
type RuleResult struct {
	// Name and Description identify the rule.
	Name        string
	Description string
	// Violations lists the violation intervals, in time order.
	Violations []Violation
	// StepsChecked is the number of evaluated steps.
	StepsChecked int
	// StepsSuppressed is the number of steps masked by warmup windows.
	StepsSuppressed int
	// ActivationSteps counts the steps at which the rule was actually
	// exercised: for a spec, some assert's top-level antecedent held
	// (an assert without an implication counts every step); for a
	// monitor, the machine was outside its initial state. A satisfied
	// rule with zero activation is *vacuously* satisfied — the trace
	// never tested it — which is weaker oracle evidence, a distinction
	// that matters when test results feed a safety case.
	ActivationSteps int
}

// Vacuous reports whether the rule was satisfied without ever being
// exercised.
func (r RuleResult) Vacuous() bool {
	return !r.Violated() && r.ActivationSteps == 0
}

// ActivationRatio returns the fraction of checked steps at which the
// rule was exercised.
func (r RuleResult) ActivationRatio() float64 {
	if r.StepsChecked == 0 {
		return 0
	}
	return float64(r.ActivationSteps) / float64(r.StepsChecked)
}

// Violated reports whether the rule was violated anywhere ("V" in the
// paper's Table I; otherwise "S").
func (r RuleResult) Violated() bool { return len(r.Violations) > 0 }

// Eval runs every rule in the set over the source.
func (rs *RuleSet) Eval(src Source, opts EvalOptions) ([]RuleResult, error) {
	out := make([]RuleResult, 0, len(rs.rules))
	for _, r := range rs.rules {
		res, err := r.Eval(src, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Eval runs one rule over the source.
func (r *Rule) Eval(src Source, opts EvalOptions) (RuleResult, error) {
	ev := &evaluator{
		src:    src,
		n:      src.NumSteps(),
		period: src.StepPeriod(),
		mode:   opts.DeltaMode,
		consts: r.consts,
		lets:   make(map[string]*series),
		scr:    opts.Scratch,
	}
	if ev.scr != nil {
		ev.scr.begin(ev.n)
	}
	res := RuleResult{Name: r.Name, Description: r.Description, StepsChecked: ev.n}

	var lets []Let
	var warmups []Warmup
	var severity Expr
	if r.Kind == KindSpec {
		lets, warmups, severity = r.spec.Lets, r.spec.Warmups, r.spec.Severity
	} else {
		lets, warmups, severity = r.monitor.Lets, r.monitor.Warmups, r.monitor.Severity
	}
	for _, l := range lets {
		s, err := ev.eval(l.X)
		if err != nil {
			return res, err
		}
		ev.lets[l.Name] = s
	}
	suppressed, err := ev.warmupMask(warmups)
	if err != nil {
		return res, err
	}
	for _, s := range suppressed {
		if s {
			res.StepsSuppressed++
		}
	}
	var sev []float64
	if severity != nil {
		s, err := ev.eval(severity)
		if err != nil {
			return res, err
		}
		sev = s.vals
	}

	var violating []string // per step: violation message, "" if none
	var active []bool      // per step: the rule was exercised
	if r.Kind == KindSpec {
		violating, active, err = ev.evalSpec(r.spec)
	} else {
		violating, active, err = ev.evalMonitor(r.monitor, r.initial)
	}
	if err != nil {
		return res, err
	}
	for _, a := range active {
		if a {
			res.ActivationSteps++
		}
	}
	res.Violations = mergeViolations(violating, suppressed, sev, ev.period)
	return res, nil
}

// evalSpec marks every step where some assert clause is false, and
// every step where some assert was exercised (its top-level antecedent
// held; an assert that is not an implication exercises every step).
func (ev *evaluator) evalSpec(s *Spec) ([]string, []bool, error) {
	marks := make([]string, ev.n)
	active := ev.newBools()
	for i, a := range s.Asserts {
		vals, err := ev.eval(a)
		if err != nil {
			return nil, nil, err
		}
		line, _ := a.Pos()
		msg := fmt.Sprintf("assert #%d (line %d) failed", i+1, line)
		for t := 0; t < ev.n; t++ {
			if marks[t] == "" && !truthy(vals.vals[t]) {
				marks[t] = msg
			}
		}
		if impl, ok := a.(*Binary); ok && impl.Op == tokArrow {
			ante, err := ev.eval(impl.L)
			if err != nil {
				return nil, nil, err
			}
			for t := 0; t < ev.n; t++ {
				if truthy(ante.vals[t]) {
					active[t] = true
				}
			}
		} else {
			for t := range active {
				active[t] = true
			}
		}
	}
	return marks, active, nil
}

// evalMonitor runs the state machine sequentially over the trace. A
// step is "active" when the machine is outside its initial state.
func (ev *evaluator) evalMonitor(m *Monitor, initial int) ([]string, []bool, error) {
	marks := make([]string, ev.n)
	active := ev.newBools()
	states := make(map[string]int, len(m.States))
	for i, st := range m.States {
		states[st.Name] = i
	}
	// Pre-evaluate every guard.
	type compiledTrans struct {
		tr    *Transition
		guard *series // nil for after-transitions
	}
	compiled := make([][]compiledTrans, len(m.States))
	for i := range m.States {
		st := &m.States[i]
		for j := range st.Transitions {
			tr := &st.Transitions[j]
			ct := compiledTrans{tr: tr}
			if tr.Kind == TransWhen {
				g, err := ev.eval(tr.Guard)
				if err != nil {
					return nil, nil, err
				}
				ct.guard = g
			}
			compiled[i] = append(compiled[i], ct)
		}
	}

	cur := initial
	entered := 0
	for t := 0; t < ev.n; t++ {
		active[t] = cur != initial
		for _, ct := range compiled[cur] {
			fire := false
			switch ct.tr.Kind {
			case TransWhen:
				fire = truthy(ct.guard.vals[t])
			case TransAfter:
				dwell := time.Duration(t-entered) * ev.period
				fire = dwell >= ct.tr.Deadline
			}
			if !fire {
				continue
			}
			if ct.tr.Violate {
				msg := ct.tr.Msg
				if msg == "" {
					msg = fmt.Sprintf("violation in state %s", m.States[cur].Name)
				}
				marks[t] = msg
			}
			if ct.tr.Target != "" {
				next := states[ct.tr.Target]
				if next != cur {
					cur = next
					entered = t + 1 // dwell counts from the next step
				}
			}
			break // first firing transition per step wins
		}
		if cur != initial {
			active[t] = true
		}
	}
	return marks, active, nil
}

// warmupMask computes the suppressed-step mask from warmup clauses.
func (ev *evaluator) warmupMask(ws []Warmup) ([]bool, error) {
	mask := ev.newBools()
	for _, w := range ws {
		steps := int(w.Window / ev.period)
		if steps < 1 {
			steps = 1
		}
		if w.On == nil {
			for t := 0; t < steps && t < ev.n; t++ {
				mask[t] = true
			}
			continue
		}
		on, err := ev.eval(w.On)
		if err != nil {
			return nil, err
		}
		prev := false
		for t := 0; t < ev.n; t++ {
			cur := truthy(on.vals[t])
			if cur && !prev {
				for k := t; k < t+steps && k < ev.n; k++ {
					mask[k] = true
				}
			}
			prev = cur
		}
	}
	return mask, nil
}

// mergeViolations groups consecutive violating (and unsuppressed) steps
// into intervals and attaches peak severity.
func mergeViolations(marks []string, suppressed []bool, sev []float64, period time.Duration) []Violation {
	var out []Violation
	openIdx := -1
	var peak float64
	var msg string
	flush := func(end int) {
		if openIdx < 0 {
			return
		}
		out = append(out, Violation{
			StartStep: openIdx,
			EndStep:   end,
			Start:     time.Duration(openIdx) * period,
			End:       time.Duration(end) * period,
			Peak:      peak,
			Msg:       msg,
		})
		openIdx = -1
		peak = 0
		msg = ""
	}
	for t := range marks {
		bad := marks[t] != "" && !suppressed[t]
		if !bad {
			flush(t)
			continue
		}
		if openIdx < 0 {
			openIdx = t
			msg = marks[t]
		}
		if sev != nil {
			a := math.Abs(sev[t])
			if math.IsNaN(a) {
				// An unverifiable severity is maximally suspicious:
				// never let triage call it negligible.
				a = math.Inf(1)
			}
			if a > peak {
				peak = a
			}
		}
	}
	flush(len(marks))
	return out
}

// series is an evaluated expression: a value per step plus the per-step
// freshness (whether any constituent signal updated at that step).
type series struct {
	vals []float64
	upd  []bool
}

type evaluator struct {
	src    Source
	n      int
	period time.Duration
	mode   DeltaMode
	consts map[string]float64
	lets   map[string]*series

	// scr, when non-nil, recycles the per-step slabs below; nil falls
	// back to plain allocation.
	scr *Scratch

	// noUpd is the shared all-false freshness vector carried by every
	// constant series; constCache interns constant series by value.
	// Evaluated series are read-only downstream, so sharing is safe and
	// saves one n-sized allocation per literal and per literal-operand
	// binary node.
	noUpd      []bool
	constCache map[float64]*series
}

// newFloats returns a zeroed per-step float64 vector, recycled through
// the scratch when one is attached.
func (ev *evaluator) newFloats() []float64 {
	if ev.scr != nil {
		return ev.scr.grabFloats()
	}
	return make([]float64, ev.n)
}

// newBools returns a zeroed per-step bool vector.
func (ev *evaluator) newBools() []bool {
	if ev.scr != nil {
		return ev.scr.grabBools()
	}
	return make([]bool, ev.n)
}

// newInts returns a zeroed vector of n+1 ints for prefix sums.
func (ev *evaluator) newInts() []int {
	if ev.scr != nil {
		return ev.scr.grabInts()
	}
	return make([]int, ev.n+1)
}

func truthy(v float64) bool {
	return v != 0 && !math.IsNaN(v)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (ev *evaluator) noUpdates() []bool {
	if ev.noUpd == nil {
		ev.noUpd = ev.newBools()
	}
	return ev.noUpd
}

func (ev *evaluator) constant(v float64) *series {
	if s, ok := ev.constCache[v]; ok {
		return s
	}
	vals := ev.newFloats()
	for i := range vals {
		vals[i] = v
	}
	s := &series{vals: vals, upd: ev.noUpdates()}
	if ev.constCache == nil {
		ev.constCache = make(map[float64]*series)
	}
	ev.constCache[v] = s
	return s
}

// isNoUpd reports whether s is the shared all-false freshness vector.
func (ev *evaluator) isNoUpd(s []bool) bool {
	return len(s) > 0 && len(ev.noUpd) > 0 && &s[0] == &ev.noUpd[0]
}

// orBits combines two freshness vectors; when one side is the shared
// all-false vector the other is returned as-is (freshness vectors are
// never written after evaluation).
func (ev *evaluator) orBits(a, b []bool) []bool {
	if ev.isNoUpd(b) {
		return a
	}
	if ev.isNoUpd(a) {
		return b
	}
	out := ev.newBools()
	for i := range a {
		out[i] = a[i] || b[i]
	}
	return out
}

// eval evaluates an expression into a per-step series.
func (ev *evaluator) eval(e Expr) (*series, error) {
	switch x := e.(type) {
	case *NumberLit:
		return ev.constant(x.Value), nil
	case *BoolLit:
		return ev.constant(b2f(x.Value)), nil
	case *Ident:
		if s, ok := ev.lets[x.Name]; ok {
			return s, nil
		}
		if v, ok := ev.consts[x.Name]; ok {
			return ev.constant(v), nil
		}
		vals, ok := ev.src.Values(x.Name)
		if !ok {
			line, col := x.Pos()
			return nil, errAt(line, col, "signal %q is not present in the trace", x.Name)
		}
		upd, _ := ev.src.Updated(x.Name)
		return &series{vals: vals, upd: upd}, nil
	case *Unary:
		s, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		out := ev.newFloats()
		if x.Op == tokNot {
			for i, v := range s.vals {
				out[i] = b2f(!truthy(v))
			}
		} else {
			for i, v := range s.vals {
				out[i] = -v
			}
		}
		return &series{vals: out, upd: s.upd}, nil
	case *Binary:
		return ev.evalBinary(x)
	case *Call:
		return ev.evalCall(x)
	case *Temporal:
		return ev.evalTemporal(x)
	default:
		return nil, fmt.Errorf("speclang: internal error: unknown expression node %T", e)
	}
}

func (ev *evaluator) evalBinary(x *Binary) (*series, error) {
	l, err := ev.eval(x.L)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.R)
	if err != nil {
		return nil, err
	}
	out := ev.newFloats()
	lv, rv := l.vals, r.vals
	switch x.Op {
	case tokPlus:
		for i := range out {
			out[i] = lv[i] + rv[i]
		}
	case tokMinus:
		for i := range out {
			out[i] = lv[i] - rv[i]
		}
	case tokStar:
		for i := range out {
			out[i] = lv[i] * rv[i]
		}
	case tokSlash:
		for i := range out {
			out[i] = lv[i] / rv[i]
		}
	case tokAnd:
		for i := range out {
			out[i] = b2f(truthy(lv[i]) && truthy(rv[i]))
		}
	case tokOr:
		for i := range out {
			out[i] = b2f(truthy(lv[i]) || truthy(rv[i]))
		}
	case tokArrow:
		for i := range out {
			out[i] = b2f(!truthy(lv[i]) || truthy(rv[i]))
		}
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		for i := range out {
			a, b := lv[i], rv[i]
			if math.IsNaN(a) || math.IsNaN(b) {
				// Comparisons involving NaN are false: an unverifiable
				// claim does not hold.
				out[i] = 0
				continue
			}
			var ok bool
			switch x.Op {
			case tokLT:
				ok = a < b
			case tokLE:
				ok = a <= b
			case tokGT:
				ok = a > b
			case tokGE:
				ok = a >= b
			case tokEQ:
				ok = a == b
			case tokNE:
				ok = a != b
			}
			out[i] = b2f(ok)
		}
	default:
		return nil, fmt.Errorf("speclang: internal error: unknown binary op %v", x.Op)
	}
	return &series{vals: out, upd: ev.orBits(l.upd, r.upd)}, nil
}

func (ev *evaluator) evalCall(x *Call) (*series, error) {
	args := make([]*series, len(x.Args))
	for i, a := range x.Args {
		s, err := ev.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	out := ev.newFloats()
	switch x.Func {
	case "prev":
		prevVals, _ := ev.prevOf(args[0])
		return &series{vals: prevVals, upd: args[0].upd}, nil
	case "delta":
		prevVals, _ := ev.prevOf(args[0])
		for i := range out {
			out[i] = args[0].vals[i] - prevVals[i]
		}
	case "rate":
		prevVals, gaps := ev.prevOf(args[0])
		for i := range out {
			out[i] = (args[0].vals[i] - prevVals[i]) / gaps[i]
		}
	case "changed":
		prevVals, _ := ev.prevOf(args[0])
		for i := range out {
			d := args[0].vals[i] - prevVals[i]
			out[i] = b2f(!math.IsNaN(d) && d != 0)
		}
	case "rise":
		for i := range out {
			cur := truthy(args[0].vals[i])
			was := i > 0 && truthy(args[0].vals[i-1])
			out[i] = b2f(cur && !was)
		}
	case "fall":
		for i := range out {
			cur := truthy(args[0].vals[i])
			was := i > 0 && truthy(args[0].vals[i-1])
			out[i] = b2f(!cur && was)
		}
	case "updated":
		for i := range out {
			out[i] = b2f(args[0].upd[i])
		}
	case "valid":
		for i, v := range args[0].vals {
			out[i] = b2f(!math.IsNaN(v) && !math.IsInf(v, 0))
		}
	case "abs":
		for i, v := range args[0].vals {
			out[i] = math.Abs(v)
		}
	case "min":
		for i := range out {
			out[i] = math.Min(args[0].vals[i], args[1].vals[i])
		}
	case "max":
		for i := range out {
			out[i] = math.Max(args[0].vals[i], args[1].vals[i])
		}
	case "cond":
		for i := range out {
			if truthy(args[0].vals[i]) {
				out[i] = args[1].vals[i]
			} else {
				out[i] = args[2].vals[i]
			}
		}
	default:
		return nil, fmt.Errorf("speclang: internal error: unknown builtin %q", x.Func)
	}
	upd := args[0].upd
	for _, a := range args[1:] {
		upd = ev.orBits(upd, a.upd)
	}
	return &series{vals: out, upd: upd}, nil
}

// prevOf returns, per step, the previous value of the series and the
// elapsed time (in seconds) between that value and the current one,
// according to the configured delta mode.
//
// Under DeltaNaive the previous value is simply the prior step's value.
// Under DeltaUpdateAware it is the value at the update *before* the one
// currently held — so during held steps of a slow signal, prev keeps
// pointing one update back and delta exposes the inter-update trend
// instead of reading as zero.
func (ev *evaluator) prevOf(s *series) (prevVals, gapSeconds []float64) {
	prevVals = ev.newFloats()
	gapSeconds = ev.newFloats()
	period := ev.period.Seconds()
	if ev.mode == DeltaNaive {
		for i := range prevVals {
			if i == 0 {
				prevVals[i] = math.NaN()
			} else {
				prevVals[i] = s.vals[i-1]
			}
			gapSeconds[i] = period
		}
		return prevVals, gapSeconds
	}
	prevUpd := math.NaN()
	prevStep := -1
	curVal := math.NaN()
	curStep := -1
	for i := 0; i < ev.n; i++ {
		if s.upd[i] {
			prevUpd, prevStep = curVal, curStep
			curVal, curStep = s.vals[i], i
		}
		prevVals[i] = prevUpd
		if prevStep >= 0 && curStep > prevStep {
			gapSeconds[i] = float64(curStep-prevStep) * period
		} else {
			gapSeconds[i] = period
		}
	}
	return prevVals, gapSeconds
}

// evalTemporal evaluates a bounded temporal window. The future
// operators (always/eventually) scan [t+lo, t+hi]; the past operators
// (historically/once) scan [t-hi, t-lo].
//
// Truncation policy: when the window extends past the end of the trace
// (future) or before its start (past), missing evidence is treated as
// benign — the existential operators do not report a violation they
// cannot confirm, and the universal ones fail only on a witnessed
// falsification. This matches the partial-oracle philosophy: only
// confirmed violations count.
func (ev *evaluator) evalTemporal(x *Temporal) (*series, error) {
	s, err := ev.eval(x.X)
	if err != nil {
		return nil, err
	}
	lo := int(x.Lo / ev.period)
	hi := int(x.Hi / ev.period)
	// Prefix sums of truthiness for O(1) window queries.
	pref := ev.newInts()
	for i := 0; i < ev.n; i++ {
		pref[i+1] = pref[i]
		if truthy(s.vals[i]) {
			pref[i+1]++
		}
	}
	exists := x.Op == "eventually" || x.Op == "once"
	out := ev.newFloats()
	for t := 0; t < ev.n; t++ {
		var a, b int
		var truncated bool
		if x.Past() {
			a, b = t-hi, t-lo
			if a < 0 {
				a = 0
				truncated = true
			}
		} else {
			a, b = t+lo, t+hi
			if b > ev.n-1 {
				b = ev.n - 1
				truncated = true
			}
		}
		if a > b {
			// Window entirely outside the trace: no evidence.
			out[t] = 1
			continue
		}
		count := pref[b+1] - pref[a]
		window := b - a + 1
		if exists {
			if count > 0 || truncated {
				out[t] = 1
			}
		} else {
			if count == window {
				out[t] = 1
			}
		}
	}
	return &series{vals: out, upd: s.upd}, nil
}

package speclang

import (
	"testing"
	"time"
)

func TestActivationImplicationAntecedent(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 0, 1, 1, 0, 0).
		add("x", 0, 0, 0, 0, 0, 0)
	res := evalOne(t, rs, src)
	if res.ActivationSteps != 2 {
		t.Errorf("activation = %d, want 2", res.ActivationSteps)
	}
	if res.Vacuous() {
		t.Error("exercised rule reported vacuous")
	}
	if got := res.ActivationRatio(); got != 2.0/6.0 {
		t.Errorf("ratio = %v", got)
	}
}

func TestVacuousSatisfaction(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 0, 0, 0).
		add("x", 9, 9, 9, 9) // would violate, but the antecedent never fires
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatal("violated despite false antecedent")
	}
	if !res.Vacuous() {
		t.Error("never-exercised rule not reported vacuous")
	}
}

func TestViolatedRuleNeverVacuous(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 1).
		add("x", 9, 9)
	res := evalOne(t, rs, src)
	if !res.Violated() || res.Vacuous() {
		t.Errorf("violated=%v vacuous=%v", res.Violated(), res.Vacuous())
	}
}

func TestActivationNonImplicationAssert(t *testing.T) {
	// A bare assert exercises every step: it claims something
	// unconditionally.
	rs := compileOne(t, `spec R { assert x <= 10 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 1, 2)
	res := evalOne(t, rs, src)
	if res.ActivationSteps != 3 {
		t.Errorf("activation = %d, want 3", res.ActivationSteps)
	}
}

func TestActivationMixedAsserts(t *testing.T) {
	// Activation is the union over asserts.
	rs := compileOne(t, `spec R {
  assert a -> x <= 10
  assert b -> x <= 10
}`, "a", "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("a", 1, 0, 0, 0).
		add("b", 0, 0, 1, 0).
		add("x", 0, 0, 0, 0)
	res := evalOne(t, rs, src)
	if res.ActivationSteps != 2 {
		t.Errorf("activation = %d, want 2", res.ActivationSteps)
	}
}

func TestActivationMonitorOutsideInitialState(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state A {
    when x > 0 => B
  }
  state B {
    when x <= 0 => A
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 1, 1, 0, 0, 1)
	res := evalOne(t, rs, src)
	// A step is active when the machine is outside its initial state
	// before or after the step's transition: entering B at step 1,
	// dwelling at step 2, exiting at step 3, and re-entering at step 5.
	if res.ActivationSteps != 4 {
		t.Errorf("activation = %d, want 4", res.ActivationSteps)
	}
	if res.Vacuous() {
		t.Error("entered monitor reported vacuous")
	}
}

func TestMonitorNeverLeavingInitialIsVacuous(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state A {
    when x > 100 => violate "boom"
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 0, 0)
	res := evalOne(t, rs, src)
	if !res.Vacuous() {
		t.Error("monitor that never left its initial state not vacuous")
	}
}

func TestRuleHorizon(t *testing.T) {
	period := 10 * time.Millisecond
	tests := []struct {
		name string
		src  string
		want time.Duration
	}{
		{"propositional", `spec R { assert x > 0 }`, 0},
		{"past only", `spec R { assert once[0:500ms](x > 0) }`, 0},
		{"single future", `spec R { assert eventually[0:400ms](x > 0) }`, 400 * time.Millisecond},
		{"nested future", `spec R { assert always[0:100ms](eventually[0:50ms](x > 0)) }`, 150 * time.Millisecond},
		{"future inside past", `spec R { assert once[0:1s](eventually[0:30ms](x > 0)) }`, 30 * time.Millisecond},
		{"via let", `spec R { let e = eventually[0:200ms](x > 0) assert e -> x > 0 }`, 200 * time.Millisecond},
		{"severity counts", `spec R { severity cond(eventually[0:60ms](x > 0), 1, 0) assert x > 0 }`, 60 * time.Millisecond},
		{"monitor guard", `monitor M {
			initial state A { when always[0:250ms](x > 0) => violate }
		}`, 250 * time.Millisecond},
		{"monitor after only", `monitor M {
			initial state A { after 5s => violate }
		}`, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rs := compileOne(t, tt.src, "x")
			r := rs.Rules()[0]
			if got := r.Horizon(period); got != tt.want {
				t.Errorf("Horizon = %v, want %v", got, tt.want)
			}
		})
	}
}

package speclang

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadSpecCorpus pins the parser's diagnostics for every
// malformed-spec class in specs/testdata/bad: each file must be
// rejected with a positioned *Error whose line, column and message
// match. Operators see exactly these strings when a `spec push` is
// refused, so position drift is a user-visible regression, not an
// internal detail.
func TestBadSpecCorpus(t *testing.T) {
	cases := []struct {
		file      string
		line, col int
		msg       string
	}{
		{"stray-toplevel.spec", 2, 1, "expected 'const', 'spec' or 'monitor'"},
		{"missing-assert.spec", 1, 1, "has no assert clause"},
		{"unbounded-temporal.spec", 2, 18, "'always' requires a bound"},
		{"reversed-bounds.spec", 2, 12, "invalid temporal bounds [5s:1s]"},
		{"unterminated-string.spec", 1, 19, "newline in string"},
		{"unclosed-monitor.spec", 4, 1, "expected 'when' or 'after', found end of input"},
		{"bad-const.spec", 1, 15, "expected number, found 'fast'"},
		{"duplicate-severity.spec", 3, 5, "duplicate severity clause"},
	}

	dir := filepath.Join("..", "..", "specs", "testdata", "bad")
	covered := make(map[string]bool, len(cases))
	for _, tc := range cases {
		covered[tc.file] = true
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			_, err = Parse(string(src))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.file)
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *speclang.Error: %v", err, err)
			}
			if pe.Line != tc.line || pe.Col != tc.col {
				t.Errorf("error at %d:%d, want %d:%d (%s)", pe.Line, pe.Col, tc.line, tc.col, pe.Msg)
			}
			if !strings.Contains(pe.Msg, tc.msg) {
				t.Errorf("message %q does not contain %q", pe.Msg, tc.msg)
			}
		})
	}

	// The corpus and the table must stay in sync: a bad-spec file
	// without a pinned diagnostic is an untested error class.
	files, err := filepath.Glob(filepath.Join(dir, "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s", dir)
	}
	for _, f := range files {
		if !covered[filepath.Base(f)] {
			t.Errorf("corpus file %s has no expected diagnostic in the table", filepath.Base(f))
		}
	}
}

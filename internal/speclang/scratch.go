package speclang

// Scratch recycles the per-step buffers the offline evaluator
// allocates: one float64 slab per expression node, plus the bool masks
// (freshness, warmup, activation) and the prefix-sum vectors of the
// temporal operators. The offline evaluator is the hot path of
// campaign-scale runs — replaying a fleet archive or regenerating the
// paper's Table I evaluates thousands of rule×trace pairs over the
// same step count — and without reuse every one of them pays a fresh
// set of slabs. A Scratch turns that into a bump allocator: slabs are
// handed out in order within one rule evaluation and all reclaimed at
// the start of the next.
//
// Lifetime contract: buffers obtained from a Scratch are valid only
// until the next rule evaluation that uses the same Scratch. Nothing
// in a RuleResult references scratch memory (violations carry scalars
// and message strings only), so results outlive the scratch freely.
//
// A Scratch is NOT safe for concurrent use. Concurrent evaluations —
// the monitor engine's parallel CheckGrid, the recheck shards — must
// use one Scratch per worker (a sync.Pool of them works well).
type Scratch struct {
	n      int // slab length the pools are sized for
	floats [][]float64
	bools  [][]bool
	ints   [][]int
	nf, nb, ni int // slabs handed out since the last begin
}

// NewScratch returns an empty scratch. It sizes itself lazily to the
// first evaluation's step count and resizes whenever that changes.
func NewScratch() *Scratch { return &Scratch{} }

// begin readies the scratch for one rule evaluation over n steps:
// every slab handed out earlier is reclaimed, and pools sized for a
// different step count are dropped.
func (s *Scratch) begin(n int) {
	if s.n != n {
		s.floats, s.bools, s.ints = nil, nil, nil
		s.n = n
	}
	s.nf, s.nb, s.ni = 0, 0, 0
}

// grabFloats returns a zeroed slab of n float64s.
func (s *Scratch) grabFloats() []float64 {
	if s.nf < len(s.floats) {
		b := s.floats[s.nf]
		s.nf++
		clear(b)
		return b
	}
	b := make([]float64, s.n)
	s.floats = append(s.floats, b)
	s.nf++
	return b
}

// grabBools returns a zeroed slab of n bools.
func (s *Scratch) grabBools() []bool {
	if s.nb < len(s.bools) {
		b := s.bools[s.nb]
		s.nb++
		clear(b)
		return b
	}
	b := make([]bool, s.n)
	s.bools = append(s.bools, b)
	s.nb++
	return b
}

// grabInts returns a zeroed slab of n+1 ints (the temporal prefix sums
// need one extra element).
func (s *Scratch) grabInts() []int {
	if s.ni < len(s.ints) {
		b := s.ints[s.ni]
		s.ni++
		clear(b)
		return b
	}
	b := make([]int, s.n+1)
	s.ints = append(s.ints, b)
	s.ni++
	return b
}

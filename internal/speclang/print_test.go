package speclang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stripPositions zeroes source positions so parsed-vs-reparsed ASTs can
// be compared structurally.
func stripPositions(f *File) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *NumberLit:
			x.pos = pos{}
		case *BoolLit:
			x.pos = pos{}
		case *Ident:
			x.pos = pos{}
		case *Unary:
			x.pos = pos{}
			walkExpr(x.X)
		case *Binary:
			x.pos = pos{}
			walkExpr(x.L)
			walkExpr(x.R)
		case *Call:
			x.pos = pos{}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Temporal:
			x.pos = pos{}
			walkExpr(x.X)
		}
	}
	for i := range f.Consts {
		f.Consts[i].pos = pos{}
	}
	for i := range f.Specs {
		s := &f.Specs[i]
		s.pos = pos{}
		for j := range s.Lets {
			s.Lets[j].pos = pos{}
			walkExpr(s.Lets[j].X)
		}
		for j := range s.Warmups {
			s.Warmups[j].pos = pos{}
			if s.Warmups[j].On != nil {
				walkExpr(s.Warmups[j].On)
			}
		}
		if s.Severity != nil {
			walkExpr(s.Severity)
		}
		for _, a := range s.Asserts {
			walkExpr(a)
		}
	}
	for i := range f.Monitors {
		m := &f.Monitors[i]
		m.pos = pos{}
		for j := range m.Lets {
			m.Lets[j].pos = pos{}
			walkExpr(m.Lets[j].X)
		}
		for j := range m.Warmups {
			m.Warmups[j].pos = pos{}
			if m.Warmups[j].On != nil {
				walkExpr(m.Warmups[j].On)
			}
		}
		if m.Severity != nil {
			walkExpr(m.Severity)
		}
		for j := range m.States {
			st := &m.States[j]
			st.pos = pos{}
			for k := range st.Transitions {
				st.Transitions[k].pos = pos{}
				if st.Transitions[k].Guard != nil {
					walkExpr(st.Transitions[k].Guard)
				}
			}
		}
	}
}

// requireRoundTrip parses src, formats it, reparses, and requires
// structurally identical ASTs.
func requireRoundTrip(t *testing.T, src string) {
	t.Helper()
	f1, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := Format(f1)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of formatted output failed: %v\n--- output ---\n%s", err, printed)
	}
	stripPositions(f1)
	stripPositions(f2)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("round trip changed the AST\n--- output ---\n%s\n--- first ---\n%#v\n--- second ---\n%#v", printed, f1, f2)
	}
	// The printer is canonical: formatting its own output is a fixed
	// point.
	if again := Format(f2); again != printed {
		t.Fatalf("Format is not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
	}
}

func TestFormatRoundTripHandwritten(t *testing.T) {
	sources := []string{
		`spec R { assert x > 0 }`,
		`const k = -2.5
spec R "doc string with \"quotes\"" {
    warmup 100ms
    warmup 250ms on rise(b)
    let d = delta(x) * k
    severity abs(d)
    assert (b -> d <= 0.5) && eventually[0:400ms](d <= 0)
    assert once[20ms:60ms](x > 0) || historically[0:30ms](b)
}`,
		`monitor M "headway" {
    let h = range / v
    initial state Normal {
        when b && h < 1 => Low
    }
    state Low {
        when !b || h >= 1 => Normal
        after 5s => violate "not recovered"
        when h < 0.2 => violate "critical" then Normal
    }
}`,
		`spec Assoc { assert a - b - c == a - (b - c) -> (a || b) && c }`,
		`spec Cmp { assert (a < b) == (c < d) }`,
		`spec Neg { assert -x * -y >= -(x + y) }`,
		`spec Deep { assert cond(a, min(x, y), max(x, y)) != 0 }`,
	}
	for i, src := range sources {
		t.Run(strings.Fields(src)[1], func(t *testing.T) {
			_ = i
			requireRoundTrip(t, src)
		})
	}
}

func TestFormatRoundTripOfShippedRules(t *testing.T) {
	// The repository's own rule sets must round trip.
	// (Imported lazily to avoid a package cycle: the sources are
	// plain constants, duplicated here via the compile helpers in the
	// rules package tests.)
	for _, src := range []string{ruleLikeStrict, ruleLikeRelaxed} {
		requireRoundTrip(t, src)
	}
}

// Structural stand-ins mirroring the shipped rule sets' feature usage.
const ruleLikeStrict = `
spec Rule0 { warmup 100ms assert ServiceACC -> !ACCEnabled }
monitor Rule1 {
    warmup 100ms
    let headway = TargetRange / Velocity
    initial state Normal { when VehicleAhead && headway < 1 => Low }
    state Low {
        when !VehicleAhead || headway >= 1 => Normal
        after 5s => violate "headway below 1.0s not recovered within 5s"
    }
}
spec Rule2 {
    warmup 100ms
    let desiredDist = cond(SelHeadway == 1, 1, cond(SelHeadway == 3, 2.2, 1.5)) * Velocity
    severity delta(RequestedTorque)
    assert (VehicleAhead && TargetRange < 0.5 * desiredDist) -> delta(RequestedTorque) <= 0
}`

const ruleLikeRelaxed = `
spec Rule4 {
    warmup 100ms
    severity delta(RequestedTorque)
    assert (Velocity > ACCSetSpeed + 0.5) -> eventually[0:400ms](delta(RequestedTorque) <= 0.5)
}
spec Rule5 {
    warmup 100ms
    severity RequestedDecel
    assert BrakeRequested -> eventually[0:20ms](RequestedDecel <= 0)
}`

// randomExpr builds a random well-formed expression tree.
func randomExpr(rng *rand.Rand, depth int, idents []string) Expr {
	if depth <= 0 || rng.Float64() < 0.25 {
		switch rng.Intn(3) {
		case 0:
			// The parser represents negative literals as unary minus
			// over a positive literal, so only generate non-negative
			// ones here.
			return &NumberLit{Value: float64(rng.Intn(21)) / 2}
		case 1:
			return &BoolLit{Value: rng.Intn(2) == 0}
		default:
			return &Ident{Name: idents[rng.Intn(len(idents))]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		op := tokNot
		if rng.Intn(2) == 0 {
			op = tokMinus
		}
		return &Unary{Op: op, X: randomExpr(rng, depth-1, idents)}
	case 1, 2, 3, 4:
		ops := []tokenKind{tokArrow, tokOr, tokAnd, tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE, tokPlus, tokMinus, tokStar, tokSlash}
		return &Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, depth-1, idents),
			R:  randomExpr(rng, depth-1, idents),
		}
	case 5:
		fns := []struct {
			name  string
			arity int
		}{{"prev", 1}, {"delta", 1}, {"rate", 1}, {"changed", 1}, {"rise", 1},
			{"fall", 1}, {"valid", 1}, {"abs", 1}, {"min", 2}, {"max", 2}, {"cond", 3}}
		f := fns[rng.Intn(len(fns))]
		args := make([]Expr, f.arity)
		for i := range args {
			args[i] = randomExpr(rng, depth-1, idents)
		}
		return &Call{Func: f.name, Args: args}
	case 6:
		return &Call{Func: "updated", Args: []Expr{&Ident{Name: idents[rng.Intn(len(idents))]}}}
	default:
		ops := []string{"always", "eventually", "once", "historically"}
		lo := time.Duration(rng.Intn(5)) * 10 * time.Millisecond
		hi := lo + time.Duration(rng.Intn(5))*10*time.Millisecond
		return &Temporal{
			Op: ops[rng.Intn(len(ops))],
			Lo: lo, Hi: hi,
			X: randomExpr(rng, depth-1, idents),
		}
	}
}

// TestFormatRoundTripRandomized property-tests print/parse over random
// expression trees.
func TestFormatRoundTripRandomized(t *testing.T) {
	idents := []string{"x", "y", "b"}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := &File{
			Specs: []Spec{{
				Name:    "R",
				Asserts: []Expr{randomExpr(rng, 1+rng.Intn(5), idents)},
			}},
		}
		printed := Format(f)
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, printed)
		}
		stripPositions(f)
		stripPositions(re)
		if !reflect.DeepEqual(f, re) {
			t.Fatalf("seed %d: round trip changed the AST\n%s", seed, printed)
		}
	}
}

package speclang

import (
	"math/rand"
	"testing"
	"time"
)

func TestParsePastOperators(t *testing.T) {
	f, err := Parse(`spec R { assert once[0:100ms](x) && historically[20ms:50ms](x) }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	top, ok := f.Specs[0].Asserts[0].(*Binary)
	if !ok {
		t.Fatalf("top = %T", f.Specs[0].Asserts[0])
	}
	l, ok := top.L.(*Temporal)
	if !ok || l.Op != "once" || !l.Past() {
		t.Errorf("lhs = %+v", top.L)
	}
	r, ok := top.R.(*Temporal)
	if !ok || r.Op != "historically" || !r.Past() {
		t.Errorf("rhs = %+v", top.R)
	}
	fut, err := Parse(`spec R { assert always[0:1s](x) }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a := fut.Specs[0].Asserts[0].(*Temporal); a.Past() {
		t.Error("always classified as past")
	}
}

func TestParsePastRequiresBounds(t *testing.T) {
	if _, err := Parse(`spec R { assert once(x) }`); err == nil {
		t.Fatal("unbounded once accepted")
	}
}

func TestEvalOnce(t *testing.T) {
	rs := compileOne(t, `spec R { assert once[0:30ms](x > 0) }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 0, 0, 0, 1, 0, 0, 0, 0, 0)
	res := evalOne(t, rs, src)
	// x>0 only at step 4. Steps 0..2 are start-truncated (benign);
	// step 3's window [0,3] is complete and witness-free (violation);
	// the witness covers steps 4..7; steps 8..9 violate again.
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if res.Violations[0].StartStep != 3 || res.Violations[0].EndStep != 4 {
		t.Errorf("first interval [%d,%d), want [3,4)", res.Violations[0].StartStep, res.Violations[0].EndStep)
	}
	if res.Violations[1].StartStep != 8 || res.Violations[1].EndStep != 10 {
		t.Errorf("second interval [%d,%d), want [8,10)", res.Violations[1].StartStep, res.Violations[1].EndStep)
	}
}

func TestEvalHistorically(t *testing.T) {
	// Debounce: flag only when the condition has held for 30ms.
	rs := compileOne(t, `spec R { assert !(historically[0:20ms](x > 0)) }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 1, 1, 0, 1, 1, 1, 1, 0)
	res := evalOne(t, rs, src)
	// historically needs x>0 at steps t-2..t: true at t=6,7 only
	// (steps 4,5,6 and 5,6,7). Steps 1,2 are start-truncated but all
	// available entries are true -> historically true -> violation?
	// Step 1: window [0,1] truncated to... lo=0,hi=2: [max(0,-1), 1] =
	// [0,1]: x = 0,1 -> not all true -> no violation at 1. Step 2:
	// [0,2] = 0,1,1 -> false. So violations exactly at 6 and 7.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if res.Violations[0].StartStep != 6 || res.Violations[0].EndStep != 8 {
		t.Errorf("interval [%d,%d), want [6,8)", res.Violations[0].StartStep, res.Violations[0].EndStep)
	}
}

func TestEvalHistoricallyStartTruncation(t *testing.T) {
	// All-true prefix: start-truncated windows are satisfied by their
	// available entries, so a rule requiring historically is satisfied
	// from step 0.
	rs := compileOne(t, `spec R { assert historically[0:50ms](x > 0) }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 1, 1, 1, 1, 1, 1, 1, 1)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalOnceWithLowBound(t *testing.T) {
	// once[20ms:40ms]: the witness must be 2..4 steps in the past.
	rs := compileOne(t, `spec R { assert once[20ms:40ms](x > 0) }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 1, 0, 0, 0, 0, 0, 0)
	res := evalOne(t, rs, src)
	// Witness at step 1 covers t in {3,4,5}. t in {0,1} has an empty
	// window (benign); t=2 is truncated ([0,0]: x=0, truncated -> 1).
	// t=6: window [2,4] no witness -> violation; t=7: [3,5] -> violation.
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 6 || res.Violations[0].EndStep != 8 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestStreamPastEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).
		add("x", 0, 1, 0, 0, 1, 1, 0, 0, 0, 1, 0, 0, 0, 0)
	requireEquivalent(t, `spec R { assert once[0:30ms](x > 0) }`, src, EvalOptions{}, "x")
	requireEquivalent(t, `spec R { assert once[20ms:40ms](x > 0) }`, src, EvalOptions{}, "x")
	requireEquivalent(t, `spec R { assert historically[0:20ms](x > 0) -> once[0:50ms](x <= 0) }`, src, EvalOptions{}, "x")
}

func TestStreamPastZeroLatency(t *testing.T) {
	// A past-only rule has no horizon: violations are decidable on the
	// step they occur.
	rs := compileOne(t, `spec R { assert once[0:30ms](x > 0) }`, "x")
	sc, err := rs.NewStreamChecker([]string{"x"}, 10*time.Millisecond, EvalOptions{})
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	beginAt := -1
	vals := []float64{1, 0, 0, 0, 0, 0, 0}
	for step, v := range vals {
		events, err := sc.Step([]float64{v}, []bool{true})
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for _, e := range events {
			if e.Kind == ViolationBegin && beginAt < 0 {
				beginAt = step
			}
		}
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Witness at step 0 covers steps 0..3; step 4's window [1,4] has
	// no witness and is complete -> violation begins at step 4, and it
	// must be delivered at step 4.
	if beginAt != 4 {
		t.Errorf("begin delivered at step %d, want 4", beginAt)
	}
}

func TestStreamPastRandomizedEquivalence(t *testing.T) {
	ruleSrcs := []string{
		`spec P1 { assert once[0:40ms](x > 0.5) }`,
		`spec P2 { assert historically[10ms:30ms](x < 0.9) }`,
		`spec P3 { assert rise(a) -> once[0:60ms](x > 0.3) }`,
		`spec P4 { severity x assert historically[0:20ms](a) -> x <= 0.7 }`,
		`monitor PM {
			initial state N { when historically[0:30ms](x > 0.6) => violate "held high" then C }
			state C { when x <= 0.6 => N }
		}`,
	}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		n := 3 + rng.Intn(100)
		src := newMemSource(10 * time.Millisecond)
		xv := make([]float64, n)
		av := make([]float64, n)
		xu := make([]bool, n)
		for i := 0; i < n; i++ {
			xv[i] = rng.Float64()
			if rng.Float64() < 0.5 {
				av[i] = 1
			}
			xu[i] = true
		}
		src.addWithUpd("x", xv, xu)
		src.addWithUpd("a", av, append([]bool(nil), xu...))
		for _, ruleSrc := range ruleSrcs {
			requireEquivalent(t, ruleSrc, src, EvalOptions{}, "x", "a")
		}
	}
}

package speclang

import (
	"math"
	"strings"
	"testing"
	"time"
)

// memSource is an in-memory Source for tests.
type memSource struct {
	period time.Duration
	vals   map[string][]float64
	upd    map[string][]bool
	n      int
}

func newMemSource(period time.Duration) *memSource {
	return &memSource{
		period: period,
		vals:   make(map[string][]float64),
		upd:    make(map[string][]bool),
	}
}

// add registers a signal updated at every step.
func (m *memSource) add(name string, vals ...float64) *memSource {
	upd := make([]bool, len(vals))
	for i := range upd {
		upd[i] = true
	}
	return m.addWithUpd(name, vals, upd)
}

func (m *memSource) addWithUpd(name string, vals []float64, upd []bool) *memSource {
	m.vals[name] = vals
	m.upd[name] = upd
	if len(vals) > m.n {
		m.n = len(vals)
	}
	return m
}

func (m *memSource) NumSteps() int             { return m.n }
func (m *memSource) StepPeriod() time.Duration { return m.period }
func (m *memSource) Values(name string) ([]float64, bool) {
	v, ok := m.vals[name]
	return v, ok
}
func (m *memSource) Updated(name string) ([]bool, bool) {
	u, ok := m.upd[name]
	return u, ok
}

func compileOne(t *testing.T, src string, signals ...string) *RuleSet {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rs, err := Compile(f, signals)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return rs
}

func evalOne(t *testing.T, rs *RuleSet, src Source) RuleResult {
	t.Helper()
	results, err := rs.Eval(src, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	return results[0]
}

// ---------- lexer ----------

func TestLexerTokens(t *testing.T) {
	lx := newLexer(`foo 3.5 400ms 5s "hi" { } ( ) [ ] : , = -> => || && ! < <= > >= == != + - * /`)
	want := []tokenKind{
		tokIdent, tokNumber, tokDuration, tokDuration, tokString,
		tokLBrace, tokRBrace, tokLParen, tokRParen, tokLBracket,
		tokRBracket, tokColon, tokComma, tokAssign, tokArrow,
		tokFatArrow, tokOr, tokAnd, tokNot, tokLT, tokLE, tokGT, tokGE,
		tokEQ, tokNE, tokPlus, tokMinus, tokStar, tokSlash, tokEOF,
	}
	for i, w := range want {
		tk, err := lx.next()
		if err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if tk.kind != w {
			t.Fatalf("token %d = %v, want %v", i, tk.kind, w)
		}
	}
}

func TestLexerDurations(t *testing.T) {
	tests := []struct {
		src  string
		want time.Duration
	}{
		{"400ms", 400 * time.Millisecond},
		{"5s", 5 * time.Second},
		{"0.5s", 500 * time.Millisecond},
		{"2.5ms", 2500 * time.Microsecond},
	}
	for _, tt := range tests {
		lx := newLexer(tt.src)
		tk, err := lx.next()
		if err != nil {
			t.Fatalf("%q: %v", tt.src, err)
		}
		if tk.kind != tokDuration || tk.dur != tt.want {
			t.Errorf("%q = %v %v, want duration %v", tt.src, tk.kind, tk.dur, tt.want)
		}
	}
}

func TestLexerNumberNotDuration(t *testing.T) {
	// "5sec" should lex as number 5 then identifier "sec"? No: 's'
	// followed by an identifier byte is not a duration suffix, so this
	// is 5 then ident "sec".
	lx := newLexer("5sec")
	tk, err := lx.next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if tk.kind != tokNumber || tk.num != 5 {
		t.Fatalf("first token = %v %v, want number 5", tk.kind, tk.num)
	}
	tk, err = lx.next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if tk.kind != tokIdent || tk.text != "sec" {
		t.Fatalf("second token = %v %q, want ident sec", tk.kind, tk.text)
	}
}

func TestLexerScientificNotation(t *testing.T) {
	lx := newLexer("4.94e-324 1e3")
	tk, _ := lx.next()
	if tk.kind != tokNumber || tk.num != 4.94e-324 {
		t.Errorf("token = %v %v", tk.kind, tk.num)
	}
	tk, _ = lx.next()
	if tk.kind != tokNumber || tk.num != 1000 {
		t.Errorf("token = %v %v", tk.kind, tk.num)
	}
}

func TestLexerComments(t *testing.T) {
	lx := newLexer("// a comment\nfoo // trailing\n")
	tk, _ := lx.next()
	if tk.kind != tokIdent || tk.text != "foo" {
		t.Fatalf("token = %v %q", tk.kind, tk.text)
	}
	tk, _ = lx.next()
	if tk.kind != tokEOF {
		t.Fatalf("token = %v, want EOF", tk.kind)
	}
}

func TestLexerStringEscapes(t *testing.T) {
	lx := newLexer(`"a\"b\\c\nd"`)
	tk, err := lx.next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if tk.text != "a\"b\\c\nd" {
		t.Errorf("string = %q", tk.text)
	}
}

func TestLexerErrors(t *testing.T) {
	tests := []string{"@", "|x", "&x", `"unterminated`, `"bad\q"`, "\"nl\n\""}
	for _, src := range tests {
		lx := newLexer(src)
		var err error
		for i := 0; i < 10; i++ {
			var tk token
			tk, err = lx.next()
			if err != nil || tk.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lexing %q did not fail", src)
		}
	}
}

// ---------- parser ----------

func TestParseMinimalSpec(t *testing.T) {
	f, err := Parse(`spec R "doc" { assert x > 0 }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Specs) != 1 || f.Specs[0].Name != "R" || f.Specs[0].Description != "doc" {
		t.Fatalf("parsed %+v", f.Specs)
	}
}

func TestParseFullSpec(t *testing.T) {
	src := `
const limit = 0.5
const negative = -3

spec Rule "with everything" {
  let d = delta(x)
  warmup 100ms
  warmup 200ms on rise(b)
  severity d
  assert (b -> d <= limit) && eventually[0:400ms](d <= 0)
  assert !b || x >= negative
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := f.Specs[0]
	if len(s.Lets) != 1 || len(s.Warmups) != 2 || s.Severity == nil || len(s.Asserts) != 2 {
		t.Fatalf("parsed spec %+v", s)
	}
	if f.Consts[1].Value != -3 {
		t.Errorf("negative const = %v", f.Consts[1].Value)
	}
}

func TestParseMonitor(t *testing.T) {
	src := `
monitor M "headway" {
  let h = range / v
  initial state Normal {
    when b && h < 1.0 => Low
  }
  state Low {
    when !b || h >= 1.0 => Normal
    after 5s => violate "not recovered"
  }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := f.Monitors[0]
	if len(m.States) != 2 || !m.States[0].Initial {
		t.Fatalf("states: %+v", m.States)
	}
	low := m.States[1]
	if len(low.Transitions) != 2 {
		t.Fatalf("transitions: %+v", low.Transitions)
	}
	if low.Transitions[1].Kind != TransAfter || low.Transitions[1].Deadline != 5*time.Second || !low.Transitions[1].Violate {
		t.Errorf("after transition: %+v", low.Transitions[1])
	}
}

func TestParseViolateThen(t *testing.T) {
	src := `
monitor M {
  state A {
    when x > 0 => violate "boom" then B
  }
  state B {
    when x <= 0 => A
  }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr := f.Monitors[0].States[0].Transitions[0]
	if !tr.Violate || tr.Target != "B" || tr.Msg != "boom" {
		t.Errorf("transition: %+v", tr)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse(`spec R { assert a || b && c -> d }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Top node must be the implication.
	top, ok := f.Specs[0].Asserts[0].(*Binary)
	if !ok || top.Op != tokArrow {
		t.Fatalf("top = %+v", f.Specs[0].Asserts[0])
	}
	or, ok := top.L.(*Binary)
	if !ok || or.Op != tokOr {
		t.Fatalf("lhs = %+v", top.L)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != tokAnd {
		t.Fatalf("or rhs = %+v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	f, err := Parse(`spec R { assert a + b * c < d }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmp, ok := f.Specs[0].Asserts[0].(*Binary)
	if !ok || cmp.Op != tokLT {
		t.Fatalf("top = %+v", f.Specs[0].Asserts[0])
	}
	add, ok := cmp.L.(*Binary)
	if !ok || add.Op != tokPlus {
		t.Fatalf("cmp lhs = %+v", cmp.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != tokStar {
		t.Fatalf("add rhs = %+v", add.R)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty spec", `spec R { }`, "no assert"},
		{"stray token", `garbage`, "expected 'const'"},
		{"unbounded temporal", `spec R { assert always(x) }`, "requires a bound"},
		{"bad bounds", `spec R { assert always[5s:1s](x) }`, "invalid temporal bounds"},
		{"monitor no states", `monitor M { }`, "no states"},
		{"after zero", `monitor M { state A { after 0s => violate } }`, "must be positive"},
		{"missing arrow", `monitor M { state A { when x A } }`, "'=>'"},
		{"bad transition", `monitor M { state A { banana } }`, "'when' or 'after'"},
		{"duplicate severity", `spec R { severity x severity y assert x }`, "duplicate severity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tt.src)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err.Error(), tt.want)
			}
		})
	}
}

// ---------- compile ----------

func TestCompileUnknownIdentifier(t *testing.T) {
	f, err := Parse(`spec R { assert nosuch > 0 }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Compile(f, []string{"x"}); err == nil {
		t.Fatal("unknown identifier accepted")
	}
}

func TestCompileLetOrdering(t *testing.T) {
	f, err := Parse(`spec R { let a = b let b = x assert a > 0 }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Compile(f, []string{"x"}); err == nil {
		t.Fatal("forward let reference accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		signals []string
		want    string
	}{
		{"dup const", "const a = 1\nconst a = 2\nspec R { assert x }", []string{"x"}, "duplicate const"},
		{"const shadows signal", "const x = 1\nspec R { assert x }", []string{"x"}, "shadows a signal"},
		{"let shadows signal", "spec R { let x = 1 assert x }", []string{"x"}, "shadows a signal"},
		{"dup rule", "spec R { assert x }\nspec R { assert x }", []string{"x"}, "duplicate rule"},
		{"dup state", "monitor M { state A { when x => A } state A { when x => A } }", []string{"x"}, "duplicate state"},
		{"two initials", "monitor M { initial state A { when x => B } initial state B { when x => A } }", []string{"x"}, "multiple initial"},
		{"bad target", "monitor M { state A { when x => Nowhere } }", []string{"x"}, "unknown target"},
		{"no target no violate", "monitor M { state A { when x => violate } }", []string{"x"}, ""}, // valid
		{"bad arity", "spec R { assert min(x) > 0 }", []string{"x"}, "takes 2 argument"},
		{"unknown func", "spec R { assert frob(x) }", []string{"x"}, "unknown function"},
		{"updated non-signal", "spec R { assert updated(x + 1) }", []string{"x"}, "requires a signal name"},
		{"bad warmup", "spec R { warmup 0s assert x }", []string{"x"}, "must be positive"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = Compile(f, tt.signals)
			if tt.want == "" {
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Compile succeeded")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err.Error(), tt.want)
			}
		})
	}
}

func TestRuleSetLookup(t *testing.T) {
	rs := compileOne(t, `spec A { assert x } spec B { assert x }`, "x")
	if len(rs.Rules()) != 2 {
		t.Fatalf("Rules = %d, want 2", len(rs.Rules()))
	}
	if r, ok := rs.Rule("B"); !ok || r.Name != "B" {
		t.Errorf("Rule(B) = %+v, %v", r, ok)
	}
	if _, ok := rs.Rule("C"); ok {
		t.Error("Rule(C) found")
	}
}

// ---------- evaluation ----------

func TestEvalSimpleAssert(t *testing.T) {
	rs := compileOne(t, `spec R { assert x <= 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 0, 1, 2, 0, 0, 3, 0)
	res := evalOne(t, rs, src)
	if !res.Violated() {
		t.Fatal("not violated")
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %+v, want 2 intervals", res.Violations)
	}
	v := res.Violations[0]
	if v.StartStep != 2 || v.EndStep != 4 {
		t.Errorf("first interval [%d,%d), want [2,4)", v.StartStep, v.EndStep)
	}
	if v.Start != 20*time.Millisecond || v.Duration() != 20*time.Millisecond {
		t.Errorf("interval times %v +%v", v.Start, v.Duration())
	}
}

func TestEvalImplication(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 1, 1, 0).
		add("x", 5, 5, 0, 5)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 1 || res.Violations[0].EndStep != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalNaNComparisonIsFalse(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 1, 1).
		add("x", math.NaN(), -1)
	res := evalOne(t, rs, src)
	// NaN <= 0 is false, so step 0 violates.
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 0 || res.Violations[0].EndStep != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalNaNAntecedentBenign(t *testing.T) {
	rs := compileOne(t, `spec R { assert x > 5 -> b }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 0).
		add("x", math.NaN(), 1)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("NaN antecedent produced violations: %+v", res.Violations)
	}
}

func TestEvalArithmetic(t *testing.T) {
	rs := compileOne(t, `const k = 2
spec R { assert x * k + 1 == y }`, "x", "y")
	src := newMemSource(10*time.Millisecond).
		add("x", 1, 2, 3).
		add("y", 3, 5, 8)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalBuiltins(t *testing.T) {
	rs := compileOne(t, `spec R {
  assert abs(x) >= 0 || true
  assert min(x, y) <= max(x, y)
  assert cond(b, x, y) == cond(!b, y, x)
}`, "x", "y", "b")
	src := newMemSource(10*time.Millisecond).
		add("x", -3, 2, 7).
		add("y", 1, -9, 7).
		add("b", 1, 0, 1)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalDeltaNaive(t *testing.T) {
	rs := compileOne(t, `spec R { assert delta(x) <= 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 5, 5, 6, 6, 4)
	res, err := rs.Eval(src, EvalOptions{DeltaMode: DeltaNaive})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Step 0: delta NaN -> NaN <= 0 is false -> violation at step 0.
	// Step 2: 6-5=1 -> violation.
	if len(res[0].Violations) != 2 {
		t.Fatalf("violations = %+v", res[0].Violations)
	}
	if res[0].Violations[1].StartStep != 2 || res[0].Violations[1].EndStep != 3 {
		t.Errorf("second violation = %+v", res[0].Violations[1])
	}
}

func TestEvalDeltaUpdateAwareOnSlowSignal(t *testing.T) {
	// A slow signal updated every 4 steps, increasing at each update.
	vals := []float64{10, 10, 10, 10, 20, 20, 20, 20, 30, 30, 30, 30}
	upd := []bool{true, false, false, false, true, false, false, false, true, false, false, false}
	src := newMemSource(10*time.Millisecond).addWithUpd("x", vals, upd)

	rs := compileOne(t, `spec R { assert delta(x) <= 0 }`, "x")

	// Naive mode: the increase is visible only at update steps 4 and 8.
	naive, err := rs.Eval(src, EvalOptions{DeltaMode: DeltaNaive})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	naiveSteps := 0
	for _, v := range naive[0].Violations {
		naiveSteps += v.Steps()
	}

	// Update-aware mode: the held steps carry the inter-update trend,
	// so the sustained increase is visible at (almost) every step.
	aware, err := rs.Eval(src, EvalOptions{DeltaMode: DeltaUpdateAware})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	awareSteps := 0
	for _, v := range aware[0].Violations {
		awareSteps += v.Steps()
	}
	if awareSteps <= naiveSteps {
		t.Errorf("update-aware steps %d <= naive steps %d; the multi-rate fix is not working", awareSteps, naiveSteps)
	}
	if awareSteps < 8 {
		t.Errorf("update-aware saw only %d violating steps, want the held trend visible", awareSteps)
	}
}

func TestEvalPrevUpdateAware(t *testing.T) {
	vals := []float64{10, 10, 20, 20}
	upd := []bool{true, false, true, false}
	src := newMemSource(10*time.Millisecond).addWithUpd("x", vals, upd)
	rs := compileOne(t, `spec R { assert prev(x) == 10 -> x == 20 }`, "x")
	res, err := rs.Eval(src, EvalOptions{DeltaMode: DeltaUpdateAware})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// prev(x) is NaN until the second update, then 10 at steps 2..3
	// where x is 20: no violations.
	if res[0].Violated() {
		t.Fatalf("violations = %+v", res[0].Violations)
	}
}

func TestEvalRate(t *testing.T) {
	rs := compileOne(t, `spec R { assert rate(x) <= 100.0 || !valid(rate(x)) }`, "x")
	// x rises 2 per 10ms step = 200/s: violation at every step after 0.
	src := newMemSource(10*time.Millisecond).add("x", 0, 2, 4, 6)
	res, err := rs.Eval(src, EvalOptions{DeltaMode: DeltaNaive})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	steps := 0
	for _, v := range res[0].Violations {
		steps += v.Steps()
	}
	if steps != 3 {
		t.Fatalf("violating steps = %d, want 3 (%+v)", steps, res[0].Violations)
	}
}

func TestEvalRiseFallChanged(t *testing.T) {
	rs := compileOne(t, `spec R {
  assert rise(b) -> x == 1
  assert fall(b) -> x == 2
  assert changed(y) -> x == 3
}`, "b", "x", "y")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 1, 1, 0).
		add("x", 0, 1, 0, 2).
		add("y", 5, 5, 5, 5)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalUpdatedBuiltin(t *testing.T) {
	vals := []float64{1, 1, 2, 2}
	upd := []bool{true, false, true, false}
	src := newMemSource(10*time.Millisecond).addWithUpd("x", vals, upd)
	rs := compileOne(t, `spec R { assert updated(x) -> true }`, "x")
	res, err := rs.Eval(src, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res[0].Violated() {
		t.Fatal("trivial updated rule violated")
	}
}

func TestEvalEventuallyBounded(t *testing.T) {
	rs := compileOne(t, `spec R { assert b -> eventually[0:30ms](x <= 0) }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 1, 1, 1, 1, 1, 1, 1, 1, 1, 1).
		add("x", 1, 1, 1, 1, 1, 0, 1, 1, 1, 1)
	res := evalOne(t, rs, src)
	// x<=0 only at step 5. eventually[0:3 steps] is true for t in
	// {2,3,4,5}. Steps 0,1 violate. Steps 6..9: window is truncated at
	// step 9 for t in {7,8,9}; step 6's window [6,9] is complete and
	// all false -> violation; steps 7..9 truncated -> benign.
	var steps []int
	for _, v := range res.Violations {
		for s := v.StartStep; s < v.EndStep; s++ {
			steps = append(steps, s)
		}
	}
	want := []int{0, 1, 6}
	if len(steps) != len(want) {
		t.Fatalf("violating steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("violating steps = %v, want %v", steps, want)
		}
	}
}

func TestEvalAlwaysBounded(t *testing.T) {
	rs := compileOne(t, `spec R { assert always[0:20ms](x <= 0) }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 0, 0, 1, 0, 0)
	res := evalOne(t, rs, src)
	// Window of 3 steps containing step 3 fails: t in {1,2,3}.
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if res.Violations[0].StartStep != 1 || res.Violations[0].EndStep != 4 {
		t.Errorf("interval = [%d,%d), want [1,4)", res.Violations[0].StartStep, res.Violations[0].EndStep)
	}
}

func TestEvalWarmupFromStart(t *testing.T) {
	rs := compileOne(t, `spec R { warmup 30ms assert x <= 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 1, 1, 1, 1, 1)
	res := evalOne(t, rs, src)
	if res.StepsSuppressed != 3 {
		t.Errorf("suppressed = %d, want 3", res.StepsSuppressed)
	}
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 3 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalWarmupOnRisingEdge(t *testing.T) {
	rs := compileOne(t, `spec R { warmup 20ms on rise(b) assert b -> x <= 0 }`, "b", "x")
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 0, 1, 1, 1, 1).
		add("x", 9, 9, 9, 9, 9, 0)
	res := evalOne(t, rs, src)
	// b rises at step 2; steps 2,3 suppressed; step 4 violates.
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 4 || res.Violations[0].EndStep != 5 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestEvalSeverityPeak(t *testing.T) {
	rs := compileOne(t, `spec R { severity x assert x <= 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 2, 7, 3, 0)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if res.Violations[0].Peak != 7 {
		t.Errorf("peak = %v, want 7", res.Violations[0].Peak)
	}
}

func TestEvalMissingSignal(t *testing.T) {
	rs := compileOne(t, `spec R { assert x > 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("y", 1)
	if _, err := rs.Eval(src, EvalOptions{}); err == nil {
		t.Fatal("missing trace signal accepted")
	}
}

// ---------- monitors ----------

func TestMonitorDeadlineViolation(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state Normal {
    when x < 1.0 => Low
  }
  state Low {
    when x >= 1.0 => Normal
    after 50ms => violate "stuck low"
  }
}`, "x")
	// x drops below 1.0 at step 2 and stays low for 10 steps.
	vals := []float64{2, 2, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 2, 2}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	v := res.Violations[0]
	// Enters Low effective step 3 (transition at step 2, dwell counts
	// from 3); deadline 5 steps later at step 8; continuous until
	// recovery at step 12.
	if v.StartStep != 8 || v.EndStep != 12 {
		t.Errorf("interval [%d,%d), want [8,12)", v.StartStep, v.EndStep)
	}
	if v.Msg != "stuck low" {
		t.Errorf("msg = %q", v.Msg)
	}
}

func TestMonitorRecoveryBeforeDeadline(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state Normal {
    when x < 1.0 => Low
  }
  state Low {
    when x >= 1.0 => Normal
    after 50ms => violate
  }
}`, "x")
	vals := []float64{2, 0.5, 0.5, 0.5, 2, 2, 2, 2, 2, 2}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("recovered in time but got violations: %+v", res.Violations)
	}
}

func TestMonitorWhenViolate(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state A {
    when x > 0 => violate "positive"
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 1, 1, 0, 1)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestMonitorViolateThenTransition(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state A {
    when x > 0 => violate "pos" then B
  }
  state B {
    when x <= 0 => A
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 1, 1, 1, 0, 1)
	res := evalOne(t, rs, src)
	// Violation at step 0 only (moves to B), back to A at step 3,
	// violation again at step 4.
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	if res.Violations[0].Steps() != 1 || res.Violations[1].StartStep != 4 {
		t.Errorf("violations = %+v", res.Violations)
	}
}

func TestMonitorTransitionOrderMatters(t *testing.T) {
	// Recovery listed before the deadline: recovery wins on the exact
	// deadline step.
	rs := compileOne(t, `
monitor M {
  initial state Normal {
    when x < 1.0 => Low
  }
  state Low {
    when x >= 1.0 => Normal
    after 30ms => violate
  }
}`, "x")
	vals := []float64{2, 0.5, 0.5, 0.5, 2, 2}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	res := evalOne(t, rs, src)
	if res.Violated() {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestMonitorAfterTransitionToState(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  initial state A {
    after 20ms => B
  }
  state B {
    when x > 0 => violate "in B"
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 1, 1, 1, 1, 1, 1)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %+v", res.Violations)
	}
	// The transition fires at step 2 and consumes that step; B's guard
	// is first evaluated at step 3.
	if res.Violations[0].StartStep != 3 {
		t.Errorf("violation starts at %d, want 3", res.Violations[0].StartStep)
	}
}

func TestMonitorWarmupSuppression(t *testing.T) {
	rs := compileOne(t, `
monitor M {
  warmup 30ms
  initial state A {
    when x > 0 => violate
  }
}`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 1, 1, 1, 1, 1)
	res := evalOne(t, rs, src)
	if len(res.Violations) != 1 || res.Violations[0].StartStep != 3 {
		t.Fatalf("violations = %+v", res.Violations)
	}
}

func TestRuleNames(t *testing.T) {
	f, err := Parse(`spec A { assert x } monitor B { state S { when x => violate } }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	names := f.RuleNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("RuleNames = %v", names)
	}
}

package speclang

import (
	"time"
)

// Parse parses a specification source file.
func Parse(src string) (*File, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseFile()
}

type parser struct {
	lx  *lexer
	cur token
}

func (p *parser) advance() error {
	tk, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = tk
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	return errAt(p.cur.line, p.cur.col, format, args...)
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, p.errHere("expected %v, found %v", kind, p.describeCur())
	}
	tk := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tk, nil
}

func (p *parser) describeCur() string {
	if p.cur.kind == tokIdent {
		return "'" + p.cur.text + "'"
	}
	return p.cur.kind.String()
}

// atKeyword reports whether the current token is the given keyword.
func (p *parser) atKeyword(kw string) bool {
	return p.cur.kind == tokIdent && p.cur.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errHere("expected '%s', found %v", kw, p.describeCur())
	}
	return p.advance()
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur.kind != tokEOF {
		switch {
		case p.atKeyword("const"):
			c, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, c)
		case p.atKeyword("spec"):
			s, err := p.parseSpec()
			if err != nil {
				return nil, err
			}
			f.Specs = append(f.Specs, s)
		case p.atKeyword("monitor"):
			m, err := p.parseMonitor()
			if err != nil {
				return nil, err
			}
			f.Monitors = append(f.Monitors, m)
		default:
			return nil, p.errHere("expected 'const', 'spec' or 'monitor', found %v", p.describeCur())
		}
	}
	return f, nil
}

func (p *parser) parseConst() (Const, error) {
	c := Const{pos: pos{p.cur.line, p.cur.col}}
	if err := p.advance(); err != nil { // const
		return c, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return c, err
	}
	c.Name = name.text
	if _, err := p.expect(tokAssign); err != nil {
		return c, err
	}
	neg := false
	if p.cur.kind == tokMinus {
		neg = true
		if err := p.advance(); err != nil {
			return c, err
		}
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return c, err
	}
	c.Value = num.num
	if neg {
		c.Value = -c.Value
	}
	return c, nil
}

// parseHeader parses `<name> <optional description string> {`.
func (p *parser) parseHeader() (name, desc string, err error) {
	tk, err := p.expect(tokIdent)
	if err != nil {
		return "", "", err
	}
	name = tk.text
	if p.cur.kind == tokString {
		desc = p.cur.text
		if err := p.advance(); err != nil {
			return "", "", err
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return "", "", err
	}
	return name, desc, nil
}

func (p *parser) parseSpec() (Spec, error) {
	s := Spec{pos: pos{p.cur.line, p.cur.col}}
	if err := p.advance(); err != nil { // spec
		return s, err
	}
	var err error
	s.Name, s.Description, err = p.parseHeader()
	if err != nil {
		return s, err
	}
	for p.cur.kind != tokRBrace {
		switch {
		case p.atKeyword("let"):
			l, err := p.parseLet()
			if err != nil {
				return s, err
			}
			s.Lets = append(s.Lets, l)
		case p.atKeyword("warmup"):
			w, err := p.parseWarmup()
			if err != nil {
				return s, err
			}
			s.Warmups = append(s.Warmups, w)
		case p.atKeyword("severity"):
			if s.Severity != nil {
				return s, p.errHere("duplicate severity clause")
			}
			if err := p.advance(); err != nil {
				return s, err
			}
			s.Severity, err = p.parseExpr()
			if err != nil {
				return s, err
			}
		case p.atKeyword("assert"):
			if err := p.advance(); err != nil {
				return s, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return s, err
			}
			s.Asserts = append(s.Asserts, e)
		default:
			return s, p.errHere("expected 'let', 'warmup', 'severity' or 'assert', found %v", p.describeCur())
		}
	}
	if err := p.advance(); err != nil { // }
		return s, err
	}
	if len(s.Asserts) == 0 {
		line, col := s.Pos()
		return s, errAt(line, col, "spec %q has no assert clause", s.Name)
	}
	return s, nil
}

func (p *parser) parseLet() (Let, error) {
	l := Let{pos: pos{p.cur.line, p.cur.col}}
	if err := p.advance(); err != nil { // let
		return l, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return l, err
	}
	l.Name = name.text
	if _, err := p.expect(tokAssign); err != nil {
		return l, err
	}
	l.X, err = p.parseExpr()
	return l, err
}

func (p *parser) parseWarmup() (Warmup, error) {
	w := Warmup{pos: pos{p.cur.line, p.cur.col}}
	if err := p.advance(); err != nil { // warmup
		return w, err
	}
	d, err := p.expect(tokDuration)
	if err != nil {
		return w, err
	}
	w.Window = d.dur
	if p.atKeyword("on") {
		if err := p.advance(); err != nil {
			return w, err
		}
		w.On, err = p.parseExpr()
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

func (p *parser) parseMonitor() (Monitor, error) {
	m := Monitor{pos: pos{p.cur.line, p.cur.col}}
	if err := p.advance(); err != nil { // monitor
		return m, err
	}
	var err error
	m.Name, m.Description, err = p.parseHeader()
	if err != nil {
		return m, err
	}
	for p.cur.kind != tokRBrace {
		switch {
		case p.atKeyword("let"):
			l, err := p.parseLet()
			if err != nil {
				return m, err
			}
			m.Lets = append(m.Lets, l)
		case p.atKeyword("warmup"):
			w, err := p.parseWarmup()
			if err != nil {
				return m, err
			}
			m.Warmups = append(m.Warmups, w)
		case p.atKeyword("severity"):
			if m.Severity != nil {
				return m, p.errHere("duplicate severity clause")
			}
			if err := p.advance(); err != nil {
				return m, err
			}
			m.Severity, err = p.parseExpr()
			if err != nil {
				return m, err
			}
		case p.atKeyword("initial"), p.atKeyword("state"):
			st, err := p.parseState()
			if err != nil {
				return m, err
			}
			m.States = append(m.States, st)
		default:
			return m, p.errHere("expected 'let', 'warmup', 'severity' or 'state', found %v", p.describeCur())
		}
	}
	if err := p.advance(); err != nil { // }
		return m, err
	}
	if len(m.States) == 0 {
		line, col := m.Pos()
		return m, errAt(line, col, "monitor %q has no states", m.Name)
	}
	return m, nil
}

func (p *parser) parseState() (State, error) {
	st := State{pos: pos{p.cur.line, p.cur.col}}
	if p.atKeyword("initial") {
		st.Initial = true
		if err := p.advance(); err != nil {
			return st, err
		}
	}
	if err := p.expectKeyword("state"); err != nil {
		return st, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return st, err
	}
	st.Name = name.text
	if _, err := p.expect(tokLBrace); err != nil {
		return st, err
	}
	for p.cur.kind != tokRBrace {
		tr, err := p.parseTransition()
		if err != nil {
			return st, err
		}
		st.Transitions = append(st.Transitions, tr)
	}
	return st, p.advance() // }
}

func (p *parser) parseTransition() (Transition, error) {
	tr := Transition{pos: pos{p.cur.line, p.cur.col}}
	switch {
	case p.atKeyword("when"):
		tr.Kind = TransWhen
		if err := p.advance(); err != nil {
			return tr, err
		}
		var err error
		tr.Guard, err = p.parseExpr()
		if err != nil {
			return tr, err
		}
	case p.atKeyword("after"):
		tr.Kind = TransAfter
		if err := p.advance(); err != nil {
			return tr, err
		}
		d, err := p.expect(tokDuration)
		if err != nil {
			return tr, err
		}
		if d.dur <= 0 {
			return tr, errAt(d.line, d.col, "'after' deadline must be positive")
		}
		tr.Deadline = d.dur
	default:
		return tr, p.errHere("expected 'when' or 'after', found %v", p.describeCur())
	}
	if _, err := p.expect(tokFatArrow); err != nil {
		return tr, err
	}
	if p.atKeyword("violate") {
		tr.Violate = true
		if err := p.advance(); err != nil {
			return tr, err
		}
		if p.cur.kind == tokString {
			tr.Msg = p.cur.text
			if err := p.advance(); err != nil {
				return tr, err
			}
		}
		if p.atKeyword("then") {
			if err := p.advance(); err != nil {
				return tr, err
			}
			tgt, err := p.expect(tokIdent)
			if err != nil {
				return tr, err
			}
			tr.Target = tgt.text
		}
		return tr, nil
	}
	tgt, err := p.expect(tokIdent)
	if err != nil {
		return tr, err
	}
	tr.Target = tgt.text
	return tr, nil
}

// Expression grammar, loosest to tightest:
//
//	expr   := or ('->' expr)?          (implication, right associative)
//	or     := and ('||' and)*
//	and    := cmp ('&&' cmp)*
//	cmp    := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
//	add    := mul (('+'|'-') mul)*
//	mul    := unary (('*'|'/') unary)*
//	unary  := ('!'|'-') unary | primary
//	primary:= NUMBER | 'true' | 'false' | IDENT | IDENT '(' args ')'
//	       | ('always'|'eventually') '[' DUR ':' DUR ']' '(' expr ')'
//	       | '(' expr ')'
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind == tokArrow {
		at := pos{p.cur.line, p.cur.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{pos: at, Op: tokArrow, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseBinaryChain(sub func() (Expr, error), ops ...tokenKind) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.cur.kind == op {
				at := pos{p.cur.line, p.cur.col}
				if err := p.advance(); err != nil {
					return nil, err
				}
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = &Binary{pos: at, Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinaryChain(p.parseAnd, tokOr)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinaryChain(p.parseCmp, tokAnd)
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur.kind {
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		op := p.cur.kind
		at := pos{p.cur.line, p.cur.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{pos: at, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	return p.parseBinaryChain(p.parseMul, tokPlus, tokMinus)
}

func (p *parser) parseMul() (Expr, error) {
	return p.parseBinaryChain(p.parseUnary, tokStar, tokSlash)
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur.kind == tokNot || p.cur.kind == tokMinus {
		op := p.cur.kind
		at := pos{p.cur.line, p.cur.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: at, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur.kind {
	case tokNumber:
		e := &NumberLit{pos: pos{p.cur.line, p.cur.col}, Value: p.cur.num}
		return e, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokRParen)
		return e, err
	case tokIdent:
		switch p.cur.text {
		case "true", "false":
			e := &BoolLit{pos: pos{p.cur.line, p.cur.col}, Value: p.cur.text == "true"}
			return e, p.advance()
		case "always", "eventually", "once", "historically":
			return p.parseTemporal()
		}
		name := p.cur.text
		at := pos{p.cur.line, p.cur.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokLParen {
			return &Ident{pos: at, Name: name}, nil
		}
		if err := p.advance(); err != nil { // (
			return nil, err
		}
		call := &Call{pos: at, Func: name}
		if p.cur.kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.cur.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		_, err := p.expect(tokRParen)
		return call, err
	default:
		return nil, p.errHere("expected an expression, found %v", p.describeCur())
	}
}

func (p *parser) parseTemporal() (Expr, error) {
	t := &Temporal{pos: pos{p.cur.line, p.cur.col}, Op: p.cur.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind != tokLBracket {
		return nil, p.errHere("temporal operator '%s' requires a bound, e.g. %s[0ms:400ms](...)", t.Op, t.Op)
	}
	if err := p.advance(); err != nil { // [
		return nil, err
	}
	lo, err := p.expectBound()
	if err != nil {
		return nil, err
	}
	t.Lo = lo
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	hi, err := p.expectBound()
	if err != nil {
		return nil, err
	}
	t.Hi = hi
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	if t.Lo < 0 || t.Hi < t.Lo {
		line, col := t.Pos()
		return nil, errAt(line, col, "invalid temporal bounds [%v:%v]", t.Lo, t.Hi)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	t.X, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	_, err = p.expect(tokRParen)
	return t, err
}

// expectBound accepts a duration token, or the bare number 0.
func (p *parser) expectBound() (time.Duration, error) {
	if p.cur.kind == tokNumber && p.cur.num == 0 {
		if err := p.advance(); err != nil {
			return 0, err
		}
		return 0, nil
	}
	d, err := p.expect(tokDuration)
	if err != nil {
		return 0, err
	}
	return d.dur, nil
}

package speclang

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// runStream pushes a memSource through a StreamChecker and collects the
// completed violations per rule.
func runStream(t *testing.T, rs *RuleSet, src *memSource, opts EvalOptions) map[string][]Violation {
	t.Helper()
	names := make([]string, 0, len(src.vals))
	for name := range src.vals {
		names = append(names, name)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	sc, err := rs.NewStreamChecker(names, src.StepPeriod(), opts)
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	out := make(map[string][]Violation)
	collect := func(events []Event) {
		for _, e := range events {
			if e.Kind == ViolationEnd {
				out[e.Rule] = append(out[e.Rule], e.Violation)
			}
		}
	}
	vals := make([]float64, len(names))
	upd := make([]bool, len(names))
	for step := 0; step < src.NumSteps(); step++ {
		for i, name := range names {
			vals[i] = src.vals[name][step]
			upd[i] = src.upd[name][step]
		}
		events, err := sc.Step(vals, upd)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		collect(events)
	}
	events, err := sc.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	collect(events)
	return out
}

// requireEquivalent checks that the online checker reproduces the
// offline evaluator's violations exactly.
func requireEquivalent(t *testing.T, ruleSrc string, src *memSource, opts EvalOptions, signals ...string) {
	t.Helper()
	rs := compileOne(t, ruleSrc, signals...)
	offline, err := rs.Eval(src, opts)
	if err != nil {
		t.Fatalf("offline Eval: %v", err)
	}
	online := runStream(t, rs, src, opts)
	for _, res := range offline {
		got := online[res.Name]
		if len(got) != len(res.Violations) {
			t.Fatalf("rule %s: online %d violations, offline %d\nonline:  %+v\noffline: %+v",
				res.Name, len(got), len(res.Violations), got, res.Violations)
		}
		for i := range got {
			want := res.Violations[i]
			g := got[i]
			if g.StartStep != want.StartStep || g.EndStep != want.EndStep || g.Msg != want.Msg {
				t.Fatalf("rule %s violation %d: online %+v, offline %+v", res.Name, i, g, want)
			}
			if g.Peak != want.Peak && !(math.IsInf(g.Peak, 1) && math.IsInf(want.Peak, 1)) {
				t.Fatalf("rule %s violation %d peak: online %v, offline %v", res.Name, i, g.Peak, want.Peak)
			}
		}
	}
}

func TestStreamSimpleAssertEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).add("x", 0, 0, 1, 2, 0, 0, 3, 0)
	requireEquivalent(t, `spec R { assert x <= 0 }`, src, EvalOptions{}, "x")
}

func TestStreamViolationEvents(t *testing.T) {
	rs := compileOne(t, `spec R { severity x assert x <= 0 }`, "x")
	src := newMemSource(10*time.Millisecond).add("x", 0, 2, 7, 0, 0)
	sc, err := rs.NewStreamChecker([]string{"x"}, src.StepPeriod(), EvalOptions{})
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	var kinds []EventKind
	var last Event
	for step := 0; step < src.NumSteps(); step++ {
		events, err := sc.Step([]float64{src.vals["x"][step]}, []bool{true})
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for _, e := range events {
			kinds = append(kinds, e.Kind)
			last = e
		}
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(kinds) != 2 || kinds[0] != ViolationBegin || kinds[1] != ViolationEnd {
		t.Fatalf("event kinds = %v, want [begin end]", kinds)
	}
	if last.Violation.StartStep != 1 || last.Violation.EndStep != 3 || last.Violation.Peak != 7 {
		t.Errorf("violation = %+v", last.Violation)
	}
}

func TestStreamEventLatencyBounded(t *testing.T) {
	// A rule with a 400 ms horizon must report a violation no later
	// than horizon+1 steps after it starts.
	rs := compileOne(t, `spec R { assert eventually[0:40ms](x <= 0) }`, "x")
	sc, err := rs.NewStreamChecker([]string{"x"}, 10*time.Millisecond, EvalOptions{})
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	beginAt := -1
	for step := 0; step < 100; step++ {
		events, err := sc.Step([]float64{1}, []bool{true})
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for _, e := range events {
			if e.Kind == ViolationBegin && beginAt < 0 {
				beginAt = step
			}
		}
	}
	// Step 0's window [0,4] is all-violating; decidable at step 4.
	if beginAt != 4 {
		t.Errorf("violation begin delivered at step %d, want 4", beginAt)
	}
}

func TestStreamFinishTwiceAndStepAfterFinish(t *testing.T) {
	rs := compileOne(t, `spec R { assert x }`, "x")
	sc, err := rs.NewStreamChecker([]string{"x"}, time.Millisecond, EvalOptions{})
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	if _, err := sc.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := sc.Finish(); err == nil {
		t.Error("second Finish succeeded")
	}
	if _, err := sc.Step([]float64{1}, []bool{true}); err == nil {
		t.Error("Step after Finish succeeded")
	}
}

func TestStreamChecksArgLengths(t *testing.T) {
	rs := compileOne(t, `spec R { assert x }`, "x")
	sc, err := rs.NewStreamChecker([]string{"x"}, time.Millisecond, EvalOptions{})
	if err != nil {
		t.Fatalf("NewStreamChecker: %v", err)
	}
	if _, err := sc.Step([]float64{1, 2}, []bool{true, false}); err == nil {
		t.Error("wrong-length step accepted")
	}
	if got := sc.Signals(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Signals = %v", got)
	}
}

func TestStreamRejectsBadPeriod(t *testing.T) {
	rs := compileOne(t, `spec R { assert x }`, "x")
	if _, err := rs.NewStreamChecker([]string{"x"}, 0, EvalOptions{}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestStreamUnknownSignal(t *testing.T) {
	rs := compileOne(t, `spec R { assert x }`, "x")
	if _, err := rs.NewStreamChecker([]string{"y"}, time.Millisecond, EvalOptions{}); err == nil {
		t.Error("stream without required signal accepted")
	}
}

// ---------- equivalence over handcrafted corner cases ----------

func TestStreamTemporalTruncationEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).
		add("b", 1, 1, 1, 1, 1, 1, 1, 1, 1, 1).
		add("x", 1, 1, 1, 1, 1, 0, 1, 1, 1, 1)
	requireEquivalent(t, `spec R { assert b -> eventually[0:30ms](x <= 0) }`, src, EvalOptions{}, "b", "x")
}

func TestStreamTemporalLowBoundEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).
		add("x", 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0)
	requireEquivalent(t, `spec R { assert eventually[20ms:50ms](x <= 0) }`, src, EvalOptions{}, "x")
	requireEquivalent(t, `spec R { assert always[10ms:40ms](x <= 0) }`, src, EvalOptions{}, "x")
}

func TestStreamShortTraceEquivalence(t *testing.T) {
	// Trace shorter than the temporal horizon: every window truncated.
	src := newMemSource(10*time.Millisecond).add("x", 1, 1)
	requireEquivalent(t, `spec R { assert eventually[0:200ms](x <= 0) }`, src, EvalOptions{}, "x")
	requireEquivalent(t, `spec R { assert always[0:200ms](x <= 0) }`, src, EvalOptions{}, "x")
}

func TestStreamMonitorEquivalence(t *testing.T) {
	vals := []float64{2, 2, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 2, 2, 0.5, 0.5}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	requireEquivalent(t, `
monitor M {
  initial state Normal {
    when x < 1.0 => Low
  }
  state Low {
    when x >= 1.0 => Normal
    after 50ms => violate "stuck low"
  }
}`, src, EvalOptions{}, "x")
}

func TestStreamMonitorTemporalGuardEquivalence(t *testing.T) {
	vals := []float64{0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	requireEquivalent(t, `
monitor M {
  initial state A {
    when always[0:30ms](x > 0) => violate "sustained" then B
  }
  state B {
    when x <= 0 => A
  }
}`, src, EvalOptions{}, "x")
}

func TestStreamWarmupEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).
		add("b", 0, 0, 1, 1, 1, 1, 0, 1, 1, 1).
		add("x", 9, 9, 9, 9, 9, 0, 9, 9, 9, 9)
	requireEquivalent(t, `spec R { warmup 20ms on rise(b) assert b -> x <= 0 }`, src, EvalOptions{}, "b", "x")
	requireEquivalent(t, `spec R { warmup 30ms assert x <= 0 }`, src, EvalOptions{}, "b", "x")
}

func TestStreamSeverityNaNEquivalence(t *testing.T) {
	nan := math.NaN()
	src := newMemSource(10*time.Millisecond).
		add("x", 0, nan, nan, 2, 0)
	requireEquivalent(t, `spec R { severity x assert x <= 0 }`, src, EvalOptions{}, "x")
}

func TestStreamMultiRateEquivalence(t *testing.T) {
	vals := []float64{10, 10, 10, 10, 20, 20, 20, 20, 30, 30, 30, 30}
	upd := []bool{true, false, false, false, true, false, false, false, true, false, false, false}
	src := newMemSource(10*time.Millisecond).addWithUpd("x", vals, upd)
	for _, mode := range []DeltaMode{DeltaNaive, DeltaUpdateAware} {
		requireEquivalent(t, `spec R { assert delta(x) <= 0 }`, src, EvalOptions{DeltaMode: mode}, "x")
		requireEquivalent(t, `spec R { assert rate(x) <= 100 }`, src, EvalOptions{DeltaMode: mode}, "x")
		requireEquivalent(t, `spec R { assert prev(x) == x || !valid(prev(x)) }`, src, EvalOptions{DeltaMode: mode}, "x")
	}
}

func TestStreamBuiltinsEquivalence(t *testing.T) {
	src := newMemSource(10*time.Millisecond).
		add("x", -3, 2, 7, 0, -1, 4).
		add("y", 1, -9, 7, 2, 2, -2).
		add("b", 1, 0, 1, 1, 0, 0)
	requireEquivalent(t, `spec R {
  assert min(x, y) <= max(x, y)
  assert cond(b, x, y) == cond(!b, y, x)
  assert abs(x) >= 0
  assert rise(b) -> !fall(b)
  assert changed(y) || !changed(y)
  assert updated(x)
}`, src, EvalOptions{}, "x", "y", "b")
}

func TestStreamNestedTemporalEquivalence(t *testing.T) {
	// Nested windows compose delays: the outer operator waits for the
	// inner one's delayed outputs. The offline evaluator is the
	// reference for the composed semantics.
	vals := []float64{0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 1, 1}
	src := newMemSource(10*time.Millisecond).add("x", vals...)
	cases := []string{
		`spec N1 { assert always[0:40ms](eventually[0:20ms](x > 0)) }`,
		`spec N2 { assert eventually[0:30ms](always[0:20ms](x > 0)) }`,
		`spec N3 { assert eventually[10ms:50ms](x > 0) && always[0:20ms](x >= 0) }`,
		`spec N4 { assert once[0:30ms](eventually[0:20ms](x > 0)) }`,
		`spec N5 { assert always[0:20ms](historically[0:20ms](x >= 0)) }`,
		`spec N6 { assert delta(cond(eventually[0:20ms](x > 0), 1, 0)) <= 1 }`,
	}
	for _, ruleSrc := range cases {
		requireEquivalent(t, ruleSrc, src, EvalOptions{}, "x")
	}
}

func TestStreamMixedDelayBinaryEquivalence(t *testing.T) {
	// Children with different delays under one operator: the
	// alignment queues must keep them in lockstep.
	src := newMemSource(10*time.Millisecond).
		add("x", 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0).
		add("y", 0, 0, 1, 0, 1, 1, 0, 0, 0, 1, 0, 1)
	cases := []string{
		`spec M1 { assert eventually[0:40ms](x > 0) -> y >= 0 }`,
		`spec M2 { assert (eventually[0:40ms](x > 0)) == (eventually[0:20ms](y > 0)) || true }`,
		`spec M3 { assert min(cond(always[0:30ms](x >= 0), 1, 0), y + 1) >= 0 }`,
		`spec M4 { assert !eventually[0:50ms](x > 0) || once[0:20ms](y > 0) || y <= 1 }`,
	}
	for _, ruleSrc := range cases {
		requireEquivalent(t, ruleSrc, src, EvalOptions{}, "x", "y")
	}
}

// ---------- randomized equivalence ----------

// TestStreamRandomizedEquivalence drives both evaluators over random
// multi-rate traces with a grab-bag of rules covering every language
// feature, requiring identical violations.
func TestStreamRandomizedEquivalence(t *testing.T) {
	ruleSrcs := []string{
		`spec R1 { assert a -> x <= 0.5 }`,
		`spec R2 { severity delta(x) assert delta(x) <= 0.3 }`,
		`spec R3 { assert a -> eventually[0:50ms](x <= 0.2) }`,
		`spec R4 { assert always[20ms:60ms](x <= 0.9) }`,
		`spec R5 { warmup 40ms on rise(a) let d = delta(x) assert a -> d <= 0.4 }`,
		`spec R6 { assert eventually[30ms:30ms](x > 0.1) }`,
		`monitor M1 {
			initial state N { when a && x < 0.3 => L }
			state L { when !a || x >= 0.3 => N
			          after 70ms => violate "low" }
		}`,
		`monitor M2 {
			warmup 30ms
			initial state A { when eventually[0:20ms](x > 0.8) => violate "spike" }
		}`,
		`spec R7 { assert always[0:30ms](eventually[0:20ms](x > 0.2)) || once[0:40ms](x > 0.9) }`,
		`spec R8 { assert (eventually[0:30ms](x > 0.7)) -> historically[0:20ms](x > -1) }`,
	}
	for _, mode := range []DeltaMode{DeltaNaive, DeltaUpdateAware} {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(120)
			src := newMemSource(10 * time.Millisecond)
			// x: a multi-rate float with occasional NaN.
			xv := make([]float64, n)
			xu := make([]bool, n)
			cur := rng.Float64()
			for i := 0; i < n; i++ {
				if i == 0 || rng.Float64() < 0.4 {
					cur = rng.Float64()*2 - 0.5
					if rng.Float64() < 0.05 {
						cur = math.NaN()
					}
					xu[i] = true
				}
				xv[i] = cur
			}
			src.addWithUpd("x", xv, xu)
			// a: a boolean updated every step.
			av := make([]float64, n)
			au := make([]bool, n)
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.6 {
					av[i] = 1
				}
				au[i] = true
			}
			src.addWithUpd("a", av, au)

			for _, ruleSrc := range ruleSrcs {
				requireEquivalent(t, ruleSrc, src, EvalOptions{DeltaMode: mode}, "x", "a")
			}
		}
	}
}

package speclang

import (
	"fmt"
	"math"
	"time"
)

// StreamChecker evaluates a compiled rule set online: aligned steps are
// pushed one at a time and violation events come back with a delay
// bounded by each rule's temporal horizon. It produces exactly the
// violations the offline Eval produces over the same step sequence.
type StreamChecker struct {
	period time.Duration
	names  []string
	index  map[string]int
	rules  []*ruleStream
	steps  int
	done   bool

	// ctx and evbuf are reused across Step calls so a steady-state step
	// performs no allocation.
	ctx   stepCtx
	evbuf []Event

	// observe, when set, receives the wall-clock nanoseconds each rule
	// spent inside Step, keyed by rule index in rule-set order. Nil (the
	// default) costs nothing on the hot path.
	observe func(rule int, nanos int64)
}

// Observe installs a per-rule step-latency observer: fn is called once
// per rule per Step with the rule's index (rule-set order) and the
// nanoseconds its incremental evaluation took. Pass nil to remove the
// observer. The callback runs on the Step hot path, so it must not
// block or allocate; metric counters are the intended consumer.
func (sc *StreamChecker) Observe(fn func(rule int, nanos int64)) {
	sc.observe = fn
}

// NewStreamChecker builds an online checker over the given signal
// universe (names index the value slices passed to Step).
func (rs *RuleSet) NewStreamChecker(signals []string, period time.Duration, opts EvalOptions) (*StreamChecker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("speclang: non-positive stream period %v", period)
	}
	sc := &StreamChecker{
		period: period,
		names:  append([]string(nil), signals...),
		index:  make(map[string]int, len(signals)),
	}
	for i, n := range signals {
		sc.index[n] = i
	}
	for _, r := range rs.rules {
		st, err := newRuleStream(r, sc.index, period, opts)
		if err != nil {
			return nil, err
		}
		sc.rules = append(sc.rules, st)
	}
	return sc, nil
}

// Signals returns the signal order expected by Step.
func (sc *StreamChecker) Signals() []string {
	out := make([]string, len(sc.names))
	copy(out, sc.names)
	return out
}

// Step pushes one aligned step: vals holds the held signal values in
// the checker's signal order, upd the per-signal freshness bits. It
// returns any events that became decidable. The returned slice is a
// scratch buffer owned by the checker: it is valid only until the next
// Step or Finish call, so callers that retain events across steps must
// copy them out.
func (sc *StreamChecker) Step(vals []float64, upd []bool) ([]Event, error) {
	if sc.done {
		return nil, fmt.Errorf("speclang: Step after Finish")
	}
	if len(vals) != len(sc.names) || len(upd) != len(sc.names) {
		return nil, fmt.Errorf("speclang: step carries %d/%d entries, want %d", len(vals), len(upd), len(sc.names))
	}
	sc.ctx.vals, sc.ctx.upd = vals, upd
	events := sc.evbuf[:0]
	if sc.observe == nil {
		for _, r := range sc.rules {
			events = r.step(&sc.ctx, events)
		}
	} else {
		for i, r := range sc.rules {
			t0 := time.Now()
			events = r.step(&sc.ctx, events)
			sc.observe(i, time.Since(t0).Nanoseconds())
		}
	}
	sc.ctx.vals, sc.ctx.upd = nil, nil
	sc.evbuf = events
	sc.steps++
	return events, nil
}

// Finish drains every rule's pipeline, closes open violations at the
// end of the trace, and returns the remaining events. The checker
// cannot be used afterwards.
func (sc *StreamChecker) Finish() ([]Event, error) {
	if sc.done {
		return nil, fmt.Errorf("speclang: Finish called twice")
	}
	sc.done = true
	var events []Event
	for _, r := range sc.rules {
		events = r.finish(sc.steps, events)
	}
	return events, nil
}

func newRuleStream(r *Rule, signals map[string]int, period time.Duration, opts EvalOptions) (*ruleStream, error) {
	rs := &ruleStream{rule: r, period: period}

	var lets []Let
	var warmups []Warmup
	var severity Expr
	if r.Kind == KindSpec {
		lets, warmups, severity = r.spec.Lets, r.spec.Warmups, r.spec.Severity
	} else {
		lets, warmups, severity = r.monitor.Lets, r.monitor.Warmups, r.monitor.Severity
	}
	b := &streamBuilder{
		signals: signals,
		consts:  r.consts,
		lets:    make(map[string]Expr, len(lets)),
		mode:    opts.DeltaMode,
		period:  period,
	}
	for _, l := range lets {
		b.lets[l.Name] = l.X
	}

	if r.Kind == KindSpec {
		for i, a := range r.spec.Asserts {
			s, err := b.build(a)
			if err != nil {
				return nil, err
			}
			line, _ := a.Pos()
			rs.asserts = append(rs.asserts, s)
			rs.msgs = append(rs.msgs, fmt.Sprintf("assert #%d (line %d) failed", i+1, line))
		}
		rs.assertQs = make([]ring[float64], len(rs.asserts))
	} else {
		ms, err := newMachineStream(b, r.monitor, r.initial, period)
		if err != nil {
			return nil, err
		}
		rs.machine = ms
	}

	if severity != nil {
		s, err := b.build(severity)
		if err != nil {
			return nil, err
		}
		rs.severity = s
	}
	for _, w := range warmups {
		ws := &warmupStream{window: int(w.Window / period)}
		if ws.window < 1 {
			ws.window = 1
		}
		if w.On != nil {
			s, err := b.build(w.On)
			if err != nil {
				return nil, err
			}
			ws.on = s
		}
		rs.warmups = append(rs.warmups, ws)
	}
	return rs, nil
}

// step pushes one input step through every constituent stream and
// assembles as many rule-output steps as became decidable, appending
// their events to events.
func (rs *ruleStream) step(ctx *stepCtx, events []Event) []Event {
	if rs.machine != nil {
		if mark, ok := rs.machine.push(ctx); ok {
			rs.markQ.push(mark)
		}
	} else {
		for i, a := range rs.asserts {
			if o, ok := a.step(ctx); ok {
				rs.assertQs[i].push(o.val)
			}
		}
		rs.assembleSpecMarks()
	}
	if rs.severity != nil {
		if o, ok := rs.severity.step(ctx); ok {
			rs.sevQ.push(o.val)
		}
	}
	for _, w := range rs.warmups {
		if w.on != nil {
			if o, ok := w.on.step(ctx); ok {
				w.onQ.push(o.val)
			}
		}
	}
	return rs.assemble(false, 0, events)
}

// assembleSpecMarks merges per-assert outputs into marks once every
// assert has one.
func (rs *ruleStream) assembleSpecMarks() {
	for {
		for i := range rs.assertQs {
			if rs.assertQs[i].len() == 0 {
				return
			}
		}
		mark := ""
		for i := range rs.assertQs {
			v := rs.assertQs[i].pop()
			if mark == "" && !truthy(v) {
				mark = rs.msgs[i]
			}
		}
		rs.markQ.push(mark)
	}
}

// assemble consumes aligned (mark, severity, warmup) tuples and
// maintains the open-violation state, appending decided events to
// events. When finishing, endAt closes any open interval at that step.
func (rs *ruleStream) assemble(finishing bool, endAt int, events []Event) []Event {
	for rs.markQ.len() > 0 {
		if rs.severity != nil && rs.sevQ.len() == 0 {
			break
		}
		ready := true
		for _, w := range rs.warmups {
			if !w.ready() {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		mark := rs.markQ.pop()
		sev := 0.0
		if rs.severity != nil {
			sev = rs.sevQ.pop()
		}
		suppressed := false
		for _, w := range rs.warmups {
			if w.maskNext() {
				suppressed = true
			}
		}
		t := rs.outStep
		rs.outStep++

		bad := mark != "" && !suppressed
		if !bad {
			if rs.open {
				events = append(events, rs.close(t))
			}
			continue
		}
		if !rs.open {
			rs.open = true
			rs.openStart = t
			rs.openMsg = mark
			rs.peak = 0
			events = append(events, Event{
				Rule: rs.rule.Name,
				Kind: ViolationBegin,
				Time: time.Duration(t) * rs.period,
			})
		}
		if rs.severity != nil {
			a := math.Abs(sev)
			if math.IsNaN(a) {
				a = math.Inf(1)
			}
			if a > rs.peak {
				rs.peak = a
			}
		}
	}
	if finishing && rs.open {
		events = append(events, rs.close(endAt))
	}
	return events
}

// close ends the open violation exclusively at step end.
func (rs *ruleStream) close(end int) Event {
	rs.open = false
	return Event{
		Rule: rs.rule.Name,
		Kind: ViolationEnd,
		Time: time.Duration(end) * rs.period,
		Violation: Violation{
			StartStep: rs.openStart,
			EndStep:   end,
			Start:     time.Duration(rs.openStart) * rs.period,
			End:       time.Duration(end) * rs.period,
			Peak:      rs.peak,
			Msg:       rs.openMsg,
		},
	}
}

// finish drains every stream and closes the rule at totalSteps,
// appending the remaining events to events.
func (rs *ruleStream) finish(totalSteps int, events []Event) []Event {
	if rs.machine != nil {
		for _, mark := range rs.machine.drainAll() {
			rs.markQ.push(mark)
		}
	} else {
		for i, a := range rs.asserts {
			for _, o := range a.drain() {
				rs.assertQs[i].push(o.val)
			}
		}
		rs.assembleSpecMarks()
	}
	if rs.severity != nil {
		for _, o := range rs.severity.drain() {
			rs.sevQ.push(o.val)
		}
	}
	for _, w := range rs.warmups {
		if w.on != nil {
			for _, o := range w.on.drain() {
				w.onQ.push(o.val)
			}
		}
	}
	return rs.assemble(true, totalSteps, events)
}

package speclang

import (
	"fmt"
	"math"
	"time"
)

// updatedStream exposes the child's freshness bit as its value.
type updatedStream struct {
	child stream
}

func (s *updatedStream) delay() int { return s.child.delay() }
func (s *updatedStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return streamOut{val: b2f(o.upd), upd: o.upd}, true
}
func (s *updatedStream) drain() []streamOut {
	rest := s.child.drain()
	out := make([]streamOut, len(rest))
	for i, o := range rest {
		out[i] = streamOut{val: b2f(o.upd), upd: o.upd}
	}
	return out
}

// streamBuilder compiles expressions to incremental evaluators.
type streamBuilder struct {
	signals map[string]int // name -> ctx index
	consts  map[string]float64
	lets    map[string]Expr
	mode    DeltaMode
	period  time.Duration
}

func (b *streamBuilder) build(e Expr) (stream, error) {
	switch x := e.(type) {
	case *NumberLit:
		return &constStream{v: x.Value}, nil
	case *BoolLit:
		return &constStream{v: b2f(x.Value)}, nil
	case *Ident:
		if le, ok := b.lets[x.Name]; ok {
			// Lets are inlined: each reference gets its own (identical)
			// pipeline state.
			return b.build(le)
		}
		if v, ok := b.consts[x.Name]; ok {
			return &constStream{v: v}, nil
		}
		idx, ok := b.signals[x.Name]
		if !ok {
			line, col := x.Pos()
			return nil, errAt(line, col, "signal %q is not present in the stream", x.Name)
		}
		return &signalStream{idx: idx}, nil
	case *Unary:
		c, err := b.build(x.X)
		if err != nil {
			return nil, err
		}
		return &unaryStream{op: x.Op, child: c}, nil
	case *Binary:
		l, err := b.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(x.R)
		if err != nil {
			return nil, err
		}
		return newBinaryStream(x.Op, l, r), nil
	case *Call:
		return b.buildCall(x)
	case *Temporal:
		c, err := b.build(x.X)
		if err != nil {
			return nil, err
		}
		lo := int(x.Lo / b.period)
		hi := int(x.Hi / b.period)
		if x.Past() {
			return newPastStream(x.Op == "once", lo, hi, c), nil
		}
		return newTemporalStream(x.Op == "eventually", lo, hi, c), nil
	default:
		return nil, fmt.Errorf("speclang: internal error: unknown expression node %T", e)
	}
}

func (b *streamBuilder) buildCall(x *Call) (stream, error) {
	args := make([]stream, len(x.Args))
	for i, a := range x.Args {
		s, err := b.build(a)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	switch x.Func {
	case "prev":
		return newHistStream(histPrev, b.mode, b.period, args[0]), nil
	case "delta":
		return newHistStream(histDelta, b.mode, b.period, args[0]), nil
	case "rate":
		return newHistStream(histRate, b.mode, b.period, args[0]), nil
	case "changed":
		return newHistStream(histChanged, b.mode, b.period, args[0]), nil
	case "rise":
		return &edgeStream{rise: true, child: args[0]}, nil
	case "fall":
		return &edgeStream{rise: false, child: args[0]}, nil
	case "updated":
		return &updatedStream{child: args[0]}, nil
	case "valid":
		return newMapStream(func(v []float64) float64 {
			return b2f(!math.IsNaN(v[0]) && !math.IsInf(v[0], 0))
		}, args[0]), nil
	case "abs":
		return newMapStream(func(v []float64) float64 { return math.Abs(v[0]) }, args[0]), nil
	case "min":
		return newMapStream(func(v []float64) float64 { return math.Min(v[0], v[1]) }, args[0], args[1]), nil
	case "max":
		return newMapStream(func(v []float64) float64 { return math.Max(v[0], v[1]) }, args[0], args[1]), nil
	case "cond":
		return newMapStream(func(v []float64) float64 {
			if truthy(v[0]) {
				return v[1]
			}
			return v[2]
		}, args[0], args[1], args[2]), nil
	default:
		return nil, fmt.Errorf("speclang: internal error: unknown builtin %q", x.Func)
	}
}

// EventKind distinguishes streaming events.
type EventKind int

const (
	// ViolationBegin reports a violation interval opening.
	ViolationBegin EventKind = iota + 1
	// ViolationEnd reports a closed violation interval, carrying the
	// complete Violation record.
	ViolationEnd
)

// Event is one incremental monitoring notification.
type Event struct {
	// Rule is the reporting rule.
	Rule string
	// Kind is ViolationBegin or ViolationEnd.
	Kind EventKind
	// Time is the step time the event refers to (the violation start
	// for Begin, the exclusive end for End). Events are delivered a
	// bounded number of steps after Time — the rule's temporal horizon.
	Time time.Duration
	// Violation is the full record, set on ViolationEnd.
	Violation Violation
}

// ruleStream evaluates one compiled rule incrementally.
type ruleStream struct {
	rule   *Rule
	period time.Duration

	// Specs: one stream and message per assert clause, with an
	// alignment queue each.
	asserts  []stream
	msgs     []string
	assertQs []ring[float64]

	// Monitors: the state machine produces marks directly.
	machine *machineStream
	markQ   ring[string]

	severity stream
	sevQ     ring[float64]

	warmups []*warmupStream

	outStep int // next rule-output step to assemble

	// open violation state
	open      bool
	openStart int
	openMsg   string
	peak      float64
}

// warmupStream tracks one warmup clause incrementally.
type warmupStream struct {
	window int
	on     stream // nil = from trace start
	onQ    ring[float64]
	was    bool
	// suppressedUntil is the exclusive end of the current suppression
	// window, in steps.
	suppressedUntil int
	n               int
}

// ready reports whether the warmup can decide the next step.
func (w *warmupStream) ready() bool {
	return w.on == nil || w.onQ.len() > 0
}

// maskNext consumes one step and reports whether it is suppressed.
func (w *warmupStream) maskNext() bool {
	step := w.n
	w.n++
	if w.on == nil {
		return step < w.window
	}
	cur := truthy(w.onQ.pop())
	if cur && !w.was {
		w.suppressedUntil = step + w.window
	}
	w.was = cur
	return step < w.suppressedUntil
}

// machineStream runs a monitor state machine over delayed guard
// streams.
type machineStream struct {
	m      *Monitor
	states map[string]int
	guards [][]stream // per state, per transition (nil for after)
	queues [][]ring[float64]
	vals   [][]float64 // reusable per-round guard value matrix
	// fallbackMsg precomputes the per-state default violation message,
	// so a violating step never formats on the hot path.
	fallbackMsg []string
	delay       int

	cur     int
	entered int
	n       int
	period  time.Duration
}

func newMachineStream(b *streamBuilder, m *Monitor, initial int, period time.Duration) (*machineStream, error) {
	ms := &machineStream{
		m:      m,
		states: make(map[string]int, len(m.States)),
		cur:    initial,
		period: period,
	}
	for i, st := range m.States {
		ms.states[st.Name] = i
	}
	ms.guards = make([][]stream, len(m.States))
	ms.queues = make([][]ring[float64], len(m.States))
	ms.vals = make([][]float64, len(m.States))
	ms.fallbackMsg = make([]string, len(m.States))
	for i := range m.States {
		st := &m.States[i]
		ms.guards[i] = make([]stream, len(st.Transitions))
		ms.queues[i] = make([]ring[float64], len(st.Transitions))
		ms.vals[i] = make([]float64, len(st.Transitions))
		ms.fallbackMsg[i] = fmt.Sprintf("violation in state %s", st.Name)
		for j := range st.Transitions {
			tr := &st.Transitions[j]
			if tr.Kind != TransWhen {
				continue
			}
			g, err := b.build(tr.Guard)
			if err != nil {
				return nil, err
			}
			ms.guards[i][j] = g
			if g.delay() > ms.delay {
				ms.delay = g.delay()
			}
		}
	}
	return ms, nil
}

// push feeds one input step to every guard and, when all guards have an
// output for the machine's next step, executes one transition round.
// Returns the violation mark ("" when none) and ok.
func (ms *machineStream) push(ctx *stepCtx) (string, bool) {
	for i := range ms.guards {
		for j, g := range ms.guards[i] {
			if g == nil {
				continue
			}
			if o, ok := g.step(ctx); ok {
				ms.queues[i][j].push(o.val)
			}
		}
	}
	return ms.tryStep()
}

// tryStep executes one machine step if every guard queue has a value.
func (ms *machineStream) tryStep() (string, bool) {
	for i := range ms.queues {
		for j := range ms.queues[i] {
			if ms.guards[i][j] != nil && ms.queues[i][j].len() == 0 {
				return "", false
			}
		}
	}
	t := ms.n
	ms.n++
	// Pop one value from every guard queue; only the current state's
	// guards are consulted, but all streams advance in lockstep.
	for i := range ms.queues {
		for j := range ms.queues[i] {
			if ms.guards[i][j] == nil {
				continue
			}
			ms.vals[i][j] = ms.queues[i][j].pop()
		}
	}
	mark := ""
	for j := range ms.m.States[ms.cur].Transitions {
		tr := &ms.m.States[ms.cur].Transitions[j]
		fire := false
		switch tr.Kind {
		case TransWhen:
			fire = truthy(ms.vals[ms.cur][j])
		case TransAfter:
			dwell := time.Duration(t-ms.entered) * ms.period
			fire = dwell >= tr.Deadline
		}
		if !fire {
			continue
		}
		if tr.Violate {
			mark = tr.Msg
			if mark == "" {
				mark = ms.fallbackMsg[ms.cur]
			}
		}
		if tr.Target != "" {
			next := ms.states[tr.Target]
			if next != ms.cur {
				ms.cur = next
				ms.entered = t + 1
			}
		}
		break
	}
	return mark, true
}

// drainAll flushes every guard and runs the machine to completion.
func (ms *machineStream) drainAll() []string {
	for i := range ms.guards {
		for j, g := range ms.guards[i] {
			if g == nil {
				continue
			}
			for _, o := range g.drain() {
				ms.queues[i][j].push(o.val)
			}
		}
	}
	var marks []string
	for {
		mark, ok := ms.tryStep()
		if !ok {
			return marks
		}
		marks = append(marks, mark)
	}
}

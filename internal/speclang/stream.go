package speclang

import (
	"math"
	"time"
)

// This file implements incremental (online) rule evaluation. The paper
// monitored offline "due to time and complexity constraints of the
// experiments" but notes that "there is no fundamental reason the
// monitoring could not be done at runtime"; this evaluator is that
// runtime path. It consumes aligned steps one at a time, keeps only
// bounded per-node state (ring buffers no longer than the temporal
// horizon), and produces exactly the same violations as the offline
// evaluator — a property the test suite checks exhaustively.
//
// Every expression node becomes a stream: per input step it emits one
// output, delayed by the node's temporal lookahead. A bounded
// eventually[lo:hi] can only decide step s once step s+hi has been
// seen, so its output delay is hi steps (plus its child's); parents
// align children of different delays with small FIFO queues. After the
// final input step, Finish drains the pipelines using the same
// truncated-window semantics as the offline evaluator.

// streamOut is one aligned output of a stream node: the value plus the
// freshness bit (whether any constituent signal updated that step).
type streamOut struct {
	val float64
	upd bool
}

// stream is an incremental expression evaluator.
type stream interface {
	// delay returns the output delay in steps: output i is produced
	// while consuming input step i+delay().
	delay() int
	// step consumes one input step and returns the next output, with
	// ok=false while the pipeline is still filling.
	step(ctx *stepCtx) (streamOut, bool)
	// drain returns the outputs still in flight after the last input
	// step, applying end-of-trace truncation semantics.
	drain() []streamOut
}

// stepCtx carries the raw values of the current step, indexed by the
// checker's signal order.
type stepCtx struct {
	vals []float64
	upd  []bool
}

// ---------- leaves ----------

type signalStream struct {
	idx int
}

func (s *signalStream) delay() int { return 0 }
func (s *signalStream) step(ctx *stepCtx) (streamOut, bool) {
	return streamOut{val: ctx.vals[s.idx], upd: ctx.upd[s.idx]}, true
}
func (s *signalStream) drain() []streamOut { return nil }

type constStream struct {
	v float64
}

func (s *constStream) delay() int { return 0 }
func (s *constStream) step(*stepCtx) (streamOut, bool) {
	return streamOut{val: s.v}, true
}
func (s *constStream) drain() []streamOut { return nil }

// ---------- unary ----------

type unaryStream struct {
	op    tokenKind
	child stream
}

func (s *unaryStream) delay() int { return s.child.delay() }
func (s *unaryStream) apply(o streamOut) streamOut {
	if s.op == tokNot {
		o.val = b2f(!truthy(o.val))
	} else {
		o.val = -o.val
	}
	return o
}
func (s *unaryStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return s.apply(o), true
}
func (s *unaryStream) drain() []streamOut {
	rest := s.child.drain()
	out := make([]streamOut, len(rest))
	for i, o := range rest {
		out[i] = s.apply(o)
	}
	return out
}

// ---------- binary ----------

type binaryStream struct {
	op   tokenKind
	l, r stream
	// lq and rq align children of different delays.
	lq, rq ring[streamOut]
	d      int
}

func newBinaryStream(op tokenKind, l, r stream) *binaryStream {
	d := l.delay()
	if r.delay() > d {
		d = r.delay()
	}
	return &binaryStream{op: op, l: l, r: r, d: d}
}

func (s *binaryStream) delay() int { return s.d }

func (s *binaryStream) combine(a, b streamOut) streamOut {
	out := streamOut{upd: a.upd || b.upd}
	lv, rv := a.val, b.val
	switch s.op {
	case tokPlus:
		out.val = lv + rv
	case tokMinus:
		out.val = lv - rv
	case tokStar:
		out.val = lv * rv
	case tokSlash:
		out.val = lv / rv
	case tokAnd:
		out.val = b2f(truthy(lv) && truthy(rv))
	case tokOr:
		out.val = b2f(truthy(lv) || truthy(rv))
	case tokArrow:
		out.val = b2f(!truthy(lv) || truthy(rv))
	default: // comparisons
		if math.IsNaN(lv) || math.IsNaN(rv) {
			out.val = 0
			return out
		}
		var ok bool
		switch s.op {
		case tokLT:
			ok = lv < rv
		case tokLE:
			ok = lv <= rv
		case tokGT:
			ok = lv > rv
		case tokGE:
			ok = lv >= rv
		case tokEQ:
			ok = lv == rv
		case tokNE:
			ok = lv != rv
		}
		out.val = b2f(ok)
	}
	return out
}

func (s *binaryStream) emit() (streamOut, bool) {
	if s.lq.len() == 0 || s.rq.len() == 0 {
		return streamOut{}, false
	}
	return s.combine(s.lq.pop(), s.rq.pop()), true
}

func (s *binaryStream) step(ctx *stepCtx) (streamOut, bool) {
	if o, ok := s.l.step(ctx); ok {
		s.lq.push(o)
	}
	if o, ok := s.r.step(ctx); ok {
		s.rq.push(o)
	}
	return s.emit()
}

func (s *binaryStream) drain() []streamOut {
	for _, o := range s.l.drain() {
		s.lq.push(o)
	}
	for _, o := range s.r.drain() {
		s.rq.push(o)
	}
	var out []streamOut
	for {
		o, ok := s.emit()
		if !ok {
			return out
		}
		out = append(out, o)
	}
}

// ---------- history builtins (prev/delta/rate/changed) ----------

// histKind selects which derived quantity a history stream emits.
type histKind int

const (
	histPrev histKind = iota + 1
	histDelta
	histRate
	histChanged
)

// histStream implements prev/delta/rate/changed over its child with
// either naive or update-aware semantics, mirroring prevOf in eval.go.
type histStream struct {
	kind   histKind
	mode   DeltaMode
	period float64 // seconds
	child  stream

	// naive state
	started bool
	last    streamOut
	// update-aware state
	prevUpd, curVal   float64
	prevStep, curStep int
	n                 int
}

func newHistStream(kind histKind, mode DeltaMode, period time.Duration, child stream) *histStream {
	return &histStream{
		kind: kind, mode: mode, period: period.Seconds(), child: child,
		prevUpd: math.NaN(), curVal: math.NaN(), prevStep: -1, curStep: -1,
	}
}

func (s *histStream) delay() int { return s.child.delay() }

func (s *histStream) apply(o streamOut) streamOut {
	var prev, gap float64
	if s.mode == DeltaNaive {
		if !s.started {
			prev = math.NaN()
		} else {
			prev = s.last.val
		}
		gap = s.period
		s.started = true
		s.last = o
	} else {
		if o.upd {
			s.prevUpd, s.prevStep = s.curVal, s.curStep
			s.curVal, s.curStep = o.val, s.n
		}
		prev = s.prevUpd
		if s.prevStep >= 0 && s.curStep > s.prevStep {
			gap = float64(s.curStep-s.prevStep) * s.period
		} else {
			gap = s.period
		}
		s.n++
	}
	out := streamOut{upd: o.upd}
	switch s.kind {
	case histPrev:
		out.val = prev
	case histDelta:
		out.val = o.val - prev
	case histRate:
		out.val = (o.val - prev) / gap
	case histChanged:
		d := o.val - prev
		out.val = b2f(!math.IsNaN(d) && d != 0)
	}
	return out
}

func (s *histStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return s.apply(o), true
}

func (s *histStream) drain() []streamOut {
	rest := s.child.drain()
	out := make([]streamOut, len(rest))
	for i, o := range rest {
		out[i] = s.apply(o)
	}
	return out
}

// ---------- edge builtins (rise/fall) ----------

type edgeStream struct {
	rise  bool
	child stream
	was   bool
}

func (s *edgeStream) delay() int { return s.child.delay() }
func (s *edgeStream) apply(o streamOut) streamOut {
	cur := truthy(o.val)
	var v bool
	if s.rise {
		v = cur && !s.was
	} else {
		v = !cur && s.was
	}
	s.was = cur
	return streamOut{val: b2f(v), upd: o.upd}
}
func (s *edgeStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return s.apply(o), true
}
func (s *edgeStream) drain() []streamOut {
	rest := s.child.drain()
	out := make([]streamOut, len(rest))
	for i, o := range rest {
		out[i] = s.apply(o)
	}
	return out
}

// ---------- simple function builtins ----------

// mapStream applies a stateless function to aligned child outputs.
type mapStream struct {
	fn       func(vals []float64) float64
	children []stream
	queues   []ring[streamOut]
	vals     []float64 // reusable argument vector for fn
	d        int
}

func newMapStream(fn func([]float64) float64, children ...stream) *mapStream {
	d := 0
	for _, c := range children {
		if c.delay() > d {
			d = c.delay()
		}
	}
	return &mapStream{
		fn:       fn,
		children: children,
		queues:   make([]ring[streamOut], len(children)),
		vals:     make([]float64, len(children)),
		d:        d,
	}
}

func (s *mapStream) delay() int { return s.d }

func (s *mapStream) emit() (streamOut, bool) {
	for i := range s.queues {
		if s.queues[i].len() == 0 {
			return streamOut{}, false
		}
	}
	out := streamOut{}
	for i := range s.queues {
		o := s.queues[i].pop()
		s.vals[i] = o.val
		out.upd = out.upd || o.upd
	}
	out.val = s.fn(s.vals)
	return out, true
}

func (s *mapStream) step(ctx *stepCtx) (streamOut, bool) {
	for i, c := range s.children {
		if o, ok := c.step(ctx); ok {
			s.queues[i].push(o)
		}
	}
	return s.emit()
}

func (s *mapStream) drain() []streamOut {
	for i, c := range s.children {
		for _, o := range c.drain() {
			s.queues[i].push(o)
		}
	}
	var out []streamOut
	for {
		o, ok := s.emit()
		if !ok {
			return out
		}
		out = append(out, o)
	}
}

// ---------- bounded temporal operators ----------

// temporalStream implements always[lo:hi] / eventually[lo:hi]. Output
// for step s is decided once the child output for step s+hi is
// available, so the node adds hi steps of delay. The window ring holds
// at most hi-lo+1 child outputs and carries a monotonic truthy count,
// so each step is O(1) — no window rescans — and, with the ring
// preallocated from the compiled horizon, allocation-free.
type temporalStream struct {
	eventually bool
	lo, hi     int
	child      stream

	window ring[bool] // truthiness of child outputs for steps [s+lo .. s+hi]
	count  int        // truthy entries in window
	seen   int        // child outputs consumed
	// updq delays the child's upd bits by hi steps so the output's
	// freshness aligns with the output step, matching eval.go (which
	// propagates the operand's upd vector unchanged).
	updq ring[bool]
}

func newTemporalStream(eventually bool, lo, hi int, child stream) *temporalStream {
	s := &temporalStream{eventually: eventually, lo: lo, hi: hi, child: child}
	s.window.reserve(hi - lo + 2)
	s.updq.reserve(hi + 1)
	return s
}

func (s *temporalStream) delay() int { return s.child.delay() + s.hi }

// consume feeds one child output; truncated marks end-of-trace
// shrink-window evaluation.
func (s *temporalStream) consume(o streamOut, truncated bool) (streamOut, bool) {
	if !truncated {
		s.updq.push(o.upd)
		// Child output s.seen corresponds to step u = s.seen. It
		// belongs to the windows of output steps u-hi .. u-lo.
		t := truthy(o.val)
		s.window.push(t)
		if t {
			s.count++
		}
		s.seen++
		// Window for output step s0 = u-hi is [s0+lo, s0+hi]; it is
		// complete once u >= hi, and must contain exactly the child
		// outputs for steps [u-hi+lo, u].
		if s.window.len() > s.hi-s.lo+1 {
			if s.window.pop() {
				s.count--
			}
		}
		if s.seen <= s.hi {
			return streamOut{}, false
		}
	}
	var v float64
	if s.eventually {
		// Truncated windows with no witness are benign (cannot
		// confirm); complete windows need a witness.
		if s.count > 0 || truncated {
			v = 1
		}
	} else {
		// always: false only on a witnessed falsification.
		if s.count == s.window.len() {
			v = 1
		}
	}
	var upd bool
	if s.updq.len() > 0 {
		upd = s.updq.pop()
	}
	return streamOut{val: v, upd: upd}, true
}

func (s *temporalStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return s.consume(o, false)
}

// pastStream implements once[lo:hi] / historically[lo:hi]. Past windows
// need no lookahead, so the node adds no delay: the verdict for step t
// is available the moment step t is.
type pastStream struct {
	exists bool // once
	lo, hi int
	child  stream

	pending ring[bool] // child truthiness younger than lo steps
	window  ring[bool] // truthiness of steps [t-hi, t-lo]
	count   int
	n       int
}

func newPastStream(exists bool, lo, hi int, child stream) *pastStream {
	s := &pastStream{exists: exists, lo: lo, hi: hi, child: child}
	s.pending.reserve(lo + 1)
	s.window.reserve(hi - lo + 2)
	return s
}

func (s *pastStream) delay() int { return s.child.delay() }

func (s *pastStream) apply(o streamOut) streamOut {
	t := s.n
	s.n++
	s.pending.push(truthy(o.val))
	if s.pending.len() > s.lo {
		v := s.pending.pop()
		s.window.push(v)
		if v {
			s.count++
		}
		if s.window.len() > s.hi-s.lo+1 {
			if s.window.pop() {
				s.count--
			}
		}
	}
	out := streamOut{upd: o.upd}
	switch {
	case t < s.lo:
		// The window [t-hi, t-lo] lies entirely before the trace.
		out.val = 1
	case s.exists:
		if s.count > 0 || t < s.hi {
			out.val = 1 // a witness, or a truncated window (no evidence)
		}
	default:
		if s.count == s.window.len() {
			out.val = 1
		}
	}
	return out
}

func (s *pastStream) step(ctx *stepCtx) (streamOut, bool) {
	o, ok := s.child.step(ctx)
	if !ok {
		return streamOut{}, false
	}
	return s.apply(o), true
}

func (s *pastStream) drain() []streamOut {
	rest := s.child.drain()
	out := make([]streamOut, len(rest))
	for i, o := range rest {
		out[i] = s.apply(o)
	}
	return out
}

func (s *temporalStream) drain() []streamOut {
	var out []streamOut
	for _, o := range s.child.drain() {
		if r, ok := s.consume(o, false); ok {
			out = append(out, r)
		}
	}
	// Emit the trailing output steps whose windows extend past the end
	// of the trace: steps max(0, n-hi) .. n-1, where n is the number of
	// child steps. For output step t the (truncated) window is
	// [t+lo, n-1]; the buffer's head is trimmed until it starts at
	// t+lo, and an empty window means "no evidence" (benign for both
	// operators), matching the offline evaluator.
	n := s.seen
	start := n - s.hi
	if start < 0 {
		start = 0
	}
	for t := start; t < n; t++ {
		for s.window.len() > 0 && n-s.window.len() < t+s.lo {
			if s.window.pop() {
				s.count--
			}
		}
		r, _ := s.consume(streamOut{}, true)
		out = append(out, r)
	}
	return out
}

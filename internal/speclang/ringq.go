package speclang

// ring is a growable power-of-two FIFO ring buffer. The stream
// evaluators previously used `append` + reslice queues, which leak
// capacity off the front and therefore reallocate every few steps in
// steady state. A ring reuses its storage on pop, so once a pipeline
// reaches its high-water mark — bounded by the compiled temporal
// horizon — stepping it never allocates again.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// len returns the number of queued elements.
func (r *ring[T]) len() int { return r.n }

// reserve grows the buffer to hold at least n elements, so pipelines
// sized from the compiled horizon never grow mid-stream.
func (r *ring[T]) reserve(n int) {
	if n > len(r.buf) {
		r.grow(n)
	}
}

// push appends one element.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow(r.n + 1)
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the oldest element. It panics on an empty
// ring, as q[0] on an empty slice would.
func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("speclang: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references held by string/struct elements
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow reallocates to the next power of two holding at least need.
func (r *ring[T]) grow(need int) {
	capa := 4
	for capa < need {
		capa <<= 1
	}
	buf := make([]T, capa)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

package speclang

import (
	"fmt"
	"sort"
	"time"
)

// builtins maps builtin function names to their arity.
var builtins = map[string]int{
	"prev":    1, // value at the previous step (or previous update)
	"delta":   1, // x - prev(x)
	"rate":    1, // delta(x) per second
	"changed": 1, // delta(x) != 0
	"rise":    1, // x is true now and was false at the previous step
	"fall":    1, // x is false now and was true at the previous step
	"updated": 1, // a fresh sample of the signal arrived this step
	"valid":   1, // x is finite (not NaN, not infinite)
	"abs":     1,
	"min":     2,
	"max":     2,
	"cond":    3, // cond(c, a, b): a when c is true, else b
}

// RuleKind distinguishes assertion rules from state machines.
type RuleKind int

const (
	// KindSpec is a per-step assertion rule.
	KindSpec RuleKind = iota + 1
	// KindMonitor is a state-machine rule.
	KindMonitor
)

// Rule is one compiled, executable rule.
type Rule struct {
	// Name is the rule name.
	Name string
	// Description is the optional doc string.
	Description string
	// Kind reports whether this is a spec or a monitor.
	Kind RuleKind

	consts  map[string]float64
	spec    *Spec
	monitor *Monitor
	initial int // initial state index for monitors
}

// Horizon returns the rule's temporal lookahead: how far past a step
// the trace must extend before that step's verdict is decidable. It is
// the online monitor's worst-case decision latency for the rule — zero
// for propositional and past-time rules, and the (nested) sum of
// future-window upper bounds otherwise.
func (r *Rule) Horizon(period time.Duration) time.Duration {
	var lets []Let
	var severity Expr
	if r.Kind == KindSpec {
		lets, severity = r.spec.Lets, r.spec.Severity
	} else {
		lets, severity = r.monitor.Lets, r.monitor.Severity
	}
	letMap := make(map[string]Expr, len(lets))
	for _, l := range lets {
		letMap[l.Name] = l.X
	}
	h := func(e Expr) int { return exprHorizon(e, period, letMap) }

	steps := 0
	if r.Kind == KindSpec {
		for _, a := range r.spec.Asserts {
			if v := h(a); v > steps {
				steps = v
			}
		}
	} else {
		for i := range r.monitor.States {
			for j := range r.monitor.States[i].Transitions {
				tr := &r.monitor.States[i].Transitions[j]
				if tr.Kind != TransWhen {
					continue
				}
				if v := h(tr.Guard); v > steps {
					steps = v
				}
			}
		}
	}
	if severity != nil {
		if v := h(severity); v > steps {
			steps = v
		}
	}
	return time.Duration(steps) * period
}

// exprHorizon returns the lookahead of an expression in steps, inlining
// let references exactly as the stream compiler does.
func exprHorizon(e Expr, period time.Duration, lets map[string]Expr) int {
	switch x := e.(type) {
	case *Ident:
		if le, ok := lets[x.Name]; ok {
			return exprHorizon(le, period, lets)
		}
		return 0
	case *Unary:
		return exprHorizon(x.X, period, lets)
	case *Binary:
		l := exprHorizon(x.L, period, lets)
		if r := exprHorizon(x.R, period, lets); r > l {
			l = r
		}
		return l
	case *Call:
		max := 0
		for _, a := range x.Args {
			if h := exprHorizon(a, period, lets); h > max {
				max = h
			}
		}
		return max
	case *Temporal:
		h := exprHorizon(x.X, period, lets)
		if !x.Past() {
			h += int(x.Hi / period)
		}
		return h
	default:
		return 0
	}
}

// Signals returns the names of the trace signals the rule references
// (through lets, warmups, severity, asserts and guards), sorted. This
// is what a violation explanation needs to know which series to show.
func (r *Rule) Signals(universe map[string]bool) []string {
	found := make(map[string]bool)
	var lets []Let
	var warmups []Warmup
	var severity Expr
	var exprs []Expr
	if r.Kind == KindSpec {
		lets, warmups, severity = r.spec.Lets, r.spec.Warmups, r.spec.Severity
		exprs = append(exprs, r.spec.Asserts...)
	} else {
		lets, warmups, severity = r.monitor.Lets, r.monitor.Warmups, r.monitor.Severity
		for i := range r.monitor.States {
			for j := range r.monitor.States[i].Transitions {
				if g := r.monitor.States[i].Transitions[j].Guard; g != nil {
					exprs = append(exprs, g)
				}
			}
		}
	}
	for _, l := range lets {
		exprs = append(exprs, l.X)
	}
	for _, w := range warmups {
		if w.On != nil {
			exprs = append(exprs, w.On)
		}
	}
	if severity != nil {
		exprs = append(exprs, severity)
	}
	for _, e := range exprs {
		collectSignals(e, universe, found)
	}
	out := make([]string, 0, len(found))
	for name := range found {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func collectSignals(e Expr, universe, found map[string]bool) {
	switch x := e.(type) {
	case *Ident:
		if universe[x.Name] {
			found[x.Name] = true
		}
	case *Unary:
		collectSignals(x.X, universe, found)
	case *Binary:
		collectSignals(x.L, universe, found)
		collectSignals(x.R, universe, found)
	case *Call:
		for _, a := range x.Args {
			collectSignals(a, universe, found)
		}
	case *Temporal:
		collectSignals(x.X, universe, found)
	}
}

// SignalUniverse returns the signal set the rule set was compiled
// against, for use with Rule.Signals.
func (rs *RuleSet) SignalUniverse() map[string]bool {
	out := make(map[string]bool, len(rs.signals))
	for name := range rs.signals {
		out[name] = true
	}
	return out
}

// RuleSet is a compiled specification file bound to a signal universe.
type RuleSet struct {
	rules   []*Rule
	signals map[string]bool
}

// Rules returns the compiled rules in declaration order.
func (rs *RuleSet) Rules() []*Rule {
	out := make([]*Rule, len(rs.rules))
	copy(out, rs.rules)
	return out
}

// Rule returns the compiled rule with the given name.
func (rs *RuleSet) Rule(name string) (*Rule, bool) {
	for _, r := range rs.rules {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Compile validates the parsed file against the given signal universe
// (the names the monitor can observe) and returns an executable rule
// set. Compilation catches unknown identifiers, duplicate names, bad
// builtin arity and malformed state machines.
func Compile(f *File, signals []string) (*RuleSet, error) {
	rs := &RuleSet{signals: make(map[string]bool, len(signals))}
	for _, s := range signals {
		rs.signals[s] = true
	}

	consts := make(map[string]float64, len(f.Consts))
	for _, c := range f.Consts {
		if _, dup := consts[c.Name]; dup {
			line, col := c.Pos()
			return nil, errAt(line, col, "duplicate const %q", c.Name)
		}
		if rs.signals[c.Name] {
			line, col := c.Pos()
			return nil, errAt(line, col, "const %q shadows a signal", c.Name)
		}
		consts[c.Name] = c.Value
	}

	seen := make(map[string]bool)
	addRule := func(name string, line, col int) error {
		if seen[name] {
			return errAt(line, col, "duplicate rule name %q", name)
		}
		seen[name] = true
		return nil
	}

	for i := range f.Specs {
		s := &f.Specs[i]
		line, col := s.Pos()
		if err := addRule(s.Name, line, col); err != nil {
			return nil, err
		}
		if err := rs.checkCommon(consts, s.Lets, s.Warmups, s.Severity); err != nil {
			return nil, err
		}
		env := rs.letEnv(consts, s.Lets)
		for _, a := range s.Asserts {
			if err := rs.checkExpr(a, env); err != nil {
				return nil, err
			}
		}
		rs.rules = append(rs.rules, &Rule{
			Name: s.Name, Description: s.Description, Kind: KindSpec,
			consts: consts, spec: s,
		})
	}

	for i := range f.Monitors {
		m := &f.Monitors[i]
		line, col := m.Pos()
		if err := addRule(m.Name, line, col); err != nil {
			return nil, err
		}
		if err := rs.checkCommon(consts, m.Lets, m.Warmups, m.Severity); err != nil {
			return nil, err
		}
		initial, err := rs.checkMonitor(consts, m)
		if err != nil {
			return nil, err
		}
		rs.rules = append(rs.rules, &Rule{
			Name: m.Name, Description: m.Description, Kind: KindMonitor,
			consts: consts, monitor: m, initial: initial,
		})
	}
	return rs, nil
}

// letEnv returns the set of names visible to expressions in a rule with
// the given lets: signals, constants, and all lets (checked for order
// separately).
func (rs *RuleSet) letEnv(consts map[string]float64, lets []Let) map[string]bool {
	env := make(map[string]bool, len(consts)+len(lets))
	for name := range consts {
		env[name] = true
	}
	for _, l := range lets {
		env[l.Name] = true
	}
	return env
}

func (rs *RuleSet) checkCommon(consts map[string]float64, lets []Let, warmups []Warmup, severity Expr) error {
	partial := make(map[string]bool, len(consts))
	for name := range consts {
		partial[name] = true
	}
	for _, l := range lets {
		line, col := l.Pos()
		if rs.signals[l.Name] {
			return errAt(line, col, "let %q shadows a signal", l.Name)
		}
		if partial[l.Name] {
			return errAt(line, col, "duplicate binding %q", l.Name)
		}
		if err := rs.checkExpr(l.X, partial); err != nil {
			return err
		}
		partial[l.Name] = true
	}
	env := rs.letEnv(consts, lets)
	for _, w := range warmups {
		line, col := w.Pos()
		if w.Window <= 0 {
			return errAt(line, col, "warmup window must be positive")
		}
		if w.On != nil {
			if err := rs.checkExpr(w.On, env); err != nil {
				return err
			}
		}
	}
	if severity != nil {
		if err := rs.checkExpr(severity, env); err != nil {
			return err
		}
	}
	return nil
}

func (rs *RuleSet) checkMonitor(consts map[string]float64, m *Monitor) (int, error) {
	env := rs.letEnv(consts, m.Lets)
	names := make(map[string]bool, len(m.States))
	initial := -1
	for i, st := range m.States {
		line, col := st.Pos()
		if names[st.Name] {
			return 0, errAt(line, col, "duplicate state %q", st.Name)
		}
		names[st.Name] = true
		if st.Initial {
			if initial >= 0 {
				return 0, errAt(line, col, "multiple initial states")
			}
			initial = i
		}
	}
	if initial < 0 {
		initial = 0
	}
	for _, st := range m.States {
		for _, tr := range st.Transitions {
			line, col := tr.Pos()
			if tr.Kind == TransWhen {
				if err := rs.checkExpr(tr.Guard, env); err != nil {
					return 0, err
				}
			}
			if tr.Target != "" && !names[tr.Target] {
				return 0, errAt(line, col, "unknown target state %q", tr.Target)
			}
			if !tr.Violate && tr.Target == "" {
				return 0, errAt(line, col, "non-violating transition needs a target state")
			}
		}
	}
	return initial, nil
}

// checkExpr resolves identifiers and validates builtin usage. env holds
// the non-signal names visible at this point.
func (rs *RuleSet) checkExpr(e Expr, env map[string]bool) error {
	switch x := e.(type) {
	case *NumberLit, *BoolLit:
		return nil
	case *Ident:
		if rs.signals[x.Name] || env[x.Name] {
			return nil
		}
		line, col := x.Pos()
		return errAt(line, col, "unknown identifier %q", x.Name)
	case *Unary:
		return rs.checkExpr(x.X, env)
	case *Binary:
		if err := rs.checkExpr(x.L, env); err != nil {
			return err
		}
		return rs.checkExpr(x.R, env)
	case *Call:
		arity, ok := builtins[x.Func]
		line, col := x.Pos()
		if !ok {
			return errAt(line, col, "unknown function %q", x.Func)
		}
		if len(x.Args) != arity {
			return errAt(line, col, "%s takes %d argument(s), got %d", x.Func, arity, len(x.Args))
		}
		if x.Func == "updated" {
			id, ok := x.Args[0].(*Ident)
			if !ok || !rs.signals[id.Name] {
				return errAt(line, col, "updated() requires a signal name argument")
			}
		}
		for _, a := range x.Args {
			if err := rs.checkExpr(a, env); err != nil {
				return err
			}
		}
		return nil
	case *Temporal:
		return rs.checkExpr(x.X, env)
	default:
		return fmt.Errorf("speclang: internal error: unknown expression node %T", e)
	}
}

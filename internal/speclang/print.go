package speclang

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Format renders a parsed file back to canonical specification source.
// Parsing the output yields an equivalent file (the round trip is
// property-tested), which makes the printer usable for normalizing
// rule files and for embedding generated rules in reports.
func Format(f *File) string {
	var sb strings.Builder
	for i, c := range f.Consts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "const %s = %s\n", c.Name, formatNumber(c.Value))
	}
	for i := range f.Specs {
		if sb.Len() > 0 {
			sb.WriteByte('\n')
		}
		formatSpec(&sb, &f.Specs[i])
	}
	for i := range f.Monitors {
		if sb.Len() > 0 {
			sb.WriteByte('\n')
		}
		formatMonitor(&sb, &f.Monitors[i])
	}
	return sb.String()
}

func formatSpec(sb *strings.Builder, s *Spec) {
	writeHeader(sb, "spec", s.Name, s.Description)
	writeCommon(sb, s.Lets, s.Warmups, s.Severity)
	for _, a := range s.Asserts {
		fmt.Fprintf(sb, "    assert %s\n", FormatExpr(a))
	}
	sb.WriteString("}\n")
}

func formatMonitor(sb *strings.Builder, m *Monitor) {
	writeHeader(sb, "monitor", m.Name, m.Description)
	writeCommon(sb, m.Lets, m.Warmups, m.Severity)
	for i := range m.States {
		st := &m.States[i]
		prefix := "    "
		if st.Initial {
			fmt.Fprintf(sb, "%sinitial state %s {\n", prefix, st.Name)
		} else {
			fmt.Fprintf(sb, "%sstate %s {\n", prefix, st.Name)
		}
		for j := range st.Transitions {
			tr := &st.Transitions[j]
			sb.WriteString("        ")
			if tr.Kind == TransWhen {
				fmt.Fprintf(sb, "when %s => ", FormatExpr(tr.Guard))
			} else {
				fmt.Fprintf(sb, "after %s => ", formatDuration(tr.Deadline))
			}
			if tr.Violate {
				sb.WriteString("violate")
				if tr.Msg != "" {
					fmt.Fprintf(sb, " %s", strconv.Quote(tr.Msg))
				}
				if tr.Target != "" {
					fmt.Fprintf(sb, " then %s", tr.Target)
				}
			} else {
				sb.WriteString(tr.Target)
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(sb, "%s}\n", prefix)
	}
	sb.WriteString("}\n")
}

func writeHeader(sb *strings.Builder, kind, name, desc string) {
	fmt.Fprintf(sb, "%s %s", kind, name)
	if desc != "" {
		fmt.Fprintf(sb, " %s", strconv.Quote(desc))
	}
	sb.WriteString(" {\n")
}

func writeCommon(sb *strings.Builder, lets []Let, warmups []Warmup, severity Expr) {
	for _, l := range lets {
		fmt.Fprintf(sb, "    let %s = %s\n", l.Name, FormatExpr(l.X))
	}
	for _, w := range warmups {
		if w.On == nil {
			fmt.Fprintf(sb, "    warmup %s\n", formatDuration(w.Window))
		} else {
			fmt.Fprintf(sb, "    warmup %s on %s\n", formatDuration(w.Window), FormatExpr(w.On))
		}
	}
	if severity != nil {
		fmt.Fprintf(sb, "    severity %s\n", FormatExpr(severity))
	}
}

// FormatExpr renders an expression with minimal parentheses: children
// are parenthesized only when their operator binds more loosely than
// their parent requires.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// Precedence levels, loosest to tightest. A child is wrapped when its
// level is lower than the minimum its context requires.
const (
	precImply = iota + 1
	precOr
	precAnd
	precCmp
	precAdd
	precMul
	precUnary
	precPrimary
)

func precOf(e Expr) int {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case tokArrow:
			return precImply
		case tokOr:
			return precOr
		case tokAnd:
			return precAnd
		case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
			return precCmp
		case tokPlus, tokMinus:
			return precAdd
		default:
			return precMul
		}
	case *Unary:
		return precUnary
	case *NumberLit:
		// Negative literals print with a leading minus: unary level.
		if x.Value < 0 {
			return precUnary
		}
		return precPrimary
	default:
		return precPrimary
	}
}

func writeExpr(sb *strings.Builder, e Expr, min int) {
	if precOf(e) < min {
		sb.WriteByte('(')
		writeExprInner(sb, e)
		sb.WriteByte(')')
		return
	}
	writeExprInner(sb, e)
}

func writeExprInner(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *NumberLit:
		sb.WriteString(formatNumber(x.Value))
	case *BoolLit:
		if x.Value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *Ident:
		sb.WriteString(x.Name)
	case *Unary:
		if x.Op == tokNot {
			sb.WriteByte('!')
		} else {
			sb.WriteByte('-')
		}
		writeExpr(sb, x.X, precUnary)
	case *Binary:
		p := precOf(x)
		var op string
		switch x.Op {
		case tokArrow:
			op = "->"
		case tokOr:
			op = "||"
		case tokAnd:
			op = "&&"
		case tokLT:
			op = "<"
		case tokLE:
			op = "<="
		case tokGT:
			op = ">"
		case tokGE:
			op = ">="
		case tokEQ:
			op = "=="
		case tokNE:
			op = "!="
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		}
		switch x.Op {
		case tokArrow:
			// Right associative: the left side must bind tighter.
			writeExpr(sb, x.L, p+1)
			fmt.Fprintf(sb, " %s ", op)
			writeExpr(sb, x.R, p)
		case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
			// Non-associative: both sides must bind tighter.
			writeExpr(sb, x.L, p+1)
			fmt.Fprintf(sb, " %s ", op)
			writeExpr(sb, x.R, p+1)
		default:
			// Left associative chains.
			writeExpr(sb, x.L, p)
			fmt.Fprintf(sb, " %s ", op)
			writeExpr(sb, x.R, p+1)
		}
	case *Call:
		sb.WriteString(x.Func)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Temporal:
		fmt.Fprintf(sb, "%s[%s:%s](", x.Op, formatDuration(x.Lo), formatDuration(x.Hi))
		writeExpr(sb, x.X, 0)
		sb.WriteByte(')')
	}
}

func formatNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatDuration(d time.Duration) string {
	if d == 0 {
		// "0s" rather than a bare "0": every duration position accepts
		// it, including warmup clauses which require a duration token.
		return "0s"
	}
	if d%time.Second == 0 {
		return strconv.FormatInt(int64(d/time.Second), 10) + "s"
	}
	if d%time.Millisecond == 0 {
		return strconv.FormatInt(int64(d/time.Millisecond), 10) + "ms"
	}
	// Sub-millisecond bounds round trip through fractional ms.
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'g', -1, 64) + "ms"
}

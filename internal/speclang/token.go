// Package speclang implements the monitor specification language: a
// simplified bounded temporal logic combined with state machines, in the
// style the paper describes (boolean connectives, arithmetic
// comparisons, bounded always/eventually, and state machines used to
// encode mode-based behaviour instead of nested temporal operators).
//
// A specification file contains constant declarations, "spec" blocks
// (per-step assertions over signal expressions) and "monitor" blocks
// (state machines with guarded and timed transitions):
//
//	const near = 1.0
//
//	spec Rule5 "a requested deceleration decelerates" {
//	    severity RequestedDecel
//	    assert BrakeRequested -> RequestedDecel <= 0.0
//	}
//
//	monitor Rule1 "headway recovery" {
//	    let headway = TargetRange / Velocity
//	    initial state Normal {
//	        when VehicleAhead && headway < near => Low
//	    }
//	    state Low {
//	        when !VehicleAhead || headway >= near => Normal
//	        after 5s => violate "headway not recovered within 5s"
//	    }
//	}
//
// Values are numeric (float64). In boolean contexts a value is true when
// it is non-zero and not NaN; comparisons involving NaN are false. This
// makes rules fail-safe under exceptional values: "RequestedDecel <= 0"
// does not hold for NaN, so an unverifiable consequent is a violation.
package speclang

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber   // 3.5, 1e-3
	tokDuration // 400ms, 5s
	tokString   // "..."
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokColon
	tokComma
	tokAssign   // =
	tokArrow    // ->
	tokFatArrow // =>
	tokOr       // ||
	tokAnd      // &&
	tokNot      // !
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
		tokDuration: "duration", tokString: "string", tokLBrace: "'{'",
		tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'",
		tokLBracket: "'['", tokRBracket: "']'", tokColon: "':'",
		tokComma: "','", tokAssign: "'='", tokArrow: "'->'",
		tokFatArrow: "'=>'", tokOr: "'||'", tokAnd: "'&&'", tokNot: "'!'",
		tokLT: "'<'", tokLE: "'<='", tokGT: "'>'", tokGE: "'>='",
		tokEQ: "'=='", tokNE: "'!='", tokPlus: "'+'", tokMinus: "'-'",
		tokStar: "'*'", tokSlash: "'/'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string        // identifier or string contents
	num  float64       // number value
	dur  time.Duration // duration value
	line int
	col  int
}

// Error is a compilation error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("speclang: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tk := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tk.kind = tokEOF
		return tk, nil
	}
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		return l.lexIdent(tk)
	case unicode.IsDigit(rune(c)), c == '.' && unicode.IsDigit(rune(l.peekByteAt(1))):
		return l.lexNumber(tk)
	case c == '"':
		return l.lexString(tk)
	}
	l.advance()
	two := func(second byte, with, without tokenKind) token {
		if l.peekByte() == second {
			l.advance()
			tk.kind = with
		} else {
			tk.kind = without
		}
		return tk
	}
	switch c {
	case '{':
		tk.kind = tokLBrace
	case '}':
		tk.kind = tokRBrace
	case '(':
		tk.kind = tokLParen
	case ')':
		tk.kind = tokRParen
	case '[':
		tk.kind = tokLBracket
	case ']':
		tk.kind = tokRBracket
	case ':':
		tk.kind = tokColon
	case ',':
		tk.kind = tokComma
	case '+':
		tk.kind = tokPlus
	case '*':
		tk.kind = tokStar
	case '/':
		tk.kind = tokSlash
	case '-':
		return two('>', tokArrow, tokMinus), nil
	case '=':
		if l.peekByte() == '=' {
			l.advance()
			tk.kind = tokEQ
		} else if l.peekByte() == '>' {
			l.advance()
			tk.kind = tokFatArrow
		} else {
			tk.kind = tokAssign
		}
	case '!':
		return two('=', tokNE, tokNot), nil
	case '<':
		return two('=', tokLE, tokLT), nil
	case '>':
		return two('=', tokGE, tokGT), nil
	case '|':
		if l.peekByte() != '|' {
			return tk, errAt(tk.line, tk.col, "unexpected '|' (did you mean '||'?)")
		}
		l.advance()
		tk.kind = tokOr
	case '&':
		if l.peekByte() != '&' {
			return tk, errAt(tk.line, tk.col, "unexpected '&' (did you mean '&&'?)")
		}
		l.advance()
		tk.kind = tokAnd
	default:
		return tk, errAt(tk.line, tk.col, "unexpected character %q", c)
	}
	return tk, nil
}

func (l *lexer) lexIdent(tk token) (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.peekByte())
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.advance()
	}
	tk.kind = tokIdent
	tk.text = l.src[start:l.pos]
	return tk, nil
}

func (l *lexer) lexNumber(tk token) (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.peekByte()
		if unicode.IsDigit(rune(c)) || c == '.' {
			l.advance()
			continue
		}
		if (c == 'e' || c == 'E') && (unicode.IsDigit(rune(l.peekByteAt(1))) ||
			((l.peekByteAt(1) == '+' || l.peekByteAt(1) == '-') && unicode.IsDigit(rune(l.peekByteAt(2))))) {
			l.advance() // e
			l.advance() // sign or digit
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return tk, errAt(tk.line, tk.col, "malformed number %q", text)
	}
	// Duration suffix: "ms" or "s" immediately following the number.
	if strings.HasPrefix(l.src[l.pos:], "ms") {
		l.advance()
		l.advance()
		tk.kind = tokDuration
		tk.dur = time.Duration(v * float64(time.Millisecond))
		return tk, nil
	}
	if l.peekByte() == 's' && !isIdentByte(l.peekByteAt(1)) {
		l.advance()
		tk.kind = tokDuration
		tk.dur = time.Duration(v * float64(time.Second))
		return tk, nil
	}
	tk.kind = tokNumber
	tk.num = v
	return tk, nil
}

func isIdentByte(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

func (l *lexer) lexString(tk token) (token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return tk, errAt(tk.line, tk.col, "unterminated string")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return tk, errAt(tk.line, tk.col, "newline in string")
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return tk, errAt(tk.line, tk.col, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case '"', '\\':
				sb.WriteByte(e)
			case 'n':
				sb.WriteByte('\n')
			default:
				return tk, errAt(tk.line, tk.col, "unknown escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	tk.kind = tokString
	tk.text = sb.String()
	return tk, nil
}

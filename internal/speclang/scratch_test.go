package speclang

import (
	"reflect"
	"testing"
	"time"
)

// scratchSource builds a multi-signal source exercising every
// evaluator path: binary arithmetic, comparisons, temporal windows,
// warmups, severity, and a monitor state machine.
func scratchSource(n int) *memSource {
	src := newMemSource(10 * time.Millisecond)
	vel := make([]float64, n)
	rng := make([]float64, n)
	upd := make([]bool, n)
	for i := 0; i < n; i++ {
		vel[i] = float64(20 + (i%40)-(i%13))
		rng[i] = float64(60 - (i % 55))
		upd[i] = i%5 == 0 // slow signal: updates every fifth step
	}
	src.add("velocity", vel...)
	src.addWithUpd("target_range", rng, upd)
	return src
}

const scratchSpec = `
const floor = 8.0

spec RangeFloor "range stays above a moving floor" {
  let gap = target_range - floor
  warmup 100ms
  warmup 50ms on changed(velocity)
  severity gap
  assert velocity > 5 -> always[0ms:50ms](gap > -40)
  assert eventually[0ms:200ms](target_range > 10)
}

monitor Closing "closing gaps must reopen" {
  warmup 100ms
  initial state Idle {
    when delta(target_range) < -3 => InClose
  }
  state InClose {
    when target_range > 50 => Idle
    after 300ms => violate "stuck closing"
  }
}
`

// TestScratchDifferential pins the scratch-backed evaluator to the
// plain allocator bit for bit: same rules, same source, alternating
// with and without a (reused) Scratch, across step counts that force
// the scratch to resize.
func TestScratchDifferential(t *testing.T) {
	rs := compileOne(t, scratchSpec, "velocity", "target_range")
	scr := NewScratch()
	for _, n := range []int{500, 500, 211, 500} {
		src := scratchSource(n)
		for _, mode := range []DeltaMode{DeltaUpdateAware, DeltaNaive} {
			plain, err := rs.Eval(src, EvalOptions{DeltaMode: mode})
			if err != nil {
				t.Fatalf("plain eval (n=%d): %v", n, err)
			}
			pooled, err := rs.Eval(src, EvalOptions{DeltaMode: mode, Scratch: scr})
			if err != nil {
				t.Fatalf("scratch eval (n=%d): %v", n, err)
			}
			if !reflect.DeepEqual(plain, pooled) {
				t.Errorf("n=%d mode=%v: scratch-backed results diverge\nplain:  %+v\npooled: %+v",
					n, mode, plain, pooled)
			}
		}
	}
}

// TestScratchResultsOutliveReuse verifies the lifetime contract: a
// RuleResult captured before the scratch is reused (and its slabs
// rewritten) must not change.
func TestScratchResultsOutliveReuse(t *testing.T) {
	rs := compileOne(t, scratchSpec, "velocity", "target_range")
	scr := NewScratch()
	src := scratchSource(400)
	first, err := rs.Eval(src, EvalOptions{Scratch: scr})
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := rs.Eval(src, EvalOptions{Scratch: scr})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the scratch over a different source; first/snapshot must
	// stay intact if no slab memory leaked into the results.
	if _, err := rs.Eval(scratchSource(399), EvalOptions{Scratch: scr}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Errorf("results changed after scratch reuse:\nfirst:    %+v\nsnapshot: %+v", first, snapshot)
	}
}

// TestScratchAllocs pins the steady-state allocation count of a
// scratch-backed evaluation: the per-step slabs (the dominant cost,
// one per expression node) must all come from the scratch. What is
// left is per-rule bookkeeping — result slices, the lets map, violation
// messages — which is independent of the step count.
func TestScratchAllocs(t *testing.T) {
	rs := compileOne(t, scratchSpec, "velocity", "target_range")
	src := scratchSource(4096)
	scr := NewScratch()
	opts := EvalOptions{Scratch: scr}
	if _, err := rs.Eval(src, opts); err != nil { // warm the slab pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := rs.Eval(src, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The two marks []string vectors are the only remaining n-sized
	// allocations; everything else is constant-size bookkeeping.
	const maxAllocs = 60
	if allocs > maxAllocs {
		t.Errorf("scratch-backed Eval allocates %.0f times per run, want <= %d", allocs, maxAllocs)
	}
}

package speclang_test

import (
	"fmt"
	"time"

	"cpsmon/internal/speclang"
)

// exampleSource is a small aligned data source for the examples.
type exampleSource struct {
	vals map[string][]float64
	n    int
}

func (s *exampleSource) NumSteps() int             { return s.n }
func (s *exampleSource) StepPeriod() time.Duration { return 10 * time.Millisecond }
func (s *exampleSource) Values(name string) ([]float64, bool) {
	v, ok := s.vals[name]
	return v, ok
}
func (s *exampleSource) Updated(name string) ([]bool, bool) {
	v, ok := s.vals[name]
	if !ok {
		return nil, false
	}
	upd := make([]bool, len(v))
	for i := range upd {
		upd[i] = true
	}
	return upd, true
}

// Example_offline shows the whole offline pipeline: parse a rule,
// compile it against a signal universe, and evaluate it over a trace.
func Example_offline() {
	file, err := speclang.Parse(`
spec DecelIsNegative "a requested deceleration decelerates" {
    assert BrakeRequested -> RequestedDecel <= 0.0
}`)
	if err != nil {
		panic(err)
	}
	rules, err := speclang.Compile(file, []string{"BrakeRequested", "RequestedDecel"})
	if err != nil {
		panic(err)
	}
	src := &exampleSource{
		n: 5,
		vals: map[string][]float64{
			"BrakeRequested": {0, 1, 1, 1, 0},
			"RequestedDecel": {0, -1.5, 0.3, -1.5, 0},
		},
	}
	results, err := rules.Eval(src, speclang.EvalOptions{})
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Printf("%s: violated=%v violations=%d\n", res.Name, res.Violated(), len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  at %v for %v\n", v.Start, v.Duration())
		}
	}
	// Output:
	// DecelIsNegative: violated=true violations=1
	//   at 20ms for 10ms
}

// Example_online shows the streaming path: the same rule evaluated one
// step at a time, with events delivered as they become decidable.
func Example_online() {
	file, err := speclang.Parse(`spec Spike { assert x <= 1.0 }`)
	if err != nil {
		panic(err)
	}
	rules, err := speclang.Compile(file, []string{"x"})
	if err != nil {
		panic(err)
	}
	checker, err := rules.NewStreamChecker([]string{"x"}, 10*time.Millisecond, speclang.EvalOptions{})
	if err != nil {
		panic(err)
	}
	for _, v := range []float64{0, 2, 2, 0} {
		events, err := checker.Step([]float64{v}, []bool{true})
		if err != nil {
			panic(err)
		}
		for _, e := range events {
			switch e.Kind {
			case speclang.ViolationBegin:
				fmt.Printf("begin at %v\n", e.Time)
			case speclang.ViolationEnd:
				fmt.Printf("end at %v (%v)\n", e.Time, e.Violation.Duration())
			}
		}
	}
	if _, err := checker.Finish(); err != nil {
		panic(err)
	}
	// Output:
	// begin at 10ms
	// end at 30ms (20ms)
}

// ExampleFormat shows the canonical formatter.
func ExampleFormat() {
	file, err := speclang.Parse(`spec R{assert (a&&b)->eventually[0:400ms](x<=0)}`)
	if err != nil {
		panic(err)
	}
	fmt.Print(speclang.Format(file))
	// Output:
	// spec R {
	//     assert a && b -> eventually[0s:400ms](x <= 0)
	// }
}

package speclang

import (
	"testing"
)

// FuzzParse exercises the lexer and parser with arbitrary input: they
// must return an error or a File, never panic, and anything that parses
// must survive a format/reparse round trip. The seed corpus covers
// every syntactic construct; `go test` runs the seeds, and
// `go test -fuzz=FuzzParse ./internal/speclang` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"spec R { assert x }",
		`const k = -1.5
spec R "d" {
    let d = delta(x)
    warmup 100ms on rise(b)
    severity abs(d)
    assert (b -> d <= k) && eventually[0:400ms](d <= 0)
}`,
		`monitor M {
    initial state A { when always[0:30ms](x) => violate "m" then B }
    state B { after 5s => A }
}`,
		"spec P { assert once[20ms:60ms](x) || historically[0:10ms](x) }",
		"spec Q { assert cond(a, min(x, y), max(x, y)) != 0 / 0 }",
		"spec Bad { assert ",
		"monitor Bad { state A {",
		"spec S { assert 1e309 > 4.9e-324 }",
		"spec U { assert updated(x) && valid(x) }",
		"// just a comment",
		"spec R { assert \"string where expr expected\" }",
		"spec R { assert x } spec R { assert x }",
		"const a = 1 const a = 2",
		"spec W { warmup 0ms assert x }",
		"spec N { assert !!!x == --x }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := Format(file)
		if _, err := Parse(printed); err != nil {
			t.Fatalf("formatted output does not reparse: %v\n--- input ---\n%q\n--- output ---\n%s", err, src, printed)
		}
	})
}

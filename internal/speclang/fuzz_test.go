package speclang

import (
	"errors"
	"testing"
)

// FuzzParse exercises the lexer and parser with arbitrary input: they
// must return an error or a File, never panic, and anything that parses
// must survive a format/reparse round trip. The seed corpus covers
// every syntactic construct; `go test` runs the seeds, and
// `go test -fuzz=FuzzParse ./internal/speclang` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"spec R { assert x }",
		`const k = -1.5
spec R "d" {
    let d = delta(x)
    warmup 100ms on rise(b)
    severity abs(d)
    assert (b -> d <= k) && eventually[0:400ms](d <= 0)
}`,
		`monitor M {
    initial state A { when always[0:30ms](x) => violate "m" then B }
    state B { after 5s => A }
}`,
		"spec P { assert once[20ms:60ms](x) || historically[0:10ms](x) }",
		"spec Q { assert cond(a, min(x, y), max(x, y)) != 0 / 0 }",
		"spec Bad { assert ",
		"monitor Bad { state A {",
		"spec S { assert 1e309 > 4.9e-324 }",
		"spec U { assert updated(x) && valid(x) }",
		"// just a comment",
		"spec R { assert \"string where expr expected\" }",
		"spec R { assert x } spec R { assert x }",
		"const a = 1 const a = 2",
		"spec W { warmup 0ms assert x }",
		"spec N { assert !!!x == --x }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := Format(file)
		if _, err := Parse(printed); err != nil {
			t.Fatalf("formatted output does not reparse: %v\n--- input ---\n%q\n--- output ---\n%s", err, src, printed)
		}
	})
}

// FuzzSpecParser is the rollout-facing contract: arbitrary bytes
// pushed at `monitorctl spec push` reach Parse and then Compile, and
// the refusal must always be a positioned *Error (never a panic, never
// a bare error the operator can't locate in their file). Accepted
// input must additionally survive the full pipeline the registry runs:
// format, reparse, recompile.
func FuzzSpecParser(f *testing.F) {
	seeds := []string{
		"garbage at top level",
		"spec NoAssert {\n    let d = delta(x)\n}",
		"spec U {\n    assert always(x)\n}",
		"spec R {\n    assert eventually[5s:1s](x)\n}",
		"spec S \"unterminated {\n    assert x\n}",
		"monitor M {\n    initial state A {\n        when x => violate \"m\" then A",
		"const limit = fast\nspec R { assert x < limit }",
		"spec D {\n    severity x\n    severity y\n    assert x\n}",
		"spec OK { assert eventually[0:400ms](x > 0) }",
		"spec OK2 { warmup 100ms on rise(b) assert b -> valid(x) }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	signals := []string{"x", "y", "b"}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("Parse returned %T, want *Error: %v", err, err)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("unpositioned parse error %d:%d: %s", pe.Line, pe.Col, pe.Msg)
			}
			return
		}
		rs, err := Compile(file, signals)
		if err != nil {
			return // semantic rejection is fine; panics are not
		}
		_ = rs
		reparsed, err := Parse(Format(file))
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v", err)
		}
		if _, err := Compile(reparsed, signals); err != nil {
			t.Fatalf("formatted output does not recompile: %v\n--- input ---\n%q", err, src)
		}
	})
}

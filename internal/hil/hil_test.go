package hil

import (
	"math"
	"testing"
	"time"

	"cpsmon/internal/fsracc"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/trace"
	"cpsmon/internal/vehicle"
)

// freeRoadBench returns a bench with the ego cruising on an empty road,
// engaged at 25 m/s.
func freeRoadBench(t *testing.T, typeCheck bool) *Bench {
	t.Helper()
	b, err := New(Config{
		TypeChecking: typeCheck,
		Ego:          vehicle.NewEgo(vehicle.DefaultEgoConfig(), 20),
		Driver: DriverFunc(func(time.Duration) DriverCommands {
			return DriverCommands{ACCSetSpeed: 25, SelHeadway: 2}
		}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestNewRequiresDriver(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without driver succeeded")
	}
}

func TestBenchDefaults(t *testing.T) {
	b := freeRoadBench(t, true)
	if b.Tick() != sigdb.FastPeriod {
		t.Errorf("Tick = %v, want %v", b.Tick(), sigdb.FastPeriod)
	}
	if b.Now() != 0 {
		t.Errorf("Now = %v, want 0", b.Now())
	}
}

func TestBenchConvergesToSetSpeed(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.Run(60*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := b.Ego().Speed(); math.Abs(v-25) > 0.5 {
		t.Errorf("ego speed after 60s = %v, want ≈25", v)
	}
	if b.Feature().Mode() != fsracc.ModeActive {
		t.Errorf("feature mode = %v, want active", b.Feature().Mode())
	}
}

func TestBenchNeverExceedsSetSpeedOnFlatRoad(t *testing.T) {
	b := freeRoadBench(t, true)
	for i := 0; i < 9000; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if v := b.Ego().Speed(); v > 25.3 {
			t.Fatalf("ego speed %v overshot set speed at t=%v", v, b.Now())
		}
	}
}

func TestBenchLogCarriesOutputs(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.Run(5*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr, err := trace.FromCANLog(b.Log(), sigdb.Vehicle())
	if err != nil {
		t.Fatalf("FromCANLog: %v", err)
	}
	enabled, ok := tr.Series(sigdb.SigACCEnabled)
	if !ok || len(enabled.Samples) == 0 {
		t.Fatal("no ACCEnabled samples on the bus")
	}
	// After the first ticks the feature reports enabled.
	if v, ok := enabled.At(time.Second); !ok || v != 1 {
		t.Errorf("ACCEnabled at 1s = %v,%v, want 1,true", v, ok)
	}
	torque, _ := tr.Series(sigdb.SigRequestedTorque)
	if v, ok := torque.At(2 * time.Second); !ok || v <= 0 {
		t.Errorf("RequestedTorque at 2s = %v, want positive (accelerating to set speed)", v)
	}
}

func TestInjectionOverridesFeatureInputOnly(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.Run(30*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Inject a low Velocity: the feature believes it is slow and
	// accelerates, but the bus keeps broadcasting the genuine speed.
	if err := b.SetInjection(sigdb.SigVelocity, 5); err != nil {
		t.Fatalf("SetInjection: %v", err)
	}
	if err := b.Run(b.Now()+10*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	busVel, err := b.BusValue(sigdb.SigVelocity)
	if err != nil {
		t.Fatalf("BusValue: %v", err)
	}
	if busVel < 25.5 {
		t.Errorf("bus velocity = %v, want genuine overspeed > 25.5 while feature chases injected 5", busVel)
	}
	b.ClearInjection(sigdb.SigVelocity)
}

func TestInjectionTypeCheckingOnHIL(t *testing.T) {
	b := freeRoadBench(t, true)
	// Floats accept anything, including exceptional values.
	if err := b.SetInjection(sigdb.SigTargetRange, math.NaN()); err != nil {
		t.Errorf("NaN float injection rejected on HIL: %v", err)
	}
	// Booleans accept only 0/1.
	if err := b.SetInjection(sigdb.SigVehicleAhead, 2); err == nil {
		t.Error("bool injection of 2 accepted despite type checking")
	}
	// Enums accept only declared ordinals.
	if err := b.SetInjection(sigdb.SigSelHeadway, 200); err == nil {
		t.Error("out-of-range enum injection accepted despite type checking")
	}
	if err := b.SetInjection(sigdb.SigSelHeadway, 3); err != nil {
		t.Errorf("valid enum injection rejected: %v", err)
	}
}

func TestInjectionWithoutTypeChecking(t *testing.T) {
	b := freeRoadBench(t, false)
	// A real vehicle network checks nothing.
	if err := b.SetInjection(sigdb.SigSelHeadway, 200); err != nil {
		t.Errorf("enum injection rejected without type checking: %v", err)
	}
	if err := b.SetInjection(sigdb.SigVehicleAhead, 7); err != nil {
		t.Errorf("bool injection rejected without type checking: %v", err)
	}
}

func TestInjectionRejectsNonInputs(t *testing.T) {
	b := freeRoadBench(t, false)
	if err := b.SetInjection(sigdb.SigRequestedTorque, 100); err == nil {
		t.Error("injection into an output signal accepted")
	}
	if err := b.SetInjection("NoSuchSignal", 1); err == nil {
		t.Error("injection into unknown signal accepted")
	}
}

func TestClearAllInjections(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.SetInjection(sigdb.SigVelocity, 5); err != nil {
		t.Fatalf("SetInjection: %v", err)
	}
	if err := b.SetInjection(sigdb.SigTargetRange, 5); err != nil {
		t.Fatalf("SetInjection: %v", err)
	}
	b.ClearAllInjections()
	if got := b.readInput(sigdb.SigVelocity); got == 5 {
		t.Error("injection still active after ClearAllInjections")
	}
}

func TestDriverBrakeSlowsVehicleInStandby(t *testing.T) {
	braking := false
	b, err := New(Config{
		Ego: vehicle.NewEgo(vehicle.DefaultEgoConfig(), 25),
		Driver: DriverFunc(func(t time.Duration) DriverCommands {
			cmd := DriverCommands{ACCSetSpeed: 25, SelHeadway: 2}
			if braking {
				cmd.BrakePedPres = 15
			}
			return cmd
		}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := b.Run(10*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	braking = true
	if err := b.Run(15*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.Feature().Mode() != fsracc.ModeStandby {
		t.Errorf("mode = %v, want standby under driver braking", b.Feature().Mode())
	}
	if v := b.Ego().Speed(); v > 10 {
		t.Errorf("ego speed = %v, want slowed by driver braking", v)
	}
}

func TestActuationSanitizesNaNRequests(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.Run(20*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// NaN velocity input sends the feature to the brake path with a NaN
	// decel; the brake ECU must not apply it.
	if err := b.SetInjection(sigdb.SigVelocity, math.NaN()); err != nil {
		t.Fatalf("SetInjection: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if v := b.Ego().Speed(); math.IsNaN(v) {
			t.Fatal("plant speed went NaN: actuation not sanitized")
		}
	}
}

func TestWatchdogServiceACCVisibleOnBus(t *testing.T) {
	b := freeRoadBench(t, true)
	if err := b.Run(20*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := b.SetInjection(sigdb.SigVelocity, math.NaN()); err != nil {
		t.Fatalf("SetInjection: %v", err)
	}
	if err := b.Run(b.Now()+2*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	svc, err := b.BusValue(sigdb.SigServiceACC)
	if err != nil {
		t.Fatalf("BusValue: %v", err)
	}
	if svc != 1 {
		t.Error("ServiceACC not broadcast after sustained NaN")
	}
	enabled, _ := b.BusValue(sigdb.SigACCEnabled)
	if enabled != 0 {
		t.Error("ACCEnabled still broadcast during fault (would violate Rule #0)")
	}
}

func TestRunOnTickHookErrors(t *testing.T) {
	b := freeRoadBench(t, true)
	wantErr := false
	err := b.Run(time.Second, func(t time.Duration, b *Bench) error {
		if t >= 500*time.Millisecond {
			wantErr = true
			return errHook
		}
		return nil
	})
	if err == nil || !wantErr {
		t.Fatal("hook error not propagated")
	}
}

var errHook = errTest("hook")

type errTest string

func (e errTest) Error() string { return string(e) }

// Package hil implements the hardware-in-the-loop testbench: it wires
// the simulated vehicle plant, the FSRACC feature, the actuation ECUs
// and the broadcast bus into a fixed-step co-simulation, and provides
// the black-box injection multiplexors used for robustness testing.
//
// It stands in for the dSPACE bench plus ControlDesk from the paper:
//
//   - Each FSRACC input is routed through an added multiplexor with an
//     inject value and an enable, exactly as the paper instrumented the
//     feature model (the feature code itself is untouched).
//   - The injection interface performs strong data-type bounds checking
//     when TypeChecking is on (the HIL behaviour that limited what could
//     be injected, Section V.C.3); switching it off models injecting on
//     a real vehicle network, which checks nothing.
//   - Trace capture is the bus frame log; the monitor consumes only
//     that log.
package hil

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/fsracc"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/vehicle"
)

// DriverCommands is what the (scripted) driver does at a point in time.
type DriverCommands struct {
	// ACCSetSpeed is the commanded cruise speed in m/s (0 disengages).
	ACCSetSpeed float64
	// SelHeadway is the selected headway enum ordinal.
	SelHeadway float64
	// BrakePedPres is the brake pedal pressure in bar.
	BrakePedPres float64
	// AccelPedPos is the accelerator pedal position in percent.
	AccelPedPos float64
}

// DriverModel scripts the driver over scenario time.
type DriverModel interface {
	// Commands returns the driver inputs at scenario time t.
	Commands(t time.Duration) DriverCommands
}

// DriverFunc adapts a function to DriverModel.
type DriverFunc func(t time.Duration) DriverCommands

// Commands implements DriverModel.
func (f DriverFunc) Commands(t time.Duration) DriverCommands { return f(t) }

// TrafficModel scripts surrounding traffic over scenario time.
type TrafficModel interface {
	// Step advances traffic by dt seconds at scenario time t.
	Step(dt float64, t time.Duration)
	// Lead reports whether a physical lead vehicle is present in the
	// ego lane and, if so, its position and speed.
	Lead() (present bool, pos, vel float64)
}

// NoTraffic is a TrafficModel with an empty road.
type NoTraffic struct{}

// Step implements TrafficModel.
func (NoTraffic) Step(float64, time.Duration) {}

// Lead implements TrafficModel.
func (NoTraffic) Lead() (bool, float64, float64) { return false, 0, 0 }

// Config assembles a bench.
type Config struct {
	// DB is the signal database; defaults to sigdb.Vehicle().
	DB *sigdb.DB
	// Tick is the co-simulation step; defaults to sigdb.FastPeriod.
	Tick time.Duration
	// JitterProb is the per-emission probability that a slow frame
	// slips one tick (Section V.C.1's "five faster updates").
	JitterProb float64
	// Seed seeds all stochastic bench components.
	Seed int64
	// TypeChecking enables the injection interface's strong data-type
	// bounds checking (on for the HIL bench, off for a real vehicle).
	TypeChecking bool
	// VelocityNoise is the standard deviation of the wheel-speed sensor
	// noise in m/s (zero on the HIL, non-zero on the real vehicle).
	VelocityNoise float64

	// Ego is the plant; defaults to a standard sedan at rest.
	Ego *vehicle.Ego
	// Traffic scripts the surrounding vehicles; defaults to NoTraffic.
	Traffic TrafficModel
	// RadarCfg configures the forward sensor; nil means a noiseless
	// HIL-grade radar. Noise and dropouts draw from the bench's seeded
	// random source.
	RadarCfg *vehicle.RadarConfig
	// Grade is the road profile; defaults to a flat road.
	Grade vehicle.GradeProfile
	// Driver scripts the driver; required.
	Driver DriverModel
	// Feature is the controller under test; defaults to a fresh FSRACC
	// with default configuration.
	Feature *fsracc.Controller
}

// Bench is the assembled testbench.
type Bench struct {
	db       *sigdb.DB
	tick     time.Duration
	typeChk  bool
	velNoise float64
	rng      *rand.Rand

	ego     *vehicle.Ego
	traffic TrafficModel
	radar   *vehicle.Radar
	grade   vehicle.GradeProfile
	driver  DriverModel
	feature *fsracc.Controller

	bus *can.Bus

	inject map[string]float64 // enabled injections by signal name

	step          int
	appliedTorque float64
	lastOut       fsracc.Outputs
}

// New assembles a bench from the configuration.
func New(cfg Config) (*Bench, error) {
	if cfg.Driver == nil {
		return nil, errors.New("hil: config requires a Driver")
	}
	if cfg.DB == nil {
		cfg.DB = sigdb.Vehicle()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = sigdb.FastPeriod
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Ego == nil {
		cfg.Ego = vehicle.NewEgo(vehicle.DefaultEgoConfig(), 0)
	}
	if cfg.Traffic == nil {
		cfg.Traffic = NoTraffic{}
	}
	radarCfg := vehicle.DefaultRadarConfig()
	if cfg.RadarCfg != nil {
		radarCfg = *cfg.RadarCfg
	}
	if cfg.Grade == nil {
		cfg.Grade = vehicle.FlatRoad
	}
	if cfg.Feature == nil {
		cfg.Feature = fsracc.New(fsracc.DefaultConfig())
	}
	sched, err := can.NewTxSchedule(cfg.DB, cfg.Tick, cfg.JitterProb, rng)
	if err != nil {
		return nil, fmt.Errorf("hil: %w", err)
	}
	return &Bench{
		db:       cfg.DB,
		tick:     cfg.Tick,
		typeChk:  cfg.TypeChecking,
		velNoise: cfg.VelocityNoise,
		rng:      rng,
		ego:      cfg.Ego,
		traffic:  cfg.Traffic,
		radar:    vehicle.NewRadar(radarCfg, rng),
		grade:    cfg.Grade,
		driver:   cfg.Driver,
		feature:  cfg.Feature,
		bus:      can.NewBus(cfg.DB, sched),
		inject:   make(map[string]float64),
	}, nil
}

// Now returns the current scenario time.
func (b *Bench) Now() time.Duration { return time.Duration(b.step) * b.tick }

// Tick returns the co-simulation step size.
func (b *Bench) Tick() time.Duration { return b.tick }

// Log returns the trace capture: the full bus frame log.
func (b *Bench) Log() *can.Log { return b.bus.Log() }

// Ego returns the plant, for scenario assertions.
func (b *Bench) Ego() *vehicle.Ego { return b.ego }

// Feature returns the controller under test. Campaigns use it only for
// the intent-approximation ground truth; the monitor never touches it.
func (b *Bench) Feature() *fsracc.Controller { return b.feature }

// BusValue returns the latched broadcast value of a signal, as any node
// on the network currently observes it.
func (b *Bench) BusValue(name string) (float64, error) {
	return b.bus.Read(name)
}

// SetInjection enables the multiplexor for one FSRACC input signal,
// replacing what the feature sees with value. When type checking is on,
// values not representable in the signal's declared type are rejected
// with an error, exactly as ControlDesk rejected them on the bench.
func (b *Bench) SetInjection(name string, value float64) error {
	sig, ok := b.db.Signal(name)
	if !ok {
		return fmt.Errorf("hil: injection into unknown signal %q", name)
	}
	if !isFSRACCInput(name) {
		return fmt.Errorf("hil: signal %q is not an FSRACC input", name)
	}
	if b.typeChk {
		if err := sig.CheckValue(value); err != nil {
			return fmt.Errorf("hil: %w", err)
		}
	}
	b.inject[name] = value
	return nil
}

// ClearInjection disables the multiplexor for one signal, passing the
// genuine network value through again.
func (b *Bench) ClearInjection(name string) {
	delete(b.inject, name)
}

// ClearAllInjections disables every multiplexor.
func (b *Bench) ClearAllInjections() {
	b.inject = make(map[string]float64)
}

func isFSRACCInput(name string) bool {
	for _, n := range sigdb.FSRACCInputs() {
		if n == name {
			return true
		}
	}
	return false
}

// readInput reads one feature input: the latched bus value, overridden
// by the injection multiplexor when enabled.
func (b *Bench) readInput(name string) float64 {
	if v, ok := b.inject[name]; ok {
		return v
	}
	v, err := b.bus.Read(name)
	if err != nil {
		// Unreachable for signals in the database; fail loudly if the
		// wiring is ever broken.
		panic(err)
	}
	return v
}

// Step advances the co-simulation by one tick.
func (b *Bench) Step() error {
	now := b.Now()
	dt := b.tick.Seconds()

	// 1. World: traffic, radar, driver.
	b.traffic.Step(dt, now)
	present, leadPos, leadVel := b.traffic.Lead()
	obs := b.radar.Observe(b.tick, b.ego.Position(), b.ego.Speed(), present, leadPos, leadVel)
	cmd := b.driver.Commands(now)

	// 2. Sensor and command nodes publish onto the bus.
	vel := b.ego.Speed()
	if b.velNoise > 0 {
		vel += b.rng.NormFloat64() * b.velNoise
		if vel < 0 {
			vel = 0
		}
	}
	throt := 0.0
	if max := b.ego.Config().MaxEngineTorque; max > 0 {
		throt = 100 * clamp(b.appliedTorque/max, 0, 1)
	}
	// Publish with direct Set calls — this runs every tick of every
	// campaign scenario, so no per-tick value map.
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{sigdb.SigVelocity, vel},
		{sigdb.SigThrotPos, throt},
		{sigdb.SigAccelPedPos, cmd.AccelPedPos},
		{sigdb.SigBrakePedPres, cmd.BrakePedPres},
		{sigdb.SigACCSetSpeed, cmd.ACCSetSpeed},
		{sigdb.SigSelHeadway, cmd.SelHeadway},
		{sigdb.SigTargetRange, obs.Range},
		{sigdb.SigTargetRelVel, obs.RelVel},
		{sigdb.SigVehicleAhead, boolToF(obs.Ahead)},
	} {
		if err := b.bus.Set(p.name, p.v); err != nil {
			return err
		}
	}

	// 3. Bus transmits the frames due this tick (including the feature
	// outputs computed last tick, which models ECU pipeline latency).
	if err := b.bus.Step(now); err != nil {
		return err
	}

	// 4. The feature reads its inputs from the network through the
	// injection multiplexors and executes one control cycle.
	in := fsracc.Inputs{
		Velocity:     b.readInput(sigdb.SigVelocity),
		AccelPedPos:  b.readInput(sigdb.SigAccelPedPos),
		BrakePedPres: b.readInput(sigdb.SigBrakePedPres),
		ACCSetSpeed:  b.readInput(sigdb.SigACCSetSpeed),
		ThrotPos:     b.readInput(sigdb.SigThrotPos),
		VehicleAhead: b.readInput(sigdb.SigVehicleAhead) != 0,
		TargetRange:  b.readInput(sigdb.SigTargetRange),
		TargetRelVel: b.readInput(sigdb.SigTargetRelVel),
		SelHeadway:   b.readInput(sigdb.SigSelHeadway),
	}
	out := b.feature.Step(dt, in)
	b.lastOut = out
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{sigdb.SigACCEnabled, boolToF(out.ACCEnabled)},
		{sigdb.SigBrakeRequested, boolToF(out.BrakeRequested)},
		{sigdb.SigTorqueRequested, boolToF(out.TorqueRequested)},
		{sigdb.SigRequestedTorque, out.RequestedTorque},
		{sigdb.SigRequestedDecel, out.RequestedDecel},
		{sigdb.SigServiceACC, boolToF(out.ServiceACC)},
	} {
		if err := b.bus.Set(p.name, p.v); err != nil {
			return err
		}
	}

	// 5. Actuation ECUs apply the feature's requests from the network
	// (latched, so one tick behind) plus the driver's pedals. Unlike
	// the feature, production engine and brake controllers sanitize
	// their actuation commands.
	torque, decel := b.actuation(cmd)
	b.appliedTorque = torque
	b.ego.Step(dt, torque, decel, b.grade(b.ego.Position()))

	b.step++
	return nil
}

// actuation derives the applied engine torque and brake deceleration
// from the broadcast feature outputs and the driver pedals.
func (b *Bench) actuation(cmd DriverCommands) (torque, decel float64) {
	read := func(name string) float64 {
		v, err := b.bus.Read(name)
		if err != nil {
			panic(err)
		}
		return v
	}
	enabled := read(sigdb.SigACCEnabled) != 0
	if enabled && read(sigdb.SigTorqueRequested) != 0 {
		if t := read(sigdb.SigRequestedTorque); isFiniteF(t) && t > 0 {
			torque = t
		}
	}
	if enabled && read(sigdb.SigBrakeRequested) != 0 {
		if d := read(sigdb.SigRequestedDecel); isFiniteF(d) && d < 0 {
			decel = -d
		}
	}
	// Driver pedals act in parallel (and dominate by magnitude).
	if p := cmd.AccelPedPos; p > 0 && isFiniteF(p) {
		driverTorque := clamp(p, 0, 100) / 100 * b.ego.Config().MaxEngineTorque
		if driverTorque > torque {
			torque = driverTorque
		}
	}
	if p := cmd.BrakePedPres; p > 0 && isFiniteF(p) {
		driverDecel := clamp(p*0.3, 0, b.ego.Config().MaxBrakeDecel)
		if driverDecel > decel {
			decel = driverDecel
		}
	}
	return torque, decel
}

// Run advances the bench until d has elapsed, invoking onTick (when not
// nil) before every step. Campaign scripts use the hook to drive the
// injection multiplexors, mirroring the paper's rtplib scripting.
func (b *Bench) Run(d time.Duration, onTick func(t time.Duration, b *Bench) error) error {
	for b.Now() < d {
		if onTick != nil {
			if err := onTick(b.Now(), b); err != nil {
				return err
			}
		}
		if err := b.Step(); err != nil {
			return err
		}
	}
	return nil
}

func boolToF(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func isFiniteF(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

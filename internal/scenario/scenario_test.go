package scenario

import (
	"math"
	"testing"
	"time"

	"cpsmon/internal/fsracc"
	"cpsmon/internal/hil"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/vehicle"
)

func TestDriverScriptPhases(t *testing.T) {
	s := DriverScript{
		{Until: 10 * time.Second, Cmd: hil.DriverCommands{ACCSetSpeed: 25}},
		{Until: 20 * time.Second, Cmd: hil.DriverCommands{BrakePedPres: 10}},
		{Until: 30 * time.Second, Cmd: hil.DriverCommands{ACCSetSpeed: 30}},
	}
	tests := []struct {
		at   time.Duration
		want hil.DriverCommands
	}{
		{0, hil.DriverCommands{ACCSetSpeed: 25}},
		{9 * time.Second, hil.DriverCommands{ACCSetSpeed: 25}},
		{10 * time.Second, hil.DriverCommands{BrakePedPres: 10}},
		{25 * time.Second, hil.DriverCommands{ACCSetSpeed: 30}},
		{99 * time.Second, hil.DriverCommands{ACCSetSpeed: 30}}, // last holds
	}
	for _, tt := range tests {
		if got := s.Commands(tt.at); got != tt.want {
			t.Errorf("Commands(%v) = %+v, want %+v", tt.at, got, tt.want)
		}
	}
}

func TestEmptyDriverScript(t *testing.T) {
	var s DriverScript
	if got := s.Commands(time.Second); got != (hil.DriverCommands{}) {
		t.Errorf("empty script Commands = %+v, want zero", got)
	}
}

func TestConstantDriver(t *testing.T) {
	cmd := hil.DriverCommands{ACCSetSpeed: 25, SelHeadway: 2}
	s := ConstantDriver(cmd)
	if got := s.Commands(0); got != cmd {
		t.Errorf("Commands(0) = %+v", got)
	}
	if got := s.Commands(100 * time.Hour); got != cmd {
		t.Errorf("Commands(100h) = %+v", got)
	}
}

func TestNewTrafficRejectsOverlap(t *testing.T) {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 20)
	_, err := NewTraffic(ego, []LeadEvent{
		{From: 0, To: 10 * time.Second, StartGap: 50, Profile: vehicle.SpeedProfile{{T: 0, Speed: 20}}},
		{From: 5 * time.Second, To: 15 * time.Second, StartGap: 50, Profile: vehicle.SpeedProfile{{T: 0, Speed: 20}}},
	})
	if err == nil {
		t.Fatal("overlapping events accepted")
	}
}

func TestNewTrafficRejectsEmptyWindow(t *testing.T) {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 20)
	_, err := NewTraffic(ego, []LeadEvent{
		{From: 10 * time.Second, To: 10 * time.Second, StartGap: 50},
	})
	if err == nil {
		t.Fatal("empty event window accepted")
	}
}

func TestTrafficSpawnAndCutOut(t *testing.T) {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 0)
	tr, err := NewTraffic(ego, []LeadEvent{
		{From: time.Second, To: 3 * time.Second, StartGap: 30, Profile: vehicle.SpeedProfile{{T: 0, Speed: 10}}},
		{From: 5 * time.Second, To: 7 * time.Second, StartGap: 20, Profile: vehicle.SpeedProfile{{T: 0, Speed: 15}}},
	})
	if err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	step := func(at time.Duration) (bool, float64, float64) {
		tr.Step(0.01, at)
		return tr.Lead()
	}
	if present, _, _ := step(0); present {
		t.Error("lead present before first event")
	}
	present, pos, vel := step(time.Second)
	if !present {
		t.Fatal("lead missing during first event")
	}
	if math.Abs(pos-30) > 0.5 || vel != 10 {
		t.Errorf("first lead pos=%v vel=%v, want ≈30, 10", pos, vel)
	}
	if present, _, _ = step(4 * time.Second); present {
		t.Error("lead present between events (cut-out failed)")
	}
	present, _, vel = step(5 * time.Second)
	if !present || vel != 15 {
		t.Errorf("second lead present=%v vel=%v, want true, 15", present, vel)
	}
	if present, _, _ = step(8 * time.Second); present {
		t.Error("lead present after last event")
	}
}

func TestTrafficCutInRelativeToEgo(t *testing.T) {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 25)
	tr, err := NewTraffic(ego, []LeadEvent{
		{From: 10 * time.Second, To: 20 * time.Second, StartGap: 22, Profile: vehicle.SpeedProfile{{T: 0, Speed: 26}}},
	})
	if err != nil {
		t.Fatalf("NewTraffic: %v", err)
	}
	// Drive the ego forward so its position is far from zero when the
	// cut-in spawns.
	for i := 0; i < 1000; i++ {
		ego.Step(0.01, 150, 0, 0)
		tr.Step(0.01, time.Duration(i)*10*time.Millisecond)
	}
	tr.Step(0.01, 10*time.Second)
	present, pos, _ := tr.Lead()
	if !present {
		t.Fatal("cut-in lead missing")
	}
	gap := pos - ego.Position()
	if gap < 20 || gap > 24 {
		t.Errorf("cut-in gap = %v, want ≈22 ahead of ego", gap)
	}
}

func TestRollingGrade(t *testing.T) {
	g := Rolling(0.03, 1000)
	if got := g(0); got != 0 {
		t.Errorf("Rolling at 0 = %v, want 0", got)
	}
	if got := g(250); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("Rolling at quarter wave = %v, want 0.03", got)
	}
	if got := g(750); math.Abs(got+0.03) > 1e-12 {
		t.Errorf("Rolling at three-quarter wave = %v, want -0.03", got)
	}
}

func TestFollowPresetRunsAndFollows(t *testing.T) {
	cfg := Follow(1, 2*time.Minute)
	b, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	if err := b.Run(60*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b.Feature().Mode() != fsracc.ModeActive {
		t.Fatalf("mode = %v, want active", b.Feature().Mode())
	}
	ahead, err := b.BusValue(sigdb.SigVehicleAhead)
	if err != nil {
		t.Fatalf("BusValue: %v", err)
	}
	if ahead != 1 {
		t.Error("no target tracked after 60s of the follow preset")
	}
	rng, _ := b.BusValue(sigdb.SigTargetRange)
	if rng < 10 || rng > 70 {
		t.Errorf("target range = %v, want a plausible following gap", rng)
	}
}

func TestFollowPresetStopAndGoPhase(t *testing.T) {
	cfg := Follow(1, 3*time.Minute)
	b, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	var minSpeed = math.Inf(1)
	if err := b.Run(2*time.Minute, func(time.Duration, *hil.Bench) error {
		if v := b.Ego().Speed(); v < minSpeed {
			minSpeed = v
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if minSpeed > 10 {
		t.Errorf("min ego speed = %v, want a crawl phase below 10 m/s", minSpeed)
	}
	if b.Ego().Speed() < 15 {
		t.Errorf("ego speed = %v at 2min, want recovered", b.Ego().Speed())
	}
}

func TestLeadBrakePresetStopsWithoutCollision(t *testing.T) {
	cfg := LeadBrake(4)
	b, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	minRange := math.Inf(1)
	reachedStandstill := false
	if err := b.Run(90*time.Second, func(now time.Duration, bench *hil.Bench) error {
		ahead, _ := bench.BusValue(sigdb.SigVehicleAhead)
		if ahead == 1 {
			if rng, _ := bench.BusValue(sigdb.SigTargetRange); rng < minRange {
				minRange = rng
			}
		}
		if bench.Ego().Speed() < 0.3 {
			reachedStandstill = true
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if minRange < 2 {
		t.Errorf("min range = %.2f m: the feature nearly collided in the non-faulted stop", minRange)
	}
	if !reachedStandstill {
		t.Error("ego never reached standstill behind the stopped lead (not full speed range)")
	}
	if v := b.Ego().Speed(); v < 15 {
		t.Errorf("ego speed = %.1f at 90s, want recovered behind the departing lead", v)
	}
}

func TestDriveCyclePresetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	cfg := DriveCycle(7)
	b, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	if err := b.Run(DriveCycleDuration, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := b.Ego().Speed(); math.IsNaN(v) || v < 0 {
		t.Fatalf("ego speed corrupted: %v", v)
	}
	// The cycle must exercise a stop-and-go phase and hills.
	if b.Ego().Position() < 5000 {
		t.Errorf("ego travelled only %v m in 10 min", b.Ego().Position())
	}
}

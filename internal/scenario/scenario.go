// Package scenario provides the driving scenarios used throughout the
// evaluation: scripted drivers, scripted traffic (lead vehicles that
// appear, brake, cut in and cut out), and preset benches for the
// robustness campaign and the "real vehicle" drive cycles.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/vehicle"
)

// DriverPhase is one phase of a scripted driver: the commands that hold
// until the given scenario time.
type DriverPhase struct {
	// Until is the exclusive end of the phase; the last phase's Until
	// is ignored and holds forever.
	Until time.Duration
	// Cmd is the driver command during the phase.
	Cmd hil.DriverCommands
}

// DriverScript is a piecewise-constant driver model.
type DriverScript []DriverPhase

var _ hil.DriverModel = DriverScript(nil)

// Commands implements hil.DriverModel.
func (s DriverScript) Commands(t time.Duration) hil.DriverCommands {
	for _, p := range s {
		if t < p.Until {
			return p.Cmd
		}
	}
	if len(s) == 0 {
		return hil.DriverCommands{}
	}
	return s[len(s)-1].Cmd
}

// ConstantDriver returns a driver holding one command forever.
func ConstantDriver(cmd hil.DriverCommands) DriverScript {
	return DriverScript{{Until: 1<<62 - 1, Cmd: cmd}}
}

// LeadEvent scripts one lead vehicle: present from From to To, spawning
// StartGap metres ahead of the ego vehicle, following Profile (indexed
// by scenario time) with the given acceleration limit.
type LeadEvent struct {
	From, To   time.Duration
	StartGap   float64
	Profile    vehicle.SpeedProfile
	AccelLimit float64
}

// Traffic replays a sequence of non-overlapping lead events relative to
// a shared ego vehicle.
type Traffic struct {
	ego    *vehicle.Ego
	events []LeadEvent
	idx    int
	cur    *vehicle.Lead
}

var _ hil.TrafficModel = (*Traffic)(nil)

// NewTraffic builds a traffic model over the given (shared) ego vehicle.
// Events must not overlap; they are replayed in start order.
func NewTraffic(ego *vehicle.Ego, events []LeadEvent) (*Traffic, error) {
	sorted := make([]LeadEvent, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	for i, e := range sorted {
		if e.To <= e.From {
			return nil, fmt.Errorf("scenario: lead event %d has To %v <= From %v", i, e.To, e.From)
		}
		if i > 0 && e.From < sorted[i-1].To {
			return nil, fmt.Errorf("scenario: lead events %d and %d overlap", i-1, i)
		}
	}
	return &Traffic{ego: ego, events: sorted}, nil
}

// Step implements hil.TrafficModel.
func (tr *Traffic) Step(dt float64, t time.Duration) {
	if tr.cur != nil && t >= tr.events[tr.idx].To {
		// Cut-out: the lead leaves the lane.
		tr.cur = nil
		tr.idx++
	}
	if tr.cur == nil && tr.idx < len(tr.events) {
		e := tr.events[tr.idx]
		if t >= e.From {
			// Spawn (a vehicle ahead at scenario start, or a cut-in).
			tr.cur = vehicle.NewLead(tr.ego.Position()+e.StartGap, e.Profile.At(t), e.Profile, e.AccelLimit)
		}
	}
	if tr.cur != nil {
		tr.cur.Step(dt, t)
	}
}

// Lead implements hil.TrafficModel.
func (tr *Traffic) Lead() (bool, float64, float64) {
	if tr.cur == nil {
		return false, 0, 0
	}
	return true, tr.cur.Position(), tr.cur.Speed()
}

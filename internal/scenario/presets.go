package scenario

import (
	"math"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/vehicle"
)

// sec converts seconds to a Duration.
func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Rolling returns a grade profile of gentle rolling hills: amplitude
// radians of grade with the given wavelength in metres.
func Rolling(amplitude, wavelength float64) vehicle.GradeProfile {
	return func(pos float64) float64 {
		return amplitude * math.Sin(2*math.Pi*pos/wavelength)
	}
}

// Follow returns the standard robustness-campaign bench: the ego vehicle
// engages FSRACC at 25 m/s behind a lead vehicle whose speed cycles
// between highway pace and a near-stop crawl, so injection windows land
// in approach, steady-follow, braking and stop-and-go contexts.
//
// The returned configuration is deterministic for a given seed and has
// type checking on (it is the HIL bench).
func Follow(seed int64, duration time.Duration) hil.Config {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 23)

	// Lead speed cycles with a 120 s period through the full speed
	// range FSRACC covers: highway cruise slightly below the ego set
	// speed, a moderate-speed section, and a stop-and-go crawl. Faults
	// injected at different offsets therefore land in approach, steady
	// follow, braking, low-speed follow and recovery contexts.
	var knots vehicle.SpeedProfile
	for t := 0.0; t <= duration.Seconds()+120; t += 120 {
		knots = append(knots,
			vehicle.SpeedKnot{T: sec(t), Speed: 23},
			vehicle.SpeedKnot{T: sec(t + 30), Speed: 23},
			vehicle.SpeedKnot{T: sec(t + 42), Speed: 12},
			vehicle.SpeedKnot{T: sec(t + 68), Speed: 12},
			vehicle.SpeedKnot{T: sec(t + 78), Speed: 5},
			vehicle.SpeedKnot{T: sec(t + 92), Speed: 5},
			vehicle.SpeedKnot{T: sec(t + 107), Speed: 23},
		)
	}
	traffic, err := NewTraffic(ego, []LeadEvent{{
		From:     0,
		To:       1<<62 - 1,
		StartGap: 60,
		Profile:  knots,
	}})
	if err != nil {
		// Static preset; an error is a programming mistake.
		panic(err)
	}

	return hil.Config{
		Seed:         seed,
		TypeChecking: true,
		Ego:          ego,
		Traffic:      traffic,
		Driver: ConstantDriver(hil.DriverCommands{
			ACCSetSpeed: 25,
			SelHeadway:  2,
		}),
	}
}

// Baseline returns the non-faulted HIL scenario used to confirm that
// monitoring "indicated a lack of problems in non-faulted operation":
// the same bench as Follow, run without any injection.
func Baseline(seed int64, duration time.Duration) hil.Config {
	return Follow(seed, duration)
}

// CutIn returns a bench exercising the overtaking/cut-in dynamics that
// produce Rule #2's false positives: the ego vehicle cruises on free
// road, accelerating back to set speed, when another car cuts in close
// (just under one second of headway) and then leaves again.
func CutIn(seed int64) hil.Config {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 21)
	traffic, err := NewTraffic(ego, []LeadEvent{
		// A slower car being followed initially, which changes lanes
		// away (the ego "overtakes") at t=40s...
		{From: 0, To: sec(40), StartGap: 55, Profile: vehicle.SpeedProfile{{T: 0, Speed: 22}}},
		// ...the ego accelerates back toward set speed, and at t=60s a
		// car cuts in at ≈0.9s headway going slightly faster.
		{From: sec(60), To: sec(110), StartGap: 22, Profile: vehicle.SpeedProfile{{T: 0, Speed: 26}}},
		// A second, tighter cut-in while the ego is pulling again.
		{From: sec(130), To: sec(170), StartGap: 20, Profile: vehicle.SpeedProfile{{T: 0, Speed: 25}}},
	})
	if err != nil {
		panic(err)
	}
	return hil.Config{
		Seed:         seed,
		TypeChecking: true,
		Ego:          ego,
		Driver: ConstantDriver(hil.DriverCommands{
			ACCSetSpeed: 25,
			SelHeadway:  3,
		}),
		Traffic: traffic,
	}
}

// Approach returns a bench in which a slower vehicle starts beyond the
// radar's detection range and the ego vehicle closes on it at the set
// speed: the target is acquired mid-approach with a genuinely negative
// relative velocity while TargetRange discretely jumps from zero to the
// true distance. This is the Section V.C.2 warm-up case.
func Approach(seed int64) hil.Config {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 25)
	traffic, err := NewTraffic(ego, []LeadEvent{{
		From:     0,
		To:       1<<62 - 1,
		StartGap: 220, // beyond the 150 m radar range
		Profile:  vehicle.SpeedProfile{{T: 0, Speed: 18}},
	}})
	if err != nil {
		panic(err)
	}
	return hil.Config{
		Seed:         seed,
		TypeChecking: true,
		Ego:          ego,
		Traffic:      traffic,
		Driver: ConstantDriver(hil.DriverCommands{
			ACCSetSpeed: 25,
			SelHeadway:  2,
		}),
	}
}

// LeadBrake returns a bench in which the lead vehicle brakes hard from
// highway speed to a standstill and holds it before pulling away — the
// full-speed-range stress case for the gap controller. On the
// non-faulted bench the feature must keep the vehicles apart and the
// safety rules clean; scenario tests assert both.
func LeadBrake(seed int64) hil.Config {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 24)
	traffic, err := NewTraffic(ego, []LeadEvent{{
		From:     0,
		To:       1<<62 - 1,
		StartGap: 45,
		Profile: vehicle.SpeedProfile{
			{T: 0, Speed: 24},
			{T: sec(20), Speed: 24},
			{T: sec(26), Speed: 0}, // 4 m/s² stop
			{T: sec(50), Speed: 0},
			{T: sec(65), Speed: 24},
		},
		AccelLimit: 4,
	}})
	if err != nil {
		panic(err)
	}
	return hil.Config{
		Seed:         seed,
		TypeChecking: true,
		Ego:          ego,
		Traffic:      traffic,
		Driver: ConstantDriver(hil.DriverCommands{
			ACCSetSpeed: 25,
			SelHeadway:  2,
		}),
	}
}

// DriveCycleDuration is the length of one real-vehicle drive cycle.
const DriveCycleDuration = 10 * time.Minute

// DriveCycle returns one "real prototype vehicle" recording bench:
// rolling hills, sensor noise, frame jitter, cut-ins, overtakes,
// stop-and-go traffic and driver interventions — and, crucially, no
// injection-interface type checking, because a vehicle network has
// none. Several cycles with different seeds stand in for the paper's
// "couple hours of representative driving".
func DriveCycle(seed int64) hil.Config {
	ego := vehicle.NewEgo(vehicle.DefaultEgoConfig(), 20)

	radarCfg := vehicle.DefaultRadarConfig()
	radarCfg.RangeNoise = 0.25
	radarCfg.RelVelNoise = 0.05

	traffic, err := NewTraffic(ego, []LeadEvent{
		// Catch up to slower traffic and follow it.
		{From: 0, To: sec(90), StartGap: 90, Profile: vehicle.SpeedProfile{{T: 0, Speed: 23}}},
		// Cut-in slightly under one second of headway, a bit faster,
		// gone again after forty seconds.
		{From: sec(100), To: sec(140), StartGap: 22, Profile: vehicle.SpeedProfile{{T: 0, Speed: 26}}},
		// Stop-and-go wave: traffic brakes to a crawl and recovers.
		{From: sec(150), To: sec(280), StartGap: 45, Profile: vehicle.SpeedProfile{
			{T: sec(150), Speed: 22},
			{T: sec(185), Speed: 22},
			{T: sec(200), Speed: 3},
			{T: sec(225), Speed: 3},
			{T: sec(245), Speed: 22},
		}},
		// Follow through the early hills.
		{From: sec(290), To: sec(425), StartGap: 60, Profile: vehicle.SpeedProfile{{T: 0, Speed: 24}}},
		// A tight cut-in (≈0.85 s headway, slightly faster) while the
		// ego is pulling back to the raised set speed on the long-
		// headway setting: the Rule #2 overtaking/cut-in transient.
		{From: sec(437), To: sec(470), StartGap: 21, Profile: vehicle.SpeedProfile{{T: 0, Speed: 26.5}}},
		// Free road over the rolling hills for the rest of the cycle:
		// the speed oscillation around the set speed that produces the
		// Rule #3/#4 "negligible increase" violations.
	})
	if err != nil {
		panic(err)
	}

	driver := DriverScript{
		// Engage at 25 m/s.
		{Until: sec(230), Cmd: hil.DriverCommands{ACCSetSpeed: 25, SelHeadway: 2}},
		// Driver taps the brake in the stop-and-go wave (cancels), then
		// re-engages.
		{Until: sec(234), Cmd: hil.DriverCommands{ACCSetSpeed: 25, SelHeadway: 2, BrakePedPres: 12}},
		{Until: sec(244), Cmd: hil.DriverCommands{}},
		{Until: sec(430), Cmd: hil.DriverCommands{ACCSetSpeed: 25, SelHeadway: 2}},
		// Driver selects a longer headway and a higher set speed for
		// the hills section.
		{Until: sec(600), Cmd: hil.DriverCommands{ACCSetSpeed: 27, SelHeadway: 3}},
	}

	return hil.Config{
		Seed:          seed,
		TypeChecking:  false,
		JitterProb:    0.08,
		VelocityNoise: 0.03,
		Ego:           ego,
		RadarCfg:      &radarCfg,
		Traffic:       traffic,
		Driver:        driver,
		Grade:         Rolling(0.035, 900),
	}
}

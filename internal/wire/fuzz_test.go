package wire

import (
	"bytes"
	"io"
	"testing"

	"cpsmon/internal/can"
)

// FuzzDecode exercises the record decoder with arbitrary byte streams:
// it must return a record or an error, never panic, and any record that
// decodes must survive an encode/decode round trip bit-exactly. The
// seed corpus covers every record type plus framing edge cases; `go
// test` runs the seeds, and `go test -fuzz=FuzzDecode ./internal/wire`
// explores further. This mirrors the speclang FuzzParse idiom.
func FuzzDecode(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(Marshal(rec))
	}
	var stream []byte
	for _, rec := range sampleRecords() {
		stream = Append(stream, rec)
	}
	f.Add(stream)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0x7F})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, typeFinish})
	f.Add(Marshal(recRaw{typeFrameBatch, []byte{0xFF, 0xFF, 0xFF, 0xFF}}))
	f.Add(Marshal(recRaw{typeVerdict, []byte{0xFF, 0xFF, 0xFF, 0xFF}}))
	// Hostile element counts inside v2 checksummed records: the count
	// field lies but the CRC is valid, so the decoder must reject on
	// the count bound, not the checksum.
	f.Add(Marshal(recRaw{typeSeqBatch, crcPayload(typeSeqBatch,
		[]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})}))
	f.Add(Marshal(recRaw{typeVerdictSeq, crcPayload(typeVerdictSeq,
		[]byte{6, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})}))
	// A v2 record with a flipped bit: checksum rejection path.
	f.Add(flipBit(Marshal(SeqBatch{Seq: 9, Frames: []can.Frame{{ID: 2}}}), 90))
	f.Add(Marshal(recRaw{typeAck, []byte{1, 2}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			rec, err := Read(r)
			if err != nil {
				break // corrupt input is rejected, never a panic
			}
			// Anything that decodes must re-encode canonically. The
			// comparison is on the encoded bytes (not DeepEqual) so NaN
			// peaks with arbitrary payload bits round-trip too.
			buf := Marshal(rec)
			again, err := Read(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("re-decode of %+v failed: %v", rec, err)
			}
			if !bytes.Equal(buf, Marshal(again)) {
				t.Fatalf("round trip drift:\n first %+v\n again %+v", rec, again)
			}
		}
		// The reader must consume record-by-record: a second pass over
		// the same bytes behaves identically (no internal state).
		r2 := bytes.NewReader(data)
		for {
			if _, err := Read(r2); err != nil {
				if err != io.EOF {
					_ = err
				}
				break
			}
		}
	})
}

package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/can"
)

// sampleRecords returns one populated instance of every record type.
func sampleRecords() []Record {
	return []Record{
		Hello{Version: Version, Vehicle: "veh-042", Spec: "strict"},
		Hello{}, // all-zero
		HelloAck{Session: 7},
		FrameBatch{},
		FrameBatch{Frames: []can.Frame{
			{Time: 30 * time.Millisecond, ID: 0x101, Data: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Time: 60 * time.Millisecond, ID: 0x205, Data: [8]byte{0xFF}},
		}},
		Finish{},
		Event{Kind: EventBegin, Rule: "Rule1", Time: 200 * time.Millisecond},
		Event{
			Kind: EventEnd, Rule: "Headway", Time: 48 * time.Second,
			StartStep: 1220, EndStep: 1602,
			Start: 36610 * time.Millisecond, End: 48 * time.Second,
			Peak: 3.75, Msg: "not recovered", Class: 1,
		},
		Event{Kind: EventEnd, Rule: "NaNPeak", Peak: math.Inf(1)},
		Verdict{},
		Verdict{
			Rules: []RuleVerdict{
				{Rule: "Rule0", Violated: false},
				{Rule: "Rule1", Violated: true, Violations: 3, Real: 1, Transient: 2},
			},
			FramesIngested: 100000, FramesDropped: 12, FramesRejected: 1,
		},
		Verdict{
			Rules:          []RuleVerdict{{Rule: "Rule0", Violated: true, Violations: 1}},
			FramesIngested: 64,
			SpecEpoch:      3,
		},
		Error{Msg: "unknown spec \"plant\""},
		SeqBatch{Seq: 1},
		SeqBatch{Seq: 42, Frames: []can.Frame{
			{Time: 30 * time.Millisecond, ID: 0x101, Data: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
		}},
		Ack{Seq: 41},
		Resume{Version: Version, Token: 0xFEEDFACE, LastEventSeq: 17},
		Resume{Version: Version, Token: 0xFEEDFACE, LastEventSeq: 17, Epoch: 3},
		SessionGrant{Session: 9, Token: 0xFEEDFACE, AckSeq: 41},
		SessionGrant{Session: 9, Token: 0xFEEDFACE, AckSeq: 41, Epoch: 3},
		SeqEvent{Seq: 18, Event: Event{Kind: EventBegin, Rule: "Rule1", Time: 200 * time.Millisecond}},
		SeqEvent{Seq: 19, Event: Event{
			Kind: EventGap, Time: 2 * time.Second,
			Start: time.Second, End: 2 * time.Second, Msg: "bus silence",
		}},
		FinishSeq{Seq: 42},
		VerdictSeq{EventSeq: 19, Verdict: Verdict{
			Rules:          []RuleVerdict{{Rule: "Rule1", Violated: true, Violations: 1, Real: 1}},
			FramesIngested: 12,
		}},
		VerdictSeq{EventSeq: 20, Verdict: Verdict{
			Rules:          []RuleVerdict{{Rule: "Rule1", Violated: false}},
			FramesIngested: 12, SpecEpoch: 2,
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		buf := Marshal(rec)
		got, err := Read(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%T: Read: %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("%T round trip:\n got %+v\nwant %+v", rec, got, rec)
		}
	}
}

func TestRoundTripStream(t *testing.T) {
	// All records back to back through one reader, as on a socket.
	var buf []byte
	recs := sampleRecords()
	for _, rec := range recs {
		buf = Append(buf, rec)
	}
	r := bytes.NewReader(buf)
	for i, want := range recs {
		got, err := Read(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := Read(r); err != io.EOF {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
}

// TestGoldenBytes pins the exact on-wire encoding of each record type.
// If this test fails the wire format has drifted: either revert the
// change or bump Version and update the pins deliberately.
func TestGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		hex  string
	}{
		{
			"hello", Hello{Version: 1, Vehicle: "v1", Spec: "strict"},
			"0f000000" + "01" + "0100" + "02007631" + "0600737472696374",
		},
		{
			"helloack", HelloAck{Session: 0x0102030405060708},
			"09000000" + "02" + "0807060504030201",
		},
		{
			"framebatch",
			FrameBatch{Frames: []can.Frame{{Time: 0x1122334455, ID: 0x305, Data: [8]byte{0xAA, 0, 0, 0, 0, 0, 0, 0xBB}}}},
			"19000000" + "03" + "01000000" + "5544332211000000" + "05030000" + "aa000000000000bb",
		},
		{
			"finish", Finish{},
			"01000000" + "04",
		},
		{
			"event-begin", Event{Kind: EventBegin, Rule: "R", Time: time.Millisecond},
			"30000000" + "05" + "01" + "010052" + "40420f0000000000" +
				"00000000" + "00000000" + "0000000000000000" + "0000000000000000" +
				"0000000000000000" + "0000" + "00",
		},
		{
			"event-end",
			Event{Kind: EventEnd, Rule: "R", Time: 2 * time.Millisecond, StartStep: 1, EndStep: 2,
				Start: time.Millisecond, End: 2 * time.Millisecond, Peak: 1.5, Msg: "m", Class: 3},
			"31000000" + "05" + "02" + "010052" + "80841e0000000000" +
				"01000000" + "02000000" + "40420f0000000000" + "80841e0000000000" +
				"000000000000f83f" + "01006d" + "03",
		},
		{
			"verdict",
			Verdict{Rules: []RuleVerdict{{Rule: "R", Violated: true, Violations: 2, Real: 1, Transient: 1}},
				FramesIngested: 5, FramesDropped: 1, FramesRejected: 2},
			"31000000" + "06" + "01000000" +
				"010052" + "01" + "02000000" + "01000000" + "01000000" + "00000000" +
				"0500000000000000" + "0100000000000000" + "0200000000000000",
		},
		{
			// A nonzero spec epoch (version 4) appends one trailing u64;
			// the zero-epoch "verdict" case above pins that the version-3
			// layout is still produced byte for byte when no registry is
			// stamping epochs.
			"verdict-epoch",
			Verdict{Rules: []RuleVerdict{{Rule: "R", Violated: true, Violations: 2, Real: 1, Transient: 1}},
				FramesIngested: 5, FramesDropped: 1, FramesRejected: 2, SpecEpoch: 7},
			"39000000" + "06" + "01000000" +
				"010052" + "01" + "02000000" + "01000000" + "01000000" + "00000000" +
				"0500000000000000" + "0100000000000000" + "0200000000000000" +
				"0700000000000000",
		},
		{
			"error", Error{Msg: "no"},
			"05000000" + "07" + "02006e6f",
		},
		{
			"seqbatch",
			SeqBatch{Seq: 7, Frames: []can.Frame{{Time: 0x1122334455, ID: 0x305, Data: [8]byte{0xAA, 0, 0, 0, 0, 0, 0, 0xBB}}}},
			"25000000" + "08" + "0700000000000000" + "01000000" +
				"5544332211000000" + "05030000" + "aa000000000000bb" + "da8c481a",
		},
		{
			"ack", Ack{Seq: 0x0102030405060708},
			"0d000000" + "09" + "0807060504030201" + "eafc795d",
		},
		{
			"resume", Resume{Version: 3, Token: 0xDEADBEEF, LastEventSeq: 5, Epoch: 2},
			"1f000000" + "0a" + "0300" + "efbeadde00000000" + "0500000000000000" + "0200000000000000" + "0667b76c",
		},
		{
			"grant", SessionGrant{Session: 9, Token: 0xDEADBEEF, AckSeq: 4, Epoch: 2},
			"25000000" + "0b" + "0900000000000000" + "efbeadde00000000" + "0400000000000000" + "0200000000000000" + "4cd3c532",
		},
		{
			"seqevent", SeqEvent{Seq: 3, Event: Event{Kind: EventBegin, Rule: "R", Time: time.Millisecond}},
			"3c000000" + "0c" + "0300000000000000" + "01" + "010052" + "40420f0000000000" +
				"00000000" + "00000000" + "0000000000000000" + "0000000000000000" +
				"0000000000000000" + "0000" + "00" + "3059f055",
		},
		{
			"gapevent",
			SeqEvent{Seq: 4, Event: Event{Kind: EventGap, Time: 2 * time.Millisecond,
				Start: time.Millisecond, End: 2 * time.Millisecond, Msg: "bus silence"}},
			"46000000" + "0c" + "0400000000000000" + "03" + "0000" + "80841e0000000000" +
				"00000000" + "00000000" + "40420f0000000000" + "80841e0000000000" +
				"0000000000000000" + "0b006275732073696c656e6365" + "00" + "8dc5d249",
		},
		{
			"finishseq", FinishSeq{Seq: 12},
			"0d000000" + "0d" + "0c00000000000000" + "f808414a",
		},
		{
			"verdictseq",
			VerdictSeq{EventSeq: 6, Verdict: Verdict{
				Rules:          []RuleVerdict{{Rule: "R", Violated: true, Violations: 2, Real: 1, Transient: 1}},
				FramesIngested: 5, FramesDropped: 1, FramesRejected: 2}},
			"3d000000" + "0e" + "0600000000000000" + "01000000" +
				"010052" + "01" + "02000000" + "01000000" + "01000000" + "00000000" +
				"0500000000000000" + "0100000000000000" + "0200000000000000" + "2dacba79",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := hex.EncodeToString(Marshal(c.rec))
			if got != c.hex {
				t.Errorf("encoding drifted:\n got %s\nwant %s", got, c.hex)
			}
		})
	}
}

// TestVersion2CompatDecode pins the version-2 encodings of Resume and
// SessionGrant — the exact bytes the PR-2 golden test froze, without
// the epoch field — and requires current decoders to accept them with
// epoch zero, so version-2 peers keep interoperating.
func TestVersion2CompatDecode(t *testing.T) {
	cases := []struct {
		name string
		hex  string
		want Record
	}{
		{
			"resume-v2",
			"17000000" + "0a" + "0200" + "efbeadde00000000" + "0500000000000000" + "6e2d38b5",
			Resume{Version: 2, Token: 0xDEADBEEF, LastEventSeq: 5},
		},
		{
			"grant-v2",
			"1d000000" + "0b" + "0900000000000000" + "efbeadde00000000" + "0400000000000000" + "85ac929a",
			SessionGrant{Session: 9, Token: 0xDEADBEEF, AckSeq: 4},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf, err := hex.DecodeString(c.hex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Read(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("decoded %+v, want %+v", got, c.want)
			}
		})
	}
}

// TestVersion3CompatDecode pins the version-3 verdict encodings — the
// exact bytes the PR-1/PR-2 golden tests froze, without the spec-epoch
// field — and requires current decoders to accept them with epoch
// zero, so version-3 peers keep interoperating.
func TestVersion3CompatDecode(t *testing.T) {
	cases := []struct {
		name string
		hex  string
		want Record
	}{
		{
			"verdict-v3",
			"31000000" + "06" + "01000000" +
				"010052" + "01" + "02000000" + "01000000" + "01000000" + "00000000" +
				"0500000000000000" + "0100000000000000" + "0200000000000000",
			Verdict{Rules: []RuleVerdict{{Rule: "R", Violated: true, Violations: 2, Real: 1, Transient: 1}},
				FramesIngested: 5, FramesDropped: 1, FramesRejected: 2},
		},
		{
			"verdictseq-v3",
			"3d000000" + "0e" + "0600000000000000" + "01000000" +
				"010052" + "01" + "02000000" + "01000000" + "01000000" + "00000000" +
				"0500000000000000" + "0100000000000000" + "0200000000000000" + "2dacba79",
			VerdictSeq{EventSeq: 6, Verdict: Verdict{
				Rules:          []RuleVerdict{{Rule: "R", Violated: true, Violations: 2, Real: 1, Transient: 1}},
				FramesIngested: 5, FramesDropped: 1, FramesRejected: 2}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf, err := hex.DecodeString(c.hex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Read(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("decoded %+v, want %+v", got, c.want)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty record", []byte{0, 0, 0, 0}},
		{"oversized record", []byte{0xFF, 0xFF, 0xFF, 0xFF, typeFinish}},
		{"truncated header", []byte{5, 0}},
		{"truncated body", []byte{10, 0, 0, 0, typeHello, 1}},
		{"unknown type", Marshal(recRaw{0x7E, nil})},
		{"hello truncated", Marshal(recRaw{typeHello, []byte{1}})},
		{"hello trailing", Marshal(recRaw{typeHello, []byte{1, 0, 0, 0, 0, 0, 0xAA}})},
		{"batch count mismatch", Marshal(recRaw{typeFrameBatch, []byte{2, 0, 0, 0, 1, 2, 3}})},
		{"batch absurd count", Marshal(recRaw{typeFrameBatch, []byte{0xFF, 0xFF, 0xFF, 0xFF}})},
		{"event bad kind", Marshal(recRaw{typeEvent, append([]byte{9, 0, 0}, make([]byte, 43)...)})},
		{"verdict absurd count", Marshal(recRaw{typeVerdict, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}})},
		{"finish trailing", Marshal(recRaw{typeFinish, []byte{1}})},
		{"string overruns", Marshal(recRaw{typeError, []byte{0xFF, 0xFF, 'x'}})},
		{"seqbatch flipped bit", flipBit(Marshal(SeqBatch{Seq: 3, Frames: []can.Frame{{ID: 1}}}), 80)},
		{"seqbatch hostile count", Marshal(recRaw{typeSeqBatch, crcPayload(typeSeqBatch,
			[]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})})},
		{"ack short for checksum", Marshal(recRaw{typeAck, []byte{1, 2}})},
		{"ack bad checksum", Marshal(recRaw{typeAck, make([]byte, 12)})},
		{"grant truncated", Marshal(recRaw{typeSessionGrant, crcPayload(typeSessionGrant, []byte{9, 0})})},
		{"verdictseq hostile count", Marshal(recRaw{typeVerdictSeq, crcPayload(typeVerdictSeq,
			[]byte{6, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})})},
		{"seqevent bad kind", Marshal(recRaw{typeSeqEvent, crcPayload(typeSeqEvent,
			append([]byte{0, 0, 0, 0, 0, 0, 0, 0, 9}, make([]byte, 45)...))})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if rec, err := Read(bytes.NewReader(c.buf)); err == nil {
				t.Errorf("decoded %+v, want error", rec)
			}
		})
	}
}

// recRaw emits an arbitrary (type, payload) pair for error-path tests.
type recRaw struct {
	typ     byte
	payload []byte
}

func (r recRaw) wireType() byte                  { return r.typ }
func (r recRaw) appendPayload(buf []byte) []byte { return append(buf, r.payload...) }

// crcPayload seals a hand-built v2 payload with its correct checksum,
// so the decode error under test is the field failure, not the CRC.
func crcPayload(typ byte, payload []byte) []byte {
	sealed := appendCRC(append([]byte{}, payload...), 0, typ)
	return sealed
}

// flipBit returns a copy of buf with one bit inverted.
func flipBit(buf []byte, bit int) []byte {
	out := append([]byte{}, buf...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// TestMalformedClassification pins the quarantine contract: a record
// whose framing held but whose payload is bad surfaces from Read as a
// *MalformedError with the stream left at the next record boundary,
// while framing-level failures do not.
func TestMalformedClassification(t *testing.T) {
	good := Marshal(Ack{Seq: 7})
	bad := flipBit(Marshal(SeqBatch{Seq: 3, Frames: []can.Frame{{ID: 1}}}), 88)
	r := bytes.NewReader(append(append([]byte{}, bad...), good...))

	_, err := Read(r)
	var mf *MalformedError
	if !errors.As(err, &mf) {
		t.Fatalf("corrupted payload: err = %v, want *MalformedError", err)
	}
	if mf.Type != typeSeqBatch {
		t.Errorf("malformed type = 0x%02X, want 0x%02X", mf.Type, typeSeqBatch)
	}
	// The reader consumed exactly the bad record: the next read yields
	// the intact ack.
	rec, err := Read(r)
	if err != nil {
		t.Fatalf("record after quarantine: %v", err)
	}
	if ack, ok := rec.(Ack); !ok || ack.Seq != 7 {
		t.Errorf("record after quarantine = %+v, want Ack{7}", rec)
	}

	// Framing-level failures are not malformed records: an oversized
	// length prefix and a truncated body stay unwrapped.
	for _, buf := range [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, typeFinish},
		Marshal(Ack{Seq: 7})[:6],
	} {
		_, err := Read(bytes.NewReader(buf))
		if err == nil || errors.As(err, &mf) {
			t.Errorf("framing failure %x: err = %v, want a non-malformed error", buf, err)
		}
	}
}

func TestStringTruncation(t *testing.T) {
	long := strings.Repeat("x", math.MaxUint16+5)
	rec, err := Read(bytes.NewReader(Marshal(Error{Msg: long})))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := rec.(Error).Msg; len(got) != math.MaxUint16 {
		t.Errorf("oversized string encoded to %d bytes, want %d", len(got), math.MaxUint16)
	}
}

func TestErrorErr(t *testing.T) {
	if err := (Error{Msg: "boom"}).Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Err() = %v", err)
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"cpsmon/internal/can"
	"cpsmon/internal/obs"
)

// TestCodecMetrics round-trips records through an instrumented codec
// and checks the per-type traffic counters plus the CRC failure count.
func TestCodecMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	var buf bytes.Buffer
	recs := []Record{
		Hello{Version: 2, Vehicle: "veh-1"},
		SeqBatch{Seq: 1, Frames: []can.Frame{{ID: 0x100}}},
		Ack{Seq: 1},
	}
	for _, r := range recs {
		if err := Write(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	wireBytes := buf.Len()
	for range recs {
		if _, err := Read(&buf); err != nil {
			t.Fatal(err)
		}
	}

	m := metrics.Load()
	for _, r := range recs {
		typ := r.wireType()
		if got := m.txRecords[typ].Value(); got != 1 {
			t.Errorf("tx records[%s] = %d, want 1", typeName(typ), got)
		}
		if got := m.rxRecords[typ].Value(); got != 1 {
			t.Errorf("rx records[%s] = %d, want 1", typeName(typ), got)
		}
	}
	var txTotal, rxTotal uint64
	for typ := byte(typeHello); typ <= typeVerdictSeq; typ++ {
		txTotal += m.txBytes[typ].Value()
		rxTotal += m.rxBytes[typ].Value()
	}
	if txTotal != uint64(wireBytes) || rxTotal != uint64(wireBytes) {
		t.Errorf("byte counters tx=%d rx=%d, want both %d", txTotal, rxTotal, wireBytes)
	}

	// Flip one payload bit of a checksummed record: the CRC failure
	// counter must advance and the read must surface a MalformedError.
	var corrupt bytes.Buffer
	if err := Write(&corrupt, Ack{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	raw := corrupt.Bytes()
	raw[binary.LittleEndian.Uint32(raw[:4])] ^= 0x01 // last payload byte
	var me *MalformedError
	if _, err := Read(bytes.NewReader(raw)); !errors.As(err, &me) {
		t.Fatalf("corrupt read error = %v, want MalformedError", err)
	}
	if got := m.crcFails.Value(); got != 1 {
		t.Errorf("crc failures = %d, want 1", got)
	}

	// The counters must surface under the documented family names.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cpsmon_wire_records_total{dir="tx",type="hello"} 1`,
		`cpsmon_wire_records_total{dir="rx",type="seq_batch"} 1`,
		"cpsmon_wire_crc_failures_total 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestCodecUninstrumentedIsFree checks the default path: with no
// registry installed the codec works and counts nothing.
func TestCodecUninstrumentedIsFree(t *testing.T) {
	Instrument(nil)
	var buf bytes.Buffer
	if err := Write(&buf, Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
	if metrics.Load() != nil {
		t.Fatal("gate not nil after Instrument(nil)")
	}
}

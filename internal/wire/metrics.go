package wire

import (
	"sync/atomic"

	"cpsmon/internal/obs"
)

// Metrics counts codec traffic: records and bytes by direction and
// record type, plus CRC verification failures. The counters are
// pre-created per type byte at Instrument time, so the per-record cost
// is an array index and an atomic add — the codec hot path stays
// allocation-free with metrics enabled.
type Metrics struct {
	rxRecords [typeVerdictSeq + 1]*obs.Counter
	txRecords [typeVerdictSeq + 1]*obs.Counter
	rxBytes   [typeVerdictSeq + 1]*obs.Counter
	txBytes   [typeVerdictSeq + 1]*obs.Counter
	crcFails  *obs.Counter
}

// metrics gates instrumentation for the whole package. Write, Read and
// Decode are free functions shared by both ends of the wire, so the
// gate is package-level rather than threaded through every call site;
// a nil pointer (the default) costs one atomic load per record.
var metrics atomic.Pointer[Metrics]

// typeName names a record type byte for metric labels.
func typeName(typ byte) string {
	switch typ {
	case typeHello:
		return "hello"
	case typeHelloAck:
		return "hello_ack"
	case typeFrameBatch:
		return "frame_batch"
	case typeFinish:
		return "finish"
	case typeEvent:
		return "event"
	case typeVerdict:
		return "verdict"
	case typeError:
		return "error"
	case typeSeqBatch:
		return "seq_batch"
	case typeAck:
		return "ack"
	case typeResume:
		return "resume"
	case typeSessionGrant:
		return "session_grant"
	case typeSeqEvent:
		return "seq_event"
	case typeFinishSeq:
		return "finish_seq"
	case typeVerdictSeq:
		return "verdict_seq"
	default:
		return "unknown"
	}
}

// Instrument registers the codec metric families on reg and starts
// counting every record this process reads, writes or fails to
// checksum-verify. Passing nil detaches. The gate is process-wide:
// the codec has no per-connection state to hang counters on, and a
// deployment runs one monitord per process.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	m := &Metrics{
		crcFails: reg.Counter("cpsmon_wire_crc_failures_total",
			"Records rejected for a CRC-32C mismatch."),
	}
	for typ := byte(typeHello); typ <= typeVerdictSeq; typ++ {
		t := obs.Label{Name: "type", Value: typeName(typ)}
		m.rxRecords[typ] = reg.Counter("cpsmon_wire_records_total",
			"Records moved by the wire codec.", obs.Label{Name: "dir", Value: "rx"}, t)
		m.txRecords[typ] = reg.Counter("cpsmon_wire_records_total",
			"Records moved by the wire codec.", obs.Label{Name: "dir", Value: "tx"}, t)
		m.rxBytes[typ] = reg.Counter("cpsmon_wire_bytes_total",
			"Bytes moved by the wire codec, length prefix included.", obs.Label{Name: "dir", Value: "rx"}, t)
		m.txBytes[typ] = reg.Counter("cpsmon_wire_bytes_total",
			"Bytes moved by the wire codec, length prefix included.", obs.Label{Name: "dir", Value: "tx"}, t)
	}
	metrics.Store(m)
}

// countTx records one encoded record of n on-wire bytes.
func countTx(typ byte, n int) {
	if m := metrics.Load(); m != nil && int(typ) < len(m.txRecords) {
		m.txRecords[typ].Inc()
		m.txBytes[typ].Add(uint64(n))
	}
}

// countRx records one framed record of n on-wire bytes. It runs before
// payload decoding, so malformed records are counted too — they moved
// over the wire regardless.
func countRx(typ byte, n int) {
	if m := metrics.Load(); m != nil && int(typ) < len(m.rxRecords) {
		m.rxRecords[typ].Inc()
		m.rxBytes[typ].Add(uint64(n))
	}
}

// countCRCFailure records one checksum rejection.
func countCRCFailure() {
	if m := metrics.Load(); m != nil {
		m.crcFails.Inc()
	}
}

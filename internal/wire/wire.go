// Package wire is the fleet ingest wire protocol: a compact,
// length-prefixed binary codec for streaming timestamped CAN frames and
// session control records between a vehicle-side uplink and a monitord
// ingest server.
//
// The protocol is deliberately dependency-light — its only repository
// import is the CAN frame type — so that both ends of the wire (an
// embedded uplink and the fleet server) can speak it without pulling in
// the monitor engine.
//
// # Framing
//
// Every record on the wire is
//
//	uint32 LE length | uint8 type | payload
//
// where length covers the type byte plus the payload. Integers are
// little-endian throughout, matching the repository's CAN log format.
// Strings are a uint16 length followed by raw bytes. Record payloads
// are fixed layouts per type (see each record's doc comment); decoding
// is strict — trailing bytes, truncated fields and implausible counts
// are errors, never panics.
//
// # Session flow
//
//	client                          server
//	  Hello{version,vehicle,spec} →
//	                              ← HelloAck{session}   (or Error)
//	  FrameBatch{frames} →
//	  FrameBatch{frames} →        ← Event...            (as decidable)
//	  ...
//	  Finish{} →
//	                              ← Event...            (drained)
//	                              ← Verdict{rules,...}
//
// The protocol is versioned via the Hello record: a server refuses a
// hello whose version it does not speak with an Error record.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"cpsmon/internal/can"
)

// Version is the protocol version this package speaks. It is carried in
// every Hello and bumped on any change to the record layouts below.
const Version = 1

// MaxRecordSize bounds a single record on the wire (length prefix
// included), so a corrupt or hostile peer cannot make the decoder
// allocate unboundedly. 1 MiB fits a frame batch of ~52k frames.
const MaxRecordSize = 1 << 20

// frameSize is the encoded size of one CAN frame: u64 time, u32 id,
// 8 data bytes.
const frameSize = 20

// Record types, one per concrete Record implementation.
const (
	typeHello      = 0x01
	typeHelloAck   = 0x02
	typeFrameBatch = 0x03
	typeFinish     = 0x04
	typeEvent      = 0x05
	typeVerdict    = 0x06
	typeError      = 0x07
)

// EventKind distinguishes the two violation notifications.
type EventKind uint8

const (
	// EventBegin reports a violation interval opening.
	EventBegin EventKind = 1
	// EventEnd reports a closed violation interval, carrying the full
	// violation record and its triage class.
	EventEnd EventKind = 2
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one protocol record. The concrete types are Hello,
// HelloAck, FrameBatch, Finish, Event, Verdict and Error.
type Record interface {
	wireType() byte
	appendPayload(buf []byte) []byte
}

// Hello opens a session: the client announces the protocol version it
// speaks, the vehicle identity, and which server-side rule set (spec)
// the session should be monitored against. An empty Spec selects the
// server's default.
type Hello struct {
	Version uint16
	Vehicle string
	Spec    string
}

func (Hello) wireType() byte { return typeHello }

func (h Hello) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	buf = appendString(buf, h.Vehicle)
	return appendString(buf, h.Spec)
}

// HelloAck accepts a session and assigns its server-side identifier.
type HelloAck struct {
	Session uint64
}

func (HelloAck) wireType() byte { return typeHelloAck }

func (a HelloAck) appendPayload(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, a.Session)
}

// FrameBatch carries a run of captured CAN frames in capture order.
type FrameBatch struct {
	Frames []can.Frame
}

func (FrameBatch) wireType() byte { return typeFrameBatch }

func (b FrameBatch) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Frames)))
	for _, f := range b.Frames {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Time))
		buf = binary.LittleEndian.AppendUint32(buf, f.ID)
		buf = append(buf, f.Data[:]...)
	}
	return buf
}

// Finish declares the end of the frame stream: the server drains the
// monitor and answers with the remaining events and a Verdict.
type Finish struct{}

func (Finish) wireType() byte { return typeFinish }

func (Finish) appendPayload(buf []byte) []byte { return buf }

// Event is one incremental oracle notification. Begin events carry only
// Rule and Time; End events additionally carry the closed violation
// interval, its peak severity, message and triage class. The layout is
// identical for both kinds (unused fields encode as zero) so that an
// event stream has a single, pinned shape.
type Event struct {
	Kind EventKind
	Rule string
	// Time is the violation start (begin) or exclusive end (end).
	Time time.Duration
	// StartStep and EndStep delimit the violating grid steps [start, end).
	StartStep, EndStep uint32
	// Start and End are the corresponding times.
	Start, End time.Duration
	// Peak is the maximum absolute severity over the interval.
	Peak float64
	// Msg describes the violated clause.
	Msg string
	// Class is the triage class ordinal (server-defined; 0 when unset).
	Class uint8
}

func (Event) wireType() byte { return typeEvent }

func (e Event) appendPayload(buf []byte) []byte {
	buf = append(buf, byte(e.Kind))
	buf = appendString(buf, e.Rule)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time))
	buf = binary.LittleEndian.AppendUint32(buf, e.StartStep)
	buf = binary.LittleEndian.AppendUint32(buf, e.EndStep)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.End))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Peak))
	buf = appendString(buf, e.Msg)
	return append(buf, e.Class)
}

// RuleVerdict is the end-of-stream outcome of one rule.
type RuleVerdict struct {
	Rule string
	// Violated reports whether any violation interval closed.
	Violated bool
	// Violations counts closed intervals; Real/Transient/Negligible
	// split them by triage class.
	Violations, Real, Transient, Negligible uint32
}

// Verdict closes a session: per-rule outcomes in rule-set order plus
// the session's ingest accounting.
type Verdict struct {
	Rules []RuleVerdict
	// FramesIngested counts frames fed to the monitor; FramesDropped
	// counts frames shed under overload; FramesRejected counts frames
	// refused for arriving out of time order.
	FramesIngested, FramesDropped, FramesRejected uint64
}

func (Verdict) wireType() byte { return typeVerdict }

func (v Verdict) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Rules)))
	for _, r := range v.Rules {
		buf = appendString(buf, r.Rule)
		var b byte
		if r.Violated {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.LittleEndian.AppendUint32(buf, r.Violations)
		buf = binary.LittleEndian.AppendUint32(buf, r.Real)
		buf = binary.LittleEndian.AppendUint32(buf, r.Transient)
		buf = binary.LittleEndian.AppendUint32(buf, r.Negligible)
	}
	buf = binary.LittleEndian.AppendUint64(buf, v.FramesIngested)
	buf = binary.LittleEndian.AppendUint64(buf, v.FramesDropped)
	return binary.LittleEndian.AppendUint64(buf, v.FramesRejected)
}

// Error reports a protocol-level failure (bad hello, unknown spec,
// server refusal). After an Error the sender closes the connection.
type Error struct {
	Msg string
}

func (Error) wireType() byte { return typeError }

func (e Error) appendPayload(buf []byte) []byte { return appendString(buf, e.Msg) }

// Err converts the record into a Go error.
func (e Error) Err() error { return fmt.Errorf("wire: remote error: %s", e.Msg) }

// Append encodes the record — length prefix, type byte, payload — onto
// buf and returns the extended slice.
func Append(buf []byte, rec Record) []byte {
	at := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, rec.wireType())
	buf = rec.appendPayload(buf)
	binary.LittleEndian.PutUint32(buf[at:at+4], uint32(len(buf)-at-4))
	return buf
}

// Marshal encodes the record into a fresh buffer.
func Marshal(rec Record) []byte { return Append(nil, rec) }

// Write encodes the record onto w.
func Write(w io.Writer, rec Record) error {
	_, err := w.Write(Marshal(rec))
	return err
}

// Read decodes the next record from r. It returns io.EOF only at a
// clean record boundary; a stream truncated mid-record yields
// io.ErrUnexpectedEOF.
func Read(r io.Reader) (Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read record length: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return nil, errors.New("wire: empty record")
	}
	if n > MaxRecordSize {
		return nil, fmt.Errorf("wire: record of %d bytes exceeds limit %d", n, MaxRecordSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read record body: %w", err)
	}
	return Decode(body[0], body[1:])
}

// Decode decodes one record payload of the given type. The payload must
// be exactly consumed; leftover bytes are an error.
func Decode(typ byte, payload []byte) (Record, error) {
	d := decoder{buf: payload}
	var rec Record
	switch typ {
	case typeHello:
		var h Hello
		h.Version = d.u16()
		h.Vehicle = d.str()
		h.Spec = d.str()
		rec = h
	case typeHelloAck:
		rec = HelloAck{Session: d.u64()}
	case typeFrameBatch:
		count := d.u32()
		if uint64(count)*frameSize != uint64(len(d.buf)-d.at) && d.err == nil {
			return nil, fmt.Errorf("wire: frame batch declares %d frames over %d payload bytes", count, len(d.buf)-d.at)
		}
		b := FrameBatch{}
		if count > 0 && d.err == nil {
			b.Frames = make([]can.Frame, count)
			for i := range b.Frames {
				b.Frames[i].Time = time.Duration(d.u64())
				b.Frames[i].ID = d.u32()
				copy(b.Frames[i].Data[:], d.bytes(8))
			}
		}
		rec = b
	case typeFinish:
		rec = Finish{}
	case typeEvent:
		var e Event
		e.Kind = EventKind(d.u8())
		e.Rule = d.str()
		e.Time = time.Duration(d.u64())
		e.StartStep = d.u32()
		e.EndStep = d.u32()
		e.Start = time.Duration(d.u64())
		e.End = time.Duration(d.u64())
		e.Peak = math.Float64frombits(d.u64())
		e.Msg = d.str()
		e.Class = d.u8()
		if e.Kind != EventBegin && e.Kind != EventEnd && d.err == nil {
			return nil, fmt.Errorf("wire: unknown event kind %d", e.Kind)
		}
		rec = e
	case typeVerdict:
		count := d.u32()
		// Each rule verdict is at least 19 bytes; reject counts the
		// remaining payload cannot possibly hold.
		if d.err == nil && uint64(count) > uint64(len(d.buf)-d.at)/19 {
			return nil, fmt.Errorf("wire: verdict declares %d rules over %d payload bytes", count, len(d.buf)-d.at)
		}
		v := Verdict{}
		if count > 0 && d.err == nil {
			v.Rules = make([]RuleVerdict, count)
			for i := range v.Rules {
				v.Rules[i].Rule = d.str()
				v.Rules[i].Violated = d.u8() != 0
				v.Rules[i].Violations = d.u32()
				v.Rules[i].Real = d.u32()
				v.Rules[i].Transient = d.u32()
				v.Rules[i].Negligible = d.u32()
			}
		}
		v.FramesIngested = d.u64()
		v.FramesDropped = d.u64()
		v.FramesRejected = d.u64()
		rec = v
	case typeError:
		rec = Error{Msg: d.str()}
	default:
		return nil, fmt.Errorf("wire: unknown record type 0x%02X", typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.at != len(d.buf) {
		return nil, fmt.Errorf("wire: record type 0x%02X carries %d trailing bytes", typ, len(d.buf)-d.at)
	}
	return rec, nil
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor over one payload. The first
// overrun latches err and every later read returns zero values, so
// decode paths stay linear and check err once at the end.
type decoder struct {
	buf []byte
	at  int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.at+n > len(d.buf) {
		d.err = fmt.Errorf("wire: truncated record: want %d bytes at offset %d of %d", n, d.at, len(d.buf))
		return nil
	}
	b := d.buf[d.at : d.at+n]
	d.at += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	return string(d.bytes(n))
}

// Package wire is the fleet ingest wire protocol: a compact,
// length-prefixed binary codec for streaming timestamped CAN frames and
// session control records between a vehicle-side uplink and a monitord
// ingest server.
//
// The protocol is deliberately dependency-light — its only repository
// import is the CAN frame type — so that both ends of the wire (an
// embedded uplink and the fleet server) can speak it without pulling in
// the monitor engine.
//
// # Framing
//
// Every record on the wire is
//
//	uint32 LE length | uint8 type | payload
//
// where length covers the type byte plus the payload. Integers are
// little-endian throughout, matching the repository's CAN log format.
// Strings are a uint16 length followed by raw bytes. Record payloads
// are fixed layouts per type (see each record's doc comment); decoding
// is strict — trailing bytes, truncated fields and implausible counts
// are errors, never panics.
//
// # Session flow
//
//	client                          server
//	  Hello{version,vehicle,spec} →
//	                              ← HelloAck{session}   (or Error)
//	  FrameBatch{frames} →
//	  FrameBatch{frames} →        ← Event...            (as decidable)
//	  ...
//	  Finish{} →
//	                              ← Event...            (drained)
//	                              ← Verdict{rules,...}
//
// The protocol is versioned via the Hello record: a server refuses a
// hello whose version it does not speak with an Error record.
//
// # Version 4: spec epochs
//
// Version 4 keeps every version-3 record and extends Verdict (and
// therefore VerdictSeq) with a trailing spec-epoch field: the rollout
// generation of the spec that produced the verdict, stamped by servers
// running the spec registry's canary pipeline. The field is encoded
// only when nonzero — a server with no registry produces byte-for-byte
// the version-3 layout — and decoders accept the epoch-less layout,
// reading epoch zero, so version-2 and version-3 peers interoperate
// unchanged.
//
// # Version 3: server epochs
//
// Version 3 keeps every version-2 record and extends SessionGrant and
// Resume with a trailing server-epoch field. The epoch is a counter the
// server durably increments on every process start; a grant announces
// it and a resume echoes it back, so a restarted server can tell a
// token minted by a live predecessor (epoch at most its own — honoured
// against recovered state) from one minted by a *newer* instance than
// the state it recovered (epoch ahead of its own — refused, because
// serving it would silently roll the session back). Decoders accept the
// version-2 layout without the field, reading epoch zero, which every
// server honours: version-2 peers interoperate unchanged.
//
// # Version 2: sequencing, acknowledgement and resume
//
// Version 2 keeps every version-1 record unchanged and adds a parallel
// set of records for lossy, disconnecting transports. A v2 client opens
// with Hello{Version: 2} and receives a SessionGrant (instead of a
// HelloAck) carrying a resume token. Data then flows as sequence-
// numbered, checksummed SeqBatch records which the server acknowledges
// cumulatively with Ack records; events come back as sequence-numbered
// SeqEvent records, and the stream ends with FinishSeq → VerdictSeq.
// After a disconnect the client reconnects and sends Resume{token,
// last event seq} in place of a Hello; the server re-grants the
// session, reports the highest batch it applied, and replays unseen
// events, so both directions recover exactly-once delivery by sequence
// dedup out of bounded replay buffers.
//
//	client                          server
//	  Resume{token,lastEventSeq} →
//	                              ← SessionGrant{session,token,ackSeq}
//	                              ← SeqEvent...         (replayed tail)
//	  SeqBatch{seq,frames} →      ← Ack{seq}
//	  FinishSeq{lastSeq} →        ← VerdictSeq{events,verdict}
//
// Every v2 record carries a trailing CRC-32C over its type byte and
// payload, so single flipped bits on a real link are rejected as
// malformed instead of silently accepted. A record whose framing was
// intact but whose payload fails to decode (or fails its checksum)
// surfaces as a *MalformedError, letting tolerant readers quarantine
// the record and keep the stream alive.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"cpsmon/internal/can"
)

// Version is the newest protocol version this package speaks. It is
// carried in every Hello and bumped on any change to the record layouts
// below. MinVersion is the oldest version still accepted: version-1
// peers interoperate with a version-2 server (they simply never see the
// v2 record types).
const (
	Version    = 4
	MinVersion = 1
)

// MaxRecordSize bounds a single record on the wire (length prefix
// included), so a corrupt or hostile peer cannot make the decoder
// allocate unboundedly. 1 MiB fits a frame batch of ~52k frames.
const MaxRecordSize = 1 << 20

// MaxFrameCount and MaxRuleCount bound the declared element counts of
// batch and verdict records at decode time. Both are the largest counts
// a MaxRecordSize record can physically carry, so they refuse nothing a
// legitimate encoder can produce — they exist so a hostile count field
// is rejected before any allocation is sized from it, independent of
// the payload-length cross-checks below.
const (
	MaxFrameCount = (MaxRecordSize - 9) / frameSize
	MaxRuleCount  = (MaxRecordSize - 9) / ruleVerdictSize
)

// ruleVerdictSize is the minimum encoded size of one RuleVerdict: an
// empty-name string (u16 length), the violated byte and four u32s.
const ruleVerdictSize = 19

// frameSize is the encoded size of one CAN frame: u64 time, u32 id,
// 8 data bytes.
const frameSize = 20

// Record types, one per concrete Record implementation. Types 0x08 and
// up are version-2 records: all of them carry a trailing CRC-32C.
const (
	typeHello        = 0x01
	typeHelloAck     = 0x02
	typeFrameBatch   = 0x03
	typeFinish       = 0x04
	typeEvent        = 0x05
	typeVerdict      = 0x06
	typeError        = 0x07
	typeSeqBatch     = 0x08
	typeAck          = 0x09
	typeResume       = 0x0A
	typeSessionGrant = 0x0B
	typeSeqEvent     = 0x0C
	typeFinishSeq    = 0x0D
	typeVerdictSeq   = 0x0E
)

// checksummed reports whether a record type carries the trailing v2
// CRC-32C.
func checksummed(typ byte) bool { return typ >= typeSeqBatch && typ <= typeVerdictSeq }

// crcTable is the Castagnoli table shared by all v2 records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EventKind distinguishes the two violation notifications.
type EventKind uint8

const (
	// EventBegin reports a violation interval opening.
	EventBegin EventKind = 1
	// EventEnd reports a closed violation interval, carrying the full
	// violation record and its triage class.
	EventEnd EventKind = 2
	// EventGap reports a hole in the monitored stream rather than a
	// rule violation: a bus-silence stretch or shed frames. Start and
	// End delimit the gap; Msg names its cause. Only sent to version-2
	// sessions.
	EventGap EventKind = 3
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventBegin:
		return "begin"
	case EventEnd:
		return "end"
	case EventGap:
		return "gap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one protocol record. The concrete types are Hello,
// HelloAck, FrameBatch, Finish, Event, Verdict and Error.
type Record interface {
	wireType() byte
	appendPayload(buf []byte) []byte
}

// Hello opens a session: the client announces the protocol version it
// speaks, the vehicle identity, and which server-side rule set (spec)
// the session should be monitored against. An empty Spec selects the
// server's default.
type Hello struct {
	Version uint16
	Vehicle string
	Spec    string
}

func (Hello) wireType() byte { return typeHello }

func (h Hello) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, h.Version)
	buf = appendString(buf, h.Vehicle)
	return appendString(buf, h.Spec)
}

// HelloAck accepts a session and assigns its server-side identifier.
type HelloAck struct {
	Session uint64
}

func (HelloAck) wireType() byte { return typeHelloAck }

func (a HelloAck) appendPayload(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, a.Session)
}

// FrameBatch carries a run of captured CAN frames in capture order.
type FrameBatch struct {
	Frames []can.Frame
}

func (FrameBatch) wireType() byte { return typeFrameBatch }

func (b FrameBatch) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Frames)))
	for _, f := range b.Frames {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Time))
		buf = binary.LittleEndian.AppendUint32(buf, f.ID)
		buf = append(buf, f.Data[:]...)
	}
	return buf
}

// Finish declares the end of the frame stream: the server drains the
// monitor and answers with the remaining events and a Verdict.
type Finish struct{}

func (Finish) wireType() byte { return typeFinish }

func (Finish) appendPayload(buf []byte) []byte { return buf }

// Event is one incremental oracle notification. Begin events carry only
// Rule and Time; End events additionally carry the closed violation
// interval, its peak severity, message and triage class. The layout is
// identical for both kinds (unused fields encode as zero) so that an
// event stream has a single, pinned shape.
type Event struct {
	Kind EventKind
	Rule string
	// Time is the violation start (begin) or exclusive end (end).
	Time time.Duration
	// StartStep and EndStep delimit the violating grid steps [start, end).
	StartStep, EndStep uint32
	// Start and End are the corresponding times.
	Start, End time.Duration
	// Peak is the maximum absolute severity over the interval.
	Peak float64
	// Msg describes the violated clause.
	Msg string
	// Class is the triage class ordinal (server-defined; 0 when unset).
	Class uint8
}

func (Event) wireType() byte { return typeEvent }

func (e Event) appendPayload(buf []byte) []byte { return appendEventFields(buf, e) }

func appendEventFields(buf []byte, e Event) []byte {
	buf = append(buf, byte(e.Kind))
	buf = appendString(buf, e.Rule)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time))
	buf = binary.LittleEndian.AppendUint32(buf, e.StartStep)
	buf = binary.LittleEndian.AppendUint32(buf, e.EndStep)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.End))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Peak))
	buf = appendString(buf, e.Msg)
	return append(buf, e.Class)
}

// RuleVerdict is the end-of-stream outcome of one rule.
type RuleVerdict struct {
	Rule string
	// Violated reports whether any violation interval closed.
	Violated bool
	// Violations counts closed intervals; Real/Transient/Negligible
	// split them by triage class.
	Violations, Real, Transient, Negligible uint32
}

// Verdict closes a session: per-rule outcomes in rule-set order plus
// the session's ingest accounting.
type Verdict struct {
	Rules []RuleVerdict
	// FramesIngested counts frames fed to the monitor; FramesDropped
	// counts frames shed under overload; FramesRejected counts frames
	// refused for arriving out of time order.
	FramesIngested, FramesDropped, FramesRejected uint64
	// SpecEpoch is the rollout generation of the spec that produced
	// this verdict (version 4), stamped by servers running the spec
	// registry. Zero — the only value a registry-less server produces —
	// is encoded as the absent version-3 layout, byte for byte.
	SpecEpoch uint64
}

func (Verdict) wireType() byte { return typeVerdict }

func (v Verdict) appendPayload(buf []byte) []byte { return appendVerdictFields(buf, v) }

func appendVerdictFields(buf []byte, v Verdict) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Rules)))
	for _, r := range v.Rules {
		buf = appendString(buf, r.Rule)
		var b byte
		if r.Violated {
			b = 1
		}
		buf = append(buf, b)
		buf = binary.LittleEndian.AppendUint32(buf, r.Violations)
		buf = binary.LittleEndian.AppendUint32(buf, r.Real)
		buf = binary.LittleEndian.AppendUint32(buf, r.Transient)
		buf = binary.LittleEndian.AppendUint32(buf, r.Negligible)
	}
	buf = binary.LittleEndian.AppendUint64(buf, v.FramesIngested)
	buf = binary.LittleEndian.AppendUint64(buf, v.FramesDropped)
	buf = binary.LittleEndian.AppendUint64(buf, v.FramesRejected)
	if v.SpecEpoch != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, v.SpecEpoch)
	}
	return buf
}

// Error reports a protocol-level failure (bad hello, unknown spec,
// server refusal). After an Error the sender closes the connection.
type Error struct {
	Msg string
}

func (Error) wireType() byte { return typeError }

func (e Error) appendPayload(buf []byte) []byte { return appendString(buf, e.Msg) }

// ErrRemote is the sentinel wrapped by Error.Err, so callers can tell
// a deliberate server refusal apart from a transport failure with
// errors.Is.
var ErrRemote = errors.New("wire: remote error")

// Err converts the record into a Go error wrapping ErrRemote.
func (e Error) Err() error { return fmt.Errorf("%w: %s", ErrRemote, e.Msg) }

// SeqBatch is the version-2 FrameBatch: the same frame run, numbered
// with a session-scoped sequence (starting at 1, incremented per batch)
// and protected by the trailing CRC. The server acknowledges applied
// batches cumulatively with Ack records and discards duplicates, so a
// client replaying its unacknowledged tail after a resume delivers
// every frame exactly once.
type SeqBatch struct {
	Seq    uint64
	Frames []can.Frame
}

func (SeqBatch) wireType() byte { return typeSeqBatch }

func (b SeqBatch) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Frames)))
	for _, f := range b.Frames {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Time))
		buf = binary.LittleEndian.AppendUint32(buf, f.ID)
		buf = append(buf, f.Data[:]...)
	}
	return appendCRC(buf, at, typeSeqBatch)
}

// Ack is the server's cumulative acknowledgement: every SeqBatch with
// sequence number at most Seq has been applied to the session's
// monitor, so the client may release those batches from its replay
// buffer.
type Ack struct {
	Seq uint64
}

func (Ack) wireType() byte { return typeAck }

func (a Ack) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, a.Seq)
	return appendCRC(buf, at, typeAck)
}

// Resume reopens a suspended session after a disconnect: it stands in
// for the Hello on a reconnect, naming the session by the token from
// the original SessionGrant and the last event sequence number the
// client received (so the server replays only the unseen tail). Epoch
// echoes the server epoch from the grant that minted the token (zero
// from version-2 clients, which never saw one); a server refuses a
// resume from an epoch ahead of its own, since honouring it would roll
// the session back behind state the client has already observed.
type Resume struct {
	Version      uint16
	Token        uint64
	LastEventSeq uint64
	Epoch        uint64
}

func (Resume) wireType() byte { return typeResume }

func (r Resume) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, r.Version)
	buf = binary.LittleEndian.AppendUint64(buf, r.Token)
	buf = binary.LittleEndian.AppendUint64(buf, r.LastEventSeq)
	buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
	return appendCRC(buf, at, typeResume)
}

// SessionGrant is the version-2 HelloAck, answering both Hello and
// Resume: the session identifier, the resume token for later
// reconnects, and AckSeq — the highest batch sequence the server has
// applied (zero for a fresh session). After a resume the client
// retransmits every buffered batch with a sequence above AckSeq.
// Epoch (version 3) is the server's durable restart counter, echoed
// back in later Resume records; zero means the server predates epochs.
type SessionGrant struct {
	Session uint64
	Token   uint64
	AckSeq  uint64
	Epoch   uint64
}

func (SessionGrant) wireType() byte { return typeSessionGrant }

func (g SessionGrant) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, g.Session)
	buf = binary.LittleEndian.AppendUint64(buf, g.Token)
	buf = binary.LittleEndian.AppendUint64(buf, g.AckSeq)
	buf = binary.LittleEndian.AppendUint64(buf, g.Epoch)
	return appendCRC(buf, at, typeSessionGrant)
}

// SeqEvent is the version-2 Event: the same notification, numbered with
// a session-scoped event sequence (starting at 1) so the client can
// discard duplicates replayed after a resume and detect holes.
type SeqEvent struct {
	Seq   uint64
	Event Event
}

func (SeqEvent) wireType() byte { return typeSeqEvent }

func (e SeqEvent) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = appendEventFields(buf, e.Event)
	return appendCRC(buf, at, typeSeqEvent)
}

// FinishSeq is the version-2 Finish: it declares end-of-stream and
// names the sequence number of the final batch, so a server that has
// not applied every batch (a loss the transport hid) can force a
// resume instead of issuing a short verdict.
type FinishSeq struct {
	Seq uint64
}

func (FinishSeq) wireType() byte { return typeFinishSeq }

func (f FinishSeq) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	return appendCRC(buf, at, typeFinishSeq)
}

// VerdictSeq is the version-2 Verdict. EventSeq is the total number of
// events the session emitted; a client whose last received event
// sequence falls short has lost events in transit and resumes to
// recover them before accepting the verdict.
type VerdictSeq struct {
	EventSeq uint64
	Verdict  Verdict
}

func (VerdictSeq) wireType() byte { return typeVerdictSeq }

func (v VerdictSeq) appendPayload(buf []byte) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, v.EventSeq)
	buf = appendVerdictFields(buf, v.Verdict)
	return appendCRC(buf, at, typeVerdictSeq)
}

// appendCRC seals a v2 payload: the trailing CRC-32C covers the type
// byte and the payload bytes appended since at.
func appendCRC(buf []byte, at int, typ byte) []byte {
	c := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, buf[at:])
	return binary.LittleEndian.AppendUint32(buf, c)
}

// MalformedError reports a record whose framing was intact — the length
// prefix was sane and the full body arrived — but whose payload failed
// to decode or failed its checksum. The reader consumed exactly one
// record, so the stream remains positioned at the next record boundary
// and a tolerant caller may quarantine the record and continue.
type MalformedError struct {
	// Type is the record's claimed type byte; Size its body length.
	Type byte
	Size int
	Err  error
}

func (e *MalformedError) Error() string {
	return fmt.Sprintf("wire: malformed record type 0x%02X (%d bytes): %v", e.Type, e.Size, e.Err)
}

func (e *MalformedError) Unwrap() error { return e.Err }

// Append encodes the record — length prefix, type byte, payload — onto
// buf and returns the extended slice.
func Append(buf []byte, rec Record) []byte {
	at := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, rec.wireType())
	buf = rec.appendPayload(buf)
	binary.LittleEndian.PutUint32(buf[at:at+4], uint32(len(buf)-at-4))
	return buf
}

// Marshal encodes the record into a fresh buffer.
func Marshal(rec Record) []byte { return Append(nil, rec) }

// Write encodes the record onto w.
func Write(w io.Writer, rec Record) error {
	buf := Marshal(rec)
	countTx(rec.wireType(), len(buf))
	_, err := w.Write(buf)
	return err
}

// Read decodes the next record from r. It returns io.EOF only at a
// clean record boundary; a stream truncated mid-record yields
// io.ErrUnexpectedEOF.
func Read(r io.Reader) (Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read record length: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return nil, errors.New("wire: empty record")
	}
	if n > MaxRecordSize {
		return nil, fmt.Errorf("wire: record of %d bytes exceeds limit %d", n, MaxRecordSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read record body: %w", err)
	}
	countRx(body[0], len(body)+4)
	rec, err := Decode(body[0], body[1:])
	if err != nil {
		// The framing held — exactly one record was consumed — so the
		// failure is quarantinable: wrap it so callers can tell it
		// apart from a framing or transport error.
		return nil, &MalformedError{Type: body[0], Size: len(body), Err: err}
	}
	return rec, nil
}

// Decode decodes one record payload of the given type. The payload must
// be exactly consumed; leftover bytes are an error. Version-2 record
// types verify their trailing CRC-32C before any field is read.
func Decode(typ byte, payload []byte) (Record, error) {
	if checksummed(typ) {
		if len(payload) < 4 {
			return nil, fmt.Errorf("wire: record type 0x%02X too short for its checksum", typ)
		}
		body := payload[:len(payload)-4]
		want := binary.LittleEndian.Uint32(payload[len(payload)-4:])
		got := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, body)
		if got != want {
			countCRCFailure()
			return nil, fmt.Errorf("wire: record type 0x%02X checksum mismatch", typ)
		}
		payload = body
	}
	d := decoder{buf: payload}
	var rec Record
	switch typ {
	case typeHello:
		var h Hello
		h.Version = d.u16()
		h.Vehicle = d.str()
		h.Spec = d.str()
		rec = h
	case typeHelloAck:
		rec = HelloAck{Session: d.u64()}
	case typeFrameBatch:
		b := FrameBatch{}
		b.Frames = d.frames()
		rec = b
	case typeFinish:
		rec = Finish{}
	case typeEvent:
		rec = d.event()
	case typeVerdict:
		rec = d.verdict()
	case typeError:
		rec = Error{Msg: d.str()}
	case typeSeqBatch:
		b := SeqBatch{Seq: d.u64()}
		b.Frames = d.frames()
		rec = b
	case typeAck:
		rec = Ack{Seq: d.u64()}
	case typeResume:
		r := Resume{Version: d.u16(), Token: d.u64(), LastEventSeq: d.u64()}
		r.Epoch = d.optU64()
		rec = r
	case typeSessionGrant:
		g := SessionGrant{Session: d.u64(), Token: d.u64(), AckSeq: d.u64()}
		g.Epoch = d.optU64()
		rec = g
	case typeSeqEvent:
		e := SeqEvent{Seq: d.u64()}
		e.Event = d.event()
		rec = e
	case typeFinishSeq:
		rec = FinishSeq{Seq: d.u64()}
	case typeVerdictSeq:
		v := VerdictSeq{EventSeq: d.u64()}
		v.Verdict = d.verdict()
		rec = v
	default:
		return nil, fmt.Errorf("wire: unknown record type 0x%02X", typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.at != len(d.buf) {
		return nil, fmt.Errorf("wire: record type 0x%02X carries %d trailing bytes", typ, len(d.buf)-d.at)
	}
	return rec, nil
}

// frames decodes a counted frame run, bounding the declared count both
// against MaxFrameCount and against the bytes actually present, so a
// hostile count never sizes an allocation.
func (d *decoder) frames() []can.Frame {
	count := d.u32()
	if d.err != nil {
		return nil
	}
	if count > MaxFrameCount {
		d.err = fmt.Errorf("wire: frame batch declares %d frames (limit %d)", count, MaxFrameCount)
		return nil
	}
	if uint64(count)*frameSize != uint64(len(d.buf)-d.at) {
		d.err = fmt.Errorf("wire: frame batch declares %d frames over %d payload bytes", count, len(d.buf)-d.at)
		return nil
	}
	if count == 0 {
		return nil
	}
	frames := make([]can.Frame, count)
	for i := range frames {
		frames[i].Time = time.Duration(d.u64())
		frames[i].ID = d.u32()
		copy(frames[i].Data[:], d.bytes(8))
	}
	return frames
}

// event decodes the shared Event field layout.
func (d *decoder) event() Event {
	var e Event
	e.Kind = EventKind(d.u8())
	e.Rule = d.str()
	e.Time = time.Duration(d.u64())
	e.StartStep = d.u32()
	e.EndStep = d.u32()
	e.Start = time.Duration(d.u64())
	e.End = time.Duration(d.u64())
	e.Peak = math.Float64frombits(d.u64())
	e.Msg = d.str()
	e.Class = d.u8()
	if e.Kind != EventBegin && e.Kind != EventEnd && e.Kind != EventGap && d.err == nil {
		d.err = fmt.Errorf("wire: unknown event kind %d", e.Kind)
	}
	return e
}

// verdict decodes the shared Verdict field layout, bounding the rule
// count against MaxRuleCount and the bytes present.
func (d *decoder) verdict() Verdict {
	v := Verdict{}
	count := d.u32()
	if d.err == nil && (count > MaxRuleCount || uint64(count) > uint64(len(d.buf)-d.at)/ruleVerdictSize) {
		d.err = fmt.Errorf("wire: verdict declares %d rules over %d payload bytes", count, len(d.buf)-d.at)
		return v
	}
	if count > 0 && d.err == nil {
		v.Rules = make([]RuleVerdict, count)
		for i := range v.Rules {
			v.Rules[i].Rule = d.str()
			v.Rules[i].Violated = d.u8() != 0
			v.Rules[i].Violations = d.u32()
			v.Rules[i].Real = d.u32()
			v.Rules[i].Transient = d.u32()
			v.Rules[i].Negligible = d.u32()
		}
	}
	v.FramesIngested = d.u64()
	v.FramesDropped = d.u64()
	v.FramesRejected = d.u64()
	v.SpecEpoch = d.optU64()
	return v
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked cursor over one payload. The first
// overrun latches err and every later read returns zero values, so
// decode paths stay linear and check err once at the end.
type decoder struct {
	buf []byte
	at  int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.at+n > len(d.buf) {
		d.err = fmt.Errorf("wire: truncated record: want %d bytes at offset %d of %d", n, d.at, len(d.buf))
		return nil
	}
	b := d.buf[d.at : d.at+n]
	d.at += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	return string(d.bytes(n))
}

// optU64 reads a trailing optional u64: zero when the payload is
// already exhausted (a version-2 encoder stopped here), the value
// otherwise. Record layouts may only use it for their final field, so
// the strict trailing-bytes check still rejects any other remainder.
func (d *decoder) optU64() uint64 {
	if d.err != nil || d.at == len(d.buf) {
		return 0
	}
	return d.u64()
}

// Package archive is the fleet's durable trace store: a segment-based,
// append-only archive of the frames, events and verdicts that flow
// through a monitord deployment.
//
// The paper's monitor is an offline oracle over *stored* bus captures,
// and its rules were revised repeatedly as archived violations taught
// the authors what the specs should have said — so every trace the
// fleet verdicts is worth keeping, because the next spec revision will
// want to re-check it. This package provides the storage half of that
// loop; internal/recheck provides the replay half.
//
// # Layout
//
// An archive is a directory of size-bounded segment files. The active
// segment is arch-<n>.part; sealed segments are arch-<n>.seg and are
// never written again. Every segment starts with a CRC-validated
// header:
//
//	[8]  magic "CPSARCH1"
//	u16  format version (1)
//	u64  segment number
//	u64  first record sequence
//	u16  reserved (0)
//	u32  CRC-32C over the 28 bytes above
//
// followed by records. Every record is one length-prefixed envelope
// around a wire-codec payload (integers little-endian, as everywhere
// in this repository):
//
//	u32  length (kind through CRC, i.e. everything below)
//	u8   kind (1 frames, 2 event, 4 verdict, 8 epoch)
//	u64  sequence (archive-wide, monotonically increasing from 1)
//	u64  session
//	u64  tmin, u64 tmax (capture-time span covered, nanoseconds)
//	u16  vehicle length | vehicle bytes
//	[]   payload
//	u32  CRC-32C over kind..payload
//
// A frames payload is a u32 count followed by count 20-byte frames in
// the wire batch layout (u64 time, u32 id, 8 data bytes). Event and
// verdict payloads embed one complete wire record exactly as
// wire.Append produces it, so the archive stores what moved on the
// wire and decodes with the same strict codec. An epoch payload is a
// u64 spec epoch followed by a u16-length-prefixed spec content hash;
// the record carries no session, vehicle or time span — its meaning is
// positional (every trace record after it in archive order was
// produced under that spec, until the next marker).
//
// Sealing a segment appends a sparse index block — one (sequence,
// tmin, offset) entry per stride of records — and a fixed-size footer:
//
//	u64  index block offset
//	u64  last record sequence
//	u64  tmin, u64 tmax (span of the whole segment)
//	u32  record count
//	u32  CRC-32C over the index block plus the 36 bytes above
//	[8]  magic "CPSARCIX"
//
// then fsyncs and atomically renames .part to .seg. A reader finds the
// footer at a fixed offset from the end of file; if it fails
// validation the segment is re-scanned record by record, so a damaged
// index costs speed, never data.
//
// # Recovery invariants
//
// Only the active .part can ever be torn (a crash mid-append); sealed
// segments are immutable and are never truncated or rewritten. Opening
// a Writer over a directory with a leftover .part scans it, truncates
// after the last record whose length, envelope and CRC all validate,
// seals it, and starts a fresh segment — so a torn tail loses at most
// the final partially-written record. A Catalog performs the same scan
// read-only (it never modifies files), serving every record before the
// tear.
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Kind distinguishes record payloads. The values are single bits so a
// Query can select any subset with a mask.
type Kind uint8

const (
	// KindFrames is a run of applied CAN frames.
	KindFrames Kind = 1 << iota
	// KindEvent is one oracle notification (begin, end or gap).
	KindEvent
	// KindVerdict is a session's end-of-stream verdict.
	KindVerdict
	// KindEpoch is a spec promote marker: from this point in archive
	// order, the deployment's default spec is the one the record names.
	// Deliberately outside KindAll — trace queries and rechecks written
	// before spec provenance existed keep seeing exactly the records
	// they always did; provenance-aware readers opt in with the mask.
	KindEpoch

	// KindAll selects every trace record kind (frames, events,
	// verdicts). Epoch markers are metadata, not trace, and must be
	// selected explicitly.
	KindAll = KindFrames | KindEvent | KindVerdict
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFrames:
		return "frames"
	case KindEvent:
		return "event"
	case KindVerdict:
		return "verdict"
	case KindEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	headerMagic = "CPSARCH1"
	footerMagic = "CPSARCIX"

	formatVersion = 1

	headerSize = 32
	footerSize = 48

	// envFixed is the envelope's fixed cost after the length prefix:
	// kind, sequence, session, tmin, tmax and the vehicle length.
	envFixed = 1 + 8 + 8 + 8 + 8 + 2

	// minRecordLen and maxRecordLen bound the length prefix of a
	// record (which counts kind through CRC). The ceiling leaves the
	// envelope room around a maximum-size wire record, so nothing a
	// legitimate writer produces is refused, while a corrupt length
	// can never size a large read.
	minRecordLen = envFixed + 4
	maxRecordLen = 1<<20 + 4096

	// indexEntrySize is one sparse index entry: sequence, tmin, offset.
	indexEntrySize = 24
)

// crcTable is the Castagnoli table, matching the wire protocol's CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segFileName names segment n: the atomic-rename pair .part → .seg.
func segFileName(n uint64, sealed bool) string {
	ext := "part"
	if sealed {
		ext = "seg"
	}
	return fmt.Sprintf("arch-%08d.%s", n, ext)
}

// parseSegName recognizes segment file names.
func parseSegName(name string) (n uint64, sealed, ok bool) {
	var num uint64
	var ext string
	if _, err := fmt.Sscanf(name, "arch-%d.%s", &num, &ext); err != nil {
		return 0, false, false
	}
	switch ext {
	case "seg":
		return num, true, true
	case "part":
		return num, false, true
	default:
		return 0, false, false
	}
}

// indexEntry is one sparse index row: the first record at or after
// offset off has sequence seq and span starting at tmin.
type indexEntry struct {
	seq  uint64
	tmin time.Duration
	off  int64
}

// appendHeader encodes a segment header.
func appendHeader(buf []byte, segNum, firstSeq uint64) []byte {
	buf = append(buf, headerMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, segNum)
	buf = binary.LittleEndian.AppendUint64(buf, firstSeq)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // reserved
	crc := crc32.Checksum(buf[len(buf)-28:], crcTable)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// parseHeader validates and decodes a segment header.
func parseHeader(b []byte) (segNum, firstSeq uint64, err error) {
	if len(b) < headerSize {
		return 0, 0, fmt.Errorf("archive: segment header truncated at %d bytes", len(b))
	}
	if string(b[:8]) != headerMagic {
		return 0, 0, fmt.Errorf("archive: bad segment magic %q", b[:8])
	}
	if got, want := crc32.Checksum(b[:28], crcTable), binary.LittleEndian.Uint32(b[28:32]); got != want {
		return 0, 0, fmt.Errorf("archive: segment header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(b[8:10]); v != formatVersion {
		return 0, 0, fmt.Errorf("archive: segment format version %d unsupported", v)
	}
	return binary.LittleEndian.Uint64(b[10:18]), binary.LittleEndian.Uint64(b[18:26]), nil
}

// envelope is one parsed record envelope. vehicle and payload are
// views into the caller's buffer, valid only until it is reused.
type envelope struct {
	kind       Kind
	seq        uint64
	session    uint64
	tmin, tmax time.Duration
	vehicle    []byte
	payload    []byte
}

// parseEnvelope validates one record body (the bytes the length prefix
// counts: kind through CRC) and returns its envelope.
func parseEnvelope(body []byte) (envelope, error) {
	var e envelope
	if len(body) < minRecordLen {
		return e, fmt.Errorf("archive: record body of %d bytes is shorter than the envelope", len(body))
	}
	data, tail := body[:len(body)-4], body[len(body)-4:]
	if got, want := crc32.Checksum(data, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return e, fmt.Errorf("archive: record checksum mismatch")
	}
	e.kind = Kind(data[0])
	if e.kind != KindFrames && e.kind != KindEvent && e.kind != KindVerdict && e.kind != KindEpoch {
		return e, fmt.Errorf("archive: unknown record kind %d", data[0])
	}
	e.seq = binary.LittleEndian.Uint64(data[1:9])
	e.session = binary.LittleEndian.Uint64(data[9:17])
	e.tmin = time.Duration(binary.LittleEndian.Uint64(data[17:25]))
	e.tmax = time.Duration(binary.LittleEndian.Uint64(data[25:33]))
	vlen := int(binary.LittleEndian.Uint16(data[33:35]))
	if envFixed+vlen > len(data) {
		return e, fmt.Errorf("archive: record declares a %d-byte vehicle over %d body bytes", vlen, len(data))
	}
	e.vehicle = data[envFixed : envFixed+vlen]
	e.payload = data[envFixed+vlen:]
	return e, nil
}

package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"reflect"
	"testing"
	"time"

	"cpsmon/internal/can"
)

// buildInterleavedArchive writes a multi-segment archive with nSessions
// sessions interleaved chunk by chunk — the shape a fleet server
// produces — plus one event and one verdict per session. The tiny
// segment threshold forces frequent rotation so the parallel scanner
// has real fan-out to exercise.
func buildInterleavedArchive(t testing.TB, dir string, nSessions, rounds int) {
	t.Helper()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	for round := 0; round < rounds; round++ {
		for s := 1; s <= nSessions; s++ {
			start := time.Duration(round*nSessions+s) * 40 * time.Millisecond
			frames := mkFrames(20+(s%5)*7, start)
			veh := fmt.Sprintf("veh-%d", s%4)
			if err := w.ArchiveFrames(uint64(s), veh, frames); err != nil {
				t.Fatalf("ArchiveFrames: %v", err)
			}
			if round == rounds/2 {
				if err := w.ArchiveEvent(uint64(s), veh, testEvent("Rule1", start)); err != nil {
					t.Fatalf("ArchiveEvent: %v", err)
				}
			}
		}
	}
	for s := 1; s <= nSessions; s++ {
		if err := w.ArchiveVerdict(uint64(s), fmt.Sprintf("veh-%d", s%4), testVerdict(uint32(s%3))); err != nil {
			t.Fatalf("ArchiveVerdict: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// collectParallel drains a parallel iterator, copying frames out of the
// chunk arenas.
func collectParallel(t testing.TB, it *ParallelIterator) ([]Record, error) {
	t.Helper()
	defer it.Close()
	var out []Record
	for it.Next() {
		r := *it.Record()
		r.Frames = append([]can.Frame(nil), r.Frames...)
		out = append(out, r)
	}
	return out, it.Err()
}

// TestParallelIterDifferential pins the parallel scanner to the
// sequential iterator: identical record streams for a spread of
// queries, worker counts and prefetch windows.
func TestParallelIterDifferential(t *testing.T) {
	dir := t.TempDir()
	buildInterleavedArchive(t, dir, 16, 8)
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	if len(cat.Segments()) < 4 {
		t.Fatalf("fixture built only %d segments; differential test needs fan-out", len(cat.Segments()))
	}

	queries := []Query{
		{},
		{Kinds: KindFrames | KindVerdict},
		{Session: 5},
		{Vehicle: "veh-3"},
		{From: 200 * time.Millisecond, To: 900 * time.Millisecond, Kinds: KindFrames},
	}
	for qi, q := range queries {
		want := collect(t, cat.Iter(q))
		for _, workers := range []int{1, 2, 4} {
			for _, ahead := range []int{0, 1} {
				got, err := collectParallel(t, cat.ParallelIter(q, ScanOptions{Workers: workers, Ahead: ahead}))
				if err != nil {
					t.Fatalf("query %d workers=%d ahead=%d: %v", qi, workers, ahead, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %d workers=%d ahead=%d: parallel stream diverges (%d vs %d records)",
						qi, workers, ahead, len(want), len(got))
				}
			}
		}
	}
}

// TestIteratorCloseIdempotentMidIteration pins the documented Close
// contract for the sequential iterator: closing mid-iteration (current
// record in hand) is safe, closing twice is safe, and neither disturbs
// Err.
func TestIteratorCloseIdempotentMidIteration(t *testing.T) {
	dir := t.TempDir()
	buildInterleavedArchive(t, dir, 4, 4)
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	it := cat.Iter(Query{})
	for i := 0; i < 3; i++ {
		if !it.Next() {
			t.Fatalf("Next %d = false before Close", i)
		}
	}
	rec := *it.Record()
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if it.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := it.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil", err)
	}
	if rec.Seq == 0 {
		t.Fatal("record captured before Close lost its envelope")
	}
}

// TestParallelIterCloseMidIteration closes a parallel scan with chunks
// still in flight: Close must reap the workers (not hang), be
// idempotent, and leave subsequent Next calls reporting false.
func TestParallelIterCloseMidIteration(t *testing.T) {
	dir := t.TempDir()
	buildInterleavedArchive(t, dir, 8, 8)
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	it := cat.ParallelIter(Query{}, ScanOptions{Workers: 4, Ahead: 1})
	for i := 0; i < 2; i++ {
		if !it.Next() {
			t.Fatalf("Next %d = false before Close", i)
		}
	}
	done := make(chan struct{})
	go func() { it.Close(); it.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with chunks in flight")
	}
	if it.Next() {
		t.Fatal("Next returned true after Close")
	}
	if err := it.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil", err)
	}
}

// corruptFramesCount rewrites the first frames record of the given
// segment file so its payload declares an absurd frame count, then
// re-checksums the record. The envelope stays valid — the corruption
// is only visible to the frames decoder, which must surface it as an
// iteration error (not silently abandon the segment).
func corruptFramesCount(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSize)
	n := binary.LittleEndian.Uint32(raw[off : off+4])
	body := raw[off+4 : off+4+int64(n)]
	data := body[:len(body)-4]
	vlen := int(binary.LittleEndian.Uint16(data[33:35]))
	payload := data[envFixed+vlen:]
	binary.LittleEndian.PutUint32(payload[:4], 0xFFFFFFF0)
	binary.LittleEndian.PutUint32(body[len(body)-4:], crc32.Checksum(data, crcTable))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestParallelIterDecodeErrorSurfaces corrupts a frames payload in a
// middle segment (with a valid envelope checksum) and checks both
// iterators report the same error instead of hanging or skipping it,
// after serving every record that precedes the corruption.
func TestParallelIterDecodeErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	buildInterleavedArchive(t, dir, 8, 8)
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	segs := cat.Segments()
	if len(segs) < 3 {
		t.Fatalf("fixture built only %d segments", len(segs))
	}
	corruptFramesCount(t, segs[len(segs)/2].Path)

	// Reopen: sealed segments are served through their footer, so the
	// record-level corruption stays invisible until decode time.
	cat, err = OpenCatalog(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	seqIt := cat.Iter(Query{})
	var seqRecs int
	for seqIt.Next() {
		seqRecs++
	}
	seqErr := seqIt.Err()
	seqIt.Close()
	if seqErr == nil {
		t.Fatal("sequential iterator missed the corrupted frames payload")
	}

	done := make(chan struct{})
	var parRecs int
	var parErr error
	go func() {
		defer close(done)
		parRecs, parErr = func() (int, error) {
			it := cat.ParallelIter(Query{}, ScanOptions{Workers: 4})
			defer it.Close()
			n := 0
			for it.Next() {
				n++
			}
			return n, it.Err()
		}()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallel iterator hung on decode error")
	}
	if parErr == nil || parErr.Error() != seqErr.Error() {
		t.Fatalf("parallel error = %v, want %v", parErr, seqErr)
	}
	if parRecs != seqRecs {
		t.Fatalf("parallel served %d records before the error, sequential %d", parRecs, seqRecs)
	}
}

package archive

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/wire"
)

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold: a record that would push
	// the active segment past this many bytes seals it and starts the
	// next. Zero selects 8 MiB; the floor is 4 KiB.
	SegmentBytes int64
	// IndexEvery is the sparse index stride in records. Zero selects
	// 64.
	IndexEvery int
}

const (
	defaultSegmentBytes = 8 << 20
	minSegmentBytes     = 4 << 10
	defaultIndexEvery   = 64
)

// ErrClosed reports an append to a closed Writer.
var ErrClosed = errors.New("archive: writer is closed")

// Writer appends records to an archive directory. It is safe for
// concurrent use; the append path performs no allocation in steady
// state (the record is built in a reused scratch buffer and written
// through a buffered file).
//
// Writer implements the fleet server's Archiver hook: ArchiveFrames,
// ArchiveEvent and ArchiveVerdict append one record each, and Flush
// pushes buffered bytes to the operating system (the fleet drain
// barrier calls it before acknowledging a final verdict).
type Writer struct {
	mu  sync.Mutex
	dir string
	opt Options

	seq     uint64 // next record sequence
	segNext uint64 // next segment number

	f          *os.File
	bw         *bufio.Writer
	size       int64 // bytes in the active segment, header included
	recs       uint32
	index      []indexEntry
	sinceIndex int
	segTmin    time.Duration
	segTmax    time.Duration
	spanSet    bool

	scratch []byte
	closed  bool
}

// OpenWriter opens (creating if needed) the archive directory and
// positions the writer after the newest record. A leftover .part from
// a crash is recovered — truncated to its last valid record, sealed —
// before the first append starts a fresh segment.
func OpenWriter(dir string, opt Options) (*Writer, error) {
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.SegmentBytes < minSegmentBytes {
		opt.SegmentBytes = minSegmentBytes
	}
	if opt.IndexEvery <= 0 {
		opt.IndexEvery = defaultIndexEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	w := &Writer{dir: dir, opt: opt, seq: 1, segNext: 1}

	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, sf := range names {
		if sf.num >= w.segNext {
			w.segNext = sf.num + 1
		}
		if sf.sealed {
			seg, err := openSegment(filepath.Join(dir, sf.name), true)
			if err != nil {
				return nil, err
			}
			if seg.info.Records > 0 && seg.info.LastSeq >= w.seq {
				w.seq = seg.info.LastSeq + 1
			}
			continue
		}
		lastSeq, err := w.recoverPart(filepath.Join(dir, sf.name))
		if err != nil {
			return nil, err
		}
		if lastSeq >= w.seq {
			w.seq = lastSeq + 1
		}
	}
	return w, nil
}

// segFile pairs a segment file name with its parsed identity.
type segFile struct {
	name   string
	num    uint64
	sealed bool
}

// listSegments enumerates segment files in dir, ordered by number
// (a .part sorts after the .seg of the same number, though the pair
// cannot legally coexist).
func listSegments(dir string) ([]segFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var out []segFile
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if n, sealed, ok := parseSegName(ent.Name()); ok {
			out = append(out, segFile{name: ent.Name(), num: n, sealed: sealed})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].num != out[j].num {
			return out[i].num < out[j].num
		}
		return out[i].sealed && !out[j].sealed
	})
	return out, nil
}

// recoverPart recovers a torn active segment left by a crash: scan to
// the last valid record, truncate the tear, seal, rename. An empty or
// headerless part is removed. Returns the last sequence recovered
// (zero if none).
func (w *Writer) recoverPart(path string) (uint64, error) {
	sum, err := scanSegment(path)
	if err != nil {
		return 0, err
	}
	if sum.count == 0 {
		// Unreadable header or no complete record survived: nothing to
		// keep.
		if rmErr := os.Remove(path); rmErr != nil {
			return 0, fmt.Errorf("archive: recover %s: %w", path, rmErr)
		}
		countRecovered()
		return 0, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	if err := f.Truncate(sum.validEnd); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	tail := sealTail(nil, sum.index, sum.validEnd, sum.lastSeq, sum.tmin, sum.tmax, sum.count)
	if _, err := f.Write(tail); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	sealed := filepath.Join(w.dir, segFileName(sum.segNum, true))
	if err := os.Rename(path, sealed); err != nil {
		return 0, fmt.Errorf("archive: recover %s: %w", path, err)
	}
	countRecovered()
	return sum.lastSeq, nil
}

// ArchiveFrames appends one frames record covering the run's capture
// span. Empty runs are ignored. This is the archive hot path: zero
// allocations in steady state, and the payload is delta-compressed —
// each frame carries a zigzag-varint timestamp delta against the
// previous frame and a varint ID, so a run of same-tick 11-bit-ID
// frames costs ~11 bytes each instead of 20. On a disk-bandwidth-bound
// pump that byte cut translates directly into ingest headroom.
func (w *Writer) ArchiveFrames(session uint64, vehicle string, frames []can.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	tmin, tmax := frames[0].Time, frames[0].Time
	for _, f := range frames[1:] {
		if f.Time < tmin {
			tmin = f.Time
		}
		if f.Time > tmax {
			tmax = f.Time
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	b := w.begin(KindFrames, session, vehicle, tmin, tmax)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(frames)))
	prev := int64(0)
	for _, f := range frames {
		b = binary.AppendVarint(b, int64(f.Time)-prev)
		prev = int64(f.Time)
		b = binary.AppendUvarint(b, uint64(f.ID))
		b = append(b, f.Data[:]...)
	}
	return w.commit(b, tmin, tmax)
}

// ArchiveEvent appends one event record, payload encoded by the wire
// codec.
func (w *Writer) ArchiveEvent(session uint64, vehicle string, e wire.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	b := w.begin(KindEvent, session, vehicle, e.Time, e.Time)
	b = wire.Append(b, e)
	return w.commit(b, e.Time, e.Time)
}

// ArchiveVerdict appends one verdict record, payload encoded by the
// wire codec. A verdict spans its whole session, so it carries no
// meaningful capture-time span and is never excluded by a time-range
// query.
func (w *Writer) ArchiveVerdict(session uint64, vehicle string, v wire.Verdict) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	b := w.begin(KindVerdict, session, vehicle, 0, 0)
	b = wire.Append(b, v)
	return w.commit(b, 0, 0)
}

// ArchiveSpecEpoch appends one spec-epoch marker: from this record on
// (in archive order), trace records were produced under the spec whose
// content hash it names. The marker carries no session, vehicle or
// capture-time span; like a verdict it is exempt from time-range
// filtering, and it is outside KindAll so only provenance-aware
// queries see it.
func (w *Writer) ArchiveSpecEpoch(epoch uint64, hash string) error {
	if len(hash) > 0xFFFF {
		return fmt.Errorf("archive: spec hash over 64KiB")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	b := w.begin(KindEpoch, 0, "", 0, 0)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(hash)))
	b = append(b, hash...)
	return w.commit(b, 0, 0)
}

// begin starts a record in the scratch buffer: length placeholder plus
// the envelope through the vehicle string.
func (w *Writer) begin(k Kind, session uint64, vehicle string, tmin, tmax time.Duration) []byte {
	b := w.scratch[:0]
	b = append(b, 0, 0, 0, 0) // length placeholder
	b = append(b, byte(k))
	b = binary.LittleEndian.AppendUint64(b, w.seq)
	b = binary.LittleEndian.AppendUint64(b, session)
	b = binary.LittleEndian.AppendUint64(b, uint64(tmin))
	b = binary.LittleEndian.AppendUint64(b, uint64(tmax))
	if len(vehicle) > math.MaxUint16 {
		vehicle = vehicle[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(vehicle)))
	return append(b, vehicle...)
}

// commit seals the scratch record (CRC, length), rotates the segment
// if needed, and writes it.
func (w *Writer) commit(b []byte, tmin, tmax time.Duration) error {
	crc := crc32.Checksum(b[4:], crcTable)
	b = binary.LittleEndian.AppendUint32(b, crc)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	w.scratch = b // keep the grown capacity
	if len(b)-4 > maxRecordLen {
		return fmt.Errorf("archive: record of %d bytes exceeds limit %d", len(b)-4, maxRecordLen)
	}
	if w.f == nil || (w.recs > 0 && w.size+int64(len(b)) > w.opt.SegmentBytes) {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if w.recs == 0 || w.sinceIndex >= w.opt.IndexEvery {
		w.index = append(w.index, indexEntry{seq: w.seq, tmin: tmin, off: w.size})
		w.sinceIndex = 0
	}
	n, err := w.bw.Write(b)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("archive: append: %w", err)
	}
	if !w.spanSet || tmin < w.segTmin {
		w.segTmin = tmin
	}
	if !w.spanSet || tmax > w.segTmax {
		w.segTmax = tmax
	}
	w.spanSet = true
	w.recs++
	w.sinceIndex++
	w.seq++
	countAppend(Kind(b[4]), len(b))
	return nil
}

// rotate seals the active segment (if any) and opens the next.
func (w *Writer) rotate() error {
	if w.f != nil {
		if err := w.seal(); err != nil {
			return err
		}
	}
	path := filepath.Join(w.dir, segFileName(w.segNext, false))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: open segment: %w", err)
	}
	hdr := appendHeader(w.scratchTail(), w.segNext, w.seq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("archive: write segment header: %w", err)
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<20)
	} else {
		w.bw.Reset(f)
	}
	w.size = headerSize
	w.recs = 0
	w.index = w.index[:0]
	w.sinceIndex = 0
	w.spanSet = false
	w.segTmin, w.segTmax = 0, 0
	w.segNext++
	return nil
}

// scratchTail returns spare scratch capacity to build small blocks in
// without disturbing the record bytes (only called between records).
func (w *Writer) scratchTail() []byte {
	return w.scratch[len(w.scratch):]
}

// seal finishes the active segment: index block, footer, sync, rename.
func (w *Writer) seal() error {
	segNum := w.segNext - 1
	tail := sealTail(w.scratchTail(), w.index, w.size, w.seq-1, w.segTmin, w.segTmax, w.recs)
	if _, err := w.bw.Write(tail); err != nil {
		return fmt.Errorf("archive: seal: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("archive: seal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("archive: seal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("archive: seal: %w", err)
	}
	from := filepath.Join(w.dir, segFileName(segNum, false))
	to := filepath.Join(w.dir, segFileName(segNum, true))
	if err := os.Rename(from, to); err != nil {
		return fmt.Errorf("archive: seal: %w", err)
	}
	w.f = nil
	countSealed()
	return nil
}

// sealTail builds the index block plus footer for a segment whose
// records end at dataEnd.
func sealTail(buf []byte, index []indexEntry, dataEnd int64, lastSeq uint64, tmin, tmax time.Duration, recs uint32) []byte {
	at := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(index)))
	for _, e := range index {
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.tmin))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(dataEnd))
	buf = binary.LittleEndian.AppendUint64(buf, lastSeq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tmin))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tmax))
	buf = binary.LittleEndian.AppendUint32(buf, recs)
	crc := crc32.Checksum(buf[at:], crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return append(buf, footerMagic...)
}

// Flush pushes buffered record bytes to the operating system, so a
// concurrently opened Catalog (or a post-crash recovery) sees every
// record appended so far. It does not fsync; seal does.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.bw == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("archive: flush: %w", err)
	}
	return nil
}

// Close seals the active segment and closes the writer. A writer that
// never appended leaves no file behind.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if w.recs == 0 {
		// Rotation never leaves an empty active segment, but a Close
		// racing the first append's rotate could: drop it.
		path := w.f.Name()
		w.bw.Flush()
		w.f.Close()
		w.f = nil
		return os.Remove(path)
	}
	return w.seal()
}

// NextSeq returns the sequence number the next appended record will
// carry.
func (w *Writer) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dir returns the archive directory.
func (w *Writer) Dir() string { return w.dir }

// SweepRetention removes sealed segments whose file modification time
// is older than maxAge, returning how many were removed. The active
// segment is never touched; maxAge <= 0 removes nothing. Modification
// time is the moment the segment was sealed, so a segment's age is
// measured from its newest record.
func (w *Writer) SweepRetention(maxAge time.Duration) (int, error) {
	if maxAge <= 0 {
		return 0, nil
	}
	names, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	cutoff := time.Now().Add(-maxAge)
	removed := 0
	for _, sf := range names {
		if !sf.sealed {
			continue
		}
		path := filepath.Join(w.dir, sf.name)
		st, err := os.Stat(path)
		if err != nil {
			continue // raced another sweep
		}
		if st.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("archive: retention: %w", err)
		}
		removed++
		countSwept()
	}
	return removed, nil
}

package archive

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/wire"
)

// SegmentInfo describes one segment file as the catalog found it.
type SegmentInfo struct {
	// Path is the file path; Number the segment number from its header.
	Path   string
	Number uint64
	// Sealed reports a .seg (immutable, indexed); false is the active
	// or abandoned .part.
	Sealed bool
	// Records counts valid records; FirstSeq/LastSeq their sequence
	// range (zero when empty); TMin/TMax the capture-time span.
	Records           uint32
	FirstSeq, LastSeq uint64
	TMin, TMax        time.Duration
	// Bytes is the file size on disk.
	Bytes int64
	// Scanned reports that the metadata above was rebuilt by a record
	// scan — the segment is a .part, or its footer failed validation.
	Scanned bool
	// Torn reports that the file holds bytes past the last valid
	// record (a crash tear or tail corruption); everything before the
	// tear is served.
	Torn bool
	// Damaged reports an unreadable header: the segment serves no
	// records at all.
	Damaged bool
}

// segment is one catalog entry: its public info plus where the record
// region ends and the sparse index for sealed segments.
type segment struct {
	info    SegmentInfo
	dataEnd int64
	index   []indexEntry
}

// Catalog is a read-only view over an archive directory. It never
// modifies files — a torn tail is skipped in place, not truncated —
// so it is safe to open while a Writer is appending (call
// Writer.Flush first to see the newest records).
type Catalog struct {
	dir  string
	segs []segment
}

// OpenCatalog scans dir and builds a catalog. Sealed segments are
// opened through their footer and index; a sealed segment whose
// footer fails validation, and any .part, is scanned record by
// record. Per the recovery invariant, a torn or damaged final segment
// never hides the sealed segments before it.
func OpenCatalog(dir string) (*Catalog, error) {
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir}
	for _, sf := range names {
		path := filepath.Join(dir, sf.name)
		seg, err := openSegment(path, sf.sealed)
		if err != nil {
			return nil, err
		}
		c.segs = append(c.segs, seg)
	}
	return c, nil
}

// Dir returns the catalog's directory.
func (c *Catalog) Dir() string { return c.dir }

// Segments returns the catalog's segment descriptions in segment
// order.
func (c *Catalog) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(c.segs))
	for i := range c.segs {
		out[i] = c.segs[i].info
	}
	return out
}

// Records returns the total valid record count across all segments.
func (c *Catalog) Records() uint64 {
	var n uint64
	for i := range c.segs {
		n += uint64(c.segs[i].info.Records)
	}
	return n
}

// openSegment builds one catalog entry, preferring the sealed fast
// path (footer + index) and falling back to a scan.
func openSegment(path string, sealed bool) (segment, error) {
	st, err := os.Stat(path)
	if err != nil {
		return segment{}, fmt.Errorf("archive: %w", err)
	}
	if sealed {
		if seg, err := openSealed(path, st.Size()); err == nil {
			return seg, nil
		}
		// Fall through: damaged footer or index — rebuild by scan.
	}
	sum, err := scanSegment(path)
	if err != nil {
		return segment{}, err
	}
	seg := segment{
		info: SegmentInfo{
			Path:    path,
			Number:  sum.segNum,
			Sealed:  sealed,
			Records: sum.count,
			TMin:    sum.tmin,
			TMax:    sum.tmax,
			Bytes:   st.Size(),
			Scanned: true,
			Torn:    sum.validEnd < st.Size(),
			Damaged: !sum.headerOK,
		},
		dataEnd: sum.validEnd,
		index:   sum.index,
	}
	if sum.count > 0 {
		seg.info.FirstSeq = sum.firstSeq
		seg.info.LastSeq = sum.lastSeq
	}
	return seg, nil
}

// openSealed reads a sealed segment through its footer and index
// block, validating both checksums.
func openSealed(path string, size int64) (segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return segment{}, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return segment{}, err
	}
	segNum, firstSeq, err := parseHeader(hdr[:])
	if err != nil {
		return segment{}, err
	}
	if size < headerSize+footerSize {
		return segment{}, errors.New("archive: sealed segment too small for a footer")
	}
	var ftr [footerSize]byte
	if _, err := f.ReadAt(ftr[:], size-footerSize); err != nil {
		return segment{}, err
	}
	if string(ftr[footerSize-8:]) != footerMagic {
		return segment{}, errors.New("archive: footer magic missing")
	}
	dataEnd := int64(binary.LittleEndian.Uint64(ftr[0:8]))
	lastSeq := binary.LittleEndian.Uint64(ftr[8:16])
	tmin := time.Duration(binary.LittleEndian.Uint64(ftr[16:24]))
	tmax := time.Duration(binary.LittleEndian.Uint64(ftr[24:32]))
	recs := binary.LittleEndian.Uint32(ftr[32:36])
	if dataEnd < headerSize || dataEnd > size-footerSize {
		return segment{}, errors.New("archive: footer index offset out of range")
	}
	block := make([]byte, size-footerSize+36-dataEnd)
	if _, err := f.ReadAt(block, dataEnd); err != nil {
		return segment{}, err
	}
	if got, want := crc32.Checksum(block, crcTable), binary.LittleEndian.Uint32(ftr[36:40]); got != want {
		return segment{}, errors.New("archive: footer checksum mismatch")
	}
	count := binary.LittleEndian.Uint32(block[0:4])
	if int(count)*indexEntrySize != len(block)-4-36 {
		return segment{}, errors.New("archive: index block size mismatch")
	}
	index := make([]indexEntry, count)
	for i := range index {
		at := 4 + i*indexEntrySize
		index[i] = indexEntry{
			seq:  binary.LittleEndian.Uint64(block[at : at+8]),
			tmin: time.Duration(binary.LittleEndian.Uint64(block[at+8 : at+16])),
			off:  int64(binary.LittleEndian.Uint64(block[at+16 : at+24])),
		}
	}
	seg := segment{
		info: SegmentInfo{
			Path:    path,
			Number:  segNum,
			Sealed:  true,
			Records: recs,
			TMin:    tmin,
			TMax:    tmax,
			Bytes:   size,
		},
		dataEnd: dataEnd,
		index:   index,
	}
	if recs > 0 {
		seg.info.FirstSeq = firstSeq
		seg.info.LastSeq = lastSeq
	}
	return seg, nil
}

// segScan summarizes a record-by-record segment scan.
type segScan struct {
	headerOK          bool
	segNum            uint64
	count             uint32
	firstSeq, lastSeq uint64
	tmin, tmax        time.Duration
	spanSet           bool
	index             []indexEntry
	validEnd          int64
}

// scanSegment walks a segment sequentially, validating every record's
// length, CRC and envelope, and stops at the first byte that does not
// parse — the tear. Errors are reserved for I/O failures; a torn or
// headerless file is a valid scan result.
func scanSegment(path string) (segScan, error) {
	var sum segScan
	f, err := os.Open(path)
	if err != nil {
		return sum, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64<<10)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return sum, nil // shorter than a header: nothing valid
	}
	segNum, firstSeq, err := parseHeader(hdr[:])
	if err != nil {
		return sum, nil
	}
	sum.headerOK = true
	sum.segNum = segNum
	sum.validEnd = headerSize

	buf := make([]byte, 0, 4<<10)
	off := int64(headerSize)
	sinceIndex := 0
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return sum, nil
		}
		n := binary.LittleEndian.Uint32(lenb[:])
		if n < minRecordLen || n > maxRecordLen {
			return sum, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return sum, nil
		}
		env, err := parseEnvelope(buf)
		if err != nil {
			return sum, nil
		}
		if sum.count == 0 {
			sum.firstSeq = env.seq
			if env.seq != firstSeq {
				// The header promises the first sequence; a mismatch
				// means the record region does not belong to this
				// header.
				return sum, nil
			}
		}
		if sum.count == 0 || sinceIndex >= defaultIndexEvery {
			sum.index = append(sum.index, indexEntry{seq: env.seq, tmin: env.tmin, off: off})
			sinceIndex = 0
		}
		if !sum.spanSet || env.tmin < sum.tmin {
			sum.tmin = env.tmin
		}
		if !sum.spanSet || env.tmax > sum.tmax {
			sum.tmax = env.tmax
		}
		sum.spanSet = true
		sum.lastSeq = env.seq
		sum.count++
		sinceIndex++
		off += int64(4 + n)
		sum.validEnd = off
	}
}

// Query selects records from a catalog.
type Query struct {
	// From and To bound the capture-time window: a record is returned
	// when its [TMin, TMax] span overlaps [From, To]. To zero means
	// unbounded. Verdict records carry no span and always pass the
	// time filter. Within a frames record, individual frames outside
	// the window are filtered out.
	From, To time.Duration
	// Vehicle, when non-empty, selects one vehicle's records.
	Vehicle string
	// Session, when nonzero, selects one session's records.
	Session uint64
	// Kinds is a Kind mask; zero selects KindAll — every trace kind,
	// but not epoch markers, which must be requested explicitly.
	Kinds Kind
}

// skipsSegment reports whether the query can never match a record in
// the segment: a damaged or empty segment, or — when the query cannot
// match verdicts (which are exempt from the time window) — a segment
// whose footer time span is disjoint from the window, since the span
// bounds every record inside.
func (q Query) skipsSegment(info SegmentInfo) bool {
	if info.Damaged || info.Records == 0 {
		return true
	}
	kinds := q.Kinds
	if kinds == 0 {
		kinds = KindAll
	}
	if kinds&(KindVerdict|KindEpoch) != 0 {
		return false
	}
	return (q.To > 0 && info.TMin > q.To) || (q.From > 0 && info.TMax < q.From)
}

// Record is one archived record as yielded by an Iterator. Frames is
// the iterator's reusable scratch buffer — valid only until the next
// call to Next.
type Record struct {
	Kind       Kind
	Seq        uint64
	Session    uint64
	Vehicle    string
	TMin, TMax time.Duration
	// Frames holds the in-window frames of a KindFrames record.
	Frames []can.Frame
	// Event holds a KindEvent record's payload.
	Event wire.Event
	// Verdict holds a KindVerdict record's payload.
	Verdict wire.Verdict
	// SpecEpoch and SpecHash hold a KindEpoch record's payload: the
	// promoted spec generation and its content hash.
	SpecEpoch uint64
	SpecHash  string
}

// Iterator walks a catalog's records in archive order (segment by
// segment, offset by offset — which is also global sequence order).
type Iterator struct {
	segs []segment
	q    Query

	si  int
	f   *os.File
	br  *bufio.Reader
	off int64
	end int64

	buf      []byte
	frames   []can.Frame
	vehicles map[string]string
	rec      Record
	err      error
	done     bool
}

// Iter starts a query. Close the iterator when done with it.
func (c *Catalog) Iter(q Query) *Iterator {
	return &Iterator{segs: c.segs, q: q, vehicles: make(map[string]string)}
}

// Next advances to the next matching record, reporting false at the
// end of the archive or on error (distinguish with Err).
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for {
		if it.f == nil {
			if !it.openNext() {
				return false
			}
		}
		body, ok := it.readBody()
		if !ok {
			continue // segment exhausted (or tail corruption): next one
		}
		env, err := parseEnvelope(body)
		if err != nil {
			// A record inside the region the catalog validated failed
			// now: the file changed or rotted under us. Abandon this
			// segment, serve the rest.
			countCorrupt()
			it.closeSegment()
			continue
		}
		if !it.match(env) {
			continue
		}
		if it.decode(env) {
			return true
		}
		if it.err != nil {
			return false
		}
	}
}

// openNext opens the next segment with records to serve. When the
// query cannot match verdicts (which are exempt from the time window),
// segments whose footer time span is disjoint from the window are
// pruned without being opened — the span bounds every record inside.
func (it *Iterator) openNext() bool {
	for it.si < len(it.segs) {
		seg := it.segs[it.si]
		it.si++
		if it.q.skipsSegment(seg.info) {
			continue
		}
		f, err := os.Open(seg.info.Path)
		if err != nil {
			it.err = fmt.Errorf("archive: %w", err)
			return false
		}
		if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
			f.Close()
			it.err = fmt.Errorf("archive: %w", err)
			return false
		}
		it.f = f
		if it.br == nil {
			it.br = bufio.NewReaderSize(f, 64<<10)
		} else {
			it.br.Reset(f)
		}
		it.off = headerSize
		it.end = seg.dataEnd
		return true
	}
	it.done = true
	return false
}

// readBody reads the next record body in the open segment, reporting
// false when the segment's record region is exhausted.
func (it *Iterator) readBody() ([]byte, bool) {
	if it.off+4 > it.end {
		it.closeSegment()
		return nil, false
	}
	var lenb [4]byte
	if _, err := io.ReadFull(it.br, lenb[:]); err != nil {
		it.closeSegment()
		return nil, false
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < minRecordLen || n > maxRecordLen || it.off+4+int64(n) > it.end {
		countCorrupt()
		it.closeSegment()
		return nil, false
	}
	if cap(it.buf) < int(n) {
		it.buf = make([]byte, n)
	}
	it.buf = it.buf[:n]
	if _, err := io.ReadFull(it.br, it.buf); err != nil {
		it.closeSegment()
		return nil, false
	}
	it.off += int64(4 + n)
	return it.buf, true
}

func (it *Iterator) closeSegment() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
}

// match applies the query's session, vehicle, kind and time filters to
// an envelope.
func (it *Iterator) match(env envelope) bool {
	if it.q.Session != 0 && env.session != it.q.Session {
		return false
	}
	if it.q.Vehicle != "" && string(env.vehicle) != it.q.Vehicle {
		return false
	}
	kinds := it.q.Kinds
	if kinds == 0 {
		kinds = KindAll
	}
	if env.kind&kinds == 0 {
		return false
	}
	if env.kind == KindVerdict || env.kind == KindEpoch {
		return true // no meaningful capture-time span
	}
	if env.tmax < it.q.From {
		return false
	}
	if it.q.To != 0 && env.tmin > it.q.To {
		return false
	}
	return true
}

// decode fills it.rec from a matched envelope, reporting false when
// the record decodes to nothing visible (every frame out of window).
func (it *Iterator) decode(env envelope) bool {
	it.rec = Record{
		Kind:    env.kind,
		Seq:     env.seq,
		Session: env.session,
		Vehicle: it.intern(env.vehicle),
		TMin:    env.tmin,
		TMax:    env.tmax,
		Frames:  nil,
	}
	switch env.kind {
	case KindFrames:
		return it.decodeFrames(env.payload)
	case KindEvent:
		rec, err := decodeWirePayload(env.payload)
		if err != nil {
			it.err = err
			return false
		}
		e, ok := rec.(wire.Event)
		if !ok {
			it.err = fmt.Errorf("archive: event record carries a %T payload", rec)
			return false
		}
		it.rec.Event = e
		return true
	case KindVerdict:
		rec, err := decodeWirePayload(env.payload)
		if err != nil {
			it.err = err
			return false
		}
		v, ok := rec.(wire.Verdict)
		if !ok {
			it.err = fmt.Errorf("archive: verdict record carries a %T payload", rec)
			return false
		}
		it.rec.Verdict = v
		return true
	case KindEpoch:
		p := env.payload
		if len(p) < 10 {
			it.err = errors.New("archive: epoch record payload truncated")
			return false
		}
		n := int(binary.LittleEndian.Uint16(p[8:10]))
		if len(p) != 10+n {
			it.err = fmt.Errorf("archive: epoch record declares a %d-byte hash over %d payload bytes", n, len(p)-10)
			return false
		}
		it.rec.SpecEpoch = binary.LittleEndian.Uint64(p[:8])
		it.rec.SpecHash = string(p[10:])
		return true
	}
	return false
}

// decodeFrames parses a delta-compressed frames payload into the
// reusable scratch, keeping only in-window frames. Each frame is a
// zigzag-varint timestamp delta, a varint ID, and 8 data bytes; the
// smallest legal frame is 10 bytes, which bounds the declared count
// against the payload length before the loop runs.
func (it *Iterator) decodeFrames(p []byte) bool {
	if len(p) < 4 {
		it.err = errors.New("archive: frames payload shorter than its count")
		return false
	}
	count := binary.LittleEndian.Uint32(p[:4])
	if uint64(count)*10 > uint64(len(p)-4) {
		it.err = fmt.Errorf("archive: frames payload declares %d frames over %d bytes", count, len(p)-4)
		return false
	}
	it.frames = it.frames[:0]
	p = p[4:]
	prev := int64(0)
	for i := uint32(0); i < count; i++ {
		d, n := binary.Varint(p)
		if n <= 0 {
			it.err = errors.New("archive: frames payload has a malformed time delta")
			return false
		}
		p = p[n:]
		id, n := binary.Uvarint(p)
		if n <= 0 || id > math.MaxUint32 {
			it.err = errors.New("archive: frames payload has a malformed frame ID")
			return false
		}
		p = p[n:]
		if len(p) < 8 {
			it.err = errors.New("archive: frames payload truncated mid-frame")
			return false
		}
		prev += d
		t := time.Duration(prev)
		if t >= it.q.From && (it.q.To == 0 || t <= it.q.To) {
			var f can.Frame
			f.Time = t
			f.ID = uint32(id)
			copy(f.Data[:], p[:8])
			it.frames = append(it.frames, f)
		}
		p = p[8:]
	}
	if len(p) != 0 {
		it.err = fmt.Errorf("archive: frames payload carries %d trailing bytes", len(p))
		return false
	}
	if len(it.frames) == 0 {
		return false // whole run outside the window
	}
	it.rec.Frames = it.frames
	return true
}

// decodeWirePayload unwraps the embedded wire record (length prefix,
// type byte, payload) stored in event and verdict records.
func decodeWirePayload(p []byte) (wire.Record, error) {
	if len(p) < 5 {
		return nil, errors.New("archive: embedded wire record truncated")
	}
	n := binary.LittleEndian.Uint32(p[:4])
	if int(n) != len(p)-4 {
		return nil, fmt.Errorf("archive: embedded wire record declares %d bytes, carries %d", n, len(p)-4)
	}
	rec, err := wire.Decode(p[4], p[5:])
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	return rec, nil
}

// intern returns a shared string for a vehicle name, so iteration does
// not allocate one string per record.
func (it *Iterator) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := it.vehicles[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	it.vehicles[s] = s
	return s
}

// Record returns the current record. Valid after a true Next, until
// the next call to Next.
func (it *Iterator) Record() *Record { return &it.rec }

// Err returns the error that terminated iteration, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's open segment file. It is idempotent
// and safe to call mid-iteration — including right after a true Next,
// with the current Record still in hand; subsequent Next calls report
// false without disturbing Err.
func (it *Iterator) Close() error {
	it.closeSegment()
	it.done = true
	return nil
}

// reset re-arms the iterator over a single segment, reusing its decode
// scratch (body buffer, frame slab, vehicle intern table). The
// parallel scanner's workers replay one segment at a time through a
// worker-owned iterator this way.
func (it *Iterator) reset(seg segment, q Query) {
	it.closeSegment()
	it.segs = append(it.segs[:0], seg)
	it.q = q
	it.si = 0
	it.off, it.end = 0, 0
	it.rec = Record{}
	it.err = nil
	it.done = false
	if it.vehicles == nil {
		it.vehicles = make(map[string]string)
	}
}

package archive

import (
	"runtime"
	"sync"

	"cpsmon/internal/can"
)

// ScanOptions configure a parallel catalog scan.
type ScanOptions struct {
	// Workers bounds how many segments are decoded concurrently;
	// 0 means GOMAXPROCS.
	Workers int
	// Ahead bounds how many decoded segments may be buffered in front
	// of the consumer (the prefetch window); 0 means 2×Workers. A
	// larger window hides decode latency spikes at the cost of memory.
	Ahead int
}

// scanChunk holds one fully decoded segment: the records in archive
// order, their frames copied into a shared arena (iterator scratch
// does not survive a goroutine hop), and the error that stopped the
// decode, if any.
type scanChunk struct {
	recs   []Record
	frames []can.Frame
	err    error
}

// ParallelIterator walks a catalog's records in archive order — the
// same order Catalog.Iter yields them — while decoding up to
// ScanOptions.Workers segments concurrently and prefetching up to
// ScanOptions.Ahead segments in front of the consumer.
//
// Ordering: segments are delivered strictly in segment order and each
// segment's records in offset order, so the global sequence order (and
// in particular the per-session record order) is identical to the
// sequential iterator's.
//
// A ParallelIterator is for a single consuming goroutine: Next,
// Record, Err and Close must not be called concurrently with each
// other. Close is idempotent and safe to call mid-iteration; the
// worker goroutines are reaped before it returns.
type ParallelIterator struct {
	q       Query
	results []chan *scanChunk
	tokens  chan struct{}
	cancel  chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	pool    sync.Pool

	cur     *scanChunk
	curIdx  int
	nextIdx int
	rec     *Record
	err     error
	done    bool
}

// ParallelIter starts a query that decodes segments on a worker pool.
// The result stream is byte-for-byte the one Iter produces; only the
// wall-clock differs. Close the iterator when done with it — also on
// early exit, or the workers leak.
func (c *Catalog) ParallelIter(q Query, opt ScanOptions) *ParallelIterator {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eligible := make([]segment, 0, len(c.segs))
	for _, seg := range c.segs {
		if !q.skipsSegment(seg.info) {
			eligible = append(eligible, seg)
		}
	}
	if workers > len(eligible) {
		workers = len(eligible)
	}
	ahead := opt.Ahead
	if ahead <= 0 {
		ahead = 2 * workers
	}
	if ahead < workers {
		ahead = workers
	}

	p := &ParallelIterator{
		q:       q,
		results: make([]chan *scanChunk, len(eligible)),
		tokens:  make(chan struct{}, ahead),
		cancel:  make(chan struct{}),
	}
	p.pool.New = func() any { return new(scanChunk) }
	for i := range p.results {
		// Capacity one and exactly one send per index: workers never
		// block delivering a result, so Close cannot strand them.
		p.results[i] = make(chan *scanChunk, 1)
	}

	jobs := make(chan int)
	p.wg.Add(1)
	go func() { // feeder: admits one segment per prefetch token
		defer p.wg.Done()
		defer close(jobs)
		for i := range eligible {
			select {
			case p.tokens <- struct{}{}:
			case <-p.cancel:
				return
			}
			select {
			case jobs <- i:
			case <-p.cancel:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			it := &Iterator{vehicles: make(map[string]string)}
			for {
				select {
				case i, ok := <-jobs:
					if !ok {
						return
					}
					p.results[i] <- p.decodeSegment(it, eligible[i])
				case <-p.cancel:
					return
				}
			}
		}()
	}
	return p
}

// decodeSegment replays one segment through a worker-owned sequential
// iterator, copying every record (and its frames, which are iterator
// scratch) into a pooled chunk arena. Records sliced from the arena
// stay valid when a later append reallocates it — the old backing
// array is untouched.
func (p *ParallelIterator) decodeSegment(it *Iterator, seg segment) *scanChunk {
	ch := p.pool.Get().(*scanChunk)
	ch.recs, ch.frames, ch.err = ch.recs[:0], ch.frames[:0], nil
	it.reset(seg, p.q)
	for it.Next() {
		rec := *it.Record()
		if len(rec.Frames) > 0 {
			start := len(ch.frames)
			ch.frames = append(ch.frames, rec.Frames...)
			rec.Frames = ch.frames[start:len(ch.frames):len(ch.frames)]
		}
		ch.recs = append(ch.recs, rec)
	}
	ch.err = it.Err()
	it.closeSegment()
	return ch
}

// Next advances to the next matching record, reporting false at the
// end of the archive or on error (distinguish with Err). Records
// decoded before a mid-segment error are yielded first, exactly as the
// sequential iterator serves them.
func (p *ParallelIterator) Next() bool {
	if p.done || p.err != nil {
		return false
	}
	for {
		if p.cur != nil && p.curIdx < len(p.cur.recs) {
			p.rec = &p.cur.recs[p.curIdx]
			p.curIdx++
			return true
		}
		if p.cur != nil {
			if err := p.cur.err; err != nil {
				p.err = err
				p.done = true
				return false
			}
			p.pool.Put(p.cur)
			p.cur = nil
			<-p.tokens // chunk consumed: admit another segment
		}
		if p.nextIdx >= len(p.results) {
			p.done = true
			return false
		}
		select {
		case p.cur = <-p.results[p.nextIdx]:
			p.nextIdx++
			p.curIdx = 0
		case <-p.cancel:
			p.done = true
			return false
		}
	}
}

// Record returns the current record. Valid after a true Next, until
// the next call to Next.
func (p *ParallelIterator) Record() *Record { return p.rec }

// Err returns the error that terminated iteration, if any.
func (p *ParallelIterator) Err() error { return p.err }

// Close stops the scan and reaps the worker goroutines. It is
// idempotent and safe to call mid-iteration; subsequent Next calls
// report false.
func (p *ParallelIterator) Close() error {
	p.once.Do(func() { close(p.cancel) })
	p.wg.Wait()
	p.done = true
	return nil
}

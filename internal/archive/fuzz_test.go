package archive

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzSegment feeds arbitrary bytes to every segment reader: the
// catalog scan, the sealed fast path, the iterator, and writer
// recovery. None may panic, loop, or serve a record that did not pass
// its checksum; recovery must leave a directory a fresh writer and
// catalog can use.
func FuzzSegment(f *testing.F) {
	// Seed with a genuine sealed segment and a genuine part prefix.
	dir := f.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.ArchiveFrames(1, "fuzz-veh", mkFrames(10, time.Duration(i)*time.Second))
	}
	w.ArchiveEvent(1, "fuzz-veh", testEvent("Rule0", time.Second))
	w.ArchiveVerdict(1, "fuzz-veh", testVerdict(1))
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	names, err := listSegments(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, sf := range names {
		data, err := os.ReadFile(filepath.Join(dir, sf.name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, sf.sealed)
		if len(data) > headerSize+10 {
			f.Add(data[:len(data)-7], sf.sealed) // torn tail
		}
	}
	f.Add([]byte(headerMagic), true)
	f.Add([]byte{}, false)

	f.Fuzz(func(t *testing.T, data []byte, sealed bool) {
		dir := t.TempDir()
		path := filepath.Join(dir, segFileName(1, sealed))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		cat, err := OpenCatalog(dir)
		if err != nil {
			return // I/O-level rejection is fine
		}
		it := cat.Iter(Query{})
		n := 0
		for it.Next() {
			rec := it.Record()
			if rec.Kind&KindAll == 0 {
				t.Fatalf("iterator yielded invalid kind %d", rec.Kind)
			}
			n++
		}
		it.Close()
		for _, s := range cat.Segments() {
			if uint64(s.Records) < uint64(0) {
				t.Fatal("unreachable")
			}
		}

		// Writer recovery over the same bytes must not corrupt the
		// directory: the recovered archive reopens cleanly.
		w, err := OpenWriter(dir, Options{})
		if err != nil {
			return
		}
		if err := w.ArchiveFrames(99, "post", mkFrames(1, 0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		cat2, err := OpenCatalog(dir)
		if err != nil {
			t.Fatalf("catalog after recovery: %v", err)
		}
		if cat2.Records() == 0 {
			t.Fatal("appended record vanished after recovery")
		}
	})
}

package archive

import (
	"sync/atomic"

	"cpsmon/internal/obs"
)

// Metrics counts archive activity: appends and bytes by record kind,
// segment lifecycle transitions, and corruption encounters. Counter
// handles are pre-created at Instrument time so the append hot path
// pays an atomic load, an index and an add — no allocation, no map.
type Metrics struct {
	appends   [4]*obs.Counter // frames, event, verdict, epoch
	bytes     [4]*obs.Counter
	sealed    *obs.Counter
	recovered *obs.Counter
	swept     *obs.Counter
	corrupt   *obs.Counter
}

// metrics gates instrumentation for the whole package, mirroring the
// wire codec's Instrument: Writer and Catalog are plain values with no
// registry to hang counters on, and a monitord process runs one
// archive. A nil pointer (the default) costs one atomic load per
// append.
var metrics atomic.Pointer[Metrics]

// kindSlot maps a Kind bit to its counter slot.
func kindSlot(k Kind) int {
	switch k {
	case KindFrames:
		return 0
	case KindEvent:
		return 1
	case KindEpoch:
		return 3
	default:
		return 2
	}
}

// Instrument registers the archive metric families on reg and starts
// counting. Passing nil detaches.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	m := &Metrics{
		sealed: reg.Counter("cpsmon_archive_segments_sealed_total",
			"Segments sealed and atomically renamed to .seg."),
		recovered: reg.Counter("cpsmon_archive_segments_recovered_total",
			"Torn active segments recovered (truncated and sealed, or removed when empty) at writer open."),
		swept: reg.Counter("cpsmon_archive_segments_swept_total",
			"Sealed segments removed by the retention sweep."),
		corrupt: reg.Counter("cpsmon_archive_corrupt_records_total",
			"Records skipped during iteration for a failed checksum or envelope."),
	}
	for _, k := range []Kind{KindFrames, KindEvent, KindVerdict, KindEpoch} {
		l := obs.Label{Name: "kind", Value: k.String()}
		m.appends[kindSlot(k)] = reg.Counter("cpsmon_archive_appends_total",
			"Records appended to the archive.", l)
		m.bytes[kindSlot(k)] = reg.Counter("cpsmon_archive_bytes_total",
			"Bytes appended to the archive, length prefix included.", l)
	}
	metrics.Store(m)
}

// countAppend records one appended record of n on-disk bytes.
func countAppend(k Kind, n int) {
	if m := metrics.Load(); m != nil {
		i := kindSlot(k)
		m.appends[i].Inc()
		m.bytes[i].Add(uint64(n))
	}
}

// countSealed records one sealed segment.
func countSealed() {
	if m := metrics.Load(); m != nil {
		m.sealed.Inc()
	}
}

// countRecovered records one recovered (or removed) torn segment.
func countRecovered() {
	if m := metrics.Load(); m != nil {
		m.recovered.Inc()
	}
}

// countSwept records one segment removed by retention.
func countSwept() {
	if m := metrics.Load(); m != nil {
		m.swept.Inc()
	}
}

// countCorrupt records one record skipped during iteration.
func countCorrupt() {
	if m := metrics.Load(); m != nil {
		m.corrupt.Inc()
	}
}

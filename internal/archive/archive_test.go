package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/wire"
)

// mkFrames builds n frames starting at start, one per millisecond,
// with a recognizable payload.
func mkFrames(n int, start time.Duration) []can.Frame {
	out := make([]can.Frame, n)
	for i := range out {
		out[i].Time = start + time.Duration(i)*time.Millisecond
		out[i].ID = 0x100 + uint32(i%4)
		out[i].Data[0] = byte(i)
		out[i].Data[7] = byte(i >> 8)
	}
	return out
}

func testEvent(rule string, at time.Duration) wire.Event {
	return wire.Event{
		Kind: wire.EventEnd, Rule: rule, Time: at,
		StartStep: 10, EndStep: 12, Start: at - 2*time.Millisecond, End: at,
		Peak: 1.5, Msg: "test clause", Class: 1,
	}
}

func testVerdict(violations uint32) wire.Verdict {
	return wire.Verdict{
		Rules: []wire.RuleVerdict{{
			Rule: "Rule0", Violated: violations > 0, Violations: violations, Real: violations,
		}},
		FramesIngested: 100,
	}
}

// collect drains an iterator, failing the test on iteration error.
// Frames are copied out of the iterator's scratch.
func collect(t *testing.T, it *Iterator) []Record {
	t.Helper()
	defer it.Close()
	var out []Record
	for it.Next() {
		r := *it.Record()
		r.Frames = append([]can.Frame(nil), r.Frames...)
		out = append(out, r)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterate: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	frames := mkFrames(50, 0)
	ev := testEvent("Rule0", 30*time.Millisecond)
	v := testVerdict(2)
	if err := w.ArchiveFrames(7, "veh-a", frames); err != nil {
		t.Fatalf("ArchiveFrames: %v", err)
	}
	if err := w.ArchiveEvent(7, "veh-a", ev); err != nil {
		t.Fatalf("ArchiveEvent: %v", err)
	}
	if err := w.ArchiveVerdict(7, "veh-a", v); err != nil {
		t.Fatalf("ArchiveVerdict: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	segs := cat.Segments()
	if len(segs) != 1 || !segs[0].Sealed || segs[0].Records != 3 {
		t.Fatalf("unexpected segments: %+v", segs)
	}
	if segs[0].FirstSeq != 1 || segs[0].LastSeq != 3 {
		t.Fatalf("sequence range = [%d, %d], want [1, 3]", segs[0].FirstSeq, segs[0].LastSeq)
	}
	if segs[0].TMax != frames[len(frames)-1].Time {
		t.Fatalf("TMax = %v, want %v", segs[0].TMax, frames[len(frames)-1].Time)
	}

	recs := collect(t, cat.Iter(Query{}))
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Kind != KindFrames || recs[1].Kind != KindEvent || recs[2].Kind != KindVerdict {
		t.Fatalf("record kinds = %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Session != 7 || r.Vehicle != "veh-a" {
			t.Fatalf("record %d envelope = %+v", i, r)
		}
	}
	if len(recs[0].Frames) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(recs[0].Frames), len(frames))
	}
	for i := range frames {
		if recs[0].Frames[i] != frames[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, recs[0].Frames[i], frames[i])
		}
	}
	if !bytes.Equal(wire.Marshal(recs[1].Event), wire.Marshal(ev)) {
		t.Fatalf("event round trip: got %+v, want %+v", recs[1].Event, ev)
	}
	if !bytes.Equal(wire.Marshal(recs[2].Verdict), wire.Marshal(v)) {
		t.Fatalf("verdict round trip: got %+v, want %+v", recs[2].Verdict, v)
	}
}

func TestRotationSealsAndSequences(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	const runs = 40
	for i := 0; i < runs; i++ {
		if err := w.ArchiveFrames(uint64(i%3+1), "veh", mkFrames(20, time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	segs := cat.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	var total uint32
	for i, s := range segs {
		if !s.Sealed {
			t.Fatalf("segment %d not sealed: %+v", i, s)
		}
		if s.Number != uint64(i+1) {
			t.Fatalf("segment %d numbered %d", i, s.Number)
		}
		if i > 0 && s.FirstSeq != segs[i-1].LastSeq+1 {
			t.Fatalf("sequence gap between segments %d and %d: %+v", i-1, i, segs)
		}
		total += s.Records
	}
	if total != runs {
		t.Fatalf("got %d records across segments, want %d", total, runs)
	}

	// Reopening continues the sequence and the segment numbering.
	w2, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := w2.NextSeq(); got != runs+1 {
		t.Fatalf("NextSeq after reopen = %d, want %d", got, runs+1)
	}
	if err := w2.ArchiveFrames(9, "veh", mkFrames(1, 0)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cat2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	if got := cat2.Records(); got != runs+1 {
		t.Fatalf("records after reopen = %d, want %d", got, runs+1)
	}
}

func TestQueryFilters(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	// Session 1 / veh-a: frames over [0, 49ms] and [1s, 1.049s].
	w.ArchiveFrames(1, "veh-a", mkFrames(50, 0))
	w.ArchiveFrames(1, "veh-a", mkFrames(50, time.Second))
	w.ArchiveEvent(1, "veh-a", testEvent("Rule0", 25*time.Millisecond))
	w.ArchiveVerdict(1, "veh-a", testVerdict(1))
	// Session 2 / veh-b.
	w.ArchiveFrames(2, "veh-b", mkFrames(10, 0))
	w.ArchiveVerdict(2, "veh-b", testVerdict(0))
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}

	t.Run("vehicle", func(t *testing.T) {
		recs := collect(t, cat.Iter(Query{Vehicle: "veh-b"}))
		if len(recs) != 2 {
			t.Fatalf("got %d records, want 2", len(recs))
		}
		for _, r := range recs {
			if r.Session != 2 {
				t.Fatalf("leaked session %d", r.Session)
			}
		}
	})
	t.Run("session", func(t *testing.T) {
		recs := collect(t, cat.Iter(Query{Session: 1}))
		if len(recs) != 4 {
			t.Fatalf("got %d records, want 4", len(recs))
		}
	})
	t.Run("kinds", func(t *testing.T) {
		recs := collect(t, cat.Iter(Query{Kinds: KindVerdict}))
		if len(recs) != 2 {
			t.Fatalf("got %d verdicts, want 2", len(recs))
		}
	})
	t.Run("time-window", func(t *testing.T) {
		// [10ms, 20ms]: clips session 1's first run; session 2's run
		// (0..9ms) and session 1's second run (1s..) fall outside;
		// verdicts always pass.
		recs := collect(t, cat.Iter(Query{From: 10 * time.Millisecond, To: 20 * time.Millisecond}))
		var frames, events, verdicts int
		for _, r := range recs {
			switch r.Kind {
			case KindFrames:
				frames++
				if len(r.Frames) != 11 {
					t.Fatalf("window kept %d frames, want 11", len(r.Frames))
				}
				for _, f := range r.Frames {
					if f.Time < 10*time.Millisecond || f.Time > 20*time.Millisecond {
						t.Fatalf("frame at %v escaped the window", f.Time)
					}
				}
			case KindEvent:
				events++
			case KindVerdict:
				verdicts++
			}
		}
		if frames != 1 || events != 0 || verdicts != 2 {
			t.Fatalf("window selected frames=%d events=%d verdicts=%d", frames, events, verdicts)
		}
	})
	t.Run("unbounded-from", func(t *testing.T) {
		recs := collect(t, cat.Iter(Query{From: time.Second}))
		var sawLate bool
		for _, r := range recs {
			if r.Kind == KindFrames {
				if r.TMax < time.Second {
					t.Fatalf("early record %+v escaped From filter", r)
				}
				sawLate = true
			}
		}
		if !sawLate {
			t.Fatal("From filter dropped the late run")
		}
	})
}

// TestTimeWindowAcrossSegments pins the segment-pruning fast path: a
// multi-segment archive queried over narrow windows must return
// exactly what an unpruned full scan filtered by the same predicate
// returns — pruning through footer time spans may skip file opens,
// never records. Verdict-selecting queries bypass the prune (verdicts
// are exempt from the window), which the second half asserts.
func TestTimeWindowAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	// 40 runs of 50 frames each at 50ms strides: rotation at the
	// minimum segment size spreads them over several sealed segments
	// with distinct time spans.
	const runs = 40
	for i := 0; i < runs; i++ {
		if err := w.ArchiveFrames(1, "veh-seg", mkFrames(50, time.Duration(i)*50*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.ArchiveVerdict(1, "veh-seg", testVerdict(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	if len(cat.Segments()) < 3 {
		t.Fatalf("fixture built only %d segments; pruning untested", len(cat.Segments()))
	}

	full := collect(t, cat.Iter(Query{Kinds: KindFrames}))
	for _, win := range []struct{ from, to time.Duration }{
		{0, 49 * time.Millisecond},                        // first segment only
		{900 * time.Millisecond, 1100 * time.Millisecond}, // middle
		{1900 * time.Millisecond, 10 * time.Second},       // tail
		{time.Hour, 2 * time.Hour},                        // past the end: nothing
	} {
		got := collect(t, cat.Iter(Query{Kinds: KindFrames, From: win.from, To: win.to}))
		var want []Record
		for _, r := range full {
			if r.TMax < win.from || (win.to > 0 && r.TMin > win.to) {
				continue
			}
			want = append(want, r)
		}
		if len(got) != len(want) {
			t.Fatalf("window [%v,%v]: got %d records, full-scan filter gives %d", win.from, win.to, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq {
				t.Fatalf("window [%v,%v]: record %d seq %d, want %d", win.from, win.to, i, got[i].Seq, want[i].Seq)
			}
		}
	}

	// The verdict lives in the last segment with a late time span, but
	// must still surface for a window over the start of the capture.
	recs := collect(t, cat.Iter(Query{From: 0, To: 49 * time.Millisecond}))
	var verdicts int
	for _, r := range recs {
		if r.Kind == KindVerdict {
			verdicts++
		}
	}
	if verdicts != 1 {
		t.Fatalf("early window surfaced %d verdicts, want 1 (verdicts are window-exempt)", verdicts)
	}
}

func TestFlushMakesPartReadable(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	defer w.Close()
	w.ArchiveFrames(1, "veh", mkFrames(20, 0))
	w.ArchiveVerdict(1, "veh", testVerdict(0))
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	segs := cat.Segments()
	if len(segs) != 1 || segs[0].Sealed || segs[0].Records != 2 {
		t.Fatalf("live part not readable: %+v", segs)
	}
	if got := len(collect(t, cat.Iter(Query{}))); got != 2 {
		t.Fatalf("got %d records from live part, want 2", got)
	}
}

func TestRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	for i := 0; i < 40; i++ {
		w.ArchiveFrames(1, "veh", mkFrames(20, time.Duration(i)*time.Second))
	}
	w.Flush()
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sealed int
	old := time.Now().Add(-2 * time.Hour)
	for _, sf := range names {
		if !sf.sealed {
			continue
		}
		sealed++
		if err := os.Chtimes(filepath.Join(dir, sf.name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if sealed == 0 {
		t.Fatal("test needs sealed segments")
	}
	removed, err := w.SweepRetention(time.Hour)
	if err != nil {
		t.Fatalf("SweepRetention: %v", err)
	}
	if removed != sealed {
		t.Fatalf("swept %d segments, want %d", removed, sealed)
	}
	// The active part survives and the archive still opens.
	if _, err := OpenCatalog(dir); err != nil {
		t.Fatalf("OpenCatalog after sweep: %v", err)
	}
	if n, err := w.SweepRetention(time.Hour); err != nil || n != 0 {
		t.Fatalf("second sweep = (%d, %v), want (0, nil)", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after sweep: %v", err)
	}
}

// TestArchiveFramesAllocationFree pins the acceptance criterion: the
// frames append path performs zero allocations per record in steady
// state.
func TestArchiveFramesAllocationFree(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	defer w.Close()
	frames := mkFrames(256, 0)
	// Warm up: first append opens the segment and grows the scratch.
	for i := 0; i < 4; i++ {
		if err := w.ArchiveFrames(1, "veh-alloc", frames); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.ArchiveFrames(1, "veh-alloc", frames); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("ArchiveFrames allocates %.1f times per record, want 0", avg)
	}
}

func TestClosedWriterRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.ArchiveFrames(1, "veh", mkFrames(1, 0)); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	// A writer that never appended leaves an empty directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("empty writer left %d files behind", len(ents))
	}
}

package archive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/faultnet"
)

// buildTornDir writes an archive with several sealed segments plus an
// active .part holding flushed records (the append that seals a
// segment lands in the fresh part, so the part holds extra+1 records),
// then abandons the writer without Close — the on-disk state after a
// crash. Returns the directory, the .part path, the record count in
// sealed segments, and the record count in the part.
func buildTornDir(t *testing.T, extra int) (dir, part string, sealedRecs uint64, partRecs int) {
	t.Helper()
	dir = t.TempDir()
	w, err := OpenWriter(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	// Fill until at least two segments have sealed.
	i := 0
	for {
		names, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		var sealed int
		for _, sf := range names {
			if sf.sealed {
				sealed++
			}
		}
		if sealed >= 2 {
			break
		}
		if err := w.ArchiveFrames(1, "veh", mkFrames(20, time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	// Land extra more records in the fresh active segment.
	for j := 0; j < extra; j++ {
		if err := w.ArchiveFrames(2, "veh", mkFrames(5, time.Duration(i+j)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the writer on the floor. (The *os.File leaks for the
	// test's duration; the process exit reclaims it.)
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sf := range names {
		p := filepath.Join(dir, sf.name)
		if !sf.sealed {
			part = p
			continue
		}
		seg, err := openSegment(p, true)
		if err != nil {
			t.Fatalf("sealed segment unreadable: %v", err)
		}
		sealedRecs += uint64(seg.info.Records)
	}
	if part == "" {
		t.Fatal("expected an active .part")
	}
	sum, err := scanSegment(part)
	if err != nil {
		t.Fatal(err)
	}
	return dir, part, sealedRecs, int(sum.count)
}

// damage mutates the .part file to simulate a torn or corrupted tail.
type damage struct {
	name string
	// apply damages the file and returns how many of the part's records
	// must still be served afterwards (-1 for "any prefix, catalog just
	// must not fail or serve garbage").
	apply func(t *testing.T, path string, partRecs int) int
}

func truncateTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// recordOffsets scans the part and returns each valid record's start
// offset plus the end of the valid region.
func recordOffsets(t *testing.T, path string) (offs []int64, end int64) {
	t.Helper()
	sum, err := scanSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive offsets by walking lengths.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSize)
	for off < sum.validEnd {
		offs = append(offs, off)
		n := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 4 + n
	}
	return offs, sum.validEnd
}

var damages = []damage{
	{"truncate-mid-last-record", func(t *testing.T, path string, partRecs int) int {
		offs, end := recordOffsets(t, path)
		truncateTo(t, path, offs[len(offs)-1]+(end-offs[len(offs)-1])/2)
		return partRecs - 1
	}},
	{"truncate-mid-length-prefix", func(t *testing.T, path string, partRecs int) int {
		offs, _ := recordOffsets(t, path)
		truncateTo(t, path, offs[len(offs)-1]+2)
		return partRecs - 1
	}},
	{"truncate-exact-record-boundary", func(t *testing.T, path string, partRecs int) int {
		offs, _ := recordOffsets(t, path)
		truncateTo(t, path, offs[len(offs)-1])
		return partRecs - 1
	}},
	{"truncate-to-header-only", func(t *testing.T, path string, partRecs int) int {
		truncateTo(t, path, headerSize)
		return 0
	}},
	{"truncate-mid-header", func(t *testing.T, path string, partRecs int) int {
		truncateTo(t, path, headerSize/2)
		return 0
	}},
	{"bitflip-last-record-payload", func(t *testing.T, path string, partRecs int) int {
		offs, end := recordOffsets(t, path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mid := offs[len(offs)-1] + (end-offs[len(offs)-1])/2
		faultnet.CorruptSpan(data, int(mid), 4, 0)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return partRecs - 1
	}},
	{"bitflip-last-record-length", func(t *testing.T, path string, partRecs int) int {
		offs, _ := recordOffsets(t, path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		faultnet.CorruptSpan(data, int(offs[len(offs)-1]), 4, 0)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return partRecs - 1
	}},
	{"bitflip-header-magic", func(t *testing.T, path string, partRecs int) int {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		faultnet.CorruptSpan(data, 0, 8, 0)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return 0
	}},
	{"garbage-appended-after-tail", func(t *testing.T, path string, partRecs int) int {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 512)
		faultnet.CorruptSpan(junk, 0, len(junk), 0x5F)
		if _, err := f.Write(junk); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return partRecs
	}},
}

// TestTornPartRecovery is the satellite's table test: every flavor of
// torn or bit-flipped active segment must leave the sealed segments
// fully intact — the catalog serves them, and writer recovery seals the
// surviving part prefix without losing a closed record.
func TestTornPartRecovery(t *testing.T) {
	for _, d := range damages {
		t.Run(d.name, func(t *testing.T) {
			dir, part, sealedRecs, partRecs := buildTornDir(t, 5)
			wantPart := d.apply(t, part, partRecs)

			// Phase 1: a read-only catalog over the damaged directory.
			cat, err := OpenCatalog(dir)
			if err != nil {
				t.Fatalf("OpenCatalog over damaged dir: %v", err)
			}
			var gotSealed, gotPart uint64
			for _, s := range cat.Segments() {
				if s.Sealed {
					gotSealed += uint64(s.Records)
				} else {
					gotPart += uint64(s.Records)
				}
			}
			if gotSealed != sealedRecs {
				t.Fatalf("catalog lost sealed records: got %d, want %d", gotSealed, sealedRecs)
			}
			if gotPart != uint64(wantPart) {
				t.Fatalf("catalog served %d part records, want %d", gotPart, wantPart)
			}
			// The catalog never modifies files.
			preSize := fileSize(t, part)

			// Every sealed + surviving record iterates cleanly.
			n := uint64(len(collect(t, cat.Iter(Query{}))))
			if n != gotSealed+gotPart {
				t.Fatalf("iterated %d records, want %d", n, gotSealed+gotPart)
			}
			if got := fileSize(t, part); got != preSize {
				t.Fatalf("catalog modified the part: %d -> %d bytes", preSize, got)
			}

			// Phase 2: writer recovery seals the survivors and appending
			// continues.
			w, err := OpenWriter(dir, Options{})
			if err != nil {
				t.Fatalf("OpenWriter recovery: %v", err)
			}
			if err := w.ArchiveFrames(3, "veh", mkFrames(1, 0)); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			cat2, err := OpenCatalog(dir)
			if err != nil {
				t.Fatalf("OpenCatalog after recovery: %v", err)
			}
			for _, s := range cat2.Segments() {
				if !s.Sealed || s.Scanned || s.Torn || s.Damaged {
					t.Fatalf("segment not cleanly sealed after recovery: %+v", s)
				}
			}
			if got := cat2.Records(); got != sealedRecs+uint64(wantPart)+1 {
				t.Fatalf("post-recovery records = %d, want %d", got, sealedRecs+uint64(wantPart)+1)
			}
		})
	}
}

// TestSealedFooterCorruptionFallsBackToScan corrupts a sealed
// segment's footer: the fast path fails validation and the catalog
// rebuilds the segment by scan, serving every record.
func TestSealedFooterCorruptionFallsBackToScan(t *testing.T) {
	dir, _, sealedRecs, partRecs := buildTornDir(t, 0)
	total := sealedRecs + uint64(partRecs)
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sealedPath string
	for _, sf := range names {
		if sf.sealed {
			sealedPath = filepath.Join(dir, sf.name)
			break
		}
	}
	data, err := os.ReadFile(sealedPath)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the footer checksum and magic.
	faultnet.CorruptSpan(data, len(data)-12, 12, 0)
	if err := os.WriteFile(sealedPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	var got uint64
	for _, s := range cat.Segments() {
		if s.Path == sealedPath {
			if !s.Scanned {
				t.Fatalf("corrupt footer not detected: %+v", s)
			}
			if !s.Torn {
				// The dead index+footer bytes trail the last record.
				t.Fatalf("scan fallback should flag the dead tail: %+v", s)
			}
		}
		got += uint64(s.Records)
	}
	if got != total {
		t.Fatalf("scan fallback lost records: got %d, want %d", got, total)
	}
	if n := uint64(len(collect(t, cat.Iter(Query{})))); n != total {
		t.Fatalf("iterated %d, want %d", n, total)
	}
}

// TestRecoveryIsIdempotent recovers the same torn directory twice; the
// second open finds only sealed segments and changes nothing.
func TestRecoveryIsIdempotent(t *testing.T) {
	dir, part, _, _ := buildTornDir(t, 4)
	offs, end := recordOffsets(t, part)
	truncateTo(t, part, offs[len(offs)-1]+(end-offs[len(offs)-1])/2)

	w1, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq1 := w1.NextSeq()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	cat1, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs1 := cat1.Records()

	w2, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.NextSeq(); got != seq1 {
		t.Fatalf("second recovery moved NextSeq: %d -> %d", seq1, got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	cat2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat2.Records(); got != recs1 {
		t.Fatalf("second recovery changed record count: %d -> %d", recs1, got)
	}
	for _, s := range cat2.Segments() {
		if strings.HasSuffix(s.Path, ".part") {
			t.Fatalf("recovery left a part behind: %+v", s)
		}
	}
}

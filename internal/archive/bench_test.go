package archive

import (
	"testing"
	"time"
)

// BenchmarkArchiveAppend measures the frames append hot path: one
// record of `frames` CAN frames per iteration, written through the
// buffered segment writer. The acceptance target is zero allocations
// per record.
func BenchmarkArchiveAppend(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(benchName("frames", n), func(b *testing.B) {
			dir := b.TempDir()
			w, err := OpenWriter(dir, Options{SegmentBytes: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			frames := mkFrames(n, 0)
			// One untimed append sizes the delta-compressed record
			// exactly (varint widths depend on the frame content).
			if err := w.ArchiveFrames(1, "bench-veh", frames); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(w.size - headerSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.ArchiveFrames(1, "bench-veh", frames); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(n)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}

func benchName(kind string, n int) string {
	return kind + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkArchiveIterate measures the read path over a sealed
// archive: full-scan query decoding every frame.
func BenchmarkArchiveIterate(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const recs, perRec = 512, 64
	for i := 0; i < recs; i++ {
		if err := w.ArchiveFrames(1, "bench-veh", mkFrames(perRec, time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	cat, err := OpenCatalog(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := cat.Iter(Query{})
		n := 0
		for it.Next() {
			n += len(it.Record().Frames)
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		it.Close()
		if n != recs*perRec {
			b.Fatalf("iterated %d frames, want %d", n, recs*perRec)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*recs*perRec/b.Elapsed().Seconds(), "frames/sec")
}

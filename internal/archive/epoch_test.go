package archive

import (
	"testing"
	"time"
)

// TestSpecEpochRoundTrip writes an epoch marker between trace records
// and checks the invariants provenance readers depend on: the marker
// round-trips through an explicit KindEpoch query, sits at its archive
// position, and is invisible to every query that does not ask for it.
func TestSpecEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	if err := w.ArchiveFrames(7, "veh-a", mkFrames(10, 0)); err != nil {
		t.Fatalf("ArchiveFrames: %v", err)
	}
	const hash = "sha256:0123456789abcdef"
	if err := w.ArchiveSpecEpoch(3, hash); err != nil {
		t.Fatalf("ArchiveSpecEpoch: %v", err)
	}
	if err := w.ArchiveVerdict(7, "veh-a", testVerdict(1)); err != nil {
		t.Fatalf("ArchiveVerdict: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cat, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}

	// A default query sees only the trace records, in order, with the
	// marker's sequence number absent but accounted for.
	recs := collect(t, cat.Iter(Query{}))
	if len(recs) != 2 {
		t.Fatalf("default query returned %d records, want 2", len(recs))
	}
	if recs[0].Kind != KindFrames || recs[1].Kind != KindVerdict {
		t.Fatalf("default query kinds = %v %v", recs[0].Kind, recs[1].Kind)
	}
	if recs[0].Seq != 1 || recs[1].Seq != 3 {
		t.Fatalf("trace sequences = %d %d, want 1 3", recs[0].Seq, recs[1].Seq)
	}

	// An explicit epoch query sees exactly the marker, even with a time
	// window that excludes every frame — markers carry no span.
	eps := collect(t, cat.Iter(Query{Kinds: KindEpoch, From: time.Hour}))
	if len(eps) != 1 {
		t.Fatalf("epoch query returned %d records, want 1", len(eps))
	}
	ep := eps[0]
	if ep.Kind != KindEpoch || ep.Seq != 2 || ep.SpecEpoch != 3 || ep.SpecHash != hash {
		t.Fatalf("epoch record = %+v", ep)
	}
	if ep.Session != 0 || ep.Vehicle != "" {
		t.Fatalf("epoch record carries session %d vehicle %q, want none", ep.Session, ep.Vehicle)
	}

	// Mixed masks interleave in archive order, so a reader can resolve
	// which spec generation produced each trace record by position.
	all := collect(t, cat.Iter(Query{Kinds: KindAll | KindEpoch}))
	if len(all) != 3 {
		t.Fatalf("mixed query returned %d records, want 3", len(all))
	}
	if all[1].Kind != KindEpoch {
		t.Fatalf("mixed query order = %v %v %v", all[0].Kind, all[1].Kind, all[2].Kind)
	}
}

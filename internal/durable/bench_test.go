package durable

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/fleet"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
)

// benchLog mirrors the fleet package's ingest-benchmark capture:
// steady following traffic with a mid-trace fault burst.
func benchLog(b *testing.B, ticks int) *can.Log {
	b.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 1)
		_ = bus.Set(sigdb.SigTargetRange, 40)
		if tick >= ticks/3 && tick < ticks/2 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			b.Fatal(err)
		}
	}
	return bus.Log()
}

// BenchmarkFleetIngestLedgered is the fleet ingest benchmark with the
// full crash-safety stack attached: every session ledgered (fsync'd
// open and verdict records, group-committed watermarks) on top of a
// lossless archive pump. The acceptance bar is under 5% frames/sec
// regression against BenchmarkFleetIngestArchivedLossless — the
// apples-to-apples baseline, since a Ledger forces ArchiveBackpressure
// and the default archived mode sheds most records under load.
// Watermarks are group-committed (Config.WatermarkInterval, or sooner
// when a drained queue has ≥32 unledgered batches), so the per-batch
// hot path carries no barrier or fsync at all; commits amortize one
// archive flush plus one buffered ledger append across the group.
func BenchmarkFleetIngestLedgered(b *testing.B) {
	log := benchLog(b, 3000)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			led, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer led.Close()
			aw, err := archive.OpenWriter(b.TempDir(), archive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer aw.Close()
			srv, err := fleet.NewServer(fleet.Config{
				DB:          sigdb.Vehicle(),
				Resolve:     testResolver,
				Triage:      rules.DefaultTriage(),
				Ledger:      led,
				Epoch:       led.Epoch(),
				SessionBase: led.State().MaxSession,
				Archiver:    aw,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			addr := srv.Addr().String()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < sessions; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						c, err := fleet.Dial(addr, fmt.Sprintf("bench-%03d", s), "strict", nil)
						if err != nil {
							b.Error(err)
							return
						}
						defer c.Close()
						if _, err := c.Replay(log, 0); err != nil {
							b.Error(err)
						}
					}(s)
				}
				wg.Wait()
			}
			b.StopTimer()
			frames := float64(b.N) * float64(sessions) * float64(log.Len())
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(frames/secs, "frames/sec")
			}
			if frames > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/frames, "ns/frame")
			}
		})
	}
}

// Package durable makes monitord crash-safe: it persists the fleet
// server's session lifecycle in an fsync'd, CRC'd append log (the
// ledger) and, on restart, rebuilds every unfinished session's
// online-monitor state by replaying its archived frames — so a client
// reconnecting with its resume token after a kill -9 continues
// streaming and still receives its verdict exactly once.
//
// The ledger shares the archive's record discipline: little-endian
// length-prefixed records, each closed by a CRC-32C (Castagnoli) over
// its body, with torn tails truncated to the last valid record at
// open. The division of labor with internal/archive is deliberate —
// the archive holds the bulky, immutable trace (frames, events,
// verdicts); the ledger holds only the tiny facts the trace cannot
// carry: which tokens were granted, how far each session was
// acknowledged, and which verdicts the client may already hold.
//
// # Record layout
//
// Every record is
//
//	u32 len | u8 kind | payload | u32 crc
//
// where len counts everything after itself and the checksum covers
// kind plus payload. Kinds:
//
//	epoch     u64 epoch
//	open      u64 session | u64 token | u16 proto |
//	          u16 len + vehicle | u16 len + spec
//	watermark u64 session | u64 ackSeq | u64 frames | u64 rejected
//	verdict   u64 session | u64 eventSeq | embedded wire Verdict
//	delivered u64 session
//	closed    u64 session
//	specepoch u64 spec epoch | u16 len + spec content hash
//
// # Durability classes
//
// Records whose loss would break a protocol promise — epoch, open,
// verdict, specepoch — are fsync'd before the append returns. Watermarks are
// written immediately (surviving a process kill, the threat model this
// package is built for) and fsync'd in groups on a short interval, so
// a machine crash costs at most the last interval's acknowledgements.
// Delivered and closed records are advisory and ride along with the
// next sync.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cpsmon/internal/wire"
)

// ledgerName is the ledger's file name inside the state directory.
const ledgerName = "ledger.log"

// Record kinds. The zero value is invalid on purpose: a zeroed tail
// never parses as a record.
const (
	recEpoch     = 0x01
	recOpen      = 0x02
	recWatermark = 0x03
	recVerdict   = 0x04
	recDelivered = 0x05
	recClosed    = 0x06
	recSpecEpoch = 0x07
)

const (
	// minBody is the smallest record body: kind + u64 session + crc.
	minBody = 1 + 8 + 4
	// maxBody bounds a record body against corrupt length prefixes.
	maxBody = 1 << 20
	// defaultSyncEvery is the watermark group-fsync interval.
	defaultSyncEvery = 100 * time.Millisecond
)

// crcTable is the Castagnoli table, as the archive and wire v2 use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Session is one session's folded ledger state.
type Session struct {
	// ID, Token, Proto, Vehicle and Spec echo the SessionOpened record.
	ID, Token uint64
	Proto     uint16
	Vehicle   string
	Spec      string
	// AckSeq, Frames and Rejected are the last watermark: the highest
	// acknowledged batch sequence and the cumulative applied/rejected
	// frame counts at that point.
	AckSeq, Frames, Rejected uint64
	// Verdict is non-nil once a VerdictReached record was written;
	// EventSeq is the event count its VerdictSeq carried. Delivered
	// marks that a verdict write reached the transport.
	Verdict   *wire.Verdict
	EventSeq  uint64
	Delivered bool
	// Closed marks the session resolved for good — recovery skips it.
	Closed bool
}

// State is the fold of a whole ledger at open time.
type State struct {
	// Epoch is the epoch this process appended at open — one past the
	// highest epoch the ledger carried before.
	Epoch uint64
	// MaxSession is the highest session ID ever opened; the server's
	// SessionBase, so new grants never collide with recovered ones.
	MaxSession uint64
	// SpecEpoch and SpecHash are the last promoted spec generation the
	// ledger recorded, zero/empty before any promote. A restarting
	// monitord seeds its fleet Config.SpecEpoch from this so epochs
	// stay monotonic across processes.
	SpecEpoch uint64
	SpecHash  string
	// Sessions holds every session the ledger knows, keyed by ID,
	// including closed ones.
	Sessions map[uint64]*Session
}

// Ledger is the durable session log. It implements fleet.Ledger; one
// monitord process owns one ledger for its lifetime. Safe for
// concurrent use.
type Ledger struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	buf      []byte
	st       State
	dirty    bool
	lastSync time.Time
	// syncEvery is the watermark group-commit window; tests shrink it.
	syncEvery time.Duration
}

// Open reads (and repairs) the ledger in dir, creating dir and the
// file as needed, folds its records into a State, and durably appends
// the new process epoch. The returned state is the recovery input; the
// ledger is ready for appends.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	path := filepath.Join(dir, ledgerName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	st, validEnd := fold(data)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	l := &Ledger{f: f, path: path, st: st, syncEvery: defaultSyncEvery, lastSync: time.Now()}
	if validEnd < int64(len(data)) {
		// A torn tail (the previous process died mid-append, or the
		// tail rotted): truncate to the last valid record so this
		// process's appends land on a clean boundary.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: truncating torn ledger tail: %w", err)
		}
		countTruncation()
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %w", err)
	}
	// Every open is a new epoch, recorded before anything else this
	// process does — a grant stamped with it can later prove which
	// ledger generation it came from.
	l.st.Epoch++
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], l.st.Epoch)
	if err := l.append(recEpoch, p[:], true); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Path returns the ledger file's path.
func (l *Ledger) Path() string { return l.path }

// Epoch returns this process's ledger epoch.
func (l *Ledger) Epoch() uint64 { return l.st.Epoch }

// State returns the fold of the ledger as it stood at Open (plus the
// epoch bump). Appends made since are deliberately not reflected: the
// state is the recovery engine's input, read once at startup.
func (l *Ledger) State() State { return l.st }

// fold parses data record by record, stopping at the first byte that
// does not parse — the tear. It returns the folded state and the valid
// prefix length.
func fold(data []byte) (State, int64) {
	st := State{Sessions: make(map[uint64]*Session)}
	at := int64(0)
	for {
		body, next, ok := nextRecord(data, at)
		if !ok {
			return st, at
		}
		if !foldRecord(&st, body[0], body[1:len(body)-4]) {
			// A checksummed record with an inner layout this code does
			// not understand: version skew or silent corruption. Treat
			// it as the tear — everything before it is served.
			return st, at
		}
		at = next
	}
}

// nextRecord validates the record starting at offset at: length
// bounds, checksum. It returns the body (kind..crc) and the next
// offset.
func nextRecord(data []byte, at int64) (body []byte, next int64, ok bool) {
	if at+4 > int64(len(data)) {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[at:])
	if n < minBody || n > maxBody || at+4+int64(n) > int64(len(data)) {
		return nil, 0, false
	}
	body = data[at+4 : at+4+int64(n)]
	sum := binary.LittleEndian.Uint32(body[len(body)-4:])
	if crc32.Checksum(body[:len(body)-4], crcTable) != sum {
		return nil, 0, false
	}
	return body, at + 4 + int64(n), true
}

// foldRecord applies one validated record to the state, reporting
// false when the payload does not parse.
func foldRecord(st *State, kind byte, p []byte) bool {
	u64 := binary.LittleEndian.Uint64
	switch kind {
	case recEpoch:
		if len(p) != 8 {
			return false
		}
		st.Epoch = u64(p)
	case recOpen:
		if len(p) < 8+8+2+2 {
			return false
		}
		s := &Session{ID: u64(p), Token: u64(p[8:]), Proto: binary.LittleEndian.Uint16(p[16:])}
		rest := p[18:]
		var ok bool
		if s.Vehicle, rest, ok = cutString(rest); !ok {
			return false
		}
		if s.Spec, rest, ok = cutString(rest); !ok || len(rest) != 0 {
			return false
		}
		st.Sessions[s.ID] = s
		if s.ID > st.MaxSession {
			st.MaxSession = s.ID
		}
	case recWatermark:
		if len(p) != 32 {
			return false
		}
		if s := st.Sessions[u64(p)]; s != nil {
			s.AckSeq, s.Frames, s.Rejected = u64(p[8:]), u64(p[16:]), u64(p[24:])
		}
	case recVerdict:
		if len(p) < 16 {
			return false
		}
		s := st.Sessions[u64(p)]
		v, ok := decodeVerdict(p[16:])
		if !ok {
			return false
		}
		if s != nil {
			s.EventSeq = u64(p[8:])
			s.Verdict = &v
		}
	case recDelivered:
		if len(p) != 8 {
			return false
		}
		if s := st.Sessions[u64(p)]; s != nil {
			s.Delivered = true
		}
	case recClosed:
		if len(p) != 8 {
			return false
		}
		if s := st.Sessions[u64(p)]; s != nil {
			s.Closed = true
		}
	case recSpecEpoch:
		if len(p) < 10 {
			return false
		}
		hash, rest, ok := cutString(p[8:])
		if !ok || len(rest) != 0 {
			return false
		}
		st.SpecEpoch = u64(p)
		st.SpecHash = hash
	default:
		return false
	}
	return true
}

// cutString splits a u16-length-prefixed string off p.
func cutString(p []byte) (s string, rest []byte, ok bool) {
	if len(p) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, false
	}
	return string(p[2 : 2+n]), p[2+n:], true
}

// decodeVerdict unwraps the embedded wire Verdict record (length
// prefix, type byte, payload — exactly as wire.Marshal produces it).
func decodeVerdict(p []byte) (wire.Verdict, bool) {
	if len(p) < 5 {
		return wire.Verdict{}, false
	}
	n := binary.LittleEndian.Uint32(p)
	if int64(n) != int64(len(p)-4) {
		return wire.Verdict{}, false
	}
	rec, err := wire.Decode(p[4], p[5:])
	if err != nil {
		return wire.Verdict{}, false
	}
	v, ok := rec.(wire.Verdict)
	return v, ok
}

// append writes one record, fsyncing per the record's durability
// class: sync forces an immediate fsync; otherwise the write is
// group-committed on the syncEvery interval. Caller must not hold mu.
func (l *Ledger) append(kind byte, payload []byte, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("durable: ledger closed")
	}
	n := 1 + len(payload) + 4
	b := l.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = append(b, kind)
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[4:], crcTable))
	l.buf = b[:0]
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("durable: ledger append: %w", err)
	}
	countRecord(kind, len(b))
	l.dirty = true
	if sync || time.Since(l.lastSync) >= l.syncEvery {
		return l.syncLocked()
	}
	return nil
}

// syncLocked fsyncs the ledger file. Caller holds mu.
func (l *Ledger) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: ledger sync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	countFsync()
	return nil
}

// Sync forces any pending group-committed writes to disk.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.syncLocked()
}

// Close syncs and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// SessionOpened implements fleet.Ledger: durable before returning.
func (l *Ledger) SessionOpened(session, token uint64, proto uint16, vehicle, spec string) error {
	if len(vehicle) > 0xFFFF || len(spec) > 0xFFFF {
		return fmt.Errorf("durable: vehicle/spec name over 64KiB")
	}
	p := make([]byte, 0, 8+8+2+2+len(vehicle)+2+len(spec))
	p = binary.LittleEndian.AppendUint64(p, session)
	p = binary.LittleEndian.AppendUint64(p, token)
	p = binary.LittleEndian.AppendUint16(p, proto)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(vehicle)))
	p = append(p, vehicle...)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(spec)))
	p = append(p, spec...)
	return l.append(recOpen, p, true)
}

// Watermark implements fleet.Ledger: written through to the OS
// immediately, fsync'd on the group-commit interval.
func (l *Ledger) Watermark(session, ackSeq, frames, rejected uint64) error {
	var p [32]byte
	binary.LittleEndian.PutUint64(p[0:], session)
	binary.LittleEndian.PutUint64(p[8:], ackSeq)
	binary.LittleEndian.PutUint64(p[16:], frames)
	binary.LittleEndian.PutUint64(p[24:], rejected)
	return l.append(recWatermark, p[:], false)
}

// VerdictReached implements fleet.Ledger: durable before returning.
func (l *Ledger) VerdictReached(session, eventSeq uint64, v wire.Verdict) error {
	p := make([]byte, 0, 16+64)
	p = binary.LittleEndian.AppendUint64(p, session)
	p = binary.LittleEndian.AppendUint64(p, eventSeq)
	p = wire.Append(p, v)
	return l.append(recVerdict, p, true)
}

// VerdictDelivered implements fleet.Ledger (advisory durability).
func (l *Ledger) VerdictDelivered(session uint64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], session)
	return l.append(recDelivered, p[:], false)
}

// SessionClosed implements fleet.Ledger (advisory durability).
func (l *Ledger) SessionClosed(session uint64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], session)
	return l.append(recClosed, p[:], false)
}

// SpecEpochChanged implements the fleet server's optional epoch-ledger
// extension: durable before returning, because the promote it records
// changes which spec every later verdict means.
func (l *Ledger) SpecEpochChanged(epoch uint64, hash string) error {
	if len(hash) > 0xFFFF {
		return fmt.Errorf("durable: spec hash over 64KiB")
	}
	p := make([]byte, 0, 8+2+len(hash))
	p = binary.LittleEndian.AppendUint64(p, epoch)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(hash)))
	p = append(p, hash...)
	return l.append(recSpecEpoch, p, true)
}

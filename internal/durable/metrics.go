package durable

import (
	"sync/atomic"

	"cpsmon/internal/obs"
)

// Metrics holds the package's counter handles, pre-created so the hot
// append path pays one atomic load and an Add — no map lookups.
type Metrics struct {
	records     [8]*obs.Counter // indexed by record kind
	bytes       *obs.Counter
	fsyncs      *obs.Counter
	truncations *obs.Counter

	restored       *obs.Counter
	restoreFailed  *obs.Counter
	framesReplayed *obs.Counter
}

// metrics is the process-wide instrumentation target. Nil (the
// default) means counting is off.
var metrics atomic.Pointer[Metrics]

// kindNames labels the per-kind record counters.
var kindNames = [8]string{"", "epoch", "open", "watermark", "verdict", "delivered", "closed", "specepoch"}

// Instrument points the package's counters at reg. Pass nil to detach.
// Ledger appends and recovery runs after the call are counted; calls
// racing the swap may land on either registry.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	m := &Metrics{
		bytes: reg.Counter("cpsmon_durable_ledger_bytes_total",
			"Bytes appended to the session ledger."),
		fsyncs: reg.Counter("cpsmon_durable_ledger_fsyncs_total",
			"fsync calls on the session ledger."),
		truncations: reg.Counter("cpsmon_durable_ledger_truncations_total",
			"Torn ledger tails truncated at open."),
		restored: reg.Counter("cpsmon_durable_sessions_restored_total",
			"Sessions rebuilt from ledger and archive at startup."),
		restoreFailed: reg.Counter("cpsmon_durable_sessions_restore_failed_total",
			"Ledgered sessions whose archive rebuild failed."),
		framesReplayed: reg.Counter("cpsmon_durable_frames_replayed_total",
			"Archived frames replayed into monitors during recovery."),
	}
	for k := recEpoch; k <= recSpecEpoch; k++ {
		m.records[k] = reg.Counter("cpsmon_durable_ledger_records_total",
			"Records appended to the session ledger, by kind.",
			obs.Label{Name: "kind", Value: kindNames[k]})
	}
	metrics.Store(m)
}

func countRecord(kind byte, n int) {
	if m := metrics.Load(); m != nil {
		if int(kind) < len(m.records) && m.records[kind] != nil {
			m.records[kind].Add(1)
		}
		m.bytes.Add(uint64(n))
	}
}

func countFsync() {
	if m := metrics.Load(); m != nil {
		m.fsyncs.Add(1)
	}
}

func countTruncation() {
	if m := metrics.Load(); m != nil {
		m.truncations.Add(1)
	}
}

func countRestored() {
	if m := metrics.Load(); m != nil {
		m.restored.Add(1)
	}
}

func countRestoreFailed() {
	if m := metrics.Load(); m != nil {
		m.restoreFailed.Add(1)
	}
}

func countFramesReplayed(n uint64) {
	if m := metrics.Load(); m != nil {
		m.framesReplayed.Add(n)
	}
}

package durable

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/fleet"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

func testResolver(name string) (*speclang.RuleSet, error) {
	return rules.Strict()
}

// violatingLog renders one HIL follow scenario with a sensor-blindness
// window, the fault kind known to close real violations under the
// strict spec.
func violatingLog(t testing.TB, seed int64, dur time.Duration) *can.Log {
	t.Helper()
	frac := func(num, den time.Duration) time.Duration {
		return dur * num / den / sigdb.FastPeriod * sigdb.FastPeriod
	}
	cfg := scenario.Follow(seed, dur)
	cfg.TypeChecking = false
	bench, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	from, to := frac(1, 3), frac(2, 3)
	blind := []string{sigdb.SigVehicleAhead, sigdb.SigTargetRange, sigdb.SigTargetRelVel}
	onTick := func(now time.Duration, b *hil.Bench) error {
		switch now {
		case from:
			for _, name := range blind {
				if err := b.SetInjection(name, 0); err != nil {
					return err
				}
			}
		case to:
			for _, name := range blind {
				b.ClearInjection(name)
			}
		}
		return nil
	}
	if err := bench.Run(dur, onTick); err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return bench.Log()
}

func offlineReport(t testing.TB, log *can.Log) *core.Report {
	t.Helper()
	rs, err := rules.Strict()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	return rep
}

// daemon is one monitord-shaped process life: ledger, archive writer,
// recovered fleet server.
type daemon struct {
	led *Ledger
	aw  *archive.Writer
	srv *fleet.Server
	rs  RecoveryStats
}

// startDaemon performs the crash-safe startup sequence monitord uses:
// open ledger (epoch bump), open archive writer (heals torn segment
// tails), build the server around both, replay the archive into every
// unfinished ledgered session, then listen.
func startDaemon(t *testing.T, stateDir, archDir, addr string) *daemon {
	t.Helper()
	led, err := Open(stateDir)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	aw, err := archive.OpenWriter(archDir, archive.Options{})
	if err != nil {
		t.Fatalf("archive.OpenWriter: %v", err)
	}
	srv, err := fleet.NewServer(fleet.Config{
		DB:           sigdb.Vehicle(),
		Resolve:      testResolver,
		Triage:       rules.DefaultTriage(),
		Ledger:       led,
		Epoch:        led.Epoch(),
		SessionBase:  led.State().MaxSession,
		Archiver:     aw,
		ArchiveQueue: 1 << 14,
		ResumeGrace:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	cat, err := archive.OpenCatalog(archDir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	rs, err := Recover(led, cat, srv)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := srv.Listen(addr); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	return &daemon{led: led, aw: aw, srv: srv, rs: rs}
}

// crash tears the daemon down the hard way: an already-expired drain
// deadline force-closes every connection, and the shutdown-preserve
// rule keeps every undelivered session open in the ledger for the next
// life. (An in-process "crash" still flushes the archive writer on
// Close — the subprocess harness under cmd/monitord covers the true
// SIGKILL, where only the write-before-ack ordering protects state.)
func (d *daemon) crash(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.srv.Shutdown(ctx) // deadline-exceeded error is the point
	if err := d.aw.Close(); err != nil {
		t.Fatalf("archive close: %v", err)
	}
	if err := d.led.Close(); err != nil {
		t.Fatalf("ledger close: %v", err)
	}
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	d.aw.Close()
	d.led.Close()
}

// freePort reserves a loopback address that stays stable across the
// daemon restarts of one test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRecoverMidStreamResume is the package's acceptance test: a
// client streams a violating trace while the server is crashed and
// restarted mid-stream (twice when timing allows). The client's
// retries must carry the session across both process lives, the
// streamed violations must be byte-identical to the offline CheckLog,
// the verdict must arrive exactly once, and the archive must hold
// every frame exactly once despite the replays.
func TestRecoverMidStreamResume(t *testing.T) {
	dur := 60 * time.Second
	log := violatingLog(t, 42, dur)
	offline := offlineReport(t, log)
	offlineViolations := 0
	for _, rr := range offline.Rules {
		offlineViolations += len(rr.Result.Violations)
	}
	if offlineViolations == 0 {
		t.Fatal("ground-truth trace has no violations; the equivalence assertions would be vacuous")
	}

	stateDir, archDir := t.TempDir(), t.TempDir()
	addr := freePort(t)
	d := startDaemon(t, stateDir, archDir, addr)

	var mu sync.Mutex
	var events []wire.Event
	c, err := fleet.DialOptions(addr, fleet.Options{
		Vehicle: "veh-crash",
		Spec:    "strict",
		OnEvent: func(e wire.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
		MaxRetries:   40,
		Backoff:      25 * time.Millisecond,
		MaxBackoff:   250 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type res struct {
		v   *wire.Verdict
		err error
	}
	done := make(chan res, 1)
	go func() {
		// 40x pacing stretches the 60s trace over ~1.5s of wall time, so
		// both crash checkpoints land mid-stream instead of racing a
		// full-speed replay.
		v, err := c.Replay(log, 40)
		done <- res{v, err}
	}()

	// Crash the daemon twice, each time roughly halfway through what the
	// current process life has left to ingest (its counter restarts at
	// zero with the process). If the replay outruns a checkpoint the
	// crash simply does not happen, which only weakens this particular
	// run, not the assertions.
	total := uint64(log.Len())
	replayed := uint64(0) // frames rebuilt from the archive, not re-ingested
	restarts := 0
	for round := 0; round < 2; round++ {
		checkpoint := (total - replayed) / 3
		if round > 0 {
			checkpoint = (total - replayed) / 2
		}
		deadline := time.Now().Add(30 * time.Second)
		crashed := false
		for time.Now().Before(deadline) {
			select {
			case r := <-done:
				done <- r // replay finished before the checkpoint
				deadline = time.Now()
				continue
			default:
			}
			if d.srv.Stats().FramesIngested >= checkpoint {
				d.crash(t)
				crashed = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !crashed {
			break
		}
		d = startDaemon(t, stateDir, archDir, addr)
		restarts++
		if d.rs.SessionsFailed != 0 {
			t.Fatalf("restart %d: %d sessions failed recovery: %+v", restarts, d.rs.SessionsFailed, d.rs)
		}
		if d.rs.SessionsRecovered != 1 {
			t.Fatalf("restart %d: recovered %d sessions, want 1 (%+v)", restarts, d.rs.SessionsRecovered, d.rs)
		}
		replayed = d.rs.FramesReplayed
	}
	if restarts == 0 {
		t.Fatal("replay finished before the first crash checkpoint; the test exercised nothing")
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("replay across %d restarts: %v", restarts, r.err)
	}
	if r.v.FramesIngested != total {
		t.Errorf("verdict ingested %d frames, sent %d", r.v.FramesIngested, total)
	}
	if r.v.FramesDropped != 0 || r.v.FramesRejected != 0 {
		t.Errorf("dropped=%d rejected=%d, want 0/0", r.v.FramesDropped, r.v.FramesRejected)
	}

	// Streamed events must match the offline ground truth exactly once,
	// byte for byte — across every crash.
	mu.Lock()
	streamed := make(map[string][]wire.Event)
	begins := make(map[string]int)
	for _, e := range events {
		switch e.Kind {
		case wire.EventBegin:
			begins[e.Rule]++
		case wire.EventEnd:
			streamed[e.Rule] = append(streamed[e.Rule], e)
		default:
			t.Errorf("unexpected event kind %d (%+v)", e.Kind, e)
		}
	}
	mu.Unlock()
	for ri, rr := range offline.Rules {
		name := rr.Name()
		want := rr.Result.Violations
		got := streamed[name]
		if len(got) != len(want) {
			t.Fatalf("rule %s: streamed %d violations, offline %d (duplicate or lost events across the crashes)",
				name, len(got), len(want))
		}
		if begins[name] != len(want) {
			t.Errorf("rule %s: %d begin events for %d violations", name, begins[name], len(want))
		}
		for vi, v := range want {
			wantEv := wire.Event{
				Kind: wire.EventEnd, Rule: name, Time: v.End,
				StartStep: uint32(v.StartStep), EndStep: uint32(v.EndStep),
				Start: v.Start, End: v.End, Peak: v.Peak, Msg: v.Msg,
				Class: uint8(rr.Classes[vi]),
			}
			if !bytes.Equal(wire.Marshal(got[vi]), wire.Marshal(wantEv)) {
				t.Errorf("rule %s violation %d: wire bytes differ from offline", name, vi)
			}
		}
		rv := r.v.Rules[ri]
		if rv.Rule != name || int(rv.Violations) != len(want) {
			t.Errorf("rule %s: verdict row %+v, offline %d violations", name, rv, len(want))
		}
	}

	st := d.srv.Stats()
	if st.SessionsRestored == 0 {
		t.Error("final daemon restored no session")
	}
	if st.LedgerErrors != 0 {
		t.Errorf("LedgerErrors = %d", st.LedgerErrors)
	}
	d.stop(t)

	// The archive — written across three process lives, with the client
	// resending unacknowledged batches after each crash — must hold every
	// frame exactly once and exactly one verdict.
	cat, err := archive.OpenCatalog(archDir)
	if err != nil {
		t.Fatal(err)
	}
	var frames uint64
	verdicts := 0
	it := cat.Iter(archive.Query{})
	for it.Next() {
		switch rec := it.Record(); rec.Kind {
		case archive.KindFrames:
			frames += uint64(len(rec.Frames))
		case archive.KindVerdict:
			verdicts++
			if !bytes.Equal(wire.Marshal(rec.Verdict), wire.Marshal(*r.v)) {
				t.Error("archived verdict differs from the delivered one")
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if frames != total {
		t.Errorf("archive holds %d frames, want exactly %d (duplicates or loss across crashes)", frames, total)
	}
	if verdicts != 1 {
		t.Errorf("archive holds %d verdicts, want exactly 1", verdicts)
	}
	t.Logf("recovered across %d restarts: %+v", restarts, d.rs)
}

// TestRecoverFinalizedUndelivered rebuilds a session that crashed
// after its verdict was ledgered but before the client confirmed
// receiving it: the restart must regenerate the exact verdict from the
// archive, serve it to the resuming client, and not duplicate the
// already-archived verdict record.
func TestRecoverFinalizedUndelivered(t *testing.T) {
	log := violatingLog(t, 7, 30*time.Second)
	stateDir, archDir := t.TempDir(), t.TempDir()
	addr := freePort(t)
	d := startDaemon(t, stateDir, archDir, addr)

	// A raw v2 session run to a delivered verdict.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.Hello{Version: wire.Version, Vehicle: "veh-fin", Spec: "strict"}); err != nil {
		t.Fatal(err)
	}
	rec, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	grant, ok := rec.(wire.SessionGrant)
	if !ok {
		t.Fatalf("grant: got %T", rec)
	}
	frames := log.Frames()
	half := len(frames) / 2
	if err := wire.Write(conn, wire.SeqBatch{Seq: 1, Frames: frames[:half]}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.SeqBatch{Seq: 2, Frames: frames[half:]}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.FinishSeq{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	var delivered wire.VerdictSeq
	var eventCount uint64
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
awaiting:
	for {
		rec, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("awaiting verdict: %v", err)
		}
		switch rec := rec.(type) {
		case wire.VerdictSeq:
			delivered = rec
			break awaiting
		case wire.SeqEvent:
			eventCount++
		case wire.Ack:
		default:
			t.Fatalf("awaiting verdict: unexpected %T", rec)
		}
	}
	conn.Close()
	d.stop(t)

	// Forge the crash window: cut the ledger right after the verdict
	// record, discarding the delivered/closed records the clean shutdown
	// appended — the state a real crash between "verdict ledgered" and
	// "delivery confirmed" leaves behind.
	ledgerPath := filepath.Join(stateDir, ledgerName)
	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	cutAt := int64(-1)
	for at := int64(0); ; {
		body, next, ok := nextRecord(data, at)
		if !ok {
			break
		}
		if body[0] == recVerdict {
			cutAt = next
		}
		at = next
	}
	if cutAt < 0 {
		t.Fatal("no verdict record in the ledger")
	}
	if err := os.WriteFile(ledgerPath, data[:cutAt], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startDaemon(t, stateDir, archDir, addr)
	if d2.rs.SessionsRecovered != 1 || d2.rs.SessionsFinalized != 1 || d2.rs.SessionsFailed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 recovered, 1 finalized, 0 failed", d2.rs)
	}

	// The resuming client missed everything after its last event; the
	// re-serve must replay the tail and the identical verdict.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.Write(conn2, wire.Resume{Version: wire.Version, Token: grant.Token, Epoch: grant.Epoch}); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(10 * time.Second))
	rec, err = wire.Read(conn2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if g, ok := rec.(wire.SessionGrant); !ok {
		t.Fatalf("resume: got %T (%+v)", rec, rec)
	} else if g.Session != grant.Session {
		t.Fatalf("resume returned session %d, want %d", g.Session, grant.Session)
	}
	var replayed uint64
	for {
		rec, err := wire.Read(conn2)
		if err != nil {
			t.Fatalf("re-delivery: %v", err)
		}
		if vs, ok := rec.(wire.VerdictSeq); ok {
			if !bytes.Equal(wire.Marshal(vs), wire.Marshal(delivered)) {
				t.Error("re-served verdict differs from the original delivery")
			}
			break
		}
		if _, ok := rec.(wire.SeqEvent); ok {
			replayed++
		}
	}
	if replayed != eventCount {
		t.Errorf("re-serve replayed %d events, original delivered %d", replayed, eventCount)
	}
	d2.stop(t)

	// Exactly one verdict in the archive: the rebuilt session skipped
	// re-archiving the one its previous life already wrote.
	cat, err := archive.OpenCatalog(archDir)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	it := cat.Iter(archive.Query{Kinds: archive.KindVerdict})
	for it.Next() {
		verdicts++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if verdicts != 1 {
		t.Errorf("archive holds %d verdicts, want exactly 1", verdicts)
	}
}

// TestResumeEpochRefused pins the stale-state guard: a Resume carrying
// an epoch newer than the server's ledger generation is refused, not
// silently served from rolled-back state.
func TestResumeEpochRefused(t *testing.T) {
	stateDir, archDir := t.TempDir(), t.TempDir()
	d := startDaemon(t, stateDir, archDir, "127.0.0.1:0")
	defer d.stop(t)
	addr := d.srv.Addr().String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, wire.Resume{Version: wire.Version, Token: 12345, Epoch: d.led.Epoch() + 7}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rec, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := rec.(wire.Error)
	if !ok {
		t.Fatalf("got %T, want wire.Error", rec)
	}
	if want := "stale server state"; !bytes.Contains([]byte(e.Msg), []byte(want)) {
		t.Errorf("refusal %q does not mention %q", e.Msg, want)
	}
}

package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cpsmon/internal/wire"
)

func testVerdict() wire.Verdict {
	return wire.Verdict{
		Rules: []wire.RuleVerdict{
			{Rule: "engine_speed_bounds", Violated: true, Violations: 3, Real: 2, Transient: 1},
			{Rule: "brake_response", Violated: false},
		},
		FramesIngested: 1234,
		FramesRejected: 5,
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 1 {
		t.Fatalf("fresh ledger epoch = %d, want 1", l.Epoch())
	}
	v := testVerdict()
	if err := l.SessionOpened(7, 0xDEADBEEF, 2, "veh-a", "default"); err != nil {
		t.Fatal(err)
	}
	if err := l.SessionOpened(9, 0xCAFE, 3, "veh-b", "strict"); err != nil {
		t.Fatal(err)
	}
	if err := l.Watermark(7, 4, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Watermark(7, 9, 250, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.VerdictReached(7, 42, v); err != nil {
		t.Fatal(err)
	}
	if err := l.VerdictDelivered(7); err != nil {
		t.Fatal(err)
	}
	if err := l.SessionClosed(9); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.State()
	if st.Epoch != 2 {
		t.Fatalf("reopened epoch = %d, want 2", st.Epoch)
	}
	if st.MaxSession != 9 {
		t.Fatalf("MaxSession = %d, want 9", st.MaxSession)
	}
	s7 := st.Sessions[7]
	if s7 == nil {
		t.Fatal("session 7 missing from fold")
	}
	if s7.Token != 0xDEADBEEF || s7.Proto != 2 || s7.Vehicle != "veh-a" || s7.Spec != "default" {
		t.Fatalf("session 7 identity = %+v", s7)
	}
	if s7.AckSeq != 9 || s7.Frames != 250 || s7.Rejected != 2 {
		t.Fatalf("session 7 watermark = ack %d frames %d rejected %d, want 9/250/2", s7.AckSeq, s7.Frames, s7.Rejected)
	}
	if s7.Verdict == nil || s7.EventSeq != 42 {
		t.Fatalf("session 7 verdict = %v eventSeq %d", s7.Verdict, s7.EventSeq)
	}
	if !bytes.Equal(wire.Marshal(*s7.Verdict), wire.Marshal(v)) {
		t.Fatal("session 7 verdict does not round-trip byte-identically")
	}
	if !s7.Delivered || s7.Closed {
		t.Fatalf("session 7 delivered=%v closed=%v, want true/false", s7.Delivered, s7.Closed)
	}
	s9 := st.Sessions[9]
	if s9 == nil || !s9.Closed || s9.Delivered {
		t.Fatalf("session 9 = %+v, want closed, undelivered", s9)
	}
}

// TestLedgerTornTail cuts the ledger mid-record at every possible
// byte boundary of the final record and proves (a) the reopen folds
// exactly the intact prefix, (b) appends after the repair land on a
// clean boundary so a further reopen still parses everything.
func TestLedgerTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SessionOpened(1, 0xAA, 2, "veh", "spec"); err != nil {
		t.Fatal(err)
	}
	cut := fileSize(t, l.Path()) // boundary before the final record
	if err := l.Watermark(1, 3, 50, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(dir, ledgerName))
	if err != nil {
		t.Fatal(err)
	}

	for torn := cut; torn < int64(len(whole)); torn++ {
		sub := t.TempDir()
		path := filepath.Join(sub, ledgerName)
		if err := os.WriteFile(path, whole[:torn], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(sub)
		if err != nil {
			t.Fatalf("torn at %d: %v", torn, err)
		}
		st := l2.State()
		s := st.Sessions[1]
		if s == nil || s.Frames != 0 {
			t.Fatalf("torn at %d: torn watermark leaked into fold: %+v", torn, s)
		}
		// The tail was repaired; the next append must survive a reopen.
		if err := l2.Watermark(1, 5, 80, 0); err != nil {
			t.Fatalf("torn at %d: append after repair: %v", torn, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(sub)
		if err != nil {
			t.Fatalf("torn at %d: reopen after repair: %v", torn, err)
		}
		if s := l3.State().Sessions[1]; s == nil || s.Frames != 80 || s.AckSeq != 5 {
			t.Fatalf("torn at %d: post-repair fold = %+v, want frames 80 ack 5", torn, s)
		}
		l3.Close()
	}
}

// TestLedgerGarbageTail proves arbitrary trailing garbage (not a
// prefix of a real record) is cut at reopen.
func TestLedgerGarbageTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SessionOpened(3, 0xBB, 2, "v", "s"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ledgerName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x02})
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if s := l2.State().Sessions[3]; s == nil || s.Token != 0xBB {
		t.Fatalf("fold after garbage tail = %+v", s)
	}
	if l2.State().Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", l2.State().Epoch)
	}
}

// TestLedgerEpochMonotonic proves each open bumps the epoch durably.
func TestLedgerEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 4; want++ {
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if l.Epoch() != want {
			t.Fatalf("open #%d: epoch = %d", want, l.Epoch())
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// FuzzLedgerFold throws arbitrary bytes at the fold: it must never
// panic, must report a valid prefix length, and truncating to that
// prefix must be a fixed point (fold of the prefix folds the same
// records and consumes all of it).
func FuzzLedgerFold(f *testing.F) {
	// Seed with a healthy ledger.
	dir := f.TempDir()
	l, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	l.SessionOpened(1, 2, 2, "veh", "spec")
	l.Watermark(1, 1, 10, 0)
	l.VerdictReached(1, 4, testVerdict())
	l.VerdictDelivered(1)
	l.SessionClosed(1)
	l.Close()
	healthy, err := os.ReadFile(filepath.Join(dir, ledgerName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, end := fold(data)
		if end < 0 || end > int64(len(data)) {
			t.Fatalf("fold reported prefix %d of %d bytes", end, len(data))
		}
		st2, end2 := fold(data[:end])
		if end2 != end {
			t.Fatalf("fold is not a fixed point: %d then %d", end, end2)
		}
		if st.Epoch != st2.Epoch || st.MaxSession != st2.MaxSession || len(st.Sessions) != len(st2.Sessions) {
			t.Fatal("refolding the valid prefix changed the state")
		}
	})
}

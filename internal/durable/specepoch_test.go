package durable

import "testing"

// TestLedgerSpecEpochFold checks the spec-provenance record: a promote
// recorded by one process is folded into the next process's open-time
// state, with the latest promote winning.
func TestLedgerSpecEpochFold(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.State(); st.SpecEpoch != 0 || st.SpecHash != "" {
		t.Fatalf("fresh ledger spec epoch = %d %q, want none", st.SpecEpoch, st.SpecHash)
	}
	if err := l.SpecEpochChanged(1, "hash-one"); err != nil {
		t.Fatal(err)
	}
	if err := l.SpecEpochChanged(2, "hash-two"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.State()
	if st.SpecEpoch != 2 || st.SpecHash != "hash-two" {
		t.Fatalf("folded spec epoch = %d %q, want 2 %q", st.SpecEpoch, st.SpecHash, "hash-two")
	}
	// The process epoch and the spec epoch are independent counters.
	if st.Epoch != 2 {
		t.Fatalf("process epoch = %d, want 2", st.Epoch)
	}
}

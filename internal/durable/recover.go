package durable

import (
	"fmt"
	"slices"

	"cpsmon/internal/archive"
	"cpsmon/internal/fleet"
)

// ensure the ledger keeps satisfying the server's interface.
var _ fleet.Ledger = (*Ledger)(nil)

// RecoveryStats summarizes one startup recovery pass.
type RecoveryStats struct {
	// SessionsRecovered counts sessions rebuilt and parked for resume;
	// SessionsFinalized is the subset already holding a verdict the
	// previous process never confirmed delivering. SessionsFailed counts
	// ledgered sessions that could not be rebuilt (archive and ledger
	// disagreed, or the spec no longer loads) — each is closed in the
	// ledger so the next startup does not retry it.
	SessionsRecovered, SessionsFinalized, SessionsFailed int
	// FramesReplayed counts archived frames re-applied to monitors.
	// OrphanFrames counts archived frames beyond the ledger watermark —
	// written by the previous process but never acknowledged; they are
	// not replayed, and the rebuilt sessions will skip re-archiving them
	// when the client resends.
	FramesReplayed, OrphanFrames uint64
}

// track is one live session's progress through the archive pass.
type track struct {
	r        *fleet.Restorer
	info     *Session
	want     uint64 // ledger watermark frame count — the replay bound
	pushed   uint64
	orphans  uint64 // archived frames beyond the watermark
	events   uint64 // archived event records seen
	verdicts uint64 // archived verdict records seen
	failed   bool
}

// Recover rebuilds every unfinished session in led's state on srv by
// replaying its archived frames, then parks each for the client's
// resume. It must run after fleet.NewServer and before srv.Listen. cat
// reads the same archive directory the previous process wrote (open
// the catalog after the archive Writer, so torn segment tails are
// already healed). A nil cat is only acceptable when no session has
// frames to replay.
//
// Sessions that cannot be rebuilt are abandoned: their monitors are
// closed, the failure is counted, and a closed record is appended to
// the ledger so the next startup does not see them again.
func Recover(led *Ledger, cat *archive.Catalog, srv *fleet.Server) (RecoveryStats, error) {
	st := led.State()
	var rs RecoveryStats
	live := make(map[uint64]*track)
	fail := func(t *track) {
		if t.failed {
			return
		}
		t.failed = true
		if t.r != nil {
			t.r.Abort()
			t.r = nil
		}
	}
	for id, info := range st.Sessions {
		if info.Closed || info.Proto < 2 || info.Token == 0 {
			// Resolved for good, or a session that cannot resume anyway.
			// The server never ledgers v1 sessions, but an old ledger
			// generation may still carry one.
			continue
		}
		t := &track{info: info, want: info.Frames}
		live[id] = t
		r, err := srv.NewRestorer(fleet.RestoredSession{
			ID: info.ID, Token: info.Token, Proto: info.Proto,
			Vehicle: info.Vehicle, Spec: info.Spec,
			AckSeq: info.AckSeq, Frames: info.Frames, Rejected: info.Rejected,
			Verdict: info.Verdict, EventSeq: info.EventSeq, Delivered: info.Delivered,
		})
		if err != nil {
			fail(t)
			continue
		}
		t.r = r
	}

	// One pass over the whole archive, routing records to their
	// session's track. Records arrive in per-session write order (the
	// server's archive pump serializes them), which is all the replay
	// needs; cross-session interleaving is irrelevant.
	if cat != nil {
		it := cat.Iter(archive.Query{})
		for it.Next() {
			rec := it.Record()
			t := live[rec.Session]
			if t == nil || t.failed {
				continue
			}
			switch rec.Kind {
			case archive.KindFrames:
				n := uint64(len(rec.Frames))
				switch {
				case t.pushed == t.want:
					// Beyond the watermark: archived but never
					// acknowledged. Not replayed — the client resends
					// these frames, and the rebuilt session skips
					// re-archiving exactly this many.
					t.orphans += n
				case t.pushed+n <= t.want:
					// rec.Frames is iterator scratch, but PushFrames
					// consumes it synchronously (rebuilding sessions never
					// enqueue to the archive pump), so no copy is needed.
					if err := t.r.PushFrames(rec.Frames); err != nil {
						fail(t)
						continue
					}
					t.pushed += n
				default:
					// A record straddling the watermark is impossible:
					// watermarks are written per batch, after the batch's
					// whole runs reached the archive. Seeing one means
					// ledger and archive are from different lives.
					fail(t)
				}
			case archive.KindEvent:
				t.events++
			case archive.KindVerdict:
				t.verdicts++
			}
		}
		if err := it.Err(); err != nil {
			// A broken archive fails recovery wholesale — guessing which
			// sessions lost records would serve corrupt state as truth.
			for _, t := range live {
				fail(t)
			}
			abandon(live, led, &rs)
			it.Close()
			return rs, fmt.Errorf("durable: archive scan: %w", err)
		}
		it.Close()
	}

	for _, id := range sortedIDs(live) {
		t := live[id]
		if !t.failed && t.pushed != t.want {
			// The archive holds fewer acknowledged frames than the ledger
			// watermark promises — acknowledged data was lost.
			fail(t)
		}
		if t.failed {
			continue
		}
		rebuilt := t.r.Events()
		skips := fleet.RestoreSkips{
			Frames: t.orphans,
			// Events regenerated during replay were archived back then;
			// any archived beyond that count belong to unacknowledged
			// batches the client is about to resend.
			Verdict: t.verdicts > 0 && t.info.Verdict == nil,
		}
		if t.events > rebuilt {
			skips.Events = t.events - rebuilt
		}
		if err := t.r.Finish(skips); err != nil {
			t.failed = true // Finish aborted the restorer itself
			continue
		}
		rs.SessionsRecovered++
		if t.info.Verdict != nil {
			rs.SessionsFinalized++
		}
		rs.FramesReplayed += t.pushed
		rs.OrphanFrames += t.orphans
		countRestored()
		countFramesReplayed(t.pushed)
	}
	abandon(live, led, &rs)
	return rs, nil
}

// abandon closes out every failed track: counts it and records the
// session closed in the ledger so the next startup skips it. Restorer
// teardown already happened when the track failed.
func abandon(live map[uint64]*track, led *Ledger, rs *RecoveryStats) {
	for _, id := range sortedIDs(live) {
		t := live[id]
		if !t.failed || t.info.Closed {
			continue
		}
		t.info.Closed = true // guard against double-abandon
		rs.SessionsFailed++
		countRestoreFailed()
		led.SessionClosed(id)
	}
}

// sortedIDs returns the track keys ascending, for deterministic
// restore order.
func sortedIDs(live map[uint64]*track) []uint64 {
	ids := make([]uint64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

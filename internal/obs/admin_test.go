package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cpsmon/internal/flight"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestHealthzStructuredBody pins the /healthz JSON contract: a
// structured state machine (ok | draining | degraded) carrying the SLO
// burn and repaired-journal bytes, while the status-code contract old
// scrapers rely on is preserved — 200 unless draining, 503 draining.
// A degraded SLO keeps the 200: flipping readiness would tell the load
// balancer to abandon a replica that is slow but alive.
func TestHealthzStructuredBody(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	health := Health{State: "ok", SLOBurn: 0.25, SLOTargetSeconds: 0.1, RepairedJournalBytes: 17}
	srv := httptest.NewServer(NewAdmin(AdminConfig{
		Registry: NewRegistry(),
		Ready:    ready.Load,
		Health:   func() Health { return health },
	}))
	defer srv.Close()

	decode := func(body string) Health {
		t.Helper()
		var h Health
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		return h
	}

	code, body := adminGet(t, srv, "/healthz")
	if h := decode(body); code != 200 || h.State != "ok" || h.SLOBurn != 0.25 || h.RepairedJournalBytes != 17 {
		t.Errorf("/healthz ok = %d %q", code, body)
	}

	health.State = "degraded"
	health.SLOBurn = 3.5
	code, body = adminGet(t, srv, "/healthz")
	if h := decode(body); code != 200 || h.State != "degraded" || h.SLOBurn != 3.5 {
		t.Errorf("/healthz degraded = %d %q, want 200 degraded", code, body)
	}

	ready.Store(false)
	code, body = adminGet(t, srv, "/healthz")
	if h := decode(body); code != 503 || h.State != "draining" {
		t.Errorf("/healthz draining = %d %q, want 503 draining", code, body)
	}
}

// TestPprofReachableDuringDrain: profiling is most valuable exactly
// when a replica is misbehaving and being drained, so the pprof and
// flight routes must keep answering after readiness flips.
func TestPprofReachableDuringDrain(t *testing.T) {
	rec := flight.New(flight.Config{RingSize: 16, SampleEvery: 1})
	srv := httptest.NewServer(NewAdmin(AdminConfig{
		Registry: NewRegistry(),
		Ready:    func() bool { return false },
		Flight:   func() any { return rec.Snapshot() },
	}))
	defer srv.Close()

	if code, _ := adminGet(t, srv, "/healthz"); code != 503 {
		t.Fatalf("/healthz = %d, want 503 while draining", code)
	}
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
		"/debug/flight",
		"/metrics",
	} {
		if code, body := adminGet(t, srv, path); code != 200 {
			t.Errorf("%s during drain = %d %q, want 200", path, code, body)
		}
	}
}

// TestFlightSnapshotGolden pins the /debug/flight wire schema byte for
// byte: dashboards and monitorctl parse this JSON, so a field rename
// or re-tagging must show up as a deliberate golden update here.
func TestFlightSnapshotGolden(t *testing.T) {
	rec := flight.New(flight.Config{RingSize: 4, SampleEvery: 2, Exemplars: 2})
	veh := rec.Intern("veh-1")
	rule := rec.Intern("overspeed")
	rec.Sample()
	rec.Sample()
	base := time.Unix(1000, 0)
	rec.Record(3, veh, flight.StageIngest, 0, 9, base, 250*time.Microsecond)
	rec.Record(3, veh, flight.StageEval, rule, 9, base.Add(250*time.Microsecond), time.Millisecond)
	var stages [flight.NumStages]int64
	stages[flight.StageIngest] = int64(250 * time.Microsecond)
	stages[flight.StageEval] = int64(time.Millisecond)
	rec.Exemplar(3, veh, 9, base, 1250*time.Microsecond, stages)

	srv := httptest.NewServer(NewAdmin(AdminConfig{
		Registry: NewRegistry(),
		Flight:   func() any { return rec.Snapshot() },
	}))
	defer srv.Close()

	code, body := adminGet(t, srv, "/debug/flight")
	if code != 200 {
		t.Fatalf("/debug/flight = %d", code)
	}
	const golden = `{
  "ring_size": 4,
  "sample_every": 2,
  "spans_recorded": 2,
  "spans_dropped": 0,
  "batches_sampled": 1,
  "spans": [
    {
      "session": 3,
      "vehicle": "veh-1",
      "stage": "ingest",
      "seq": 9,
      "start_unix_nano": 1000000000000,
      "dur_nanos": 250000
    },
    {
      "session": 3,
      "vehicle": "veh-1",
      "stage": "eval",
      "rule": "overspeed",
      "seq": 9,
      "start_unix_nano": 1000000250000,
      "dur_nanos": 1000000
    }
  ],
  "slowest": [
    {
      "session": 3,
      "vehicle": "veh-1",
      "seq": 9,
      "start_unix_nano": 1000000000000,
      "e2e_nanos": 1250000,
      "stages": {
        "eval": 1000000,
        "ingest": 250000
      }
    }
  ]
}`
	if got := strings.TrimSpace(body); got != golden {
		t.Errorf("/debug/flight schema drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestFlightRouteAbsentWithoutRecorder: an admin surface wired without
// a recorder must 404 the route rather than serve "null".
func TestFlightRouteAbsentWithoutRecorder(t *testing.T) {
	srv := httptest.NewServer(NewAdmin(AdminConfig{Registry: NewRegistry()}))
	defer srv.Close()
	if code, _ := adminGet(t, srv, "/debug/flight"); code != 404 {
		t.Errorf("/debug/flight without recorder = %d, want 404", code)
	}
}

package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE header each, series sorted by label signature, histograms
// expanded into cumulative _bucket series plus _sum and _count. The
// output is deterministic for a given registry state, so it can be
// golden-tested and diffed.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	last := ""
	r.Each(func(m Metric) {
		if m.Name != last {
			if m.Help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(m.Name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(m.Help))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(m.Kind.String())
			bw.WriteByte('\n')
			last = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			for i, ub := range m.Upper {
				writeSample(bw, m.Name+"_bucket", m.Labels, Label{Name: "le", Value: formatFloat(ub)}, float64(m.Cumulative[i]))
			}
			writeSample(bw, m.Name+"_bucket", m.Labels, Label{Name: "le", Value: "+Inf"}, float64(m.Count))
			writeSample(bw, m.Name+"_sum", m.Labels, Label{}, m.Sum)
			writeSample(bw, m.Name+"_count", m.Labels, Label{}, float64(m.Count))
		default:
			writeSample(bw, m.Name, m.Labels, Label{}, m.Value)
		}
	})
	return bw.Flush()
}

// writeSample emits one "name{labels} value" line. extra, when it has
// a name, is appended after the series labels (the histogram le label).
func writeSample(bw *bufio.Writer, name string, labels []Label, extra Label, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extra.Name != "" {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			writeLabel(bw, l)
		}
		if extra.Name != "" {
			if !first {
				bw.WriteByte(',')
			}
			writeLabel(bw, extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func writeLabel(bw *bufio.Writer, l Label) {
	bw.WriteString(l.Name)
	bw.WriteString(`="`)
	bw.WriteString(escapeLabel(l.Value))
	bw.WriteByte('"')
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is an append-only JSONL audit log: one JSON object per line,
// written atomically with respect to concurrent appenders, rotated by
// size. The fleet daemon journals one record per verdict and oracle
// event, making a live deployment auditable offline the way the
// paper's prototype-vehicle captures were.
//
// Rotation: when an append would push the file past its size limit,
// the current file is renamed to <path>.1 (replacing any previous
// rotation) and a fresh file is started, so a journal never grows
// unboundedly and the newest records are always in <path>.
type Journal struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
	records  uint64
	repaired int64
	buf      bytes.Buffer
}

// OpenJournal opens (creating or appending to) the journal at path.
// maxBytes bounds the live file's size before rotation; zero or
// negative disables rotation.
//
// If the previous process died mid-Append the file may end in a torn
// line (no trailing newline). OpenJournal truncates the file back to
// the last complete line before appending, so one crash never poisons
// every later run's parse of the journal. The number of bytes cut is
// reported by Repaired.
func OpenJournal(path string, maxBytes int64) (*Journal, error) {
	repaired, err := repairTail(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	return &Journal{path: path, maxBytes: maxBytes, f: f, size: st.Size(), repaired: repaired}, nil
}

// repairTail truncates path back to its last newline and reports how
// many bytes were cut. A missing file is not an error.
func repairTail(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	end := size
	const chunk = 4096
	for end > 0 {
		n := int64(chunk)
		if n > end {
			n = end
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, end-n); err != nil {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			keep := end - n + int64(i) + 1
			if keep == size {
				return 0, nil
			}
			return size - keep, f.Truncate(keep)
		}
		end -= n
	}
	// No newline anywhere: the whole file is one torn line.
	if size == 0 {
		return 0, nil
	}
	return size, f.Truncate(0)
}

// Append marshals v as one JSON line and appends it. The line is
// written with a single Write call, so concurrent appenders never
// interleave partial records.
func (j *Journal) Append(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("obs: journal %s is closed", j.path)
	}
	j.buf.Reset()
	enc := json.NewEncoder(&j.buf)
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("obs: journal: %w", err)
	}
	line := j.buf.Bytes() // Encode appends the trailing newline
	if j.maxBytes > 0 && j.size > 0 && j.size+int64(len(line)) > j.maxBytes {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	n, err := j.f.Write(line)
	j.size += int64(n)
	if err != nil {
		return fmt.Errorf("obs: journal: %w", err)
	}
	j.records++
	return nil
}

// rotate is called with the lock held.
func (j *Journal) rotate() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("obs: journal rotate: %w", err)
	}
	if err := os.Rename(j.path, j.path+".1"); err != nil {
		return fmt.Errorf("obs: journal rotate: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: journal rotate: %w", err)
	}
	j.f = f
	j.size = 0
	return nil
}

// Path returns the journal's live file path.
func (j *Journal) Path() string { return j.path }

// Repaired returns how many torn-tail bytes OpenJournal cut from the
// file left by the previous process; zero when the tail was clean.
func (j *Journal) Repaired() int64 { return j.repaired }

// Records returns how many records this Journal handle has appended
// (not counting lines already in the file when it was opened).
func (j *Journal) Records() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Close flushes nothing (appends are unbuffered) and closes the file.
// Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Health is the structured /healthz body. State is one of "ok",
// "draining" or "degraded"; the remaining fields carry the operational
// detail a fleet dashboard wants without a full metrics scrape: how
// hard the detection-latency SLO budget is burning and how many bytes
// of journal the last recovery had to repair.
type Health struct {
	State                string  `json:"state"`
	SLOBurn              float64 `json:"slo_burn"`
	SLOTargetSeconds     float64 `json:"slo_target_seconds,omitempty"`
	RepairedJournalBytes int64   `json:"repaired_journal_bytes"`
	// Rollout is the spec rollout phase ("idle", "shadowing", ...) when
	// a spec registry is configured; SpecEpoch the active spec epoch.
	Rollout   string `json:"rollout,omitempty"`
	SpecEpoch uint64 `json:"spec_epoch,omitempty"`
}

// AdminConfig wires the admin surface. obs stays standard-library-only
// (arch-pinned), so the flight recorder and SLO tracker arrive as
// closures rather than imports: Health supplies the /healthz body and
// Flight the /debug/flight snapshot (any JSON-marshalable value).
type AdminConfig struct {
	Registry *Registry
	// Ready gates the /healthz status code: 200 while true, 503 once
	// it flips (drain-aware readiness: load balancers stop routing
	// before the listener actually closes). Nil means always ready.
	Ready func() bool
	// Health supplies the structured /healthz body. Nil derives a
	// minimal body ("ok"/"draining") from Ready alone. When Ready is
	// false the reported state is forced to "draining" regardless of
	// what Health returns, so the body never contradicts the 503.
	Health func() Health
	// Flight supplies the /debug/flight snapshot. Nil leaves the
	// route responding 404.
	Flight func() any
	// Spec, when non-nil, is mounted at /spec/ — the daemon's spec
	// rollout surface (push, status, promote, rollback). It arrives as
	// a handler rather than an import for the same reason Flight is a
	// closure: obs stays standard-library-only.
	Spec http.Handler
}

// NewAdminHandler builds the monitord admin surface with the legacy
// two-argument signature; see NewAdmin for the full configuration.
func NewAdminHandler(reg *Registry, ready func() bool) http.Handler {
	return NewAdmin(AdminConfig{Registry: reg, Ready: ready})
}

// NewAdmin builds the monitord admin surface:
//
//   - /metrics        — the registry in Prometheus text format
//   - /healthz        — structured JSON health (see Health); 200 while
//     ready, 503 once draining. A degraded SLO keeps the 200 so load
//     balancers do not amplify a latency problem into an outage.
//   - /debug/flight   — JSON snapshot of the flight-recorder ring and
//     slowest exemplar traces (404 when no recorder is wired)
//   - /debug/pprof/…  — the standard runtime profiles
//
// The handler carries live profiling endpoints and operational
// detail, so it must only ever be bound to a loopback or otherwise
// access-controlled address; it performs no authentication itself.
func NewAdmin(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ready := cfg.Ready == nil || cfg.Ready()
		var h Health
		if cfg.Health != nil {
			h = cfg.Health()
		}
		if h.State == "" {
			h.State = "ok"
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ready {
			h.State = "draining"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.Encode(h)
	})
	if cfg.Flight != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(cfg.Flight())
		})
	}
	if cfg.Spec != nil {
		mux.Handle("/spec/", cfg.Spec)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewAdminHandler builds the monitord admin surface:
//
//   - /metrics        — the registry in Prometheus text format
//   - /healthz        — 200 "ok" while ready() is true, 503 "draining"
//     once it flips (drain-aware readiness: load balancers stop
//     routing before the listener actually closes)
//   - /debug/pprof/…  — the standard runtime profiles
//
// The handler carries live profiling endpoints and operational
// detail, so it must only ever be bound to a loopback or otherwise
// access-controlled address; it performs no authentication itself.
// A nil ready is treated as always ready.
func NewAdminHandler(reg *Registry, ready func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready == nil || ready() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Package obs is the repository's observability layer: a
// standard-library-only metrics registry with atomic counters, gauges
// and fixed-bucket histograms, a Prometheus text-exposition encoder,
// an HTTP admin handler (metrics, health, pprof), and an append-only
// JSONL journal for audit records.
//
// The registry is built for the monitor's hot path: once a metric
// handle is created, every update — Counter.Inc/Add, Gauge.Set,
// Histogram.Observe — is a handful of atomic operations and performs
// no allocation, takes no lock, and never formats a string. All
// formatting cost is paid at scrape time by the encoder, which takes a
// coherent-enough snapshot for operational monitoring (counters are
// read individually, not under a global lock — exactly the consistency
// the fleet server's Stats() always had).
//
// Metric identity follows the Prometheus data model: a family (name,
// help, kind) holds one series per distinct label set. Creating the
// same (name, labels) twice returns the same handle, so independent
// components may share a registry without coordination; creating the
// same name with a different kind panics, as that is a programming
// error no scrape should paper over.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// Kind distinguishes the metric families a registry can hold.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindGaugeFunc is a gauge sampled from a callback at scrape time.
	KindGaugeFunc
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind in Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing uint64. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with an atomic count per
// bucket plus a total count and sum. Buckets are defined by their
// upper bounds (inclusive, sorted ascending); an implicit +Inf bucket
// catches everything above the last bound. Observe is allocation-free
// and lock-free.
type Histogram struct {
	upper   []float64 // finite upper bounds, ascending
	buckets []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	if i < len(h.upper) {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the finite upper bounds and their cumulative counts
// (Prometheus le semantics: counts[i] is the number of observations at
// most upper[i]). The +Inf bucket is Count().
func (h *Histogram) Buckets() (upper []float64, cumulative []uint64) {
	upper = h.upper // immutable after construction
	cumulative = make([]uint64, len(h.upper))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cumulative[i] = run
	}
	return upper, cumulative
}

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous — the usual latency/size bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 10µs to ~80s in powers of four —
// wide enough for both a per-batch ingest hop and a slow drain.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(10e-6, 4, 12) }

// series is one (labels, value) member of a family.
type series struct {
	labels []Label
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one named metric: help text, kind, and every label
// combination registered under the name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
}

// Registry holds metric families and hands out update handles.
// Registration takes a lock; handles never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set for series identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// lookup finds or creates the family and the series for (name,
// labels), enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	for _, s := range f.series {
		if s.key == key {
			return s
		}
	}
	s := &series{labels: sorted, key: key}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Repeated calls with the same identity return the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time —
// the right shape for values owned elsewhere (a table size, a buffer
// depth). Re-registering the same identity replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, KindGaugeFunc, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// Histogram returns the histogram for (name, labels) with the given
// finite upper bounds, creating it on first use. Bounds must be sorted
// ascending; an implicit +Inf bucket is always present.
func (r *Registry) Histogram(name, help string, upper []float64, labels ...Label) *Histogram {
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	s := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{
			upper:   append([]float64(nil), upper...),
			buckets: make([]atomic.Uint64, len(upper)),
		}
	}
	return s.h
}

// Metric is one snapshotted series, as visited by Each.
type Metric struct {
	// Name, Help and Kind identify the family.
	Name, Help string
	Kind       Kind
	// Labels is the series identity (sorted by label name).
	Labels []Label
	// Value holds the counter, gauge or gauge-func reading.
	Value float64
	// Histogram-only: finite upper bounds, cumulative counts per
	// bound, total count and sum.
	Upper      []float64
	Cumulative []uint64
	Count      uint64
	Sum        float64
}

// Each visits every series in deterministic order: families sorted by
// name, series by label signature. Gauge funcs are sampled during the
// visit. The registry lock is not held across fn, so callbacks may
// touch structures that themselves register metrics.
func (r *Registry) Each(fn func(m Metric)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		fam *family
		ser []*series
	}
	entries := make([]entry, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		sers := append([]*series(nil), f.series...)
		sort.Slice(sers, func(i, j int) bool { return sers[i].key < sers[j].key })
		entries = append(entries, entry{fam: f, ser: sers})
	}
	r.mu.Unlock()

	for _, e := range entries {
		for _, s := range e.ser {
			m := Metric{Name: e.fam.name, Help: e.fam.help, Kind: e.fam.kind, Labels: s.labels}
			switch e.fam.kind {
			case KindCounter:
				if s.c != nil {
					m.Value = float64(s.c.Value())
				}
			case KindGauge:
				if s.g != nil {
					m.Value = s.g.Value()
				}
			case KindGaugeFunc:
				if s.fn != nil {
					m.Value = s.fn()
				}
			case KindHistogram:
				if s.h != nil {
					m.Upper, m.Cumulative = s.h.Buckets()
					m.Count = s.h.Count()
					m.Sum = s.h.Sum()
				}
			}
			fn(m)
		}
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registration returned a different counter handle")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
}

func TestLabelIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("v_total", "h", Label{"rule", "R1"}, Label{"spec", "strict"})
	// Label order must not matter for identity.
	b := r.Counter("v_total", "h", Label{"spec", "strict"}, Label{"rule", "R1"})
	if a != b {
		t.Error("label order changed series identity")
	}
	c := r.Counter("v_total", "h", Label{"rule", "R2"}, Label{"spec", "strict"})
	if a == c {
		t.Error("distinct label values shared a series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	upper, cum := h.Buckets()
	if len(upper) != 3 {
		t.Fatalf("got %d bounds", len(upper))
	}
	// le=0.01 → {0.005, 0.01}; le=0.1 → +0.05; le=1 → +0.5; +Inf → +5.
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.565) > 1e-9 {
		t.Errorf("sum = %v, want 5.565", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestUpdatesAllocationFree pins the hot-path contract: counter,
// gauge and histogram updates perform zero allocations, so the
// monitor's frame→verdict path can be instrumented without
// regressing its zero-allocation guarantee.
func TestUpdatesAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", DefaultLatencyBuckets())
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		g.Add(-1)
		h.Observe(0.001)
		h.Observe(1e9) // +Inf bucket
	}); allocs != 0 {
		t.Errorf("metric updates allocate %.2f times per run, want 0", allocs)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h", "h", []float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestPrometheusGolden pins the text exposition byte-for-byte: stable
// family ordering (sorted by name), label escaping, and cumulative
// histogram buckets with the +Inf bucket equal to _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cpsmon_frames_total", "Frames decoded.").Add(42)
	r.Counter("cpsmon_violations_total", `Violations per rule.`, Label{"rule", `a"b\c`}).Inc()
	r.Gauge("cpsmon_sessions_active", "Sessions\nactive.").Set(3)
	r.GaugeFunc("cpsmon_parked", "Parked sessions.", func() float64 { return 7 })
	h := r.Histogram("cpsmon_latency_seconds", "Batch latency.", []float64{0.001, 0.1}, Label{"stage", "ingest"})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cpsmon_frames_total Frames decoded.
# TYPE cpsmon_frames_total counter
cpsmon_frames_total 42
# HELP cpsmon_latency_seconds Batch latency.
# TYPE cpsmon_latency_seconds histogram
cpsmon_latency_seconds_bucket{stage="ingest",le="0.001"} 1
cpsmon_latency_seconds_bucket{stage="ingest",le="0.1"} 2
cpsmon_latency_seconds_bucket{stage="ingest",le="+Inf"} 3
cpsmon_latency_seconds_sum{stage="ingest"} 2.0505
cpsmon_latency_seconds_count{stage="ingest"} 3
# HELP cpsmon_parked Parked sessions.
# TYPE cpsmon_parked gauge
cpsmon_parked 7
# HELP cpsmon_sessions_active Sessions\nactive.
# TYPE cpsmon_sessions_active gauge
cpsmon_sessions_active 3
# HELP cpsmon_violations_total Violations per rule.
# TYPE cpsmon_violations_total counter
cpsmon_violations_total{rule="a\"b\\c"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("Prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Encoding twice must be byte-identical (deterministic ordering).
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Error("encoding is not deterministic across calls")
	}
}

func TestEachVisitsDeterministically(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "h", Label{"x", "2"})
	r.Counter("b_total", "h", Label{"x", "1"})
	r.Counter("a_total", "h")
	var order []string
	r.Each(func(m Metric) {
		id := m.Name
		for _, l := range m.Labels {
			id += "/" + l.Value
		}
		order = append(order, id)
	})
	want := []string{"a_total", "b_total/1", "b_total/2"}
	if len(order) != len(want) {
		t.Fatalf("visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("visited %v, want %v", order, want)
		}
	}
}

func TestAdminHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "h").Inc()
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(NewAdminHandler(r, ready.Load))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz ready = %d %q", code, body)
	}
	ready.Store(false)
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "draining") {
		t.Errorf("/healthz draining = %d %q, want 503 draining", code, body)
	}
	// pprof index and a cheap profile must be fetchable.
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("/debug/pprof/goroutine = %d", code)
	}
}

func TestJournalAppendAndRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "verdicts.jsonl")
	j, err := OpenJournal(path, 200)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(rec{Kind: "event", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != 20 {
		t.Errorf("records = %d, want 20", j.Records())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotation happened: %v", err)
	}
	if len(live) > 200+40 {
		t.Errorf("live journal grew to %d bytes despite the 200-byte limit", len(live))
	}
	total := strings.Count(string(live), "\n") + strings.Count(string(rotated), "\n")
	// Only the newest rotation is kept, so at least the records that
	// fit in two files survive; every surviving line must be valid.
	if total == 0 {
		t.Fatal("no journal lines survived")
	}
	for _, line := range strings.Split(strings.TrimSpace(string(live)), "\n") {
		if !strings.HasPrefix(line, `{"kind":"event"`) {
			t.Errorf("malformed journal line %q", line)
		}
	}
	if err := j.Append(rec{}); err == nil {
		t.Error("append after Close succeeded")
	}
}

func TestJournalAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(map[string]int{"a": 1})
	j.Close()
	j2, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(map[string]int{"a": 2})
	j2.Close()
	data, _ := os.ReadFile(path)
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Errorf("journal has %d lines after reopen, want 2", got)
	}
}

// TestJournalTornTailRepair kills a journal mid-line (the way a
// SIGKILLed daemon would) and proves the next open truncates back to
// the last complete line, leaving every surviving line parseable and
// new appends landing on a clean boundary.
func TestJournalTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(map[string]int{"n": 1})
	j.Append(map[string]int{"n": 2})
	j.Close()

	// Simulate a crash mid-Append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"n":3,"truncated`)
	f.Close()

	j2, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Repaired() == 0 {
		t.Fatal("torn tail was not repaired")
	}
	if err := j2.Append(map[string]int{"n": 4}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines after repair, want 3:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var m map[string]int
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d unparseable after repair: %q: %v", i, line, err)
		}
	}
	if !strings.Contains(lines[2], `"n":4`) {
		t.Errorf("post-repair append = %q, want n=4", lines[2])
	}

	// A file that is nothing but one torn line must be cut to empty.
	lone := filepath.Join(dir, "lone.jsonl")
	if err := os.WriteFile(lone, []byte(`{"half`), 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(lone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Repaired() != 6 {
		t.Errorf("lone torn line: repaired %d bytes, want 6", j3.Repaired())
	}
	j3.Close()
}

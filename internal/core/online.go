package core

import (
	"fmt"
	"math"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// OnlineEvent is one incremental oracle notification: a violation
// opening or closing, delivered a bounded number of steps after the
// fact (the rule's temporal horizon).
type OnlineEvent struct {
	// Rule is the reporting rule.
	Rule string
	// Kind is speclang.ViolationBegin or speclang.ViolationEnd.
	Kind speclang.EventKind
	// Time is the violation start (Begin) or exclusive end (End).
	Time time.Duration
	// Violation is the completed record, set on ViolationEnd.
	Violation speclang.Violation
	// Class is the triage classification, set on ViolationEnd.
	Class Class
}

// OnlineMonitor is the runtime variant of the bolt-on oracle: CAN
// frames are pushed as they are captured and violation events come back
// incrementally with bounded memory and latency. The paper ran offline
// for flexibility but notes "there is no fundamental reason the
// monitoring could not be done at runtime"; this is that path, and it
// produces byte-for-byte the same violations as CheckLog.
type OnlineMonitor struct {
	db     *sigdb.DB
	period time.Duration
	triage map[string]Triage
	sc     *speclang.StreamChecker

	names []string
	index map[string]int

	latched []float64
	updated []bool

	pending  int           // the step currently accumulating frames
	lastTime time.Duration // time of the newest accepted frame
	sawFrame bool
	closed   bool
}

// Online creates a streaming session of this monitor over the given
// signal database.
func (m *Monitor) Online(db *sigdb.DB) (*OnlineMonitor, error) {
	names := db.SignalNames()
	sc, err := m.rules.NewStreamChecker(names, m.period, speclang.EvalOptions{DeltaMode: m.mode})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	o := &OnlineMonitor{
		db:      db,
		period:  m.period,
		triage:  m.triage,
		sc:      sc,
		names:   names,
		index:   make(map[string]int, len(names)),
		latched: make([]float64, len(names)),
		updated: make([]bool, len(names)),
	}
	for i, n := range names {
		o.index[n] = i
		o.latched[i] = math.NaN() // not yet valid, as offline alignment
	}
	return o, nil
}

// PushFrame feeds one captured frame. Frames must arrive in
// non-decreasing time order: a frame whose timestamp equals the
// previous frame's is accepted (broadcast buses deliver many frames in
// the same capture instant), while a frame with a strictly earlier
// timestamp is rejected with an error. A rejection leaves the monitor's
// state untouched — no step is finalized and no signal latches — so the
// caller may drop the offending frame and keep pushing; the session
// remains valid. Frames with IDs outside the database are ignored, as a
// passive listener ignores foreign traffic.
func (o *OnlineMonitor) PushFrame(f can.Frame) ([]OnlineEvent, error) {
	if o.closed {
		return nil, fmt.Errorf("core: PushFrame after Close")
	}
	if o.sawFrame && f.Time < o.lastTime {
		return nil, fmt.Errorf("core: out-of-order frame at %v after %v", f.Time, o.lastTime)
	}
	def, ok := o.db.Frame(f.ID)
	if !ok {
		return nil, nil
	}
	o.sawFrame = true
	o.lastTime = f.Time

	// The frame belongs to the step whose window (stepTime-period,
	// stepTime] contains its timestamp.
	k := int((f.Time + o.period - 1) / o.period)

	// Finalize every step strictly before k.
	var events []OnlineEvent
	for o.pending < k {
		evs, err := o.finalizeStep()
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}

	values, err := o.db.Unpack(f.ID, f.Data)
	if err != nil {
		return nil, err
	}
	for _, sig := range def.Signals {
		idx := o.index[sig.Name]
		o.latched[idx] = values[sig.Name]
		o.updated[idx] = true
	}
	return events, nil
}

// finalizeStep pushes the pending step into the checker.
func (o *OnlineMonitor) finalizeStep() ([]OnlineEvent, error) {
	evs, err := o.sc.Step(o.latched, o.updated)
	if err != nil {
		return nil, err
	}
	for i := range o.updated {
		o.updated[i] = false
	}
	o.pending++
	return o.convert(evs), nil
}

// Close finalizes the trace — steps up to the last frame's grid slot,
// exactly the steps the offline alignment evaluates — drains every
// rule, and returns the remaining events.
func (o *OnlineMonitor) Close() ([]OnlineEvent, error) {
	if o.closed {
		return nil, fmt.Errorf("core: Close called twice")
	}
	var events []OnlineEvent
	last := int(o.lastTime / o.period) // floor: trailing partial-step frames fall outside the grid
	for o.pending <= last {
		evs, err := o.finalizeStep()
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}
	o.closed = true
	evs, err := o.sc.Finish()
	if err != nil {
		return nil, err
	}
	return append(events, o.convert(evs)...), nil
}

func (o *OnlineMonitor) convert(evs []speclang.Event) []OnlineEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]OnlineEvent, len(evs))
	for i, e := range evs {
		oe := OnlineEvent{Rule: e.Rule, Kind: e.Kind, Time: e.Time, Violation: e.Violation}
		if e.Kind == speclang.ViolationEnd {
			oe.Class = o.triage[e.Rule].Classify(e.Violation)
		}
		out[i] = oe
	}
	return out
}

package core

import (
	"fmt"
	"math"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// OnlineEvent is one incremental oracle notification: a violation
// opening or closing, delivered a bounded number of steps after the
// fact (the rule's temporal horizon).
type OnlineEvent struct {
	// Rule is the reporting rule.
	Rule string
	// Kind is speclang.ViolationBegin or speclang.ViolationEnd.
	Kind speclang.EventKind
	// Time is the violation start (Begin) or exclusive end (End).
	Time time.Duration
	// Violation is the completed record, set on ViolationEnd.
	Violation speclang.Violation
	// Class is the triage classification, set on ViolationEnd.
	Class Class
}

// OnlineMonitor is the runtime variant of the bolt-on oracle: CAN
// frames are pushed as they are captured and violation events come back
// incrementally with bounded memory and latency. The paper ran offline
// for flexibility but notes "there is no fundamental reason the
// monitoring could not be done at runtime"; this is that path, and it
// produces byte-for-byte the same violations as CheckLog.
//
// The steady-state frame→verdict path is allocation-free: frames
// decode through a compiled sigdb.DecodePlan straight into the latched
// value vector, and events are assembled in a scratch buffer reused
// across calls.
type OnlineMonitor struct {
	plan   *sigdb.DecodePlan
	period time.Duration
	triage map[string]Triage
	sc     *speclang.StreamChecker

	names []string

	latched []float64
	updated []bool

	// events is the scratch buffer returned by PushFrame, PushFrames
	// and Close; see the event-lifetime contract on PushFrame.
	events []OnlineEvent

	pending  int           // the step currently accumulating frames
	lastTime time.Duration // time of the newest accepted frame
	sawFrame bool
	closed   bool

	// met, when non-nil, receives frame/step/event accounting; see
	// Instrument. All updates are atomic counter bumps, so the
	// allocation-free contract above holds with metrics enabled.
	met *Metrics

	// Stage-timing state (see stagetiming.go): timing is armed per
	// sampled batch by BeginStageTiming; the accumulators attribute the
	// batch's wall time to decode vs evaluation.
	timing      bool
	decodeNanos int64
	evalNanos   int64
	ruleNanos   []int64
}

// Online creates a streaming session of this monitor over the given
// signal database.
func (m *Monitor) Online(db *sigdb.DB) (*OnlineMonitor, error) {
	names := db.SignalNames()
	sc, err := m.rules.NewStreamChecker(names, m.period, speclang.EvalOptions{DeltaMode: m.mode})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	plan, err := db.CompilePlan(names)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	o := &OnlineMonitor{
		plan:    plan,
		period:  m.period,
		triage:  m.triage,
		sc:      sc,
		names:   names,
		latched: make([]float64, len(names)),
		updated: make([]bool, len(names)),
	}
	for i := range o.latched {
		o.latched[i] = math.NaN() // not yet valid, as offline alignment
	}
	return o, nil
}

// PushFrame feeds one captured frame. Frames must arrive in
// non-decreasing time order: a frame whose timestamp equals the
// previous frame's is accepted (broadcast buses deliver many frames in
// the same capture instant), while a frame with a strictly earlier
// timestamp is rejected with an error. A rejection leaves the monitor's
// state untouched — no step is finalized and no signal latches — so the
// caller may drop the offending frame and keep pushing; the session
// remains valid. Frames with IDs outside the database are ignored, as a
// passive listener ignores foreign traffic.
//
// Event lifetime: the returned slice is a scratch buffer owned by the
// monitor and is valid only until the next PushFrame, PushFrames or
// Close call. Callers that retain events across pushes must copy the
// elements out (appending them to another slice suffices).
func (o *OnlineMonitor) PushFrame(f can.Frame) ([]OnlineEvent, error) {
	if o.closed {
		return nil, fmt.Errorf("core: PushFrame after Close")
	}
	if o.sawFrame && f.Time < o.lastTime {
		return nil, fmt.Errorf("core: out-of-order frame at %v after %v", f.Time, o.lastTime)
	}
	o.events = o.events[:0]
	if err := o.push(f); err != nil {
		return nil, err
	}
	return o.events, nil
}

// PushFrames feeds a whole batch of captured frames in one call,
// amortizing per-call overhead — the fleet ingest path hands entire
// wire batches here. Unlike PushFrame, a frame whose timestamp
// regresses is skipped and counted in rejected rather than failing the
// batch, mirroring the drop-and-continue recovery the PushFrame
// contract allows; the monitor's state is untouched by skipped frames.
// The returned events cover the whole batch in stream order and obey
// the same scratch-buffer lifetime as PushFrame.
func (o *OnlineMonitor) PushFrames(frames []can.Frame) (events []OnlineEvent, rejected int, err error) {
	if o.closed {
		return nil, 0, fmt.Errorf("core: PushFrames after Close")
	}
	o.events = o.events[:0]
	for _, f := range frames {
		if o.sawFrame && f.Time < o.lastTime {
			rejected++
			if o.met != nil {
				o.met.framesStale.Inc()
			}
			continue
		}
		if err := o.push(f); err != nil {
			return nil, rejected, err
		}
	}
	return o.events, rejected, nil
}

// push feeds one in-order frame, appending decided events to the
// scratch buffer.
func (o *OnlineMonitor) push(f can.Frame) error {
	dst, ok := o.plan.Dst(f.ID)
	if !ok {
		return nil
	}
	if o.met != nil {
		o.met.framesDecoded.Inc()
	}
	o.sawFrame = true
	o.lastTime = f.Time

	// The frame belongs to the step whose window (stepTime-period,
	// stepTime] contains its timestamp.
	k := int((f.Time + o.period - 1) / o.period)

	// Finalize every step strictly before k.
	for o.pending < k {
		if err := o.finalizeStep(); err != nil {
			return err
		}
	}

	// Decode straight into the latched vector: no map, no hashing.
	if o.timing {
		t0 := time.Now()
		_, err := o.plan.UnpackInto(f.ID, f.Data, o.latched)
		o.decodeNanos += int64(time.Since(t0))
		if err != nil {
			return err
		}
	} else if _, err := o.plan.UnpackInto(f.ID, f.Data, o.latched); err != nil {
		return err
	}
	for _, di := range dst {
		o.updated[di] = true
	}
	return nil
}

// finalizeStep pushes the pending step into the checker and converts
// its events into the scratch buffer.
func (o *OnlineMonitor) finalizeStep() error {
	var t0 time.Time
	timed := o.met != nil || o.timing
	if timed {
		t0 = time.Now()
	}
	evs, err := o.sc.Step(o.latched, o.updated)
	if timed {
		d := time.Since(t0)
		if o.met != nil {
			o.met.stepLatency.Observe(d.Seconds())
			o.met.steps.Inc()
		}
		if o.timing {
			o.evalNanos += int64(d)
		}
	}
	if err != nil {
		return err
	}
	for i := range o.updated {
		o.updated[i] = false
	}
	o.pending++
	o.convert(evs)
	return nil
}

// Close finalizes the trace — steps up to the last frame's grid slot,
// exactly the steps the offline alignment evaluates — drains every
// rule, and returns the remaining events. The returned slice obeys the
// same scratch-buffer lifetime as PushFrame (no further calls can
// invalidate it, but it shares storage with previously returned
// slices).
func (o *OnlineMonitor) Close() ([]OnlineEvent, error) {
	if o.closed {
		return nil, fmt.Errorf("core: Close called twice")
	}
	o.events = o.events[:0]
	last := int(o.lastTime / o.period) // floor: trailing partial-step frames fall outside the grid
	for o.pending <= last {
		if err := o.finalizeStep(); err != nil {
			return nil, err
		}
	}
	o.closed = true
	evs, err := o.sc.Finish()
	if err != nil {
		return nil, err
	}
	o.convert(evs)
	return o.events, nil
}

// convert appends checker events to the monitor's scratch buffer,
// attaching triage classes to closed violations.
func (o *OnlineMonitor) convert(evs []speclang.Event) {
	for _, e := range evs {
		oe := OnlineEvent{Rule: e.Rule, Kind: e.Kind, Time: e.Time, Violation: e.Violation}
		if e.Kind == speclang.ViolationEnd {
			oe.Class = o.triage[e.Rule].Classify(e.Violation)
		}
		if o.met != nil {
			o.met.events.Inc()
			if e.Kind == speclang.ViolationEnd {
				if i, ok := o.met.ruleIndex[e.Rule]; ok {
					o.met.ruleViolations[i].Inc()
				}
			}
		}
		o.events = append(o.events, oe)
	}
}

// Package core is the monitor engine: the paper's primary contribution.
//
// It binds a compiled rule set to recorded network traffic and renders
// partial-oracle verdicts. The engine is strictly passive: its entire
// view of the system under test is a CAN frame log plus the signal
// database needed to decode it. It never imports the plant, the feature
// under test, or the testbench.
//
// Beyond plain evaluation the engine implements the practical machinery
// the paper identifies as necessary for CPS test oracles:
//
//   - multi-rate sampling handling (update-aware differences so slow
//     frames don't read as constant — Section V.C.1),
//   - warm-up after discrete value jumps and mode changes (via the
//     specification language's warmup clauses — Section V.C.2),
//   - violation triage by intensity and duration, to separate real
//     safety problems from overly-strict rules (Section V.A),
//   - intent approximation with tunable amplitude/duration thresholds
//     (Section V.A).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

// Verdict is the per-rule oracle outcome, matching the paper's Table I
// notation: S (satisfied by the trace) or V (violated).
type Verdict int

const (
	// Satisfied means no violation interval was found.
	Satisfied Verdict = iota + 1
	// Violated means at least one violation interval was found.
	Violated
)

// String returns "S" or "V".
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "S"
	case Violated:
		return "V"
	default:
		return "?"
	}
}

// MarshalJSON encodes the verdict in the paper's notation.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON decodes "S" or "V".
func (v *Verdict) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"S"`:
		*v = Satisfied
	case `"V"`:
		*v = Violated
	default:
		return fmt.Errorf("core: unknown verdict %s", data)
	}
	return nil
}

// Class is the triage classification of one violation.
type Class int

const (
	// ClassReal is a violation that triage could not explain away: a
	// candidate real safety problem.
	ClassReal Class = iota + 1
	// ClassTransient is an extremely short violation (a cycle blip),
	// which the paper notes "may be tolerated in an operational
	// vehicle" but is worth recording as a latent-bug clue.
	ClassTransient
	// ClassNegligible is a violation whose peak severity is below the
	// rule's negligible threshold — the "negligibly sized increases"
	// of Section IV.A, evidence of an overly strict rule rather than
	// of an unsafe system.
	ClassNegligible
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassReal:
		return "real"
	case ClassTransient:
		return "transient"
	case ClassNegligible:
		return "negligible"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the class name.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON decodes a class name.
func (c *Class) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"real"`:
		*c = ClassReal
	case `"transient"`:
		*c = ClassTransient
	case `"negligible"`:
		*c = ClassNegligible
	default:
		return fmt.Errorf("core: unknown class %s", data)
	}
	return nil
}

// Triage holds the per-rule thresholds used to classify violations.
type Triage struct {
	// TransientMax is the maximum duration of a violation classified
	// as transient. Zero disables the transient class.
	TransientMax time.Duration
	// NegligiblePeak is the severity magnitude below which a violation
	// is classified negligible. Zero disables the negligible class
	// (sensible for rules without a severity clause).
	NegligiblePeak float64
}

// Classify applies the thresholds to one violation.
func (tr Triage) Classify(v speclang.Violation) Class {
	if tr.TransientMax > 0 && v.Duration() <= tr.TransientMax {
		return ClassTransient
	}
	if tr.NegligiblePeak > 0 && v.Peak < tr.NegligiblePeak {
		return ClassNegligible
	}
	return ClassReal
}

// Config assembles a monitor.
type Config struct {
	// Rules is the compiled rule set; required.
	Rules *speclang.RuleSet
	// Period is the evaluation grid step; defaults to the fast frame
	// period of the vehicle network.
	Period time.Duration
	// DeltaMode selects multi-rate difference semantics; defaults to
	// update-aware (the paper's fix).
	DeltaMode speclang.DeltaMode
	// Triage maps rule names to triage thresholds. Rules without an
	// entry classify every violation as real.
	Triage map[string]Triage
	// EvalParallelism bounds how many rules CheckGrid evaluates
	// concurrently. Rules are independent over a read-only grid, so
	// the report is identical at any level; 0 means GOMAXPROCS, 1
	// forces sequential evaluation.
	EvalParallelism int
}

// Monitor is a bolt-on passive test oracle.
//
// A Monitor is safe for concurrent use: CheckTrace/CheckGrid/CheckLog
// may run from many goroutines over one instance (the campaign drivers
// and the recheck shards do), and each call may itself fan rules out
// over a worker pool per Config.EvalParallelism.
type Monitor struct {
	rules  *speclang.RuleSet
	period time.Duration
	mode   speclang.DeltaMode
	triage map[string]Triage
	par    int

	// scratch pools speclang evaluation buffers per worker; see
	// speclang.Scratch for the lifetime contract.
	scratch sync.Pool
}

// New builds a monitor from the configuration.
func New(cfg Config) (*Monitor, error) {
	if cfg.Rules == nil {
		return nil, errors.New("core: config requires Rules")
	}
	if cfg.Period == 0 {
		cfg.Period = sigdb.FastPeriod
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("core: non-positive period %v", cfg.Period)
	}
	if cfg.Triage == nil {
		cfg.Triage = make(map[string]Triage)
	}
	if cfg.EvalParallelism < 0 {
		return nil, fmt.Errorf("core: negative eval parallelism %d", cfg.EvalParallelism)
	}
	m := &Monitor{
		rules:  cfg.Rules,
		period: cfg.Period,
		mode:   cfg.DeltaMode,
		triage: cfg.Triage,
		par:    cfg.EvalParallelism,
	}
	m.scratch.New = func() any { return speclang.NewScratch() }
	return m, nil
}

// RuleReport is the oracle outcome for one rule over one trace.
type RuleReport struct {
	// Result is the raw evaluation result.
	Result speclang.RuleResult
	// Verdict is S or V.
	Verdict Verdict
	// Classes classifies each violation in Result.Violations.
	Classes []Class
}

// Name returns the rule name.
func (r RuleReport) Name() string { return r.Result.Name }

// Count returns the number of violations with the given class.
func (r RuleReport) Count(c Class) int {
	n := 0
	for _, cl := range r.Classes {
		if cl == c {
			n++
		}
	}
	return n
}

// RealViolations reports whether any violation survived triage.
func (r RuleReport) RealViolations() bool { return r.Count(ClassReal) > 0 }

// Vacuous reports whether the rule passed without ever being exercised
// — an "S" that provides no safety-case evidence because the test never
// drove the system into the rule's antecedent.
func (r RuleReport) Vacuous() bool { return r.Result.Vacuous() }

// Report is the oracle outcome for a full trace.
type Report struct {
	// Rules holds one report per rule, in rule-set order.
	Rules []RuleReport
	// Steps is the number of evaluated grid steps.
	Steps int
	// Period is the evaluation grid step size.
	Period time.Duration
}

// Rule returns the report for the named rule.
func (r *Report) Rule(name string) (RuleReport, bool) {
	for _, rr := range r.Rules {
		if rr.Name() == name {
			return rr, true
		}
	}
	return RuleReport{}, false
}

// Verdicts returns the per-rule verdicts in rule order, e.g. for a
// Table I row.
func (r *Report) Verdicts() []Verdict {
	out := make([]Verdict, len(r.Rules))
	for i, rr := range r.Rules {
		out[i] = rr.Verdict
	}
	return out
}

// AnyViolated reports whether any rule was violated.
func (r *Report) AnyViolated() bool {
	for _, rr := range r.Rules {
		if rr.Verdict == Violated {
			return true
		}
	}
	return false
}

// AnyReal reports whether any rule has a violation that survived
// triage.
func (r *Report) AnyReal() bool {
	for _, rr := range r.Rules {
		if rr.RealViolations() {
			return true
		}
	}
	return false
}

// CheckTrace evaluates every rule over a recorded trace.
func (m *Monitor) CheckTrace(tr *trace.Trace) (*Report, error) {
	grid, err := trace.Align(tr, m.period)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return m.CheckGrid(grid)
}

// CheckGrid evaluates every rule over an already-aligned grid. Rules
// are independent, so with Config.EvalParallelism above one they are
// fanned over a worker pool; results are assembled in rule-set order
// (and errors surfaced in rule-set order), so the report is identical
// at any parallelism level.
func (m *Monitor) CheckGrid(grid *trace.Grid) (*Report, error) {
	rules := m.rules.Rules()
	workers := m.par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rules) {
		workers = len(rules)
	}

	results := make([]speclang.RuleResult, len(rules))
	errs := make([]error, len(rules))
	if workers <= 1 {
		scr := m.scratch.Get().(*speclang.Scratch)
		for i, r := range rules {
			results[i], errs[i] = r.Eval(grid, speclang.EvalOptions{DeltaMode: m.mode, Scratch: scr})
			if errs[i] != nil {
				break
			}
		}
		m.scratch.Put(scr)
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scr := m.scratch.Get().(*speclang.Scratch)
				defer m.scratch.Put(scr)
				for i := range next {
					results[i], errs[i] = rules[i].Eval(grid, speclang.EvalOptions{DeltaMode: m.mode, Scratch: scr})
				}
			}()
		}
		for i := range rules {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	rep := &Report{Steps: grid.NumSteps(), Period: grid.StepPeriod()}
	for _, res := range results {
		rr := RuleReport{Result: res, Verdict: Satisfied}
		if res.Violated() {
			rr.Verdict = Violated
		}
		tri := m.triage[res.Name]
		rr.Classes = make([]Class, len(res.Violations))
		for i, v := range res.Violations {
			rr.Classes[i] = tri.Classify(v)
		}
		rep.Rules = append(rep.Rules, rr)
	}
	return rep, nil
}

// CheckLog decodes a CAN frame log with the signal database and
// evaluates every rule over it. This is the complete bolt-on pipeline:
// bus capture in, verdicts out.
func (m *Monitor) CheckLog(log *can.Log, db *sigdb.DB) (*Report, error) {
	tr, err := trace.FromCANLog(log, db)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return m.CheckTrace(tr)
}

package core

import (
	"math"
	"time"
)

// IntentConfig tunes the acceleration-intent estimator.
//
// The paper used "an increase in FSRACC requested torque as an
// estimation for the FSRACC intending to accelerate the vehicle" and
// noted that real torque requests "can be differentiated by factors
// such as duration and amplitude of the increase". These two knobs are
// exactly that tradeoff; the intent ablation sweeps them against the
// feature's ground truth.
type IntentConfig struct {
	// MinRate is the minimum torque increase rate treated as intent,
	// in N·m per second.
	MinRate float64
	// MinDuration is how long the increase must be sustained before it
	// is treated as intent.
	MinDuration time.Duration
}

// EstimateAccelIntent derives a per-step "the feature intends to
// accelerate" estimate from the observable RequestedTorque stream.
// torque holds the held values on the evaluation grid, updated the
// per-step freshness bits, and period the grid step.
//
// A step is marked once the update-aware torque increase rate has been
// at least MinRate for at least MinDuration.
func EstimateAccelIntent(torque []float64, updated []bool, period time.Duration, cfg IntentConfig) []bool {
	n := len(torque)
	out := make([]bool, n)
	if n == 0 {
		return out
	}
	minSteps := int(cfg.MinDuration / period)
	if minSteps < 1 {
		minSteps = 1
	}
	// Update-aware increase rate, mirroring speclang's rate() builtin.
	increasing := make([]bool, n)
	prevVal, curVal := math.NaN(), math.NaN()
	prevStep, curStep := -1, -1
	for t := 0; t < n; t++ {
		if updated[t] {
			prevVal, prevStep = curVal, curStep
			curVal, curStep = torque[t], t
		}
		if prevStep >= 0 && curStep > prevStep {
			gap := float64(curStep-prevStep) * period.Seconds()
			rate := (curVal - prevVal) / gap
			increasing[t] = rate >= cfg.MinRate
		}
	}
	run := 0
	for t := 0; t < n; t++ {
		if increasing[t] {
			run++
		} else {
			run = 0
		}
		if run >= minSteps {
			// Mark the whole sustained run, including the steps that
			// were waiting out the duration threshold.
			for k := t - run + 1; k <= t; k++ {
				out[k] = true
			}
		}
	}
	return out
}

// Confusion is a binary confusion matrix of estimated intent against
// ground truth.
type Confusion struct {
	TP, FP, FN, TN int
}

// CompareIntent scores a per-step estimate against per-step ground
// truth. The slices must have equal length.
func CompareIntent(estimate, truth []bool) Confusion {
	var c Confusion
	for i := range estimate {
		switch {
		case estimate[i] && truth[i]:
			c.TP++
		case estimate[i] && !truth[i]:
			c.FP++
		case !estimate[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// FalsePositiveRate returns FP / (FP + TN), or 0 when undefined.
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FalseNegativeRate returns FN / (FN + TP), or 0 when undefined.
// The paper's safety-case discussion wants this at (or near) zero: an
// estimator that misses real intent weakens the oracle's evidence.
func (c Confusion) FalseNegativeRate() float64 {
	if c.FN+c.TP == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.FN+c.TP)
}

package core

// Stage timing: per-batch decode/eval attribution for the flight
// recorder. The fleet ingest path samples batches; for a sampled batch
// it brackets the PushFrames call with BeginStageTiming/EndStageTiming
// and reads back how the batch's wall time split between frame decode
// and rule evaluation, plus a per-rule evaluation breakdown.
//
// The design keeps core free of any flight-recorder dependency (the
// engine stays a pure library; the caller owns where the numbers go)
// and keeps the unsampled hot path untouched: timing is a plain bool
// checked per frame, and Begin/End allocate nothing, so the pinned
// zero-allocation PushFrame contract holds with timing both off and on.

// EnableStageTiming arms per-batch stage attribution on this session.
// nRules sizes the per-rule evaluation accumulator and must match the
// rule-set order the stream checker evaluates (the same contract as
// NewMetrics). Call once at session setup, before the first push;
// timing stays dormant (and free beyond one predicted branch per
// frame) until BeginStageTiming.
func (o *OnlineMonitor) EnableStageTiming(nRules int) {
	o.ruleNanos = make([]int64, nRules)
	o.installObserver()
}

// BeginStageTiming starts attribution for the next batch: subsequent
// pushes accumulate decode and evaluation time until EndStageTiming.
// Allocation-free. A session without EnableStageTiming still
// accumulates the decode/eval split, just no per-rule breakdown.
func (o *OnlineMonitor) BeginStageTiming() {
	o.timing = true
	o.decodeNanos = 0
	o.evalNanos = 0
	for i := range o.ruleNanos {
		o.ruleNanos[i] = 0
	}
}

// EndStageTiming stops attribution and returns the batch's accumulated
// decode and evaluation nanoseconds plus the per-rule evaluation
// breakdown (nil unless EnableStageTiming was called). The returned
// slice is the session's internal accumulator, valid only until the
// next BeginStageTiming — copy out values that must survive.
func (o *OnlineMonitor) EndStageTiming() (decodeNanos, evalNanos int64, perRule []int64) {
	o.timing = false
	return o.decodeNanos, o.evalNanos, o.ruleNanos
}

// installObserver wires the stream checker's per-rule step observer to
// whatever consumers are active: the metrics histograms, the stage
//-timing accumulator, both, or neither (observer removed, so the
// checker skips per-rule clock reads entirely).
func (o *OnlineMonitor) installObserver() {
	m := o.met
	if m == nil && o.ruleNanos == nil {
		o.sc.Observe(nil)
		return
	}
	o.sc.Observe(func(rule int, nanos int64) {
		if m != nil && rule < len(m.ruleStep) {
			m.ruleStep[rule].Observe(float64(nanos) / 1e9)
		}
		if o.timing && rule < len(o.ruleNanos) {
			o.ruleNanos[rule] += nanos
		}
	})
}

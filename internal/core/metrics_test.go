package core

import (
	"testing"

	"cpsmon/internal/can"
	"cpsmon/internal/obs"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// TestOnlinePushFrameAllocFreeInstrumented pins that attaching metrics
// does not regress the hot path's zero-allocation contract: counters,
// the step-latency histogram and the per-rule step observer all update
// atomically with no heap traffic.
func TestOnlinePushFrameAllocFreeInstrumented(t *testing.T) {
	log := buildLog(t, 4000, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	reg := obs.NewRegistry()
	om.Instrument(NewMetrics(reg, "strict", m.RuleNames()))
	frames := log.Frames()
	warm := 1000
	if len(frames) < warm+1500 {
		t.Fatalf("fixture too short: %d frames", len(frames))
	}
	for _, f := range frames[:warm] {
		if _, err := om.PushFrame(f); err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
	}
	next := warm
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := om.PushFrame(frames[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("instrumented PushFrame allocates %.2f times per frame, want 0", allocs)
	}
}

// TestOnlineMetricsCounts checks the instrumented session's counters
// against ground truth computed from the same trace: frames decoded,
// steps finalized, events emitted and per-rule violation counts.
func TestOnlineMetricsCounts(t *testing.T) {
	log := buildLog(t, 400, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		if tick >= 100 && tick < 160 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	reg := obs.NewRegistry()
	met := NewMetrics(reg, "strict", m.RuleNames())
	om.Instrument(met)

	var events []OnlineEvent
	for _, f := range log.Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		events = append(events, evs...)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	events = append(events, evs...)

	if got, want := met.framesDecoded.Value(), uint64(len(log.Frames())); got != want {
		t.Errorf("frames decoded = %d, want %d", got, want)
	}
	if got, want := met.events.Value(), uint64(len(events)); got != want || want == 0 {
		t.Errorf("events = %d, want %d (nonzero)", got, want)
	}
	wantViol := map[string]uint64{}
	for _, e := range events {
		if e.Kind == speclang.ViolationEnd {
			wantViol[e.Rule]++
		}
	}
	if len(wantViol) == 0 {
		t.Fatal("fixture produced no violations")
	}
	for rule, want := range wantViol {
		i, ok := met.ruleIndex[rule]
		if !ok {
			t.Fatalf("rule %q missing from metrics index", rule)
		}
		if got := met.ruleViolations[i].Value(); got != want {
			t.Errorf("violations[%s] = %d, want %d", rule, got, want)
		}
	}
	if met.steps.Value() == 0 || met.stepLatency.Count() != met.steps.Value() {
		t.Errorf("steps = %d, step latency count = %d; want equal and nonzero",
			met.steps.Value(), met.stepLatency.Count())
	}
	// Per-rule step observers fire once per rule per step.
	for i := range met.ruleStep {
		if got := met.ruleStep[i].Count(); got != met.steps.Value() {
			t.Errorf("rule %d step observations = %d, want %d", i, got, met.steps.Value())
		}
	}
}

// TestOnlineStaleFramesCounted checks the PushFrames skip path.
func TestOnlineStaleFramesCounted(t *testing.T) {
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	reg := obs.NewRegistry()
	met := NewMetrics(reg, "strict", m.RuleNames())
	om.Instrument(met)
	log := buildLog(t, 20, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
	})
	frames := log.Frames()
	// Append two copies of an early frame: both regress in time.
	stale := append(append([]can.Frame(nil), frames...), frames[0], frames[1])
	_, rejected, err := om.PushFrames(stale)
	if err != nil {
		t.Fatalf("PushFrames: %v", err)
	}
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2", rejected)
	}
	if got := met.framesStale.Value(); got != 2 {
		t.Errorf("stale counter = %d, want 2", got)
	}
}

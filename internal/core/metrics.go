package core

import (
	"cpsmon/internal/obs"
)

// stepLatencyBuckets spans 100ns to ~1.6s in powers of four: a single
// checker step is typically sub-microsecond, but a drain step over a
// long queue can stall behind the scheduler.
func stepLatencyBuckets() []float64 { return obs.ExpBuckets(100e-9, 4, 12) }

// RuleNames returns the monitor's rule names in rule-set order — the
// order the stream checker evaluates and the order NewMetrics expects.
func (m *Monitor) RuleNames() []string {
	var names []string
	for _, r := range m.rules.Rules() {
		names = append(names, r.Name)
	}
	return names
}

// Metrics instruments the streaming monitor on a shared obs registry:
// frame decode and staleness counters, event emission, whole-checker
// step latency, and per-rule step-latency histograms plus violation
// counters keyed by rule index (labelled with the rule name). One
// Metrics is built per (registry, spec) pair and shared by every
// OnlineMonitor evaluating that spec — the counters are atomic, so
// concurrent sessions aggregate safely.
type Metrics struct {
	framesDecoded *obs.Counter
	framesStale   *obs.Counter
	events        *obs.Counter
	steps         *obs.Counter
	stepLatency   *obs.Histogram

	ruleStep       []*obs.Histogram
	ruleViolations []*obs.Counter
	ruleIndex      map[string]int
}

// NewMetrics registers the monitor metric families on reg. spec labels
// every series (the fleet server runs one compiled monitor per spec
// selection); ruleNames must be in rule-set order — the same order the
// stream checker evaluates, so rule index i on the step observer and
// ruleNames[i] name the same rule. A nil registry returns nil, which
// Instrument treats as "not instrumented".
func NewMetrics(reg *obs.Registry, spec string, ruleNames []string) *Metrics {
	if reg == nil {
		return nil
	}
	specLabel := obs.Label{Name: "spec", Value: spec}
	m := &Metrics{
		framesDecoded: reg.Counter("cpsmon_monitor_frames_decoded_total",
			"Frames decoded into the latched signal vector.", specLabel),
		framesStale: reg.Counter("cpsmon_monitor_frames_stale_total",
			"Frames skipped by PushFrames for regressing in time.", specLabel),
		events: reg.Counter("cpsmon_monitor_events_total",
			"Oracle events emitted (violation begins and ends).", specLabel),
		steps: reg.Counter("cpsmon_monitor_steps_total",
			"Evaluation grid steps finalized.", specLabel),
		stepLatency: reg.Histogram("cpsmon_monitor_step_latency_seconds",
			"Whole-checker latency of one finalized grid step.", stepLatencyBuckets(), specLabel),
		ruleIndex: make(map[string]int, len(ruleNames)),
	}
	for i, name := range ruleNames {
		ruleLabel := obs.Label{Name: "rule", Value: name}
		m.ruleStep = append(m.ruleStep, reg.Histogram("cpsmon_monitor_rule_step_latency_seconds",
			"Per-rule incremental evaluation latency per step.", stepLatencyBuckets(), specLabel, ruleLabel))
		m.ruleViolations = append(m.ruleViolations, reg.Counter("cpsmon_monitor_rule_violations_total",
			"Closed violation intervals per rule.", specLabel, ruleLabel))
		m.ruleIndex[name] = i
	}
	return m
}

// Instrument attaches the metrics to this monitor session: frame,
// step and event accounting plus the per-rule step-latency observer.
// Pass nil to detach. Instrument must be called before the first push;
// the updates it enables are allocation-free, preserving the hot
// path's zero-allocation contract.
func (o *OnlineMonitor) Instrument(m *Metrics) {
	o.met = m
	o.installObserver()
}

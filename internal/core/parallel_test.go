// Parallel CheckGrid differential tests live in an external test
// package so they can compile the real strict and relaxed rule sets
// (internal/rules imports core, so the in-package tests cannot).
package core_test

import (
	"reflect"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/trace"
)

// parallelFixtureLog synthesizes a bus capture with a mid-trace fault
// burst so several rules actually violate — a differential test over
// an all-satisfied trace would prove very little.
func parallelFixtureLog(t testing.TB, ticks int) *can.Log {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 22+3*float64(tick%7))
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 1)
		_ = bus.Set(sigdb.SigTargetRange, float64(45-(tick%30)))
		_ = bus.Set(sigdb.SigSelHeadway, 2)
		if tick >= ticks/3 && tick < ticks/2 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
			_ = bus.Set(sigdb.SigRequestedTorque, 120)
			_ = bus.Set(sigdb.SigTorqueRequested, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
			_ = bus.Set(sigdb.SigRequestedTorque, 0)
			_ = bus.Set(sigdb.SigTorqueRequested, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	return bus.Log()
}

// TestCheckGridParallelDifferential pins the concurrent rule fan-out
// to the sequential engine: for the strict and the relaxed rule sets,
// CheckGrid at parallelism 2, 4 and 8 must reproduce the sequential
// report exactly — rule order, verdicts, violations, triage classes.
func TestCheckGridParallelDifferential(t *testing.T) {
	db := sigdb.Vehicle()
	log := parallelFixtureLog(t, 2000)
	tr, err := trace.FromCANLog(log, db)
	if err != nil {
		t.Fatalf("FromCANLog: %v", err)
	}
	grid, err := trace.Align(tr, sigdb.FastPeriod)
	if err != nil {
		t.Fatalf("Align: %v", err)
	}

	for _, spec := range []struct {
		name string
		par  func(p int) (*core.Monitor, error)
	}{
		{"strict", func(p int) (*core.Monitor, error) {
			rs, err := rules.Strict()
			if err != nil {
				return nil, err
			}
			return core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage(), EvalParallelism: p})
		}},
		{"relaxed", func(p int) (*core.Monitor, error) {
			rs, err := rules.Relaxed()
			if err != nil {
				return nil, err
			}
			return core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage(), EvalParallelism: p})
		}},
	} {
		t.Run(spec.name, func(t *testing.T) {
			seqMon, err := spec.par(1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqMon.CheckGrid(grid)
			if err != nil {
				t.Fatalf("sequential CheckGrid: %v", err)
			}
			if !want.AnyViolated() {
				t.Fatal("fixture produced no violations; differential test would be vacuous")
			}
			for _, p := range []int{2, 4, 8} {
				parMon, err := spec.par(p)
				if err != nil {
					t.Fatal(err)
				}
				// Run repeatedly so the scratch pool actually recycles
				// buffers across calls.
				for round := 0; round < 3; round++ {
					got, err := parMon.CheckGrid(grid)
					if err != nil {
						t.Fatalf("parallel CheckGrid (p=%d): %v", p, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("parallelism %d round %d: report diverges from sequential", p, round)
					}
				}
			}
		})
	}
}

// TestCheckGridParallelErrorIsDeterministic checks that when a rule
// references a signal missing from the grid, the parallel engine
// surfaces the same (first in rule order) error the sequential one
// does.
func TestCheckGridParallelErrorIsDeterministic(t *testing.T) {
	rs, err := rules.Strict()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	s := tr.Ensure(sigdb.SigVelocity) // every other signal missing
	for i := 0; i < 10; i++ {
		if err := s.Append(time.Duration(i)*sigdb.FastPeriod, 20); err != nil {
			t.Fatal(err)
		}
	}
	var errors []string
	for _, p := range []int{1, 4} {
		mon, err := core.New(core.Config{Rules: rs, EvalParallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		_, cerr := mon.CheckTrace(tr)
		if cerr == nil {
			t.Fatalf("parallelism %d: missing-signal trace checked cleanly", p)
		}
		errors = append(errors, cerr.Error())
	}
	if errors[0] != errors[1] {
		t.Errorf("error differs by parallelism:\nseq: %s\npar: %s", errors[0], errors[1])
	}
}

package core

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

// Explanation is the context around one violation: the values of every
// signal the rule references over a window spanning the violation plus
// a margin on both sides. The paper notes that deciding "whether a
// violation was real or not ... may be non-trivial on some systems,
// especially if a part of the reason for the use of a monitor is to
// help developers understand the test traces" — this is the monitor
// handing the developer that context.
type Explanation struct {
	// Rule is the violated rule.
	Rule string
	// Violation is the explained interval.
	Violation speclang.Violation
	// Class is the triage classification.
	Class Class
	// From and To delimit the context window.
	From, To time.Duration
	// Signals holds the referenced signals' context, in sorted order.
	Signals []SignalContext
}

// SignalContext is one signal's behaviour over the context window.
type SignalContext struct {
	// Name is the signal name.
	Name string
	// Min, Max and the value endpoints summarize the window (finite
	// samples only).
	Min, Max, First, Last float64
	// NonFinite counts NaN/Inf samples in the window.
	NonFinite int
	// Spark is a fixed-width character strip of the signal over the
	// window: ▁..█ scaled between Min and Max, '!' where the sample is
	// not finite, '·' where no sample exists yet. The violation's span
	// within the window is marked on the Marker line.
	Spark string
	// Marker aligns with Spark: '^' under the violating span.
	Marker string
}

// sparkWidth is the character width of the context strips.
const sparkWidth = 64

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Explain extracts the context of the violIdx-th violation of the
// named rule from the trace. margin is added before and after the
// violation (a margin of zero still shows the violation span itself).
func (m *Monitor) Explain(tr *trace.Trace, rep *Report, rule string, violIdx int, margin time.Duration) (*Explanation, error) {
	rr, ok := rep.Rule(rule)
	if !ok {
		return nil, fmt.Errorf("core: explain: unknown rule %q", rule)
	}
	if violIdx < 0 || violIdx >= len(rr.Result.Violations) {
		return nil, fmt.Errorf("core: explain: rule %s has %d violations, index %d out of range",
			rule, len(rr.Result.Violations), violIdx)
	}
	v := rr.Result.Violations[violIdx]
	compiled, ok := m.rules.Rule(rule)
	if !ok {
		return nil, fmt.Errorf("core: explain: rule %q not in the compiled set", rule)
	}
	names := compiled.Signals(m.rules.SignalUniverse())

	from := v.Start - margin
	if from < 0 {
		from = 0
	}
	to := v.End + margin
	if end := tr.Duration() + m.period; to > end {
		to = end
	}
	if to <= from {
		to = from + m.period
	}

	ex := &Explanation{
		Rule:      rule,
		Violation: v,
		Class:     rr.Classes[violIdx],
		From:      from,
		To:        to,
	}
	for _, name := range names {
		s, ok := tr.Series(name)
		if !ok {
			continue
		}
		ex.Signals = append(ex.Signals, signalContext(s, from, to, v))
	}
	return ex, nil
}

// signalContext samples the series over [from, to) at sparkWidth points.
func signalContext(s *trace.Series, from, to time.Duration, v speclang.Violation) SignalContext {
	ctx := SignalContext{Name: s.Name, Min: math.Inf(1), Max: math.Inf(-1)}
	span := to - from
	samples := make([]float64, sparkWidth)
	defined := make([]bool, sparkWidth)
	firstSet := false
	for i := 0; i < sparkWidth; i++ {
		at := from + time.Duration(int64(span)*int64(i)/int64(sparkWidth))
		val, ok := s.At(at)
		if !ok {
			continue
		}
		defined[i] = true
		samples[i] = val
		if math.IsNaN(val) || math.IsInf(val, 0) {
			ctx.NonFinite++
			continue
		}
		if !firstSet {
			ctx.First = val
			firstSet = true
		}
		ctx.Last = val
		if val < ctx.Min {
			ctx.Min = val
		}
		if val > ctx.Max {
			ctx.Max = val
		}
	}
	if ctx.Min > ctx.Max { // no finite samples
		ctx.Min, ctx.Max = 0, 0
	}
	var spark, marker strings.Builder
	for i := 0; i < sparkWidth; i++ {
		at := from + time.Duration(int64(span)*int64(i)/int64(sparkWidth))
		switch {
		case !defined[i]:
			spark.WriteRune('·')
		case math.IsNaN(samples[i]) || math.IsInf(samples[i], 0):
			spark.WriteRune('!')
		default:
			level := 0
			if ctx.Max > ctx.Min {
				level = int((samples[i] - ctx.Min) / (ctx.Max - ctx.Min) * float64(len(sparkLevels)-1))
				if level < 0 {
					level = 0
				}
				if level >= len(sparkLevels) {
					level = len(sparkLevels) - 1
				}
			}
			spark.WriteRune(sparkLevels[level])
		}
		if at >= v.Start && at < v.End {
			marker.WriteByte('^')
		} else {
			marker.WriteByte(' ')
		}
	}
	ctx.Spark = spark.String()
	ctx.Marker = marker.String()
	return ctx
}

// Render writes the explanation as a compact report.
func (ex *Explanation) Render(w io.Writer) error {
	fmt.Fprintf(w, "%s violation [%s] %v..%v (%v): %s\n",
		ex.Rule, ex.Class, ex.Violation.Start, ex.Violation.End, ex.Violation.Duration(), ex.Violation.Msg)
	fmt.Fprintf(w, "context %v..%v\n", ex.From, ex.To)
	for _, sc := range ex.Signals {
		fmt.Fprintf(w, "  %-16s %s  [%.4g .. %.4g]", sc.Name, sc.Spark, sc.Min, sc.Max)
		if sc.NonFinite > 0 {
			fmt.Fprintf(w, "  (%d non-finite)", sc.NonFinite)
		}
		fmt.Fprintln(w)
		if _, err := fmt.Fprintf(w, "  %-16s %s\n", "", sc.Marker); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"hash/maphash"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
)

// ShadowMonitor evaluates a candidate spec alongside a primary
// OnlineMonitor during a canary rollout: the session feeds it exactly
// the frame runs the primary applied (post stale-filter), and after
// each batch compares the two monitors' event output. Its events are
// never delivered anywhere — they exist to measure divergence, and to
// seed the session's state should the candidate be promoted.
//
// Determinism: both monitors see the same frames in the same order on
// the same evaluation grid, and stream evaluation is a pure function
// of the frame sequence, so two shadows of the same spec produce
// byte-identical event streams — a shadow of an unchanged spec
// diverges exactly never. Divergence is therefore entirely attributable
// to the spec delta, not to scheduling.
//
// A ShadowMonitor is owned by one session worker goroutine; it is not
// safe for concurrent use.
type ShadowMonitor struct {
	om *OnlineMonitor
	// events accumulates the candidate's output for the current batch;
	// the slice is reused across batches (BatchEvents' lifetime
	// contract mirrors the OnlineMonitor scratch contract).
	events []OnlineEvent
	closed bool
}

// Shadow builds a shadow evaluator for this (candidate) monitor over
// db. The returned shadow is un-instrumented: candidate evaluation
// must never count into the primary spec's monitor metrics.
func (m *Monitor) Shadow(db *sigdb.DB) (*ShadowMonitor, error) {
	om, err := m.Online(db)
	if err != nil {
		return nil, err
	}
	return &ShadowMonitor{om: om}, nil
}

// Push feeds one applied frame run to the candidate, accumulating its
// events for the current batch. Runs are post-filter (the primary
// already rejected stale frames), so the candidate's own rejection
// count stays zero on a well-formed feed; rejected frames are skipped
// rather than treated as errors, mirroring the primary's tolerance.
func (s *ShadowMonitor) Push(run []can.Frame) error {
	evs, _, err := s.om.PushFrames(run)
	if err != nil {
		return err
	}
	s.events = append(s.events, evs...)
	return nil
}

// BatchEvents returns the candidate events accumulated since the last
// EndBatch. The slice is scratch: valid until the next Push after
// EndBatch.
func (s *ShadowMonitor) BatchEvents() []OnlineEvent { return s.events }

// EndBatch resets the per-batch event accumulator. Call once per
// primary batch, after comparing.
func (s *ShadowMonitor) EndBatch() { s.events = s.events[:0] }

// Promote surrenders the underlying monitor so the session can adopt
// it as its primary at a batch boundary. The shadow is spent
// afterwards: Close becomes a no-op and the caller owns the monitor's
// lifetime (including its eventual Close).
func (s *ShadowMonitor) Promote() *OnlineMonitor {
	om := s.om
	s.om = nil
	s.closed = true
	return om
}

// Close discards the shadow, closing the candidate monitor and
// dropping its pending end-of-stream events on the floor — a shadow's
// events are never delivered.
func (s *ShadowMonitor) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.om != nil {
		s.om.Close()
		s.om = nil
	}
}

// shadowSeed seeds the batch signature hash; one process-wide seed
// keeps signatures comparable across monitors within the process (they
// are never persisted).
var shadowSeed = maphash.MakeSeed()

// BatchSignature folds a batch's events into a comparable signature:
// the event count plus an order-sensitive hash over (rule, kind,
// time). Two monitors that produced the same events in the same order
// get equal signatures; a count or content difference makes them
// diverge. End-event payloads (peak, message) are deliberately
// excluded — divergence tracks *when rules fire*, the verdict-shaping
// signal, not message wording.
func BatchSignature(evs []OnlineEvent) (n int, sig uint64) {
	var h maphash.Hash
	h.SetSeed(shadowSeed)
	for _, e := range evs {
		h.WriteString(e.Rule)
		h.WriteByte(byte(e.Kind))
		var t [8]byte
		putU64(t[:], uint64(e.Time))
		h.Write(t[:])
	}
	return len(evs), h.Sum64()
}

// putU64 is a little-endian store without pulling encoding/binary into
// the signature hot loop's inlining budget.
func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// RuleEventCounts tallies a batch's events per rule name into counts,
// allocating map entries only for rules that actually fired. Both
// sides of a shadow comparison are folded into the same map with
// opposite signs, so a zero-sum map means the batch agreed rule for
// rule; leftover nonzero entries name the diverging rules.
func RuleEventCounts(counts map[string]int, evs []OnlineEvent, sign int) {
	for _, e := range evs {
		counts[e.Rule] += sign
	}
}

// ShadowDivergence compares one batch of primary events against the
// candidate's, returning the per-rule absolute count differences (nil
// when the batch agrees) using scratch as the working map. Equal
// signatures short-circuit: the common case — both sides silent, or
// identical events — costs two hashes and no map work.
func ShadowDivergence(scratch map[string]int, primary, candidate []OnlineEvent) map[string]int {
	pn, psig := BatchSignature(primary)
	cn, csig := BatchSignature(candidate)
	if pn == cn && psig == csig {
		return nil
	}
	for k := range scratch {
		delete(scratch, k)
	}
	RuleEventCounts(scratch, primary, +1)
	RuleEventCounts(scratch, candidate, -1)
	for k, v := range scratch {
		if v == 0 {
			delete(scratch, k)
		}
	}
	if len(scratch) == 0 {
		// Same per-rule counts but different times: still a divergence
		// (the specs disagree about when, not whether). Surface it on a
		// synthetic key so callers never mistake it for agreement.
		scratch[""] = 1
	}
	return scratch
}

// ShadowClock reports the candidate monitor's last accepted frame
// time, for sanity-checking that primary and shadow advanced together.
func (s *ShadowMonitor) ShadowClock() (time.Duration, bool) {
	if s.om == nil {
		return 0, false
	}
	return s.om.lastTime, s.om.sawFrame
}

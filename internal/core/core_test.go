package core

import (
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

func compileRules(t *testing.T, src string, signals ...string) *speclang.RuleSet {
	t.Helper()
	f, err := speclang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rs, err := speclang.Compile(f, signals)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return rs
}

func TestVerdictString(t *testing.T) {
	if Satisfied.String() != "S" || Violated.String() != "V" || Verdict(0).String() != "?" {
		t.Error("verdict strings wrong")
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassReal, "real"}, {ClassTransient, "transient"},
		{ClassNegligible, "negligible"}, {Class(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d) = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without rules succeeded")
	}
	rs := compileRules(t, `spec R { assert x }`, "x")
	if _, err := New(Config{Rules: rs, Period: -time.Second}); err == nil {
		t.Error("negative period accepted")
	}
	m, err := New(Config{Rules: rs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.period != sigdb.FastPeriod {
		t.Errorf("default period = %v", m.period)
	}
}

func TestTriageClassify(t *testing.T) {
	tri := Triage{TransientMax: 30 * time.Millisecond, NegligiblePeak: 1.0}
	mkV := func(dur time.Duration, peak float64) speclang.Violation {
		return speclang.Violation{Start: 0, End: dur, Peak: peak}
	}
	tests := []struct {
		v    speclang.Violation
		want Class
	}{
		{mkV(10*time.Millisecond, 100), ClassTransient}, // short wins
		{mkV(time.Second, 0.5), ClassNegligible},
		{mkV(time.Second, 5), ClassReal},
	}
	for i, tt := range tests {
		if got := tri.Classify(tt.v); got != tt.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, tt.want)
		}
	}
	// Disabled thresholds classify everything real.
	var none Triage
	if got := none.Classify(mkV(time.Millisecond, 0)); got != ClassReal {
		t.Errorf("empty triage = %v, want real", got)
	}
}

func TestCheckTraceVerdictsAndTriage(t *testing.T) {
	rs := compileRules(t, `spec R { severity x assert x <= 0 }
spec Clean { assert true }`, "x")
	m, err := New(Config{
		Rules:  rs,
		Period: 10 * time.Millisecond,
		Triage: map[string]Triage{"R": {NegligiblePeak: 1.0}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr := trace.New()
	s := tr.Ensure("x")
	vals := []float64{0, 0, 0.5, 0, 0, 7, 7, 0}
	for i, v := range vals {
		if err := s.Append(time.Duration(i)*10*time.Millisecond, v); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	rep, err := m.CheckTrace(tr)
	if err != nil {
		t.Fatalf("CheckTrace: %v", err)
	}
	if len(rep.Rules) != 2 {
		t.Fatalf("rules = %d", len(rep.Rules))
	}
	r, ok := rep.Rule("R")
	if !ok || r.Verdict != Violated {
		t.Fatalf("rule R: %+v", r)
	}
	if len(r.Classes) != 2 || r.Classes[0] != ClassNegligible || r.Classes[1] != ClassReal {
		t.Errorf("classes = %v", r.Classes)
	}
	if r.Count(ClassReal) != 1 || !r.RealViolations() {
		t.Errorf("real count = %d", r.Count(ClassReal))
	}
	clean, _ := rep.Rule("Clean")
	if clean.Verdict != Satisfied {
		t.Errorf("clean rule verdict = %v", clean.Verdict)
	}
	if !rep.AnyViolated() || !rep.AnyReal() {
		t.Error("report aggregates wrong")
	}
	if got := rep.Verdicts(); len(got) != 2 || got[0] != Violated || got[1] != Satisfied {
		t.Errorf("Verdicts = %v", got)
	}
	if _, ok := rep.Rule("NoSuch"); ok {
		t.Error("Rule(NoSuch) found")
	}
}

func TestCheckLogEndToEnd(t *testing.T) {
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	bus := can.NewBus(db, sched)
	// Broadcast 50 ticks with ServiceACC and ACCEnabled both true from
	// tick 30: a Rule #0 style violation.
	for tick := 0; tick < 50; tick++ {
		if tick >= 30 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	rs := compileRules(t, `spec Rule0 { assert ServiceACC -> !ACCEnabled }`, db.SignalNames()...)
	m, err := New(Config{Rules: rs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := m.CheckLog(bus.Log(), db)
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	r := rep.Rules[0]
	if r.Verdict != Violated {
		t.Fatal("Rule0 violation not detected from the CAN log")
	}
	if r.Result.Violations[0].Start != 300*time.Millisecond {
		t.Errorf("violation start = %v, want 300ms", r.Result.Violations[0].Start)
	}
}

func TestCheckTraceMissingSignal(t *testing.T) {
	rs := compileRules(t, `spec R { assert x > 0 }`, "x")
	m, err := New(Config{Rules: rs, Period: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr := trace.New()
	_ = tr.Ensure("y").Append(0, 1)
	if _, err := m.CheckTrace(tr); err == nil {
		t.Fatal("missing signal accepted")
	}
}

func TestEstimateAccelIntent(t *testing.T) {
	period := 10 * time.Millisecond
	n := 100
	torque := make([]float64, n)
	upd := make([]bool, n)
	for i := range torque {
		upd[i] = true
		switch {
		case i < 20:
			torque[i] = 50 // flat
		case i < 60:
			torque[i] = 50 + 2*float64(i-20) // ramp +200 N·m/s
		default:
			torque[i] = 130
		}
	}
	cfg := IntentConfig{MinRate: 50, MinDuration: 100 * time.Millisecond}
	got := EstimateAccelIntent(torque, upd, period, cfg)
	if got[10] {
		t.Error("intent during flat prefix")
	}
	if !got[40] {
		t.Error("no intent mid-ramp")
	}
	if got[80] {
		t.Error("intent after ramp ended")
	}
	// The duration backfill marks the early ramp steps too.
	if !got[25] {
		t.Error("sustained run not backfilled")
	}
}

func TestEstimateAccelIntentDurationThreshold(t *testing.T) {
	period := 10 * time.Millisecond
	torque := []float64{0, 10, 0, 0, 0, 0}
	upd := []bool{true, true, true, true, true, true}
	cfg := IntentConfig{MinRate: 50, MinDuration: 50 * time.Millisecond}
	got := EstimateAccelIntent(torque, upd, period, cfg)
	for i, g := range got {
		if g {
			t.Errorf("one-cycle spike marked as intent at step %d", i)
		}
	}
}

func TestEstimateAccelIntentEmpty(t *testing.T) {
	got := EstimateAccelIntent(nil, nil, time.Millisecond, IntentConfig{})
	if len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
}

func TestCompareIntentAndRates(t *testing.T) {
	est := []bool{true, true, false, false}
	truth := []bool{true, false, true, false}
	c := CompareIntent(est, truth)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.FalsePositiveRate() != 0.5 || c.FalseNegativeRate() != 0.5 {
		t.Errorf("rates = %v, %v", c.FalsePositiveRate(), c.FalseNegativeRate())
	}
	var zero Confusion
	if zero.FalsePositiveRate() != 0 || zero.FalseNegativeRate() != 0 {
		t.Error("zero confusion rates not 0")
	}
}

package core_test

import (
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
)

func strictMonitor(t *testing.T) *core.Monitor {
	t.Helper()
	rs, err := rules.Strict()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func relaxedMonitor(t *testing.T) *core.Monitor {
	t.Helper()
	rs, err := rules.Relaxed()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShadowIdenticalSpecNeverDiverges is the determinism argument
// from DESIGN.md §16 as a test: a shadow compiled from the same spec,
// fed the same batches in the same order, must agree with the primary
// on every single batch — the shadow comparison's false-positive rate
// is exactly zero.
func TestShadowIdenticalSpecNeverDiverges(t *testing.T) {
	db := sigdb.Vehicle()
	frames := parallelFixtureLog(t, 1500).Frames()

	primary, err := strictMonitor(t).Online(db)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := strictMonitor(t).Shadow(db)
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()

	scratch := make(map[string]int)
	var sawEvents bool
	const batch = 64
	for off := 0; off < len(frames); off += batch {
		end := off + batch
		if end > len(frames) {
			end = len(frames)
		}
		run := frames[off:end]
		pevs, _, err := primary.PushFrames(run)
		if err != nil {
			t.Fatalf("primary PushFrames: %v", err)
		}
		if err := shadow.Push(run); err != nil {
			t.Fatalf("shadow Push: %v", err)
		}
		if len(pevs) > 0 {
			sawEvents = true
		}
		if div := core.ShadowDivergence(scratch, pevs, shadow.BatchEvents()); div != nil {
			t.Fatalf("identical specs diverged at frame %d: %v", off, div)
		}
		shadow.EndBatch()
	}
	if !sawEvents {
		t.Fatal("fixture produced no events; zero-divergence result would be vacuous")
	}
	st, sok := shadow.ShadowClock()
	if !sok || st != frames[len(frames)-1].Time {
		t.Fatalf("shadow clock %v/%v != last frame time %v", st, sok, frames[len(frames)-1].Time)
	}
}

// divergenceFixtureLog synthesizes a capture that trips exactly the
// rules the relaxed spec loosened: the ego cruises 0.25 m/s above the
// set speed — inside relaxed Rule3/Rule4's 0.5 m/s margin but above
// strict's hard threshold — while torque ramps for longer than Rule4's
// 400 ms window, and brake applications open with a single-cycle
// positive decel blip that strict Rule5 flags instantly but relaxed
// forgives within 20 ms.
func divergenceFixtureLog(t testing.TB, ticks int) []can.Frame {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 25.25)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 0)
		_ = bus.Set(sigdb.SigSelHeadway, 2)
		// Ramp +2 N·m per cycle for 60 cycles, then release: delta
		// stays positive for 600 ms straight, blowing strict Rule4's
		// 400 ms eventually-window while relaxed's margined antecedent
		// never arms.
		_ = bus.Set(sigdb.SigRequestedTorque, float64(2*(tick%60)))
		// Every 100 cycles, a braking episode whose first cycle carries
		// a positive decel blip.
		phase := tick % 100
		if phase >= 80 && phase < 90 {
			_ = bus.Set(sigdb.SigBrakeRequested, 1)
			if phase == 80 {
				_ = bus.Set(sigdb.SigRequestedDecel, 0.5)
			} else {
				_ = bus.Set(sigdb.SigRequestedDecel, -1)
			}
		} else {
			_ = bus.Set(sigdb.SigBrakeRequested, 0)
			_ = bus.Set(sigdb.SigRequestedDecel, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	return bus.Log().Frames()
}

// TestShadowStrictVsRelaxedDiverges drives a strict primary with a
// relaxed shadow over a fixture that trips strict-only rules, and
// requires the comparison to (a) flag at least one divergent batch and
// (b) attribute it to named rules with nonzero count deltas.
func TestShadowStrictVsRelaxedDiverges(t *testing.T) {
	db := sigdb.Vehicle()
	frames := divergenceFixtureLog(t, 2000)

	primary, err := strictMonitor(t).Online(db)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := relaxedMonitor(t).Shadow(db)
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()

	scratch := make(map[string]int)
	divergent := 0
	rulesSeen := map[string]bool{}
	const batch = 64
	for off := 0; off < len(frames); off += batch {
		end := off + batch
		if end > len(frames) {
			end = len(frames)
		}
		run := frames[off:end]
		pevs, _, err := primary.PushFrames(run)
		if err != nil {
			t.Fatalf("primary PushFrames: %v", err)
		}
		if err := shadow.Push(run); err != nil {
			t.Fatalf("shadow Push: %v", err)
		}
		if div := core.ShadowDivergence(scratch, pevs, shadow.BatchEvents()); div != nil {
			divergent++
			for rule, delta := range div {
				if delta == 0 {
					t.Fatalf("divergence map carries zero delta for %q", rule)
				}
				rulesSeen[rule] = true
			}
		}
		shadow.EndBatch()
	}
	if divergent == 0 {
		t.Fatal("strict vs relaxed never diverged; fixture or comparison is broken")
	}
	named := 0
	for rule := range rulesSeen {
		if rule != "" {
			named++
		}
	}
	if named == 0 {
		t.Fatalf("divergences never named a rule: %v", rulesSeen)
	}
}

// TestShadowPromoteTransfersOwnership checks the promote handshake: the
// surrendered monitor keeps working as a primary (tail events emerge
// from its Close), and closing the spent shadow afterwards is a no-op
// rather than a double-close of the surrendered monitor.
func TestShadowPromoteTransfersOwnership(t *testing.T) {
	db := sigdb.Vehicle()
	frames := parallelFixtureLog(t, 800).Frames()

	shadow, err := strictMonitor(t).Shadow(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := shadow.Push(frames); err != nil {
		t.Fatal(err)
	}
	adopted := shadow.Promote()
	if adopted == nil {
		t.Fatal("Promote returned nil monitor")
	}
	shadow.Close() // must not close the adopted monitor

	// The adopted monitor is live: it accepts the rest of the stream
	// (empty here) and closes cleanly, producing its end-of-stream
	// events exactly once.
	if _, err := adopted.Close(); err != nil {
		t.Fatalf("adopted monitor Close: %v", err)
	}
	if _, ok := shadow.ShadowClock(); ok {
		t.Fatal("spent shadow still reports a clock")
	}
}

// TestBatchSignatureSensitivity pins the signature to be order- and
// content-sensitive: permuted events and shifted times must hash
// differently, equal streams equally.
func TestBatchSignatureSensitivity(t *testing.T) {
	a := []core.OnlineEvent{
		{Rule: "Rule1", Time: 10 * time.Millisecond},
		{Rule: "Rule2", Time: 20 * time.Millisecond},
	}
	b := []core.OnlineEvent{
		{Rule: "Rule2", Time: 20 * time.Millisecond},
		{Rule: "Rule1", Time: 10 * time.Millisecond},
	}
	c := []core.OnlineEvent{
		{Rule: "Rule1", Time: 10 * time.Millisecond},
		{Rule: "Rule2", Time: 21 * time.Millisecond},
	}
	na, sa := core.BatchSignature(a)
	nb, sb := core.BatchSignature(b)
	nc, sc := core.BatchSignature(c)
	if na != 2 || nb != 2 || nc != 2 {
		t.Fatalf("counts: %d %d %d", na, nb, nc)
	}
	if sa == sb {
		t.Fatal("signature ignores event order")
	}
	if sa == sc {
		t.Fatal("signature ignores event time")
	}
	na2, sa2 := core.BatchSignature(append([]core.OnlineEvent(nil), a...))
	if na2 != na || sa2 != sa {
		t.Fatal("signature not stable for equal input")
	}

	// Same per-rule counts, different times: ShadowDivergence must not
	// report agreement.
	if div := core.ShadowDivergence(map[string]int{}, a, c); div == nil {
		t.Fatal("count-equal time-shifted batches reported as agreement")
	}
	if div := core.ShadowDivergence(map[string]int{}, a, a); div != nil {
		t.Fatalf("identical batches reported divergence: %v", div)
	}
}

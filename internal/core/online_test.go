package core

import (
	"math"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// buildLog broadcasts the given per-tick setter over the vehicle bus
// and returns the capture.
func buildLog(t *testing.T, ticks int, set func(tick int, bus *can.Bus)) *can.Log {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		if set != nil {
			set(tick, bus)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	return bus.Log()
}

// onlineViolations replays a log through the online monitor and
// collects closed violations per rule.
func onlineViolations(t *testing.T, m *Monitor, log *can.Log) map[string][]OnlineEvent {
	t.Helper()
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	out := make(map[string][]OnlineEvent)
	collect := func(evs []OnlineEvent) {
		for _, e := range evs {
			if e.Kind == speclang.ViolationEnd {
				out[e.Rule] = append(out[e.Rule], e)
			}
		}
	}
	for _, f := range log.Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		collect(evs)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collect(evs)
	return out
}

// requireOnlineOfflineMatch asserts that the streaming monitor
// reproduces CheckLog exactly, including triage classes.
func requireOnlineOfflineMatch(t *testing.T, m *Monitor, log *can.Log) {
	t.Helper()
	offline, err := m.CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	online := onlineViolations(t, m, log)
	for _, rr := range offline.Rules {
		got := online[rr.Name()]
		if len(got) != len(rr.Result.Violations) {
			t.Fatalf("rule %s: online %d violations, offline %d\nonline: %+v\noffline: %+v",
				rr.Name(), len(got), len(rr.Result.Violations), got, rr.Result.Violations)
		}
		for i, want := range rr.Result.Violations {
			g := got[i].Violation
			if g.StartStep != want.StartStep || g.EndStep != want.EndStep || g.Msg != want.Msg {
				t.Fatalf("rule %s violation %d: online %+v, offline %+v", rr.Name(), i, g, want)
			}
			if g.Peak != want.Peak && !(math.IsInf(g.Peak, 1) && math.IsInf(want.Peak, 1)) {
				t.Fatalf("rule %s violation %d peak: online %v, offline %v", rr.Name(), i, g.Peak, want.Peak)
			}
			if got[i].Class != rr.Classes[i] {
				t.Fatalf("rule %s violation %d class: online %v, offline %v", rr.Name(), i, got[i].Class, rr.Classes[i])
			}
		}
	}
}

func testMonitor(t *testing.T) *Monitor {
	t.Helper()
	db := sigdb.Vehicle()
	rs := compileRules(t, `
spec Rule0 { assert ServiceACC -> !ACCEnabled }
spec DecelOK { severity RequestedDecel warmup 50ms assert BrakeRequested -> RequestedDecel <= 0.0 }
spec Slow4 { assert (Velocity > ACCSetSpeed) -> eventually[0:400ms](delta(RequestedTorque) <= 0.0) }
monitor Headway {
  let h = TargetRange / Velocity
  initial state Normal { when VehicleAhead && h < 1.0 => Low }
  state Low {
    when !VehicleAhead || h >= 1.0 => Normal
    after 5s => violate "not recovered"
  }
}`, db.SignalNames()...)
	m, err := New(Config{
		Rules: rs,
		Triage: map[string]Triage{
			"DecelOK": {TransientMax: 25 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestOnlineMatchesOfflineCleanTrace(t *testing.T) {
	log := buildLog(t, 200, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	requireOnlineOfflineMatch(t, testMonitor(t), log)
}

func TestOnlineMatchesOfflineWithViolations(t *testing.T) {
	log := buildLog(t, 1200, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		// Rule0 violation burst.
		if tick >= 100 && tick < 130 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		// A transient decel blip and a NaN stretch.
		switch {
		case tick == 300:
			_ = bus.Set(sigdb.SigBrakeRequested, 1)
			_ = bus.Set(sigdb.SigRequestedDecel, 0.12)
		case tick > 300 && tick < 360:
			_ = bus.Set(sigdb.SigBrakeRequested, 1)
			_ = bus.Set(sigdb.SigRequestedDecel, math.NaN())
		default:
			_ = bus.Set(sigdb.SigBrakeRequested, 0)
			_ = bus.Set(sigdb.SigRequestedDecel, 0)
		}
		// Sustained torque ramp above set speed (Slow4 + headway).
		if tick >= 500 && tick < 1100 {
			_ = bus.Set(sigdb.SigVelocity, 27)
			_ = bus.Set(sigdb.SigRequestedTorque, float64(tick))
			_ = bus.Set(sigdb.SigVehicleAhead, 1)
			_ = bus.Set(sigdb.SigTargetRange, 15)
		} else {
			_ = bus.Set(sigdb.SigVehicleAhead, 0)
			_ = bus.Set(sigdb.SigTargetRange, 0)
			_ = bus.Set(sigdb.SigRequestedTorque, 0)
		}
	})
	m := testMonitor(t)
	// Sanity: the offline report finds all three problem classes.
	rep, err := m.CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	if !rep.AnyViolated() {
		t.Fatal("synthetic log produced no violations")
	}
	requireOnlineOfflineMatch(t, m, log)
}

func TestOnlineEventLatency(t *testing.T) {
	// Rule0 has no temporal horizon: its Begin event must arrive on
	// the very next step boundary after the violating frame.
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	log := buildLog(t, 50, func(tick int, bus *can.Bus) {
		if tick >= 20 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		}
		_ = bus.Set(sigdb.SigVelocity, 20)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	var beginFrameTime time.Duration = -1
	for _, f := range log.Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		for _, e := range evs {
			if e.Rule == "Rule0" && e.Kind == speclang.ViolationBegin && beginFrameTime < 0 {
				beginFrameTime = f.Time
				if e.Time != 200*time.Millisecond {
					t.Errorf("violation begins at %v, want 200ms", e.Time)
				}
			}
		}
	}
	if _, err := om.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if beginFrameTime < 0 {
		t.Fatal("no Rule0 begin event delivered during streaming")
	}
	if beginFrameTime > 220*time.Millisecond {
		t.Errorf("begin event delivered at frame time %v, want within two steps of 200ms", beginFrameTime)
	}
}

// TestOnlineTimestampContract pins PushFrame's documented ordering
// contract: equal timestamps are accepted (many frames share a capture
// instant on a broadcast bus), strictly decreasing ones are rejected,
// and a rejection leaves the session intact — the caller can drop the
// stale frame and keep streaming to an unchanged verdict.
func TestOnlineTimestampContract(t *testing.T) {
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	if _, err := om.PushFrame(can.Frame{Time: 50 * time.Millisecond, ID: sigdb.FrameRadar}); err != nil {
		t.Fatalf("PushFrame: %v", err)
	}
	// Equal timestamp: fine, repeatedly.
	for i := 0; i < 3; i++ {
		if _, err := om.PushFrame(can.Frame{Time: 50 * time.Millisecond, ID: sigdb.FramePedals}); err != nil {
			t.Fatalf("equal-timestamp frame %d rejected: %v", i, err)
		}
	}
	// Strictly earlier: rejected, every time it is retried.
	for i := 0; i < 2; i++ {
		if _, err := om.PushFrame(can.Frame{Time: 10 * time.Millisecond, ID: sigdb.FrameRadar}); err == nil {
			t.Fatal("out-of-order frame accepted")
		}
	}
	// The rejection did not corrupt the session: later frames still
	// stream, and equal-to-last remains acceptable after the error.
	if _, err := om.PushFrame(can.Frame{Time: 50 * time.Millisecond, ID: sigdb.FrameVehicleDyn}); err != nil {
		t.Fatalf("session unusable after rejection: %v", err)
	}
	if _, err := om.PushFrame(can.Frame{Time: 70 * time.Millisecond, ID: sigdb.FrameRadar}); err != nil {
		t.Fatalf("session unusable after rejection: %v", err)
	}
	if _, err := om.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestOnlineRejectionMatchesDropAndContinue checks the "drop and keep
// pushing" recovery the contract promises: a trace streamed with stale
// frames interleaved (each rejected) yields byte-identical violations
// to the same trace without them.
func TestOnlineRejectionMatchesDropAndContinue(t *testing.T) {
	log := buildLog(t, 300, func(tick int, bus *can.Bus) {
		on := 0.0
		if tick >= 100 && tick < 150 {
			on = 1
		}
		_ = bus.Set(sigdb.SigServiceACC, on)
		_ = bus.Set(sigdb.SigACCEnabled, on)
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	got := make(map[string][]OnlineEvent)
	collect := func(evs []OnlineEvent) {
		for _, e := range evs {
			if e.Kind == speclang.ViolationEnd {
				got[e.Rule] = append(got[e.Rule], e)
			}
		}
	}
	for i, f := range log.Frames() {
		if i > 0 && i%20 == 0 {
			stale := f
			stale.Time -= 30 * time.Millisecond
			if _, err := om.PushFrame(stale); err == nil {
				t.Fatal("stale frame accepted")
			}
		}
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame after drop: %v", err)
		}
		collect(evs)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collect(evs)

	clean := onlineViolations(t, m, log)
	if len(clean) == 0 {
		t.Fatal("synthetic burst produced no violations")
	}
	for rule, want := range clean {
		g := got[rule]
		if len(g) != len(want) {
			t.Fatalf("rule %s: %d violations with rejections interleaved, %d clean", rule, len(g), len(want))
		}
		for i := range want {
			a, b := g[i].Violation, want[i].Violation
			if a.StartStep != b.StartStep || a.EndStep != b.EndStep || a.Msg != b.Msg || g[i].Class != want[i].Class {
				t.Errorf("rule %s violation %d diverged after rejections: %+v vs %+v", rule, i, a, b)
			}
		}
	}
}

func TestOnlineIgnoresForeignFrames(t *testing.T) {
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	evs, err := om.PushFrame(can.Frame{Time: 0, ID: 0x7FF})
	if err != nil || evs != nil {
		t.Errorf("foreign frame: evs=%v err=%v", evs, err)
	}
	if _, err := om.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOnlineLifecycleErrors(t *testing.T) {
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	if _, err := om.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := om.Close(); err == nil {
		t.Error("second Close accepted")
	}
	if _, err := om.PushFrame(can.Frame{}); err == nil {
		t.Error("PushFrame after Close accepted")
	}
}

func TestOnlineEmptyTrace(t *testing.T) {
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, e := range evs {
		if e.Kind == speclang.ViolationEnd {
			t.Errorf("violation on empty trace: %+v", e)
		}
	}
}

func TestOnlineMatchesOfflineWithOffGridTimestamps(t *testing.T) {
	// Real captures timestamp frames with bus latency: not on neat
	// tick boundaries. The online step placement must match the
	// offline alignment exactly for arbitrary times.
	db := sigdb.Vehicle()
	var log can.Log
	mk := func(at time.Duration, service, enabled float64) {
		data, err := db.Pack(sigdb.FrameACCStatus, map[string]float64{
			sigdb.SigServiceACC: service,
			sigdb.SigACCEnabled: enabled,
		})
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		if err := log.Append(can.Frame{Time: at, ID: sigdb.FrameACCStatus, Data: data}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Also broadcast the other frames once so every signal exists.
	for _, id := range []uint32{sigdb.FrameVehicleDyn, sigdb.FramePedals, sigdb.FrameRadar, sigdb.FrameRadarState, sigdb.FrameACCCommand, sigdb.FrameACCOutput} {
		data, err := db.Pack(id, nil)
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		if err := log.Append(can.Frame{Time: 0, ID: id, Data: data}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Off-grid times: 3ms, 17ms, 23ms, 30ms (exactly on grid), 41ms,
	// then a gap, then a violating burst at 87..113ms, and a trailing
	// partial-step frame at 135ms that the offline grid drops.
	mk(3*time.Millisecond, 0, 0)
	mk(17*time.Millisecond, 0, 0)
	mk(23*time.Millisecond, 0, 0)
	mk(30*time.Millisecond, 0, 0)
	mk(41*time.Millisecond, 0, 0)
	mk(87*time.Millisecond, 1, 1)
	mk(95*time.Millisecond, 1, 1)
	mk(113*time.Millisecond, 1, 1)
	mk(130*time.Millisecond, 0, 0)
	mk(135*time.Millisecond, 1, 1) // beyond the offline grid: dropped

	m := testMonitor(t)
	requireOnlineOfflineMatch(t, m, &log)
}

// TestOnlinePushFramesMatchesPushFrame checks that batch ingestion is
// just a loop over the single-frame contract: same events in the same
// order, with stale frames skipped and counted instead of erroring.
func TestOnlinePushFramesMatchesPushFrame(t *testing.T) {
	log := buildLog(t, 600, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		if tick >= 100 && tick < 160 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
	})
	m := testMonitor(t)

	var single []OnlineEvent
	om1, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	for _, f := range log.Frames() {
		evs, err := om1.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		single = append(single, evs...)
	}
	evs, err := om1.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	single = append(single, evs...)

	var batched []OnlineEvent
	om2, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	frames := log.Frames()
	for len(frames) > 0 {
		n := 7 // uneven batches straddle step boundaries
		if n > len(frames) {
			n = len(frames)
		}
		evs, rejected, err := om2.PushFrames(frames[:n])
		if err != nil {
			t.Fatalf("PushFrames: %v", err)
		}
		if rejected != 0 {
			t.Fatalf("PushFrames rejected %d in-order frames", rejected)
		}
		batched = append(batched, evs...)
		frames = frames[n:]
	}
	evs, err = om2.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	batched = append(batched, evs...)

	if len(single) != len(batched) {
		t.Fatalf("batched ingest produced %d events, per-frame produced %d", len(batched), len(single))
	}
	for i := range single {
		if single[i] != batched[i] {
			t.Fatalf("event %d differs:\nbatched:   %+v\nper-frame: %+v", i, batched[i], single[i])
		}
	}
	if len(single) == 0 {
		t.Fatal("trace produced no events; the comparison checked nothing")
	}
}

// TestOnlinePushFramesSkipsStale checks the batch entry point's
// drop-and-continue handling of time regressions.
func TestOnlinePushFramesSkipsStale(t *testing.T) {
	db := sigdb.Vehicle()
	m := testMonitor(t)
	om, err := m.Online(db)
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	data, err := db.Pack(sigdb.FrameVehicleDyn, map[string]float64{sigdb.SigVelocity: 24})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	frames := []can.Frame{
		{Time: 50 * time.Millisecond, ID: sigdb.FrameVehicleDyn, Data: data},
		{Time: 10 * time.Millisecond, ID: sigdb.FrameVehicleDyn, Data: data}, // stale
		{Time: 20 * time.Millisecond, ID: sigdb.FrameVehicleDyn, Data: data}, // still stale
		{Time: 60 * time.Millisecond, ID: sigdb.FrameVehicleDyn, Data: data},
	}
	_, rejected, err := om.PushFrames(frames)
	if err != nil {
		t.Fatalf("PushFrames: %v", err)
	}
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2", rejected)
	}
	if _, err := om.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestOnlinePushFrameAllocFree pins the zero-allocation contract of the
// steady-state frame→verdict path: after warm-up (ring buffers grown,
// scratch buffers sized), pushing a frame allocates nothing — including
// frames that cross step boundaries and run the full rule pipeline.
func TestOnlinePushFrameAllocFree(t *testing.T) {
	log := buildLog(t, 4000, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	frames := log.Frames()
	warm := 1000
	if len(frames) < warm+1500 {
		t.Fatalf("fixture too short: %d frames", len(frames))
	}
	for _, f := range frames[:warm] {
		if _, err := om.PushFrame(f); err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
	}
	next := warm
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := om.PushFrame(frames[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("steady-state PushFrame allocates %.2f times per frame, want 0", allocs)
	}
}

// TestOnlineEventScratchReuse pins the documented event-slice lifetime:
// slices returned by successive pushes share the monitor's scratch
// backing, so retaining one across calls observes later events.
func TestOnlineEventScratchReuse(t *testing.T) {
	log := buildLog(t, 400, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		if tick >= 100 && tick < 160 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	var kept []OnlineEvent
	var returns int
	for _, f := range log.Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		if len(evs) == 0 {
			continue
		}
		returns++
		if kept == nil {
			kept = evs
			continue
		}
		if &kept[0] != &evs[0] {
			t.Fatal("successive event slices do not share the scratch backing; the documented lifetime contract is stale")
		}
	}
	if returns < 2 {
		t.Fatalf("only %d non-empty event returns; aliasing not exercised", returns)
	}
}

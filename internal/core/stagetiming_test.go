package core

import (
	"testing"

	"cpsmon/internal/can"
	"cpsmon/internal/obs"
	"cpsmon/internal/sigdb"
)

// TestStageTimingAttribution checks the per-batch decode/eval split:
// both accumulators move while timing is armed, the per-rule breakdown
// sums to no more than the whole-checker eval time, and a batch pushed
// with timing off leaves the accumulators alone.
func TestStageTimingAttribution(t *testing.T) {
	log := buildLog(t, 400, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	rules := m.RuleNames()
	om.Instrument(NewMetrics(obs.NewRegistry(), "strict", rules))
	om.EnableStageTiming(len(rules))

	frames := log.Frames()
	half := len(frames) / 2

	om.BeginStageTiming()
	if _, _, err := om.PushFrames(frames[:half]); err != nil {
		t.Fatalf("PushFrames: %v", err)
	}
	decode, eval, perRule := om.EndStageTiming()
	if decode <= 0 || eval <= 0 {
		t.Fatalf("timed batch: decode=%dns eval=%dns, want both positive", decode, eval)
	}
	if len(perRule) != len(rules) {
		t.Fatalf("per-rule breakdown has %d entries, want %d", len(perRule), len(rules))
	}
	var ruleSum int64
	for _, n := range perRule {
		if n <= 0 {
			t.Errorf("per-rule nanos = %v, want all positive", perRule)
			break
		}
		ruleSum += n
	}
	if ruleSum > eval {
		t.Errorf("per-rule sum %dns exceeds whole-checker eval %dns", ruleSum, eval)
	}

	// Timing off: the next batch must not disturb the accumulators.
	if _, _, err := om.PushFrames(frames[half:]); err != nil {
		t.Fatalf("PushFrames: %v", err)
	}
	d2, e2, _ := om.EndStageTiming()
	if d2 != decode || e2 != eval {
		t.Errorf("untimed batch moved accumulators: decode %d→%d eval %d→%d", decode, d2, eval, e2)
	}
}

// TestOnlinePushFrameAllocFreeWithStageTiming pins that an armed
// stage-timing batch keeps the steady-state zero-allocation contract:
// the flight recorder's per-batch attribution must be free to sample
// without moving the pinned hot-path costs.
func TestOnlinePushFrameAllocFreeWithStageTiming(t *testing.T) {
	log := buildLog(t, 4000, func(tick int, bus *can.Bus) {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
	})
	m := testMonitor(t)
	om, err := m.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	rules := m.RuleNames()
	om.Instrument(NewMetrics(obs.NewRegistry(), "strict", rules))
	om.EnableStageTiming(len(rules))
	frames := log.Frames()
	warm := 1000
	if len(frames) < warm+1500 {
		t.Fatalf("fixture too short: %d frames", len(frames))
	}
	for _, f := range frames[:warm] {
		if _, err := om.PushFrame(f); err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
	}
	next := warm
	allocs := testing.AllocsPerRun(1000, func() {
		om.BeginStageTiming()
		if _, err := om.PushFrame(frames[next]); err != nil {
			t.Fatal(err)
		}
		om.EndStageTiming()
		next++
	})
	if allocs != 0 {
		t.Fatalf("stage-timed PushFrame allocates %.2f times per frame, want 0", allocs)
	}
}

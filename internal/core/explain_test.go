package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

// explainFixture builds a monitor and trace with one clear violation.
func explainFixture(t *testing.T) (*Monitor, *trace.Trace, *Report) {
	t.Helper()
	rs := compileRules(t, `spec Decel {
  severity RequestedDecel
  assert BrakeRequested -> RequestedDecel <= 0.0
}`, "BrakeRequested", "RequestedDecel", "Velocity")
	m, err := New(Config{Rules: rs, Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr := trace.New()
	brake := tr.Ensure("BrakeRequested")
	decel := tr.Ensure("RequestedDecel")
	vel := tr.Ensure("Velocity")
	for i := 0; i < 300; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		b, d := 0.0, 0.0
		if i >= 100 && i < 200 {
			b, d = 1, -1.5
		}
		if i >= 150 && i < 160 {
			d = 0.4 // the violation
		}
		_ = brake.Append(at, b)
		_ = decel.Append(at, d)
		_ = vel.Append(at, 25-float64(i)*0.02)
	}
	rep, err := m.CheckTrace(tr)
	if err != nil {
		t.Fatalf("CheckTrace: %v", err)
	}
	return m, tr, rep
}

func TestExplainExtractsContext(t *testing.T) {
	m, tr, rep := explainFixture(t)
	ex, err := m.Explain(tr, rep, "Decel", 0, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Violation.Start != 1500*time.Millisecond {
		t.Errorf("violation start = %v", ex.Violation.Start)
	}
	if ex.From != time.Second || ex.To != 2100*time.Millisecond {
		t.Errorf("window = %v..%v, want 1s..2.1s", ex.From, ex.To)
	}
	// Only the referenced signals appear: BrakeRequested and
	// RequestedDecel, not Velocity.
	if len(ex.Signals) != 2 {
		t.Fatalf("signals = %d, want 2", len(ex.Signals))
	}
	names := []string{ex.Signals[0].Name, ex.Signals[1].Name}
	if names[0] != "BrakeRequested" || names[1] != "RequestedDecel" {
		t.Errorf("signal names = %v", names)
	}
	decel := ex.Signals[1]
	if decel.Min != -1.5 || decel.Max != 0.4 {
		t.Errorf("decel range = [%v, %v], want [-1.5, 0.4]", decel.Min, decel.Max)
	}
	if len([]rune(decel.Spark)) != sparkWidth {
		t.Errorf("spark width = %d, want %d", len([]rune(decel.Spark)), sparkWidth)
	}
	if !strings.Contains(decel.Marker, "^") {
		t.Error("marker has no violation span")
	}
}

func TestExplainRender(t *testing.T) {
	m, tr, rep := explainFixture(t)
	ex, err := m.Explain(tr, rep, "Decel", 0, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	var buf bytes.Buffer
	if err := ex.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Decel violation", "RequestedDecel", "^"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	m, tr, rep := explainFixture(t)
	if _, err := m.Explain(tr, rep, "NoSuch", 0, time.Second); err == nil {
		t.Error("unknown rule accepted")
	}
	if _, err := m.Explain(tr, rep, "Decel", 5, time.Second); err == nil {
		t.Error("out-of-range violation index accepted")
	}
	if _, err := m.Explain(tr, rep, "Decel", -1, time.Second); err == nil {
		t.Error("negative violation index accepted")
	}
}

func TestExplainWindowClamping(t *testing.T) {
	m, tr, rep := explainFixture(t)
	// A huge margin clamps to the trace bounds.
	ex, err := m.Explain(tr, rep, "Decel", 0, time.Hour)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.From != 0 {
		t.Errorf("From = %v, want 0", ex.From)
	}
	if ex.To > tr.Duration()+10*time.Millisecond {
		t.Errorf("To = %v beyond trace end", ex.To)
	}
}

func TestSignalContextNonFinite(t *testing.T) {
	var s trace.Series
	s.Name = "x"
	for i := 0; i < 100; i++ {
		v := float64(i)
		if i >= 40 && i < 60 {
			v = math.NaN()
		}
		_ = s.Append(time.Duration(i)*10*time.Millisecond, v)
	}
	ctx := signalContext(&s, 0, time.Second, violationAt(400, 600))
	if ctx.NonFinite == 0 {
		t.Error("non-finite samples not counted")
	}
	if !strings.Contains(ctx.Spark, "!") {
		t.Errorf("spark has no '!' markers: %s", ctx.Spark)
	}
}

func TestSignalContextBeforeFirstSample(t *testing.T) {
	var s trace.Series
	s.Name = "x"
	_ = s.Append(800*time.Millisecond, 5)
	ctx := signalContext(&s, 0, time.Second, violationAt(0, 100))
	if !strings.Contains(ctx.Spark, "·") {
		t.Errorf("spark has no undefined markers: %s", ctx.Spark)
	}
}

func violationAt(startMs, endMs int) speclang.Violation {
	return speclang.Violation{
		Start: time.Duration(startMs) * time.Millisecond,
		End:   time.Duration(endMs) * time.Millisecond,
	}
}

package can

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cpsmon/internal/sigdb"
)

func TestLogAppendOrdering(t *testing.T) {
	var l Log
	if err := l.Append(Frame{Time: 10 * time.Millisecond}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(Frame{Time: 10 * time.Millisecond}); err != nil {
		t.Fatalf("append equal time: %v", err)
	}
	if err := l.Append(Frame{Time: 5 * time.Millisecond}); err == nil {
		t.Fatal("out-of-order append accepted, want error")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if l.Duration() != 10*time.Millisecond {
		t.Errorf("Duration = %v, want 10ms", l.Duration())
	}
}

func TestEmptyLogDuration(t *testing.T) {
	var l Log
	if l.Duration() != 0 {
		t.Errorf("empty log Duration = %v, want 0", l.Duration())
	}
}

func TestLogWriteReadRoundTrip(t *testing.T) {
	var l Log
	for i := 0; i < 100; i++ {
		f := Frame{
			Time: time.Duration(i) * 10 * time.Millisecond,
			ID:   uint32(0x100 + i%7),
		}
		for j := range f.Data {
			f.Data[j] = byte(i + j)
		}
		if err := l.Append(f); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), l.Len())
	}
	for i, f := range got.Frames() {
		if f != l.Frames()[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, f, l.Frames()[i])
		}
	}
}

func TestReadLogRejectsBadMagic(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("NOTACAN\nxxxxxxxx"))); err == nil {
		t.Fatal("ReadLog accepted bad magic, want error")
	}
}

func TestReadLogTruncated(t *testing.T) {
	var l Log
	_ = l.Append(Frame{Time: time.Millisecond, ID: 1})
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadLog(bytes.NewReader(trunc)); err == nil {
		t.Fatal("ReadLog accepted truncated input, want error")
	}
}

func TestTxScheduleBasic(t *testing.T) {
	db := sigdb.Vehicle()
	s, err := NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	// Tick 0: every frame is due.
	if got := len(s.Due(0)); got != 7 {
		t.Fatalf("due at t=0: %d frames, want 7", got)
	}
	// Tick 1 (10 ms): only the six fast frames.
	if got := len(s.Due(sigdb.FastPeriod)); got != 6 {
		t.Fatalf("due at t=10ms: %d frames, want 6", got)
	}
	// Tick 4 (40 ms): all seven again.
	s.Due(2 * sigdb.FastPeriod)
	s.Due(3 * sigdb.FastPeriod)
	if got := len(s.Due(4 * sigdb.FastPeriod)); got != 7 {
		t.Fatalf("due at t=40ms: %d frames, want 7", got)
	}
}

func TestTxScheduleJitterSlipsSlowFrames(t *testing.T) {
	db := sigdb.Vehicle()
	rng := rand.New(rand.NewSource(7))
	s, err := NewTxSchedule(db, sigdb.FastPeriod, 0.5, rng)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	// Track gaps between ACCCommand emissions over many ticks.
	var emissions []time.Duration
	for tick := 0; tick < 2000; tick++ {
		now := time.Duration(tick) * sigdb.FastPeriod
		for _, id := range s.Due(now) {
			if id == sigdb.FrameACCCommand {
				emissions = append(emissions, now)
			}
		}
	}
	if len(emissions) < 100 {
		t.Fatalf("only %d slow emissions; schedule broken", len(emissions))
	}
	slipped, nominal := 0, 0
	for i := 1; i < len(emissions); i++ {
		switch emissions[i] - emissions[i-1] {
		case sigdb.SlowPeriod:
			nominal++
		case sigdb.SlowPeriod + sigdb.FastPeriod:
			slipped++
		default:
			// A slipped emission can be followed by a shorter gap as the
			// schedule re-anchors; allow one tick short as well.
			if emissions[i]-emissions[i-1] == sigdb.SlowPeriod-sigdb.FastPeriod {
				nominal++
			} else {
				t.Fatalf("gap %v at emission %d", emissions[i]-emissions[i-1], i)
			}
		}
	}
	if slipped == 0 {
		t.Error("no jitter slips observed with jitterProb=0.5")
	}
	if nominal == 0 {
		t.Error("no nominal gaps observed")
	}
}

func TestTxScheduleFastFramesNeverJitter(t *testing.T) {
	db := sigdb.Vehicle()
	rng := rand.New(rand.NewSource(3))
	s, err := NewTxSchedule(db, sigdb.FastPeriod, 1.0, rng)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	for tick := 0; tick < 500; tick++ {
		now := time.Duration(tick) * sigdb.FastPeriod
		found := false
		for _, id := range s.Due(now) {
			if id == sigdb.FrameRadar {
				found = true
			}
		}
		if !found {
			t.Fatalf("fast frame missing at tick %d despite jitterProb=1", tick)
		}
	}
}

func TestNewTxScheduleValidation(t *testing.T) {
	db := sigdb.Vehicle()
	if _, err := NewTxSchedule(db, 0, 0, nil); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := NewTxSchedule(db, sigdb.FastPeriod, -0.1, nil); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := NewTxSchedule(db, sigdb.FastPeriod, 0.5, nil); err == nil {
		t.Error("jitter without rng accepted")
	}
	if _, err := NewTxSchedule(db, 3*time.Millisecond, 0, nil); err == nil {
		t.Error("non-divisible base accepted")
	}
}

func newTestBus(t *testing.T) *Bus {
	t.Helper()
	db := sigdb.Vehicle()
	s, err := NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	return NewBus(db, s)
}

func TestBusLatchesOnTransmit(t *testing.T) {
	b := newTestBus(t)
	if err := b.Set(sigdb.SigVelocity, 31.25); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Before any Step, receivers still see the boot value.
	v, err := b.Read(sigdb.SigVelocity)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != 0 {
		t.Errorf("pre-transmit Read = %v, want 0", v)
	}
	if err := b.Step(0); err != nil {
		t.Fatalf("Step: %v", err)
	}
	v, _ = b.Read(sigdb.SigVelocity)
	if v != 31.25 {
		t.Errorf("post-transmit Read = %v, want 31.25", v)
	}
}

func TestBusSlowSignalHeldBetweenTransmits(t *testing.T) {
	b := newTestBus(t)
	if err := b.Step(0); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := b.Set(sigdb.SigACCSetSpeed, 25); err != nil {
		t.Fatalf("Set: %v", err)
	}
	// Ticks 1..3: the slow ACCCommand frame is not due; receivers hold 0.
	for tick := 1; tick <= 3; tick++ {
		if err := b.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if v, _ := b.Read(sigdb.SigACCSetSpeed); v != 0 {
			t.Fatalf("tick %d: slow signal leaked early: %v", tick, v)
		}
	}
	// Tick 4: slow frame transmits.
	if err := b.Step(4 * sigdb.FastPeriod); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if v, _ := b.Read(sigdb.SigACCSetSpeed); v != 25 {
		t.Errorf("slow signal after transmit = %v, want 25", v)
	}
}

func TestBusLatchesWirePrecision(t *testing.T) {
	b := newTestBus(t)
	v := 0.1 // not exactly representable in float32
	if err := b.Set(sigdb.SigVelocity, v); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := b.Step(0); err != nil {
		t.Fatalf("Step: %v", err)
	}
	got, _ := b.Read(sigdb.SigVelocity)
	if want := float64(float32(v)); got != want {
		t.Errorf("latched %v, want wire precision %v", got, want)
	}
}

func TestBusPreservesNaNOverWire(t *testing.T) {
	b := newTestBus(t)
	if err := b.Set(sigdb.SigTargetRange, math.NaN()); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := b.Step(0); err != nil {
		t.Fatalf("Step: %v", err)
	}
	got, _ := b.Read(sigdb.SigTargetRange)
	if !math.IsNaN(got) {
		t.Errorf("latched %v, want NaN", got)
	}
}

func TestBusUnknownSignal(t *testing.T) {
	b := newTestBus(t)
	if err := b.Set("NoSuchSignal", 1); err == nil {
		t.Error("Set of unknown signal accepted")
	}
	if _, err := b.Read("NoSuchSignal"); err == nil {
		t.Error("Read of unknown signal accepted")
	}
}

func TestBusLogGrowth(t *testing.T) {
	b := newTestBus(t)
	for tick := 0; tick < 8; tick++ {
		if err := b.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	// 8 ticks: 6 fast frames every tick + slow frame at ticks 0 and 4.
	want := 8*6 + 2
	if got := b.Log().Len(); got != want {
		t.Errorf("log has %d frames, want %d", got, want)
	}
}

// TestLogRoundTripQuick property-tests binary log serialization over
// arbitrary frame contents.
func TestLogRoundTripQuick(t *testing.T) {
	f := func(ids []uint32, payload [8]byte) bool {
		var l Log
		for i, id := range ids {
			fr := Frame{Time: time.Duration(i) * time.Millisecond, ID: id, Data: payload}
			if err := l.Append(fr); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadLog(&buf)
		if err != nil {
			return false
		}
		if got.Len() != l.Len() {
			return false
		}
		for i := range got.Frames() {
			if got.Frames()[i] != l.Frames()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package can models the vehicle's broadcast network: timestamped
// frames, a latching broadcast bus, a periodic transmit schedule with
// bounded jitter, and a frame log.
//
// The monitor's passivity argument rests on this package: the only thing
// the monitor ever consumes is a Log, which is exactly what a bolt-on
// listener tapping the physical bus would record.
package can

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"cpsmon/internal/sigdb"
)

// Frame is one broadcast CAN frame with its capture timestamp.
type Frame struct {
	// Time is the capture time relative to the start of the recording.
	Time time.Duration
	// ID is the CAN identifier.
	ID uint32
	// Data is the 8-byte payload.
	Data [8]byte
}

// Log is an append-only recording of broadcast frames, ordered by time.
type Log struct {
	frames []Frame
}

// Append records a frame. Frames must be appended in non-decreasing time
// order; out-of-order appends are rejected so a log is always a valid
// trace source.
func (l *Log) Append(f Frame) error {
	if n := len(l.frames); n > 0 && f.Time < l.frames[n-1].Time {
		return fmt.Errorf("can: out-of-order append at %v after %v", f.Time, l.frames[n-1].Time)
	}
	l.frames = append(l.frames, f)
	return nil
}

// Len returns the number of recorded frames.
func (l *Log) Len() int { return len(l.frames) }

// Frames returns the recorded frames. The returned slice is shared with
// the log and must not be modified.
func (l *Log) Frames() []Frame { return l.frames }

// Duration returns the timestamp of the last recorded frame, or zero for
// an empty log.
func (l *Log) Duration() time.Duration {
	if len(l.frames) == 0 {
		return 0
	}
	return l.frames[len(l.frames)-1].Time
}

var logMagic = [8]byte{'C', 'P', 'S', 'C', 'A', 'N', '1', '\n'}

// WriteTo serializes the log in a compact binary format.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	m, err := bw.Write(logMagic[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(l.frames)))
	m, err = bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var rec [20]byte
	for _, f := range l.frames {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(f.Time))
		binary.LittleEndian.PutUint32(rec[8:12], f.ID)
		copy(rec[12:20], f.Data[:])
		m, err = bw.Write(rec[:])
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadLog deserializes a log written by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("can: read log header: %w", err)
	}
	if magic != logMagic {
		return nil, errors.New("can: not a CAN log (bad magic)")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("can: read log length: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxFrames = 1 << 28 // sanity bound: ~5 GiB of records
	if count > maxFrames {
		return nil, fmt.Errorf("can: implausible frame count %d", count)
	}
	l := &Log{frames: make([]Frame, 0, count)}
	var rec [20]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("can: read frame %d: %w", i, err)
		}
		f := Frame{
			Time: time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
			ID:   binary.LittleEndian.Uint32(rec[8:12]),
		}
		copy(f.Data[:], rec[12:20])
		if err := l.Append(f); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// TxSchedule decides when each periodic frame is due, including the
// bounded jitter the paper observed: a slow frame occasionally slips by
// one base tick, so five fast updates land between two slow updates.
type TxSchedule struct {
	db         *sigdb.DB
	base       time.Duration
	jitterProb float64
	rng        *rand.Rand
	next       map[uint32]time.Duration
	order      []uint32
	due        []uint32 // reusable Due result buffer
}

// NewTxSchedule builds a schedule for every frame in the database.
// base is the simulation tick; jitterProb is the per-emission probability
// that a frame slower than base slips by one tick. rng may be nil when
// jitterProb is zero.
func NewTxSchedule(db *sigdb.DB, base time.Duration, jitterProb float64, rng *rand.Rand) (*TxSchedule, error) {
	if base <= 0 {
		return nil, fmt.Errorf("can: non-positive base tick %v", base)
	}
	if jitterProb < 0 || jitterProb > 1 {
		return nil, fmt.Errorf("can: jitter probability %v out of [0,1]", jitterProb)
	}
	if jitterProb > 0 && rng == nil {
		return nil, errors.New("can: jitter requires a random source")
	}
	s := &TxSchedule{
		db:         db,
		base:       base,
		jitterProb: jitterProb,
		rng:        rng,
		next:       make(map[uint32]time.Duration),
	}
	for _, f := range db.Frames() {
		if f.Period%base != 0 {
			return nil, fmt.Errorf("can: frame %q period %v is not a multiple of tick %v", f.Name, f.Period, base)
		}
		s.next[f.ID] = 0
		s.order = append(s.order, f.ID)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return s, nil
}

// Due returns the IDs of frames due at time now and schedules their next
// emissions. IDs are returned in ascending order for determinism. The
// returned slice is the schedule's reusable scratch — valid only until
// the next call to Due.
func (s *TxSchedule) Due(now time.Duration) []uint32 {
	due := s.due[:0]
	for _, id := range s.order {
		if s.next[id] > now {
			continue
		}
		due = append(due, id)
		f, _ := s.db.Frame(id)
		next := s.next[id] + f.Period
		if f.Period > s.base && s.jitterProb > 0 && s.rng.Float64() < s.jitterProb {
			next += s.base
		}
		// Catch up if the caller skipped ticks.
		for next <= now {
			next += f.Period
		}
		s.next[id] = next
	}
	s.due = due
	return due
}

// Bus is a latching broadcast bus. Publishers update their local copies
// of signals with Set; on each Step the due frames are packed from those
// copies, logged, and latched so that receivers observe them via Read.
//
// This models the real system's semantics: a receiver holds the most
// recently broadcast value of a signal until the next frame carrying it
// arrives, which is the root of the multi-rate sampling issues explored
// in the paper's Section V.C.1.
type Bus struct {
	db    *sigdb.DB
	sched *TxSchedule
	// plan packs and unpacks frames against the slot vectors below —
	// the simulation ticks millions of times per campaign, so the bus
	// works in flat vectors (one map lookup per Set, none per Step)
	// instead of allocating a value map per frame.
	plan    *sigdb.DecodePlan
	slot    map[string]int
	pending []float64
	latched []float64
	log     *Log
}

// NewBus creates a bus over the database with the given transmit
// schedule. All signals start latched at zero, matching a network where
// nodes boot broadcasting default values.
func NewBus(db *sigdb.DB, sched *TxSchedule) *Bus {
	names := db.SignalNames()
	// The ordering comes straight from the database, so compilation
	// cannot fail.
	plan, _ := db.CompilePlan(names)
	b := &Bus{
		db:      db,
		sched:   sched,
		plan:    plan,
		slot:    make(map[string]int, len(names)),
		pending: make([]float64, len(names)),
		latched: make([]float64, len(names)),
		log:     &Log{},
	}
	for i, name := range names {
		b.slot[name] = i
	}
	return b
}

// Set updates the publisher-side value of a signal. The new value is not
// visible to receivers until the carrying frame is next transmitted.
func (b *Bus) Set(name string, v float64) error {
	i, ok := b.slot[name]
	if !ok {
		return fmt.Errorf("can: set of unknown signal %q", name)
	}
	b.pending[i] = v
	return nil
}

// Read returns the last broadcast value of a signal, as any receiver on
// the bus would observe it.
func (b *Bus) Read(name string) (float64, error) {
	i, ok := b.slot[name]
	if !ok {
		return 0, fmt.Errorf("can: read of unknown signal %q", name)
	}
	return b.latched[i], nil
}

// Step transmits every frame due at time now: packs the pending signal
// values, appends the frame to the log, and latches the values for
// receivers.
func (b *Bus) Step(now time.Duration) error {
	for _, id := range b.sched.Due(now) {
		data, err := b.plan.PackFrom(id, b.pending)
		if err != nil {
			return err
		}
		if err := b.log.Append(Frame{Time: now, ID: id, Data: data}); err != nil {
			return err
		}
		// Latch what actually went over the wire (float32 precision,
		// saturated enums), not the publisher's float64 copy, so that
		// receivers and the offline monitor observe identical values.
		if _, err := b.plan.UnpackInto(id, data, b.latched); err != nil {
			return err
		}
	}
	return nil
}

// Log returns the frame log accumulated so far.
func (b *Bus) Log() *Log { return b.log }

// Package flight is the repository's low-overhead latency tracer: a
// sampled flight recorder for the frame→verdict pipeline. It holds a
// fixed-size lock-free ring of span records — one span per (pipeline
// stage, sampled batch) — plus an exemplar table retaining the slowest
// end-to-end traces seen, and a rolling-window latency SLO tracker.
//
// The design principle is the same as internal/obs: all cost is pushed
// off the hot path. The sampling decision is one atomic increment per
// batch; an unsampled batch pays nothing else. A sampled batch writes
// fixed-width span records into pre-allocated ring slots through plain
// atomics — no locks, no allocation, no string formatting. Strings
// (vehicle identities, rule names) are interned once, off the hot
// path, into small integer refs; the ring stores only the refs and a
// snapshot resolves them back.
//
// Ring slots are guarded by a per-slot version word (a seqlock with
// CAS-claimed write ownership): a writer that loses the claim race
// drops its span and counts it, and a reader discards any slot whose
// version moved while it was copying — so a snapshot can run
// concurrently with recording and never observes a torn span.
//
// Like obs, faultnet and sigdb, this package is a leaf: it imports
// nothing of cpsmon (pinned by arch_test), so every layer from the
// monitor engine to the fleet client can record into it without
// dependency cycles.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one hop of the frame→verdict pipeline.
type Stage uint8

const (
	// StageIngest is queue wait: a batch entering its session queue to
	// the worker dequeuing it.
	StageIngest Stage = iota
	// StageDecode is frame decode into the latched signal vector.
	StageDecode
	// StageEval is rule evaluation: the grid steps a batch finalized.
	StageEval
	// StageEmit is event serialization and the flush to the client.
	StageEmit
	// StageArchive is one archive pump write reaching the Archiver.
	StageArchive
	// StageLedger is one durable watermark sync: the archive barrier
	// plus the fsync'd ledger append. Fsync stalls surface here.
	StageLedger
	// StageDeliver is client-side delivery: a batch leaving the client
	// to the server's cumulative ack covering it.
	StageDeliver
	numStages
)

// NumStages is the number of distinct pipeline stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	StageIngest:  "ingest",
	StageDecode:  "decode",
	StageEval:    "eval",
	StageEmit:    "emit",
	StageArchive: "archive",
	StageLedger:  "ledger",
	StageDeliver: "deliver",
}

// String names the stage as it appears in snapshots and admin output.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Ref is an interned string handle (a vehicle identity or a rule
// name). The zero Ref resolves to the empty string.
type Ref uint32

// Span is one recorded stage timing, as resolved by Snapshot.
type Span struct {
	// Session and Vehicle identify the monitored session.
	Session uint64 `json:"session"`
	Vehicle string `json:"vehicle"`
	// Stage is the pipeline hop this span times.
	Stage string `json:"stage"`
	// Rule is set on per-rule eval spans, empty otherwise.
	Rule string `json:"rule,omitempty"`
	// Seq is the batch sequence the span belongs to (0 on v1 sessions
	// and for spans not tied to a batch).
	Seq uint64 `json:"seq"`
	// Start is the span's wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_nano"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur_nanos"`
}

// slot is one ring cell. ver is even and monotonically increasing when
// the cell is stable; a writer claims the cell by CASing ver to odd,
// stores the fields, then publishes with ver+2. Every field is atomic,
// so concurrent readers and a losing writer race cleanly (the reader's
// version re-check discards any mix it might have copied).
type slot struct {
	ver     atomic.Uint64
	session atomic.Uint64
	seq     atomic.Uint64
	start   atomic.Int64
	dur     atomic.Int64
	vehicle atomic.Uint32
	rule    atomic.Uint32
	stage   atomic.Uint32
}

// Config sizes a Recorder. The zero value selects the defaults.
type Config struct {
	// RingSize is the span ring capacity, rounded up to a power of
	// two. Default 4096 (~256KiB of slots).
	RingSize int
	// SampleEvery records every Nth batch; 1 records every batch.
	// Default 64.
	SampleEvery int
	// Exemplars is how many slowest end-to-end traces are retained.
	// Default 8.
	Exemplars int
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use; Record and Sample are lock-free and allocation-free. A nil
// *Recorder is a valid "recording off" recorder: Sample reports false
// and Record is a no-op, so call sites need no nil checks of their own.
type Recorder struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // next slot to claim
	tick  atomic.Uint64 // sampling counter
	every uint64

	recorded atomic.Uint64 // spans successfully published
	dropped  atomic.Uint64 // spans lost to a slot-claim race
	sampled  atomic.Uint64 // batches that won the sampling decision

	// intern is the Ref table; interning takes the lock, resolving a
	// snapshot copies the table once. Refs are handed out off the hot
	// path (session attach, spec compile).
	internMu sync.Mutex
	interned []string
	internIx map[string]Ref

	ex exemplars
}

// New builds a Recorder with the given configuration.
func New(cfg Config) *Recorder {
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	// Round up to a power of two so the ring index is a mask.
	n := 1
	for n < size {
		n <<= 1
	}
	every := cfg.SampleEvery
	if every <= 0 {
		every = 64
	}
	keep := cfg.Exemplars
	if keep <= 0 {
		keep = 8
	}
	r := &Recorder{
		slots:    make([]slot, n),
		mask:     uint64(n - 1),
		every:    uint64(every),
		interned: []string{""},
		internIx: map[string]Ref{"": 0},
	}
	r.ex.keep = keep
	return r
}

// SampleEvery returns the configured sampling period (1 = every batch).
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.every)
}

// Intern returns the Ref for s, interning it on first use. It takes a
// lock — call it at session setup or spec compile, never per batch.
func (r *Recorder) Intern(s string) Ref {
	if r == nil {
		return 0
	}
	r.internMu.Lock()
	defer r.internMu.Unlock()
	if ref, ok := r.internIx[s]; ok {
		return ref
	}
	ref := Ref(len(r.interned))
	r.interned = append(r.interned, s)
	r.internIx[s] = ref
	return ref
}

// resolve returns the interned string for ref.
func (r *Recorder) resolve(table []string, ref uint32) string {
	if int(ref) < len(table) {
		return table[ref]
	}
	return ""
}

// Sample is the per-batch sampling decision: one atomic increment, true
// every SampleEvery-th call. A nil recorder never samples.
func (r *Recorder) Sample() bool {
	if r == nil {
		return false
	}
	if r.tick.Add(1)%r.every != 0 {
		return false
	}
	r.sampled.Add(1)
	return true
}

// Record publishes one span into the ring. It is lock-free and
// allocation-free: a writer that loses the (rare, ring-wrap) claim
// race for its slot drops the span and counts it instead of spinning.
// rule is 0 for spans not attributed to a single rule.
func (r *Recorder) Record(session uint64, vehicle Ref, stage Stage, rule Ref, seq uint64, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	s := &r.slots[(r.pos.Add(1)-1)&r.mask]
	v := s.ver.Load()
	if v&1 != 0 || !s.ver.CompareAndSwap(v, v+1) {
		r.dropped.Add(1)
		return
	}
	s.session.Store(session)
	s.seq.Store(seq)
	s.start.Store(start.UnixNano())
	s.dur.Store(int64(dur))
	s.vehicle.Store(uint32(vehicle))
	s.rule.Store(uint32(rule))
	s.stage.Store(uint32(stage))
	s.ver.Store(v + 2)
	r.recorded.Add(1)
}

// Stats reports the recorder's own accounting: spans published, spans
// lost to slot-claim races, and batches that won the sampling decision.
func (r *Recorder) Stats() (recorded, dropped, sampled uint64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.recorded.Load(), r.dropped.Load(), r.sampled.Load()
}

// Snapshot is a point-in-time dump of the recorder: the decoded ring
// (valid spans only, oldest first best-effort) plus the slowest
// end-to-end exemplar traces. It is what /debug/flight serves.
type Snapshot struct {
	// RingSize and SampleEvery echo the configuration.
	RingSize    int `json:"ring_size"`
	SampleEvery int `json:"sample_every"`
	// Recorded, Dropped and Sampled are the Stats() counters.
	Recorded uint64 `json:"spans_recorded"`
	Dropped  uint64 `json:"spans_dropped"`
	Sampled  uint64 `json:"batches_sampled"`
	// Spans is the ring contents: every stable slot, in ring order
	// starting at the oldest surviving span.
	Spans []Span `json:"spans"`
	// Slowest is the exemplar table: the slowest end-to-end
	// frame→verdict traces retained, slowest first.
	Slowest []Trace `json:"slowest"`
}

// Snapshot captures the ring and exemplar table. It runs concurrently
// with recording: slots mid-write (or rewritten during the copy) are
// skipped, never emitted torn. A nil recorder yields a zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.internMu.Lock()
	table := r.interned[:len(r.interned):len(r.interned)]
	r.internMu.Unlock()

	snap := Snapshot{
		RingSize:    len(r.slots),
		SampleEvery: int(r.every),
		Recorded:    r.recorded.Load(),
		Dropped:     r.dropped.Load(),
		Sampled:     r.sampled.Load(),
		Spans:       make([]Span, 0, len(r.slots)),
	}
	// pos is where the next write lands, so ring order starting there
	// walks oldest → newest.
	head := r.pos.Load()
	for i := uint64(0); i < uint64(len(r.slots)); i++ {
		s := &r.slots[(head+i)&r.mask]
		v1 := s.ver.Load()
		if v1 == 0 || v1&1 != 0 {
			continue // never written, or mid-write
		}
		sp := Span{
			Session: s.session.Load(),
			Seq:     s.seq.Load(),
			Start:   s.start.Load(),
			Dur:     s.dur.Load(),
		}
		vehicle := s.vehicle.Load()
		rule := s.rule.Load()
		stage := s.stage.Load()
		if s.ver.Load() != v1 {
			continue // rewritten under us; drop the mix
		}
		sp.Vehicle = r.resolve(table, vehicle)
		sp.Rule = r.resolve(table, rule)
		sp.Stage = Stage(stage).String()
		snap.Spans = append(snap.Spans, sp)
	}
	snap.Slowest = r.ex.snapshot(r, table)
	return snap
}

// Trace is one end-to-end exemplar: a sampled batch's full
// frame→verdict latency with its per-stage breakdown.
type Trace struct {
	Session uint64 `json:"session"`
	Vehicle string `json:"vehicle"`
	Seq     uint64 `json:"seq"`
	// Start is the batch's enqueue instant in Unix nanoseconds.
	Start int64 `json:"start_unix_nano"`
	// E2E is the end-to-end latency in nanoseconds: enqueue to the
	// events of the batch flushed toward the client.
	E2E int64 `json:"e2e_nanos"`
	// Stages breaks E2E down by pipeline stage, nanoseconds each.
	Stages map[string]int64 `json:"stages"`
}

// exemplar is the internal (ref-compressed) form of a Trace.
type exemplar struct {
	session uint64
	vehicle Ref
	seq     uint64
	start   int64
	e2e     int64
	stages  [numStages]int64
}

// exemplars retains the keep slowest end-to-end traces under a mutex.
// Only sampled batches reach it — a handful of operations per second —
// so a lock is the simplest correct structure.
type exemplars struct {
	mu   sync.Mutex
	keep int
	// slow is kept sorted descending by e2e; the last element is the
	// cheapest to evict.
	slow []exemplar
}

// Exemplar offers one completed end-to-end measurement to the slowest
// table. stages holds per-stage nanoseconds indexed by Stage.
func (r *Recorder) Exemplar(session uint64, vehicle Ref, seq uint64, start time.Time, e2e time.Duration, stages [NumStages]int64) {
	if r == nil {
		return
	}
	e := exemplar{
		session: session,
		vehicle: vehicle,
		seq:     seq,
		start:   start.UnixNano(),
		e2e:     int64(e2e),
		stages:  stages,
	}
	x := &r.ex
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(x.slow) >= x.keep {
		if e.e2e <= x.slow[len(x.slow)-1].e2e {
			return // faster than everything retained
		}
		x.slow = x.slow[:len(x.slow)-1]
	}
	i := sort.Search(len(x.slow), func(i int) bool { return x.slow[i].e2e < e.e2e })
	x.slow = append(x.slow, exemplar{})
	copy(x.slow[i+1:], x.slow[i:])
	x.slow[i] = e
}

// snapshot resolves the exemplar table into Traces, slowest first.
func (x *exemplars) snapshot(r *Recorder, table []string) []Trace {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Trace, 0, len(x.slow))
	for _, e := range x.slow {
		t := Trace{
			Session: e.session,
			Vehicle: r.resolve(table, uint32(e.vehicle)),
			Seq:     e.seq,
			Start:   e.start,
			E2E:     e.e2e,
			Stages:  make(map[string]int64, numStages),
		}
		for s := Stage(0); s < numStages; s++ {
			if e.stages[s] != 0 {
				t.Stages[s.String()] = e.stages[s]
			}
		}
		out = append(out, t)
	}
	return out
}

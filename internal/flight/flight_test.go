package flight

import (
	"sync"
	"testing"
	"time"
)

func TestSamplingHonored(t *testing.T) {
	r := New(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 400; i++ {
		if r.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("SampleEvery=4 over 400 batches sampled %d, want 100", hits)
	}
	_, _, sampled := r.Stats()
	if sampled != 100 {
		t.Errorf("Stats sampled = %d, want 100", sampled)
	}

	every := New(Config{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		if !every.Sample() {
			t.Fatal("SampleEvery=1 skipped a batch")
		}
	}
}

func TestNilRecorderIsOff(t *testing.T) {
	var r *Recorder
	if r.Sample() {
		t.Error("nil recorder sampled")
	}
	r.Record(1, 0, StageEval, 0, 1, time.Now(), time.Millisecond)
	r.Exemplar(1, 0, 1, time.Now(), time.Millisecond, [NumStages]int64{})
	if got := r.Snapshot(); len(got.Spans) != 0 || len(got.Slowest) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", got)
	}
	if r.Intern("x") != 0 {
		t.Error("nil recorder interned a ref")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := New(Config{RingSize: 8, SampleEvery: 1})
	veh := r.Intern("veh-1")
	rule := r.Intern("R1")
	base := time.Unix(100, 0)
	r.Record(7, veh, StageIngest, 0, 3, base, 2*time.Millisecond)
	r.Record(7, veh, StageEval, rule, 3, base.Add(2*time.Millisecond), 5*time.Millisecond)

	snap := r.Snapshot()
	if snap.RingSize != 8 || snap.SampleEvery != 1 {
		t.Errorf("snapshot config echo = %d/%d, want 8/1", snap.RingSize, snap.SampleEvery)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("snapshot holds %d spans, want 2: %+v", len(snap.Spans), snap.Spans)
	}
	first, second := snap.Spans[0], snap.Spans[1]
	if first.Stage != "ingest" || first.Session != 7 || first.Vehicle != "veh-1" || first.Seq != 3 ||
		first.Start != base.UnixNano() || first.Dur != int64(2*time.Millisecond) || first.Rule != "" {
		t.Errorf("ingest span = %+v", first)
	}
	if second.Stage != "eval" || second.Rule != "R1" || second.Dur != int64(5*time.Millisecond) {
		t.Errorf("eval span = %+v", second)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(Config{RingSize: 4, SampleEvery: 1})
	veh := r.Intern("v")
	for i := 0; i < 10; i++ {
		r.Record(uint64(i), veh, StageEmit, 0, uint64(i), time.Unix(int64(i), 0), time.Millisecond)
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("ring of 4 holds %d spans", len(snap.Spans))
	}
	// Oldest → newest: sessions 6, 7, 8, 9.
	for i, sp := range snap.Spans {
		if want := uint64(6 + i); sp.Session != want {
			t.Errorf("span %d session = %d, want %d (oldest-first ring order)", i, sp.Session, want)
		}
	}
}

func TestExemplarRetainsSlowest(t *testing.T) {
	r := New(Config{Exemplars: 3})
	veh := r.Intern("veh-9")
	at := time.Unix(50, 0)
	for i, e2e := range []time.Duration{5, 30, 10, 40, 20, 1} {
		var stages [NumStages]int64
		stages[StageEval] = int64(e2e*time.Millisecond) / 2
		r.Exemplar(1, veh, uint64(i+1), at, e2e*time.Millisecond, stages)
	}
	got := r.Snapshot().Slowest
	if len(got) != 3 {
		t.Fatalf("retained %d exemplars, want 3", len(got))
	}
	wantE2E := []int64{int64(40 * time.Millisecond), int64(30 * time.Millisecond), int64(20 * time.Millisecond)}
	for i, tr := range got {
		if tr.E2E != wantE2E[i] {
			t.Errorf("exemplar %d e2e = %d, want %d (slowest first)", i, tr.E2E, wantE2E[i])
		}
		if tr.Vehicle != "veh-9" {
			t.Errorf("exemplar %d vehicle = %q", i, tr.Vehicle)
		}
		if tr.Stages["eval"] != tr.E2E/2 {
			t.Errorf("exemplar %d stage map = %v", i, tr.Stages)
		}
	}
}

func TestInternIsStable(t *testing.T) {
	r := New(Config{})
	a := r.Intern("alpha")
	b := r.Intern("beta")
	if a == b {
		t.Fatal("distinct strings share a ref")
	}
	if r.Intern("alpha") != a {
		t.Error("re-interning returned a new ref")
	}
	if r.Intern("") != 0 {
		t.Error("empty string is not ref 0")
	}
}

// TestRingConcurrencyNoTornSpans hammers the ring from many writers
// while snapshots run concurrently, and asserts every surfaced span is
// internally consistent. Writers encode a checkable invariant into
// each span (seq == session*1000+i, dur == start's second), so a torn
// read — fields mixed from two writers — is detectable. Run under
// -race this also proves the seqlock protocol is data-race-free.
func TestRingConcurrencyNoTornSpans(t *testing.T) {
	r := New(Config{RingSize: 64, SampleEvery: 1})
	const writers, perWriter = 8, 2000
	refs := make([]Ref, writers)
	for w := range refs {
		refs[w] = r.Intern(string(rune('a' + w)))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for _, sp := range snap.Spans {
				w := sp.Session / 1_000_000
				i := sp.Session % 1_000_000
				if sp.Seq != w*1000+i%1000 || sp.Dur != int64(w+1) {
					snapMu.Lock()
					if snapErr == nil {
						snapErr = &tornSpanError{sp}
					}
					snapMu.Unlock()
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				session := uint64(w)*1_000_000 + uint64(i)
				r.Record(session, refs[w], Stage(i%NumStages), 0,
					uint64(w)*1000+uint64(i%1000), time.Unix(0, 0), time.Duration(w+1))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish quickly; give the reader a beat, then stop it.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	if snapErr != nil {
		t.Fatalf("torn span surfaced: %v", snapErr)
	}
	recorded, dropped, _ := r.Stats()
	if recorded+dropped != writers*perWriter {
		t.Errorf("recorded %d + dropped %d != %d spans written", recorded, dropped, writers*perWriter)
	}
	if recorded == 0 {
		t.Error("every span was dropped")
	}
}

type tornSpanError struct{ sp Span }

func (e *tornSpanError) Error() string { return "inconsistent span fields" }

func TestSLOBurn(t *testing.T) {
	s := NewSLO(10*time.Millisecond, 0.9, time.Minute)
	clock := int64(time.Hour) // far from epoch 0 so bucket epochs are nonzero
	s.now = func() int64 { return clock }

	for i := 0; i < 90; i++ {
		s.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.Observe(time.Second)
	}
	good, bad := s.Counts()
	if good != 90 || bad != 10 {
		t.Fatalf("counts = %d good / %d bad, want 90/10", good, bad)
	}
	// 10% bad over a 10% budget: burning exactly at the allowed rate.
	if burn := s.Burn(); burn < 0.99 || burn > 1.01 {
		t.Errorf("burn = %v, want ~1.0", burn)
	}
	if !s.Degraded() {
		t.Error("burn 1.0 not reported degraded")
	}

	// Advance past the window: everything ages out.
	clock += int64(2 * time.Minute)
	if good, bad := s.Counts(); good != 0 || bad != 0 {
		t.Errorf("counts after window expiry = %d/%d, want 0/0", good, bad)
	}
	if s.Burn() != 0 {
		t.Errorf("burn after expiry = %v, want 0", s.Burn())
	}

	// Fresh healthy traffic: burn falls to zero.
	for i := 0; i < 100; i++ {
		s.Observe(time.Millisecond)
	}
	if s.Burn() != 0 || s.Degraded() {
		t.Errorf("healthy traffic burns %v", s.Burn())
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	if s.Burn() != 0 || s.Degraded() || s.Target() != 0 {
		t.Error("nil SLO not inert")
	}
}

func TestSLOBucketRollover(t *testing.T) {
	s := NewSLO(10*time.Millisecond, 0.99, 12*time.Second) // 1s buckets
	clock := int64(time.Hour)
	s.now = func() int64 { return clock }
	s.Observe(time.Second) // bad
	// A full window later the same ring bucket recurs; its stale count
	// must reset rather than accumulate.
	clock += int64(12 * time.Second)
	s.Observe(time.Millisecond) // good, same bucket index
	good, bad := s.Counts()
	if good != 1 || bad != 0 {
		t.Errorf("counts after rollover = %d good / %d bad, want 1/0", good, bad)
	}
}

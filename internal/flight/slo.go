package flight

import (
	"sync/atomic"
	"time"
)

// SLO tracks a detection-latency service-level objective over a
// rolling window: every end-to-end verdict latency at or under Target
// is good, everything slower is bad, and the burn rate is the bad
// fraction divided by the error budget (1 − Objective). A burn rate of
// 1.0 means the service is spending its budget exactly as fast as the
// objective allows; sustained burn above 1.0 means the SLO will be
// violated over the window — the fleet health endpoint reports the
// service degraded at that point.
//
// The window is a ring of time buckets updated with atomics: Observe
// is lock-free and allocation-free, so it can run once per ingested
// batch without touching the hot path's pinned costs. Bucket resets
// race observations arriving in the same instant by design — a
// monitoring estimate, not an audit log.
type SLO struct {
	target    int64   // nanoseconds
	budget    float64 // 1 - objective
	objective float64
	bucketDur int64 // nanoseconds per bucket
	buckets   []sloBucket

	// now is the clock, swappable in tests.
	now func() int64
}

type sloBucket struct {
	epoch     atomic.Int64 // bucket timestamp = epoch * bucketDur
	good, bad atomic.Uint64
}

// sloBuckets subdivides the window; more buckets smooth the roll-off
// at the cost of a longer scan per Burn call.
const sloBuckets = 12

// NewSLO builds a tracker for the given latency target and objective
// (the fraction of observations that must meet the target, e.g. 0.99)
// over a rolling window. Zero or out-of-range arguments select the
// defaults: 100ms target, 0.99 objective, 60s window.
func NewSLO(target time.Duration, objective float64, window time.Duration) *SLO {
	if target <= 0 {
		target = 100 * time.Millisecond
	}
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = time.Minute
	}
	bucketDur := int64(window) / sloBuckets
	if bucketDur < int64(time.Millisecond) {
		bucketDur = int64(time.Millisecond)
	}
	return &SLO{
		target:    int64(target),
		budget:    1 - objective,
		objective: objective,
		bucketDur: bucketDur,
		buckets:   make([]sloBucket, sloBuckets),
		now:       func() int64 { return time.Now().UnixNano() },
	}
}

// Target returns the latency target.
func (s *SLO) Target() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.target)
}

// Objective returns the good-fraction objective.
func (s *SLO) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}

// Window returns the rolling window length.
func (s *SLO) Window() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.bucketDur * sloBuckets)
}

// Observe records one end-to-end latency. Lock-free; a nil SLO is a
// no-op, so call sites need no nil checks.
func (s *SLO) Observe(latency time.Duration) {
	if s == nil {
		return
	}
	epoch := s.now() / s.bucketDur
	b := &s.buckets[epoch%sloBuckets]
	if e := b.epoch.Load(); e != epoch && b.epoch.CompareAndSwap(e, epoch) {
		// This observation opens the bucket's new epoch: clear the stale
		// window-ago counts. An observation racing between the CAS and
		// the stores can be lost — acceptable for a monitoring estimate.
		b.good.Store(0)
		b.bad.Store(0)
	}
	if int64(latency) <= s.target {
		b.good.Add(1)
	} else {
		b.bad.Add(1)
	}
}

// Counts returns the good and bad observation totals over the window.
func (s *SLO) Counts() (good, bad uint64) {
	if s == nil {
		return 0, 0
	}
	epoch := s.now() / s.bucketDur
	for i := range s.buckets {
		b := &s.buckets[i]
		e := b.epoch.Load()
		if e == 0 || epoch-e >= sloBuckets {
			continue // empty or aged out of the window
		}
		good += b.good.Load()
		bad += b.bad.Load()
	}
	return good, bad
}

// BadFraction returns the fraction of windowed observations that
// missed the target, zero when the window is empty.
func (s *SLO) BadFraction() float64 {
	good, bad := s.Counts()
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// Burn returns the windowed burn rate: BadFraction divided by the
// error budget. 1.0 burns the budget exactly as fast as the objective
// allows; above 1.0 the SLO is being violated over the window.
func (s *SLO) Burn() float64 {
	if s == nil {
		return 0
	}
	return s.BadFraction() / s.budget
}

// Degraded reports whether the window's burn rate is at or above 1.0 —
// the service is missing its detection-latency objective right now.
func (s *SLO) Degraded() bool {
	return s != nil && s.Burn() >= 1.0
}

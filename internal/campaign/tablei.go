// Package campaign orchestrates the paper's evaluation: the Table I
// robustness-testing matrix, the Section IV.A real-vehicle log
// analysis, and the discussion-section ablation experiments.
package campaign

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/inject"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
)

// Multi-target group labels, matching the paper's Table I rows.
const (
	// GroupRangePlus injects TargetRange, TargetRelVel and VehicleAhead
	// at once ("Range+").
	GroupRangePlus = "Range+"
	// GroupRangePlusSet additionally injects ACCSetSpeed ("Range+Set").
	GroupRangePlusSet = "Range+Set"
	// GroupAll injects all nine FSRACC inputs ("All").
	GroupAll = "All"
)

// groupSignals expands a group label to its signal names.
func groupSignals(group string) []string {
	switch group {
	case GroupRangePlus:
		return []string{sigdb.SigTargetRange, sigdb.SigTargetRelVel, sigdb.SigVehicleAhead}
	case GroupRangePlusSet:
		return []string{sigdb.SigTargetRange, sigdb.SigTargetRelVel, sigdb.SigVehicleAhead, sigdb.SigACCSetSpeed}
	case GroupAll:
		return sigdb.FSRACCInputs()
	default:
		return []string{group}
	}
}

// TableIConfig parameterizes the robustness campaign. The defaults
// reproduce the paper's protocol: eight injection values per
// single-target Random/Ballista test, four injections per bit-flip
// size (one, two and four bits), twenty injections per multi-target
// test, every fault held for 20 s.
type TableIConfig struct {
	// Seed derives all per-test random sources.
	Seed int64
	// Hold is how long each injected fault is held.
	Hold time.Duration
	// Recover is the fault-free gap between injections.
	Recover time.Duration
	// Settle is the scenario warm-in before the first injection.
	Settle time.Duration
	// Injections is the number of values per Random/Ballista test.
	Injections int
	// FlipsPerSize is the number of injections per bit-flip size.
	FlipsPerSize int
	// MultiInjections is the number of values per multi-target test.
	MultiInjections int
	// TypeChecking enables the HIL injection interface's type checks.
	TypeChecking bool
	// Parallelism bounds how many tests run concurrently. Every test
	// is an independent bench with its own seed, so results are
	// identical at any parallelism; 0 means GOMAXPROCS.
	Parallelism int
	// Progress, when non-nil, receives one line per completed test.
	// Under parallel execution lines appear in completion order.
	Progress io.Writer
}

// DefaultTableIConfig returns the paper's protocol.
func DefaultTableIConfig(seed int64) TableIConfig {
	return TableIConfig{
		Seed:            seed,
		Hold:            20 * time.Second,
		Recover:         13 * time.Second, // co-prime with the 120 s traffic cycle, so injections sweep all phases
		Settle:          15 * time.Second,
		Injections:      8,
		FlipsPerSize:    4,
		MultiInjections: 20,
		TypeChecking:    true,
	}
}

// Row is one Table I row: a (test, target) pair and its per-rule
// verdicts.
type Row struct {
	// Test is the row label: Random, Ballista, Bitflips, mRandom,
	// mBallista, mBitflip1, mBitflip2, mBitflip4.
	Test string `json:"test"`
	// Target is the injected signal or group label.
	Target string `json:"target"`
	// Verdicts holds one verdict per rule, in rules.Names() order.
	Verdicts []core.Verdict `json:"verdicts"`
	// Report is the full monitor report for the test trace. It is
	// omitted from JSON output, which carries only the table cells.
	Report *core.Report `json:"-"`
}

// TableI is the reproduced fault-injection results table.
type TableI struct {
	// RuleNames are the column labels.
	RuleNames []string `json:"rules"`
	// Rows are the test rows in paper order.
	Rows []Row `json:"rows"`
}

// singleTargets lists the eight single-signal injection targets in the
// paper's row order. (VehicleAhead, the ninth input, appears only in
// the multi-target groups, as in the paper.)
func singleTargets() []string {
	return []string{
		sigdb.SigVelocity,
		sigdb.SigTargetRange,
		sigdb.SigTargetRelVel,
		sigdb.SigACCSetSpeed,
		sigdb.SigThrotPos,
		sigdb.SigAccelPedPos,
		sigdb.SigBrakePedPres,
		sigdb.SigSelHeadway,
	}
}

// RunTableI executes the full robustness campaign and returns the
// reproduced Table I. Tests are fully independent benches with their
// own derived seeds, so they run concurrently (bounded by
// cfg.Parallelism) and the resulting table is identical at any
// parallelism level.
func RunTableI(cfg TableIConfig) (*TableI, error) {
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		return nil, err
	}

	type testSpec struct {
		test   string
		target string
		plan   []injectionStep
	}
	var specs []testSpec

	// Single-target tests: Random, Ballista, then bit flips, for each
	// of the eight targets (paper order groups by method).
	for _, method := range []inject.Method{inject.Random, inject.Ballista} {
		for _, target := range singleTargets() {
			specs = append(specs, testSpec{
				test: method.String(), target: target,
				plan: singlePlan(method, target, cfg.Injections, 0),
			})
		}
	}
	for _, target := range singleTargets() {
		// One bit-flip test per target covering one-, two- and
		// four-bit flips.
		var plan []injectionStep
		for _, bits := range []int{1, 2, 4} {
			plan = append(plan, singlePlan(inject.BitFlip, target, cfg.FlipsPerSize, bits)...)
		}
		specs = append(specs, testSpec{test: inject.BitFlip.String(), target: target, plan: plan})
	}

	// Multi-target tests, in the paper's row order.
	multis := []struct {
		test   string
		method inject.Method
		group  string
		bits   int
	}{
		{"mBallista", inject.Ballista, GroupRangePlus, 0},
		{"mBallista", inject.Ballista, GroupAll, 0},
		{"mRandom", inject.Random, GroupRangePlus, 0},
		{"mRandom", inject.Random, GroupAll, 0},
		{"mRandom", inject.Random, GroupRangePlusSet, 0},
		{"mBitflip1", inject.BitFlip, GroupRangePlus, 1},
		{"mBitflip2", inject.BitFlip, GroupRangePlus, 2},
		{"mBitflip4", inject.BitFlip, GroupRangePlus, 4},
	}
	for _, m := range multis {
		specs = append(specs, testSpec{
			test: m.test, target: m.group,
			plan: multiPlan(m.method, groupSignals(m.group), cfg.MultiInjections, m.bits),
		})
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	rows := make([]Row, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, workers)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sp := specs[i]
			// Per-test seeds depend only on the test's position, so
			// parallel and serial runs produce identical tables.
			seed := cfg.Seed + 1000*int64(i+1)
			row, err := runInjectionTest(cfg, mon, seed, sp.test, sp.target, sp.plan)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = row
			if cfg.Progress != nil {
				progressMu.Lock()
				fmt.Fprintf(cfg.Progress, "%-9s %-13s %s\n", sp.test, sp.target, verdictCells(row.Verdicts))
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &TableI{RuleNames: rules.Names(), Rows: rows}, nil
}

// injectionStep describes one fault of a test plan: which signals to
// corrupt and how to derive each injected value.
type injectionStep struct {
	targets []injectionTarget
}

type injectionTarget struct {
	signal string
	method inject.Method
	bits   int
}

func singlePlan(method inject.Method, signal string, count, bits int) []injectionStep {
	plan := make([]injectionStep, count)
	for i := range plan {
		plan[i] = injectionStep{targets: []injectionTarget{{signal: signal, method: method, bits: bits}}}
	}
	return plan
}

func multiPlan(method inject.Method, signals []string, count, bits int) []injectionStep {
	plan := make([]injectionStep, count)
	for i := range plan {
		st := injectionStep{}
		for _, s := range signals {
			st.targets = append(st.targets, injectionTarget{signal: s, method: method, bits: bits})
		}
		plan[i] = st
	}
	return plan
}

// runInjectionTest runs one Table I test: a fresh follow scenario with
// the plan's faults injected in sequence, then the monitor over the
// captured bus log.
func runInjectionTest(cfg TableIConfig, mon *core.Monitor, seed int64, test, target string, plan []injectionStep) (Row, error) {
	duration := cfg.Settle + time.Duration(len(plan))*(cfg.Hold+cfg.Recover)
	benchCfg := scenario.Follow(seed, duration)
	benchCfg.TypeChecking = cfg.TypeChecking
	bench, err := hil.New(benchCfg)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: %s %s: %w", test, target, err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	db := sigdb.Vehicle()

	next := 0
	injecting := false
	var injectEnd time.Duration
	onTick := func(now time.Duration, b *hil.Bench) error {
		if injecting && now >= injectEnd {
			b.ClearAllInjections()
			injecting = false
		}
		if injecting || next >= len(plan) {
			return nil
		}
		startAt := cfg.Settle + time.Duration(next)*(cfg.Hold+cfg.Recover)
		if now < startAt {
			return nil
		}
		step := plan[next]
		next++
		injecting = true
		injectEnd = now + cfg.Hold
		for _, tg := range step.targets {
			sig, ok := db.Signal(tg.signal)
			if !ok {
				return fmt.Errorf("campaign: unknown signal %q", tg.signal)
			}
			if err := applyInjection(rng, b, sig, tg, cfg.TypeChecking); err != nil {
				return err
			}
		}
		return nil
	}
	if err := bench.Run(duration, onTick); err != nil {
		return Row{}, fmt.Errorf("campaign: %s %s: %w", test, target, err)
	}
	rep, err := mon.CheckLog(bench.Log(), db)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: %s %s: %w", test, target, err)
	}
	row := Row{Test: test, Target: target, Report: rep}
	for _, name := range rules.Names() {
		rr, ok := rep.Rule(name)
		if !ok {
			return Row{}, fmt.Errorf("campaign: report missing rule %q", name)
		}
		row.Verdicts = append(row.Verdicts, rr.Verdict)
	}
	return row, nil
}

// applyInjection derives one injected value and enables the signal's
// multiplexor. On the type-checked HIL bench an injection the interface
// rejects (an out-of-range bit-flipped enum, say) is retried with fresh
// randomness a few times and then skipped, which is exactly the
// limitation the paper reports the bench imposing.
func applyInjection(rng *rand.Rand, b *hil.Bench, sig *sigdb.Signal, tg injectionTarget, typeChecked bool) error {
	const retries = 8
	for attempt := 0; attempt < retries; attempt++ {
		var v float64
		switch tg.method {
		case inject.Random:
			v = inject.RandomValue(rng, sig, typeChecked)
		case inject.Ballista:
			v = inject.BallistaValue(rng, sig, typeChecked)
		case inject.BitFlip:
			cur, err := b.BusValue(sig.Name)
			if err != nil {
				return err
			}
			v = inject.FlipBits(rng, sig, cur, tg.bits)
		default:
			return fmt.Errorf("campaign: unknown method %v", tg.method)
		}
		err := b.SetInjection(sig.Name, v)
		if err == nil {
			return nil
		}
		// Rejected by the HIL's type checking: retry with new
		// randomness, then give up on this signal for this step.
	}
	return nil
}

func verdictCells(vs []core.Verdict) string {
	cells := make([]string, len(vs))
	for i, v := range vs {
		cells[i] = v.String()
	}
	return strings.Join(cells, " ")
}

// Render writes the table in the paper's layout.
func (t *TableI) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "FAULT INJECTION RESULTS"); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-13s", "Injection", "Target Signal")
	for i := range t.RuleNames {
		fmt.Fprintf(w, " %d", i)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 24+2*len(t.RuleNames)))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-10s %-13s %s\n", row.Test, row.Target, verdictCells(row.Verdicts))
	}
	return nil
}

// RenderDetail writes the table with, under each violated row, the
// per-rule violation counts broken down by triage class — the evidence
// behind each V cell.
func (t *TableI) RenderDetail(w io.Writer) error {
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nVIOLATION DETAIL (real/transient/negligible per rule)")
	for _, row := range t.Rows {
		if row.Report == nil {
			continue
		}
		any := false
		for _, rr := range row.Report.Rules {
			if rr.Verdict == core.Violated {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "%s %s:\n", row.Test, row.Target)
		for _, name := range t.RuleNames {
			rr, ok := row.Report.Rule(name)
			if !ok || rr.Verdict != core.Violated {
				continue
			}
			first := rr.Result.Violations[0]
			fmt.Fprintf(w, "  %-6s %3d violations (%d/%d/%d), first at %v for %v\n",
				name, len(rr.Result.Violations),
				rr.Count(core.ClassReal), rr.Count(core.ClassTransient), rr.Count(core.ClassNegligible),
				first.Start, first.Duration())
		}
	}
	return nil
}

// RenderCoverage writes the table with vacuously satisfied cells marked
// "s" (lower case): the rule passed but its antecedent never fired, so
// that cell is no evidence the system is safe under that fault — only
// that the test did not exercise the rule. This implements the
// oracle-adequacy check behind the paper's remark that "coverage of the
// safety rules is not intended to be complete".
func (t *TableI) RenderCoverage(w io.Writer) error {
	fmt.Fprintln(w, "FAULT INJECTION RESULTS WITH VACUITY (s = satisfied but never exercised)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-13s", "Injection", "Target Signal")
	for i := range t.RuleNames {
		fmt.Fprintf(w, " %d", i)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 24+2*len(t.RuleNames)))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-10s %-13s", row.Test, row.Target)
		for i, v := range row.Verdicts {
			cell := v.String()
			if v == core.Satisfied && row.Report != nil {
				if rr, ok := row.Report.Rule(t.RuleNames[i]); ok && rr.Vacuous() {
					cell = "s"
				}
			}
			fmt.Fprintf(w, " %s", cell)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Verdict returns the verdict for a (test, target, rule) cell.
func (t *TableI) Verdict(test, target string, ruleIdx int) (core.Verdict, bool) {
	for _, row := range t.Rows {
		if row.Test == test && row.Target == target {
			if ruleIdx < 0 || ruleIdx >= len(row.Verdicts) {
				return 0, false
			}
			return row.Verdicts[ruleIdx], true
		}
	}
	return 0, false
}

// RulesViolatedAnywhere returns how many rules have at least one V cell
// — the paper reports "six out of the seven rules were detected as
// violated during testing (all except Rule #0)".
func (t *TableI) RulesViolatedAnywhere() int {
	n := 0
	for i := range t.RuleNames {
		for _, row := range t.Rows {
			if i < len(row.Verdicts) && row.Verdicts[i] == core.Violated {
				n++
				break
			}
		}
	}
	return n
}

package campaign

import (
	"fmt"
	"io"

	"cpsmon/internal/core"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
)

// paperCells holds the published Table I verdicts, row by row in paper
// order, columns Rule #0..#6. The paper's table labels the brake-pedal
// signal "BrakePedPos"; it is the same signal Figure 1 calls
// BrakePedPres, and we use the Figure 1 name throughout.
var paperCells = []struct {
	test   string
	target string
	cells  string // "S V S V S S V"
}{
	{"Random", sigdb.SigVelocity, "S V S V S S V"},
	{"Random", sigdb.SigTargetRange, "S S V S V S V"},
	{"Random", sigdb.SigTargetRelVel, "S V S S S S V"},
	{"Random", sigdb.SigACCSetSpeed, "S V S V S S V"},
	{"Random", sigdb.SigThrotPos, "S S S S S S S"},
	{"Random", sigdb.SigAccelPedPos, "S S S S S S S"},
	{"Random", sigdb.SigBrakePedPres, "S S S S S S S"},
	{"Random", sigdb.SigSelHeadway, "S S S S S S S"},
	{"Ballista", sigdb.SigVelocity, "S S V S S V V"},
	{"Ballista", sigdb.SigTargetRange, "S V S S S V V"},
	{"Ballista", sigdb.SigTargetRelVel, "S V S S S S V"},
	{"Ballista", sigdb.SigACCSetSpeed, "S S V V V S S"},
	{"Ballista", sigdb.SigThrotPos, "S S S S S S S"},
	{"Ballista", sigdb.SigAccelPedPos, "S S S S S S S"},
	{"Ballista", sigdb.SigBrakePedPres, "S S S S S S S"},
	{"Ballista", sigdb.SigSelHeadway, "S S S S S S S"},
	{"Bitflips", sigdb.SigVelocity, "S V V S V V V"},
	{"Bitflips", sigdb.SigTargetRange, "S V S S S V V"},
	{"Bitflips", sigdb.SigTargetRelVel, "S V S S S V V"},
	{"Bitflips", sigdb.SigACCSetSpeed, "S V S S S V V"},
	{"Bitflips", sigdb.SigThrotPos, "S S S S S S S"},
	{"Bitflips", sigdb.SigAccelPedPos, "S S S S S S S"},
	{"Bitflips", sigdb.SigBrakePedPres, "S S S S S S S"},
	{"Bitflips", sigdb.SigSelHeadway, "S S S S S S S"},
	{"mBallista", GroupRangePlus, "S V S S V V V"},
	{"mBallista", GroupAll, "S V S S S S S"},
	{"mRandom", GroupRangePlus, "S V V S V V S"},
	{"mRandom", GroupAll, "S V S S S V S"},
	{"mRandom", GroupRangePlusSet, "S V S S S V S"},
	{"mBitflip1", GroupRangePlus, "S V S S S V V"},
	{"mBitflip2", GroupRangePlus, "S V V V V V V"},
	{"mBitflip4", GroupRangePlus, "S V S S S V S"},
}

// PaperTableI returns the published Table I as a TableI value, for
// comparison against the reproduced table.
func PaperTableI() *TableI {
	t := &TableI{RuleNames: rules.Names()}
	for _, r := range paperCells {
		row := Row{Test: r.test, Target: r.target}
		for _, c := range r.cells {
			switch c {
			case 'S':
				row.Verdicts = append(row.Verdicts, core.Satisfied)
			case 'V':
				row.Verdicts = append(row.Verdicts, core.Violated)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TableComparison quantifies how a reproduced table tracks the paper.
type TableComparison struct {
	// Cells is the number of compared cells.
	Cells int
	// Matches is the number of cells with identical verdicts.
	Matches int
	// RowShapeMatches counts rows whose any-violation flag agrees
	// (both all-S, or both contain at least one V).
	RowShapeMatches int
	// Rows is the number of compared rows.
	Rows int
	// Rule0CleanBoth reports whether Rule #0 is all-S in both tables.
	Rule0CleanBoth bool
	// BenignRowsCleanBoth reports whether every pedal/throttle/headway
	// row is all-S in both tables.
	BenignRowsCleanBoth bool
}

// CellAgreement returns the fraction of matching cells.
func (c TableComparison) CellAgreement() float64 {
	if c.Cells == 0 {
		return 0
	}
	return float64(c.Matches) / float64(c.Cells)
}

// RowShapeAgreement returns the fraction of rows with matching
// any-violation shape.
func (c TableComparison) RowShapeAgreement() float64 {
	if c.Rows == 0 {
		return 0
	}
	return float64(c.RowShapeMatches) / float64(c.Rows)
}

// Compare matches a reproduced table against a reference (usually
// PaperTableI) by (test, target) row keys.
func Compare(got, ref *TableI) TableComparison {
	cmp := TableComparison{Rule0CleanBoth: true, BenignRowsCleanBoth: true}
	benign := map[string]bool{
		sigdb.SigThrotPos:     true,
		sigdb.SigAccelPedPos:  true,
		sigdb.SigBrakePedPres: true,
		sigdb.SigSelHeadway:   true,
	}
	for _, refRow := range ref.Rows {
		var gotRow *Row
		for i := range got.Rows {
			if got.Rows[i].Test == refRow.Test && got.Rows[i].Target == refRow.Target {
				gotRow = &got.Rows[i]
				break
			}
		}
		if gotRow == nil {
			continue
		}
		cmp.Rows++
		gotAny, refAny := false, false
		for i := range refRow.Verdicts {
			if i >= len(gotRow.Verdicts) {
				break
			}
			cmp.Cells++
			if gotRow.Verdicts[i] == refRow.Verdicts[i] {
				cmp.Matches++
			}
			if gotRow.Verdicts[i] == core.Violated {
				gotAny = true
				if i == 0 {
					cmp.Rule0CleanBoth = false
				}
				if benign[refRow.Target] {
					cmp.BenignRowsCleanBoth = false
				}
			}
			if refRow.Verdicts[i] == core.Violated {
				refAny = true
				if i == 0 {
					cmp.Rule0CleanBoth = false
				}
				if benign[refRow.Target] {
					cmp.BenignRowsCleanBoth = false
				}
			}
		}
		if gotAny == refAny {
			cmp.RowShapeMatches++
		}
	}
	return cmp
}

// RenderComparison writes the comparison summary.
func RenderComparison(w io.Writer, cmp TableComparison) error {
	fmt.Fprintf(w, "cells compared: %d, matching: %d (%.1f%%)\n",
		cmp.Cells, cmp.Matches, 100*cmp.CellAgreement())
	fmt.Fprintf(w, "row any-violation shape agreement: %d/%d (%.1f%%)\n",
		cmp.RowShapeMatches, cmp.Rows, 100*cmp.RowShapeAgreement())
	fmt.Fprintf(w, "Rule #0 clean in both: %v\n", cmp.Rule0CleanBoth)
	_, err := fmt.Fprintf(w, "benign rows (throttle/pedals/headway) clean in both: %v\n", cmp.BenignRowsCleanBoth)
	return err
}

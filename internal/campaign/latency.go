package campaign

import (
	"fmt"
	"io"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// LatencyStat characterizes one rule's online decision latency: how
// long after a violation begins the streaming monitor reports it.
type LatencyStat struct {
	// Rule is the rule name.
	Rule string `json:"rule"`
	// Horizon is the rule's theoretical decision latency: its temporal
	// lookahead.
	Horizon time.Duration `json:"horizonNanos"`
	// Begins is the number of violation-begin events observed.
	Begins int `json:"begins"`
	// MaxLatency and MeanLatency are the observed delivery latencies
	// (bus time of delivery minus violation start).
	MaxLatency  time.Duration `json:"maxLatencyNanos"`
	MeanLatency time.Duration `json:"meanLatencyNanos"`
}

// LatencyResult is the online-latency characterization: the answer to
// the paper's deferred question of whether this monitoring approach
// can run in real time with useful reaction times.
type LatencyResult struct {
	// Stats holds one entry per rule that produced events.
	Stats []LatencyStat `json:"stats"`
}

// RunLatencyAblation replays a fault-rich bench capture through the
// streaming monitor and measures, for every violation-begin event, the
// gap between the violation's start and the bus time at which the event
// was delivered. The observed latency must stay within one step plus
// the rule's declared temporal horizon.
func RunLatencyAblation(seed int64) (*LatencyResult, error) {
	duration := 3 * time.Minute
	bench, err := hil.New(scenario.Follow(seed, duration))
	if err != nil {
		return nil, err
	}
	err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
		switch now {
		case 20 * time.Second:
			return b.SetInjection(sigdb.SigVelocity, 5)
		case 40 * time.Second:
			b.ClearAllInjections()
			return b.SetInjection(sigdb.SigTargetRange, 4294967296.000001)
		case 60 * time.Second:
			b.ClearAllInjections()
			return b.SetInjection(sigdb.SigTargetRelVel, -500)
		case 80 * time.Second:
			b.ClearAllInjections()
			return b.SetInjection(sigdb.SigVelocity, 1000)
		case 100 * time.Second:
			b.ClearAllInjections()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rs, err := rules.Strict()
	if err != nil {
		return nil, err
	}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		return nil, err
	}
	om, err := mon.Online(sigdb.Vehicle())
	if err != nil {
		return nil, err
	}

	type agg struct {
		begins int
		sum    time.Duration
		max    time.Duration
	}
	byRule := make(map[string]*agg)
	record := func(rule string, latency time.Duration) {
		a := byRule[rule]
		if a == nil {
			a = &agg{}
			byRule[rule] = a
		}
		a.begins++
		a.sum += latency
		if latency > a.max {
			a.max = latency
		}
	}
	for _, f := range bench.Log().Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			return nil, err
		}
		for _, e := range evs {
			if e.Kind == speclang.ViolationBegin {
				record(e.Rule, f.Time-e.Time)
			}
		}
	}
	// Events delivered only at Close have no bus-time upper bound to
	// compare against; they are end-of-trace drains and excluded.
	if _, err := om.Close(); err != nil {
		return nil, err
	}

	out := &LatencyResult{}
	for _, name := range rules.Names() {
		a, ok := byRule[name]
		if !ok {
			continue
		}
		r, _ := rs.Rule(name)
		out.Stats = append(out.Stats, LatencyStat{
			Rule:        name,
			Horizon:     r.Horizon(sigdb.FastPeriod),
			Begins:      a.begins,
			MaxLatency:  a.max,
			MeanLatency: a.sum / time.Duration(a.begins),
		})
	}
	if len(out.Stats) == 0 {
		return nil, fmt.Errorf("campaign: latency ablation produced no violation events")
	}
	return out, nil
}

// Render writes the characterization.
func (r *LatencyResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "A5  ONLINE DECISION LATENCY (runtime monitoring, paper future work)")
	fmt.Fprintf(w, "    %-8s %-10s %-8s %-12s %-12s\n", "rule", "horizon", "begins", "max", "mean")
	for _, s := range r.Stats {
		if _, err := fmt.Fprintf(w, "    %-8s %-10v %-8d %-12v %-12v\n",
			s.Rule, s.Horizon, s.Begins, s.MaxLatency, s.MeanLatency); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "    (delivery is bounded by the rule's horizon plus one broadcast step)")
	return nil
}

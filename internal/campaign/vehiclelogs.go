package campaign

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/trace"
)

// VehicleRuleSummary aggregates one rule's outcome across the real-
// vehicle drive cycles (Section IV.A).
type VehicleRuleSummary struct {
	// Name is the rule name.
	Name string `json:"rule"`
	// StrictVerdict is the verdict of the original (strict) rule.
	StrictVerdict core.Verdict `json:"strict"`
	// Violations is the total number of strict violations.
	Violations int `json:"violations"`
	// Real, Transient and Negligible break the violations down by
	// triage class.
	Real       int `json:"real"`
	Transient  int `json:"transient"`
	Negligible int `json:"negligible"`
	// RelaxedVerdict is the verdict of the post-triage relaxed rule.
	RelaxedVerdict core.Verdict `json:"relaxed"`
}

// VehicleAnalysis is the reproduced Section IV.A result: strict rules
// over prototype-vehicle logs, triage, and the relaxed rules.
type VehicleAnalysis struct {
	// Cycles is the number of drive cycles analysed.
	Cycles int `json:"cycles"`
	// Driving is the total duration of log data (serialized as
	// nanoseconds, time.Duration's native JSON form).
	Driving time.Duration `json:"drivingNanos"`
	// Rules summarises each rule in paper order.
	Rules []VehicleRuleSummary `json:"rules"`
}

// RunVehicleLogs generates `cycles` prototype-vehicle drive cycles
// (rolling hills, cut-ins, stop-and-go, sensor noise, frame jitter, no
// type checking) and checks them with the strict and relaxed monitors.
//
// The expected reproduction of the paper's findings: Rules #0, #1, #5
// and #6 are not violated; Rules #2, #3 and #4 have violations that
// triage classifies as transient or negligible (overly strict rules,
// not safety problems); and the relaxed rules eliminate them.
func RunVehicleLogs(seed int64, cycles int) (*VehicleAnalysis, error) {
	strict, err := rules.NewStrictMonitor()
	if err != nil {
		return nil, err
	}
	relaxed, err := rules.NewRelaxedMonitor()
	if err != nil {
		return nil, err
	}

	// Each cycle is an independent bench; run them concurrently and
	// fold the per-cycle reports in cycle order (the aggregation is
	// order-independent anyway, but determinism is cheap).
	type cycleReports struct {
		strict, relaxed *core.Report
	}
	reports := make([]cycleReports, cycles)
	errs := make([]error, cycles)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for c := 0; c < cycles; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := scenario.DriveCycle(seed + int64(c)*7919)
			bench, err := hil.New(cfg)
			if err != nil {
				errs[c] = fmt.Errorf("campaign: drive cycle %d: %w", c, err)
				return
			}
			if err := bench.Run(scenario.DriveCycleDuration, nil); err != nil {
				errs[c] = fmt.Errorf("campaign: drive cycle %d: %w", c, err)
				return
			}
			tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
			if err != nil {
				errs[c] = err
				return
			}
			strictRep, err := strict.CheckTrace(tr)
			if err != nil {
				errs[c] = err
				return
			}
			relaxedRep, err := relaxed.CheckTrace(tr)
			if err != nil {
				errs[c] = err
				return
			}
			reports[c] = cycleReports{strict: strictRep, relaxed: relaxedRep}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &VehicleAnalysis{Cycles: cycles}
	byName := make(map[string]*VehicleRuleSummary, len(rules.Names()))
	for _, name := range rules.Names() {
		byName[name] = &VehicleRuleSummary{Name: name, StrictVerdict: core.Satisfied, RelaxedVerdict: core.Satisfied}
	}
	for _, rep := range reports {
		out.Driving += scenario.DriveCycleDuration
		for _, name := range rules.Names() {
			s := byName[name]
			if rr, ok := rep.strict.Rule(name); ok {
				if rr.Verdict == core.Violated {
					s.StrictVerdict = core.Violated
				}
				s.Violations += len(rr.Result.Violations)
				s.Real += rr.Count(core.ClassReal)
				s.Transient += rr.Count(core.ClassTransient)
				s.Negligible += rr.Count(core.ClassNegligible)
			}
			if rr, ok := rep.relaxed.Rule(name); ok && rr.Verdict == core.Violated {
				s.RelaxedVerdict = core.Violated
			}
		}
	}
	for _, name := range rules.Names() {
		out.Rules = append(out.Rules, *byName[name])
	}
	return out, nil
}

// Render writes the analysis as a table.
func (a *VehicleAnalysis) Render(w io.Writer) error {
	fmt.Fprintf(w, "REAL VEHICLE LOG ANALYSIS (%d cycles, %v of driving)\n\n", a.Cycles, a.Driving)
	fmt.Fprintf(w, "%-7s %-7s %-11s %-5s %-10s %-11s %-8s\n",
		"Rule", "Strict", "Violations", "Real", "Transient", "Negligible", "Relaxed")
	for _, r := range a.Rules {
		if _, err := fmt.Fprintf(w, "%-7s %-7s %-11d %-5d %-10d %-11d %-8s\n",
			r.Name, r.StrictVerdict, r.Violations, r.Real, r.Transient, r.Negligible, r.RelaxedVerdict); err != nil {
			return err
		}
	}
	return nil
}

// Rule returns the summary for the named rule.
func (a *VehicleAnalysis) Rule(name string) (VehicleRuleSummary, bool) {
	for _, r := range a.Rules {
		if r.Name == name {
			return r, true
		}
	}
	return VehicleRuleSummary{}, false
}
